package cocopelia

// One benchmark per table/figure of the paper's evaluation (Section V),
// plus micro-benchmarks of the framework's own hot paths. Each Fig/Table
// benchmark regenerates its experiment on a fresh measured-run cache and
// reports the experiment's headline quantity as a custom metric, so
//
//	go test -bench=. -benchmem
//
// both regenerates the study and tracks the harness's wall-clock cost.
// The benchmarks run the reduced ("fast") problem sets; cmd/cocoeval -full
// runs the paper-size campaign.

import (
	"math"
	"sync"
	"testing"

	"cocopelia/internal/eval"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
	"cocopelia/internal/multigpu"
	"cocopelia/internal/operand"
	"cocopelia/internal/predictor"
	"cocopelia/internal/stats"
)

var (
	benchOnce sync.Once
	benchDeps map[string]*microbench.Deployment
)

// benchDeployment caches one deployment per testbed for all benchmarks.
func benchDeployment(b *testing.B, tb *machine.Testbed) *microbench.Deployment {
	b.Helper()
	benchOnce.Do(func() {
		benchDeps = map[string]*microbench.Deployment{}
		for _, t := range machine.Testbeds() {
			benchDeps[t.Name] = microbench.Run(t, microbench.DefaultConfig())
		}
	})
	return benchDeps[tb.Name]
}

// freshCampaign builds a campaign with an empty measured-run cache so every
// benchmark iteration does real work.
func freshCampaign(b *testing.B, tb *machine.Testbed) *eval.Campaign {
	b.Helper()
	return eval.NewCampaignWithDeployment(tb, benchDeployment(b, tb), true)
}

func BenchmarkTable2TransferFit(b *testing.B) {
	tb := machine.TestbedI()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dep := microbench.Run(tb, microbench.DefaultConfig())
		if dep.H2D.SecPerByte <= 0 {
			b.Fatal("bad fit")
		}
		b.ReportMetric(1/dep.H2D.SecPerByte/1e9, "GB/s-h2d-fit")
		b.ReportMetric(dep.D2H.Slowdown, "sl-d2h-fit")
	}
}

func BenchmarkFig1TileSizeSweep(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		rows, err := c.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		best := 0.0
		for _, r := range rows {
			if r.Gflops > best {
				best = r.Gflops
			}
		}
		b.ReportMetric(best, "GF/s-best")
	}
}

func BenchmarkFig2Timeline(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		_, phases, err := c.Fig2(8192, 1024, 100)
		if err != nil {
			b.Fatal(err)
		}
		if len(phases) != 10 {
			b.Fatal("phase count")
		}
	}
}

// medianOf extracts the median error of one routine/model bucket.
func medianOf(samples []eval.ErrSample, routine string, kind model.Kind) float64 {
	var v []float64
	for _, s := range samples {
		if s.Routine == routine && s.Model == kind {
			v = append(v, s.ErrPct)
		}
	}
	return stats.Median(v)
}

func BenchmarkFig4ModelErrorNoReuse(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		samples, err := c.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(medianOf(samples, "dgemm", model.BTS), "medianErr%-BTS-dgemm")
		b.ReportMetric(medianOf(samples, "dgemm", model.CSO), "medianErr%-CSO-dgemm")
	}
}

func BenchmarkFig5ModelErrorReuse(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		samples, err := c.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(medianOf(samples, "dgemm", model.DR), "medianErr%-DR-dgemm")
		b.ReportMetric(medianOf(samples, "dgemm", model.CSO), "medianErr%-CSO-dgemm")
	}
}

func BenchmarkFig6TileSelection(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		rows, err := c.Fig6("dgemm")
		if err != nil {
			b.Fatal(err)
		}
		// Median fraction of the exhaustive optimum the DR selection
		// achieves.
		var fr []float64
		for _, r := range rows {
			if r.GflopsOpt > 0 {
				fr = append(fr, r.PerModel[model.DR].Gflops/r.GflopsOpt)
			}
		}
		b.ReportMetric(100*stats.Median(fr), "%-of-Topt-DR")
	}
}

func BenchmarkFig7EndToEnd(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		rows, err := c.Fig7Gemm("dgemm")
		if err != nil {
			b.Fatal(err)
		}
		t4 := eval.Table4(tb.Name, "dgemm", rows)
		for _, r := range t4 {
			if r.Offload == "full" {
				b.ReportMetric(r.ImprovementPct, "improv%-full-dgemm")
			}
		}
	}
}

func BenchmarkTable4Summary(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		rows, err := c.Fig7Daxpy()
		if err != nil {
			b.Fatal(err)
		}
		t4 := eval.Table4(tb.Name, "daxpy", rows)
		if len(t4) == 0 {
			b.Fatal("no groups")
		}
		for _, r := range t4 {
			if r.Offload == "full" {
				b.ReportMetric(r.ImprovementPct, "improv%-full-daxpy")
			}
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) --------

func BenchmarkAblationReuse(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		rows, err := c.AblationReuse("dgemm")
		if err != nil {
			b.Fatal(err)
		}
		var sp []float64
		for _, r := range rows {
			sp = append(sp, r.SpeedupPct)
		}
		b.ReportMetric(stats.Median(sp), "reuse-speedup%")
	}
}

func BenchmarkAblationContention(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		rows, err := c.AblationContention("dgemm")
		if err != nil {
			b.Fatal(err)
		}
		var cost []float64
		for _, r := range rows {
			cost = append(cost, r.SlowdownPct)
		}
		b.ReportMetric(stats.Median(cost), "contention-cost%")
	}
}

func BenchmarkAblationModelVariants(b *testing.B) {
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		samples, err := c.AblationModelVariants("dgemm")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(medianOf(samples, "dgemm", model.WerkSerial), "medianErr%-serial")
		b.ReportMetric(medianOf(samples, "dgemm", model.AblDRInteger), "medianErr%-DR-intTiles")
	}
}

func BenchmarkSensitivityFutureMachines(b *testing.B) {
	// The Section II-A motivation quantified: how much the static tile
	// loses (vs. the model selection) on a compute-bound future machine.
	tb := machine.TestbedII()
	for i := 0; i < b.N; i++ {
		c := freshCampaign(b, tb)
		rows, err := c.Sensitivity(8192, []float64{8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].StaticLossPct, "staticLoss%-bw8x")
		b.ReportMetric(rows[0].ModelLossPct, "modelLoss%-bw8x")
	}
}

// --- framework micro-benchmarks -----------------------------------------

func BenchmarkMultiGPUScaling(b *testing.B) {
	// The future-work extension: 4-GPU dgemm with the cluster-extended DR
	// model's tile. Reports the achieved scaling over one GPU.
	tb := machine.TestbedII()
	dep := benchDeployment(b, tb)
	sm, err := predictor.New(dep).SubModels("dgemm", 0)
	if err != nil {
		b.Fatal(err)
	}
	const m = 8192
	for i := 0; i < b.N; i++ {
		run := func(gpus int) float64 {
			sel, err := multigpu.SelectT(sm, "dgemm", 8, m, m, m, gpus)
			if err != nil {
				b.Fatal(err)
			}
			cl, err := multigpu.NewCluster(tb, gpus, 17, false)
			if err != nil {
				b.Fatal(err)
			}
			res, err := cl.Gemm(multigpu.GemmOpts{
				Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
				A: operand.HostMatrix(m, m, nil),
				B: operand.HostMatrix(m, m, nil),
				C: operand.HostMatrix(m, m, nil),
				T: sel.T,
			})
			if err != nil {
				b.Fatal(err)
			}
			return res.Seconds
		}
		b.ReportMetric(run(1)/run(4), "scaling-4gpu")
	}
}

func BenchmarkSchedulerGemmDES(b *testing.B) {
	// Cost of simulating one paper-scale tiled gemm (discrete-event
	// throughput of the whole stack).
	dep := benchDeployment(b, machine.TestbedII())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lib, err := Open(TestbedII(), Options{Deployment: dep})
		if err != nil {
			b.Fatal(err)
		}
		A := HostMatrix(8192, 8192, nil)
		res, err := lib.DgemmTile(8192, 8192, 8192, 1, A, A, 1, A, 512)
		if err != nil {
			b.Fatal(err)
		}
		if math.IsNaN(res.Seconds) {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkPredictDR(b *testing.B) {
	dep := benchDeployment(b, machine.TestbedII())
	lib, err := Open(TestbedII(), Options{Deployment: dep})
	if err != nil {
		b.Fatal(err)
	}
	A := HostMatrix(16384, 16384, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lib.Predict(ModelDR, "dgemm", 16384, 16384, 16384, 2048, A, A, A); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSelectTile(b *testing.B) {
	// The paper reports tile selection in well under 100 microseconds;
	// this tracks ours (uncached: fresh library per iteration batch).
	dep := benchDeployment(b, machine.TestbedII())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		lib, err := Open(TestbedII(), Options{Deployment: dep})
		if err != nil {
			b.Fatal(err)
		}
		A := HostMatrix(16384, 16384, nil)
		if _, err := lib.SelectGemmTile("dgemm", 16384, 16384, 16384, A, A, A); err != nil {
			b.Fatal(err)
		}
	}
}
