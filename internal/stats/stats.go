// Package stats provides the statistical primitives used throughout the
// CoCoPeLia framework: summary statistics, quantiles, confidence intervals
// for the micro-benchmark stopping rule, and the zero-intercept
// least-squares regression used to fit the transfer sub-models (Table II of
// the paper).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values make the result NaN. It returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Variance returns the unbiased sample variance of xs (n-1 denominator).
// It returns 0 when fewer than two samples are provided.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (type-7, the R default).
// It returns an error for an empty sample or q outside [0, 1].
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of range")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0], nil
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo], nil
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac, nil
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	m, err := Quantile(xs, 0.5)
	if err != nil {
		return 0
	}
	return m
}

// Summary condenses a sample into the statistics used when rendering the
// paper's violin plots as text: the five-number summary plus mean.
type Summary struct {
	N                int
	Mean             float64
	Min, Q1, Med, Q3 float64
	Max              float64
	P5, P95          float64
	StdDev           float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	q := func(p float64) float64 {
		v, _ := Quantile(xs, p)
		return v
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Min:    Min(xs),
		Q1:     q(0.25),
		Med:    q(0.5),
		Q3:     q(0.75),
		Max:    Max(xs),
		P5:     q(0.05),
		P95:    q(0.95),
		StdDev: StdDev(xs),
	}
}

// tCritical95 approximates the two-sided 95% Student-t critical value for
// df degrees of freedom. Exact table values are used for small df, and the
// normal-approximation limit 1.96 beyond the table.
func tCritical95(df int) float64 {
	table := []float64{
		12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
		2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
		2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
		2.048, 2.045, 2.042,
	}
	if df <= 0 {
		return math.Inf(1)
	}
	if df <= len(table) {
		return table[df-1]
	}
	switch {
	case df <= 40:
		return 2.021
	case df <= 60:
		return 2.000
	case df <= 120:
		return 1.980
	}
	return 1.960
}

// CIHalfWidth95 returns the half-width of the 95% confidence interval of
// the mean of xs. For fewer than two samples the half-width is +Inf, which
// makes the micro-benchmark stopping rule keep sampling.
func CIHalfWidth95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.Inf(1)
	}
	return tCritical95(n-1) * StdDev(xs) / math.Sqrt(float64(n))
}

// MeanWithinCI reports whether the 95% confidence interval of the mean of
// xs falls within fraction tol of the mean (the paper's stopping rule uses
// tol = 0.05). An all-zero or near-zero mean sample is accepted once at
// least two samples exist, to avoid division blow-ups.
func MeanWithinCI(xs []float64, tol float64) bool {
	if len(xs) < 2 {
		return false
	}
	m := Mean(xs)
	hw := CIHalfWidth95(xs)
	if m == 0 {
		return hw == 0
	}
	return hw <= tol*math.Abs(m)
}

// FitZeroIntercept fits y = b*x by least squares with the intercept forced
// through the origin, in the manner the paper fits t_b (the latency t_l is
// subtracted from the samples beforehand by the caller). It returns the
// slope b and the residual standard error. At least one sample with a
// non-zero x is required.
func FitZeroIntercept(x, y []float64) (slope, rse float64, err error) {
	if len(x) == 0 || len(x) != len(y) {
		return 0, 0, errors.New("stats: need equal-length non-empty x, y")
	}
	var sxy, sxx float64
	for i := range x {
		sxy += x[i] * y[i]
		sxx += x[i] * x[i]
	}
	if sxx == 0 {
		return 0, 0, errors.New("stats: degenerate regressor (all x zero)")
	}
	slope = sxy / sxx
	var ss float64
	for i := range x {
		r := y[i] - slope*x[i]
		ss += r * r
	}
	df := len(x) - 1
	if df < 1 {
		df = 1
	}
	rse = math.Sqrt(ss / float64(df))
	return slope, rse, nil
}

// FitLinear fits y = a + b*x by ordinary least squares and returns the
// intercept a, slope b and residual standard error.
func FitLinear(x, y []float64) (intercept, slope, rse float64, err error) {
	n := len(x)
	if n < 2 || n != len(y) {
		return 0, 0, 0, errors.New("stats: need >= 2 equal-length samples")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx float64
	for i := range x {
		sxy += (x[i] - mx) * (y[i] - my)
		sxx += (x[i] - mx) * (x[i] - mx)
	}
	if sxx == 0 {
		return 0, 0, 0, errors.New("stats: degenerate regressor (constant x)")
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	var ss float64
	for i := range x {
		r := y[i] - intercept - slope*x[i]
		ss += r * r
	}
	df := n - 2
	if df < 1 {
		df = 1
	}
	rse = math.Sqrt(ss / float64(df))
	return intercept, slope, rse, nil
}

// RelErrPercent returns the paper's relative error metric,
// 100*(predicted-measured)/measured. A zero measured value yields NaN.
func RelErrPercent(predicted, measured float64) float64 {
	return 100 * (predicted - measured) / measured
}
