package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (tol %g)", what, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	almost(t, Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12, "mean")
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	almost(t, GeoMean([]float64{1, 100}), 10, 1e-9, "geomean")
	almost(t, GeoMean([]float64{2, 2, 2}), 2, 1e-12, "geomean const")
	if GeoMean(nil) != 0 {
		t.Error("geomean of empty should be 0")
	}
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	almost(t, Variance(xs), 32.0/7.0, 1e-12, "variance")
	almost(t, StdDev(xs), math.Sqrt(32.0/7.0), 1e-12, "stddev")
	if Variance([]float64{1}) != 0 {
		t.Error("variance of single sample should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	almost(t, Min(xs), -1, 0, "min")
	almost(t, Max(xs), 7, 0, "max")
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty min/max should be +/-Inf")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	} {
		got, err := Quantile(xs, tc.q)
		if err != nil {
			t.Fatalf("quantile(%v): %v", tc.q, err)
		}
		almost(t, got, tc.want, 1e-12, "quantile")
	}
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Error("quantile of empty should error")
	}
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("quantile q>1 should error")
	}
	if _, err := Quantile(xs, math.NaN()); err == nil {
		t.Error("quantile q=NaN should error")
	}
	// Single element: every quantile is that element.
	got, err := Quantile([]float64{42}, 0.99)
	if err != nil || got != 42 {
		t.Errorf("single-element quantile: got %v, %v", got, err)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	_, _ = Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedian(t *testing.T) {
	almost(t, Median([]float64{1, 3, 2}), 2, 0, "odd median")
	almost(t, Median([]float64{1, 2, 3, 4}), 2.5, 0, "even median")
	if Median(nil) != 0 {
		t.Error("median of empty should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Med != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("summary wrong: %+v", s)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Error("empty summary should have N=0")
	}
}

func TestCIHalfWidth(t *testing.T) {
	if !math.IsInf(CIHalfWidth95([]float64{1}), 1) {
		t.Error("CI of single sample should be +Inf")
	}
	// Constant sample: zero half width.
	almost(t, CIHalfWidth95([]float64{5, 5, 5, 5}), 0, 0, "constant CI")
	// Known case: n=2, sd=sqrt(2)/sqrt(2)... use {0,2}: mean 1, sd sqrt(2),
	// t(1)=12.706, hw = 12.706*sqrt(2)/sqrt(2) = 12.706.
	almost(t, CIHalfWidth95([]float64{0, 2}), 12.706, 1e-9, "n=2 CI")
}

func TestMeanWithinCI(t *testing.T) {
	if MeanWithinCI([]float64{1}, 0.05) {
		t.Error("single sample must not satisfy the stopping rule")
	}
	if !MeanWithinCI([]float64{1, 1, 1, 1, 1}, 0.05) {
		t.Error("constant sample should satisfy the stopping rule")
	}
	if MeanWithinCI([]float64{1, 10, 0.1, 5}, 0.05) {
		t.Error("wild sample should not satisfy the stopping rule")
	}
	if !MeanWithinCI([]float64{0, 0, 0}, 0.05) {
		t.Error("all-zero sample should satisfy the stopping rule")
	}
}

func TestFitZeroIntercept(t *testing.T) {
	// Perfect line through the origin.
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	b, rse, err := FitZeroIntercept(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, b, 2, 1e-12, "slope")
	almost(t, rse, 0, 1e-12, "rse")

	if _, _, err := FitZeroIntercept(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if _, _, err := FitZeroIntercept([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero x should error")
	}
	if _, _, err := FitZeroIntercept([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestFitZeroInterceptRecoversNoisySlope(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var x, y []float64
	for i := 1; i <= 64; i++ {
		xi := float64(i) * 1000
		x = append(x, xi)
		y = append(y, 3.5e-9*xi*(1+0.01*rng.NormFloat64()))
	}
	b, _, err := FitZeroIntercept(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-3.5e-9)/3.5e-9 > 0.01 {
		t.Errorf("recovered slope %g, want ~3.5e-9", b)
	}
}

func TestFitLinear(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b, rse, err := FitLinear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	almost(t, a, 1, 1e-12, "intercept")
	almost(t, b, 2, 1e-12, "slope")
	almost(t, rse, 0, 1e-12, "rse")

	if _, _, _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("too-short fit should error")
	}
	if _, _, _, err := FitLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("constant x should error")
	}
}

func TestRelErrPercent(t *testing.T) {
	almost(t, RelErrPercent(110, 100), 10, 1e-12, "over")
	almost(t, RelErrPercent(90, 100), -10, 1e-12, "under")
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil {
				return false
			}
			if v < prev-1e-9 || v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: zero-intercept fit of an exact line recovers the slope.
func TestFitZeroInterceptProperty(t *testing.T) {
	f := func(slopeRaw float64, n uint8) bool {
		slope := math.Mod(math.Abs(slopeRaw), 100) + 0.001
		k := int(n%32) + 2
		x := make([]float64, k)
		y := make([]float64, k)
		for i := 0; i < k; i++ {
			x[i] = float64(i + 1)
			y[i] = slope * x[i]
		}
		b, rse, err := FitZeroIntercept(x, y)
		return err == nil && math.Abs(b-slope) < 1e-9*slope+1e-12 && rse < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
