package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func() { got = append(got, 3) })
	e.Schedule(1, func() { got = append(got, 1) })
	e.Schedule(2, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3 {
		t.Errorf("end time = %v, want 3", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events fired out of issue order: %v", got)
		}
	}
}

func TestAfter(t *testing.T) {
	e := New()
	var at Time
	e.Schedule(2, func() {
		e.After(3, func() { at = e.Now() })
	})
	e.Run()
	if at != 5 {
		t.Errorf("After fired at %v, want 5", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.Schedule(1, func() {})
	})
	e.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback should panic")
		}
	}()
	New().Schedule(1, nil)
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func() { fired = true })
	if !ev.Pending() {
		t.Error("event should be pending")
	}
	e.Cancel(ev)
	if ev.Pending() {
		t.Error("cancelled event should not be pending")
	}
	e.Cancel(ev) // double-cancel is a no-op
	e.Cancel(nil)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestReschedule(t *testing.T) {
	e := New()
	var at Time
	ev := e.Schedule(10, func() { at = e.Now() })
	e.Schedule(1, func() { e.Reschedule(ev, 4) })
	e.Run()
	if at != 4 {
		t.Errorf("rescheduled event fired at %v, want 4", at)
	}
}

func TestRescheduleFiredPanics(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("rescheduling a fired event should panic")
		}
	}()
	e.Reschedule(ev, 5)
}

func TestRunUntil(t *testing.T) {
	e := New()
	var got []Time
	for _, at := range []Time{1, 2, 3, 4, 5} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	n := e.RunUntil(3)
	if n != 3 || len(got) != 3 {
		t.Errorf("RunUntil(3) fired %d events (%v), want 3", n, got)
	}
	if e.Now() != 3 {
		t.Errorf("clock = %v, want 3", e.Now())
	}
	// Deadline past the last event advances the clock to the deadline.
	e.RunUntil(10)
	if e.Now() != 10 {
		t.Errorf("clock = %v, want 10", e.Now())
	}
	if e.Pending() != 0 {
		t.Error("queue should be drained")
	}
}

func TestProcessedCount(t *testing.T) {
	e := New()
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.Run()
	if e.Processed() != 7 {
		t.Errorf("Processed = %d, want 7", e.Processed())
	}
}

// Property: random schedules fire in non-decreasing time order and the
// clock never moves backwards.
func TestRandomScheduleOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var fired []Time
		k := int(n)%100 + 1
		times := make([]Time, k)
		for i := 0; i < k; i++ {
			times[i] = rng.Float64() * 100
			at := times[i]
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.Run()
		if len(fired) != k {
			return false
		}
		sorted := append([]Time(nil), times...)
		sort.Float64s(sorted)
		for i := range sorted {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		n := 50
		firedCount := 0
		events := make([]*Event, n)
		for i := 0; i < n; i++ {
			events[i] = e.Schedule(rng.Float64()*10, func() { firedCount++ })
		}
		cancelled := 0
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				e.Cancel(events[i])
				cancelled++
			}
		}
		e.Run()
		return firedCount == n-cancelled
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEventRecycling(t *testing.T) {
	// Fired events return to the free list and back future Schedule calls,
	// so steady-state simulation allocates no events.
	e := New()
	ev1 := e.Schedule(1, func() {})
	e.Run()
	ev2 := e.Schedule(2, func() {})
	if ev1 != ev2 {
		t.Error("fired event should be recycled by the next Schedule")
	}
	if !ev2.Pending() || ev2.At() != 2 {
		t.Error("recycled event should be pending at its new time")
	}
	e.Run()

	// Cancelled events recycle too, and the stale reference reads as dead.
	ev3 := e.Schedule(5, func() {})
	e.Cancel(ev3)
	if ev3.Pending() {
		t.Error("cancelled event should not be pending")
	}
	ev4 := e.Schedule(6, func() { t.Error("cancelled slot must not fire the old callback") })
	if ev4 != ev3 {
		t.Error("cancelled event should be recycled")
	}
	e.Cancel(ev4)
}

// runWorkload drives one randomized schedule workload on e and returns the
// fired (time, id) sequence and the final clock. Callbacks schedule
// children, cancel and reschedule pending siblings, so the heap sees the
// full operation mix the link model generates.
func runWorkload(e *Engine, seed int64) (fired [][2]float64, end Time) {
	rng := rand.New(rand.NewSource(seed))
	id := 0
	var pending []*Event
	var schedule func(at Time, depth int)
	schedule = func(at Time, depth int) {
		myID := id
		id++
		ev := e.Schedule(at, func() {
			fired = append(fired, [2]float64{e.Now(), float64(myID)})
			switch op := rng.Intn(4); {
			case op == 0 && depth < 3:
				schedule(e.Now()+rng.Float64(), depth+1)
			case op == 1 && len(pending) > 0:
				victim := pending[rng.Intn(len(pending))]
				if victim.Pending() {
					e.Cancel(victim)
				}
			case op == 2 && len(pending) > 0:
				victim := pending[rng.Intn(len(pending))]
				if victim.Pending() {
					e.Reschedule(victim, e.Now()+rng.Float64())
				}
			}
		})
		pending = append(pending, ev)
	}
	for i := 0; i < 60; i++ {
		schedule(rng.Float64()*10, 0)
	}
	return fired, e.Run()
}

// Property: a Reset()-reused engine replays a workload with the identical
// event order and final clock as a fresh engine (the invariant that lets
// the campaign engine share one engine across repetitions and cells).
func TestResetReuseIdenticalToFreshEngine(t *testing.T) {
	reused := New()
	// Dirty the reused engine with a different workload, including pending
	// events at Reset time, so Reset has real state to clear.
	reused.Schedule(1, func() {})
	runWorkload(reused, 999)
	reused.Schedule(reused.Now()+5, func() {})

	f := func(seed int64) bool {
		reused.Reset()
		if reused.Now() != 0 || reused.Pending() != 0 || reused.Processed() != 0 {
			t.Fatal("Reset did not clear engine state")
		}
		gotFired, gotEnd := runWorkload(reused, seed)
		wantFired, wantEnd := runWorkload(New(), seed)
		if gotEnd != wantEnd || len(gotFired) != len(wantFired) {
			return false
		}
		for i := range wantFired {
			if gotFired[i] != wantFired[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: the specialized 4-ary heap pops the same sequence as a naive
// sorted reference under a random mix of schedules, cancels, reschedules
// and steps.
func TestHeapMatchesReferenceProperty(t *testing.T) {
	type refEvent struct {
		at  Time
		seq uint64
		id  int
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := New()
		var ref []refEvent // alive reference events, unordered
		live := map[int]*Event{}
		var fired []int
		nextID := 0
		seq := uint64(0)
		for op := 0; op < 400; op++ {
			switch rng.Intn(4) {
			case 0, 1: // schedule
				at := e.Now() + rng.Float64()*5
				id := nextID
				nextID++
				live[id] = e.Schedule(at, func() { fired = append(fired, id) })
				ref = append(ref, refEvent{at: at, seq: seq, id: id})
				seq++
			case 2: // cancel or reschedule a random live event
				if len(ref) == 0 {
					continue
				}
				i := rng.Intn(len(ref))
				victim := ref[i]
				if rng.Intn(2) == 0 {
					e.Cancel(live[victim.id])
					ref = append(ref[:i], ref[i+1:]...)
				} else {
					at := e.Now() + rng.Float64()*5
					e.Reschedule(live[victim.id], at)
					ref[i].at = at
				}
			case 3: // step: the reference min must fire
				if len(ref) == 0 {
					continue
				}
				minI := 0
				for i := 1; i < len(ref); i++ {
					if ref[i].at < ref[minI].at ||
						(ref[i].at == ref[minI].at && ref[i].seq < ref[minI].seq) {
						minI = i
					}
				}
				want := ref[minI].id
				before := len(fired)
				e.Step()
				if len(fired) != before+1 || fired[before] != want {
					return false
				}
				delete(live, want)
				ref = append(ref[:minI], ref[minI+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestScheduleSteadyStateDoesNotAllocateEvents(t *testing.T) {
	e := New()
	var fn func()
	fn = func() {}
	// Warm up the free list and the pre-sized heap.
	for i := 0; i < 100; i++ {
		e.After(1, fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(1, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state schedule+step allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	e := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

// BenchmarkEngineChurn mimics the fluid-flow link's workload: a standing
// population of events with frequent reschedules and cancellations.
func BenchmarkEngineChurn(b *testing.B) {
	e := New()
	b.ReportAllocs()
	const standing = 64
	evs := make([]*Event, standing)
	for i := range evs {
		evs[i] = e.Schedule(e.Now()+1+Time(i), func() {})
	}
	for i := 0; i < b.N; i++ {
		slot := i % standing
		if evs[slot].Pending() {
			e.Reschedule(evs[slot], e.Now()+2)
		} else {
			evs[slot] = e.Schedule(e.Now()+2, func() {})
		}
		e.Step()
	}
}
