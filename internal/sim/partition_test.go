package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cocopelia/internal/parallel"
)

// runPartWorkload drives one randomized partition-tagged workload on e and
// returns the fired (time, id) sequence and the final clock. Callbacks
// schedule children across partitions, cancel and reschedule pending
// siblings — including events a drain has staged — so the partitioned
// engine sees the full operation mix the hardware models generate.
func runPartWorkload(e *Engine, seed int64) (fired [][2]float64, end Time) {
	rng := rand.New(rand.NewSource(seed))
	id := 0
	var pending []*Event
	var schedule func(at Time, depth int)
	schedule = func(at Time, depth int) {
		myID := id
		id++
		part := Partition(rng.Intn(NumParts))
		ev := e.SchedulePart(part, at, func() {
			fired = append(fired, [2]float64{e.Now(), float64(myID)})
			switch op := rng.Intn(4); {
			case op == 0 && depth < 3:
				schedule(e.Now()+rng.Float64(), depth+1)
			case op == 1 && len(pending) > 0:
				victim := pending[rng.Intn(len(pending))]
				if victim.Pending() {
					e.Cancel(victim)
				}
			case op == 2 && len(pending) > 0:
				victim := pending[rng.Intn(len(pending))]
				if victim.Pending() {
					e.Reschedule(victim, e.Now()+rng.Float64())
				}
			}
		})
		pending = append(pending, ev)
	}
	for i := 0; i < 60; i++ {
		schedule(rng.Float64()*10, 0)
	}
	return fired, e.Run()
}

// sameRun compares two workload traces.
func sameRun(a, b [][2]float64, aEnd, bEnd Time) bool {
	if aEnd != bEnd || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: a partitioned engine fires the identical event sequence as the
// sequential single-heap engine on randomized partition-tagged schedules,
// across drain thresholds and ARBITRARY lookahead vectors — the (at, seq)
// scan in peekLoc is the merge oracle, so even a bogus (too-large)
// lookahead must not reorder events, it can only make staging less useful.
func TestPartitionedMatchesSequentialProperty(t *testing.T) {
	f := func(seed int64, lookBits uint16) bool {
		wantFired, wantEnd := runPartWorkload(New(), seed)
		lookRng := rand.New(rand.NewSource(int64(lookBits)))
		for _, threshold := range []int{0, 1, 16} {
			e := NewPartitioned()
			var look [NumParts]Time
			for p := range look {
				look[p] = lookRng.Float64() * 5
			}
			e.SetLookahead(look)
			e.SetDrain(threshold, nil)
			gotFired, gotEnd := runPartWorkload(e, seed)
			if !sameRun(gotFired, wantFired, gotEnd, wantEnd) {
				t.Logf("threshold=%d look=%v diverged", threshold, look)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a Reset()-reused partitioned engine — dirtied with pending
// heap events AND staged batch entries at Reset time — replays a workload
// identically to a fresh sequential engine. This is the invariant that
// lets the campaign engine pool partitioned engines across repetitions.
func TestPartitionedResetReuseIdenticalToFreshSequential(t *testing.T) {
	reused := NewPartitioned()
	reused.SetLookahead([NumParts]Time{0, 0.5, 0.5, 0})
	reused.SetDrain(1, nil)
	// Dirty the engine: run a workload, then leave slot-parked, queued and
	// staged events behind so Reset has all three containers to clear. The
	// late first event per partition fills the next-event slot, so the two
	// earlier ones land on the heap where a drain can stage them.
	runPartWorkload(reused, 999)
	for i := 0; i < NumParts; i++ {
		reused.AfterPart(Partition(i), 100, func() {})
		reused.AfterPart(Partition(i), Time(i)+1, func() {})
		reused.AfterPart(Partition(i), Time(i)+2, func() {})
	}
	reused.maybeDrain()
	if reused.staged == 0 {
		t.Fatal("test setup: expected staged events before Reset")
	}

	f := func(seed int64) bool {
		reused.Reset()
		if reused.Now() != 0 || reused.Pending() != 0 || reused.Processed() != 0 {
			t.Fatal("Reset did not clear partitioned engine state")
		}
		gotFired, gotEnd := runPartWorkload(reused, seed)
		wantFired, wantEnd := runPartWorkload(New(), seed)
		// Leave staged state behind for the next trial's Reset.
		reused.After(1, func() {})
		return sameRun(gotFired, wantFired, gotEnd, wantEnd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: draining through worker goroutines (the parallel fan-out the
// campaign engine installs) is indistinguishable from sequential staging.
func TestPartitionedParallelDrainMatchesSequential(t *testing.T) {
	pool := parallel.NewPool(NumParts)
	idx := []int{0, 1, 2, 3}
	fanout := func(n int, f func(int)) {
		_ = parallel.ForEach(pool, idx[:n], func(_ int, p int) error {
			f(p)
			return nil
		})
	}
	f := func(seed int64) bool {
		wantFired, wantEnd := runPartWorkload(New(), seed)
		e := NewPartitioned()
		e.SetLookahead([NumParts]Time{0, 1, 1, 0})
		e.SetDrain(1, fanout)
		gotFired, gotEnd := runPartWorkload(e, seed)
		return sameRun(gotFired, wantFired, gotEnd, wantEnd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Staged events stay first-class: Pending reports them, Cancel kills them
// in O(1) via entry staleness, and Reschedule migrates them back to their
// partition heap — in both time directions across other staged entries.
func TestStagedCancelRescheduleSemantics(t *testing.T) {
	e := NewPartitioned()
	e.SetDrain(1, nil)
	var got []int
	mk := func(p Partition, at Time, id int) *Event {
		return e.SchedulePart(p, at, func() { got = append(got, id) })
	}
	a := mk(PartH2D, 1, 1)
	b := mk(PartH2D, 2, 2)
	c := mk(PartD2H, 3, 3)
	d := mk(PartCompute, 4, 4)
	e.maybeDrain()
	if e.staged == 0 {
		t.Fatal("expected a drain to stage events")
	}
	if !a.Pending() || !b.Pending() || !c.Pending() || !d.Pending() {
		t.Fatal("staged events must still report Pending")
	}
	e.Cancel(b)
	if b.Pending() {
		t.Error("cancelled staged event still pending")
	}
	e.Reschedule(c, 0.5) // staged -> heap, now fires first
	e.Reschedule(d, 10)  // staged -> heap, now fires last
	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	e.Run()
	want := []int{3, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// Steady-state scheduling and stepping on a partitioned engine with
// draining enabled allocates nothing once the free list, heaps and batch
// backings are warm — the same zero-alloc bar the sequential engine holds.
func TestPartitionedSteadyStateDoesNotAllocate(t *testing.T) {
	e := NewPartitioned()
	e.SetLookahead([NumParts]Time{0, 1, 1, 0})
	e.SetDrain(4, nil)
	var fn func()
	fn = func() {}
	for i := 0; i < 100; i++ {
		e.AfterPart(Partition(i%NumParts), 1+Time(i%7), fn)
	}
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		for p := 0; p < NumParts; p++ {
			e.AfterPart(Partition(p), 1+Time(p), fn)
		}
		e.Run()
	})
	if allocs != 0 {
		t.Errorf("steady-state partitioned schedule+run allocates %.1f objects/op, want 0", allocs)
	}
}

func BenchmarkPartitionedEngineThroughput(b *testing.B) {
	e := NewPartitioned()
	e.SetLookahead([NumParts]Time{0, 1e-5, 1e-5, 0})
	e.SetDrain(64, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.AfterPart(Partition(i%NumParts), 1, func() {})
		e.Step()
	}
}

// runTieWorkload drives a workload whose timestamps are quantized to a
// coarse grid, so same-timestamp runs — the batch-firing fast path — are
// the common case rather than a measure-zero accident. Callbacks schedule
// children at the CURRENT timestamp (joining the in-flight batch), cancel
// pending siblings mid-batch, and reschedule siblings onto the current
// timestamp from other partitions — every operation that could tempt the
// batch-firing loop into skipping its merge obligations.
func runTieWorkload(e *Engine, seed int64) (fired [][2]float64, end Time) {
	rng := rand.New(rand.NewSource(seed))
	const tick = 0.25
	quant := func(x float64) Time { return Time(int(x/tick)) * tick }
	id := 0
	var pending []*Event
	var schedule func(at Time, depth int)
	schedule = func(at Time, depth int) {
		myID := id
		id++
		part := Partition(rng.Intn(NumParts))
		ev := e.SchedulePart(part, at, func() {
			fired = append(fired, [2]float64{e.Now(), float64(myID)})
			switch op := rng.Intn(6); {
			case op == 0 && depth < 4:
				// Half of these children land exactly on e.Now(): issued
				// mid-batch with seq past the firing snapshot, they must
				// still fire in (at, seq) order.
				schedule(e.Now()+quant(rng.Float64()*0.5), depth+1)
			case op == 1 && len(pending) > 0:
				victim := pending[rng.Intn(len(pending))]
				if victim.Pending() {
					e.Cancel(victim)
				}
			case op == 2 && len(pending) > 0:
				victim := pending[rng.Intn(len(pending))]
				if victim.Pending() {
					// Quantized retime, possibly onto the current batch's
					// own timestamp.
					e.Reschedule(victim, e.Now()+quant(rng.Float64()*2))
				}
			}
		})
		pending = append(pending, ev)
	}
	for i := 0; i < 80; i++ {
		schedule(quant(rng.Float64()*8), 0)
	}
	return fired, e.Run()
}

// Property: with tie-heavy quantized timestamps spanning partition
// boundaries, the sequential engine, the undrained partitioned engine and
// drain-staged partitioned engines all fire the identical sequence. This
// pins the batch-firing loop's correctness obligations: the seq-snapshot
// cut-off, the lazy cross-partition minimum, and the e.moved fallback on
// Cancel/Reschedule inside a batch.
func TestTieBatchCancelRescheduleProperty(t *testing.T) {
	f := func(seed int64, lookBits uint16) bool {
		wantFired, wantEnd := runTieWorkload(New(), seed)
		lookRng := rand.New(rand.NewSource(int64(lookBits)))
		for _, threshold := range []int{0, 1, 4, 64} {
			e := NewPartitioned()
			var look [NumParts]Time
			for p := range look {
				look[p] = lookRng.Float64() * 2
			}
			e.SetLookahead(look)
			e.SetDrain(threshold, nil)
			gotFired, gotEnd := runTieWorkload(e, seed)
			if !sameRun(gotFired, wantFired, gotEnd, wantEnd) {
				t.Logf("threshold=%d look=%v diverged: got %d fired, want %d",
					threshold, look, len(gotFired), len(wantFired))
				return false
			}
			for p := 0; p < e.nparts; p++ {
				pq := &e.parts[p]
				if pq.live+pq.dead != len(pq.queue) {
					t.Fatalf("partition %d counter invariant broken: live=%d dead=%d len=%d",
						p, pq.live, pq.dead, len(pq.queue))
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// A same-timestamp batch spanning a partition boundary, mutated while it
// fires: the first event cancels a later same-timestamp event on its own
// partition (forcing the batch loop's full-rescan fallback) and reschedules
// an event from another partition onto the batch's timestamp (it must fire
// within the batch, in fresh-seq order). The fired order is pinned exactly.
func TestBatchBoundaryCancelReschedule(t *testing.T) {
	e := NewPartitioned()
	var got []int
	var evB, evE *Event
	e.SchedulePart(PartH2D, 1, func() {
		got = append(got, 1)
		e.Cancel(evB)          // same partition, same timestamp, still queued
		e.Reschedule(evE, 1)   // other partition, late time -> batch timestamp
	})
	evB = e.SchedulePart(PartH2D, 1, func() { got = append(got, 2) })
	e.SchedulePart(PartD2H, 1, func() { got = append(got, 3) })
	e.SchedulePart(PartH2D, 1, func() { got = append(got, 4) })
	evE = e.SchedulePart(PartCompute, 5, func() { got = append(got, 5) })
	e.SchedulePart(PartCompute, 2, func() { got = append(got, 6) })
	e.Run()
	// Order: 1 fires, kills 2, retimes 5 to t=1 (fresh seq, after 3 and 4);
	// then 3, 4 by issue order, then 5, then 6 at t=2.
	want := []int{1, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}
