// Conservative drain machinery for the partitioned engine.
//
// A drain stages upcoming events from each partition heap into that
// partition's sorted batch, up to a per-partition safe horizon derived from
// the other partitions' earliest pending events plus a lookahead vector.
// Staging is pure queue surgery — no callbacks run — so the per-partition
// work is independent and can fan out across worker goroutines.
//
// Invariants (see DESIGN.md):
//
//  1. Merge oracle. Correctness never rests on the horizons: Step always
//     fires the global (at, seq) minimum over every partition's heap head,
//     batch head AND next-event slot (sim.go's peekLoc), and batches are
//     sorted subsets of the pending set, so the fired sequence equals the
//     sequential engine's for ANY drain policy — the lookahead only bounds
//     how much staging is useful, never what fires next.
//  2. Lookahead derivation. An event executing in partition q at time t can
//     schedule into partition p no earlier than t + look[p] when look[p] is
//     a lower bound on the q→p scheduling delay. The link partitions use
//     their configured transfer latency (every transfer enters its link
//     queue one latency after submission); host and compute use zero, which
//     makes their horizons trivially safe. The head snapshot includes each
//     partition's slot — a slot-parked event may precede the heap head.
//  3. Staleness. Cancel and Reschedule of a staged event mark its batch
//     entry dead (the stamp snapshot stops matching) in O(1); the scan
//     skips dead entries. A new drain only runs once every batch is fully
//     consumed, so entries never alias across drains. Stale heap entries
//     below the horizon are dropped during staging, never staged.
package sim

import "math"

// SetLookahead installs the per-partition lookahead vector: look[p] is a
// lower bound on the delay of any cross-partition schedule into partition
// p. Larger (but still valid) bounds let a drain stage deeper; zero is
// always valid. Only consulted by partitioned engines.
func (e *Engine) SetLookahead(look [NumParts]Time) { e.look = look }

// SetDrain configures staged draining on a partitioned engine: once the
// live heap population reaches threshold events and no batch is
// outstanding, Run stages upcoming events into per-partition batches.
// fanout, when non-nil, runs the n independent per-partition staging jobs
// (callers pass a parallel-pool adapter; sim spawns no goroutines itself);
// a nil fanout stages sequentially. threshold <= 0 disables draining — the
// sequential fallback the reference campaign runs bit-identically against.
func (e *Engine) SetDrain(threshold int, fanout func(n int, f func(int))) {
	e.drainAt = threshold
	e.fanout = fanout
	if fanout != nil && e.stageFn == nil {
		// Bind once so the steady-state drain path stays allocation-free.
		e.stageFn = e.stagePart
	}
}

// maybeDrain triggers a drain when no staged events remain and the live
// heap population justifies one.
func (e *Engine) maybeDrain() {
	if e.staged != 0 {
		return
	}
	n := 0
	for p := 0; p < e.nparts; p++ {
		n += e.parts[p].live
	}
	if n < e.drainAt {
		return
	}
	e.drain()
}

// drain stages each partition's events below its safe horizon into the
// partition's batch, fanning the independent per-partition staging out when
// a fanout runner is installed.
//
//cocolint:hotpath
func (e *Engine) drain() {
	// Horizons come from a snapshot of each partition's earliest pending
	// event (pruned heap head or slot): any event that fires later (it is
	// >= some head) schedules into p at >= head + look[p], so everything
	// strictly below safe[p] can be staged now.
	var heads [NumParts]Time
	for p := 0; p < e.nparts; p++ {
		pq := &e.parts[p]
		pq.pruneHead()
		h := math.Inf(1)
		if len(pq.queue) > 0 {
			h = pq.queue[0].at
		}
		if sl := pq.next; sl != nil && sl.at < h {
			h = sl.at
		}
		heads[p] = h
	}
	for p := 0; p < e.nparts; p++ {
		m := math.Inf(1)
		for q := 0; q < e.nparts; q++ {
			if q == p {
				continue
			}
			if h := heads[q] + e.look[p]; h < m {
				m = h
			}
		}
		e.safe[p] = m
	}
	if e.fanout != nil {
		//lint:ignore hotpath fanout is a caller-installed pool adapter (parallel.Fanout); its workers are persistent and its closure is bound once in SetDrain
		e.fanout(e.nparts, e.stageFn)
	} else {
		for p := 0; p < e.nparts; p++ {
			e.stagePart(p)
		}
	}
	for p := 0; p < e.nparts; p++ {
		e.staged += len(e.parts[p].batch)
	}
}

// stagePart pops partition p's events below its safe horizon into the
// partition's batch, dropping stale entries on the way. Pure queue surgery
// on partition-local state, so the per-partition calls are safe to run
// concurrently. The slot is left alone: it is already O(1) to consume.
//
//cocolint:hotpath
func (e *Engine) stagePart(p int) {
	pq := &e.parts[p]
	// staged == 0 here, so every leftover entry is dead: reuse the backing
	// array from the top.
	pq.batch = pq.batch[:0]
	pq.head = 0
	limit := e.safe[p]
	for len(pq.queue) > 0 {
		h := &pq.queue[0]
		if pq.dead > 0 && !h.live() {
			pq.popMin()
			pq.dead--
			continue
		}
		if h.at >= limit {
			break
		}
		ent := pq.popMin()
		pq.live--
		ent.ev.where = inBatch
		//lint:ignore hotpath batch backing array is reused across drains; it grows only until the deepest drain of the run
		pq.batch = append(pq.batch, batchEntry{ev: ent.ev, stamp: ent.stamp})
	}
}
