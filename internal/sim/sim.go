// Package sim implements the deterministic discrete-event simulation engine
// that underpins the simulated GPU testbeds. All hardware models (PCIe link,
// copy engines, compute engine) are expressed as events on a single virtual
// clock measured in seconds.
//
// The engine comes in two modes sharing one implementation:
//
//   - New() builds the sequential reference engine: a single 4-ary min-heap
//     of timestamped callbacks with a monotonically increasing sequence
//     number as the tie-breaker, so that runs are bit-for-bit reproducible.
//   - NewPartitioned() splits the pending set into per-device event queues
//     (host, H2D link, D2H link, compute engine) in the classic conservative
//     parallel-DES formulation. Partitions can be drained ahead of time into
//     sorted per-partition batches — optionally by worker goroutines — and
//     the next event to fire is always the global (at, seq) minimum over
//     every partition's heap head, batch head and next-event slot, so the
//     merged event order is identical to the sequential engine's by
//     construction (see partition.go for the invariants).
//
// Events may be cancelled and rescheduled, which the fluid-flow transfer
// model uses to re-plan completion times whenever link contention changes.
//
// Three structural choices keep the per-event cost down, none of which can
// change simulated results because (at, seq) is a total order:
//
//   - The heap is hand-specialized rather than container/heap, stores
//     (at, seq, stamp, ev) entries by value — every sift comparison reads
//     the entry, never chases the *Event — and is 4-ary, roughly halving
//     the sift-down depth for the queue sizes the campaign sustains.
//   - Each partition keeps a one-slot "next event" buffer: a schedule that
//     finds the slot empty parks there without touching the heap at all.
//     The dominant fire-then-schedule-successor pattern (cudart ops that
//     complete and immediately schedule the next op) cycles through the
//     slot, so steady-state chains pay no sift in either direction.
//   - Cancel and Reschedule never perform heap surgery. Every heap and
//     batch entry carries a stamp (a per-engine push counter) snapshotted
//     from the event at insertion; cancelling or rescheduling an event
//     invalidates the stamp in O(1), and stale entries are skipped when a
//     pop or peek reaches them.
package sim

import (
	"fmt"
	"math"
)

// Time is a point on the virtual clock, in seconds since simulation start.
type Time = float64

// Partition identifies one of a partitioned engine's event queues. The
// sequential reference engine ignores partitions and keeps every event on
// one heap; the (at, seq) total order makes the two modes fire the
// identical event sequence.
type Partition int8

// The partitions mirror the simulated testbed's independently progressing
// hardware units: host-side launch/completion processing, one queue per
// PCIe link direction, and the device compute engine.
const (
	PartHost Partition = iota
	PartH2D
	PartD2H
	PartCompute
)

// NumParts is the number of event queues a partitioned engine maintains.
const NumParts = int(PartCompute) + 1

// Event.where states: an event is on a partition heap (inHeap), staged in a
// drained batch (inBatch), parked in its partition's next-event slot
// (inSlot), or not queued at all (notQueued — fired, cancelled, or
// recycled).
const (
	notQueued int8 = iota
	inHeap
	inBatch
	inSlot
)

// Where an event fires from, for the take/peek plumbing.
const (
	srcHeap int8 = iota
	srcBatch
	srcSlot
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Engine.Schedule or Engine.After.
//
// Lifetime: an *Event reference is only valid while the event is pending.
// Once it fires or is cancelled the engine recycles the Event object
// through a free list, and a later Schedule call may reuse it — holders
// must drop their references at that point (the link model clears its
// completion-event pointer when a transfer finishes).
type Event struct {
	at  Time
	seq uint64
	// stamp identifies the event's live container entry: heap and batch
	// entries snapshot it at insertion, and any entry whose snapshot no
	// longer matches is stale (the event fired from elsewhere, was
	// cancelled, was rescheduled, or the object was recycled). Stamps come
	// from a per-engine monotonic push counter and are never reused, so a
	// match is exact.
	stamp    uint64
	fn       func()
	where    int8
	part     int8
	canceled bool
}

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Pending reports whether the event is still queued (not fired, not
// cancelled). Staged events — drained into a partition batch but not yet
// fired — and slot-parked events are still pending: where an event waits is
// a throughput detail invisible to the hardware models.
func (ev *Event) Pending() bool { return ev != nil && ev.where != notQueued && !ev.canceled }

// entBefore is the total event order on (at, seq) pairs: earlier time
// first, then issue order. Every queue — heap, batch or slot, sequential or
// partitioned — agrees on it, which is what makes the partitioned merge
// bitwise-identical to the sequential engine.
func entBefore(aAt Time, aSeq uint64, bAt Time, bSeq uint64) bool {
	//lint:ignore floatorder exact tie-break on stored event times; both sides are loaded values, no rounding happens here
	if aAt != bAt {
		return aAt < bAt
	}
	return aSeq < bSeq
}

// before applies the total event order to two live events.
func before(a, b *Event) bool { return entBefore(a.at, a.seq, b.at, b.seq) }

// heapEnt is one heap element. Entries are values — at and seq are copied
// from the event at push time — so sift comparisons never dereference the
// event, and lazy deletion (see Event.stamp) leaves stale entries behind
// instead of restructuring the heap.
type heapEnt struct {
	at    Time
	seq   uint64
	stamp uint64
	ev    *Event
}

// live reports whether the entry is still the event's current residence.
func (ent *heapEnt) live() bool { return ent.stamp == ent.ev.stamp }

// batchEntry is one staged event in a partition's drained batch, with the
// same stamp-snapshot staleness rule as heap entries.
type batchEntry struct {
	ev    *Event
	stamp uint64
}

// partQueue is one partition's pending set: a 4-ary min-heap, a sorted FIFO
// batch of events staged by a drain, and a one-slot next-event buffer. The
// partition's earliest event is the (at, seq) minimum of the pruned heap
// head, the first live batch entry, and the slot.
type partQueue struct {
	queue []heapEnt    // 4-ary min-heap ordered by (at, seq); may hold stale entries
	batch []batchEntry // drained events in (at, seq) order
	head  int          // index of the first unconsumed batch entry
	next  *Event       // next-event slot: filled by Schedule when empty
	live  int          // live (non-stale) heap entries
	// dead counts stale heap entries (live + dead == len(queue)). It lets
	// the pop path skip the per-entry staleness dereference entirely
	// between invalidations: most campaign windows cancel nothing, and
	// loading ent.ev.stamp for every pop would be the one cache miss the
	// value-typed heap was built to avoid.
	dead int
}

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use: callbacks always execute sequentially on the goroutine
// calling Step/Run, in the global (at, seq) order. A partitioned engine may
// additionally stage future events through worker goroutines during a
// drain (see SetDrain), but staging never executes callbacks.
type Engine struct {
	now     Time
	seq     uint64
	stepped uint64
	// stamps is the container push counter behind Event.stamp. It survives
	// Reset — stamps must never repeat while any stale entry could still
	// reference an event object, and monotonicity is the cheapest proof.
	stamps uint64
	// moved is set by Reschedule so Run's same-timestamp batch loop falls
	// back to a full peek: a reschedule can move an already-issued event
	// below the loop's cross-partition snapshot.
	moved bool
	// free recycles fired and cancelled events so steady-state scheduling
	// allocates no *Event per call (the per-simulation constant the
	// campaign engine's hot path pays millions of times).
	free []*Event

	nparts int // 1 (sequential reference) or NumParts (partitioned)
	staged int // live events currently sitting in partition batches
	// drainAt enables staged draining once the total heap population
	// reaches it; 0 disables draining (the sequential fallback).
	drainAt int
	fanout  func(n int, f func(int))
	stageFn func(int) // e.stagePart bound once, so drains allocate nothing
	look    [NumParts]Time
	safe    [NumParts]Time // per-partition staging horizons of the current drain
	parts   [NumParts]partQueue
}

// initialHeapCap pre-sizes the event heap so short simulations never grow
// it and long ones grow it logarithmically few times.
const initialHeapCap = 256

// New returns a sequential single-queue engine with the clock at zero —
// the bitwise reference every partitioned configuration is pinned to.
func New() *Engine {
	e := &Engine{nparts: 1}
	e.parts[0].queue = make([]heapEnt, 0, initialHeapCap)
	return e
}

// NewPartitioned returns an engine with one event queue per simulated
// hardware unit (see Partition). It fires the identical event sequence as
// New — the partitions exist so pending events can be drained and staged
// concurrently, not to change simulated results.
func NewPartitioned() *Engine {
	e := &Engine{nparts: NumParts}
	for p := 0; p < NumParts; p++ {
		e.parts[p].queue = make([]heapEnt, 0, initialHeapCap/NumParts)
	}
	return e
}

// Partitioned reports whether the engine maintains per-device queues.
func (e *Engine) Partitioned() bool { return e.nparts > 1 }

// Reset returns the engine to its initial state — clock at zero, empty
// queues, zeroed counters — while keeping the event free list, the heap and
// batch backing arrays, and the partition/lookahead/drain configuration, so
// a reused engine runs its next simulation without re-paying the warm-up
// allocations. Events still pending (queued, staged or slot-parked) are
// cancelled and recycled; as with fired events, callers must drop their
// references. Stale heap and batch entries are dropped without touching
// their (already recycled) events.
func (e *Engine) Reset() {
	for p := 0; p < e.nparts; p++ {
		pq := &e.parts[p]
		for i := range pq.queue {
			if ent := &pq.queue[i]; ent.live() {
				e.retire(ent.ev)
			}
		}
		clear(pq.queue)
		pq.queue = pq.queue[:0]
		pq.live = 0
		pq.dead = 0
		// Entries before head are always dead; later entries are live
		// exactly when the stamp snapshot still matches.
		for _, ent := range pq.batch[pq.head:] {
			if ent.ev.stamp == ent.stamp {
				e.retire(ent.ev)
			}
		}
		pq.batch = pq.batch[:0]
		pq.head = 0
		if sl := pq.next; sl != nil {
			pq.next = nil
			e.retire(sl)
		}
	}
	e.staged = 0
	e.now, e.seq, e.stepped = 0, 0, 0
}

// retire cancels a still-pending event during Reset and parks it on the
// free list.
func (e *Engine) retire(ev *Event) {
	ev.where = notQueued
	ev.canceled = true
	ev.stamp = 0
	ev.fn = nil
	e.free = append(e.free, ev)
}

// alloc returns a reset Event from the free list, or a fresh one.
func (e *Engine) alloc(at Time, fn func()) *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.stamp, ev.fn, ev.where, ev.canceled = at, e.seq, 0, fn, notQueued, false
		return ev
	}
	return &Event{at: at, seq: e.seq, fn: fn, where: notQueued}
}

// recycle parks a no-longer-pending event on the free list, dropping its
// callback so captured state can be collected.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// enqueue stamps ev and pushes it onto pq's heap. The fresh stamp makes any
// previous heap or batch entry for ev stale.
func (e *Engine) enqueue(pq *partQueue, ev *Event) {
	e.stamps++
	ev.stamp = e.stamps
	ev.where = inHeap
	pq.push(ev)
}

// push appends a heap entry for ev (already stamped) and restores the heap
// order.
func (pq *partQueue) push(ev *Event) {
	pq.queue = append(pq.queue, heapEnt{at: ev.at, seq: ev.seq, stamp: ev.stamp, ev: ev})
	pq.siftUp(len(pq.queue) - 1)
	pq.live++
}

// popMin removes and returns the heap's root entry. Callers prune stale
// roots first when they need a live event.
func (pq *partQueue) popMin() heapEnt {
	q := pq.queue
	root := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = heapEnt{}
	pq.queue = q[:n]
	if n > 0 {
		q[0] = last
		pq.siftDown(0)
	}
	return root
}

// pruneHead pops stale entries off the heap root so the head, if any, is
// live. This is the "staleness check at pop": lazy deletion settles its
// debt here, one sift-down per stale entry, instead of O(log n) surgery at
// every Cancel/Reschedule. With no stale entries outstanding (dead == 0)
// it returns without touching any event.
func (pq *partQueue) pruneHead() {
	if pq.dead == 0 {
		return
	}
	for len(pq.queue) > 0 && !pq.queue[0].live() {
		pq.popMin()
		pq.dead--
	}
}

// siftUp moves the entry at position i toward the root until its parent is
// not after it.
func (pq *partQueue) siftUp(i int) {
	q := pq.queue
	ent := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !entBefore(ent.at, ent.seq, q[p].at, q[p].seq) {
			break
		}
		q[i] = q[p]
		i = p
	}
	q[i] = ent
}

// siftDown moves the entry at position i toward the leaves, swapping with
// its earliest child while that child precedes it.
func (pq *partQueue) siftDown(i int) {
	q := pq.queue
	n := len(q)
	ent := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if entBefore(q[j].at, q[j].seq, q[m].at, q[m].seq) {
				m = j
			}
		}
		if !entBefore(q[m].at, q[m].seq, ent.at, ent.seq) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = ent
}

// liveBatchHead returns the partition's first still-live staged event, or
// nil. Dead entries (consumed, cancelled, rescheduled, or recycled — the
// stamp snapshot no longer matches) are skipped permanently, and a fully
// consumed batch resets so its backing array is reused.
func (pq *partQueue) liveBatchHead() *Event {
	for pq.head < len(pq.batch) {
		ent := pq.batch[pq.head]
		if ent.ev.stamp == ent.stamp {
			return ent.ev
		}
		pq.head++
	}
	if len(pq.batch) > 0 {
		pq.batch = pq.batch[:0]
		pq.head = 0
	}
	return nil
}

// peekLocal returns the partition's earliest pending event and which
// container holds it: the (at, seq) minimum of the pruned heap head, the
// first live batch entry, and the next-event slot.
func (pq *partQueue) peekLocal() (*Event, int8) {
	pq.pruneHead()
	var best *Event
	src := srcHeap
	if len(pq.queue) > 0 {
		best = pq.queue[0].ev
	}
	if bev := pq.liveBatchHead(); bev != nil && (best == nil || before(bev, best)) {
		best, src = bev, srcBatch
	}
	if sl := pq.next; sl != nil && (best == nil || before(sl, best)) {
		best, src = sl, srcSlot
	}
	return best, src
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events fired so far (for diagnostics and
// performance reporting).
func (e *Engine) Processed() uint64 { return e.stepped }

// Pending returns the number of events currently queued, staged or
// slot-parked.
func (e *Engine) Pending() int {
	n := e.staged
	for p := 0; p < e.nparts; p++ {
		pq := &e.parts[p]
		n += pq.live
		if pq.next != nil {
			n++
		}
	}
	return n
}

// Schedule queues fn to run at virtual time at, on the host partition.
// Scheduling in the past panics: it always indicates a model bug, and
// silently clamping would hide causality violations.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	return e.SchedulePart(PartHost, at, fn)
}

// SchedulePart queues fn to run at virtual time at on partition p. The
// sequential reference engine keeps one queue and ignores p; results are
// identical either way. Scheduling in the past panics.
//
// The monotonic fast path lives here: when the partition's next-event slot
// is empty the event parks there in O(1), so the dominant
// fire-then-schedule-successor chains never touch the heap.
//
//cocolint:hotpath
func (e *Engine) SchedulePart(p Partition, at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %.12g before now %.12g", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(at, fn)
	if e.nparts > 1 {
		ev.part = int8(p)
	} else {
		ev.part = 0
	}
	e.seq++
	pq := &e.parts[ev.part]
	if pq.next == nil {
		pq.next = ev
		ev.where = inSlot
		return ev
	}
	e.enqueue(pq, ev)
	return ev
}

// After queues fn to run d seconds from now on the host partition.
// Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.SchedulePart(PartHost, e.now+d, fn)
}

// AfterPart queues fn to run d seconds from now on partition p. Negative d
// panics.
func (e *Engine) AfterPart(p Partition, d Time, fn func()) *Event {
	return e.SchedulePart(p, e.now+d, fn)
}

// Cancel removes a pending event — queued, staged or slot-parked — from the
// engine in O(1). A heap or batch resident just has its entry invalidated
// (the stamp stops matching); the entry itself is dropped when a pop or
// peek reaches it. Cancelling a fired or already-cancelled event is a
// no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.where == notQueued || ev.canceled {
		return
	}
	ev.canceled = true
	e.moved = true
	switch ev.where {
	case inSlot:
		e.parts[ev.part].next = nil
	case inBatch:
		e.staged--
	default: // inHeap
		e.parts[ev.part].live--
		e.parts[ev.part].dead++
	}
	ev.where = notQueued
	ev.stamp = 0
	e.recycle(ev)
}

// Reschedule moves a pending event to a new time, keeping its callback and
// issue order. A slot-parked event is retimed in place; a heap or batch
// resident is re-pushed under a fresh stamp, leaving its old entry stale —
// no heap surgery in either direction. Rescheduling a fired or cancelled
// event panics, as does a time in the past.
func (e *Engine) Reschedule(ev *Event, at Time) {
	if ev == nil || ev.where == notQueued || ev.canceled {
		panic("sim: reschedule of non-pending event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %.12g before now %.12g", at, e.now))
	}
	ev.at = at
	e.moved = true
	switch ev.where {
	case inSlot:
		return
	case inBatch:
		e.staged--
	default: // inHeap
		e.parts[ev.part].live--
		e.parts[ev.part].dead++
	}
	e.enqueue(&e.parts[ev.part], ev)
}

// peekLoc locates the next event to fire: the global (at, seq) minimum over
// every partition's heap head, batch head and slot. This scan is the
// deterministic merge point of the partitioned engine — whatever a drain
// staged or a schedule slot-parked, the minimum is always taken over the
// complete pending set, so the fired sequence equals the sequential
// engine's.
func (e *Engine) peekLoc() (best *Event, bestPQ *partQueue, bestSrc int8) {
	if e.nparts == 1 {
		pq := &e.parts[0]
		ev, src := pq.peekLocal()
		if ev == nil {
			return nil, nil, srcHeap
		}
		return ev, pq, src
	}
	for p := 0; p < e.nparts; p++ {
		pq := &e.parts[p]
		if ev, src := pq.peekLocal(); ev != nil && (best == nil || before(ev, best)) {
			best, bestPQ, bestSrc = ev, pq, src
		}
	}
	return best, bestPQ, bestSrc
}

// minOther returns the (at, seq) minimum over every partition except skip,
// or (+Inf, 0) when the rest of the engine is empty.
func (e *Engine) minOther(skip *partQueue) (Time, uint64) {
	at := math.Inf(1)
	seq := uint64(0)
	for p := 0; p < e.nparts; p++ {
		pq := &e.parts[p]
		if pq == skip {
			continue
		}
		if ev, _ := pq.peekLocal(); ev != nil && entBefore(ev.at, ev.seq, at, seq) {
			at, seq = ev.at, ev.seq
		}
	}
	return at, seq
}

// take removes ev — located by a peek — from its container and marks it no
// longer pending.
func (e *Engine) take(pq *partQueue, ev *Event, src int8) {
	switch src {
	case srcSlot:
		pq.next = nil
	case srcBatch:
		pq.head++
		e.staged--
		if pq.head == len(pq.batch) {
			pq.batch = pq.batch[:0]
			pq.head = 0
		}
	default: // srcHeap: ev is the pruned heap root
		pq.popMin()
		pq.live--
	}
	ev.where = notQueued
}

// fire advances the clock to ev, runs its callback, and recycles it.
//
//cocolint:hotpath
func (e *Engine) fire(ev *Event) {
	e.now = ev.at
	e.stepped++
	//lint:ignore hotpath the event callback IS the simulation; each model's callback is proved free at its own hot root
	ev.fn()
	// Recycle only after the callback returns: the callback may consult
	// the firing event (it is no longer pending), and recycling earlier
	// would let a Schedule inside the callback reuse it mid-flight.
	e.recycle(ev)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
//
//cocolint:hotpath
func (e *Engine) Step() bool {
	ev, pq, src := e.peekLoc()
	if ev == nil {
		return false
	}
	e.take(pq, ev, src)
	e.fire(ev)
	return true
}

// Run fires events until the queues drain, returning the final clock value.
// On a partitioned engine with draining enabled it periodically stages
// upcoming events into per-partition batches (see SetDrain).
//
// On partitioned engines Run batch-fires same-timestamp runs: after firing
// an event at time t from partition p, it keeps popping p's successors that
// also fire at t without re-scanning the other partitions, as long as the
// cross-partition minimum snapshot proves they are next. Only events issued
// before the run started qualify (seq below the run's snapshot) and any
// Cancel/Reschedule falls back to a full peek, so the fired sequence is
// provably the global (at, seq) order — identical to Step-ing one event at
// a time.
//
//cocolint:hotpath
func (e *Engine) Run() Time {
	if e.nparts == 1 {
		e.runFlat()
		return e.now
	}
	doDrain := e.drainAt > 0
	for {
		if doDrain {
			e.maybeDrain()
		}
		ev, pq, src := e.peekLoc()
		if ev == nil {
			return e.now
		}
		t := ev.at
		limit := e.seq // events scheduled from here on have seq >= limit
		e.moved = false
		e.take(pq, ev, src)
		e.fire(ev)
		haveOther := false
		var oAt Time
		var oSeq uint64
		for !e.moved {
			nxt, nsrc := pq.peekLocal()
			//lint:ignore floatorder exact same-timestamp run detection on stored event times
			if nxt == nil || nxt.at != t || nxt.seq >= limit {
				break
			}
			if !haveOther {
				// Lazily snapshot the rest of the engine: events scheduled
				// after this point carry seq >= limit, so they can never
				// precede a qualifying nxt and the snapshot stays valid for
				// the whole run (Reschedule is the one exception, handled
				// by e.moved above).
				oAt, oSeq = e.minOther(pq)
				haveOther = true
			}
			if !entBefore(t, nxt.seq, oAt, oSeq) {
				break
			}
			e.take(pq, nxt, nsrc)
			e.fire(nxt)
		}
	}
}

// runFlat is Run for the sequential reference engine: a tight loop over the
// single partition's slot and heap (batches exist only under partitioned
// draining).
//
//cocolint:hotpath
func (e *Engine) runFlat() {
	pq := &e.parts[0]
	for {
		pq.pruneHead()
		sl := pq.next
		if len(pq.queue) > 0 {
			h := &pq.queue[0]
			if sl == nil || entBefore(h.at, h.seq, sl.at, sl.seq) {
				ev := h.ev
				pq.popMin()
				pq.live--
				ev.where = notQueued
				e.fire(ev)
				continue
			}
		}
		if sl == nil {
			return
		}
		pq.next = nil
		sl.where = notQueued
		e.fire(sl)
	}
}

// RunUntil fires events with timestamps <= deadline (advancing the clock to
// at most deadline) and returns the number of events fired.
func (e *Engine) RunUntil(deadline Time) uint64 {
	fired := uint64(0)
	for {
		ev, pq, src := e.peekLoc()
		if ev == nil || ev.at > deadline {
			break
		}
		e.take(pq, ev, src)
		e.fire(ev)
		fired++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return fired
}
