// Package sim implements the deterministic discrete-event simulation engine
// that underpins the simulated GPU testbeds. All hardware models (PCIe link,
// copy engines, compute engine) are expressed as events on a single virtual
// clock measured in seconds.
//
// The engine is deliberately simple: a 4-ary min-heap of timestamped
// callbacks with a monotonically increasing sequence number as the
// tie-breaker, so that runs are bit-for-bit reproducible. Events may be
// cancelled and rescheduled, which the fluid-flow transfer model uses to
// re-plan completion times whenever link contention changes.
//
// The heap is hand-specialized rather than container/heap: the (at, seq)
// comparison is inlined (no interface dispatch, no `any` boxing on
// push/pop), and the 4-ary layout roughly halves the sift-down depth for
// the queue sizes the campaign engine sustains. Since (at, seq) is a total
// order, any correct heap pops the identical event sequence — the
// specialization changes throughput only, never simulated results.
package sim

import "fmt"

// Time is a point on the virtual clock, in seconds since simulation start.
type Time = float64

// Event is a scheduled callback. The zero value is not useful; events are
// created through Engine.Schedule or Engine.After.
//
// Lifetime: an *Event reference is only valid while the event is pending.
// Once it fires or is cancelled the engine recycles the Event object
// through a free list, and a later Schedule call may reuse it — holders
// must drop their references at that point (the link model clears its
// completion-event pointer when a transfer finishes).
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // position in the heap, -1 when not queued
	canceled bool
}

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Pending reports whether the event is still queued (not fired, not
// cancelled).
func (ev *Event) Pending() bool { return ev != nil && ev.index >= 0 && !ev.canceled }

// before is the heap order: earlier time first, then issue order.
func before(a, b *Event) bool {
	//lint:ignore floatorder exact tie-break on stored event times; both sides are loaded values, no rounding happens here
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use; the entire simulation runs on the calling goroutine.
type Engine struct {
	now     Time
	seq     uint64
	queue   []*Event // 4-ary min-heap ordered by before()
	stepped uint64
	// free recycles fired and cancelled events so steady-state scheduling
	// allocates no *Event per call (the per-simulation constant the
	// campaign engine's hot path pays millions of times).
	free []*Event
}

// initialHeapCap pre-sizes the event heap so short simulations never grow
// it and long ones grow it logarithmically few times.
const initialHeapCap = 256

// New returns an engine with the clock at zero and an empty event queue.
func New() *Engine {
	return &Engine{queue: make([]*Event, 0, initialHeapCap)}
}

// Reset returns the engine to its initial state — clock at zero, empty
// queue, zeroed counters — while keeping the event free list and the heap
// backing array, so a reused engine runs its next simulation without
// re-paying the warm-up allocations. Events still pending are cancelled
// and recycled; as with fired events, callers must drop their references.
func (e *Engine) Reset() {
	for i, ev := range e.queue {
		e.queue[i] = nil
		ev.index = -1
		ev.canceled = true
		ev.fn = nil
		e.free = append(e.free, ev)
	}
	e.queue = e.queue[:0]
	e.now, e.seq, e.stepped = 0, 0, 0
}

// alloc returns a reset Event from the free list, or a fresh one.
func (e *Engine) alloc(at Time, fn func()) *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.index, ev.canceled = at, e.seq, fn, -1, false
		return ev
	}
	return &Event{at: at, seq: e.seq, fn: fn, index: -1}
}

// recycle parks a no-longer-pending event on the free list, dropping its
// callback so captured state can be collected.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// push appends ev to the heap and restores the heap order.
func (e *Engine) push(ev *Event) {
	ev.index = len(e.queue)
	e.queue = append(e.queue, ev)
	e.siftUp(ev.index)
}

// popMin removes and returns the earliest event.
func (e *Engine) popMin() *Event {
	q := e.queue
	root := q[0]
	root.index = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		e.siftDown(0)
	}
	return root
}

// remove deletes the event at heap position i.
func (e *Engine) remove(i int) {
	q := e.queue
	q[i].index = -1
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	if i < n {
		q[i] = last
		last.index = i
		e.siftDown(i)
		e.siftUp(q[i].index)
	}
}

// fix restores the heap order after the event at position i changed time.
func (e *Engine) fix(i int) {
	e.siftDown(i)
	e.siftUp(e.queue[i].index)
}

// siftUp moves the event at position i toward the root until its parent is
// not after it.
func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !before(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = ev
	ev.index = i
}

// siftDown moves the event at position i toward the leaves, swapping with
// its earliest child while that child precedes it.
func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if before(q[j], q[m]) {
				m = j
			}
		}
		if !before(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = ev
	ev.index = i
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events fired so far (for diagnostics and
// performance reporting).
func (e *Engine) Processed() uint64 { return e.stepped }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule queues fn to run at virtual time at. Scheduling in the past
// panics: it always indicates a model bug, and silently clamping would hide
// causality violations.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %.12g before now %.12g", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(at, fn)
	e.seq++
	e.push(ev)
	return ev
}

// After queues fn to run d seconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.Schedule(e.now+d, fn)
}

// Cancel removes a pending event from the queue. Cancelling a fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.canceled {
		return
	}
	ev.canceled = true
	e.remove(ev.index)
	e.recycle(ev)
}

// Reschedule moves a pending event to a new time, keeping its callback.
// Rescheduling a fired or cancelled event panics, as does a time in the
// past.
func (e *Engine) Reschedule(ev *Event, at Time) {
	if ev == nil || ev.index < 0 || ev.canceled {
		panic("sim: reschedule of non-pending event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %.12g before now %.12g", at, e.now))
	}
	ev.at = at
	e.fix(ev.index)
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.popMin()
	e.now = ev.at
	e.stepped++
	ev.fn()
	// Recycle only after the callback returns: the callback may consult
	// the firing event (it is no longer pending), and recycling earlier
	// would let a Schedule inside the callback reuse it mid-flight.
	e.recycle(ev)
	return true
}

// Run fires events until the queue drains, returning the final clock value.
func (e *Engine) Run() Time {
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline (advancing the clock to
// at most deadline) and returns the number of events fired.
func (e *Engine) RunUntil(deadline Time) uint64 {
	fired := uint64(0)
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
		fired++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return fired
}
