// Package sim implements the deterministic discrete-event simulation engine
// that underpins the simulated GPU testbeds. All hardware models (PCIe link,
// copy engines, compute engine) are expressed as events on a single virtual
// clock measured in seconds.
//
// The engine comes in two modes sharing one implementation:
//
//   - New() builds the sequential reference engine: a single 4-ary min-heap
//     of timestamped callbacks with a monotonically increasing sequence
//     number as the tie-breaker, so that runs are bit-for-bit reproducible.
//   - NewPartitioned() splits the pending set into per-device event queues
//     (host, H2D link, D2H link, compute engine) in the classic conservative
//     parallel-DES formulation. Partitions can be drained ahead of time into
//     sorted per-partition batches — optionally by worker goroutines — and
//     the next event to fire is always the global (at, seq) minimum over
//     every partition's heap head and batch head, so the merged event order
//     is identical to the sequential engine's by construction (see
//     partition.go for the invariants).
//
// Events may be cancelled and rescheduled, which the fluid-flow transfer
// model uses to re-plan completion times whenever link contention changes.
//
// The heap is hand-specialized rather than container/heap: the (at, seq)
// comparison is inlined (no interface dispatch, no `any` boxing on
// push/pop), and the 4-ary layout roughly halves the sift-down depth for
// the queue sizes the campaign engine sustains. Since (at, seq) is a total
// order, any correct heap pops the identical event sequence — the
// specialization changes throughput only, never simulated results.
package sim

import "fmt"

// Time is a point on the virtual clock, in seconds since simulation start.
type Time = float64

// Partition identifies one of a partitioned engine's event queues. The
// sequential reference engine ignores partitions and keeps every event on
// one heap; the (at, seq) total order makes the two modes fire the
// identical event sequence.
type Partition int8

// The partitions mirror the simulated testbed's independently progressing
// hardware units: host-side launch/completion processing, one queue per
// PCIe link direction, and the device compute engine.
const (
	PartHost Partition = iota
	PartH2D
	PartD2H
	PartCompute
)

// NumParts is the number of event queues a partitioned engine maintains.
const NumParts = int(PartCompute) + 1

// Event.index sentinels: an event is on a partition heap (index >= 0),
// staged in a drained batch (inBatch), or not queued at all (notQueued —
// fired, cancelled, or recycled).
const (
	notQueued = -1
	inBatch   = -3
)

// Event is a scheduled callback. The zero value is not useful; events are
// created through Engine.Schedule or Engine.After.
//
// Lifetime: an *Event reference is only valid while the event is pending.
// Once it fires or is cancelled the engine recycles the Event object
// through a free list, and a later Schedule call may reuse it — holders
// must drop their references at that point (the link model clears its
// completion-event pointer when a transfer finishes).
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	index    int // heap position, or the inBatch/notQueued sentinel
	part     int8
	canceled bool
}

// At returns the virtual time at which the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Pending reports whether the event is still queued (not fired, not
// cancelled). Staged events — drained into a partition batch but not yet
// fired — are still pending: staging is a throughput detail invisible to
// the hardware models.
func (ev *Event) Pending() bool { return ev != nil && ev.index != notQueued && !ev.canceled }

// before is the total event order: earlier time first, then issue order.
// Every queue — heap or batch, sequential or partitioned — agrees on it,
// which is what makes the partitioned merge bitwise-identical to the
// sequential engine.
func before(a, b *Event) bool {
	//lint:ignore floatorder exact tie-break on stored event times; both sides are loaded values, no rounding happens here
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// batchEntry is one staged event in a partition's drained batch. The seq
// snapshot detects stale entries: if the event was consumed and its object
// recycled into a new event, the sequence numbers no longer match (seq is
// never reused within a simulation) and the entry is dead.
type batchEntry struct {
	ev  *Event
	seq uint64
}

// partQueue is one partition's pending set: a 4-ary min-heap plus a sorted
// FIFO batch of events staged by a drain. The partition's earliest event is
// the smaller of the heap head and the first live batch entry.
type partQueue struct {
	queue []*Event     // 4-ary min-heap ordered by before()
	batch []batchEntry // drained events in (at, seq) order
	head  int          // index of the first unconsumed batch entry
}

// Engine is a discrete-event simulator instance. It is not safe for
// concurrent use: callbacks always execute sequentially on the goroutine
// calling Step/Run, in the global (at, seq) order. A partitioned engine may
// additionally stage future events through worker goroutines during a
// drain (see SetDrain), but staging never executes callbacks.
type Engine struct {
	now     Time
	seq     uint64
	stepped uint64
	// free recycles fired and cancelled events so steady-state scheduling
	// allocates no *Event per call (the per-simulation constant the
	// campaign engine's hot path pays millions of times).
	free []*Event

	nparts int // 1 (sequential reference) or NumParts (partitioned)
	staged int // live events currently sitting in partition batches
	// drainAt enables staged draining once the total heap population
	// reaches it; 0 disables draining (the sequential fallback).
	drainAt int
	fanout  func(n int, f func(int))
	stageFn func(int) // e.stagePart bound once, so drains allocate nothing
	look    [NumParts]Time
	safe    [NumParts]Time // per-partition staging horizons of the current drain
	parts   [NumParts]partQueue
}

// initialHeapCap pre-sizes the event heap so short simulations never grow
// it and long ones grow it logarithmically few times.
const initialHeapCap = 256

// New returns a sequential single-queue engine with the clock at zero —
// the bitwise reference every partitioned configuration is pinned to.
func New() *Engine {
	e := &Engine{nparts: 1}
	e.parts[0].queue = make([]*Event, 0, initialHeapCap)
	return e
}

// NewPartitioned returns an engine with one event queue per simulated
// hardware unit (see Partition). It fires the identical event sequence as
// New — the partitions exist so pending events can be drained and staged
// concurrently, not to change simulated results.
func NewPartitioned() *Engine {
	e := &Engine{nparts: NumParts}
	for p := 0; p < NumParts; p++ {
		e.parts[p].queue = make([]*Event, 0, initialHeapCap/NumParts)
	}
	return e
}

// Partitioned reports whether the engine maintains per-device queues.
func (e *Engine) Partitioned() bool { return e.nparts > 1 }

// Reset returns the engine to its initial state — clock at zero, empty
// queues, zeroed counters — while keeping the event free list, the heap and
// batch backing arrays, and the partition/lookahead/drain configuration, so
// a reused engine runs its next simulation without re-paying the warm-up
// allocations. Events still pending (queued or staged) are cancelled and
// recycled; as with fired events, callers must drop their references.
func (e *Engine) Reset() {
	for p := 0; p < e.nparts; p++ {
		pq := &e.parts[p]
		for i, ev := range pq.queue {
			pq.queue[i] = nil
			ev.index = notQueued
			ev.canceled = true
			ev.fn = nil
			e.free = append(e.free, ev)
		}
		pq.queue = pq.queue[:0]
		// Entries before head are always dead; later entries are live
		// exactly when the index/seq snapshot still matches.
		for _, ent := range pq.batch[pq.head:] {
			if ent.ev.index == inBatch && ent.ev.seq == ent.seq {
				ent.ev.index = notQueued
				ent.ev.canceled = true
				ent.ev.fn = nil
				e.free = append(e.free, ent.ev)
			}
		}
		pq.batch = pq.batch[:0]
		pq.head = 0
	}
	e.staged = 0
	e.now, e.seq, e.stepped = 0, 0, 0
}

// alloc returns a reset Event from the free list, or a fresh one.
func (e *Engine) alloc(at Time, fn func()) *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.at, ev.seq, ev.fn, ev.index, ev.canceled = at, e.seq, fn, notQueued, false
		return ev
	}
	return &Event{at: at, seq: e.seq, fn: fn, index: notQueued}
}

// recycle parks a no-longer-pending event on the free list, dropping its
// callback so captured state can be collected.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// push appends ev to the heap and restores the heap order.
func (pq *partQueue) push(ev *Event) {
	ev.index = len(pq.queue)
	pq.queue = append(pq.queue, ev)
	pq.siftUp(ev.index)
}

// popMin removes and returns the earliest heap event.
func (pq *partQueue) popMin() *Event {
	q := pq.queue
	root := q[0]
	root.index = notQueued
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	pq.queue = q[:n]
	if n > 0 {
		q[0] = last
		last.index = 0
		pq.siftDown(0)
	}
	return root
}

// remove deletes the event at heap position i.
func (pq *partQueue) remove(i int) {
	q := pq.queue
	q[i].index = notQueued
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	pq.queue = q[:n]
	if i < n {
		q[i] = last
		last.index = i
		pq.siftDown(i)
		pq.siftUp(q[i].index)
	}
}

// fix restores the heap order after the event at position i changed time.
func (pq *partQueue) fix(i int) {
	pq.siftDown(i)
	pq.siftUp(pq.queue[i].index)
}

// siftUp moves the event at position i toward the root until its parent is
// not after it.
func (pq *partQueue) siftUp(i int) {
	q := pq.queue
	ev := q[i]
	for i > 0 {
		p := (i - 1) >> 2
		if !before(ev, q[p]) {
			break
		}
		q[i] = q[p]
		q[i].index = i
		i = p
	}
	q[i] = ev
	ev.index = i
}

// siftDown moves the event at position i toward the leaves, swapping with
// its earliest child while that child precedes it.
func (pq *partQueue) siftDown(i int) {
	q := pq.queue
	n := len(q)
	ev := q[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		end := c + 4
		if end > n {
			end = n
		}
		m := c
		for j := c + 1; j < end; j++ {
			if before(q[j], q[m]) {
				m = j
			}
		}
		if !before(q[m], ev) {
			break
		}
		q[i] = q[m]
		q[i].index = i
		i = m
	}
	q[i] = ev
	ev.index = i
}

// liveBatchHead returns the partition's first still-live staged event, or
// nil. Dead entries (consumed, cancelled, rescheduled, or recycled — the
// index/seq snapshot no longer matches) are skipped permanently, and a
// fully consumed batch resets so its backing array is reused.
func (pq *partQueue) liveBatchHead() *Event {
	for pq.head < len(pq.batch) {
		ent := pq.batch[pq.head]
		if ent.ev.index == inBatch && ent.ev.seq == ent.seq {
			return ent.ev
		}
		pq.head++
	}
	if len(pq.batch) > 0 {
		pq.batch = pq.batch[:0]
		pq.head = 0
	}
	return nil
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events fired so far (for diagnostics and
// performance reporting).
func (e *Engine) Processed() uint64 { return e.stepped }

// Pending returns the number of events currently queued or staged.
func (e *Engine) Pending() int {
	n := e.staged
	for p := 0; p < e.nparts; p++ {
		n += len(e.parts[p].queue)
	}
	return n
}

// Schedule queues fn to run at virtual time at, on the host partition.
// Scheduling in the past panics: it always indicates a model bug, and
// silently clamping would hide causality violations.
func (e *Engine) Schedule(at Time, fn func()) *Event {
	return e.SchedulePart(PartHost, at, fn)
}

// SchedulePart queues fn to run at virtual time at on partition p. The
// sequential reference engine keeps one queue and ignores p; results are
// identical either way. Scheduling in the past panics.
//
//cocolint:hotpath
func (e *Engine) SchedulePart(p Partition, at Time, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %.12g before now %.12g", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	ev := e.alloc(at, fn)
	if e.nparts > 1 {
		ev.part = int8(p)
	} else {
		ev.part = 0
	}
	e.seq++
	e.parts[ev.part].push(ev)
	return ev
}

// After queues fn to run d seconds from now on the host partition.
// Negative d panics.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.SchedulePart(PartHost, e.now+d, fn)
}

// AfterPart queues fn to run d seconds from now on partition p. Negative d
// panics.
func (e *Engine) AfterPart(p Partition, d Time, fn func()) *Event {
	return e.SchedulePart(p, e.now+d, fn)
}

// Cancel removes a pending event — queued or staged — from the engine.
// Cancelling a fired or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index == notQueued || ev.canceled {
		return
	}
	ev.canceled = true
	if ev.index == inBatch {
		// The batch entry goes stale (its index snapshot no longer
		// matches) and is skipped when the scan reaches it.
		e.staged--
		ev.index = notQueued
		e.recycle(ev)
		return
	}
	e.parts[ev.part].remove(ev.index)
	e.recycle(ev)
}

// Reschedule moves a pending event to a new time, keeping its callback and
// issue order. A staged event migrates back to its partition heap (the
// batch entry goes stale), so moving an event in either direction is safe.
// Rescheduling a fired or cancelled event panics, as does a time in the
// past.
func (e *Engine) Reschedule(ev *Event, at Time) {
	if ev == nil || ev.index == notQueued || ev.canceled {
		panic("sim: reschedule of non-pending event")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %.12g before now %.12g", at, e.now))
	}
	ev.at = at
	if ev.index == inBatch {
		e.staged--
		e.parts[ev.part].push(ev)
		return
	}
	e.parts[ev.part].fix(ev.index)
}

// peekLoc locates the next event to fire: the global (at, seq) minimum over
// every partition's heap head and first live batch entry. This scan is the
// deterministic merge point of the partitioned engine — whatever a drain
// staged, the minimum is always taken over the complete pending set, so the
// fired sequence equals the sequential engine's.
func (e *Engine) peekLoc() (best *Event, bestPQ *partQueue, fromBatch bool) {
	if e.nparts == 1 {
		pq := &e.parts[0]
		if len(pq.queue) == 0 {
			return nil, nil, false
		}
		return pq.queue[0], pq, false
	}
	for p := 0; p < e.nparts; p++ {
		pq := &e.parts[p]
		if bev := pq.liveBatchHead(); bev != nil && (best == nil || before(bev, best)) {
			best, bestPQ, fromBatch = bev, pq, true
		}
		if len(pq.queue) > 0 {
			if hev := pq.queue[0]; best == nil || before(hev, best) {
				best, bestPQ, fromBatch = hev, pq, false
			}
		}
	}
	return best, bestPQ, fromBatch
}

// Step fires the earliest pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
//
//cocolint:hotpath
func (e *Engine) Step() bool {
	ev, pq, fromBatch := e.peekLoc()
	if ev == nil {
		return false
	}
	if fromBatch {
		pq.head++
		e.staged--
		ev.index = notQueued
		if pq.head == len(pq.batch) {
			pq.batch = pq.batch[:0]
			pq.head = 0
		}
	} else {
		pq.popMin()
	}
	e.now = ev.at
	e.stepped++
	//lint:ignore hotpath the event callback IS the simulation; each model's callback is proved free at its own hot root
	ev.fn()
	// Recycle only after the callback returns: the callback may consult
	// the firing event (it is no longer pending), and recycling earlier
	// would let a Schedule inside the callback reuse it mid-flight.
	e.recycle(ev)
	return true
}

// Run fires events until the queues drain, returning the final clock value.
// On a partitioned engine with draining enabled it periodically stages
// upcoming events into per-partition batches (see SetDrain).
//
//cocolint:hotpath
func (e *Engine) Run() Time {
	if e.drainAt > 0 && e.nparts > 1 {
		for {
			e.maybeDrain()
			if !e.Step() {
				return e.now
			}
		}
	}
	for e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline (advancing the clock to
// at most deadline) and returns the number of events fired.
func (e *Engine) RunUntil(deadline Time) uint64 {
	fired := uint64(0)
	for {
		ev, _, _ := e.peekLoc()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
		fired++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return fired
}
