package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Hotpath statically proves annotated functions allocation-free. A
// function marked with a
//
//	//cocolint:hotpath
//
// doc-comment directive (or listed under hotpath.roots in cocolint.json by
// its types.Func.FullName, e.g. "(*cocopelia/internal/sim.Engine).Step")
// is a hot root: every heap-allocating construct in its body is a finding,
// and so is every call — however many packages away — that reaches one,
// reported at the root's call site with the offending chain in the
// message. The runtime AllocsPerRun gates sample specific call sites; this
// analyzer enforces the same invariant over the whole static call graph,
// so a stray closure capture or interface boxing two frames down is caught
// at lint time instead of in the next profile.
//
// Flagged constructs: make/new, escaping composite literals (&T{},
// slice and map literals), append, closure captures, interface boxing
// (conversions, assignments, returns, call arguments), method values,
// string↔[]byte conversions, string concatenation, map assignment,
// variadic calls without a spread, go statements, and any fmt or errors
// call. Allocations inside panic arguments are ignored — a panicking hot
// path is already dead.
//
// Escape hatches, narrowest first: a //lint:ignore hotpath reason on the
// finding line (for amortized warm-up allocations inside the root), a
// hotpath.assumeFree entry in cocolint.json naming a free-list/pool entry
// point (reason mandatory), or annotating the callee itself — an annotated
// callee becomes its own proof obligation and callers trust it.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "prove //cocolint:hotpath functions allocation-free across the call graph",
	Run:  runHotpath,
}

func runHotpath(pass *Pass) {
	hf := moduleFacts(pass.Module, pass.Config)

	// Config-rot findings are module-global; report them once, from the
	// first package's pass.
	if len(pass.Module.Packages) > 0 && pass.Pkg == pass.Module.Packages[0] {
		cfgPos := token.Position{Filename: pass.Module.Dir + "/" + ConfigFileName, Line: 1, Column: 1}
		for _, r := range hf.unmatchedRoots {
			pass.reportAt(cfgPos, "hotpath.roots entry %q names no module function", r)
		}
		for _, a := range hf.unmatchedAssumeFree {
			pass.reportAt(cfgPos, "hotpath.assumeFree entry %q names no module function", a)
		}
	}

	// Report each hot root declared in this package. Iterate files/decls
	// (not the map) so finding order is deterministic.
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := hf.funcs[fn]
			if fi == nil || !fi.hot {
				continue
			}
			reportHotRoot(pass, hf, fi)
		}
	}
}

// reportHotRoot emits the findings of one annotated function: its own
// allocating constructs at their positions, and every call edge whose
// callee is not provably allocation-free at the call site, with the chain
// to the representative allocation in the message.
func reportHotRoot(pass *Pass, hf *hotFacts, fi *funcInfo) {
	name := shortFuncName(fi.fn)
	if fi.noBody {
		pass.Reportf(fi.decl.Pos(), "hot path %s has no body to analyze; annotate a Go wrapper instead", name)
		return
	}
	for i := range fi.sites {
		s := &fi.sites[i]
		pass.Reportf(s.pos, "hot path %s: %s", name, s.what)
	}
	for i := range fi.calls {
		e := &fi.calls[i]
		fact, next := hf.edgeFact(e)
		switch fact {
		case FactFree:
		case FactAllocates:
			pass.Reportf(e.pos, "hot path %s: call to %s allocates: %s", name, calleeName(e), hf.chainString(pass.Fset, next))
		default:
			if next != nil {
				pass.Reportf(e.pos, "hot path %s: cannot prove %s allocation-free: %s", name, calleeName(e), hf.chainString(pass.Fset, next))
			} else if e.callee != nil {
				pass.Reportf(e.pos, "hot path %s: cannot prove %s allocation-free: no allocation fact for external functions (hotpath.assumeFree in cocolint.json if it is known safe)", name, calleeName(e))
			} else {
				pass.Reportf(e.pos, "hot path %s: %s; hot paths need static callees (or a suppression naming the invariant that makes this safe)", name, e.desc)
			}
		}
	}
}

// calleeName names a call edge's target for messages.
func calleeName(e *callEdge) string {
	if e.callee != nil {
		return shortFuncName(e.callee)
	}
	return e.desc
}

// collectBody fills fi.sites and fi.calls from the function body: the
// intra-procedural allocation pass. It walks the body but not nested
// function literals — a literal's body runs at another time and place; the
// cost accounted here is the closure value itself (flagged when it
// captures variables).
func collectBody(pkg *Package, fi *funcInfo) {
	c := &bodyCollector{pkg: pkg, fi: fi, callFuns: map[ast.Expr]bool{}}
	ast.Inspect(fi.decl.Body, c.visit)
	// Walk order is syntactic, hence deterministic, but sort defensively
	// by position so fact chains and findings never depend on walk
	// details.
	sort.Slice(fi.sites, func(i, j int) bool { return fi.sites[i].pos < fi.sites[j].pos })
	sort.Slice(fi.calls, func(i, j int) bool { return fi.calls[i].pos < fi.calls[j].pos })
}

type bodyCollector struct {
	pkg *Package
	fi  *funcInfo
	// callFuns marks expressions appearing in call position, so a
	// selector that is the Fun of a call is not misread as a method value.
	callFuns map[ast.Expr]bool
}

func (c *bodyCollector) site(pos token.Pos, format string, args ...any) {
	c.fi.sites = append(c.fi.sites, allocSite{pos: pos, what: fmt.Sprintf(format, args...)})
}

func (c *bodyCollector) typeOf(e ast.Expr) types.Type { return c.pkg.Info.TypeOf(e) }

func (c *bodyCollector) typeString(t types.Type) string {
	return types.TypeString(t, types.RelativeTo(c.pkg.Types))
}

// visit is the ast.Inspect callback; returning false prunes the subtree.
func (c *bodyCollector) visit(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.FuncLit:
		if vars := c.capturedVars(n); len(vars) > 0 {
			c.site(n.Pos(), "func literal captures %s; an escaping closure allocates", strings.Join(vars, ", "))
		}
		return false // the literal's body is a different function

	case *ast.GoStmt:
		c.site(n.Pos(), "go statement allocates a goroutine")
		return true

	case *ast.CallExpr:
		return c.call(n)

	case *ast.CompositeLit:
		switch c.underlying(n).(type) {
		case *types.Slice:
			c.site(n.Pos(), "slice literal allocates its backing array")
		case *types.Map:
			c.site(n.Pos(), "map literal allocates")
		}
		return true

	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := n.X.(*ast.CompositeLit); ok {
				c.site(n.Pos(), "&composite literal escapes to the heap")
			}
		}
		return true

	case *ast.BinaryExpr:
		if n.Op == token.ADD {
			if t := c.typeOf(n); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					if tv, ok := c.pkg.Info.Types[n]; !ok || tv.Value == nil {
						c.site(n.Pos(), "string concatenation allocates")
					}
				}
			}
		}
		return true

	case *ast.SelectorExpr:
		c.methodValue(n)
		return true

	case *ast.AssignStmt:
		c.assign(n)
		return true

	case *ast.ReturnStmt:
		c.returns(n)
		return true
	}
	return true
}

// call classifies one call expression: conversion, builtin, static call,
// or dynamic call. The return value feeds ast.Inspect (false prunes).
func (c *bodyCollector) call(call *ast.CallExpr) bool {
	fun := ast.Unparen(call.Fun)
	c.callFuns[fun] = true

	// Type conversion T(x).
	if tv, ok := c.pkg.Info.Types[fun]; ok && tv.IsType() {
		c.conversion(call, tv.Type)
		return true
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := c.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch id.Name {
			case "append":
				c.site(call.Pos(), "append may grow its backing array (preallocate or pool the slice)")
			case "make":
				if t := c.typeOf(call); t != nil {
					c.site(call.Pos(), "make(%s) allocates", c.typeString(t))
				} else {
					c.site(call.Pos(), "make allocates")
				}
			case "new":
				if len(call.Args) == 1 && c.typeOf(call.Args[0]) != nil {
					c.site(call.Pos(), "new(%s) allocates", c.typeString(c.typeOf(call.Args[0])))
				} else {
					c.site(call.Pos(), "new allocates")
				}
			case "panic":
				// A panicking hot path is already dead; allocations that
				// feed the panic value are not steady-state cost.
				return false
			case "print", "println":
				c.site(call.Pos(), "%s boxes its operands and allocates", id.Name)
			}
			return true
		}
	}

	// Statically resolved function or method call.
	if fn := staticCallee(c.pkg, fun); fn != nil {
		c.staticCall(call, fn)
		return true
	}

	// Interface method call.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if s, ok := c.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			if types.IsInterface(s.Recv()) {
				c.fi.calls = append(c.fi.calls, callEdge{
					pos:  call.Pos(),
					desc: fmt.Sprintf("cannot resolve interface method call %s.%s", exprString(sel.X), sel.Sel.Name),
				})
				return true
			}
		}
	}

	// Dynamic call through a func value.
	if t := c.typeOf(fun); t != nil {
		if _, ok := t.Underlying().(*types.Signature); ok {
			c.fi.calls = append(c.fi.calls, callEdge{
				pos:  call.Pos(),
				desc: fmt.Sprintf("cannot resolve dynamic call through func value %s", exprString(fun)),
			})
		}
	}
	return true
}

// conversion flags allocating conversions: string↔[]byte/[]rune and
// boxing into an interface.
func (c *bodyCollector) conversion(call *ast.CallExpr, target types.Type) {
	if len(call.Args) != 1 {
		return
	}
	src := c.typeOf(call.Args[0])
	if src == nil {
		return
	}
	tu, su := target.Underlying(), src.Underlying()
	if isString(tu) && isByteOrRuneSlice(su) || isByteOrRuneSlice(tu) && isString(su) {
		c.site(call.Pos(), "conversion %s(%s) copies and allocates", c.typeString(target), c.typeString(src))
		return
	}
	if types.IsInterface(tu) && c.boxes(src) {
		c.site(call.Pos(), "conversion boxes %s into interface %s", c.typeString(src), c.typeString(target))
	}
}

// staticCall records a resolved call: known-free externs are dropped, fmt
// and errors become sharp allocation sites, everything else becomes a call
// edge for the fact propagation. It also flags interface boxing of the
// arguments and implicit variadic slice construction.
func (c *bodyCollector) staticCall(call *ast.CallExpr, fn *types.Func) {
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "fmt" || pkg.Path() == "errors") {
		switch fn.Name() {
		case "Is", "As", "Unwrap":
			// errors.Is/As/Unwrap inspect; they do not build errors.
			return
		}
		c.site(call.Pos(), "%s.%s allocates", pkg.Name(), fn.Name())
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil {
		c.checkArgs(call, sig)
	}
	c.fi.calls = append(c.fi.calls, callEdge{pos: call.Pos(), callee: fn})
}

// checkArgs flags an implicit variadic argument slice and concrete values
// boxed into interface parameters.
func (c *bodyCollector) checkArgs(call *ast.CallExpr, sig *types.Signature) {
	np := sig.Params().Len()
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= np {
		c.site(call.Pos(), "variadic call builds an argument slice; pass an explicit spread slice")
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			pt = sig.Params().At(np - 1).Type()
			if s, ok := pt.Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := c.typeOf(arg)
		if at == nil || !c.boxes(at) {
			continue
		}
		c.site(arg.Pos(), "argument boxes %s into interface %s", c.typeString(at), c.typeString(pt))
	}
}

// methodValue flags x.M used as a value: binding the receiver allocates a
// closure. Method expressions (T.M) and selectors in call position do not.
func (c *bodyCollector) methodValue(sel *ast.SelectorExpr) {
	if c.callFuns[sel] {
		return
	}
	s, ok := c.pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return
	}
	c.site(sel.Pos(), "method value %s.%s allocates a bound closure (cache it outside the hot path)", exprString(sel.X), sel.Sel.Name)
}

// assign flags map writes and interface boxing through assignment.
func (c *bodyCollector) assign(as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if ix, ok := lhs.(*ast.IndexExpr); ok {
			if t := c.typeOf(ix.X); t != nil {
				if _, ok := t.Underlying().(*types.Map); ok {
					c.site(lhs.Pos(), "map assignment may grow the table")
				}
			}
		}
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		lt := c.typeOf(lhs)
		if lt == nil || !types.IsInterface(lt.Underlying()) {
			continue
		}
		rt := c.typeOf(as.Rhs[i])
		if rt == nil || !c.boxes(rt) {
			continue
		}
		c.site(as.Rhs[i].Pos(), "assignment boxes %s into interface %s", c.typeString(rt), c.typeString(lt))
	}
}

// returns flags concrete values boxed into interface results.
func (c *bodyCollector) returns(ret *ast.ReturnStmt) {
	sig, ok := c.fi.fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		rt := sig.Results().At(i).Type()
		if !types.IsInterface(rt.Underlying()) {
			continue
		}
		vt := c.typeOf(res)
		if vt == nil || !c.boxes(vt) {
			continue
		}
		c.site(res.Pos(), "return boxes %s into interface %s", c.typeString(vt), c.typeString(rt))
	}
}

// boxes reports whether storing a value of type t into an interface
// allocates: concrete non-pointer types do (the data word cannot hold
// them); pointers, interfaces, untyped nil and zero-size types do not.
func (c *bodyCollector) boxes(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Chan, *types.Map:
		return false // single-word or already-boxed values
	case *types.Basic:
		return u.Kind() != types.UntypedNil && u.Kind() != types.UnsafePointer
	}
	return true
}

// capturedVars lists (up to three) variables a function literal captures
// from an enclosing function: identifiers resolving to non-field variables
// declared outside the literal but not at package level.
func (c *bodyCollector) capturedVars(lit *ast.FuncLit) []string {
	seen := map[string]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // the literal's own params/locals
		}
		if v.Parent() == nil || v.Parent() == c.pkg.Types.Scope() || v.Parent().Parent() == types.Universe {
			return true // package-level state is not a capture
		}
		if !seen[v.Name()] {
			seen[v.Name()] = true
			if len(out) < 3 {
				out = append(out, v.Name())
			}
		}
		return true
	})
	sort.Strings(out)
	return out
}

// staticCallee resolves a call's Fun expression to a concrete *types.Func:
// a package function, or a method of a concrete (non-interface) receiver.
func staticCallee(pkg *Package, fun ast.Expr) *types.Func {
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		if s, ok := pkg.Info.Selections[fun]; ok {
			if s.Kind() != types.MethodVal || types.IsInterface(s.Recv()) {
				return nil
			}
		}
		return fn
	}
	return nil
}

// isString reports whether an underlying type is string.
func isString(u types.Type) bool {
	b, ok := u.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isByteOrRuneSlice reports whether an underlying type is []byte/[]rune.
func isByteOrRuneSlice(u types.Type) bool {
	s, ok := u.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// underlying returns an expression type's underlying type (nil-safe).
func (c *bodyCollector) underlying(e ast.Expr) types.Type {
	t := c.typeOf(e)
	if t == nil {
		return nil
	}
	return t.Underlying()
}
