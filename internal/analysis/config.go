package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// ConfigFileName is the checked-in rule configuration cocolint reads from
// the module root.
const ConfigFileName = "cocolint.json"

// Config is the declarative rule configuration. Pattern entries are import
// paths ("cocopelia/internal/sim"), subtree globs
// ("cocopelia/cmd/..."), or — where noted — single files addressed as
// importpath/file.go ("cocopelia/internal/parallel/clock.go"), which keeps
// allowlists as narrow as one source file.
type Config struct {
	Determinism struct {
		// Allow lists packages/files where wall-clock and RNG calls are
		// permitted (the render layers' run summaries and the clock shim).
		Allow []string `json:"allow"`
	} `json:"determinism"`

	OutputPurity struct {
		// Stdout lists the packages allowed to write to standard output
		// (the render/output layers). Everything else must use stderr.
		Stdout []string `json:"stdout"`
	} `json:"outputpurity"`

	Goroutines struct {
		// Allow lists packages/files permitted to create goroutines (the
		// concurrency layer). Everywhere else, fan-out must flow through a
		// parallel.Pool so the campaigns stay replayable.
		Allow []string `json:"allow"`
	} `json:"goroutines"`

	Hotpath struct {
		// Roots lists functions to treat as hot roots in addition to the
		// //cocolint:hotpath annotations, by types.Func.FullName — e.g.
		// "(*cocopelia/internal/sim.Engine).Step" or
		// "cocopelia/internal/parallel.Fanout".
		Roots []string `json:"roots"`
		// AssumeFree allowlists free-list/pool entry points the fact
		// propagation treats as allocation-free: functions whose
		// allocations are amortized warm-up (grow-once slices, recycled
		// object pools) rather than steady-state cost. The reason is
		// mandatory and should name the amortizing mechanism.
		AssumeFree []AssumeFreeEntry `json:"assumeFree"`
	} `json:"hotpath"`

	Layering struct {
		// Layers is the ordered layer spec, lowest (most foundational)
		// first. A package may import module-internal packages only from
		// its own layer or lower ones. Every module package must be
		// assigned to exactly one layer.
		Layers []Layer `json:"layers"`
	} `json:"layering"`
}

// AssumeFreeEntry is one hotpath allowlist entry: a function symbol (by
// FullName) declared allocation-free, with the justification on record.
type AssumeFreeEntry struct {
	Func   string `json:"func"`
	Reason string `json:"reason"`
}

// Layer is one tier of the import DAG.
type Layer struct {
	Name     string   `json:"name"`
	Packages []string `json:"packages"`
}

// LoadConfig reads cocolint.json from the module root. A missing file
// yields the zero config: determinism and outputpurity apply everywhere
// and layering is skipped.
func LoadConfig(moduleDir string) (*Config, error) {
	cfg, err := LoadConfigFile(filepath.Join(moduleDir, ConfigFileName))
	if os.IsNotExist(err) {
		return &Config{}, nil
	}
	return cfg, err
}

// LoadConfigFile reads a rule configuration from an explicit path. Unlike
// LoadConfig, a missing file is an error — a caller naming a file wants
// that file, not a silent empty config.
func LoadConfigFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, err
		}
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Base(path), err)
	}
	return &cfg, nil
}

// matchPattern reports whether a package path matches one pattern (exact
// path or "prefix/..." subtree glob).
func matchPattern(pattern, pkgPath string) bool {
	if sub, ok := strings.CutSuffix(pattern, "/..."); ok {
		return pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/")
	}
	return pkgPath == pattern
}

// allowed reports whether the package, or the specific file inside it, is
// covered by the pattern list. filename is the base name of the source
// file under analysis; file-granular patterns address it as
// importpath/file.go.
func allowed(patterns []string, pkgPath, filename string) bool {
	for _, p := range patterns {
		if strings.HasSuffix(p, ".go") {
			if p == pkgPath+"/"+filename {
				return true
			}
			continue
		}
		if matchPattern(p, pkgPath) {
			return true
		}
	}
	return false
}

// layerOf returns the index and name of the layer a package belongs to.
func (c *Config) layerOf(pkgPath string) (int, string, bool) {
	for i, l := range c.Layering.Layers {
		for _, p := range l.Packages {
			if matchPattern(p, pkgPath) {
				return i, l.Name, true
			}
		}
	}
	return 0, "", false
}
