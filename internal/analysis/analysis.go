// Package analysis is a small, dependency-free static-analysis framework
// in the style of golang.org/x/tools/go/analysis, built only on the
// standard library (go/ast, go/parser, go/types, go/token). It exists to
// mechanically enforce the simulator's reproducibility contract — the
// "byte-identical output at any worker count" guarantee the evaluation
// campaigns rely on — instead of leaving it to convention:
//
//   - determinism: no wall-clock or global-RNG calls outside an explicit
//     allowlist;
//   - maporder: no map iteration feeding output rows or result slices
//     without sorting;
//   - outputpurity: stdout is reserved for the render/output layers,
//     diagnostics go to stderr;
//   - goroutines: goroutine creation is confined to the concurrency
//     layer (internal/parallel); everything else fans out through a
//     parallel.Pool;
//   - layering: the package import DAG follows the checked-in layer spec;
//   - floatorder: no order-sensitive float comparisons or accumulation
//     over map iteration;
//   - hotpath: functions annotated //cocolint:hotpath are proven
//     allocation-free, inter-procedurally, over the static call graph.
//
// The cocolint CLI (cmd/cocolint) loads the module, runs every analyzer,
// and reports findings as "file:line: [analyzer] message". Individual
// findings can be suppressed with a
//
//	//lint:ignore analyzer reason
//
// comment on the offending line or the line directly above it; the reason
// is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single
// type-checked package and reports findings through the pass.
type Analyzer struct {
	// Name identifies the analyzer in findings and suppression comments
	// (lowercase, no spaces).
	Name string
	// Doc is a one-line description shown by cocolint -help.
	Doc string
	// Run executes the check on one package.
	Run func(*Pass)
}

// Pass carries one package's parsed and type-checked form to an analyzer,
// plus the module-wide context the layering rules need.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package
	// Module is the loaded module (all packages), for whole-program
	// checks such as layering.
	Module *Module
	// Config is the declarative rule configuration (allowlists, layer
	// spec) loaded from cocolint.json.
	Config *Config

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAt records a finding at an already-resolved position — for
// findings that point outside the Go sources (cocolint.json config rot).
func (p *Pass) reportAt(pos token.Position, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression in the package under analysis
// (nil if unknown).
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(e)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`

	// Flattened position for the -json mode.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

// String renders the finding in the canonical "file:line: [analyzer]
// message" form (column included when known).
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run executes the analyzers over every package of the module and returns
// the surviving findings (suppressions applied) sorted by position. It
// also reports misuse of the suppression syntax itself: an ignore
// directive without a reason, or one that suppressed nothing.
func Run(mod *Module, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range mod.Packages {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     mod.Fset,
				Pkg:      pkg,
				Module:   mod,
				Config:   cfg,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	diags = applySuppressions(mod, diags)
	for i := range diags {
		diags[i].File = diags[i].Pos.Filename
		diags[i].Line = diags[i].Pos.Line
		diags[i].Col = diags[i].Pos.Column
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// All returns every analyzer the project ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		MapOrder,
		OutputPurity,
		Goroutines,
		Layering,
		FloatOrder,
		Hotpath,
	}
}
