package analysis

import (
	"go/token"
	"strings"
)

// Messages of the suppression machinery's own findings (analyzer "lint").
// MsgUnusedSuppression is exported so cocolint's -unused-suppressions mode
// can select exactly these findings.
const (
	msgMalformedDirective = "malformed ignore directive: want //lint:ignore analyzer reason"
	MsgUnusedSuppression  = "ignore directive suppresses nothing (remove it or fix the analyzer name)"
)

// UnusedSuppressions filters a Run result down to the findings that report
// //lint:ignore directives which no longer suppress anything.
func UnusedSuppressions(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Analyzer == "lint" && d.Message == MsgUnusedSuppression {
			out = append(out, d)
		}
	}
	return out
}

// ignoreDirective is one parsed "//lint:ignore analyzer[,analyzer] reason"
// comment. A directive covers findings on its own line (end-of-line form)
// and on the line directly below it (comment-above form).
type ignoreDirective struct {
	pos       token.Position
	analyzers []string
	reason    string
	used      bool
}

// collectDirectives parses every lint:ignore comment in the module.
func collectDirectives(mod *Module) []*ignoreDirective {
	var out []*ignoreDirective
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
					rest, ok := strings.CutPrefix(text, "lint:ignore")
					if !ok {
						continue
					}
					d := &ignoreDirective{pos: mod.Fset.Position(c.Pos())}
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						d.analyzers = strings.Split(fields[0], ",")
						d.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
					}
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// applySuppressions filters diags through the module's lint:ignore
// directives and appends findings (analyzer "lint") for malformed or
// unused directives, so suppressions can never silently rot.
func applySuppressions(mod *Module, diags []Diagnostic) []Diagnostic {
	directives := collectDirectives(mod)

	// Index valid directives by (file, covered line).
	type key struct {
		file string
		line int
	}
	index := map[key][]*ignoreDirective{}
	var out []Diagnostic
	for _, d := range directives {
		if len(d.analyzers) == 0 || d.reason == "" {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lint",
				Message:  msgMalformedDirective,
			})
			continue
		}
		index[key{d.pos.Filename, d.pos.Line}] = append(index[key{d.pos.Filename, d.pos.Line}], d)
		index[key{d.pos.Filename, d.pos.Line + 1}] = append(index[key{d.pos.Filename, d.pos.Line + 1}], d)
	}

	for _, diag := range diags {
		suppressed := false
		for _, d := range index[key{diag.Pos.Filename, diag.Pos.Line}] {
			for _, a := range d.analyzers {
				if a == diag.Analyzer {
					d.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			out = append(out, diag)
		}
	}

	for _, d := range directives {
		if len(d.analyzers) > 0 && d.reason != "" && !d.used {
			out = append(out, Diagnostic{
				Pos:      d.pos,
				Analyzer: "lint",
				Message:  MsgUnusedSuppression,
			})
		}
	}
	return out
}
