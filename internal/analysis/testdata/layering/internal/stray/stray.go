// Package stray is missing from the layering spec.
package stray // want `package demo/internal/stray is not assigned to any layer`

// X keeps the package non-empty.
const X = 1
