// Package sim sits in the foundation layer and must not look upward.
package sim

import "demo/internal/eval" // want `layer "foundation" package demo/internal/sim must not import layer "evaluation" package demo/internal/eval`

// Uses keeps the illegal import referenced.
const Uses = eval.Campaign
