// Package eval is the top layer of the demo spec.
package eval

// Campaign is referenced from the (illegal) lower-layer import.
const Campaign = "campaign"
