// Package demo exercises the hotpath analyzer: every allocating construct
// inside an annotated function, plus fact propagation through a
// cross-package call chain (demo → dep → dep.inner) and the assumeFree
// allowlist (demo/pool.Get).
package demo

import (
	"fmt"
	"math"
	"strconv"

	"demo/dep"
	"demo/pool"
)

type point struct{ x, y int }

func (p point) Norm() int { return p.x + p.y }

// Op is an interface whose dynamic calls the analyzer cannot see through.
type Op interface{ Apply() int }

func vsum(xs ...int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func noop() {}

func sink(v interface{}) { _ = v }

//cocolint:hotpath
func Hot(xs []int, m map[string]int, s string) int {
	buf := make([]int, 4)             // want `hot path demo.Hot: make\(\[\]int\) allocates`
	xs = append(xs, 1)                // want `append may grow its backing array`
	ys := []int{1, 2}                 // want `slice literal allocates its backing array`
	p := &point{x: 1}                 // want `&composite literal escapes to the heap`
	q := new(point)                   // want `new\(point\) allocates`
	f := func() int { return buf[0] } // want `func literal captures buf`
	b := []byte(s)                    // want `conversion \[\]byte\(string\) copies and allocates`
	s2 := s + "!"                     // want `string concatenation allocates`
	m["k"] = 1                        // want `map assignment may grow the table`
	var i interface{}
	i = point{x: 2}  // want `assignment boxes point into interface`
	sink(p.x)        // want `argument boxes int into interface`
	_ = vsum(1, 2)   // want `variadic call builds an argument slice`
	_ = fmt.Sprint(i) // want `fmt.Sprint allocates`
	go noop()        // want `go statement allocates a goroutine`
	nrm := p.Norm    // want `method value p.Norm allocates a bound closure`
	_ = nrm
	_ = f()          // want `cannot resolve dynamic call through func value f`
	_ = dep.Helper() // want `call to dep.Helper allocates: dep.Helper → dep.inner: make\(\[\]byte\) allocates at dep.go:\d+`
	n := strconv.Itoa(3) // want `cannot prove strconv.Itoa allocation-free`
	_ = math.Sqrt(float64(len(n)))
	_ = pool.Get()
	return len(xs) + len(ys) + q.x + len(b) + len(s2)
}

//cocolint:hotpath
func HotIface(o Op) int {
	return o.Apply() // want `cannot resolve interface method call o.Apply`
}

//cocolint:hotpath
func HotRet(x int) interface{} {
	return x // want `return boxes int into interface`
}

// Root2 is hot via cocolint.json hotpath.roots, not an annotation.
func Root2() []int {
	return make([]int, 8) // want `hot path demo.Root2: make\(\[\]int\) allocates`
}

var warm []int

// HotWarm proves //lint:ignore works inside golden testdata modules: the
// append below produces no finding, so no want comment accompanies it.
//
//cocolint:hotpath
func HotWarm() {
	//lint:ignore hotpath amortized grow-once warm-up; steady state appends into capacity
	warm = append(warm, 0)
}

// Cold calls everything without annotations: no findings outside hot
// roots.
func Cold() int {
	c := make([]int, 1)
	c = append(c, dep.Helper())
	return len(c)
}
