// Package pool is a free-list entry point allowlisted via
// hotpath.assumeFree: Get appends during warm-up, but the config declares
// that amortized, so hot callers see it as allocation-free.
package pool

var free []int

// Get pops from the free list, growing it only when empty.
func Get() int {
	if len(free) == 0 {
		free = append(free, 0)
	}
	x := free[len(free)-1]
	free = free[:len(free)-1]
	return x
}
