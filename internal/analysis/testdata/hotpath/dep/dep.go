// Package dep seeds an allocating callee two hops from the hot root: the
// analyzer must flag demo.Hot's call to Helper with the chain down to
// inner's make.
package dep

// Helper is allocation-free itself; the debt is one call deeper.
func Helper() int {
	return inner()
}

func inner() int {
	buf := make([]byte, 8)
	return len(buf)
}
