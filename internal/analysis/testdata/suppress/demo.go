// Package demo exercises the suppression machinery's own diagnostics:
// a directive without a reason is malformed (line 10), and a directive
// that suppresses nothing is reported as stale (line 12). The expected
// findings are asserted by line number in the golden test, because a
// want-comment cannot share the directive's line without becoming its
// reason text.
package demo

func bad() {
	//lint:ignore determinism
	_ = 1
	//lint:ignore maporder nothing here ranges a map
	_ = 2
}
