// Package pool stands in for the concurrency layer: the whole package is
// allowlisted, so its goroutine fan-out is legal.
package pool

import "sync"

func Fanout(n int, f func(int)) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			f(i)
		}()
	}
	wg.Wait()
}
