// Package demo exercises the goroutines analyzer: go statements outside
// the declared concurrency layer are findings, including inside nested
// function literals; calling into the layer is fine.
package demo

import "sync"

func spawn(ch chan int) {
	go func() { ch <- 1 }() // want `go statement outside the concurrency layer`
}

func nested(wg *sync.WaitGroup) {
	f := func() {
		go wg.Done() // want `go statement outside the concurrency layer`
	}
	f()
}

func fine(ch chan int) int {
	return <-ch // channel use without a spawn is fine
}
