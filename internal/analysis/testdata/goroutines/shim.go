package demo

// shim.go is on the file-granular allowlist: a spawn here is legal even
// though the rest of the package is not allowed to create goroutines.

func shimSpawn(done chan struct{}) {
	go func() { close(done) }()
}
