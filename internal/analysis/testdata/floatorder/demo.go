// Package demo exercises the floatorder analyzer: computed-float equality
// and float accumulation over map iteration are findings; sentinel
// comparisons against constants, integer arithmetic, and slice-order
// accumulation are not.
package demo

func equality(a, b float64, xs []float32) bool {
	if a == b { // want `== between computed floats is rounding-sensitive`
		return true
	}
	if a != b*2 { // want `!= between computed floats is rounding-sensitive`
		return false
	}
	if a == 0 { // sentinel against a constant is exact — fine
		return false
	}
	if b != 1.0 { // fine
		return false
	}
	return xs[0] == xs[1] // want `== between computed floats is rounding-sensitive`
}

func intsAreFine(i, j int) bool { return i == j }

func sumOverMap(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation into total over map iteration`
	}
	return total
}

func spelledOutSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `float accumulation into total over map iteration`
	}
	return total
}

func sumOverSlice(xs []float64) float64 {
	total := 0.0
	for _, v := range xs { // slice order is deterministic — fine
		total += v
	}
	return total
}

func countOverMap(m map[string]float64) int {
	n := 0
	for range m {
		n++ // integer counting is order-independent — fine
	}
	return n
}

func maxOverMap(m map[string]float64) float64 {
	best := 0.0
	for _, v := range m {
		if v > best { // max is order-independent — fine
			best = v
		}
	}
	return best
}

func suppressed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//lint:ignore floatorder demo of an accepted exception
		total += v
	}
	return total
}
