// Package demo exercises the maporder analyzer: map iterations feeding
// order-sensitive sinks are findings; the sorted-keys idiom, sorted-after
// accumulation, and order-independent bodies are not.
package demo

import (
	"fmt"
	"sort"
	"strings"
)

// appendUnsorted accumulates rows straight out of map order.
func appendUnsorted(m map[string]int) []string {
	var rows []string
	for k := range m {
		rows = append(rows, k) // want `append to rows inside map iteration`
	}
	return rows
}

// appendThenSort launders the iteration order with a sort — fine.
func appendThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedKeysIdiom ranges the sorted slice, not the map — fine.
func sortedKeysIdiom(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// printInMapRange emits output in map order.
func printInMapRange(m map[string]int) {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want `fmt.Fprintf inside map iteration`
		b.WriteString(k)                 // want `b.WriteString inside map iteration`
		fmt.Println(v)                   // want `fmt.Println inside map iteration`
	}
}

// innerSlice accumulates only within one iteration — fine.
func innerSlice(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// rekeyed regroups into a keyed structure, independent of order — fine.
func rekeyed(m map[string]int) map[string][]int {
	out := map[string][]int{}
	for k, v := range m {
		out[k] = append(out[k], v)
	}
	return out
}

// suppressed shows an accepted exception.
func suppressed(m map[string]int) []string {
	var rows []string
	for k := range m {
		//lint:ignore maporder the caller sorts these rows before rendering
		rows = append(rows, k)
	}
	return rows
}
