// Package demo exercises the outputpurity analyzer: stdout writes outside
// the declared render layers are findings, stderr and plain formatting are
// not.
package demo

import (
	"fmt"
	"os"
)

func impure(x int) {
	fmt.Println("progress:", x)           // want `fmt.Println writes to stdout outside a render layer`
	fmt.Printf("%d\n", x)                 // want `fmt.Printf writes to stdout outside a render layer`
	fmt.Fprintf(os.Stdout, "done %d", x)  // want `os.Stdout outside a render layer`
	println("debug")                      // want `builtin println bypasses the output layers`
}

func pure(x int) string {
	fmt.Fprintf(os.Stderr, "diag %d\n", x) // stderr is fine
	return fmt.Sprintf("%d", x)            // formatting without a sink is fine
}
