// Command tool is a declared render layer: stdout is its job.
package main

import "fmt"

func main() {
	fmt.Println("rendered output")
}
