// Package demo exercises the determinism analyzer: wall-clock and
// global-RNG uses are findings, seeded generators and type references are
// not, and lint:ignore suppression works.
package demo

import (
	"math/rand"
	"time"
)

func clocks() {
	_ = time.Now()          // want `time.Now observes the wall clock`
	start := time.Time{}
	_ = time.Since(start)   // want `time.Since observes the wall clock`
	time.Sleep(time.Second) // want `time.Sleep observes the wall clock`
	_ = time.Second         // constants are fine
	var d time.Duration     // type references are fine
	_ = d.Seconds()
}

func rng() float64 {
	r := rand.New(rand.NewSource(42)) // seeded constructors are fine
	_ = rand.Int()                    // want `rand.Int uses the global random source`
	rand.Shuffle(3, func(i, j int) {}) // want `rand.Shuffle uses the global random source`
	var keep *rand.Rand                // type reference, fine
	_ = keep
	return r.Float64()
}

func suppressed() {
	//lint:ignore determinism this demo exercises the suppression syntax
	_ = time.Now()
}
