// Package allowed is on the determinism allowlist (a render layer
// equivalent): wall-clock summaries are permitted here.
package allowed

import "time"

// Elapsed is allowlisted wall-clock use.
func Elapsed(start time.Time) time.Duration { return time.Since(start) }
