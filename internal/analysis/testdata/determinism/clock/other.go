package clock

import "time"

func sneaky() time.Time {
	return time.Now() // want `time.Now observes the wall clock`
}
