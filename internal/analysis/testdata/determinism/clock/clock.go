// Package clock exercises file-granular allowlisting: clock.go is
// allowlisted, other.go in the same package is not.
package clock

import "time"

// Wall is the sanctioned clock shim (this file is allowlisted).
func Wall() time.Time { return time.Now() }
