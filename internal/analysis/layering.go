package analysis

import (
	"strings"
)

// Layering enforces the package import DAG declared in cocolint.json: the
// spec assigns every module package to an ordered layer, and a package may
// import module-internal packages only from its own layer or lower ones.
// This is what keeps the simulation core (sim, link, device) ignorant of
// the evaluation harness and the CLIs — e.g. internal/sim can never grow
// an import of internal/eval or cmd/*. Packages missing from the spec are
// reported, so the spec cannot silently fall behind the tree.
var Layering = &Analyzer{
	Name: "layering",
	Doc:  "enforce the layered import DAG from cocolint.json",
	Run:  runLayering,
}

func runLayering(pass *Pass) {
	if len(pass.Config.Layering.Layers) == 0 {
		return
	}
	pkg := pass.Pkg
	idx, layerName, ok := pass.Config.layerOf(pkg.Path)
	if !ok {
		pass.Reportf(pkg.Files[0].Package,
			"package %s is not assigned to any layer in %s; add it to the layering spec", pkg.Path, ConfigFileName)
		return
	}
	for _, f := range pkg.Files {
		for _, spec := range f.Imports {
			dep := strings.Trim(spec.Path.Value, `"`)
			if dep != pass.Module.Path && !strings.HasPrefix(dep, pass.Module.Path+"/") {
				continue
			}
			depIdx, depLayer, ok := pass.Config.layerOf(dep)
			if !ok {
				// The dep's own package pass reports the missing
				// assignment; don't duplicate it here.
				continue
			}
			if depIdx > idx {
				pass.Reportf(spec.Pos(),
					"layer %q package %s must not import layer %q package %s (lower layers cannot depend on higher ones)",
					layerName, pkg.Path, depLayer, dep)
			}
		}
	}
}
