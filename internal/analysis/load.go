package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the import path ("cocopelia/internal/sim").
	Path string
	// Dir is the absolute directory.
	Dir string
	// Files holds the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results.
	Types *types.Package
	Info  *types.Info

	// imports lists the package's module-internal import paths.
	imports []string
}

// Module is a whole loaded module: every non-test package, type-checked.
type Module struct {
	// Path is the module path from go.mod.
	Path string
	// Dir is the module root (the directory holding go.mod).
	Dir string
	// Packages are the loaded packages sorted by import path.
	Packages []*Package
	Fset     *token.FileSet

	// facts caches the hotpath analyzer's module-wide allocation facts
	// (built lazily by moduleFacts, keyed by the config).
	facts *hotFacts
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// Load parses and type-checks every non-test package under the module
// rooted at dir (which must contain go.mod). Test files, testdata
// directories, hidden directories and vendor trees are skipped. Standard
// library imports are resolved through the toolchain's export data, with a
// from-source fallback; module-internal imports are resolved against the
// packages being loaded, in dependency order.
func Load(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	mod := &Module{Path: modPath, Dir: root, Fset: token.NewFileSet()}

	// Discover and parse.
	byPath := map[string]*Package{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		pkg, err := parseDir(mod, path)
		if err != nil {
			return err
		}
		if pkg != nil {
			byPath[pkg.Path] = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Topological order over module-internal imports so every dependency
	// is type-checked before its importers.
	order, err := topoSort(byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{mod: mod, checked: map[string]*types.Package{}, fset: mod.Fset}
	for _, pkg := range order {
		if err := typeCheck(mod, pkg, imp); err != nil {
			return nil, err
		}
		imp.checked[pkg.Path] = pkg.Types
	}

	mod.Packages = order
	sort.Slice(mod.Packages, func(i, j int) bool { return mod.Packages[i].Path < mod.Packages[j].Path })
	return mod, nil
}

// parseDir parses the non-test .go files of one directory, returning nil
// when the directory holds no buildable Go package.
func parseDir(mod *Module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)

	rel, err := filepath.Rel(mod.Dir, dir)
	if err != nil {
		return nil, err
	}
	path := mod.Path
	if rel != "." {
		path = mod.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Path: path, Dir: dir}
	seen := map[string]bool{}
	for _, n := range names {
		f, err := parser.ParseFile(mod.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		pkg.Files = append(pkg.Files, f)
		for _, spec := range f.Imports {
			p := strings.Trim(spec.Path.Value, `"`)
			if (p == mod.Path || strings.HasPrefix(p, mod.Path+"/")) && !seen[p] {
				seen[p] = true
				pkg.imports = append(pkg.imports, p)
			}
		}
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// topoSort orders packages so that every module-internal dependency
// precedes its importers.
func topoSort(byPath map[string]*Package) ([]*Package, error) {
	paths := make([]string, 0, len(byPath))
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[string]int{}
	var order []*Package
	var visit func(string) error
	visit = func(p string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle through %s", p)
		}
		state[p] = visiting
		pkg := byPath[p]
		for _, dep := range pkg.imports {
			if _, ok := byPath[dep]; !ok {
				return fmt.Errorf("analysis: %s imports unknown module package %s", p, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[p] = done
		order = append(order, pkg)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// typeCheck runs go/types over one package.
func typeCheck(mod *Module, pkg *Package, imp types.Importer) error {
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkg.Path, mod.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	return nil
}

// moduleImporter resolves module-internal imports from the packages loaded
// so far and delegates everything else (the standard library) to the
// toolchain's export-data importer, falling back to from-source type
// checking when export data is unavailable.
type moduleImporter struct {
	mod     *Module
	checked map[string]*types.Package
	fset    *token.FileSet

	gc  types.Importer
	src types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if path == m.mod.Path || strings.HasPrefix(path, m.mod.Path+"/") {
		if p, ok := m.checked[path]; ok {
			return p, nil
		}
		return nil, fmt.Errorf("analysis: internal package %s not yet loaded (import cycle?)", path)
	}
	if m.gc == nil {
		m.gc = importer.ForCompiler(m.fset, "gc", nil)
	}
	p, err := m.gc.Import(path)
	if err == nil {
		return p, nil
	}
	if m.src == nil {
		m.src = importer.ForCompiler(m.fset, "source", nil)
	}
	p, srcErr := m.src.Import(path)
	if srcErr != nil {
		return nil, fmt.Errorf("analysis: importing %s: %v (source fallback: %v)", path, err, srcErr)
	}
	return p, nil
}
