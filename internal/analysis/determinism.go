package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// wallClockFuncs are the time-package entry points that sample or depend
// on the real clock. Formatting helpers (time.Duration methods,
// time.Unix, ...) are pure and stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// randConstructors are the math/rand entry points that build explicitly
// seeded generators; everything else at package level touches the global,
// unseeded source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true,
	// math/rand/v2 seeded constructors.
	"NewPCG": true, "NewChaCha8": true,
}

// Determinism forbids wall-clock sampling and the global math/rand source
// outside the allowlist in cocolint.json. The simulator's reproducibility
// contract (byte-identical campaign output at any worker count, noise
// seeds derived from cell keys) survives only if simulation, model and
// eval code never observes real time or shared RNG state; explicitly
// seeded rand.New(rand.NewSource(seed)) generators remain allowed
// everywhere.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall-clock and global-RNG use outside the allowlist",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		filename := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if allowed(pass.Config.Determinism.Allow, pass.Pkg.Path, filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := pkgNameOf(pass, sel)
			if !ok {
				return true
			}
			// Only function references matter: type names like rand.Rand
			// or time.Duration are inert.
			if _, isFunc := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			name := sel.Sel.Name
			switch pkgPath {
			case "time":
				if wallClockFuncs[name] {
					pass.Reportf(sel.Pos(),
						"time.%s observes the wall clock; derive timing from the simulation clock or inject a parallel.Clock (allowlist: cocolint.json)", name)
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Reportf(sel.Pos(),
						"rand.%s uses the global random source; use rand.New(rand.NewSource(seed)) with a seed derived from the work item", name)
				}
			}
			return true
		})
	}
}

// pkgNameOf resolves a selector's receiver to an imported package path,
// when the receiver is a package name rather than a value.
func pkgNameOf(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
