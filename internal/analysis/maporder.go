package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `range` statements over maps whose bodies feed
// order-sensitive sinks: appending to a slice declared outside the loop
// (result rows) or writing output (fmt printing, Write* methods on
// builders/writers). Go randomizes map iteration order, so such loops
// produce run-to-run different output. The canonical fix — collect the
// keys, sort them, then range over the sorted slice — is recognized: an
// appended-to slice that is later passed to a sort.* or slices.* call in
// the same function is not reported, because the sort launders the
// iteration order.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration that feeds output rows or result slices unsorted",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rng) {
				return true
			}
			checkMapRangeBody(pass, rng, enclosingFunc(stack))
			return true
		})
	}
}

// isMapRange reports whether the range expression has map type.
func isMapRange(pass *Pass, rng *ast.RangeStmt) bool {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody reports order-sensitive sinks inside one map range.
func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}

		// append(outer, ...) accumulating results across iterations.
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
				target := call.Args[0]
				if declaredOutside(pass, target, rng) && !sortedLater(pass, target, fnBody) {
					pass.Reportf(call.Pos(),
						"append to %s inside map iteration accumulates rows in random order; range over sorted keys (or sort the slice afterwards)",
						exprString(target))
				}
				return true
			}
		}

		// Output writes: fmt printing or Write* methods.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if pkgPath, ok := pkgNameOf(pass, sel); ok {
				if pkgPath == "fmt" && (stdoutPrinters[sel.Sel.Name] ||
					sel.Sel.Name == "Fprint" || sel.Sel.Name == "Fprintf" || sel.Sel.Name == "Fprintln") {
					pass.Reportf(call.Pos(),
						"fmt.%s inside map iteration emits output in random order; range over sorted keys", sel.Sel.Name)
				}
				return true
			}
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune":
				pass.Reportf(call.Pos(),
					"%s.%s inside map iteration emits output in random order; range over sorted keys",
					exprString(sel.X), sel.Sel.Name)
			}
		}
		return true
	})
}

// declaredOutside reports whether the append target is declared outside
// the range statement (so appends accumulate across iterations). Selector
// targets (struct fields) always count as outside.
func declaredOutside(pass *Pass, target ast.Expr, rng *ast.RangeStmt) bool {
	switch t := target.(type) {
	case *ast.Ident:
		obj := pass.Pkg.Info.ObjectOf(t)
		if obj == nil {
			return true
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		// out[k] = append(out[k], ...) regroups into a map/slice keyed
		// independently of iteration order.
		return false
	}
	return false
}

// sortedLater reports whether the slice is passed to a sort.* or slices.*
// call somewhere in the enclosing function, which makes the accumulation
// order irrelevant.
func sortedLater(pass *Pass, target ast.Expr, fnBody *ast.BlockStmt) bool {
	if fnBody == nil {
		return false
	}
	var obj types.Object
	var fieldName string
	switch t := target.(type) {
	case *ast.Ident:
		obj = pass.Pkg.Info.ObjectOf(t)
	case *ast.SelectorExpr:
		fieldName = t.Sel.Name
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgPath, ok := pkgNameOf(pass, sel)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range call.Args {
			switch a := arg.(type) {
			case *ast.Ident:
				if obj != nil && pass.Pkg.Info.ObjectOf(a) == obj {
					found = true
				}
			case *ast.SelectorExpr:
				if fieldName != "" && a.Sel.Name == fieldName {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// exprString renders a short name for simple expressions in messages.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return "expression"
}
