// Inter-procedural allocation facts for the hotpath analyzer.
//
// This file is the module-wide fact layer: every function declared in the
// module gets an intra-procedural summary (its allocating constructs and
// its outgoing call edges, collected in hotpath.go) and a propagated
// allocation fact — alloc-free, allocates, or unknown — computed bottom-up
// over the static call graph. Facts cross package boundaries: the module
// loader type-checks every package against the same object space, so a
// call site in internal/sim resolves to the identical *types.Func object
// as the declaration in internal/cudart, and the fact computed once for
// the callee is visible to every caller.
//
// The propagation is optimistic on cycles (a back edge contributes
// nothing: if a cycle member allocates, its own sites or forward edges
// already say so) and records, for every non-free function, one
// representative reason — an allocating construct or the edge to the
// offending callee — so a hot root's finding can print the whole call
// chain down to the allocation site.
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// AllocFact classifies one function's steady-state allocation behaviour.
type AllocFact uint8

const (
	// FactUnknown means the analysis could not prove either way: the
	// function makes a dynamic call, calls an external function without a
	// fact, or has no body (assembler stubs).
	FactUnknown AllocFact = iota
	// FactFree means the function is proven allocation-free: no
	// allocating construct in its body and every callee is FactFree.
	FactFree
	// FactAllocates means the function contains, or reaches through
	// static calls, an allocating construct.
	FactAllocates
)

// allocSite is one intra-procedural allocating construct.
type allocSite struct {
	pos  token.Pos
	what string
}

// callEdge is one outgoing call in a function body: statically resolved
// (callee set) or explicitly unresolvable (callee nil, desc says why).
type callEdge struct {
	pos    token.Pos
	callee *types.Func
	desc   string
}

// Propagation DFS colors.
const (
	factWhite uint8 = iota
	factGrey
	factBlack
)

// funcInfo is one module function's intra-procedural summary plus its
// propagated fact.
type funcInfo struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package

	// hot marks a function annotated //cocolint:hotpath or listed in the
	// config's hotpath.roots. Hot functions are proof obligations: their
	// findings are reported (and suppressed) at their own declaration, so
	// callers treat them as alloc-free.
	hot bool
	// assumedFree marks a function matched by hotpath.assumeFree — a
	// free-list or pool entry point whose allocations are declared
	// amortized warm-up rather than steady-state cost.
	assumedFree bool
	// noBody marks declaration-only functions (assembler kernels).
	noBody bool

	sites []allocSite
	calls []callEdge

	color uint8
	fact  AllocFact

	// The representative reason the function is not alloc-free: either an
	// allocating construct of its own (whySite) or the first offending
	// call edge (whyCall, with whyNext the callee's info when the callee
	// is a module function).
	whySite *allocSite
	whyCall *callEdge
	whyNext *funcInfo
}

// hotFacts is the module-wide fact table, built once per Run and cached on
// the Module (keyed by the config, which contributes roots and the
// assumeFree list).
type hotFacts struct {
	cfg   *Config
	funcs map[*types.Func]*funcInfo
	// unmatched config entries (roots / assumeFree symbols naming no
	// module function) — config rot, reported once as findings.
	unmatchedRoots      []string
	unmatchedAssumeFree []string
}

// moduleFacts returns the module's fact table, building it on first use.
func moduleFacts(mod *Module, cfg *Config) *hotFacts {
	if mod.facts != nil && mod.facts.cfg == cfg {
		return mod.facts
	}
	hf := &hotFacts{cfg: cfg, funcs: map[*types.Func]*funcInfo{}}

	roots := map[string]bool{}
	for _, r := range cfg.Hotpath.Roots {
		roots[r] = false
	}
	assume := map[string]bool{}
	for _, a := range cfg.Hotpath.AssumeFree {
		assume[a.Func] = false
	}

	// Collect every declared function's summary.
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{fn: fn, decl: fd, pkg: pkg}
				name := fn.FullName()
				if hasHotpathDirective(fd.Doc) {
					fi.hot = true
				}
				if _, ok := roots[name]; ok {
					fi.hot = true
					roots[name] = true
				}
				if _, ok := assume[name]; ok {
					fi.assumedFree = true
					assume[name] = true
				}
				if fd.Body == nil {
					fi.noBody = true
				} else {
					collectBody(pkg, fi)
				}
				hf.funcs[fn] = fi
			}
		}
	}
	for _, r := range cfg.Hotpath.Roots {
		if !roots[r] {
			hf.unmatchedRoots = append(hf.unmatchedRoots, r)
		}
	}
	for _, a := range cfg.Hotpath.AssumeFree {
		if !assume[a.Func] {
			hf.unmatchedAssumeFree = append(hf.unmatchedAssumeFree, a.Func)
		}
	}

	mod.facts = hf
	return hf
}

// hasHotpathDirective reports whether a doc comment group carries the
// //cocolint:hotpath annotation.
func hasHotpathDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == "//cocolint:hotpath" {
			return true
		}
	}
	return false
}

// resolve computes (and memoizes) a function's allocation fact,
// propagating bottom-up over its call edges.
func (hf *hotFacts) resolve(fi *funcInfo) AllocFact {
	switch fi.color {
	case factBlack:
		return fi.fact
	case factGrey:
		// Back edge of a recursion cycle: contributes nothing beyond what
		// the cycle members' own sites and forward edges already say.
		return FactFree
	}
	fi.color = factGrey

	fact := FactFree
	switch {
	case fi.assumedFree:
		// Declared pool/free-list entry point: trust the allowlist.
	case fi.noBody:
		fact = FactUnknown
	case len(fi.sites) > 0:
		fact = FactAllocates
		fi.whySite = &fi.sites[0]
	}

	if fact != FactAllocates && !fi.assumedFree {
		for i := range fi.calls {
			e := &fi.calls[i]
			cf, next := hf.edgeFact(e)
			if cf == FactFree {
				continue
			}
			if cf == FactAllocates {
				fact = FactAllocates
				fi.whySite, fi.whyCall, fi.whyNext = nil, e, next
				break
			}
			if fact == FactFree { // first Unknown; keep scanning for Allocates
				fact = FactUnknown
				fi.whyCall, fi.whyNext = e, next
			}
		}
	}

	fi.fact = fact
	fi.color = factBlack
	return fact
}

// edgeFact resolves one call edge to the callee's fact, plus the callee's
// funcInfo when it is a module function (for chain rendering).
func (hf *hotFacts) edgeFact(e *callEdge) (AllocFact, *funcInfo) {
	if e.callee == nil {
		return FactUnknown, nil
	}
	if cfi, ok := hf.funcs[e.callee]; ok {
		if cfi.hot {
			// An annotated hot function is its own proof obligation: its
			// findings are reported (or suppressed, with reasons) at its
			// declaration, so callers may assume it free.
			return FactFree, nil
		}
		return hf.resolve(cfi), cfi
	}
	return externFact(e.callee), nil
}

// externFreePkgs are external packages whose functions and methods are
// known allocation-free wholesale.
var externFreePkgs = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync/atomic": true,
}

// externFreeSyncTypes are the sync types whose methods are allocation-free
// in steady state (sync.Pool is deliberately absent: Get may call New).
var externFreeSyncTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
}

// externFact classifies a callee declared outside the module. Without
// export-data escape facts this is a small curated table: the pure math
// and atomic packages, lock/waitgroup methods, and seeded math/rand
// generator methods are free; everything else is unknown. fmt and errors
// calls never reach here — they are turned into allocation sites at
// collection time, with a sharper message.
func externFact(fn *types.Func) AllocFact {
	pkg := fn.Pkg()
	if pkg == nil {
		return FactUnknown // error.Error() and friends resolve pkg-less
	}
	path := pkg.Path()
	if externFreePkgs[path] {
		return FactFree
	}
	sig, _ := fn.Type().(*types.Signature)
	recv := sig != nil && sig.Recv() != nil
	switch path {
	case "math/rand", "math/rand/v2":
		// Generator methods (Float64, Int63, NormFloat64, ...) are free;
		// the constructors allocate and stay unknown-or-worse.
		if recv {
			return FactFree
		}
	case "sync":
		if recv && externFreeSyncTypes[recvTypeName(sig)] {
			return FactFree
		}
	}
	return FactUnknown
}

// recvTypeName returns the bare receiver type name of a method signature.
func recvTypeName(sig *types.Signature) string {
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// shortFuncName renders a function for finding messages: methods as
// (*T).m / (T).m, package functions as pkgname.f.
func shortFuncName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			if n, ok := p.Elem().(*types.Named); ok {
				return "(*" + n.Obj().Name() + ")." + fn.Name()
			}
		}
		if n, ok := t.(*types.Named); ok {
			return "(" + n.Obj().Name() + ")." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// chainString renders the call chain from (but not including) a hot root
// down to the representative allocation site or unprovable call, e.g.
//
//	(*Engine).recycle: append may grow its backing array at sim.go:222
//	(*Runtime).launch → (*Device).LaunchKernel: make([]byte) allocates at device.go:190
func (hf *hotFacts) chainString(fset *token.FileSet, start *funcInfo) string {
	var b strings.Builder
	fi := start
	for hop := 0; fi != nil && hop < 12; hop++ {
		if b.Len() > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(shortFuncName(fi.fn))
		if fi.whySite != nil {
			b.WriteString(": ")
			b.WriteString(fi.whySite.what)
			b.WriteString(" at ")
			b.WriteString(shortPos(fset, fi.whySite.pos))
			return b.String()
		}
		if fi.whyCall == nil {
			// assumedFree/hot reached only as a chain start; or no reason
			// recorded (noBody).
			if fi.noBody {
				b.WriteString(": no body to analyze (assembler or external linkage)")
			}
			return b.String()
		}
		if fi.whyNext == nil {
			b.WriteString(": ")
			b.WriteString(fi.whyCall.desc)
			b.WriteString(" at ")
			b.WriteString(shortPos(fset, fi.whyCall.pos))
			return b.String()
		}
		fi = fi.whyNext
	}
	return b.String()
}

// shortPos renders a position as basename:line — stable across checkouts,
// precise enough to jump to.
func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + itoa(p.Line)
}

// itoa avoids strconv just for line numbers (keeps the import set tight).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
