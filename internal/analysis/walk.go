package analysis

import "go/ast"

// inspectWithStack walks the AST like ast.Inspect but hands the callback
// the stack of enclosing nodes (outermost first, not including n itself).
// Traversal always descends; the callback's return value is ignored so the
// push/pop bookkeeping stays balanced.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the body of the innermost function declaration or
// literal on the stack, or nil when the node is at package level.
func enclosingFunc(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}
