package analysis

import (
	"go/ast"
	"go/types"
)

// stdoutPrinters are the fmt entry points bound to os.Stdout.
var stdoutPrinters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
}

// OutputPurity reserves standard output for the render/output layers
// listed in cocolint.json. Everywhere else, stdout writes would interleave
// diagnostics with experiment output and break the byte-identical-output
// contract, so progress and timing messages must target stderr (the log
// package's default) or an injected io.Writer.
var OutputPurity = &Analyzer{
	Name: "outputpurity",
	Doc:  "restrict stdout writes to the declared render/output layers",
	Run:  runOutputPurity,
}

func runOutputPurity(pass *Pass) {
	if allowed(pass.Config.OutputPurity.Stdout, pass.Pkg.Path, "") {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				pkgPath, ok := pkgNameOf(pass, n)
				if !ok {
					return true
				}
				if pkgPath == "os" && n.Sel.Name == "Stdout" {
					pass.Reportf(n.Pos(),
						"os.Stdout outside a render layer; diagnostics belong on stderr (allowlist: cocolint.json)")
				}
				if pkgPath == "fmt" && stdoutPrinters[n.Sel.Name] {
					pass.Reportf(n.Pos(),
						"fmt.%s writes to stdout outside a render layer; return a string, take an io.Writer, or log to stderr", n.Sel.Name)
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok &&
						(b.Name() == "print" || b.Name() == "println") {
						pass.Reportf(n.Pos(), "builtin %s bypasses the output layers; use log (stderr) instead", b.Name())
					}
				}
			}
			return true
		})
	}
}
