package analysis

import (
	"go/ast"
	"path/filepath"
)

// Goroutines confines goroutine creation to the concurrency layer listed
// in cocolint.json (internal/parallel in this module). The partitioned DES
// engine's byte-identity guarantee rests on every fan-out flowing through
// the pool abstractions — bounded workers, deterministic in-order result
// placement, the sequential fallback at one worker — so an ad-hoc `go`
// statement elsewhere is unaccounted concurrency the campaigns cannot
// replay. Code that needs parallelism takes a *parallel.Pool and calls
// Map, ForEach, or Fanout instead.
var Goroutines = &Analyzer{
	Name: "goroutines",
	Doc:  "confine goroutine spawns to the declared concurrency layer",
	Run:  runGoroutines,
}

func runGoroutines(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		filename := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		if allowed(pass.Config.Goroutines.Allow, pass.Pkg.Path, filename) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"go statement outside the concurrency layer; fan out through a parallel.Pool (Map/ForEach/Fanout) instead (allowlist: cocolint.json)")
			}
			return true
		})
	}
}
