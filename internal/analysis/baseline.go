package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// BaselineFileName is the checked-in findings baseline cocolint consults
// at the module root when no explicit -baseline path is given. CI fails
// only on findings not in the baseline, so a legacy debt list can be
// burned down incrementally without blocking unrelated changes. The
// intended steady state is an empty baseline: the tree is clean and every
// exemption is an explicit //lint:ignore or assumeFree entry with a
// reason.
const BaselineFileName = "lint-baseline.json"

// BaselineEntry identifies one accepted finding. Positions are matched by
// file (module-root-relative) and message, not line: baselined findings
// should survive unrelated edits above them, and two findings with the
// same message in the same file are interchangeable debt.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
}

// Baseline is a multiset of accepted findings.
type Baseline struct {
	entries map[BaselineEntry]int
}

// LoadBaseline reads a baseline file. A missing file yields an empty
// baseline (nothing accepted) — absence of debt, not an error.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &Baseline{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	var entries []BaselineEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", filepath.Base(path), err)
	}
	b := &Baseline{entries: map[BaselineEntry]int{}}
	for _, e := range entries {
		b.entries[e]++
	}
	return b, nil
}

// Filter returns the findings not covered by the baseline. Matching is a
// multiset subtraction: a baseline entry absorbs at most as many findings
// as its count, so duplicating a baselined mistake still fails.
func (b *Baseline) Filter(moduleDir string, diags []Diagnostic) []Diagnostic {
	if b == nil || len(b.entries) == 0 {
		return diags
	}
	remaining := make(map[BaselineEntry]int, len(b.entries))
	for e, n := range b.entries {
		remaining[e] = n
	}
	var out []Diagnostic
	for _, d := range diags {
		key := baselineKey(moduleDir, d)
		if remaining[key] > 0 {
			remaining[key]--
			continue
		}
		out = append(out, d)
	}
	return out
}

// WriteBaseline writes the findings as a baseline file, sorted for stable
// diffs.
func WriteBaseline(path, moduleDir string, diags []Diagnostic) error {
	entries := make([]BaselineEntry, 0, len(diags))
	for _, d := range diags {
		entries = append(entries, baselineKey(moduleDir, d))
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baselineKey normalizes one finding to its baseline identity.
func baselineKey(moduleDir string, d Diagnostic) BaselineEntry {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return BaselineEntry{Analyzer: d.Analyzer, File: file, Message: d.Message}
}
