package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts golden expectations: a comment of the form
//
//	// want `regexp`
//
// on a source line asserts that some analyzer reports a finding on that
// line whose "[analyzer] message" rendering matches the regexp.
var wantRe = regexp.MustCompile("want `([^`]+)`")

// loadGolden loads one testdata mini-module and runs every analyzer with
// the module's own cocolint.json.
func loadGolden(t *testing.T, name string) (*Module, []Diagnostic) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatalf("loading %s: %v", name, err)
	}
	cfg, err := LoadConfig(dir)
	if err != nil {
		t.Fatal(err)
	}
	return mod, Run(mod, cfg, All())
}

// expectation is one parsed want comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants parses want comments from every file of the module.
func collectWants(t *testing.T, mod *Module) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := mod.Fset.Position(c.Pos())
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// checkGolden matches findings against want comments one-to-one by line.
func checkGolden(t *testing.T, name string) {
	t.Helper()
	mod, diags := loadGolden(t, name)
	wants := collectWants(t, mod)

	for _, d := range diags {
		rendered := fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(rendered) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected a finding matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func TestDeterminismGolden(t *testing.T)  { checkGolden(t, "determinism") }
func TestMapOrderGolden(t *testing.T)     { checkGolden(t, "maporder") }
func TestOutputPurityGolden(t *testing.T) { checkGolden(t, "outputpurity") }
func TestGoroutinesGolden(t *testing.T)   { checkGolden(t, "goroutines") }
func TestLayeringGolden(t *testing.T)     { checkGolden(t, "layering") }
func TestFloatOrderGolden(t *testing.T)   { checkGolden(t, "floatorder") }
func TestHotpathGolden(t *testing.T)      { checkGolden(t, "hotpath") }

// TestSuppressDiagnostics asserts the suppression machinery's own
// findings (asserted in code: a want-comment cannot share a directive's
// line without becoming its reason text).
func TestSuppressDiagnostics(t *testing.T) {
	_, diags := loadGolden(t, "suppress")
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%s:%d:[%s] %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Analyzer, d.Message))
	}
	want := []struct {
		line int
		sub  string
	}{
		{10, "malformed ignore directive"},
		{12, "ignore directive suppresses nothing"},
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d findings, want %d: %v", len(diags), len(want), got)
	}
	for i, w := range want {
		if diags[i].Pos.Line != w.line || diags[i].Analyzer != "lint" ||
			!strings.Contains(diags[i].Message, w.sub) {
			t.Errorf("finding %d = %s, want line %d containing %q", i, got[i], w.line, w.sub)
		}
	}
}

// TestConfigPatterns covers the pattern grammar: exact paths, subtree
// globs, and file-granular entries.
func TestConfigPatterns(t *testing.T) {
	cases := []struct {
		patterns []string
		pkg      string
		file     string
		want     bool
	}{
		{[]string{"m/a"}, "m/a", "x.go", true},
		{[]string{"m/a"}, "m/a/b", "x.go", false},
		{[]string{"m/a/..."}, "m/a/b", "x.go", true},
		{[]string{"m/a/..."}, "m/ab", "x.go", false},
		{[]string{"m/a/clock.go"}, "m/a", "clock.go", true},
		{[]string{"m/a/clock.go"}, "m/a", "other.go", false},
		{[]string{"m/a/clock.go"}, "m/b", "clock.go", false},
	}
	for _, c := range cases {
		if got := allowed(c.patterns, c.pkg, c.file); got != c.want {
			t.Errorf("allowed(%v, %q, %q) = %v, want %v", c.patterns, c.pkg, c.file, got, c.want)
		}
	}
}

// TestFindModuleRoot checks the upward go.mod search.
func TestFindModuleRoot(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "determinism", "clock"))
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(root) != "determinism" {
		t.Errorf("FindModuleRoot(%s) = %s, want the determinism testdata module", dir, root)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("module root %s has no go.mod: %v", root, err)
	}
}
