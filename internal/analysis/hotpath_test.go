package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHotpathConfigRot asserts that hotpath.roots / hotpath.assumeFree
// entries naming no module function are themselves findings: config rot
// must not silently widen the unchecked surface.
func TestHotpathConfigRot(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "hotpath"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{}
	cfg.Hotpath.Roots = []string{"demo.NoSuchFunc"}
	cfg.Hotpath.AssumeFree = []AssumeFreeEntry{{Func: "demo/pool.Gone", Reason: "stale"}}
	diags := Run(mod, cfg, []*Analyzer{Hotpath})

	var gotRoot, gotAssume bool
	for _, d := range diags {
		if strings.Contains(d.Message, `hotpath.roots entry "demo.NoSuchFunc" names no module function`) {
			gotRoot = true
		}
		if strings.Contains(d.Message, `hotpath.assumeFree entry "demo/pool.Gone" names no module function`) {
			gotAssume = true
		}
	}
	if !gotRoot || !gotAssume {
		t.Errorf("want config-rot findings for unmatched root and assumeFree entries, got %v", diags)
	}
}

// TestHotpathFactCache asserts the module-wide fact table is built once
// per (module, config) pair and rebuilt when the config changes.
func TestHotpathFactCache(t *testing.T) {
	dir, err := filepath.Abs(filepath.Join("testdata", "hotpath"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &Config{}
	hf1 := moduleFacts(mod, cfg)
	hf2 := moduleFacts(mod, cfg)
	if hf1 != hf2 {
		t.Error("fact table rebuilt for identical config")
	}
	hf3 := moduleFacts(mod, &Config{})
	if hf3 == hf1 {
		t.Error("fact table not rebuilt for a different config")
	}
}

// TestBaselineFilter covers the multiset semantics: a baseline entry
// absorbs at most its count of matching findings, matching by
// module-relative file + analyzer + message, not line.
func TestBaselineFilter(t *testing.T) {
	dir := t.TempDir()
	diag := func(file string, line int, msg string) Diagnostic {
		d := Diagnostic{Analyzer: "hotpath", Message: msg}
		d.Pos.Filename = filepath.Join(dir, file)
		d.Pos.Line = line
		return d
	}
	diags := []Diagnostic{
		diag("a.go", 3, "make([]int) allocates"),
		diag("a.go", 9, "make([]int) allocates"),
		diag("b.go", 1, "append may grow"),
	}

	path := filepath.Join(dir, BaselineFileName)
	if err := WriteBaseline(path, dir, diags[:2]); err != nil {
		t.Fatal(err)
	}
	b, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	// Both baselined findings absorbed (at shifted lines), the third kept.
	shifted := []Diagnostic{
		diag("a.go", 5, "make([]int) allocates"),
		diag("a.go", 11, "make([]int) allocates"),
		diag("b.go", 1, "append may grow"),
	}
	out := b.Filter(dir, shifted)
	if len(out) != 1 || out[0].Message != "append may grow" {
		t.Errorf("Filter = %v, want only the b.go finding", out)
	}

	// A third duplicate exceeds the baselined count of two and survives.
	extra := append(shifted, diag("a.go", 20, "make([]int) allocates"))
	if out := b.Filter(dir, extra); len(out) != 2 {
		t.Errorf("Filter with duplicate beyond baseline count = %v, want 2 findings", out)
	}
}

// TestBaselineMissingFile asserts a missing baseline means no accepted
// debt, not an error.
func TestBaselineMissingFile(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), BaselineFileName))
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnostic{Analyzer: "hotpath", Message: "m"}
	if out := b.Filter(".", []Diagnostic{d}); len(out) != 1 {
		t.Errorf("empty baseline filtered findings: %v", out)
	}
}

// TestHotpathAnnotatedCalleeTrusted asserts an annotated hot callee is
// treated as allocation-free by its callers: its findings are proof
// obligations at its own declaration, not re-reported up the chain.
func TestHotpathAnnotatedCalleeTrusted(t *testing.T) {
	dir := t.TempDir()
	src := `package tmp

var sink []int

//cocolint:hotpath
func Outer() { Inner() }

//cocolint:hotpath
func Inner() {
	sink = append(sink, 1)
}
`
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, &Config{}, []*Analyzer{Hotpath})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "hot path tmp.Inner") {
		t.Errorf("want exactly Inner's own finding, got %v", diags)
	}
}
