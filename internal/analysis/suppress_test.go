package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSnippet writes src as the single file of a throwaway module and runs
// every analyzer over it with an empty config. The hotpath analyzer plus a
// //cocolint:hotpath function make a convenient, self-contained finding
// generator for exercising the suppression machinery.
func loadSnippet(t *testing.T, src string) []Diagnostic {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmp\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "tmp.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	mod, err := Load(dir)
	if err != nil {
		t.Fatalf("loading snippet: %v", err)
	}
	return Run(mod, &Config{}, All())
}

const hotHeader = "package tmp\n\nvar sink []int\n\n//cocolint:hotpath\nfunc Hot() {\n"

func TestSuppressSameLine(t *testing.T) {
	diags := loadSnippet(t, hotHeader+
		"\tsink = append(sink, 1) //lint:ignore hotpath pooled append, grows once\n}\n")
	if len(diags) != 0 {
		t.Errorf("same-line suppression left findings: %v", diags)
	}
}

func TestSuppressLineAbove(t *testing.T) {
	diags := loadSnippet(t, hotHeader+
		"\t//lint:ignore hotpath pooled append, grows once\n"+
		"\tsink = append(sink, 1)\n}\n")
	if len(diags) != 0 {
		t.Errorf("line-above suppression left findings: %v", diags)
	}
}

func TestSuppressTwoLinesAboveDoesNotApply(t *testing.T) {
	diags := loadSnippet(t, hotHeader+
		"\t//lint:ignore hotpath too far away\n"+
		"\t_ = sink\n"+
		"\tsink = append(sink, 1)\n}\n")
	// The append finding survives, and the directive is reported unused.
	var gotHotpath, gotUnused bool
	for _, d := range diags {
		if d.Analyzer == "hotpath" && strings.Contains(d.Message, "append") {
			gotHotpath = true
		}
		if d.Analyzer == "lint" && d.Message == MsgUnusedSuppression {
			gotUnused = true
		}
	}
	if !gotHotpath || !gotUnused || len(diags) != 2 {
		t.Errorf("want surviving hotpath finding + unused directive, got %v", diags)
	}
}

func TestSuppressMissingReason(t *testing.T) {
	diags := loadSnippet(t, hotHeader+
		"\tsink = append(sink, 1) //lint:ignore hotpath\n}\n")
	// Malformed directives suppress nothing: the finding survives and the
	// directive itself is flagged.
	var gotMalformed, gotHotpath bool
	for _, d := range diags {
		if d.Analyzer == "lint" && d.Message == msgMalformedDirective {
			gotMalformed = true
		}
		if d.Analyzer == "hotpath" {
			gotHotpath = true
		}
	}
	if !gotMalformed || !gotHotpath {
		t.Errorf("want malformed-directive + surviving finding, got %v", diags)
	}
}

func TestSuppressUnknownAnalyzer(t *testing.T) {
	diags := loadSnippet(t, hotHeader+
		"\tsink = append(sink, 1) //lint:ignore nosuchanalyzer misspelled name\n}\n")
	var gotUnused, gotHotpath bool
	for _, d := range diags {
		if d.Analyzer == "lint" && d.Message == MsgUnusedSuppression {
			gotUnused = true
		}
		if d.Analyzer == "hotpath" {
			gotHotpath = true
		}
	}
	if !gotUnused || !gotHotpath {
		t.Errorf("want unused-directive + surviving finding, got %v", diags)
	}
}

// TestSuppressInGoldenTestdata asserts the suppression machinery applies
// inside golden testdata modules too: the hotpath module's HotWarm carries
// a suppressed append that must produce neither a hotpath finding nor an
// unused-directive finding. (checkGolden would also catch this, but the
// golden pass conflates many behaviours; this pins the one contract.)
func TestSuppressInGoldenTestdata(t *testing.T) {
	_, diags := loadGolden(t, "hotpath")
	for _, d := range diags {
		if strings.Contains(d.Message, "HotWarm") {
			t.Errorf("suppressed HotWarm finding leaked: %s", d)
		}
		if d.Analyzer == "lint" {
			t.Errorf("directive finding inside golden module: %s", d)
		}
	}
}

func TestUnusedSuppressionsFilter(t *testing.T) {
	diags := loadSnippet(t, hotHeader+
		"\tsink = append(sink, 1) //lint:ignore nosuchanalyzer misspelled name\n}\n")
	unused := UnusedSuppressions(diags)
	if len(unused) != 1 || unused[0].Message != MsgUnusedSuppression {
		t.Errorf("UnusedSuppressions = %v, want exactly the stale directive", unused)
	}
}
