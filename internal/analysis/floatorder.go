package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatOrder flags floating-point patterns whose result depends on
// evaluation or iteration order:
//
//   - `==` / `!=` between two computed float values (comparisons against
//     compile-time constants — the BLAS-style `beta == 0` sentinel checks —
//     are exact and stay allowed);
//   - accumulating into a float (`+=`, `-=`, `*=`, or `x = x + ...`)
//     inside a map iteration, where the randomized order changes the
//     rounding of the running sum.
var FloatOrder = &Analyzer{
	Name: "floatorder",
	Doc:  "flag order-sensitive float comparison and accumulation patterns",
	Run:  runFloatOrder,
}

func runFloatOrder(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkFloatEquality(pass, n)
			case *ast.RangeStmt:
				if isMapRange(pass, n) {
					checkFloatAccumulation(pass, n)
				}
			}
			return true
		})
	}
}

// checkFloatEquality reports ==/!= between two non-constant floats.
func checkFloatEquality(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	if !isFloat(pass.TypeOf(b.X)) || !isFloat(pass.TypeOf(b.Y)) {
		return
	}
	if isConstant(pass, b.X) || isConstant(pass, b.Y) {
		return
	}
	pass.Reportf(b.Pos(),
		"%s between computed floats is rounding-sensitive; compare with an explicit tolerance", b.Op)
}

// checkFloatAccumulation reports float running sums inside a map range.
func checkFloatAccumulation(pass *Pass, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
			if len(as.Lhs) == 1 && isFloat(pass.TypeOf(as.Lhs[0])) && declaredOutside(pass, as.Lhs[0], rng) {
				pass.Reportf(as.Pos(),
					"float accumulation into %s over map iteration depends on iteration order; range over sorted keys", exprString(as.Lhs[0]))
			}
		case token.ASSIGN:
			// x = x + ... (and x - / x *) spelled out.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok || !isFloat(pass.TypeOf(lhs)) || !declaredOutside(pass, lhs, rng) {
				return true
			}
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.ADD && bin.Op != token.SUB && bin.Op != token.MUL) {
				return true
			}
			lobj := pass.Pkg.Info.ObjectOf(lhs)
			for _, side := range []ast.Expr{bin.X, bin.Y} {
				if id, ok := side.(*ast.Ident); ok && lobj != nil && pass.Pkg.Info.ObjectOf(id) == lobj {
					pass.Reportf(as.Pos(),
						"float accumulation into %s over map iteration depends on iteration order; range over sorted keys", lhs.Name)
					return true
				}
			}
		}
		return true
	})
}

// isFloat reports whether t's underlying type is a floating-point basic
// type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConstant reports whether the expression has a compile-time value.
func isConstant(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}
