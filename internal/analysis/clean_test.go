package analysis

import (
	"os"
	"testing"
)

// TestModuleIsClean runs every analyzer over the real module with the
// checked-in cocolint.json and requires zero findings — the in-process
// equivalent of `make lint`. If this fails, either fix the reported code
// or (for a deliberate exception) add a "//lint:ignore analyzer reason"
// with a real justification.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Load(cwd)
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(mod.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Layering.Layers) == 0 {
		t.Fatal("cocolint.json has no layering spec; the import DAG is unenforced")
	}
	diags := Run(mod, cfg, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("the tree must stay cocolint-clean; see DESIGN.md \"Enforced invariants\"")
	}
}
