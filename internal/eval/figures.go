package eval

import (
	"fmt"
	"math"
	"sort"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/parallel"
	"cocopelia/internal/predictor"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
	"cocopelia/internal/stats"
	"cocopelia/internal/trace"
)

// Campaign bundles the per-testbed state of the evaluation: the measured-run
// runner and the deployed predictor.
//
// Every figure harness enumerates its full work-list of measurement cells
// up front, prefetches them through Pool (each cell's noise seed derives
// from the cell key, never from execution order), then assembles its
// rows sequentially from the warm cache — so the rendered output is
// byte-identical at any worker count, including the serial path.
type Campaign struct {
	Runner *Runner
	Pred   *predictor.Predictor
	// Pool fans independent measurement cells across cores; nil selects
	// the legacy serial path.
	Pool *parallel.Pool
	// Coarsen subsamples the tile-sweep grid (1 = the paper's full
	// 256-step grid; tests and fast runs use larger factors).
	Coarsen int
	// Fast selects the reduced problem sets.
	Fast bool
}

// NewCampaign deploys CoCoPeLia on the testbed (running the micro-benchmark
// phase) and returns a ready campaign.
func NewCampaign(tb *machine.Testbed, fast bool) *Campaign {
	dep := microbench.Run(tb, microbench.DefaultConfig())
	return NewCampaignWithDeployment(tb, dep, fast)
}

// NewCampaignWithDeployment builds a campaign over an existing deployment
// database (e.g. loaded from disk).
func NewCampaignWithDeployment(tb *machine.Testbed, dep *microbench.Deployment, fast bool) *Campaign {
	coarsen := 2
	reps := 3
	if fast {
		coarsen = 6
		reps = 1
	}
	r := NewRunner(tb)
	r.Reps = reps
	return &Campaign{
		Runner: r, Pred: predictor.New(dep),
		Pool:    parallel.NewPool(0),
		Coarsen: coarsen, Fast: fast,
	}
}

// SetParallel reconfigures the campaign's fan-out width: 0 selects all
// cores, 1 the legacy serial path, any other n a pool of n workers. The
// campaign's output is identical at every setting.
func (c *Campaign) SetParallel(n int) {
	if n == 1 {
		c.Pool = nil
		return
	}
	c.Pool = parallel.NewPool(n)
}

// prefetch warms the runner cache with a work-list of measurement cells.
func (c *Campaign) prefetch(cells []MeasureCell) error {
	return c.Runner.MeasureBatch(c.Pool, cells)
}

// grid returns the benchmark tile grid for a routine.
func (c *Campaign) grid(routine string) []int {
	if routine == "daxpy" {
		return microbench.AxpyTileGrid()
	}
	return microbench.GemmTileGrid()
}

// sweep returns the measured-sweep tile sizes for a problem.
func (c *Campaign) sweep(p Problem) []int {
	coarsen := c.Coarsen
	if p.Routine == "daxpy" {
		// The daxpy grid has 256 entries; sweep a manageable subset.
		coarsen = c.Coarsen * 8
	}
	return SweepTiles(p, c.grid(p.Routine), coarsen)
}

// ---------------------------------------------------------------------------
// Figure 1: cuBLASXt performance vs tile size.

// Fig1Row is one point of the Fig. 1 sweep.
type Fig1Row struct {
	Testbed string
	Size    int
	T       int
	Gflops  float64
}

// Fig1StaticT is the static tile size the paper annotates in Fig. 1.
const Fig1StaticT = 4096

// Fig1 sweeps cuBLASXt dgemm performance over tile sizes for the paper's
// showcase problem sizes on this campaign's testbed.
func (c *Campaign) Fig1() ([]Fig1Row, error) {
	sizes := []int{8192, 16384}
	if c.Fast {
		sizes = []int{8192}
	}
	// Enumerate the full work-list, prefetch it through the pool, then
	// assemble rows sequentially from the warm cache.
	type sweep struct {
		p     Problem
		tiles []int
	}
	var sweeps []sweep
	var cells []MeasureCell
	for _, s := range sizes {
		p := Problem{
			Routine: "dgemm", Dtype: kernelmodel.F64, M: s, N: s, K: s,
			Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}, Tag: "square",
		}
		// Unlike the scheduler validation sweeps, Fig. 1 extends to the
		// full problem size: cuBLASXt accepts any block dimension, and the
		// paper's figure shows the degradation on both sides of the
		// break-point.
		var tiles []int
		for i, T := range c.grid(p.Routine) {
			if i%c.Coarsen == 0 && T <= s {
				tiles = append(tiles, T)
				cells = append(cells, MeasureCell{LibCuBLASXt, p, T})
			}
		}
		sweeps = append(sweeps, sweep{p, tiles})
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}
	var rows []Fig1Row
	for _, sw := range sweeps {
		for _, T := range sw.tiles {
			res, err := c.Runner.Measure(LibCuBLASXt, sw.p, T)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig1Row{
				Testbed: c.Runner.TB.Name, Size: sw.p.M, T: T,
				Gflops: res.Gflops(sw.p.M, sw.p.N, sw.p.K),
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 2: reuse-aware offload timeline.

// Fig2 runs one instrumented reuse-aware dgemm and returns the ASCII
// timeline plus the dominant-engine phase progression.
func (c *Campaign) Fig2(size, T, width int) (string, []trace.Phase, error) {
	eng := sim.New()
	dev := device.New(eng, c.Runner.TB, 7, false)
	tr := trace.Attach(dev)
	ctx := sched.NewContext(cudart.New(dev), false)
	_, err := ctx.Gemm(sched.GemmOpts{
		Dtype: kernelmodel.F64, M: size, N: size, K: size, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(size, size, nil),
		B: operand.HostMatrix(size, size, nil),
		C: operand.HostMatrix(size, size, nil),
		T: T,
	})
	if err != nil {
		return "", nil, err
	}
	return tr.Gantt(width), tr.Phases(10), nil
}

// ---------------------------------------------------------------------------
// Figures 4 and 5: model prediction error distributions.

// ErrSample is one model-error observation.
type ErrSample struct {
	Routine string
	Model   model.Kind
	Problem string
	T       int
	// ErrPct is 100*(predicted-measured)/measured.
	ErrPct float64
}

// sweepCells enumerates the (problem, T) measurement work-list of a
// validation sweep against one library.
func (c *Campaign) sweepCells(problems []Problem, lib Lib) []MeasureCell {
	var cells []MeasureCell
	for _, p := range problems {
		for _, T := range c.sweep(p) {
			cells = append(cells, MeasureCell{lib, p, T})
		}
	}
	return cells
}

// modelErrors computes the error distribution of the given models against
// the measured system for every (problem, T) pair.
func (c *Campaign) modelErrors(problems []Problem, lib Lib, kinds []model.Kind) ([]ErrSample, error) {
	if err := c.prefetch(c.sweepCells(problems, lib)); err != nil {
		return nil, err
	}
	var out []ErrSample
	for _, p := range problems {
		prm := p.Params()
		sm, err := c.Pred.SubModels(p.Routine, c.Runner.FullKernelTime(p))
		if err != nil {
			return nil, err
		}
		for _, T := range c.sweep(p) {
			meas, err := c.Runner.Measure(lib, p, T)
			if err != nil {
				return nil, err
			}
			for _, kind := range kinds {
				pred, err := model.Predict(kind, &prm, sm, T)
				if err != nil {
					return nil, fmt.Errorf("eval: %s at T=%d on %s: %w", kind, T, p.Name(), err)
				}
				out = append(out, ErrSample{
					Routine: p.Routine, Model: kind, Problem: p.Name(), T: T,
					ErrPct: stats.RelErrPercent(pred, meas.Seconds),
				})
			}
		}
	}
	return out, nil
}

// Fig4 validates the BTS-Model against the CSO-Model on systems without
// data reuse: daxpy (the CoCoPeLia level-1 path has no reuse) and the
// no-reuse gemm wrapper (the per-sub-kernel traffic pattern of cuBLASXt in
// the paper's setup).
func (c *Campaign) Fig4() ([]ErrSample, error) {
	kinds := []model.Kind{model.CSO, model.BTS}
	// Prefetch the union of the three sweeps so the pool sees the whole
	// figure's work-list at once rather than three smaller fan-outs.
	cells := c.sweepCells(DaxpyValidationSet(c.Fast), LibCoCoPeLia)
	for _, routine := range []string{"sgemm", "dgemm"} {
		cells = append(cells, c.sweepCells(GemmValidationSet(routine, c.Fast), LibNoReuse)...)
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}
	out, err := c.modelErrors(DaxpyValidationSet(c.Fast), LibCoCoPeLia, kinds)
	if err != nil {
		return nil, err
	}
	for _, routine := range []string{"sgemm", "dgemm"} {
		more, err := c.modelErrors(GemmValidationSet(routine, c.Fast), LibNoReuse, kinds)
		if err != nil {
			return nil, err
		}
		out = append(out, more...)
	}
	return out, nil
}

// Fig4Gemv extends the Fig. 4 validation to level-2 BLAS, which the paper
// models with Eq. 4 (Section III-C) but does not evaluate: BTS vs CSO
// error against the measured CoCoPeLia dgemv path.
func (c *Campaign) Fig4Gemv() ([]ErrSample, error) {
	return c.modelErrors(GemvValidationSet(c.Fast), LibCoCoPeLia,
		[]model.Kind{model.CSO, model.BTS})
}

// Fig5 validates the DR-Model against the CSO-Model on the reuse-aware
// CoCoPeLia gemm implementations.
func (c *Campaign) Fig5() ([]ErrSample, error) {
	kinds := []model.Kind{model.CSO, model.DR}
	var cells []MeasureCell
	for _, routine := range []string{"sgemm", "dgemm"} {
		cells = append(cells, c.sweepCells(GemmValidationSet(routine, c.Fast), LibCoCoPeLia)...)
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}
	var out []ErrSample
	for _, routine := range []string{"sgemm", "dgemm"} {
		more, err := c.modelErrors(GemmValidationSet(routine, c.Fast), LibCoCoPeLia, kinds)
		if err != nil {
			return nil, err
		}
		out = append(out, more...)
	}
	return out, nil
}

// GroupErrors buckets samples by (routine, model) and summarizes each
// bucket (the text rendering of the violin plots).
func GroupErrors(samples []ErrSample) map[string]stats.Summary {
	buckets := map[string][]float64{}
	for _, s := range samples {
		key := fmt.Sprintf("%s/%s", s.Routine, s.Model)
		buckets[key] = append(buckets[key], s.ErrPct)
	}
	out := map[string]stats.Summary{}
	for k, v := range buckets {
		out[k] = stats.Summarize(v)
	}
	return out
}

// ---------------------------------------------------------------------------
// Figure 6: tile-size selection validation.

// Fig6Row reports one problem's performance under every selection policy.
type Fig6Row struct {
	Problem Problem
	// GflopsStatic is measured performance at the static T=2048 baseline.
	GflopsStatic float64
	// GflopsOpt is measured performance at the exhaustively found T_opt.
	GflopsOpt float64
	TOpt      int
	// PerModel holds measured performance (and the selected T) for the
	// tile size each model picks.
	PerModel map[model.Kind]Fig6Cell
}

// Fig6Cell is one model's selection outcome.
type Fig6Cell struct {
	T      int
	Gflops float64
}

// Fig6StaticT is the static baseline tile size (used by BLASX).
const Fig6StaticT = 2048

// Fig6 validates tile-size selection for one gemm routine on this
// campaign's testbed: measured performance with the static tile, the
// exhaustive optimum, and each model's selection.
func (c *Campaign) Fig6(routine string) ([]Fig6Row, error) {
	problems := GemmValidationSet(routine, c.Fast)

	// Enumerate every problem's measured tile set up front — the static
	// baseline, the sweep grid, and (because each model's arg-min is
	// restricted to the same grid) every model selection — prefetch the
	// union, then assemble sequentially from the warm cache.
	type f6work struct {
		p       Problem
		staticT int
		sweep   []int
	}
	var works []f6work
	var cells []MeasureCell
	for _, p := range problems {
		prm := p.Params()
		sweep := c.sweep(p)
		if len(sweep) == 0 {
			continue
		}
		staticT := Fig6StaticT
		if m := int(prm.MinDim()); m < staticT {
			staticT = m
		}
		// The exhaustive search must consider the static tile too, so
		// T_opt is by construction at least as good as the baseline even
		// on coarsened sweep grids.
		if !contains(sweep, staticT) {
			sweep = append(sweep, staticT)
		}
		works = append(works, f6work{p, staticT, sweep})
		for _, T := range sweep {
			cells = append(cells, MeasureCell{LibCoCoPeLia, p, T})
		}
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}

	var rows []Fig6Row
	for _, w := range works {
		p, sweep, staticT := w.p, w.sweep, w.staticT
		prm := p.Params()
		row := Fig6Row{Problem: p, PerModel: map[model.Kind]Fig6Cell{}}

		res, err := c.Runner.Measure(LibCoCoPeLia, p, staticT)
		if err != nil {
			return nil, err
		}
		row.GflopsStatic = res.Gflops(p.M, p.N, p.K)

		// Exhaustive T_opt over the sweep grid.
		best := math.Inf(1)
		for _, T := range sweep {
			res, err := c.Runner.Measure(LibCoCoPeLia, p, T)
			if err != nil {
				return nil, err
			}
			if res.Seconds < best {
				best = res.Seconds
				row.TOpt = T
			}
		}
		row.GflopsOpt = 2 * float64(p.M) * float64(p.N) * float64(p.K) / best / 1e9

		// Each model's selection, restricted to the same sweep grid so
		// model quality (not grid resolution) is compared.
		sm, err := c.Pred.SubModels(p.Routine, c.Runner.FullKernelTime(p))
		if err != nil {
			return nil, err
		}
		for _, kind := range model.Kinds() {
			bestT, bestPred := 0, math.Inf(1)
			for _, T := range sweep {
				pred, err := model.Predict(kind, &prm, sm, T)
				if err != nil {
					return nil, err
				}
				if pred < bestPred {
					bestT, bestPred = T, pred
				}
			}
			res, err := c.Runner.Measure(LibCoCoPeLia, p, bestT)
			if err != nil {
				return nil, err
			}
			row.PerModel[kind] = Fig6Cell{T: bestT, Gflops: res.Gflops(p.M, p.N, p.K)}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------------
// Figure 7 and Table IV: end-to-end library comparison.

// Fig7Row reports one problem's performance across the libraries.
type Fig7Row struct {
	Problem Problem
	// Gflops per library; for daxpy problems the values are GB/s-equival-
	// ent GFLOP/s of the 2N flops.
	Gflops map[Lib]float64
	// TCoCo is CoCoPeLia's auto-selected tile; TXt is cuBLASXt's
	// best-of-10.
	TCoCo, TXt int
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// xtTileCandidates returns the ten tile sizes the paper grants cuBLASXt's
// near-exhaustive tuning.
func xtTileCandidates(p Problem) []int {
	var out []int
	prm := p.Params()
	maxT := int(float64(prm.MinDim()) / 1.5)
	for T := 512; T <= 5120 && T <= maxT; T += 512 {
		out = append(out, T)
	}
	if len(out) == 0 {
		out = []int{min(256, int(prm.MinDim()))}
	}
	return out
}

// Fig7Gemm compares CoCoPeLia (auto-tiled via the DR model), cuBLASXt
// (best of ten tiles) and BLASX (static tile) on the extended gemm set.
func (c *Campaign) Fig7Gemm(routine string) ([]Fig7Row, error) {
	problems := GemmPerfSet(routine, c.Fast)
	// Enumerate the work-list: CoCoPeLia at the DR model's selection
	// (pure prediction, no measurement needed to compute), cuBLASXt over
	// its candidate tiles, BLASX at its static tile.
	var cells []MeasureCell
	for _, p := range problems {
		prm := p.Params()
		sel, err := c.Pred.Select(model.DR, &prm)
		if err != nil {
			return nil, err
		}
		cells = append(cells, MeasureCell{LibCoCoPeLia, p, sel.T})
		for _, T := range xtTileCandidates(p) {
			cells = append(cells, MeasureCell{LibCuBLASXt, p, T})
		}
		cells = append(cells, MeasureCell{LibBLASX, p, 0})
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, p := range problems {
		prm := p.Params()
		row := Fig7Row{Problem: p, Gflops: map[Lib]float64{}}

		// CoCoPeLia: runtime tile selection with the DR model.
		sel, err := c.Pred.Select(model.DR, &prm)
		if err != nil {
			return nil, err
		}
		row.TCoCo = sel.T
		res, err := c.Runner.Measure(LibCoCoPeLia, p, sel.T)
		if err != nil {
			return nil, err
		}
		row.Gflops[LibCoCoPeLia] = res.Gflops(p.M, p.N, p.K)

		// cuBLASXt: best of ten tile sizes (measured advantage).
		bestG := 0.0
		for _, T := range xtTileCandidates(p) {
			res, err := c.Runner.Measure(LibCuBLASXt, p, T)
			if err != nil {
				return nil, err
			}
			if g := res.Gflops(p.M, p.N, p.K); g > bestG {
				bestG = g
				row.TXt = T
			}
		}
		row.Gflops[LibCuBLASXt] = bestG

		// BLASX: static tile.
		res, err = c.Runner.Measure(LibBLASX, p, 0)
		if err != nil {
			return nil, err
		}
		row.Gflops[LibBLASX] = res.Gflops(p.M, p.N, p.K)
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Daxpy compares CoCoPeLia daxpy (auto-tiled via the BTS model)
// against the unified-memory-with-prefetch baseline.
func (c *Campaign) Fig7Daxpy() ([]Fig7Row, error) {
	problems := DaxpyPerfSet(c.Fast)
	var cells []MeasureCell
	for _, p := range problems {
		prm := p.Params()
		sel, err := c.Pred.Select(model.BTS, &prm)
		if err != nil {
			return nil, err
		}
		cells = append(cells,
			MeasureCell{LibCoCoPeLia, p, sel.T},
			MeasureCell{LibUnified, p, 0})
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, p := range problems {
		prm := p.Params()
		row := Fig7Row{Problem: p, Gflops: map[Lib]float64{}}
		sel, err := c.Pred.Select(model.BTS, &prm)
		if err != nil {
			return nil, err
		}
		row.TCoCo = sel.T
		res, err := c.Runner.Measure(LibCoCoPeLia, p, sel.T)
		if err != nil {
			return nil, err
		}
		row.Gflops[LibCoCoPeLia] = p.Flops() / res.Seconds / 1e9
		res, err = c.Runner.Measure(LibUnified, p, 0)
		if err != nil {
			return nil, err
		}
		row.Gflops[LibUnified] = p.Flops() / res.Seconds / 1e9
		rows = append(rows, row)
	}
	return rows, nil
}

// Table4Row summarizes CoCoPeLia's improvement over the best competing
// library, as the geometric mean over a problem family.
type Table4Row struct {
	Testbed string
	Routine string
	Offload string // "full" or "partial"
	// ImprovementPct is the geomean percentage improvement of CoCoPeLia
	// over the best competitor per problem.
	ImprovementPct float64
	Problems       int
}

// Table4 aggregates Fig. 7 rows into the paper's Table IV.
func Table4(testbed, routine string, rows []Fig7Row) []Table4Row {
	groups := map[string][]float64{}
	for _, row := range rows {
		coco := row.Gflops[LibCoCoPeLia]
		best := 0.0
		for lib, g := range row.Gflops {
			if lib != LibCoCoPeLia && g > best {
				best = g
			}
		}
		if best <= 0 || coco <= 0 {
			continue
		}
		key := "partial"
		if row.Problem.FullOffload() {
			key = "full"
		}
		groups[key] = append(groups[key], coco/best)
	}
	var out []Table4Row
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, Table4Row{
			Testbed: testbed, Routine: routine, Offload: k,
			ImprovementPct: 100 * (stats.GeoMean(groups[k]) - 1),
			Problems:       len(groups[k]),
		})
	}
	return out
}
