package eval

import (
	"fmt"
	"math"
	"strings"

	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
	"cocopelia/internal/parallel"
	"cocopelia/internal/predictor"
)

// This file implements the future-machines sensitivity study motivated in
// the paper's Section II-A: "static tiling sizes offer no performance
// guarantee for future machines with different transfer
// bandwidth/computation ratios and can result in increased slowdowns in
// such cases. These observations make a compelling case for dynamic tiling
// size selection, driven by accurate performance models."
//
// We synthesize hypothetical machines by scaling a testbed's link
// bandwidth, re-run the full CoCoPeLia pipeline on each (deployment ->
// model -> selection -> measured execution), and compare the static
// T=2048 policy against the model selection and the exhaustive optimum.

// SensitivityRow is one hypothetical machine's outcome.
type SensitivityRow struct {
	// BWScale is the link-bandwidth multiplier applied to both directions.
	BWScale float64
	// BytesPerFlop is the machine's h2d bandwidth per double-precision
	// FLOP (the ratio the paper argues determines the right tile).
	BytesPerFlop float64
	// TStatic/TModel/TOpt are the tile choices.
	TStatic, TModel, TOpt int
	// GflopsStatic/GflopsModel/GflopsOpt are the measured performances.
	GflopsStatic, GflopsModel, GflopsOpt float64
	// StaticLossPct is how much the static policy loses to the optimum;
	// ModelLossPct likewise for the model selection.
	StaticLossPct, ModelLossPct float64
}

// Sensitivity runs the future-machines study on scaled clones of the
// campaign's testbed for one full-offload dgemm problem. The hypothetical
// machines are mutually independent — each gets its own deployment,
// predictor, and runner — so the campaign fans them across the pool; rows
// come back in scale order regardless of completion order, and every
// machine's noise seeds derive from its own (scale-tagged) testbed name,
// keeping the output identical to the serial run.
func (c *Campaign) Sensitivity(size int, scales []float64) ([]SensitivityRow, error) {
	if len(scales) == 0 {
		scales = []float64{0.25, 0.5, 1, 2, 4}
	}
	p := Problem{
		Routine: "dgemm", Dtype: gemmDtype("dgemm"), M: size, N: size, K: size,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}, Tag: "square",
	}
	prm := p.Params()
	return parallel.Map(c.Pool, scales, func(_ int, scale float64) (SensitivityRow, error) {
		tb := *c.Runner.TB
		tb.Name = fmt.Sprintf("%s (bw x%g)", c.Runner.TB.Name, scale)
		tb.H2D.BandwidthBps *= scale
		tb.D2H.BandwidthBps *= scale

		// Full pipeline on the hypothetical machine: deploy, select,
		// measure. The inner steps run serially — the outer fan-out over
		// scales already saturates the pool.
		cfg := microbench.DefaultConfig()
		cfg.Workers = 1
		dep := microbench.Run(&tb, cfg)
		pred := predictor.New(dep)
		runner := NewRunner(&tb)
		runner.Reps = c.Runner.Reps

		sel, err := pred.Select(model.DR, &prm)
		if err != nil {
			return SensitivityRow{}, err
		}
		row := SensitivityRow{
			BWScale:      scale,
			BytesPerFlop: tb.H2D.BandwidthBps / tb.GPU.PeakFlops64,
			TModel:       sel.T,
			TStatic:      Fig6StaticT,
		}
		staticRes, err := runner.Measure(LibCoCoPeLia, p, row.TStatic)
		if err != nil {
			return SensitivityRow{}, err
		}
		row.GflopsStatic = staticRes.Gflops(p.M, p.N, p.K)
		modelRes, err := runner.Measure(LibCoCoPeLia, p, sel.T)
		if err != nil {
			return SensitivityRow{}, err
		}
		row.GflopsModel = modelRes.Gflops(p.M, p.N, p.K)

		// Exhaustive optimum over the sweep grid (plus the two policy
		// picks).
		grid := SweepTiles(p, microbench.GemmTileGrid(), c.Coarsen)
		grid = append(grid, row.TStatic, sel.T)
		best := math.Inf(1)
		for _, T := range grid {
			res, err := runner.Measure(LibCoCoPeLia, p, T)
			if err != nil {
				return SensitivityRow{}, err
			}
			if res.Seconds < best {
				best = res.Seconds
				row.TOpt = T
			}
		}
		row.GflopsOpt = 2 * float64(p.M) * float64(p.N) * float64(p.K) / best / 1e9
		row.StaticLossPct = 100 * (1 - row.GflopsStatic/row.GflopsOpt)
		row.ModelLossPct = 100 * (1 - row.GflopsModel/row.GflopsOpt)
		return row, nil
	})
}

// RenderSensitivity renders the future-machines study.
func RenderSensitivity(testbed string, size int, rows []SensitivityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "future-machines sensitivity (%s, dgemm %d^3, full offload)\n", testbed, size)
	fmt.Fprintf(&b, "%8s %14s %8s %8s %8s %12s %12s %12s %12s %12s\n",
		"bw x", "B/FLOP", "T_stat", "T_model", "T_opt",
		"GF/s stat", "GF/s model", "GF/s opt", "stat loss", "model loss")
	for _, r := range rows {
		fmt.Fprintf(&b, "%8g %14.5f %8d %8d %8d %12.0f %12.0f %12.0f %11.1f%% %11.1f%%\n",
			r.BWScale, r.BytesPerFlop, r.TStatic, r.TModel, r.TOpt,
			r.GflopsStatic, r.GflopsModel, r.GflopsOpt,
			r.StaticLossPct, r.ModelLossPct)
	}
	return b.String()
}
