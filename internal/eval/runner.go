package eval

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/libs/blasx"
	"cocopelia/internal/libs/cublasxt"
	"cocopelia/internal/libs/unified"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/parallel"
	"cocopelia/internal/plan"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
	"cocopelia/internal/stats"
)

// Lib identifies a measured library implementation.
type Lib string

// The libraries under evaluation.
const (
	LibCoCoPeLia Lib = "CoCoPeLia"
	LibCuBLASXt  Lib = "cuBLASXt"
	LibBLASX     Lib = "BLASX"
	LibUnified   Lib = "UnifiedMem"
	// LibNoReuse is the CoCoPeLia scheduler with stateless sub-kernels
	// (per-sub-kernel operand traffic) — the measured counterpart of the
	// no-reuse models (Eq. 1-4), standing in for the paper's use of
	// cuBLASXt in the Fig. 4 validation.
	LibNoReuse Lib = "NoReuse"
)

// cacheShards is the number of independently locked cache partitions; it
// only needs to exceed typical worker counts to keep lock contention low.
const cacheShards = 16

// cellKey is the comparable cache key of one measurement cell. It carries
// every field the rendered string key (testbed|lib|problem-name|T) encodes,
// so the cache partition it induces matches the legacy string keys — but a
// lookup is a struct compare with no formatting or allocation on the hit
// path. The testbed is omitted because each Runner serves exactly one.
type cellKey struct {
	lib     Lib
	routine string
	dtype   kernelmodel.Dtype
	m, n, k int
	locs    [3]model.Loc
	nlocs   int
	tag     string
	tile    int
}

// planKey identifies one memoized tile plan: the plan's routine variant
// ("gemm" and "gemm-noreuse" separate the two gemm planners), dtype,
// geometry, tiling size and operand location vector. The scalar
// coefficients are fixed per routine in runOnce, so they do not
// discriminate.
type planKey struct {
	routine string
	dtype   kernelmodel.Dtype
	m, n, k int
	locs    [3]model.Loc
	nlocs   int
	tile    int
}

// planCell builds the plan-memoization key for a measurement.
func planCell(routine string, p Problem, T int) planKey {
	pk := planKey{
		routine: routine, dtype: p.Dtype,
		m: p.M, n: p.N, k: p.K, nlocs: len(p.Locs), tile: T,
	}
	copy(pk.locs[:], p.Locs)
	return pk
}

// planOpsBudget bounds the plan cache by total op count (an op is ~100
// bytes, so this is a few tens of MB): once exceeded, the oldest plans are
// dropped FIFO. Repetitions of a cell reuse its plan back-to-back, so the
// budget only needs to hold the plans currently being measured — it must
// exceed the largest single plan (~2*10^5 ops for the no-reuse schedule at
// the sweep's smallest tile), and keeping it tight keeps the live heap,
// and with it GC cost across the whole campaign, small.
const planOpsBudget = 1 << 18

// cacheShard is one mutex-protected partition of the measurement cache.
type cacheShard struct {
	mu sync.Mutex
	// results holds completed measurements by cell key.
	results map[cellKey]operand.Result
	// inflight deduplicates concurrent requests for the same cell: the
	// first caller simulates, later callers wait on the call's done
	// channel (per-key singleflight).
	inflight map[cellKey]*inflightCall
}

// inflightCall is one in-progress measurement that concurrent callers of
// the same cell key wait on.
type inflightCall struct {
	done chan struct{}
	res  operand.Result
	err  error
}

// Runner executes measured library runs on a simulated testbed. Every
// measurement runs on a fresh device seeded deterministically from the run
// parameters — never from execution order — so results are reproducible,
// cacheable, and identical whether cells run serially or concurrently.
//
// Runner is safe for concurrent use: the cache is sharded behind mutexes
// and concurrent Measure calls for the same (lib, problem, T) cell
// simulate it exactly once (the other callers block until the first
// finishes).
type Runner struct {
	TB *machine.Testbed
	// Reps is the number of averaged repetitions per measurement (the
	// paper uses 100 on hardware; simulator noise is parametric so a small
	// count suffices).
	Reps int
	// SeedBase diversifies the noise streams of independent campaigns.
	SeedBase int64

	shards [cacheShards]cacheShard

	hits   atomic.Int64
	misses atomic.Int64
	waits  atomic.Int64
	events atomic.Int64

	// The plan cache memoizes tile plans by invocation shape: a plan is a
	// pure function of (routine variant, geometry, T, location vector) and
	// the context knobs — which are the defaults on every fresh eval
	// context — so a plan built during any repetition replays on every
	// other repetition and cell of the same shape.
	planMu     sync.Mutex
	plans      map[planKey]*plan.Plan
	planQueue  []planKey
	planOps    int
	planHits   atomic.Int64
	planMisses atomic.Int64

	// rtPool recycles cudart runtimes across this runner's repetitions so
	// their op/event free lists and kernel-duration memos stay warm. The
	// pool is per-runner because the duration memo is testbed-specific.
	rtPool sync.Pool
}

// NewRunner creates a runner for a testbed.
func NewRunner(tb *machine.Testbed) *Runner {
	r := &Runner{TB: tb, Reps: 3, SeedBase: 1}
	r.plans = map[planKey]*plan.Plan{}
	for i := range r.shards {
		r.shards[i].results = map[cellKey]operand.Result{}
		r.shards[i].inflight = map[cellKey]*inflightCall{}
	}
	return r
}

// cell builds the comparable cache key for a measurement.
func cell(lib Lib, p Problem, T int) cellKey {
	ck := cellKey{
		lib: lib, routine: p.Routine, dtype: p.Dtype,
		m: p.M, n: p.N, k: p.K, nlocs: len(p.Locs), tag: p.Tag, tile: T,
	}
	copy(ck.locs[:], p.Locs)
	return ck
}

// shard maps a cell key to its cache partition. Sharding only spreads lock
// contention, so the hash needs no stability guarantee — an inline FNV-1a
// over the discriminating fields avoids allocating a hasher per lookup.
func (r *Runner) shard(ck cellKey) *cacheShard {
	h := uint32(2166136261)
	mix := func(v uint32) {
		h ^= v
		h *= 16777619
	}
	for i := 0; i < len(ck.lib); i++ {
		mix(uint32(ck.lib[i]))
	}
	for i := 0; i < len(ck.routine); i++ {
		mix(uint32(ck.routine[i]))
	}
	mix(uint32(ck.m))
	mix(uint32(ck.n))
	mix(uint32(ck.k))
	mix(uint32(ck.tile))
	return &r.shards[h%cacheShards]
}

// planFor returns the memoized plan for key, building it with build on a
// miss. Replays only read the plan, so one canonical *plan.Plan per key is
// safely shared across concurrent repetitions. Concurrent misses on the
// same key may build twice; the first insert wins and the duplicate is
// discarded (builds are pure, so both are identical).
func (r *Runner) planFor(key planKey, build func() (*plan.Plan, error)) (*plan.Plan, error) {
	r.planMu.Lock()
	if p, ok := r.plans[key]; ok {
		r.planMu.Unlock()
		r.planHits.Add(1)
		return p, nil
	}
	r.planMu.Unlock()
	p, err := build()
	if err != nil {
		return nil, err
	}
	r.planMisses.Add(1)
	r.planMu.Lock()
	defer r.planMu.Unlock()
	if prev, ok := r.plans[key]; ok {
		return prev, nil
	}
	r.plans[key] = p
	r.planQueue = append(r.planQueue, key)
	r.planOps += len(p.Ops)
	for r.planOps > planOpsBudget && len(r.planQueue) > 1 {
		old := r.planQueue[0]
		r.planQueue = r.planQueue[1:]
		if q, ok := r.plans[old]; ok {
			r.planOps -= len(q.Ops)
			delete(r.plans, old)
		}
	}
	return p, nil
}

// PlanCacheStats reports plan-memoization activity: hits replayed an
// already-built plan, misses built one.
func (r *Runner) PlanCacheStats() (hits, misses int) {
	return int(r.planHits.Load()), int(r.planMisses.Load())
}

// key renders the legacy string cell key; it survives only as the input of
// seedFor, so cached repetitions keep their exact historical noise seeds.
func (r *Runner) key(lib Lib, p Problem, T int) string {
	return fmt.Sprintf("%s|%s|%s|%d", r.TB.Name, lib, p.Name(), T)
}

// seedFor derives a deterministic noise seed for one repetition.
func (r *Runner) seedFor(key string, rep int) int64 {
	h := int64(1469598103934665603)
	for _, c := range key {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h ^ (r.SeedBase * 7919) ^ int64(rep)*104729
}

// deviceMatrix allocates an unbacked full-matrix device buffer for
// device-resident operands.
func deviceMatrix(rt *cudart.Runtime, dt kernelmodel.Dtype, rows, cols int) (*operand.Matrix, error) {
	buf, err := rt.Malloc(dt, int64(rows)*int64(cols), false)
	if err != nil {
		return nil, err
	}
	return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}, nil
}

// gemmOperands materializes the problem's operands on a fresh runtime.
func gemmOperands(rt *cudart.Runtime, p Problem) (a, b, c *operand.Matrix, err error) {
	build := func(rows, cols int, loc model.Loc) (*operand.Matrix, error) {
		if loc == model.OnHost {
			return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostLd: rows}, nil
		}
		return deviceMatrix(rt, p.Dtype, rows, cols)
	}
	if a, err = build(p.M, p.K, p.Locs[0]); err != nil {
		return nil, nil, nil, err
	}
	if b, err = build(p.K, p.N, p.Locs[1]); err != nil {
		return nil, nil, nil, err
	}
	if c, err = build(p.M, p.N, p.Locs[2]); err != nil {
		return nil, nil, nil, err
	}
	return a, b, c, nil
}

// axpyOperands materializes the daxpy operands on a fresh runtime.
func axpyOperands(rt *cudart.Runtime, p Problem) (x, y *operand.Vector, err error) {
	build := func(loc model.Loc) (*operand.Vector, error) {
		if loc == model.OnHost {
			return &operand.Vector{N: p.N, Loc: model.OnHost}, nil
		}
		buf, err := rt.Malloc(kernelmodel.F64, int64(p.N), false)
		if err != nil {
			return nil, err
		}
		return &operand.Vector{N: p.N, Loc: model.OnDevice, Dev: buf}, nil
	}
	if x, err = build(p.Locs[0]); err != nil {
		return nil, nil, err
	}
	if y, err = build(p.Locs[1]); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// enginePool recycles simulation engines across repetitions: Engine.Reset
// restores a drained (or failed) engine to the exact state of sim.New while
// keeping its heap backing and event free list, so steady-state campaign
// repetitions schedule events with no heap growth.
var enginePool = sync.Pool{New: func() any { return sim.New() }}

// runOnce executes one repetition on a fresh device and returns its result.
// The engine is pooled (reset-on-reuse is indistinguishable from fresh —
// pinned by the sim package's reuse property test); the device, runtime and
// scheduling context are per-repetition so no measurement state leaks.
func (r *Runner) runOnce(lib Lib, p Problem, T int, seed int64) (operand.Result, error) {
	eng := enginePool.Get().(*sim.Engine)
	eng.Reset()
	dev := device.New(eng, r.TB, seed, false)
	var rt *cudart.Runtime
	if v := r.rtPool.Get(); v != nil {
		rt = v.(*cudart.Runtime)
		rt.Reset(dev)
	} else {
		rt = cudart.New(dev)
	}
	defer func() {
		r.events.Add(int64(eng.Processed()))
		enginePool.Put(eng)
		r.rtPool.Put(rt)
	}()

	if p.Routine == "daxpy" {
		x, y, err := axpyOperands(rt, p)
		if err != nil {
			return operand.Result{}, err
		}
		switch lib {
		case LibCoCoPeLia:
			ctx := sched.NewContext(rt, false)
			opts := sched.AxpyOpts{N: p.N, Alpha: 1.1, X: x, Y: y, T: T}
			pl, err := r.planFor(planCell("axpy", p, T), func() (*plan.Plan, error) {
				return ctx.PlanAxpy(opts)
			})
			if err != nil {
				return operand.Result{}, err
			}
			return ctx.AxpyWith(pl, opts)
		case LibUnified:
			return unified.Daxpy(rt, p.N, 1.1, x, y, false)
		default:
			return operand.Result{}, fmt.Errorf("eval: library %s has no daxpy", lib)
		}
	}

	if p.Routine == "dgemv" {
		if lib != LibCoCoPeLia {
			return operand.Result{}, fmt.Errorf("eval: library %s has no dgemv", lib)
		}
		var a *operand.Matrix
		if p.Locs[0] == model.OnHost {
			a = &operand.Matrix{Rows: p.M, Cols: p.N, Loc: model.OnHost, HostLd: p.M}
		} else {
			var err error
			if a, err = deviceMatrix(rt, kernelmodel.F64, p.M, p.N); err != nil {
				return operand.Result{}, err
			}
		}
		vec := func(n int, loc model.Loc) (*operand.Vector, error) {
			if loc == model.OnHost {
				return &operand.Vector{N: n, Loc: model.OnHost}, nil
			}
			buf, err := rt.Malloc(kernelmodel.F64, int64(n), false)
			if err != nil {
				return nil, err
			}
			return &operand.Vector{N: n, Loc: model.OnDevice, Dev: buf}, nil
		}
		x, err := vec(p.N, p.Locs[1])
		if err != nil {
			return operand.Result{}, err
		}
		y, err := vec(p.M, p.Locs[2])
		if err != nil {
			return operand.Result{}, err
		}
		ctx := sched.NewContext(rt, false)
		opts := sched.GemvOpts{M: p.M, N: p.N, Alpha: 1, Beta: 1, A: a, X: x, Y: y, T: T}
		pl, err := r.planFor(planCell("gemv", p, T), func() (*plan.Plan, error) {
			return ctx.PlanGemv(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		return ctx.GemvWith(pl, opts)
	}

	a, b, c, err := gemmOperands(rt, p)
	if err != nil {
		return operand.Result{}, err
	}
	switch lib {
	case LibCoCoPeLia:
		ctx := sched.NewContext(rt, false)
		opts := sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		}
		pl, err := r.planFor(planCell("gemm", p, T), func() (*plan.Plan, error) {
			return ctx.PlanGemm(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		return ctx.GemmWith(pl, opts)
	case LibNoReuse:
		ctx := sched.NewContext(rt, false)
		opts := sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		}
		// The no-reuse planner's slot count depends on free device memory,
		// which is deterministic given the location vector (the same
		// device-resident operands are staged before planning), so the
		// shape key still fully determines the plan.
		pl, err := r.planFor(planCell("gemm-noreuse", p, T), func() (*plan.Plan, error) {
			return ctx.PlanGemmNoReuse(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		return ctx.GemmNoReuseWith(pl, opts)
	case LibCuBLASXt:
		h := cublasxt.New(rt, 0, false)
		return h.Gemm(cublasxt.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		})
	case LibBLASX:
		l := blasx.New(rt, false)
		return l.Gemm(blasx.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c,
		})
	}
	return operand.Result{}, fmt.Errorf("eval: unknown library %s", lib)
}

// Measure runs the library on the problem with tiling size T (ignored by
// BLASX and UnifiedMem) and returns the aggregated result over Reps
// repetitions: Seconds is the mean over repetitions, while the structural
// fields (T, Subkernels, BytesH2D, BytesD2H) are the per-repetition
// maxima — the repetitions differ only in noise seed, so these are
// normally identical across reps, and taking the maximum makes the
// aggregation explicit rather than silently reporting the last
// repetition's values.
//
// Results are cached by (testbed, lib, problem, T). Measure is safe for
// concurrent use, and concurrent calls for the same cell simulate it
// exactly once; errors are returned to every waiter but never cached.
func (r *Runner) Measure(lib Lib, p Problem, T int) (operand.Result, error) {
	ck := cell(lib, p, T)
	s := r.shard(ck)
	s.mu.Lock()
	if res, ok := s.results[ck]; ok {
		s.mu.Unlock()
		r.hits.Add(1)
		return res, nil
	}
	if c, ok := s.inflight[ck]; ok {
		s.mu.Unlock()
		r.waits.Add(1)
		<-c.done
		return c.res, c.err
	}
	c := &inflightCall{done: make(chan struct{})}
	s.inflight[ck] = c
	s.mu.Unlock()
	r.misses.Add(1)

	// The string key is rendered only on this miss path: it feeds the
	// per-repetition seed derivation, which must stay byte-identical.
	c.res, c.err = r.measureCell(r.key(lib, p, T), lib, p, T)

	s.mu.Lock()
	delete(s.inflight, ck)
	if c.err == nil {
		s.results[ck] = c.res
	}
	s.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// measureCell executes the repetitions of one uncached cell and aggregates
// them (see Measure for the semantics).
func (r *Runner) measureCell(key string, lib Lib, p Problem, T int) (operand.Result, error) {
	reps := r.Reps
	if reps < 1 {
		reps = 1
	}
	times := make([]float64, 0, reps)
	var res operand.Result
	for i := 0; i < reps; i++ {
		one, err := r.runOnce(lib, p, T, r.seedFor(key, i))
		if err != nil {
			return operand.Result{}, fmt.Errorf("eval: %s on %s (T=%d): %w", lib, p.Name(), T, err)
		}
		times = append(times, one.Seconds)
		if i == 0 {
			res = one
		} else {
			res.Subkernels = max(res.Subkernels, one.Subkernels)
			res.BytesH2D = max(res.BytesH2D, one.BytesH2D)
			res.BytesD2H = max(res.BytesD2H, one.BytesD2H)
		}
	}
	res.Seconds = stats.Mean(times)
	return res, nil
}

// MeasureCell names one cell of a campaign's measurement work-list.
type MeasureCell struct {
	Lib Lib
	P   Problem
	T   int
}

// MeasureBatch prefetches a work-list of cells through the pool, warming
// the cache so a subsequent sequential assembly pass hits every cell.
// Duplicate cells are deduplicated before fan-out. The first simulation
// error cancels the batch and is returned. A nil pool prefetches serially
// (the legacy execution order); the cached results are identical either
// way because every cell's noise seed derives from its key alone.
func (r *Runner) MeasureBatch(pool *parallel.Pool, cells []MeasureCell) error {
	seen := make(map[cellKey]bool, len(cells))
	uniq := make([]MeasureCell, 0, len(cells))
	for _, c := range cells {
		k := cell(c.Lib, c.P, c.T)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	return parallel.ForEach(pool, uniq, func(_ int, c MeasureCell) error {
		_, err := r.Measure(c.Lib, c.P, c.T)
		return err
	})
}

// CacheStats reports measurement-cache activity, mirroring
// predictor.CacheStats: hits served from the completed-result cache,
// misses that ran a simulation, and waits deduplicated onto an in-flight
// simulation of the same cell by the singleflight layer.
func (r *Runner) CacheStats() (hits, misses, waits int) {
	return int(r.hits.Load()), int(r.misses.Load()), int(r.waits.Load())
}

// EventsProcessed returns the total number of discrete events the runner's
// simulations have fired so far (across all repetitions and cells). It is
// the denominator-independent throughput counter the campaign benchmark
// reports as events/sec.
func (r *Runner) EventsProcessed() int64 { return r.events.Load() }

// FullKernelTime measures the un-tiled full-problem kernel time on the
// device (the input the CSO comparator model requires).
func (r *Runner) FullKernelTime(p Problem) float64 {
	gpu := &r.TB.GPU
	switch p.Routine {
	case "daxpy":
		return kernelmodel.AxpyTime(gpu, kernelmodel.F64, p.N)
	case "dgemv":
		return kernelmodel.GemvTime(gpu, kernelmodel.F64, p.M, p.N)
	}
	return kernelmodel.GemmTime(gpu, p.Dtype, p.M, p.N, p.K)
}

// SweepTiles returns the measured-performance tile sweep grid for a
// problem: the benchmarked tile sizes filtered by the paper's feasibility
// rule, optionally coarsened (step multiplier) for fast runs.
func SweepTiles(p Problem, grid []int, coarsen int) []int {
	if coarsen < 1 {
		coarsen = 1
	}
	prm := p.Params()
	maxT := prm.MinDim()
	if prm.Level >= 2 {
		maxT = int64(float64(prm.MinDim()) / 1.5)
	}
	var out []int
	for i, T := range grid {
		if i%coarsen != 0 {
			continue
		}
		if int64(T) <= maxT {
			out = append(out, T)
		}
	}
	return out
}
