package eval

import (
	"fmt"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/libs/blasx"
	"cocopelia/internal/libs/cublasxt"
	"cocopelia/internal/libs/unified"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
	"cocopelia/internal/stats"
)

// Lib identifies a measured library implementation.
type Lib string

// The libraries under evaluation.
const (
	LibCoCoPeLia Lib = "CoCoPeLia"
	LibCuBLASXt  Lib = "cuBLASXt"
	LibBLASX     Lib = "BLASX"
	LibUnified   Lib = "UnifiedMem"
	// LibNoReuse is the CoCoPeLia scheduler with stateless sub-kernels
	// (per-sub-kernel operand traffic) — the measured counterpart of the
	// no-reuse models (Eq. 1-4), standing in for the paper's use of
	// cuBLASXt in the Fig. 4 validation.
	LibNoReuse Lib = "NoReuse"
)

// Runner executes measured library runs on a simulated testbed. Every
// measurement runs on a fresh device seeded deterministically from the run
// parameters, so results are reproducible and cacheable.
type Runner struct {
	TB *machine.Testbed
	// Reps is the number of averaged repetitions per measurement (the
	// paper uses 100 on hardware; simulator noise is parametric so a small
	// count suffices).
	Reps int
	// SeedBase diversifies the noise streams of independent campaigns.
	SeedBase int64

	cache map[string]operand.Result
}

// NewRunner creates a runner for a testbed.
func NewRunner(tb *machine.Testbed) *Runner {
	return &Runner{TB: tb, Reps: 3, SeedBase: 1, cache: map[string]operand.Result{}}
}

func (r *Runner) key(lib Lib, p Problem, T int) string {
	return fmt.Sprintf("%s|%s|%s|%d", r.TB.Name, lib, p.Name(), T)
}

// seedFor derives a deterministic noise seed for one repetition.
func (r *Runner) seedFor(key string, rep int) int64 {
	h := int64(1469598103934665603)
	for _, c := range key {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h ^ (r.SeedBase * 7919) ^ int64(rep)*104729
}

// deviceMatrix allocates an unbacked full-matrix device buffer for
// device-resident operands.
func deviceMatrix(rt *cudart.Runtime, dt kernelmodel.Dtype, rows, cols int) (*operand.Matrix, error) {
	buf, err := rt.Malloc(dt, int64(rows)*int64(cols), false)
	if err != nil {
		return nil, err
	}
	return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}, nil
}

// gemmOperands materializes the problem's operands on a fresh runtime.
func gemmOperands(rt *cudart.Runtime, p Problem) (a, b, c *operand.Matrix, err error) {
	build := func(rows, cols int, loc model.Loc) (*operand.Matrix, error) {
		if loc == model.OnHost {
			return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostLd: rows}, nil
		}
		return deviceMatrix(rt, p.Dtype, rows, cols)
	}
	if a, err = build(p.M, p.K, p.Locs[0]); err != nil {
		return nil, nil, nil, err
	}
	if b, err = build(p.K, p.N, p.Locs[1]); err != nil {
		return nil, nil, nil, err
	}
	if c, err = build(p.M, p.N, p.Locs[2]); err != nil {
		return nil, nil, nil, err
	}
	return a, b, c, nil
}

// axpyOperands materializes the daxpy operands on a fresh runtime.
func axpyOperands(rt *cudart.Runtime, p Problem) (x, y *operand.Vector, err error) {
	build := func(loc model.Loc) (*operand.Vector, error) {
		if loc == model.OnHost {
			return &operand.Vector{N: p.N, Loc: model.OnHost}, nil
		}
		buf, err := rt.Malloc(kernelmodel.F64, int64(p.N), false)
		if err != nil {
			return nil, err
		}
		return &operand.Vector{N: p.N, Loc: model.OnDevice, Dev: buf}, nil
	}
	if x, err = build(p.Locs[0]); err != nil {
		return nil, nil, err
	}
	if y, err = build(p.Locs[1]); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// runOnce executes one repetition on a fresh device and returns its result.
func (r *Runner) runOnce(lib Lib, p Problem, T int, seed int64) (operand.Result, error) {
	eng := sim.New()
	dev := device.New(eng, r.TB, seed, false)
	rt := cudart.New(dev)

	if p.Routine == "daxpy" {
		x, y, err := axpyOperands(rt, p)
		if err != nil {
			return operand.Result{}, err
		}
		switch lib {
		case LibCoCoPeLia:
			ctx := sched.NewContext(rt, false)
			return ctx.Axpy(sched.AxpyOpts{N: p.N, Alpha: 1.1, X: x, Y: y, T: T})
		case LibUnified:
			return unified.Daxpy(rt, p.N, 1.1, x, y, false)
		default:
			return operand.Result{}, fmt.Errorf("eval: library %s has no daxpy", lib)
		}
	}

	if p.Routine == "dgemv" {
		if lib != LibCoCoPeLia {
			return operand.Result{}, fmt.Errorf("eval: library %s has no dgemv", lib)
		}
		var a *operand.Matrix
		if p.Locs[0] == model.OnHost {
			a = &operand.Matrix{Rows: p.M, Cols: p.N, Loc: model.OnHost, HostLd: p.M}
		} else {
			var err error
			if a, err = deviceMatrix(rt, kernelmodel.F64, p.M, p.N); err != nil {
				return operand.Result{}, err
			}
		}
		vec := func(n int, loc model.Loc) (*operand.Vector, error) {
			if loc == model.OnHost {
				return &operand.Vector{N: n, Loc: model.OnHost}, nil
			}
			buf, err := rt.Malloc(kernelmodel.F64, int64(n), false)
			if err != nil {
				return nil, err
			}
			return &operand.Vector{N: n, Loc: model.OnDevice, Dev: buf}, nil
		}
		x, err := vec(p.N, p.Locs[1])
		if err != nil {
			return operand.Result{}, err
		}
		y, err := vec(p.M, p.Locs[2])
		if err != nil {
			return operand.Result{}, err
		}
		ctx := sched.NewContext(rt, false)
		return ctx.Gemv(sched.GemvOpts{M: p.M, N: p.N, Alpha: 1, Beta: 1, A: a, X: x, Y: y, T: T})
	}

	a, b, c, err := gemmOperands(rt, p)
	if err != nil {
		return operand.Result{}, err
	}
	switch lib {
	case LibCoCoPeLia:
		ctx := sched.NewContext(rt, false)
		return ctx.Gemm(sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		})
	case LibNoReuse:
		ctx := sched.NewContext(rt, false)
		return ctx.GemmNoReuse(sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		})
	case LibCuBLASXt:
		h := cublasxt.New(rt, 0, false)
		return h.Gemm(cublasxt.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		})
	case LibBLASX:
		l := blasx.New(rt, false)
		return l.Gemm(blasx.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c,
		})
	}
	return operand.Result{}, fmt.Errorf("eval: unknown library %s", lib)
}

// Measure runs the library on the problem with tiling size T (ignored by
// BLASX and UnifiedMem) and returns the repetition-averaged result.
// Results are cached by (testbed, lib, problem, T).
func (r *Runner) Measure(lib Lib, p Problem, T int) (operand.Result, error) {
	key := r.key(lib, p, T)
	if res, ok := r.cache[key]; ok {
		return res, nil
	}
	reps := r.Reps
	if reps < 1 {
		reps = 1
	}
	var times []float64
	var res operand.Result
	for i := 0; i < reps; i++ {
		one, err := r.runOnce(lib, p, T, r.seedFor(key, i))
		if err != nil {
			return operand.Result{}, fmt.Errorf("eval: %s on %s (T=%d): %w", lib, p.Name(), T, err)
		}
		times = append(times, one.Seconds)
		res = one
	}
	res.Seconds = stats.Mean(times)
	r.cache[key] = res
	return res, nil
}

// FullKernelTime measures the un-tiled full-problem kernel time on the
// device (the input the CSO comparator model requires).
func (r *Runner) FullKernelTime(p Problem) float64 {
	gpu := &r.TB.GPU
	switch p.Routine {
	case "daxpy":
		return kernelmodel.AxpyTime(gpu, kernelmodel.F64, p.N)
	case "dgemv":
		return kernelmodel.GemvTime(gpu, kernelmodel.F64, p.M, p.N)
	}
	return kernelmodel.GemmTime(gpu, p.Dtype, p.M, p.N, p.K)
}

// SweepTiles returns the measured-performance tile sweep grid for a
// problem: the benchmarked tile sizes filtered by the paper's feasibility
// rule, optionally coarsened (step multiplier) for fast runs.
func SweepTiles(p Problem, grid []int, coarsen int) []int {
	if coarsen < 1 {
		coarsen = 1
	}
	prm := p.Params()
	maxT := prm.MinDim()
	if prm.Level >= 2 {
		maxT = int64(float64(prm.MinDim()) / 1.5)
	}
	var out []int
	for i, T := range grid {
		if i%coarsen != 0 {
			continue
		}
		if int64(T) <= maxT {
			out = append(out, T)
		}
	}
	return out
}
