package eval

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/libs/blasx"
	"cocopelia/internal/libs/cublasxt"
	"cocopelia/internal/libs/unified"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/parallel"
	"cocopelia/internal/plan"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
	"cocopelia/internal/stats"
)

// Lib identifies a measured library implementation.
type Lib string

// The libraries under evaluation.
const (
	LibCoCoPeLia Lib = "CoCoPeLia"
	LibCuBLASXt  Lib = "cuBLASXt"
	LibBLASX     Lib = "BLASX"
	LibUnified   Lib = "UnifiedMem"
	// LibNoReuse is the CoCoPeLia scheduler with stateless sub-kernels
	// (per-sub-kernel operand traffic) — the measured counterpart of the
	// no-reuse models (Eq. 1-4), standing in for the paper's use of
	// cuBLASXt in the Fig. 4 validation.
	LibNoReuse Lib = "NoReuse"
)

// cacheShards is the number of independently locked cache partitions; it
// only needs to exceed typical worker counts to keep lock contention low.
const cacheShards = 16

// cellKey is the comparable cache key of one measurement cell. It carries
// every field the rendered string key (testbed|lib|problem-name|T) encodes,
// so the cache partition it induces matches the legacy string keys — but a
// lookup is a struct compare with no formatting or allocation on the hit
// path. The testbed is omitted because each Runner serves exactly one.
type cellKey struct {
	lib     Lib
	routine string
	dtype   kernelmodel.Dtype
	m, n, k int
	locs    [3]model.Loc
	nlocs   int
	tag     string
	tile    int
}

// planKey identifies one memoized tile plan: the plan's routine variant
// ("gemm" and "gemm-noreuse" separate the two gemm planners), dtype,
// geometry, transpose flags, tiling size and operand location vector. The
// scalar coefficients are fixed per routine in runOnce, so they do not
// discriminate. The transpose flags are part of the key even though the
// runner currently emits only NoTrans invocations: sched.GemmOpts accepts
// transposes, and omitting them here would silently alias a future
// transposed cell onto the NoTrans plan of the same geometry.
type planKey struct {
	routine        string
	dtype          kernelmodel.Dtype
	transA, transB byte
	m, n, k        int
	locs           [3]model.Loc
	nlocs          int
	tile           int
}

// planCell builds the plan-memoization key for a measurement. Every
// problem the runner measures is stored NoTrans (Problem has no transpose
// fields); geometry normalization happens upstream, on the Problem itself
// (see normalizeGemm), so mirror-equivalent cells arrive here already
// folded onto their canonical orientation.
func planCell(routine string, p Problem, T int) planKey {
	pk := planKey{
		routine: routine, dtype: p.Dtype,
		transA: blas.NoTrans, transB: blas.NoTrans,
		m: p.M, n: p.N, k: p.K, nlocs: len(p.Locs), tile: T,
	}
	copy(pk.locs[:], p.Locs)
	return pk
}

// normalizeGemm folds a NoTrans gemm problem onto the canonical
// representative of its mirror-equivalence class. The transpose identity
// C^T = B^T·A^T makes gemm(M,N,K, A@locA, B@locB, C@locC) cost-isomorphic
// to gemm(N,M,K, B^T@locB, A^T@locA, C^T@locC): tile counts, per-tile
// transfer volumes and kernel shapes (the kernel-time model is symmetric
// in M and N) all coincide, so the two orientations share one tile plan.
// The canonical orientation is the lexicographically smaller of
// (m, n, locA, locB) and its mirror (n, m, locB, locA); square problems
// with symmetric locations are their own mirror and pass through
// unchanged. The fold is applied to the Problem itself — before operand
// materialization and plan-key construction — so every downstream layer
// (plan cache, replay validation, result assembly) sees one orientation.
// Seconds differ between the orientations only through the plan's op
// order, which is exactly the modeling decision NormalizeKeys opts into;
// the structural result fields (Subkernels, BytesH2D, BytesD2H) are
// identical by symmetry.
func normalizeGemm(p Problem) Problem {
	if p.Routine != "dgemm" || len(p.Locs) != 3 {
		return p
	}
	m, n := p.M, p.N
	la, lb := p.Locs[0], p.Locs[1]
	if m < n || (m == n && la <= lb) {
		return p // already canonical
	}
	q := p
	q.M, q.N = n, m
	q.Locs = []model.Loc{lb, la, p.Locs[2]} // fresh slice: p.Locs is shared
	return q
}

// planOpsBudget bounds the plan cache by total op count (an op is ~100
// bytes, so this is a few tens of MB): once exceeded, the oldest plans are
// dropped FIFO. Repetitions of a cell reuse its plan back-to-back, so the
// budget only needs to hold the plans currently being measured — it must
// exceed the largest single plan (~2*10^5 ops for the no-reuse schedule at
// the sweep's smallest tile), and keeping it tight keeps the live heap,
// and with it GC cost across the whole campaign, small.
const planOpsBudget = 1 << 18

// cacheShard is one mutex-protected partition of the measurement cache.
type cacheShard struct {
	mu sync.Mutex
	// results holds completed measurements by cell key.
	results map[cellKey]operand.Result
	// inflight deduplicates concurrent requests for the same cell: the
	// first caller simulates, later callers wait on the call's done
	// channel (per-key singleflight).
	inflight map[cellKey]*inflightCall
}

// inflightCall is one in-progress measurement that concurrent callers of
// the same cell key wait on.
type inflightCall struct {
	done chan struct{}
	res  operand.Result
	err  error
}

// Runner executes measured library runs on a simulated testbed. Every
// measurement runs on a fresh device seeded deterministically from the run
// parameters — never from execution order — so results are reproducible,
// cacheable, and identical whether cells run serially or concurrently.
//
// Runner is safe for concurrent use: the cache is sharded behind mutexes
// and concurrent Measure calls for the same (lib, problem, T) cell
// simulate it exactly once (the other callers block until the first
// finishes).
type Runner struct {
	TB *machine.Testbed
	// Reps is the number of averaged repetitions per measurement (the
	// paper uses 100 on hardware; simulator noise is parametric so a small
	// count suffices).
	Reps int
	// SeedBase diversifies the noise streams of independent campaigns.
	SeedBase int64
	// IntraCell selects the conservatively-partitioned discrete-event
	// engine (per-device event queues with lookahead derived from the
	// testbed's link latencies) for this runner's repetitions. The fired
	// event sequence is bit-identical to the sequential engine — the
	// partitioned engine's (at, seq) merge oracle guarantees it, and the
	// campaign identity assertions in cocobench pin it — so the flag only
	// changes how the queue is advanced, never what is measured.
	IntraCell bool
	// Drain, with IntraCell, fans the partitioned engine's per-partition
	// staging jobs out through a worker pool. Staged drains are enabled
	// only when the pool has more than one worker AND GOMAXPROCS > 1 —
	// otherwise staging is pure overhead on the single P — which is the
	// sequential-fallback criterion DESIGN.md §10 documents.
	Drain *parallel.Pool
	// NormalizeKeys folds mirror-equivalent gemm cells onto a canonical
	// orientation before measuring (see normalizeGemm), so symmetric
	// work-lists share tile plans. Off by default: the reference campaign
	// is pinned byte-identical, and normalization measures the canonical
	// representative of each mirror class instead of the literal cell.
	NormalizeKeys bool
	// Clock, when set, enables per-phase wall-time attribution
	// (PhaseSeconds). It is injected rather than sampled so the eval layer
	// stays wall-clock free under the determinism analyzer; cmd binaries
	// pass time.Now.
	Clock parallel.Clock
	// PlanOpsBudget overrides the plan cache's FIFO-eviction budget
	// (planOpsBudget when zero). Eviction outcomes depend on execution
	// order — whether a shared key re-misses hinges on which insertions
	// landed in between — so a campaign that pins its plan-cache counters
	// byte-identical across worker counts must raise the budget above its
	// work-list's total op count; cocobench does exactly that.
	PlanOpsBudget int

	shards [cacheShards]cacheShard

	hits   atomic.Int64
	misses atomic.Int64
	waits  atomic.Int64
	events atomic.Int64

	phaseNS [numPhases]atomic.Int64

	// The plan cache memoizes tile plans by invocation shape: a plan is a
	// pure function of (routine variant, geometry, T, location vector) and
	// the context knobs — which are the defaults on every fresh eval
	// context — so a plan built during any repetition replays on every
	// other repetition and cell of the same shape. Entries are inserted at
	// first arrival (singleflight): later requesters of a key being built
	// count as hits and wait on the entry's done channel, which keeps the
	// hit/miss counters independent of worker count.
	planMu        sync.Mutex
	plans         map[planKey]*planEntry
	planQueue     []planQEntry
	planOps       int
	planHits      atomic.Int64
	planMisses    atomic.Int64
	planEvictions atomic.Int64

	// bundleFree recycles wired simulation stacks (engine + device +
	// runtime + scheduler context) across this runner's repetitions, so a
	// cached-plan repetition re-derives nothing: no lookahead/drain
	// configuration, no stream creation, no map growth — only a reseed and
	// counter reset (see simBundle). It is a mutex-guarded free list
	// rather than a sync.Pool deliberately: plan building allocates enough
	// to trigger GC cycles mid-campaign, and sync.Pool drops its contents
	// at every GC — losing the op/event slabs, free lists and
	// kernel-duration memos whose warmth is the entire point of pooling.
	// The list is per-runner because the duration memo is testbed-specific
	// and the engine flavor is fixed by the runner's configuration; it
	// grows to at most the number of concurrent Measure calls.
	bundleMu   sync.Mutex
	bundleFree []*simBundle
}

// planEntry is one plan-cache slot: inserted before the build runs, so
// concurrent requesters of the same key join the in-flight build instead
// of duplicating it.
type planEntry struct {
	done chan struct{}
	p    *plan.Plan
	err  error
}

// planQEntry is one FIFO-eviction record. It captures the entry identity,
// not just the key: a key evicted and later rebuilt gets a fresh entry and
// a fresh queue position, and the stale record must not evict the rebuilt
// plan when it reaches the queue head.
type planQEntry struct {
	key planKey
	e   *planEntry
}

// NewRunner creates a runner for a testbed.
func NewRunner(tb *machine.Testbed) *Runner {
	r := &Runner{TB: tb, Reps: 3, SeedBase: 1}
	r.plans = map[planKey]*planEntry{}
	for i := range r.shards {
		r.shards[i].results = map[cellKey]operand.Result{}
		r.shards[i].inflight = map[cellKey]*inflightCall{}
	}
	return r
}

// cell builds the comparable cache key for a measurement.
func cell(lib Lib, p Problem, T int) cellKey {
	ck := cellKey{
		lib: lib, routine: p.Routine, dtype: p.Dtype,
		m: p.M, n: p.N, k: p.K, nlocs: len(p.Locs), tag: p.Tag, tile: T,
	}
	copy(ck.locs[:], p.Locs)
	return ck
}

// fnvMix folds one value into a running FNV-1a hash.
func fnvMix(h, v uint32) uint32 {
	h ^= v
	h *= 16777619
	return h
}

// shard maps a cell key to its cache partition. Sharding only spreads lock
// contention, so the hash needs no stability guarantee — an inline FNV-1a
// over the discriminating fields avoids allocating a hasher per lookup.
func (r *Runner) shard(ck cellKey) *cacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(ck.lib); i++ {
		h = fnvMix(h, uint32(ck.lib[i]))
	}
	for i := 0; i < len(ck.routine); i++ {
		h = fnvMix(h, uint32(ck.routine[i]))
	}
	h = fnvMix(h, uint32(ck.m))
	h = fnvMix(h, uint32(ck.n))
	h = fnvMix(h, uint32(ck.k))
	h = fnvMix(h, uint32(ck.tile))
	return &r.shards[h%cacheShards]
}

// planFor returns the memoized plan for key, building it with build on a
// miss. Replays only read the plan, so one canonical *plan.Plan per key is
// safely shared across concurrent repetitions.
//
// The cache is singleflight: the first requester of a key inserts an
// unfinished entry and builds; concurrent requesters of the same key count
// as hits and wait on the entry instead of building a duplicate. This
// keeps the hit/miss split a pure function of the work-list — identical at
// any worker count — which the campaign identity checks rely on. Failed
// builds are returned to every waiter but never cached.
//cocolint:hotpath
func (r *Runner) planFor(key planKey, build func() (*plan.Plan, error)) (*plan.Plan, error) {
	r.planMu.Lock()
	if e, ok := r.plans[key]; ok {
		r.planMu.Unlock()
		r.planHits.Add(1)
		<-e.done
		return e.p, e.err
	}
	//lint:ignore hotpath plan-cache miss builds and caches the plan (entered with planMu held); each shape pays it once per eviction window
	return r.planForMiss(key, build)
}

// planForMiss is planFor's uncached path, entered with planMu held: it
// registers the in-flight entry, builds the plan, publishes it and evicts
// FIFO past the op budget.
func (r *Runner) planForMiss(key planKey, build func() (*plan.Plan, error)) (*plan.Plan, error) {
	e := &planEntry{done: make(chan struct{})}
	r.plans[key] = e
	r.planMu.Unlock()
	r.planMisses.Add(1)

	e.p, e.err = build()
	close(e.done)

	r.planMu.Lock()
	defer r.planMu.Unlock()
	if e.err != nil {
		// Never cache failures — but only remove our own entry, in case the
		// key was already evicted and rebuilt by someone else.
		if cur, ok := r.plans[key]; ok && cur == e {
			delete(r.plans, key)
		}
		return nil, e.err
	}
	r.planQueue = append(r.planQueue, planQEntry{key: key, e: e})
	r.planOps += len(e.p.Ops)
	budget := r.PlanOpsBudget
	if budget <= 0 {
		budget = planOpsBudget
	}
	for r.planOps > budget && len(r.planQueue) > 1 {
		old := r.planQueue[0]
		r.planQueue = r.planQueue[1:]
		if cur, ok := r.plans[old.key]; ok && cur == old.e {
			r.planOps -= len(old.e.p.Ops)
			delete(r.plans, old.key)
			r.planEvictions.Add(1)
		}
		// A stale record (key evicted earlier, then rebuilt under a new
		// entry) is skipped: its op count was already subtracted when the
		// entry it names was evicted.
	}
	return e.p, nil
}

// PlanCacheStats reports plan-memoization activity: hits replayed an
// already-built plan (or joined an in-flight build), misses built one, and
// evictions dropped a built plan to keep the cache within its op budget.
// Evictions explain the gap between distinct shapes and misses: an evicted
// shape that recurs later in the work-list misses again.
func (r *Runner) PlanCacheStats() (hits, misses, evictions int) {
	return int(r.planHits.Load()), int(r.planMisses.Load()), int(r.planEvictions.Load())
}

// Phase indices of Runner.phaseNS: where campaign wall time goes.
const (
	phasePlan    = iota // plan-cache lookups and (on misses) plan builds
	phaseEnqueue        // replaying plans onto the runtime's streams
	phaseAdvance        // draining the event queue (runtime Sync)
	phaseOther          // operand setup and the non-plan-replaying libraries
	numPhases
)

// PhaseSeconds reports the accumulated per-phase wall time of this
// runner's repetitions: plan building, plan replay (enqueue), event-queue
// advance, and everything else (operand setup plus the comparator
// libraries that run to completion internally). All zero unless Clock is
// set.
func (r *Runner) PhaseSeconds() (planBuild, enqueue, advance, other float64) {
	const s = 1e-9
	return float64(r.phaseNS[phasePlan].Load()) * s,
		float64(r.phaseNS[phaseEnqueue].Load()) * s,
		float64(r.phaseNS[phaseAdvance].Load()) * s,
		float64(r.phaseNS[phaseOther].Load()) * s
}

// phaseLap attributes wall-time intervals to campaign phases through the
// runner's injected clock; the zero value (no clock installed) makes every
// lap a no-op, so default campaigns pay nothing for the instrumentation.
type phaseLap struct {
	r    *Runner
	mark time.Time
}

// startLap begins interval attribution for one repetition.
func (r *Runner) startLap() phaseLap {
	if r.Clock == nil {
		return phaseLap{}
	}
	return phaseLap{r: r, mark: r.Clock()}
}

// lap charges the time since the previous lap (or startLap) to phase ph.
func (pc *phaseLap) lap(ph int) {
	if pc.r == nil {
		return
	}
	now := pc.r.Clock()
	pc.r.phaseNS[ph].Add(int64(now.Sub(pc.mark)))
	pc.mark = now
}

// key renders the legacy string cell key; it survives only as the input of
// seedFor, so cached repetitions keep their exact historical noise seeds.
func (r *Runner) key(lib Lib, p Problem, T int) string {
	return fmt.Sprintf("%s|%s|%s|%d", r.TB.Name, lib, p.Name(), T)
}

// seedFor derives a deterministic noise seed for one repetition.
func (r *Runner) seedFor(key string, rep int) int64 {
	h := int64(1469598103934665603)
	for _, c := range key {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h ^ (r.SeedBase * 7919) ^ int64(rep)*104729
}

// deviceMatrix allocates an unbacked full-matrix device buffer for
// device-resident operands.
func deviceMatrix(rt *cudart.Runtime, dt kernelmodel.Dtype, rows, cols int) (*operand.Matrix, error) {
	buf, err := rt.Malloc(dt, int64(rows)*int64(cols), false)
	if err != nil {
		return nil, err
	}
	return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}, nil
}

// gemmOperands materializes the problem's operands on a fresh runtime.
func gemmOperands(rt *cudart.Runtime, p Problem) (a, b, c *operand.Matrix, err error) {
	build := func(rows, cols int, loc model.Loc) (*operand.Matrix, error) {
		if loc == model.OnHost {
			return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostLd: rows}, nil
		}
		return deviceMatrix(rt, p.Dtype, rows, cols)
	}
	if a, err = build(p.M, p.K, p.Locs[0]); err != nil {
		return nil, nil, nil, err
	}
	if b, err = build(p.K, p.N, p.Locs[1]); err != nil {
		return nil, nil, nil, err
	}
	if c, err = build(p.M, p.N, p.Locs[2]); err != nil {
		return nil, nil, nil, err
	}
	return a, b, c, nil
}

// axpyOperands materializes the daxpy operands on a fresh runtime.
func axpyOperands(rt *cudart.Runtime, p Problem) (x, y *operand.Vector, err error) {
	build := func(loc model.Loc) (*operand.Vector, error) {
		if loc == model.OnHost {
			return &operand.Vector{N: p.N, Loc: model.OnHost}, nil
		}
		buf, err := rt.Malloc(kernelmodel.F64, int64(p.N), false)
		if err != nil {
			return nil, err
		}
		return &operand.Vector{N: p.N, Loc: model.OnDevice, Dev: buf}, nil
	}
	if x, err = build(p.Locs[0]); err != nil {
		return nil, nil, err
	}
	if y, err = build(p.Locs[1]); err != nil {
		return nil, nil, err
	}
	return x, y, nil
}

// drainThreshold is the heap population at which an intra-cell engine
// stages a conservative drain. Below it the staging bookkeeping outweighs
// the batch-pop savings; the big gemm cells hold tens of thousands of
// pending events, so they drain, while tiny cells never do (and draining
// never changes what fires — see the merge-oracle invariant).
const drainThreshold = 4096

// ctxStreams is the number of long-lived streams a bundle's scheduler
// context owns (h2d, d2h, compute); TruncateStreams rewinds a reused
// bundle's runtime to exactly these.
const ctxStreams = 3

// simBundle is one fully wired simulation stack — engine, device, runtime
// and scheduler context — recycled across a runner's repetitions. Pooling
// the stack as a unit is what makes a cached-plan repetition allocation-
// free outside the simulation itself: the engine keeps its heap backing
// and event free list, the runtime its op/event slabs and kernel-duration
// memo, the context its streams, bucket slice and replay scratch, and the
// device its task free list. Per repetition only the noise streams are
// reseeded and the accounting counters zeroed; the lookahead and drain
// configuration are derived once, at bundle construction, never per rep.
type simBundle struct {
	eng *sim.Engine
	dev *device.Device
	rt  *cudart.Runtime
	ctx *sched.Context
}

// newEngine builds a simulation engine of the runner's configured flavor.
// The partitioned engine is selected only when its drains can actually fan
// out — a worker pool with real concurrency AND more than one P. A
// single-core intra-cell runner gets the flat sequential queue outright:
// the fired event sequence is identical either way (the partitioned
// engine's merge oracle pins it), so partitioning without parallel staging
// would be pure bookkeeping overhead. The partitioned engine's lookahead
// vector is installed by device.New from the testbed's link latencies.
func (r *Runner) newEngine() *sim.Engine {
	if !r.IntraCell || r.Drain.Workers() <= 1 || runtime.GOMAXPROCS(0) <= 1 {
		return sim.New()
	}
	eng := sim.NewPartitioned()
	pool := r.Drain
	eng.SetDrain(drainThreshold, func(n int, f func(int)) { parallel.Fanout(pool, n, f) })
	return eng
}

// bundle returns a simulation stack ready for one repetition with the
// given noise seed: a pooled stack is reset in place (engine cleared,
// device and link reseeded, comparator-created streams shed, tile pool
// emptied), a fresh one is wired from scratch. Either way the stack is
// indistinguishable from a freshly constructed one — the reuse property
// tests in sim, and the campaign identity checks in cocobench, pin it.
func (r *Runner) bundle(seed int64) *simBundle {
	r.bundleMu.Lock()
	var b *simBundle
	if n := len(r.bundleFree); n > 0 {
		b = r.bundleFree[n-1]
		r.bundleFree[n-1] = nil
		r.bundleFree = r.bundleFree[:n-1]
	}
	r.bundleMu.Unlock()
	if b != nil {
		b.eng.Reset()
		b.dev.Reset(seed)
		b.rt.TruncateStreams(ctxStreams)
		b.ctx.Reset()
		return b
	}
	eng := r.newEngine()
	dev := device.New(eng, r.TB, seed, false)
	rt := cudart.New(dev)
	return &simBundle{eng: eng, dev: dev, rt: rt, ctx: sched.NewContext(rt, false)}
}

// putBundle parks a cleanly drained bundle for reuse.
func (r *Runner) putBundle(b *simBundle) {
	r.bundleMu.Lock()
	r.bundleFree = append(r.bundleFree, b)
	r.bundleMu.Unlock()
}

// finishTimed drains the engine and settles an enqueued plan replay,
// attributing the enqueue and advance intervals to their phases (the timed
// counterpart of the sched *With tails). err is the Enqueue variant's
// error, so call sites stay one-liners.
func (r *Runner) finishTimed(pc *phaseLap, rt *cudart.Runtime, pend *sched.PendingGemm, err error) (operand.Result, error) {
	if err != nil {
		return operand.Result{}, err
	}
	pc.lap(phaseEnqueue)
	end, serr := rt.Sync()
	pc.lap(phaseAdvance)
	res := pend.Finish(end)
	if serr != nil {
		return operand.Result{}, serr
	}
	return res, nil
}

// runOnce executes one repetition and returns its result. The whole
// simulation stack is pooled as a unit (reset-on-reuse is
// indistinguishable from fresh — pinned by the sim package's reuse
// property test and the campaign identity checks); no measurement state
// leaks because every reset reseeds the noise streams and zeroes the
// accounting. A failed repetition abandons its bundle rather than pooling
// it: the engine, runtime or context may hold half-enqueued state whose
// cleanup is not worth proving correct on an error path.
func (r *Runner) runOnce(lib Lib, p Problem, T int, seed int64) (res operand.Result, err error) {
	if r.NormalizeKeys {
		// Fold onto the mirror class's canonical orientation. The noise
		// seed was already derived from the original cell key upstream, so
		// mirrored cells keep distinct noise streams.
		p = normalizeGemm(p)
	}
	bd := r.bundle(seed)
	rt := bd.rt
	defer func() {
		r.events.Add(int64(bd.eng.Processed()))
		if err == nil {
			r.putBundle(bd)
		}
	}()
	pc := r.startLap()

	if p.Routine == "daxpy" {
		x, y, err := axpyOperands(rt, p)
		if err != nil {
			return operand.Result{}, err
		}
		switch lib {
		case LibCoCoPeLia:
			ctx := bd.ctx
			opts := sched.AxpyOpts{N: p.N, Alpha: 1.1, X: x, Y: y, T: T}
			pc.lap(phaseOther)
			pl, err := r.planFor(planCell("axpy", p, T), func() (*plan.Plan, error) {
				return ctx.PlanAxpy(opts)
			})
			if err != nil {
				return operand.Result{}, err
			}
			pc.lap(phasePlan)
			pend, err := ctx.AxpyEnqueueWith(pl, opts)
			return r.finishTimed(&pc, rt, pend, err)
		case LibUnified:
			res, err := unified.Daxpy(rt, p.N, 1.1, x, y, false)
			pc.lap(phaseOther)
			return res, err
		default:
			return operand.Result{}, fmt.Errorf("eval: library %s has no daxpy", lib)
		}
	}

	if p.Routine == "dgemv" {
		if lib != LibCoCoPeLia {
			return operand.Result{}, fmt.Errorf("eval: library %s has no dgemv", lib)
		}
		var a *operand.Matrix
		if p.Locs[0] == model.OnHost {
			a = &operand.Matrix{Rows: p.M, Cols: p.N, Loc: model.OnHost, HostLd: p.M}
		} else {
			var err error
			if a, err = deviceMatrix(rt, kernelmodel.F64, p.M, p.N); err != nil {
				return operand.Result{}, err
			}
		}
		vec := func(n int, loc model.Loc) (*operand.Vector, error) {
			if loc == model.OnHost {
				return &operand.Vector{N: n, Loc: model.OnHost}, nil
			}
			buf, err := rt.Malloc(kernelmodel.F64, int64(n), false)
			if err != nil {
				return nil, err
			}
			return &operand.Vector{N: n, Loc: model.OnDevice, Dev: buf}, nil
		}
		x, err := vec(p.N, p.Locs[1])
		if err != nil {
			return operand.Result{}, err
		}
		y, err := vec(p.M, p.Locs[2])
		if err != nil {
			return operand.Result{}, err
		}
		ctx := bd.ctx
		opts := sched.GemvOpts{M: p.M, N: p.N, Alpha: 1, Beta: 1, A: a, X: x, Y: y, T: T}
		pc.lap(phaseOther)
		pl, err := r.planFor(planCell("gemv", p, T), func() (*plan.Plan, error) {
			return ctx.PlanGemv(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		pc.lap(phasePlan)
		pend, err := ctx.GemvEnqueueWith(pl, opts)
		return r.finishTimed(&pc, rt, pend, err)
	}

	switch p.Routine {
	case "dpotrf", "dgetrf", "dtrsm":
		if lib != LibCoCoPeLia {
			return operand.Result{}, fmt.Errorf("eval: library %s has no %s", lib, p.Routine)
		}
		return r.runFactor(bd, &pc, p, T)
	}

	a, b, c, err := gemmOperands(rt, p)
	if err != nil {
		return operand.Result{}, err
	}
	switch lib {
	case LibCoCoPeLia:
		ctx := bd.ctx
		opts := sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		}
		pc.lap(phaseOther)
		pl, err := r.planFor(planCell("gemm", p, T), func() (*plan.Plan, error) {
			return ctx.PlanGemm(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		pc.lap(phasePlan)
		pend, err := ctx.GemmEnqueueWith(pl, opts)
		return r.finishTimed(&pc, rt, pend, err)
	case LibNoReuse:
		ctx := bd.ctx
		opts := sched.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		}
		pc.lap(phaseOther)
		// The no-reuse planner's slot count depends on free device memory,
		// which is deterministic given the location vector (the same
		// device-resident operands are staged before planning), so the
		// shape key still fully determines the plan.
		pl, err := r.planFor(planCell("gemm-noreuse", p, T), func() (*plan.Plan, error) {
			return ctx.PlanGemmNoReuse(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		pc.lap(phasePlan)
		pend, err := ctx.GemmNoReuseEnqueueWith(pl, opts)
		return r.finishTimed(&pc, rt, pend, err)
	case LibCuBLASXt:
		h := cublasxt.New(rt, 0, false)
		res, err := h.Gemm(cublasxt.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c, T: T,
		})
		pc.lap(phaseOther)
		return res, err
	case LibBLASX:
		l := blasx.New(rt, false)
		res, err := l.Gemm(blasx.GemmOpts{
			Dtype: p.Dtype, M: p.M, N: p.N, K: p.K,
			Alpha: 1, Beta: 1, A: a, B: b, C: c,
		})
		pc.lap(phaseOther)
		return res, err
	}
	return operand.Result{}, fmt.Errorf("eval: unknown library %s", lib)
}

// runFactor executes one repetition of a tiled factorization problem
// ("dpotrf", "dgetrf" or "dtrsm") through the task-graph planners, with
// the same plan-cache and phase-attribution flow as the flat routines.
func (r *Runner) runFactor(bd *simBundle, pc *phaseLap, p Problem, T int) (operand.Result, error) {
	rt, ctx := bd.rt, bd.ctx
	mat := func(rows, cols int, loc model.Loc) (*operand.Matrix, error) {
		if loc == model.OnHost {
			return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostLd: rows}, nil
		}
		return deviceMatrix(rt, p.Dtype, rows, cols)
	}
	switch p.Routine {
	case "dpotrf":
		a, err := mat(p.N, p.N, p.Locs[0])
		if err != nil {
			return operand.Result{}, err
		}
		opts := sched.CholeskyOpts{Dtype: p.Dtype, N: p.N, A: a, T: T}
		pc.lap(phaseOther)
		pl, err := r.planFor(planCell("cholesky", p, T), func() (*plan.Plan, error) {
			return ctx.PlanCholesky(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		pc.lap(phasePlan)
		pend, err := ctx.CholeskyEnqueueWith(pl, opts)
		return r.finishTimed(pc, rt, pend, err)
	case "dgetrf":
		a, err := mat(p.N, p.N, p.Locs[0])
		if err != nil {
			return operand.Result{}, err
		}
		opts := sched.LUOpts{Dtype: p.Dtype, N: p.N, A: a, T: T}
		pc.lap(phaseOther)
		pl, err := r.planFor(planCell("lu", p, T), func() (*plan.Plan, error) {
			return ctx.PlanLU(opts)
		})
		if err != nil {
			return operand.Result{}, err
		}
		pc.lap(phasePlan)
		pend, err := ctx.LUEnqueueWith(pl, opts)
		return r.finishTimed(pc, rt, pend, err)
	}
	// dtrsm: A is the M x M lower triangle, B the M x N right-hand side.
	a, err := mat(p.M, p.M, p.Locs[0])
	if err != nil {
		return operand.Result{}, err
	}
	b, err := mat(p.M, p.N, p.Locs[1])
	if err != nil {
		return operand.Result{}, err
	}
	opts := sched.TrsmOpts{Dtype: p.Dtype, M: p.M, N: p.N, Alpha: 1, A: a, B: b, T: T}
	pc.lap(phaseOther)
	pl, err := r.planFor(planCell("trsm", p, T), func() (*plan.Plan, error) {
		return ctx.PlanTrsm(opts)
	})
	if err != nil {
		return operand.Result{}, err
	}
	pc.lap(phasePlan)
	pend, err := ctx.TrsmEnqueueWith(pl, opts)
	return r.finishTimed(pc, rt, pend, err)
}

// Measure runs the library on the problem with tiling size T (ignored by
// BLASX and UnifiedMem) and returns the aggregated result over Reps
// repetitions: Seconds is the mean over repetitions, while the structural
// fields (T, Subkernels, BytesH2D, BytesD2H) are the per-repetition
// maxima — the repetitions differ only in noise seed, so these are
// normally identical across reps, and taking the maximum makes the
// aggregation explicit rather than silently reporting the last
// repetition's values.
//
// Results are cached by (testbed, lib, problem, T). Measure is safe for
// concurrent use, and concurrent calls for the same cell simulate it
// exactly once; errors are returned to every waiter but never cached.
//cocolint:hotpath
func (r *Runner) Measure(lib Lib, p Problem, T int) (operand.Result, error) {
	ck := cell(lib, p, T)
	s := r.shard(ck)
	s.mu.Lock()
	if res, ok := s.results[ck]; ok {
		s.mu.Unlock()
		r.hits.Add(1)
		return res, nil
	}
	if c, ok := s.inflight[ck]; ok {
		s.mu.Unlock()
		r.waits.Add(1)
		<-c.done
		return c.res, c.err
	}
	//lint:ignore hotpath cache miss simulates the cell (entered with s.mu held); each distinct cell pays it once per campaign
	return r.measureMiss(ck, s, lib, p, T)
}

// measureMiss is Measure's uncached path, entered with s.mu held: it
// registers the in-flight call, simulates the cell and publishes the
// result to the shard.
func (r *Runner) measureMiss(ck cellKey, s *cacheShard, lib Lib, p Problem, T int) (operand.Result, error) {
	c := &inflightCall{done: make(chan struct{})}
	s.inflight[ck] = c
	s.mu.Unlock()
	r.misses.Add(1)

	// The string key is rendered only on this miss path: it feeds the
	// per-repetition seed derivation, which must stay byte-identical.
	c.res, c.err = r.measureCell(r.key(lib, p, T), lib, p, T)

	s.mu.Lock()
	delete(s.inflight, ck)
	if c.err == nil {
		s.results[ck] = c.res
	}
	s.mu.Unlock()
	close(c.done)
	return c.res, c.err
}

// measureCell executes the repetitions of one uncached cell and aggregates
// them (see Measure for the semantics).
func (r *Runner) measureCell(key string, lib Lib, p Problem, T int) (operand.Result, error) {
	reps := r.Reps
	if reps < 1 {
		reps = 1
	}
	times := make([]float64, 0, reps)
	var res operand.Result
	for i := 0; i < reps; i++ {
		one, err := r.runOnce(lib, p, T, r.seedFor(key, i))
		if err != nil {
			return operand.Result{}, fmt.Errorf("eval: %s on %s (T=%d): %w", lib, p.Name(), T, err)
		}
		times = append(times, one.Seconds)
		if i == 0 {
			res = one
		} else {
			res.Subkernels = max(res.Subkernels, one.Subkernels)
			res.BytesH2D = max(res.BytesH2D, one.BytesH2D)
			res.BytesD2H = max(res.BytesD2H, one.BytesD2H)
		}
	}
	res.Seconds = stats.Mean(times)
	return res, nil
}

// MeasureCell names one cell of a campaign's measurement work-list.
type MeasureCell struct {
	Lib Lib
	P   Problem
	T   int
}

// MeasureBatch prefetches a work-list of cells through the pool, warming
// the cache so a subsequent sequential assembly pass hits every cell.
// Duplicate cells are deduplicated before fan-out. The first simulation
// error cancels the batch and is returned. A nil pool prefetches serially
// (the legacy execution order); the cached results are identical either
// way because every cell's noise seed derives from its key alone.
func (r *Runner) MeasureBatch(pool *parallel.Pool, cells []MeasureCell) error {
	seen := make(map[cellKey]bool, len(cells))
	uniq := make([]MeasureCell, 0, len(cells))
	for _, c := range cells {
		k := cell(c.Lib, c.P, c.T)
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, c)
		}
	}
	return parallel.ForEach(pool, uniq, func(_ int, c MeasureCell) error {
		_, err := r.Measure(c.Lib, c.P, c.T)
		return err
	})
}

// CacheStats reports measurement-cache activity, mirroring
// predictor.CacheStats: hits served from the completed-result cache,
// misses that ran a simulation, and waits deduplicated onto an in-flight
// simulation of the same cell by the singleflight layer.
func (r *Runner) CacheStats() (hits, misses, waits int) {
	return int(r.hits.Load()), int(r.misses.Load()), int(r.waits.Load())
}

// EventsProcessed returns the total number of discrete events the runner's
// simulations have fired so far (across all repetitions and cells). It is
// the denominator-independent throughput counter the campaign benchmark
// reports as events/sec.
func (r *Runner) EventsProcessed() int64 { return r.events.Load() }

// FullKernelTime measures the un-tiled full-problem kernel time on the
// device (the input the CSO comparator model requires).
func (r *Runner) FullKernelTime(p Problem) float64 {
	gpu := &r.TB.GPU
	switch p.Routine {
	case "daxpy":
		return kernelmodel.AxpyTime(gpu, kernelmodel.F64, p.N)
	case "dgemv":
		return kernelmodel.GemvTime(gpu, kernelmodel.F64, p.M, p.N)
	}
	return kernelmodel.GemmTime(gpu, p.Dtype, p.M, p.N, p.K)
}

// SweepTiles returns the measured-performance tile sweep grid for a
// problem: the benchmarked tile sizes filtered by the paper's feasibility
// rule, optionally coarsened (step multiplier) for fast runs.
func SweepTiles(p Problem, grid []int, coarsen int) []int {
	if coarsen < 1 {
		coarsen = 1
	}
	prm := p.Params()
	maxT := prm.MinDim()
	if prm.Level >= 2 {
		maxT = int64(float64(prm.MinDim()) / 1.5)
	}
	var out []int
	for i, T := range grid {
		if i%coarsen != 0 {
			continue
		}
		if int64(T) <= maxT {
			out = append(out, T)
		}
	}
	return out
}
