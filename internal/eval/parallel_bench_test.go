package eval

import (
	"fmt"
	"sync"
	"testing"

	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
)

// benchDeploy caches one Testbed I deployment for the benchmarks, so the
// serial/parallel comparison measures only the campaign itself.
var (
	benchOnce   sync.Once
	benchDeploy *microbench.Deployment
)

func benchDeployment(b *testing.B) *microbench.Deployment {
	b.Helper()
	benchOnce.Do(func() {
		cfg := microbench.DefaultConfig()
		benchDeploy = microbench.Run(machine.TestbedI(), cfg)
	})
	return benchDeploy
}

// BenchmarkParallelCampaign compares the fast Fig. 4 campaign at
// different fan-out widths. Each iteration builds a fresh campaign (cold
// cache) so the pool has real simulation work to distribute; on a
// multi-core host the workers=4 case should run at least ~2x faster than
// workers=1. On a single-core host the widths tie — the point of the
// engine is that the output is identical either way.
func BenchmarkParallelCampaign(b *testing.B) {
	dep := benchDeployment(b)
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c := NewCampaignWithDeployment(machine.TestbedI(), dep, true)
				c.SetParallel(workers)
				if _, err := c.Fig4(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
