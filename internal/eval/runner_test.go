package eval

import (
	"fmt"
	"sync"
	"testing"

	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/parallel"
)

// TestMeasureConcurrentSingleflight drives many concurrent Measure calls
// with overlapping keys through one Runner and checks that every caller
// sees the same result per key, that each distinct cell simulates exactly
// once (singleflight), and that the cache statistics account for every
// call. Run under -race this is also the Runner's data-race regression
// test.
func TestMeasureConcurrentSingleflight(t *testing.T) {
	r := NewRunner(machine.TestbedI())
	r.Reps = 1

	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 2048, N: 2048, K: 2048,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}, Tag: "square"}
	tiles := []int{512, 1024, 2048}

	const callers = 8
	results := make([][]operand.Result, callers)
	var wg sync.WaitGroup
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the same tile list from a different
			// offset so calls overlap on every key.
			for i := range tiles {
				T := tiles[(g+i)%len(tiles)]
				res, err := r.Measure(LibCoCoPeLia, p, T)
				if err != nil {
					t.Error(err)
					return
				}
				results[g] = append(results[g], res)
			}
		}(g)
	}
	wg.Wait()

	// Every goroutine must have seen the same result for the same key.
	byTile := map[int]operand.Result{}
	for g := 0; g < callers; g++ {
		for i := range tiles {
			T := tiles[(g+i)%len(tiles)]
			got := results[g][i]
			if want, ok := byTile[T]; ok && got != want {
				t.Errorf("T=%d: goroutine %d saw %+v, another saw %+v", T, g, got, want)
			}
			byTile[T] = got
		}
	}

	hits, misses, waits := r.CacheStats()
	total := callers * len(tiles)
	if misses != len(tiles) {
		t.Errorf("misses = %d, want %d (one simulation per distinct cell)", misses, len(tiles))
	}
	if hits+misses+waits != total {
		t.Errorf("hits+misses+waits = %d+%d+%d, want %d calls accounted for",
			hits, misses, waits, total)
	}

	// Serial re-measure must agree with the concurrent results: the noise
	// seed depends only on the cell key.
	fresh := NewRunner(machine.TestbedI())
	fresh.Reps = 1
	for T, want := range byTile {
		got, err := fresh.Measure(LibCoCoPeLia, p, T)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("T=%d: serial %+v != concurrent %+v", T, got, want)
		}
	}
}

// TestMeasureBatchDeduplicates prefetches a cell list containing
// duplicates and checks that the cache simulates each distinct cell once.
func TestMeasureBatchDeduplicates(t *testing.T) {
	r := NewRunner(machine.TestbedI())
	r.Reps = 1
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 2048, N: 2048, K: 2048,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}, Tag: "square"}
	cells := []MeasureCell{
		{LibCoCoPeLia, p, 1024},
		{LibCoCoPeLia, p, 1024},
		{LibCoCoPeLia, p, 2048},
		{LibCoCoPeLia, p, 1024},
	}
	if err := r.MeasureBatch(parallel.NewPool(4), cells); err != nil {
		t.Fatal(err)
	}
	_, misses, _ := r.CacheStats()
	if misses != 2 {
		t.Errorf("misses = %d, want 2 distinct cells", misses)
	}
}

// TestPlanMemoization checks that repetitions and libraries sharing an
// invocation shape replay one memoized plan — each distinct (routine
// variant, geometry, T, locations) key is planned once, every further
// repetition is a hit — without perturbing the measured results (each
// repetition still runs on its own seeded device).
func TestPlanMemoization(t *testing.T) {
	r := NewRunner(machine.TestbedI())
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 2048, N: 2048, K: 2048,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}, Tag: "square"}
	first, err := r.Measure(LibCoCoPeLia, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := r.PlanCacheStats()
	if misses != 1 || hits != r.Reps-1 {
		t.Errorf("plan cache after one cell: hits=%d misses=%d, want %d/1", hits, misses, r.Reps-1)
	}
	// The no-reuse library shares the geometry but is a distinct routine
	// variant, so it plans once more.
	if _, err := r.Measure(LibNoReuse, p, 1024); err != nil {
		t.Fatal(err)
	}
	hits, misses, _ = r.PlanCacheStats()
	if misses != 2 || hits != 2*(r.Reps-1) {
		t.Errorf("plan cache after two libs: hits=%d misses=%d, want %d/2", hits, misses, 2*(r.Reps-1))
	}
	// A second runner (planning from scratch) reproduces the result
	// exactly: memoization must not leak state between repetitions.
	fresh := NewRunner(machine.TestbedI())
	again, err := fresh.Measure(LibCoCoPeLia, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Errorf("memoized rerun %+v != first run %+v", again, first)
	}
}

// TestCampaignParallelDeterminism is the determinism regression test the
// parallel engine is built around: the same campaign rendered serially and
// with 8 workers must produce byte-identical text and CSV, because every
// cell's noise seed derives from the cell key, never from execution order.
func TestCampaignParallelDeterminism(t *testing.T) {
	dep := testbedI(t).Pred.Deployment()
	tb := machine.TestbedI()

	render := func(workers int) (string, string) {
		c := NewCampaignWithDeployment(tb, dep, true)
		c.SetParallel(workers)
		samples, err := c.Fig4()
		if err != nil {
			t.Fatal(err)
		}
		h, cells := ErrCSV(samples)
		return RenderErrSummary("fig4", samples), fmt.Sprint(h, cells)
	}

	serialText, serialCSV := render(1)
	parText, parCSV := render(8)
	if serialText != parText {
		t.Errorf("rendered text differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
			serialText, parText)
	}
	if serialCSV != parCSV {
		t.Error("CSV cells differ between serial and parallel runs")
	}
}
