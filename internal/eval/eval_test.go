package eval

import (
	"math"
	"strings"
	"sync"
	"testing"

	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/stats"
	"cocopelia/internal/trace"
)

// Campaigns are expensive to deploy; share them across the package tests.
var (
	onceI, onceII sync.Once
	campI, campII *Campaign
)

func testbedI(t *testing.T) *Campaign {
	t.Helper()
	onceI.Do(func() { campI = NewCampaign(machine.TestbedI(), true) })
	return campI
}

func testbedII(t *testing.T) *Campaign {
	t.Helper()
	onceII.Do(func() { campII = NewCampaign(machine.TestbedII(), true) })
	return campII
}

func TestProblemHelpers(t *testing.T) {
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 4096, N: 4096, K: 4096,
		Locs: []model.Loc{model.OnHost, model.OnDevice, model.OnHost}, Tag: "square"}
	if p.FullOffload() {
		t.Error("mixed locations should not be full offload")
	}
	if !strings.Contains(p.Name(), "HDH") {
		t.Errorf("name %q should encode locations", p.Name())
	}
	if p.Flops() != 2*4096.0*4096*4096 {
		t.Error("flops wrong")
	}
	prm := p.Params()
	if prm.Level != 3 || prm.Operands[1].Get {
		t.Error("params mapping wrong")
	}
	ax := Problem{Routine: "daxpy", Dtype: kernelmodel.F64, N: 1 << 20,
		Locs: []model.Loc{model.OnHost, model.OnHost}}
	if ax.Params().Level != 1 || ax.Flops() != 2*float64(1<<20) {
		t.Error("axpy problem mapping wrong")
	}
}

func TestValidationSetSizes(t *testing.T) {
	// Full (non-fast) sets must match the paper's counts.
	gemm := GemmValidationSet("dgemm", false)
	if len(gemm) != 4*7+4*6 {
		t.Errorf("gemm validation set has %d problems, want %d", len(gemm), 4*7+4*6)
	}
	daxpy := DaxpyValidationSet(false)
	if len(daxpy) != 15 {
		t.Errorf("daxpy validation set has %d problems, want 15", len(daxpy))
	}
	perf := GemmPerfSet("sgemm", false)
	if len(perf) != 25*7+4*6 {
		t.Errorf("gemm perf set has %d problems, want %d", len(perf), 25*7+4*6)
	}
	dperf := DaxpyPerfSet(false)
	if len(dperf) != 33 {
		t.Errorf("daxpy perf set has %d problems, want 33", len(dperf))
	}
}

func TestShapeRatiosBalanceFlops(t *testing.T) {
	for _, s := range []int{8192, 16384} {
		want := float64(s) * float64(s) * float64(s)
		for _, p := range GemmShapeRatios(s, false) {
			got := float64(p.M) * float64(p.N) * float64(p.K)
			if r := got / want; r < 0.8 || r > 1.25 {
				t.Errorf("shape %dx%dx%d volume off by %.2fx from %d^3", p.M, p.N, p.K, r, s)
			}
			if p.Tag == "fat-by-thin" && p.K >= p.M {
				t.Errorf("fat-by-thin should have K < M: %dx%dx%d", p.M, p.N, p.K)
			}
			if p.Tag == "thin-by-fat" && p.K <= p.M {
				t.Errorf("thin-by-fat should have K > M: %dx%dx%d", p.M, p.N, p.K)
			}
		}
	}
}

func TestMeasureCachesAndDeterminism(t *testing.T) {
	c := testbedI(t)
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 4096, N: 4096, K: 4096,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}, Tag: "square"}
	a, err := c.Runner.Measure(LibCoCoPeLia, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Runner.Measure(LibCoCoPeLia, p, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cached measurement differs")
	}
	if a.Seconds <= 0 {
		t.Error("non-positive measured time")
	}
}

func TestSweepTilesRespectsFeasibility(t *testing.T) {
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 4096, N: 4096, K: 4096,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}}
	grid := []int{256, 512, 1024, 2048, 2730, 2731, 4096}
	tiles := SweepTiles(p, grid, 1)
	for _, T := range tiles {
		if float64(T) > 4096/1.5 {
			t.Errorf("tile %d violates the feasibility rule", T)
		}
	}
	if len(tiles) != 5 {
		t.Errorf("tiles = %v", tiles)
	}
	coarse := SweepTiles(p, grid, 2)
	if len(coarse) >= len(tiles) {
		t.Error("coarsening should reduce the sweep")
	}
}

func TestFig1HasInteriorOptimum(t *testing.T) {
	c := testbedII(t)
	rows, err := c.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 4 {
		t.Fatalf("too few sweep points: %d", len(rows))
	}
	// The best tile must be neither the smallest nor the largest of the
	// sweep (the Fig. 1 break-point behaviour).
	bestIdx := 0
	for i, r := range rows {
		if r.Gflops > rows[bestIdx].Gflops {
			bestIdx = i
		}
	}
	if bestIdx == 0 || bestIdx == len(rows)-1 {
		t.Errorf("optimum at sweep edge (idx %d of %d): %+v", bestIdx, len(rows), rows[bestIdx])
	}
}

func TestFig2PhasesShiftTransferToCompute(t *testing.T) {
	c := testbedII(t)
	gantt, phases, err := c.Fig2(8192, 1024, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gantt, "exec") {
		t.Error("gantt missing compute lane")
	}
	if phases[0].Dominant != trace.LaneH2D {
		t.Errorf("run should start transfer-bound, got %s", phases[0].Dominant)
	}
	foundCompute := false
	for _, ph := range phases[len(phases)/2:] {
		if ph.Dominant == trace.LaneCompute {
			foundCompute = true
		}
	}
	if !foundCompute {
		t.Error("run should become compute-bound in its second half")
	}
}

func medians(samples []ErrSample, routine string, kind model.Kind) float64 {
	var v []float64
	for _, s := range samples {
		if s.Routine == routine && s.Model == kind {
			v = append(v, s.ErrPct)
		}
	}
	return stats.Median(v)
}

func TestFig4BTSBeatsCSO(t *testing.T) {
	c := testbedII(t)
	samples, err := c.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	for _, routine := range []string{"daxpy", "sgemm", "dgemm"} {
		cso := medians(samples, routine, model.CSO)
		bts := medians(samples, routine, model.BTS)
		if cso >= 0 {
			t.Errorf("%s: CSO should underpredict (median %.1f%%)", routine, cso)
		}
		if math.Abs(bts) >= math.Abs(cso) {
			t.Errorf("%s: |BTS median| (%.1f%%) should beat |CSO median| (%.1f%%)",
				routine, bts, cso)
		}
	}
	// daxpy predictions should be very accurate, as in the paper.
	if bts := medians(samples, "daxpy", model.BTS); math.Abs(bts) > 5 {
		t.Errorf("daxpy BTS median %.1f%% should be within a few percent", bts)
	}
}

func TestFig5DRBeatsCSO(t *testing.T) {
	c := testbedII(t)
	samples, err := c.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, routine := range []string{"sgemm", "dgemm"} {
		cso := medians(samples, routine, model.CSO)
		dr := medians(samples, routine, model.DR)
		if cso >= 0 {
			t.Errorf("%s: CSO should underpredict the reuse library (median %.1f%%)", routine, cso)
		}
		if math.Abs(dr) >= math.Abs(cso) {
			t.Errorf("%s: |DR median| (%.1f%%) should beat |CSO median| (%.1f%%)", routine, dr, cso)
		}
	}
}

func TestFig6DRNearOptimal(t *testing.T) {
	c := testbedII(t)
	rows, err := c.Fig6("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		dr := r.PerModel[model.DR]
		if dr.Gflops < 0.85*r.GflopsOpt {
			t.Errorf("%s: DR selection %.0f GF/s too far below optimum %.0f",
				r.Problem.Name(), dr.Gflops, r.GflopsOpt)
		}
		if r.GflopsOpt+1e-9 < r.GflopsStatic {
			t.Errorf("%s: optimum below static baseline", r.Problem.Name())
		}
	}
}

func TestFig7CoCoPeLiaWins(t *testing.T) {
	c := testbedII(t)
	rows, err := c.Fig7Gemm("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	t4 := Table4(c.Runner.TB.Name, "dgemm", rows)
	var full *Table4Row
	for i := range t4 {
		if t4[i].Offload == "full" {
			full = &t4[i]
		}
	}
	if full == nil {
		t.Fatal("no full-offload group")
	}
	if full.ImprovementPct <= 0 {
		t.Errorf("full-offload improvement %.1f%% should be positive", full.ImprovementPct)
	}
	if full.ImprovementPct > 80 {
		t.Errorf("full-offload improvement %.1f%% implausibly large", full.ImprovementPct)
	}
}

func TestFig7DaxpyBeatsUnified(t *testing.T) {
	c := testbedII(t)
	rows, err := c.Fig7Daxpy()
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, r := range rows {
		if r.Gflops[LibCoCoPeLia] > r.Gflops[LibUnified] {
			wins++
		}
	}
	if wins*2 < len(rows) {
		t.Errorf("CoCoPeLia daxpy wins only %d of %d cases vs unified memory", wins, len(rows))
	}
}

func TestRenderers(t *testing.T) {
	c := testbedII(t)
	f1, err := c.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderFig1(f1); !strings.Contains(s, "static T=4096") && !strings.Contains(s, "GFLOP/s") {
		t.Errorf("Fig1 rendering suspicious:\n%s", s)
	}
	samples, err := c.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderErrSummary("fig5", samples); !strings.Contains(s, "med") {
		t.Error("error summary missing stats")
	}
	rows, err := c.Fig6("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderFig6("dgemm", rows); !strings.Contains(s, "T_opt") {
		t.Error("Fig6 rendering missing columns")
	}
	f7, err := c.Fig7Gemm("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	if s := RenderFig7("tb", f7, []Lib{LibCoCoPeLia, LibCuBLASXt, LibBLASX}); !strings.Contains(s, "CoCoPeLia") {
		t.Error("Fig7 rendering missing library")
	}
	if s := RenderTable4(Table4("tb", "dgemm", f7)); !strings.Contains(s, "improvement") {
		t.Error("Table4 rendering missing header")
	}
}

func TestCSVWriters(t *testing.T) {
	c := testbedII(t)
	f1, err := c.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	h, rows := Fig1CSV(f1)
	if len(h) != 4 || len(rows) != len(f1) {
		t.Error("Fig1 CSV conversion wrong")
	}
	dir := t.TempDir()
	if err := WriteCSV(dir+"/f1.csv", h, rows); err != nil {
		t.Fatal(err)
	}
}

func TestTable4Aggregation(t *testing.T) {
	mk := func(full bool, coco, other float64) Fig7Row {
		locs := []model.Loc{model.OnHost, model.OnHost, model.OnHost}
		if !full {
			locs[0] = model.OnDevice
		}
		return Fig7Row{
			Problem: Problem{Routine: "dgemm", M: 1, N: 1, K: 1, Locs: locs},
			Gflops:  map[Lib]float64{LibCoCoPeLia: coco, LibCuBLASXt: other, LibBLASX: other / 2},
		}
	}
	rows := []Fig7Row{mk(true, 120, 100), mk(true, 130, 100), mk(false, 105, 100)}
	t4 := Table4("tb", "dgemm", rows)
	if len(t4) != 2 {
		t.Fatalf("want 2 groups, got %d", len(t4))
	}
	for _, r := range t4 {
		switch r.Offload {
		case "full":
			want := 100 * (math.Sqrt(1.2*1.3) - 1)
			if math.Abs(r.ImprovementPct-want) > 1e-9 {
				t.Errorf("full improvement %.2f, want %.2f", r.ImprovementPct, want)
			}
		case "partial":
			if math.Abs(r.ImprovementPct-5) > 1e-9 {
				t.Errorf("partial improvement %.2f, want 5", r.ImprovementPct)
			}
		}
	}
}

func TestXtTileCandidates(t *testing.T) {
	p := Problem{Routine: "dgemm", M: 16384, N: 16384, K: 16384,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}}
	c := xtTileCandidates(p)
	if len(c) != 10 {
		t.Errorf("want 10 candidates, got %v", c)
	}
	tiny := Problem{Routine: "dgemm", M: 300, N: 300, K: 300,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}}
	c = xtTileCandidates(tiny)
	if len(c) == 0 {
		t.Error("tiny problems still need a candidate")
	}
}

func TestFig4GemvExtension(t *testing.T) {
	// The level-2 extension: BTS must beat CSO on the gemv path too.
	c := testbedII(t)
	samples, err := c.Fig4Gemv()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	bts := medians(samples, "dgemv", model.BTS)
	cso := medians(samples, "dgemv", model.CSO)
	if math.Abs(bts) >= math.Abs(cso) {
		t.Errorf("gemv: |BTS median| (%.1f%%) should beat |CSO median| (%.1f%%)", bts, cso)
	}
	if math.Abs(bts) > 15 {
		t.Errorf("gemv BTS median %.1f%% implausibly large", bts)
	}
}
