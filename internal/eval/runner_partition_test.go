package eval

import (
	"runtime"
	"testing"

	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/parallel"
	"cocopelia/internal/plan"
)

// TestIntraCellIdentity pins the runner-level consequence of the
// partitioned engine's merge oracle: a measurement on the
// conservatively-partitioned engine is bitwise equal to the sequential
// reference — same Result fields, same processed-event count — because
// partitioning only changes how the queue is advanced, never what fires.
func TestIntraCellIdentity(t *testing.T) {
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 2048, N: 2048, K: 2048,
		Locs: []model.Loc{model.OnHost, model.OnDevice, model.OnHost}, Tag: "square"}

	run := func(intra bool, drainWorkers int) (operand.Result, int64) {
		r := NewRunner(machine.TestbedI())
		r.IntraCell = intra
		if drainWorkers > 1 {
			r.Drain = parallel.NewPool(drainWorkers)
		}
		res, err := r.Measure(LibCoCoPeLia, p, 512)
		if err != nil {
			t.Fatal(err)
		}
		return res, r.EventsProcessed()
	}

	seqRes, seqEvents := run(false, 0)
	for _, workers := range []int{0, 4} {
		partRes, partEvents := run(true, workers)
		if partRes != seqRes {
			t.Errorf("intra-cell result (drain workers %d) %+v != sequential %+v", workers, partRes, seqRes)
		}
		if partEvents != seqEvents {
			t.Errorf("intra-cell processed %d events (drain workers %d), sequential %d", partEvents, workers, seqEvents)
		}
	}
}

// TestPlanEvictions drives planFor directly with oversized synthetic plans
// so FIFO eviction triggers without simulating anything: once the op
// budget overflows, the oldest plan is dropped (and counted), a re-request
// of the dropped key misses again, and a stale queue record left by the
// eviction must not evict the rebuilt plan.
func TestPlanEvictions(t *testing.T) {
	r := NewRunner(machine.TestbedI())
	big := func() (*plan.Plan, error) {
		return &plan.Plan{Ops: make([]plan.Op, planOpsBudget/2+1)}, nil
	}
	key := func(m int) planKey { return planKey{routine: "synthetic", m: m} }

	for m := 0; m < 3; m++ {
		if _, err := r.planFor(key(m), big); err != nil {
			t.Fatal(err)
		}
	}
	// Three plans of budget/2+1 ops each: inserting the second evicts the
	// first, inserting the third evicts the second.
	hits, misses, evictions := r.PlanCacheStats()
	if hits != 0 || misses != 3 || evictions != 2 {
		t.Fatalf("after 3 oversized inserts: hits=%d misses=%d evictions=%d, want 0/3/2", hits, misses, evictions)
	}
	// Key 0 was evicted, so it misses and rebuilds; its stale queue record
	// is long gone, but key 2's record is still queued — rebuilding key 0
	// evicts key 2, not the fresh key 0.
	if _, err := r.planFor(key(0), big); err != nil {
		t.Fatal(err)
	}
	if _, err := r.planFor(key(0), func() (*plan.Plan, error) {
		t.Fatal("rebuilt plan was evicted by its own stale queue record")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	hits, misses, evictions = r.PlanCacheStats()
	if hits != 1 || misses != 4 || evictions != 3 {
		t.Errorf("after re-request of evicted key: hits=%d misses=%d evictions=%d, want 1/4/3", hits, misses, evictions)
	}
}

// TestNormalizeGemmCanonical covers the mirror fold itself: canonical
// orientations pass through untouched, non-canonical ones are mirrored
// (M/N and the A/B locations exchange), and the shared Locs backing slice
// of the input problem is never mutated.
func TestNormalizeGemmCanonical(t *testing.T) {
	h, d := model.OnHost, model.OnDevice
	mk := func(m, n int, la, lb model.Loc) Problem {
		return Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: m, N: n, K: 64,
			Locs: []model.Loc{la, lb, h}}
	}
	cases := []struct {
		name     string
		in, want Problem
	}{
		{"square symmetric is fixed", mk(64, 64, h, h), mk(64, 64, h, h)},
		{"m<n is canonical", mk(32, 64, d, h), mk(32, 64, d, h)},
		{"m>n mirrors", mk(64, 32, d, h), mk(32, 64, h, d)},
		{"square with locA>locB mirrors", mk(64, 64, d, h), mk(64, 64, h, d)},
		{"square with locA<locB is canonical", mk(64, 64, h, d), mk(64, 64, h, d)},
	}
	for _, c := range cases {
		locsBefore := append([]model.Loc(nil), c.in.Locs...)
		got := normalizeGemm(c.in)
		if got.M != c.want.M || got.N != c.want.N || got.K != c.want.K ||
			got.Locs[0] != c.want.Locs[0] || got.Locs[1] != c.want.Locs[1] || got.Locs[2] != c.want.Locs[2] {
			t.Errorf("%s: normalizeGemm = %dx%d %v, want %dx%d %v",
				c.name, got.M, got.N, got.Locs, c.want.M, c.want.N, c.want.Locs)
		}
		for i, l := range c.in.Locs {
			if l != locsBefore[i] {
				t.Fatalf("%s: normalizeGemm mutated the input Locs slice", c.name)
			}
		}
	}
	// Mirror keys coincide: both orientations produce the same planKey.
	a, b := normalizeGemm(mk(64, 32, d, h)), normalizeGemm(mk(32, 64, h, d))
	if planCell("gemm", a, 16) != planCell("gemm", b, 16) {
		t.Errorf("mirror orientations map to distinct plan keys: %+v vs %+v", a, b)
	}
}

// TestNormalizeKeysFoldsMirrors measures a rectangular cell and its
// transpose mirror on a NormalizeKeys runner: the pair shares one plan
// (one miss, 2*Reps-1 hits) and the structural result fields coincide by
// symmetry. A default runner keeps the orientations separate.
func TestNormalizeKeysFoldsMirrors(t *testing.T) {
	h, d := model.OnHost, model.OnDevice
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 2048, N: 1024, K: 1024,
		Locs: []model.Loc{d, h, h}, Tag: "mirror"}
	q := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 1024, N: 2048, K: 1024,
		Locs: []model.Loc{h, d, h}, Tag: "mirror"}

	r := NewRunner(machine.TestbedI())
	r.NormalizeKeys = true
	resP, err := r.Measure(LibCoCoPeLia, p, 512)
	if err != nil {
		t.Fatal(err)
	}
	resQ, err := r.Measure(LibCoCoPeLia, q, 512)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses, _ := r.PlanCacheStats()
	if misses != 1 || hits != 2*r.Reps-1 {
		t.Errorf("normalized mirror pair: hits=%d misses=%d, want %d/1", hits, misses, 2*r.Reps-1)
	}
	if resP.Subkernels != resQ.Subkernels || resP.BytesH2D != resQ.BytesH2D || resP.BytesD2H != resQ.BytesD2H {
		t.Errorf("mirror structural fields differ: %+v vs %+v", resP, resQ)
	}

	plain := NewRunner(machine.TestbedI())
	if _, err := plain.Measure(LibCoCoPeLia, p, 512); err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Measure(LibCoCoPeLia, q, 512); err != nil {
		t.Fatal(err)
	}
	if _, misses, _ := plain.PlanCacheStats(); misses != 2 {
		t.Errorf("default runner folded mirrors: misses=%d, want 2", misses)
	}
}

// TestSingleCoreEngineSelection pins the engine-selection rule: intra-cell
// mode only builds a partitioned engine when a multi-worker drain pool AND
// more than one core are actually available. With one staging worker, or on
// a single-core host, the conservative partitioning is pure bookkeeping
// overhead — the runner must fall back to the flat sequential engine
// outright (the fired sequence is identical either way; only the queue
// machinery differs).
func TestSingleCoreEngineSelection(t *testing.T) {
	r := NewRunner(machine.TestbedI())
	if r.newEngine().Partitioned() {
		t.Error("sequential runner built a partitioned engine")
	}
	r.IntraCell = true
	if r.newEngine().Partitioned() {
		t.Error("IntraCell runner without a drain pool built a partitioned engine")
	}
	r.Drain = parallel.NewPool(4)
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	if r.newEngine().Partitioned() {
		t.Error("IntraCell runner on a single-core host built a partitioned engine")
	}
	if runtime.GOMAXPROCS(old); old > 1 {
		if !r.newEngine().Partitioned() {
			t.Error("IntraCell runner with a drain pool on a multi-core host built a flat engine")
		}
		runtime.GOMAXPROCS(1)
	}
}

// BenchmarkMeasureSingleCoreIntraCell is the satellite regression benchmark
// for the single-core fallback: with GOMAXPROCS=1 the intra-cell
// configuration must match the flat configuration's cost (both select the
// sequential engine), instead of paying partitioned staging for a
// parallelism the host cannot deliver. Compare the two sub-benchmarks:
//
//	go test -bench MeasureSingleCore -benchtime 3x ./internal/eval/
func BenchmarkMeasureSingleCoreIntraCell(b *testing.B) {
	p := Problem{Routine: "dgemm", Dtype: kernelmodel.F64, M: 4096, N: 4096, K: 4096,
		Locs: []model.Loc{model.OnHost, model.OnDevice, model.OnHost}, Tag: "square"}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	for _, cfg := range []struct {
		name  string
		intra bool
	}{{"flat", false}, {"intraCell", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r := NewRunner(machine.TestbedI())
				r.IntraCell = cfg.intra
				r.Drain = parallel.NewPool(4)
				if _, err := r.Measure(LibCoCoPeLia, p, 1024); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
