package eval

import (
	"strings"
	"testing"

	"cocopelia/internal/model"
	"cocopelia/internal/stats"
)

func TestAblationReuse(t *testing.T) {
	c := testbedII(t)
	rows, err := c.AblationReuse("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.SpeedupPct <= 0 {
			t.Errorf("%s: reuse should speed things up, got %.1f%%", r.Problem.Name(), r.SpeedupPct)
		}
		if r.TrafficRatio <= 1 {
			t.Errorf("%s: no-reuse must move more data (ratio %.2f)", r.Problem.Name(), r.TrafficRatio)
		}
	}
	out := RenderAblationReuse("dgemm", rows)
	if !strings.Contains(out, "speedup") {
		t.Error("rendering missing header")
	}
}

func TestAblationContention(t *testing.T) {
	c := testbedII(t)
	rows, err := c.AblationContention("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SlowdownPct < 0 {
			t.Errorf("%s: contention cannot speed things up (%.1f%%)", r.Problem.Name(), r.SlowdownPct)
		}
	}
	// On Testbed II (sl 1.27/1.41) contention must cost something for the
	// transfer-heavy no-reuse pattern on at least one size.
	any := false
	for _, r := range rows {
		if r.SlowdownPct > 1 {
			any = true
		}
	}
	if !any {
		t.Error("expected measurable contention cost on Testbed II")
	}
	out := RenderAblationContention("dgemm", rows)
	if !strings.Contains(out, "no-bid") {
		t.Error("rendering missing column")
	}
}

func TestAblationModelVariantsOrdering(t *testing.T) {
	c := testbedII(t)
	samples, err := c.AblationModelVariants("dgemm")
	if err != nil {
		t.Fatal(err)
	}
	absMedian := func(kind model.Kind) float64 {
		var v []float64
		for _, s := range samples {
			if s.Model == kind {
				e := s.ErrPct
				if e < 0 {
					e = -e
				}
				v = append(v, e)
			}
		}
		return stats.Median(v)
	}
	// Each CoCoPeLia refinement must tighten the error against the reuse
	// library: DR beats its integer-tile ablation and the Werkhoven
	// family; the serial model is the worst of all.
	dr := absMedian(model.DR)
	if serial := absMedian(model.WerkSerial); serial <= dr {
		t.Errorf("serial model |median| %.1f should exceed DR %.1f", serial, dr)
	}
	if cso := absMedian(model.CSO); cso <= dr {
		t.Errorf("CSO |median| %.1f should exceed DR %.1f", cso, dr)
	}
	if integer := absMedian(model.AblDRInteger); integer < dr {
		t.Errorf("integer-tile ablation |median| %.1f should not beat DR %.1f", integer, dr)
	}
}

func TestAblationSlowdownFit(t *testing.T) {
	c := testbedII(t)
	out := c.AblationSlowdownFit()
	for _, want := range []string{"h2d", "d2h", "sl true", "GB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("fit report missing %q:\n%s", want, out)
		}
	}
}
