package eval

import (
	"encoding/csv"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"cocopelia/internal/model"
	"cocopelia/internal/stats"
)

// RenderFig1 renders the tile-size sweep as a text table with a bar chart,
// annotating the paper's static T=4096 reference.
func RenderFig1(rows []Fig1Row) string {
	var b strings.Builder
	maxG := 0.0
	for _, r := range rows {
		if r.Gflops > maxG {
			maxG = r.Gflops
		}
	}
	cur := ""
	for _, r := range rows {
		head := fmt.Sprintf("%s dgemm %dx%dx%d", r.Testbed, r.Size, r.Size, r.Size)
		if head != cur {
			fmt.Fprintf(&b, "\n%s (GFLOP/s vs tile size T)\n", head)
			cur = head
		}
		bar := strings.Repeat("*", int(40*r.Gflops/maxG))
		note := ""
		if r.T == Fig1StaticT {
			note = "  <- static T=4096"
		}
		fmt.Fprintf(&b, "  T=%5d %8.0f |%-40s|%s\n", r.T, r.Gflops, bar, note)
	}
	return b.String()
}

// violin renders a one-line text distribution of error percentages.
func violin(s stats.Summary) string {
	return fmt.Sprintf("min %7.1f  p5 %7.1f  q1 %7.1f  med %7.1f  q3 %7.1f  p95 %7.1f  max %7.1f  (n=%d)",
		s.Min, s.P5, s.Q1, s.Med, s.Q3, s.P95, s.Max, s.N)
}

// RenderErrSummary renders grouped model-error distributions in a stable
// order (the text form of the Fig. 4/5 violins).
func RenderErrSummary(title string, samples []ErrSample) string {
	groups := GroupErrors(samples)
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "%s — relative error %% (predicted vs measured)\n", title)
	for _, k := range keys {
		fmt.Fprintf(&b, "  %-14s %s\n", k, violin(groups[k]))
	}
	return b.String()
}

// RenderFig6 renders the tile-selection validation table.
func RenderFig6(routine string, rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s tile-size selection (GFLOP/s; measured at each policy's tile)\n", routine)
	fmt.Fprintf(&b, "%-42s %9s %14s", "problem", "static", "T_opt")
	for _, k := range model.Kinds() {
		fmt.Fprintf(&b, " %13s", k)
	}
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %9.0f %8.0f@%-5d", r.Problem.Name(), r.GflopsStatic, r.GflopsOpt, r.TOpt)
		for _, k := range model.Kinds() {
			c := r.PerModel[k]
			fmt.Fprintf(&b, " %7.0f@%-5d", c.Gflops, c.T)
		}
		b.WriteString("\n")
	}
	// Summary: median improvement over static per policy.
	fmt.Fprintf(&b, "median improvement over static baseline:")
	imp := func(get func(Fig6Row) float64) float64 {
		var v []float64
		for _, r := range rows {
			if r.GflopsStatic > 0 {
				v = append(v, 100*(get(r)/r.GflopsStatic-1))
			}
		}
		return stats.Median(v)
	}
	fmt.Fprintf(&b, "  T_opt %.1f%%", imp(func(r Fig6Row) float64 { return r.GflopsOpt }))
	for _, k := range model.Kinds() {
		k := k
		fmt.Fprintf(&b, "  %s %.1f%%", k, imp(func(r Fig6Row) float64 { return r.PerModel[k].Gflops }))
	}
	b.WriteString("\n")
	return b.String()
}

// RenderFig7 renders the end-to-end comparison table.
func RenderFig7(testbed string, rows []Fig7Row, libs []Lib) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s end-to-end performance (GFLOP/s)\n", testbed)
	fmt.Fprintf(&b, "%-44s", "problem")
	for _, lib := range libs {
		fmt.Fprintf(&b, " %11s", lib)
	}
	fmt.Fprintf(&b, " %8s %7s\n", "T_coco", "T_xt")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s", r.Problem.Name())
		for _, lib := range libs {
			fmt.Fprintf(&b, " %11.1f", r.Gflops[lib])
		}
		fmt.Fprintf(&b, " %8d %7d\n", r.TCoCo, r.TXt)
	}
	return b.String()
}

// RenderTable4 renders the improvement summary.
func RenderTable4(rows []Table4Row) string {
	var b strings.Builder
	b.WriteString("Table IV — CoCoPeLia mean improvement over the best competing library\n")
	fmt.Fprintf(&b, "%-12s %-8s %-8s %14s %10s\n", "testbed", "routine", "offload", "improvement", "problems")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-8s %-8s %13.1f%% %10d\n",
			r.Testbed, r.Routine, r.Offload, r.ImprovementPct, r.Problems)
	}
	return b.String()
}

// WriteCSV writes rows of stringable cells to path.
func WriteCSV(path string, header []string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

// Fig1CSV converts Fig. 1 rows to CSV cells.
func Fig1CSV(rows []Fig1Row) ([]string, [][]string) {
	header := []string{"testbed", "size", "T", "gflops"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Testbed, strconv.Itoa(r.Size), strconv.Itoa(r.T),
			fmt.Sprintf("%.1f", r.Gflops)})
	}
	return header, out
}

// ErrCSV converts error samples to CSV cells.
func ErrCSV(rows []ErrSample) ([]string, [][]string) {
	header := []string{"routine", "model", "problem", "T", "err_pct"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Routine, string(r.Model), r.Problem,
			strconv.Itoa(r.T), fmt.Sprintf("%.2f", r.ErrPct)})
	}
	return header, out
}

// Fig6CSV converts Fig. 6 rows to CSV cells.
func Fig6CSV(rows []Fig6Row) ([]string, [][]string) {
	header := []string{"problem", "gflops_static", "gflops_opt", "t_opt"}
	for _, k := range model.Kinds() {
		header = append(header, "gflops_"+string(k), "t_"+string(k))
	}
	var out [][]string
	for _, r := range rows {
		row := []string{r.Problem.Name(),
			fmt.Sprintf("%.1f", r.GflopsStatic),
			fmt.Sprintf("%.1f", r.GflopsOpt),
			strconv.Itoa(r.TOpt)}
		for _, k := range model.Kinds() {
			c := r.PerModel[k]
			row = append(row, fmt.Sprintf("%.1f", c.Gflops), strconv.Itoa(c.T))
		}
		out = append(out, row)
	}
	return header, out
}

// Fig7CSV converts Fig. 7 rows to CSV cells.
func Fig7CSV(rows []Fig7Row, libs []Lib) ([]string, [][]string) {
	header := []string{"problem", "full_offload"}
	for _, lib := range libs {
		header = append(header, "gflops_"+string(lib))
	}
	header = append(header, "t_coco", "t_xt")
	var out [][]string
	for _, r := range rows {
		row := []string{r.Problem.Name(), strconv.FormatBool(r.Problem.FullOffload())}
		for _, lib := range libs {
			row = append(row, fmt.Sprintf("%.1f", r.Gflops[lib]))
		}
		row = append(row, strconv.Itoa(r.TCoCo), strconv.Itoa(r.TXt))
		out = append(out, row)
	}
	return header, out
}
