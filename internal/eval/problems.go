// Package eval implements the paper's evaluation campaign (Section V):
// validation problem sets, measured runs of every library on the simulated
// testbeds, model-error computation, tile-selection validation, and the
// harnesses that regenerate every table and figure.
package eval

import (
	"fmt"

	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// Problem is one validation problem: a routine invocation with fixed
// dimensions and initial data locations.
type Problem struct {
	Routine string
	Dtype   kernelmodel.Dtype
	// M, N, K are the gemm dimensions; level-1 problems use only N.
	M, N, K int
	// Locs holds the operand locations (A, B, C for gemm; X, Y for axpy).
	Locs []model.Loc
	// Tag annotates the problem's family ("square", "fat-by-thin",
	// "thin-by-fat") for reporting.
	Tag string
}

// Name renders a compact problem identifier.
func (p Problem) Name() string {
	locs := ""
	for _, l := range p.Locs {
		if l == model.OnDevice {
			locs += "D"
		} else {
			locs += "H"
		}
	}
	if p.Routine == "daxpy" {
		return fmt.Sprintf("%s n=%dMi locs=%s", p.Routine, p.N>>20, locs)
	}
	return fmt.Sprintf("%s %dx%dx%d locs=%s %s", p.Routine, p.M, p.N, p.K, locs, p.Tag)
}

// FullOffload reports whether every operand starts on the host.
func (p Problem) FullOffload() bool {
	for _, l := range p.Locs {
		if l != model.OnHost {
			return false
		}
	}
	return true
}

// Params builds the Table I parameter struct for the problem.
func (p Problem) Params() model.Params {
	switch p.Routine {
	case "daxpy":
		return model.AxpyParams(p.Routine, p.Dtype.Size(), int64(p.N), p.Locs[0], p.Locs[1])
	case "dgemv":
		return model.GemvParams(p.Routine, p.Dtype.Size(), int64(p.M), int64(p.N),
			p.Locs[0], p.Locs[1], p.Locs[2])
	default:
		return model.GemmParams(p.Routine, p.Dtype.Size(),
			int64(p.M), int64(p.N), int64(p.K), p.Locs[0], p.Locs[1], p.Locs[2])
	}
}

// Flops returns the problem's floating-point operation count.
func (p Problem) Flops() float64 {
	switch p.Routine {
	case "daxpy":
		return 2 * float64(p.N)
	case "dgemv":
		return 2 * float64(p.M) * float64(p.N)
	case "dpotrf":
		n := float64(p.N)
		return n * n * n / 3
	case "dgetrf":
		n := float64(p.N)
		return 2 * n * n * n / 3
	case "dtrsm":
		return float64(p.M) * float64(p.M) * float64(p.N)
	}
	return 2 * float64(p.M) * float64(p.N) * float64(p.K)
}

// gemmDtype maps a gemm routine name to its dtype.
func gemmDtype(routine string) kernelmodel.Dtype {
	if routine == "sgemm" {
		return kernelmodel.F32
	}
	return kernelmodel.F64
}

// roundTo rounds n to the nearest positive multiple of q.
func roundTo(n float64, q int) int {
	v := (int(n) + q/2) / q * q
	if v < q {
		v = q
	}
	return v
}

// GemmSquareSizes returns the validation square sizes of Section V-B:
// M = N = K = {4, 8, 12, 16} * 1024. fast keeps the two extremes.
func GemmSquareSizes(fast bool) []int {
	if fast {
		return []int{4096, 16384}
	}
	return []int{4096, 8192, 12288, 16384}
}

// GemmShapeRatios builds the fat-by-thin (M = N > K) and thin-by-fat
// (M = N < K) validation shapes of Section V-B, with r in {3, 4, 5} and
// the FLOP volume matched to S^3. Dimensions are rounded to multiples of
// 256 so they live on the benchmark grids.
func GemmShapeRatios(s int, fast bool) []Problem {
	ratios := []float64{3, 4, 5}
	if fast {
		ratios = []float64{4}
	}
	var out []Problem
	for _, r := range ratios {
		// Fat-by-thin: K = M/r with M^2*K = S^3  =>  M = S * r^(1/3).
		m := roundTo(float64(s)*cbrt(r), 256)
		k := roundTo(float64(m)/r, 256)
		out = append(out, Problem{M: m, N: m, K: k, Tag: "fat-by-thin"})
		// Thin-by-fat: K = M*r with M^2*K = S^3  =>  M = S / r^(1/3).
		m = roundTo(float64(s)/cbrt(r), 256)
		k = roundTo(float64(m)*r, 256)
		out = append(out, Problem{M: m, N: m, K: k, Tag: "thin-by-fat"})
	}
	return out
}

func cbrt(x float64) float64 {
	// math.Cbrt without importing math twice; local helper for clarity.
	if x <= 0 {
		return 0
	}
	g := x
	for i := 0; i < 64; i++ {
		g = (2*g + x/(g*g)) / 3
	}
	return g
}

// GemmValidationSet returns the Section V-B validation problems for a gemm
// routine: square sizes across all seven location combinations, plus the
// fat/thin shape set with all data host-resident.
func GemmValidationSet(routine string, fast bool) []Problem {
	dt := gemmDtype(routine)
	var out []Problem
	combos := model.LocCombos(3)
	if fast {
		combos = [][]model.Loc{
			{model.OnHost, model.OnHost, model.OnHost},
			{model.OnDevice, model.OnHost, model.OnHost},
			{model.OnDevice, model.OnDevice, model.OnHost},
		}
	}
	for _, s := range GemmSquareSizes(fast) {
		for _, locs := range combos {
			out = append(out, Problem{
				Routine: routine, Dtype: dt, M: s, N: s, K: s,
				Locs: append([]model.Loc(nil), locs...), Tag: "square",
			})
		}
	}
	sizes := GemmSquareSizes(fast)
	for _, s := range sizes {
		for _, sp := range GemmShapeRatios(s, fast) {
			sp.Routine = routine
			sp.Dtype = dt
			sp.Locs = []model.Loc{model.OnHost, model.OnHost, model.OnHost}
			out = append(out, sp)
		}
	}
	return out
}

// DaxpyValidationSet returns the Section V-B daxpy problems: five large
// vector lengths across the three location combinations.
func DaxpyValidationSet(fast bool) []Problem {
	sizes := []int{8 << 20, 32 << 20, 64 << 20, 128 << 20, 256 << 20}
	if fast {
		sizes = []int{32 << 20, 256 << 20}
	}
	var out []Problem
	for _, n := range sizes {
		for _, locs := range model.LocCombos(2) {
			out = append(out, Problem{
				Routine: "daxpy", Dtype: kernelmodel.F64, N: n,
				Locs: append([]model.Loc(nil), locs...), Tag: "vector",
			})
		}
	}
	return out
}

// GemvValidationSet returns level-2 validation problems (an extension: the
// paper models level-2 BLAS with Eq. 4 — Section III-C — but does not
// evaluate it): square matrices across all seven location combinations.
func GemvValidationSet(fast bool) []Problem {
	sizes := []int{8192, 16384, 24576}
	if fast {
		sizes = []int{16384}
	}
	combos := model.LocCombos(3)
	if fast {
		combos = [][]model.Loc{
			{model.OnHost, model.OnHost, model.OnHost},
			{model.OnDevice, model.OnHost, model.OnHost},
		}
	}
	var out []Problem
	for _, s := range sizes {
		for _, locs := range combos {
			out = append(out, Problem{
				Routine: "dgemv", Dtype: kernelmodel.F64, M: s, N: s,
				Locs: append([]model.Loc(nil), locs...), Tag: "matvec",
			})
		}
	}
	return out
}

// FactorSet returns the tiled-factorization problem set: the three
// task-graph routines (unpivoted, lower-triangular variants) at square
// sizes with every operand host-resident — the full-offload case the
// factorization planners target.
func FactorSet(fast bool) []Problem {
	sizes := []int{4096, 8192}
	if fast {
		sizes = []int{4096}
	}
	var out []Problem
	for _, s := range sizes {
		out = append(out,
			Problem{Routine: "dpotrf", Dtype: kernelmodel.F64, M: s, N: s,
				Locs: []model.Loc{model.OnHost}, Tag: "factor"},
			Problem{Routine: "dgetrf", Dtype: kernelmodel.F64, M: s, N: s,
				Locs: []model.Loc{model.OnHost}, Tag: "factor"},
			Problem{Routine: "dtrsm", Dtype: kernelmodel.F64, M: s, N: s,
				Locs: []model.Loc{model.OnHost, model.OnHost}, Tag: "factor"},
		)
	}
	return out
}

// GemmPerfSet returns the extended end-to-end performance set of Section
// V-E: square sizes 4K..16K (step 512) across all seven location
// combinations, plus the shape-ratio problems.
func GemmPerfSet(routine string, fast bool) []Problem {
	dt := gemmDtype(routine)
	var sizes []int
	if fast {
		sizes = []int{4096, 8192, 16384}
	} else {
		for s := 4096; s <= 16384; s += 512 {
			sizes = append(sizes, s)
		}
	}
	combos := model.LocCombos(3)
	if fast {
		combos = [][]model.Loc{
			{model.OnHost, model.OnHost, model.OnHost},
			{model.OnDevice, model.OnHost, model.OnHost},
			{model.OnDevice, model.OnDevice, model.OnHost},
		}
	}
	var out []Problem
	for _, s := range sizes {
		for _, locs := range combos {
			out = append(out, Problem{
				Routine: routine, Dtype: dt, M: s, N: s, K: s,
				Locs: append([]model.Loc(nil), locs...), Tag: "square",
			})
		}
	}
	for _, s := range GemmSquareSizes(fast) {
		for _, sp := range GemmShapeRatios(s, fast) {
			sp.Routine = routine
			sp.Dtype = dt
			sp.Locs = []model.Loc{model.OnHost, model.OnHost, model.OnHost}
			out = append(out, sp)
		}
	}
	return out
}

// DaxpyPerfSet returns the extended daxpy performance set: eleven large
// vector lengths across the three location combinations.
func DaxpyPerfSet(fast bool) []Problem {
	var sizes []int
	if fast {
		sizes = []int{64 << 20, 256 << 20}
	} else {
		for i := 1; i <= 11; i++ {
			sizes = append(sizes, i*(32<<20))
		}
	}
	var out []Problem
	for _, n := range sizes {
		for _, locs := range model.LocCombos(2) {
			out = append(out, Problem{
				Routine: "daxpy", Dtype: kernelmodel.F64, N: n,
				Locs: append([]model.Loc(nil), locs...), Tag: "vector",
			})
		}
	}
	return out
}
