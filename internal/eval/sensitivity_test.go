package eval

import (
	"strings"
	"testing"
)

func TestSensitivityFutureMachines(t *testing.T) {
	c := testbedII(t)
	// x0.25: a transfer-starved machine; x1: today's Testbed II; x8: a
	// compute-bound future machine where the static tile's kernel
	// efficiency loss shows.
	rows, err := c.Sensitivity(8192, []float64{0.25, 1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The model selection must stay close to the per-machine optimum.
		if r.ModelLossPct > 10 {
			t.Errorf("bw x%g: model selection loses %.1f%% to the optimum", r.BWScale, r.ModelLossPct)
		}
		if r.StaticLossPct < -1e-9 || r.ModelLossPct < -1e-9 {
			t.Errorf("bw x%g: loss cannot be negative", r.BWScale)
		}
		if r.GflopsOpt < r.GflopsModel-1e-9 || r.GflopsOpt < r.GflopsStatic-1e-9 {
			t.Errorf("bw x%g: optimum below a policy", r.BWScale)
		}
	}
	// On at least one hypothetical machine the static policy must lose
	// noticeably more than the model policy (the paper's motivation).
	worstStatic, worstModel := 0.0, 0.0
	for _, r := range rows {
		if r.StaticLossPct > worstStatic {
			worstStatic = r.StaticLossPct
		}
		if r.ModelLossPct > worstModel {
			worstModel = r.ModelLossPct
		}
	}
	if worstStatic <= worstModel {
		t.Errorf("static policy (worst loss %.1f%%) should degrade more than the model (%.1f%%) across machines",
			worstStatic, worstModel)
	}
	out := RenderSensitivity("Testbed II", 8192, rows)
	if !strings.Contains(out, "B/FLOP") || !strings.Contains(out, "model loss") {
		t.Error("rendering missing columns")
	}
}
