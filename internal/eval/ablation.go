package eval

import (
	"fmt"
	"strings"

	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/stats"
)

// This file implements the ablation studies DESIGN.md calls out: each
// quantifies one design decision of the CoCoPeLia framework or of the
// simulated machine model.

// ablationProblem builds the full-offload square problem and clamped
// static tile the measured ablations share.
func ablationProblem(routine string, s int) (Problem, int) {
	p := Problem{
		Routine: routine, Dtype: gemmDtype(routine), M: s, N: s, K: s,
		Locs: []model.Loc{model.OnHost, model.OnHost, model.OnHost}, Tag: "square",
	}
	T := Fig6StaticT
	if s < T {
		T = s
	}
	return p, T
}

// AblationReuseRow quantifies the data-reuse design decision: the same
// scheduler and tile size with and without the tile cache.
type AblationReuseRow struct {
	Problem Problem
	T       int
	// SecondsReuse/SecondsNoReuse are the measured makespans.
	SecondsReuse, SecondsNoReuse float64
	// TrafficRatio is no-reuse h2d bytes over reuse h2d bytes.
	TrafficRatio float64
	// SpeedupPct is the percentage speedup reuse delivers.
	SpeedupPct float64
}

// AblationReuse measures the value of the tile cache (full data reuse) on
// full-offload square problems.
func (c *Campaign) AblationReuse(routine string) ([]AblationReuseRow, error) {
	// Enumerate the work-list (both libraries per size), prefetch, then
	// assemble rows from the warm cache.
	var cells []MeasureCell
	for _, s := range GemmSquareSizes(c.Fast) {
		p, T := ablationProblem(routine, s)
		cells = append(cells,
			MeasureCell{LibCoCoPeLia, p, T},
			MeasureCell{LibNoReuse, p, T})
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}
	var rows []AblationReuseRow
	for _, s := range GemmSquareSizes(c.Fast) {
		p, T := ablationProblem(routine, s)
		withReuse, err := c.Runner.Measure(LibCoCoPeLia, p, T)
		if err != nil {
			return nil, err
		}
		noReuse, err := c.Runner.Measure(LibNoReuse, p, T)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationReuseRow{
			Problem: p, T: T,
			SecondsReuse:   withReuse.Seconds,
			SecondsNoReuse: noReuse.Seconds,
			TrafficRatio:   float64(noReuse.BytesH2D) / float64(withReuse.BytesH2D),
			SpeedupPct:     100 * (noReuse.Seconds/withReuse.Seconds - 1),
		})
	}
	return rows, nil
}

// RenderAblationReuse renders the reuse ablation table.
func RenderAblationReuse(routine string, rows []AblationReuseRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation: data reuse (%s, full offload, T=%d)\n", routine, Fig6StaticT)
	fmt.Fprintf(&b, "%-44s %10s %12s %14s %10s\n", "problem", "reuse (s)", "no-reuse (s)", "traffic ratio", "speedup")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s %10.4f %12.4f %13.1fx %9.1f%%\n",
			r.Problem.Name(), r.SecondsReuse, r.SecondsNoReuse, r.TrafficRatio, r.SpeedupPct)
	}
	return b.String()
}

// AblationContentionRow quantifies the machine-level bidirectional
// contention and the model decision to capture it: the same problem run on
// the real testbed and on a hypothetical contention-free variant.
type AblationContentionRow struct {
	Problem Problem
	T       int
	// SecondsReal/SecondsNoBid are measured on the real and
	// contention-free machines.
	SecondsReal, SecondsNoBid float64
	// SlowdownPct is how much bidirectional contention costs end to end.
	SlowdownPct float64
}

// AblationContention measures how much the h2d/d2h contention costs by
// re-running on a clone of the testbed with both slowdown factors forced
// to 1.
func (c *Campaign) AblationContention(routine string) ([]AblationContentionRow, error) {
	noBidTB := *c.Runner.TB
	noBidTB.H2D.BidSlowdown = 1
	noBidTB.D2H.BidSlowdown = 1
	noBidTB.Name = c.Runner.TB.Name + " (no contention)"
	noBid := NewRunner(&noBidTB)
	noBid.Reps = c.Runner.Reps

	// Prefetch the same cell list on both machines (the contention-free
	// clone has its own runner and cache, keyed by its own testbed name).
	var cells []MeasureCell
	for _, s := range GemmSquareSizes(c.Fast) {
		p, T := ablationProblem(routine, s)
		cells = append(cells, MeasureCell{LibNoReuse, p, T})
	}
	if err := c.prefetch(cells); err != nil {
		return nil, err
	}
	if err := noBid.MeasureBatch(c.Pool, cells); err != nil {
		return nil, err
	}

	var rows []AblationContentionRow
	for _, s := range GemmSquareSizes(c.Fast) {
		p, T := ablationProblem(routine, s)
		real, err := c.Runner.Measure(LibNoReuse, p, T)
		if err != nil {
			return nil, err
		}
		free, err := noBid.Measure(LibNoReuse, p, T)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationContentionRow{
			Problem: p, T: T,
			SecondsReal:  real.Seconds,
			SecondsNoBid: free.Seconds,
			SlowdownPct:  100 * (real.Seconds/free.Seconds - 1),
		})
	}
	return rows, nil
}

// RenderAblationContention renders the contention ablation table.
func RenderAblationContention(routine string, rows []AblationContentionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ablation: bidirectional link contention (%s, no-reuse traffic)\n", routine)
	fmt.Fprintf(&b, "%-44s %10s %12s %12s\n", "problem", "real (s)", "no-bid (s)", "cost")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s %10.4f %12.4f %11.1f%%\n",
			r.Problem.Name(), r.SecondsReal, r.SecondsNoBid, r.SlowdownPct)
	}
	return b.String()
}

// AblationModelVariants computes error distributions of the extended model
// family (Werkhoven variants and CoCoPeLia ablations) against the measured
// CoCoPeLia library, quantifying what each modeling refinement buys.
func (c *Campaign) AblationModelVariants(routine string) ([]ErrSample, error) {
	kinds := []model.Kind{
		model.WerkSerial, model.Werk2Way, model.Werk1Engine, model.CSO,
		model.AblBTSUnidir, model.BTS, model.AblDRInteger, model.DR,
	}
	problems := GemmValidationSet(routine, c.Fast)
	if err := c.prefetch(c.sweepCells(problems, LibCoCoPeLia)); err != nil {
		return nil, err
	}
	var out []ErrSample
	for _, p := range problems {
		prm := p.Params()
		sm, err := c.Pred.SubModels(p.Routine, c.Runner.FullKernelTime(p))
		if err != nil {
			return nil, err
		}
		for _, T := range c.sweep(p) {
			meas, err := c.Runner.Measure(LibCoCoPeLia, p, T)
			if err != nil {
				return nil, err
			}
			for _, kind := range kinds {
				pred, err := model.PredictExtended(kind, &prm, sm, T)
				if err != nil {
					return nil, err
				}
				out = append(out, ErrSample{
					Routine: p.Routine, Model: kind, Problem: p.Name(), T: T,
					ErrPct: stats.RelErrPercent(pred, meas.Seconds),
				})
			}
		}
	}
	return out, nil
}

// AblationSlowdownFit checks that the deployment phase recovers the
// machine's true slowdown factors — the empirical foundation of the BTS
// model — and reports fitted-vs-truth for both directions.
func (c *Campaign) AblationSlowdownFit() string {
	dep := c.Pred.Deployment()
	tb := c.Runner.TB
	var b strings.Builder
	fmt.Fprintf(&b, "deployment fit vs machine ground truth (%s)\n", tb.Name)
	fmt.Fprintf(&b, "%-6s %14s %14s %14s %14s\n", "dir", "bw true", "bw fitted", "sl true", "sl fitted")
	for _, row := range []struct {
		name string
		dir  machine.LinkDir
	}{{"h2d", machine.H2D}, {"d2h", machine.D2H}} {
		truth := tb.Link(row.dir)
		fit := dep.Fit(row.dir)
		fmt.Fprintf(&b, "%-6s %11.2f GB/s %11.2f GB/s %14.2f %14.2f\n",
			row.name, truth.BandwidthBps/1e9, 1/fit.SecPerByte/1e9,
			truth.BidSlowdown, fit.Slowdown)
	}
	return b.String()
}
