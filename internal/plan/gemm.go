package plan

import (
	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// MaxNoReuseSlots bounds the in-flight staging depth of the no-reuse
// schedule; the effective depth shrinks for very large tiles so the bounded
// staging always fits device memory.
const MaxNoReuseSlots = 8

// GemmSpec parameterizes the level-3 planners. Transposes must be
// normalized (blas.NoTrans or blas.Trans); validation happens in the sched
// layer before planning.
type GemmSpec struct {
	Dtype            kernelmodel.Dtype
	TransA, TransB   byte
	M, N, K          int
	Alpha, Beta      float64
	LocA, LocB, LocC model.Loc
	T                int
	// DispatchOverheadS inserts a per-sub-kernel dispatch kernel on the
	// compute stream (comparator runtimes); zero disables it.
	DispatchOverheadS float64
	// BlockingWriteback makes the compute stream wait for each output
	// tile's write-back before the next tile's first kernel.
	BlockingWriteback bool
}

// tileState is the planner-side record of one cached device tile: where a
// kernel finds it (ref) and the fetch op it depends on (ready < 0 means
// already available — a device-resident operand or an unfetched slot).
type tileState struct {
	ref   Ref
	ready int32
	live  bool
}

// tileGrid is the planner-time analog of the scheduler's tile cache.
type tileGrid struct {
	tiles []tileState
	cols  int
}

func newTileGrid(rows, cols int) tileGrid {
	return tileGrid{tiles: make([]tileState, rows*cols), cols: cols}
}

func (g *tileGrid) at(ti, tj int) *tileState { return &g.tiles[ti*g.cols+tj] }

// BuildGemm emits the full-reuse tiled gemm schedule (the paper's Section
// IV-C scheduler): each input tile is fetched exactly once, output tiles
// accumulate over K on the compute stream and are written back once. Op
// emission order matches the imperative scheduler's stream-call order
// exactly, so replay is event-identical.
func BuildGemm(spec GemmSpec) *Plan {
	T := spec.T
	mt := ceil(spec.M, T)
	nt := ceil(spec.N, T)
	kt := ceil(spec.K, T)
	dt := spec.Dtype

	p := &Plan{
		Routine: "gemm", Dtype: dt,
		TransA: spec.TransA, TransB: spec.TransB,
		M: spec.M, N: spec.N, K: spec.K, T: T,
		Alpha: spec.Alpha, Beta: spec.Beta,
		DispatchS: spec.DispatchOverheadS,
		Locs:      []model.Loc{spec.LocA, spec.LocB, spec.LocC},
	}
	b := &builder{p: p}

	// Pre-size the arenas from the known schedule shape: appending tens of
	// thousands of ops through slice growth would dominate planning time.
	hostTiles := func(l model.Loc, n int) int {
		if l == model.OnHost {
			return n
		}
		return 0
	}
	aTiles := hostTiles(spec.LocA, mt*kt)
	bTiles := hostTiles(spec.LocB, kt*nt)
	cTiles := hostTiles(spec.LocC, mt*nt)
	kernels := mt * nt * kt
	kernelOps := kernels
	if spec.DispatchOverheadS > 0 {
		kernelOps *= 2
	}
	cFetches := 0
	if spec.Beta != 0 {
		cFetches = cTiles
	}
	slotsCap := aTiles + bTiles + cTiles
	p.Slots = make([]Slot, 0, slotsCap)
	p.Ops = make([]Op, 0, slotsCap+aTiles+bTiles+cFetches+kernelOps+cTiles)
	p.deps = make([]int32, 0, 4*kernels+cTiles)

	// Tile grids are keyed by STORED coordinates, following the transposes.
	aGridR, aGridC := mt, kt
	if spec.TransA == blas.Trans {
		aGridR, aGridC = kt, mt
	}
	bGridR, bGridC := kt, nt
	if spec.TransB == blas.Trans {
		bGridR, bGridC = nt, kt
	}
	aCache := newTileGrid(aGridR, aGridC)
	bCache := newTileGrid(bGridR, bGridC)
	cCache := newTileGrid(mt, nt)

	loc := func(arg int8) model.Loc { return p.Locs[arg] }

	// getTile mirrors the scheduler's fetch-once tile cache: device-resident
	// operands resolve to windows, host-resident ones get a slot (allocated
	// in first-use order) and, when fetch is set, a fetch op.
	getTile := func(arg int8, cache *tileGrid, ti, tj, rows, cols int, fetch bool) *tileState {
		t := cache.at(ti, tj)
		if t.live {
			return t
		}
		t.live = true
		if loc(arg) == model.OnDevice {
			t.ref = argRef(arg, int32(ti*T), int32(tj*T))
			t.ready = -1
			return t
		}
		slot := b.slot(dt, int64(rows)*int64(cols))
		b.alloc(slot)
		t.ref = slotRef(slot, int32(rows))
		t.ready = -1
		if fetch {
			o, id := b.emit()
			o.Kind, o.Slot = OpFetch, slot
			o.A = argRef(arg, int32(ti*T), int32(tj*T))
			o.M, o.N = int32(rows), int32(cols)
			t.ready = id
			p.BytesH2D += int64(rows) * int64(cols) * dt.Size()
		}
		return t
	}

	fetchC := spec.Beta != 0 // C contributes only when beta != 0
	pendingWB := int32(-1)   // blocking write-back awaiting the next kernel
	lastComp := int32(-1)

	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < mt; ti++ {
			rows := min(T, spec.M-ti*T)
			cols := min(T, spec.N-tj*T)
			cTile := getTile(2, &cCache, ti, tj, rows, cols, fetchC)
			for tk := 0; tk < kt; tk++ {
				inner := min(T, spec.K-tk*T)
				ai, aj, ar, ac := ti, tk, rows, inner
				if spec.TransA == blas.Trans {
					ai, aj, ar, ac = tk, ti, inner, rows
				}
				aTile := getTile(0, &aCache, ai, aj, ar, ac, true)
				bi, bj, br, bc := tk, tj, inner, cols
				if spec.TransB == blas.Trans {
					bi, bj, br, bc = tj, tk, cols, inner
				}
				bTile := getTile(1, &bCache, bi, bj, br, bc, true)
				// Compute-stream waits, in registration order: a pending
				// blocking write-back attaches first, then the input tiles,
				// then (first accumulation only) the output tile.
				b.dep(pendingWB)
				pendingWB = -1
				b.dep(aTile.ready)
				b.dep(bTile.ready)
				beta := 1.0
				if tk == 0 {
					b.dep(cTile.ready)
					beta = spec.Beta
					if !fetchC {
						beta = 0
					}
				}
				if spec.DispatchOverheadS > 0 {
					// The dispatch kernel drains the pending waits; the gemm
					// follows it in stream order with no explicit deps.
					d, _ := b.emit()
					d.Kind, d.Kernel = OpKernel, KDispatch
				}
				o, kid := b.emit()
				o.Kind, o.Kernel = OpKernel, KGemm
				o.TransA, o.TransB = spec.TransA, spec.TransB
				o.M, o.N, o.K = int32(rows), int32(cols), int32(inner)
				o.Beta = betaSel(beta)
				o.A, o.B, o.C = aTile.ref, bTile.ref, cTile.ref
				lastComp = kid
				p.Subkernels++
			}
			if spec.LocC == model.OnHost {
				b.dep(lastComp)
				o, wb := b.emit()
				o.Kind, o.Slot = OpWriteback, cTile.ref.Slot
				o.A = argRef(2, int32(ti*T), int32(tj*T))
				o.M, o.N = int32(rows), int32(cols)
				p.BytesD2H += int64(rows) * int64(cols) * dt.Size()
				if spec.BlockingWriteback {
					pendingWB = wb
				}
			}
		}
	}
	if pendingWB >= 0 {
		p.TailComp = append(p.TailComp, pendingWB)
	}
	return finish(p)
}

// BuildGemmNoReuse emits the stateless-sub-kernel schedule: every
// sub-kernel fetches fresh tiles of its host-resident operands through a
// bounded set of staging slot groups and writes its C tile back
// immediately. freeBytes is the device memory available for staging at
// plan time; it sizes the slot depth exactly as the imperative scheduler
// did, so the plan embeds the staging depth.
func BuildGemmNoReuse(spec GemmSpec, freeBytes int64) *Plan {
	T := spec.T
	mt := ceil(spec.M, T)
	nt := ceil(spec.N, T)
	kt := ceil(spec.K, T)
	dt := spec.Dtype

	p := &Plan{
		Routine: "gemm-noreuse", Dtype: dt,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: spec.M, N: spec.N, K: spec.K, T: T,
		Alpha: spec.Alpha, Beta: spec.Beta,
		Locs: []model.Loc{spec.LocA, spec.LocB, spec.LocC},
	}
	b := &builder{p: p}

	tileA := int64(min(T, spec.M)) * int64(min(T, spec.K))
	tileB := int64(min(T, spec.K)) * int64(min(T, spec.N))
	tileC := int64(min(T, spec.M)) * int64(min(T, spec.N))
	var groupBytes int64
	if spec.LocA == model.OnHost {
		groupBytes += tileA * dt.Size()
	}
	if spec.LocB == model.OnHost {
		groupBytes += tileB * dt.Size()
	}
	if spec.LocC == model.OnHost {
		groupBytes += tileC * dt.Size()
	}
	nSlots := MaxNoReuseSlots
	if groupBytes > 0 {
		if byMem := int(freeBytes / (groupBytes + groupBytes/8)); byMem < nSlots {
			nSlots = byMem
		}
		if nSlots < 2 {
			nSlots = 2
		}
	}

	// Pre-size the arenas (see BuildGemm): sk sub-kernels each emit up to
	// three fetches, the kernel and a write-back, with a handful of
	// dependency edges apiece.
	sk := mt * nt * kt
	hostOperands, fetchesPerSk := 0, 0
	if spec.LocA == model.OnHost {
		hostOperands, fetchesPerSk = hostOperands+1, fetchesPerSk+1
	}
	if spec.LocB == model.OnHost {
		hostOperands, fetchesPerSk = hostOperands+1, fetchesPerSk+1
	}
	cFetches, wbs := 0, 0
	if spec.LocC == model.OnHost {
		hostOperands++
		wbs = sk
		cFetches = sk
		if spec.Beta == 0 {
			cFetches -= mt * nt
		}
	}
	allocs := nSlots * hostOperands
	p.Slots = make([]Slot, 0, allocs)
	p.Ops = make([]Op, 0, allocs+fetchesPerSk*sk+cFetches+sk+wbs)
	p.deps = make([]int32, 0, 6*sk)

	type group struct {
		a, b, c                   int32
		lastKernel, lastWriteback int32
	}
	groups := make([]group, nSlots)
	for i := range groups {
		g := &groups[i]
		*g = group{a: -1, b: -1, c: -1, lastKernel: -1, lastWriteback: -1}
		if spec.LocA == model.OnHost {
			g.a = b.slot(dt, tileA)
			b.alloc(g.a)
		}
		if spec.LocB == model.OnHost {
			g.b = b.slot(dt, tileB)
			b.alloc(g.b)
		}
		if spec.LocC == model.OnHost {
			g.c = b.slot(dt, tileC)
			b.alloc(g.c)
		}
	}

	writebackOf := make([]int32, mt*nt)
	for i := range writebackOf {
		writebackOf[i] = -1
	}

	// pendingH2D carries h2d-stream waits (slot-reuse hazards) to the next
	// fetch op, exactly as Stream.WaitEvent accumulates waits until the
	// next enqueue on the stream.
	var pendingH2D []int32
	lastH2D := int32(-1)

	idx := 0
	for tk := 0; tk < kt; tk++ {
		inner := min(T, spec.K-tk*T)
		for tj := 0; tj < nt; tj++ {
			for ti := 0; ti < mt; ti++ {
				rows := min(T, spec.M-ti*T)
				cols := min(T, spec.N-tj*T)
				g := &groups[idx%nSlots]
				idx++
				if g.lastKernel >= 0 {
					pendingH2D = append(pendingH2D, g.lastKernel)
				}
				if g.lastWriteback >= 0 {
					pendingH2D = append(pendingH2D, g.lastWriteback)
				}

				emitFetch := func(arg int8, slot, row, col, r, cl int) int32 {
					for _, d := range pendingH2D {
						b.dep(d)
					}
					pendingH2D = pendingH2D[:0]
					o, id := b.emit()
					o.Kind, o.Slot = OpFetch, int32(slot)
					o.A = argRef(arg, int32(row), int32(col))
					o.M, o.N = int32(r), int32(cl)
					p.BytesH2D += int64(r) * int64(cl) * dt.Size()
					lastH2D = id
					return id
				}

				aRef := argRef(0, int32(ti*T), int32(tk*T))
				if spec.LocA == model.OnHost {
					emitFetch(0, int(g.a), ti*T, tk*T, rows, inner)
					aRef = slotRef(g.a, int32(rows))
				}
				bRef := argRef(1, int32(tk*T), int32(tj*T))
				if spec.LocB == model.OnHost {
					emitFetch(1, int(g.b), tk*T, tj*T, inner, cols)
					bRef = slotRef(g.b, int32(inner))
				}
				beta := 1.0
				cRef := argRef(2, int32(ti*T), int32(tj*T))
				if spec.LocC == model.OnHost {
					cRef = slotRef(g.c, int32(rows))
					fetch := tk > 0 || spec.Beta != 0
					if fetch {
						// The previous write-back of this C tile must land in
						// host memory before the re-read: it joins the
						// pending waits after the slot-reuse hazards.
						if wb := writebackOf[ti*nt+tj]; wb >= 0 {
							pendingH2D = append(pendingH2D, wb)
						}
						emitFetch(2, int(g.c), ti*T, tj*T, rows, cols)
						if tk == 0 {
							beta = spec.Beta
						}
					} else {
						beta = 0
					}
				} else if tk == 0 {
					beta = spec.Beta
				}

				// The kernel waits on the h2d stream's tail (everything
				// fetched so far), mirroring comp.WaitEvent(h2d.Record()).
				b.dep(lastH2D)
				o, kid := b.emit()
				o.Kind, o.Kernel = OpKernel, KGemm
				o.TransA, o.TransB = blas.NoTrans, blas.NoTrans
				o.M, o.N, o.K = int32(rows), int32(cols), int32(inner)
				o.Beta = betaSel(beta)
				o.A, o.B, o.C = aRef, bRef, cRef
				p.Subkernels++
				g.lastKernel = kid

				if spec.LocC == model.OnHost {
					b.dep(kid)
					o, wb := b.emit()
					o.Kind, o.Slot = OpWriteback, g.c
					o.A = argRef(2, int32(ti*T), int32(tj*T))
					o.M, o.N = int32(rows), int32(cols)
					p.BytesD2H += int64(rows) * int64(cols) * dt.Size()
					g.lastWriteback = wb
					writebackOf[ti*nt+tj] = wb
				}
			}
		}
	}
	p.TailH2D = append(p.TailH2D, pendingH2D...)
	return finish(p)
}

func ceil(a, b int) int { return (a + b - 1) / b }
