package plan

import (
	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// MaxNoReuseSlots bounds the in-flight staging depth of the no-reuse
// schedule; the effective depth shrinks for very large tiles so the bounded
// staging always fits device memory.
const MaxNoReuseSlots = 8

// GemmSpec parameterizes the level-3 planners. Transposes must be
// normalized (blas.NoTrans or blas.Trans); validation happens in the sched
// layer before planning.
type GemmSpec struct {
	Dtype            kernelmodel.Dtype
	TransA, TransB   byte
	M, N, K          int
	Alpha, Beta      float64
	LocA, LocB, LocC model.Loc
	T                int
	// DispatchOverheadS inserts a per-sub-kernel dispatch kernel on the
	// compute stream (comparator runtimes); zero disables it.
	DispatchOverheadS float64
	// BlockingWriteback makes the compute stream wait for each output
	// tile's write-back before the next tile's first kernel.
	BlockingWriteback bool
}

// tileState is the planner-side record of one cached device tile: where a
// kernel finds it (ref) and the fetch op it depends on (ready < 0 means
// already available — a device-resident operand or an unfetched slot).
type tileState struct {
	ref   Ref
	ready OpID
	live  bool
}

// tileGrid is the planner-time analog of the scheduler's tile cache.
type tileGrid struct {
	tiles []tileState
	cols  int
}

func newTileGrid(rows, cols int) tileGrid {
	return tileGrid{tiles: make([]tileState, rows*cols), cols: cols}
}

func (g *tileGrid) at(ti, tj int) *tileState { return &g.tiles[ti*g.cols+tj] }

// BuildGemm emits the full-reuse tiled gemm schedule (the paper's Section
// IV-C scheduler) as a thin client of the Graph builder: each input tile is
// fetched exactly once, output tiles accumulate over K on the compute
// stream and are written back once. Op emission order matches the
// imperative scheduler's stream-call order exactly, so replay is
// event-identical.
func BuildGemm(spec GemmSpec) *Plan {
	T := spec.T
	mt := ceil(spec.M, T)
	nt := ceil(spec.N, T)
	kt := ceil(spec.K, T)
	dt := spec.Dtype

	p := &Plan{
		Routine: "gemm", Dtype: dt,
		TransA: spec.TransA, TransB: spec.TransB,
		M: spec.M, N: spec.N, K: spec.K, T: T,
		Alpha: spec.Alpha, Beta: spec.Beta,
		DispatchS: spec.DispatchOverheadS,
		Locs:      []model.Loc{spec.LocA, spec.LocB, spec.LocC},
	}
	g := NewGraph(p)

	// Pre-size the arenas from the known schedule shape.
	hostTiles := func(l model.Loc, n int) int {
		if l == model.OnHost {
			return n
		}
		return 0
	}
	aTiles := hostTiles(spec.LocA, mt*kt)
	bTiles := hostTiles(spec.LocB, kt*nt)
	cTiles := hostTiles(spec.LocC, mt*nt)
	kernels := mt * nt * kt
	kernelOps := kernels
	if spec.DispatchOverheadS > 0 {
		kernelOps *= 2
	}
	cFetches := 0
	if spec.Beta != 0 {
		cFetches = cTiles
	}
	slotsCap := aTiles + bTiles + cTiles
	g.Grow(slotsCap, slotsCap+aTiles+bTiles+cFetches+kernelOps+cTiles, 4*kernels+cTiles)

	// Tile grids are keyed by STORED coordinates, following the transposes.
	aGridR, aGridC := mt, kt
	if spec.TransA == blas.Trans {
		aGridR, aGridC = kt, mt
	}
	bGridR, bGridC := kt, nt
	if spec.TransB == blas.Trans {
		bGridR, bGridC = nt, kt
	}
	aCache := newTileGrid(aGridR, aGridC)
	bCache := newTileGrid(bGridR, bGridC)
	cCache := newTileGrid(mt, nt)

	loc := func(arg int8) model.Loc { return p.Locs[arg] }

	// getTile mirrors the scheduler's fetch-once tile cache: device-resident
	// operands resolve to windows, host-resident ones get a slot (allocated
	// in first-use order) and, when fetch is set, a fetch op.
	getTile := func(arg int8, cache *tileGrid, ti, tj, rows, cols int, fetch bool) *tileState {
		t := cache.at(ti, tj)
		if t.live {
			return t
		}
		t.live = true
		if loc(arg) == model.OnDevice {
			t.ref = ArgRef(arg, int32(ti*T), int32(tj*T))
			t.ready = NoOp
			return t
		}
		slot := g.Slot(dt, int64(rows)*int64(cols))
		g.Alloc(slot)
		t.ref = SlotRef(slot, int32(rows))
		t.ready = NoOp
		if fetch {
			t.ready = g.Fetch(arg, int32(ti*T), int32(tj*T), int32(rows), int32(cols), slot)
		}
		return t
	}

	fetchC := spec.Beta != 0 // C contributes only when beta != 0
	pendingWB := NoOp        // blocking write-back awaiting the next kernel
	lastComp := NoOp
	var depBuf []OpID // reused wait list, in registration order

	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < mt; ti++ {
			rows := min(T, spec.M-ti*T)
			cols := min(T, spec.N-tj*T)
			cTile := getTile(2, &cCache, ti, tj, rows, cols, fetchC)
			for tk := 0; tk < kt; tk++ {
				inner := min(T, spec.K-tk*T)
				ai, aj, ar, ac := ti, tk, rows, inner
				if spec.TransA == blas.Trans {
					ai, aj, ar, ac = tk, ti, inner, rows
				}
				aTile := getTile(0, &aCache, ai, aj, ar, ac, true)
				bi, bj, br, bc := tk, tj, inner, cols
				if spec.TransB == blas.Trans {
					bi, bj, br, bc = tj, tk, cols, inner
				}
				bTile := getTile(1, &bCache, bi, bj, br, bc, true)
				// Compute-stream waits, in registration order: a pending
				// blocking write-back attaches first, then the input tiles,
				// then (first accumulation only) the output tile.
				depBuf = append(depBuf[:0], pendingWB, aTile.ready, bTile.ready)
				pendingWB = NoOp
				beta := 1.0
				if tk == 0 {
					depBuf = append(depBuf, cTile.ready)
					beta = spec.Beta
					if !fetchC {
						beta = 0
					}
				}
				if spec.DispatchOverheadS > 0 {
					// The dispatch kernel drains the pending waits; the gemm
					// follows it in stream order with no explicit deps.
					g.Dispatch(depBuf...)
					depBuf = depBuf[:0]
				}
				lastComp = g.Gemm(spec.TransA, spec.TransB,
					int32(rows), int32(cols), int32(inner),
					AlphaPlan, betaSel(beta),
					aTile.ref, bTile.ref, cTile.ref, depBuf...)
			}
			if spec.LocC == model.OnHost {
				wb := g.Writeback(cTile.ref.Slot, 2, int32(ti*T), int32(tj*T),
					int32(rows), int32(cols), lastComp)
				if spec.BlockingWriteback {
					pendingWB = wb
				}
			}
		}
	}
	g.TailComp(pendingWB)
	return g.Finish()
}

// BuildGemmNoReuse emits the stateless-sub-kernel schedule: every
// sub-kernel fetches fresh tiles of its host-resident operands through a
// bounded set of staging slot groups and writes its C tile back
// immediately. freeBytes is the device memory available for staging at
// plan time; it sizes the slot depth exactly as the imperative scheduler
// did, so the plan embeds the staging depth.
func BuildGemmNoReuse(spec GemmSpec, freeBytes int64) *Plan {
	T := spec.T
	mt := ceil(spec.M, T)
	nt := ceil(spec.N, T)
	kt := ceil(spec.K, T)
	dt := spec.Dtype

	p := &Plan{
		Routine: "gemm-noreuse", Dtype: dt,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: spec.M, N: spec.N, K: spec.K, T: T,
		Alpha: spec.Alpha, Beta: spec.Beta,
		Locs: []model.Loc{spec.LocA, spec.LocB, spec.LocC},
	}
	g := NewGraph(p)

	tileA := int64(min(T, spec.M)) * int64(min(T, spec.K))
	tileB := int64(min(T, spec.K)) * int64(min(T, spec.N))
	tileC := int64(min(T, spec.M)) * int64(min(T, spec.N))
	var groupBytes int64
	if spec.LocA == model.OnHost {
		groupBytes += tileA * dt.Size()
	}
	if spec.LocB == model.OnHost {
		groupBytes += tileB * dt.Size()
	}
	if spec.LocC == model.OnHost {
		groupBytes += tileC * dt.Size()
	}
	nSlots := MaxNoReuseSlots
	if groupBytes > 0 {
		if byMem := int(freeBytes / (groupBytes + groupBytes/8)); byMem < nSlots {
			nSlots = byMem
		}
		if nSlots < 2 {
			nSlots = 2
		}
	}

	// Pre-size the arenas (see BuildGemm): sk sub-kernels each emit up to
	// three fetches, the kernel and a write-back, with a handful of
	// dependency edges apiece.
	sk := mt * nt * kt
	hostOperands, fetchesPerSk := 0, 0
	if spec.LocA == model.OnHost {
		hostOperands, fetchesPerSk = hostOperands+1, fetchesPerSk+1
	}
	if spec.LocB == model.OnHost {
		hostOperands, fetchesPerSk = hostOperands+1, fetchesPerSk+1
	}
	cFetches, wbs := 0, 0
	if spec.LocC == model.OnHost {
		hostOperands++
		wbs = sk
		cFetches = sk
		if spec.Beta == 0 {
			cFetches -= mt * nt
		}
	}
	allocs := nSlots * hostOperands
	g.Grow(allocs, allocs+fetchesPerSk*sk+cFetches+sk+wbs, 6*sk)

	type group struct {
		a, b, c                   int32
		lastKernel, lastWriteback OpID
	}
	groups := make([]group, nSlots)
	for i := range groups {
		gr := &groups[i]
		*gr = group{a: -1, b: -1, c: -1, lastKernel: NoOp, lastWriteback: NoOp}
		if spec.LocA == model.OnHost {
			gr.a = g.Slot(dt, tileA)
			g.Alloc(gr.a)
		}
		if spec.LocB == model.OnHost {
			gr.b = g.Slot(dt, tileB)
			g.Alloc(gr.b)
		}
		if spec.LocC == model.OnHost {
			gr.c = g.Slot(dt, tileC)
			g.Alloc(gr.c)
		}
	}

	writebackOf := make([]OpID, mt*nt)
	for i := range writebackOf {
		writebackOf[i] = NoOp
	}

	// pendingH2D carries h2d-stream waits (slot-reuse hazards) to the next
	// fetch op, exactly as Stream.WaitEvent accumulates waits until the
	// next enqueue on the stream.
	var pendingH2D []OpID
	lastH2D := NoOp

	idx := 0
	for tk := 0; tk < kt; tk++ {
		inner := min(T, spec.K-tk*T)
		for tj := 0; tj < nt; tj++ {
			for ti := 0; ti < mt; ti++ {
				rows := min(T, spec.M-ti*T)
				cols := min(T, spec.N-tj*T)
				gr := &groups[idx%nSlots]
				idx++
				if gr.lastKernel >= 0 {
					pendingH2D = append(pendingH2D, gr.lastKernel)
				}
				if gr.lastWriteback >= 0 {
					pendingH2D = append(pendingH2D, gr.lastWriteback)
				}

				emitFetch := func(arg int8, slot, row, col, r, cl int) {
					lastH2D = g.Fetch(arg, int32(row), int32(col),
						int32(r), int32(cl), int32(slot), pendingH2D...)
					pendingH2D = pendingH2D[:0]
				}

				aRef := ArgRef(0, int32(ti*T), int32(tk*T))
				if spec.LocA == model.OnHost {
					emitFetch(0, int(gr.a), ti*T, tk*T, rows, inner)
					aRef = SlotRef(gr.a, int32(rows))
				}
				bRef := ArgRef(1, int32(tk*T), int32(tj*T))
				if spec.LocB == model.OnHost {
					emitFetch(1, int(gr.b), tk*T, tj*T, inner, cols)
					bRef = SlotRef(gr.b, int32(inner))
				}
				beta := 1.0
				cRef := ArgRef(2, int32(ti*T), int32(tj*T))
				if spec.LocC == model.OnHost {
					cRef = SlotRef(gr.c, int32(rows))
					fetch := tk > 0 || spec.Beta != 0
					if fetch {
						// The previous write-back of this C tile must land in
						// host memory before the re-read: it joins the
						// pending waits after the slot-reuse hazards.
						if wb := writebackOf[ti*nt+tj]; wb >= 0 {
							pendingH2D = append(pendingH2D, wb)
						}
						emitFetch(2, int(gr.c), ti*T, tj*T, rows, cols)
						if tk == 0 {
							beta = spec.Beta
						}
					} else {
						beta = 0
					}
				} else if tk == 0 {
					beta = spec.Beta
				}

				// The kernel waits on the h2d stream's tail (everything
				// fetched so far), mirroring comp.WaitEvent(h2d.Record()).
				kid := g.Gemm(blas.NoTrans, blas.NoTrans,
					int32(rows), int32(cols), int32(inner),
					AlphaPlan, betaSel(beta), aRef, bRef, cRef, lastH2D)
				gr.lastKernel = kid

				if spec.LocC == model.OnHost {
					wb := g.Writeback(gr.c, 2, int32(ti*T), int32(tj*T),
						int32(rows), int32(cols), kid)
					gr.lastWriteback = wb
					writebackOf[ti*nt+tj] = wb
				}
			}
		}
	}
	for _, id := range pendingH2D {
		g.TailH2D(id)
	}
	return g.Finish()
}

func ceil(a, b int) int { return (a + b - 1) / b }
