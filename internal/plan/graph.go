package plan

import "cocopelia/internal/kernelmodel"

// OpID identifies one emitted op inside a graph under construction.
// Negative ids are legal wherever a dependency is expected and mean
// "already satisfied" (a device-resident operand, an unfetched slot);
// they are skipped, mirroring WaitEvent's no-op on completed events.
type OpID = int32

// NoOp is the absent-dependency sentinel.
const NoOp OpID = -1

// Graph builds a plan as an explicit tile-task DAG: any op may depend on
// any earlier op's completion event, including kernel→kernel edges, and one
// graph may mix kernel kinds (the factorization planners emit POTRF, TRSM,
// SYRK and GEMM tile ops into a single plan). It is the general surface the
// routine-specific planners are thin clients of.
//
// The builder preserves every property the downstream layers rely on:
//
//   - ops and dependency edges live in deterministic arena-allocated lists
//     (emission order is the IR);
//   - scalars are keyed by selector (AlphaSel/BetaSel over Float64bits), so
//     replay reproduces the planner's floats exactly;
//   - Fetch/Writeback maintain the plan's H2D/D2H volume annotations and
//     kernel emitters count Subkernels, exactly as the flat builders did;
//   - the finished plan compiles to a Tape and replays with
//     event-order-preserving execution, so sim results stay bit-identical.
//
// Tile forwarding is expressed, not special-cased: a kernel that consumes
// another kernel's output tile references the same staging slot (or device
// window) and lists the producer kernel as a dependency — no writeback and
// refetch round-trip appears between them, and the executor turns the edge
// into a stream wait on the producer's completion event.
type Graph struct {
	b builder
}

// NewGraph starts building ops into p. The caller fills the plan header
// (routine, geometry, scalars, locations) before or after building; Finish
// seals the dependency-event table.
func NewGraph(p *Plan) *Graph { return &Graph{b: builder{p: p}} }

// Plan returns the plan under construction (header fields may be adjusted
// until Finish).
func (g *Graph) Plan() *Plan { return g.b.p }

// Grow pre-sizes the op, dependency and slot arenas for a planner that
// knows its schedule shape; appending tens of thousands of ops through
// slice growth would otherwise dominate planning time.
func (g *Graph) Grow(slots, ops, deps int) {
	p := g.b.p
	if cap(p.Slots) < slots {
		p.Slots = append(make([]Slot, 0, slots), p.Slots...)
	}
	if cap(p.Ops) < ops {
		p.Ops = append(make([]Op, 0, ops), p.Ops...)
	}
	if cap(p.deps) < deps {
		p.deps = append(make([]int32, 0, deps), p.deps...)
	}
}

// SlotRef builds a staging-slot operand reference; ld is the slot's leading
// dimension (0 for vectors).
func SlotRef(slot, ld int32) Ref { return slotRef(slot, ld) }

// ArgRef builds a bound-operand window reference at element coordinates
// (row, col).
func ArgRef(arg int8, row, col int32) Ref { return argRef(arg, row, col) }

// Slot registers a staging buffer shape and returns its slot id.
func (g *Graph) Slot(dt kernelmodel.Dtype, elems int64) int32 {
	return g.b.slot(dt, elems)
}

// Alloc emits the pool acquisition of a slot. Allocation order is part of
// the IR: it determines pool-eviction behaviour and the device memory peak.
func (g *Graph) Alloc(slot int32) OpID { return g.b.alloc(slot) }

// deps registers the dependency edges of the op about to be emitted, in
// argument order (negative ids skipped).
func (g *Graph) deps(ids []OpID) {
	for _, id := range ids {
		g.b.dep(id)
	}
}

// Fetch emits an h2d transfer of an m x n element window of bound operand
// arg at (row, col) into slot, and accounts its bytes in the plan's H2D
// volume. deps order is wait-registration order.
func (g *Graph) Fetch(arg int8, row, col, m, n, slot int32, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Slot = OpFetch, slot
	o.A = argRef(arg, row, col)
	o.M, o.N = m, n
	g.b.p.BytesH2D += int64(m) * int64(n) * g.b.p.Dtype.Size()
	return id
}

// FetchVec emits an h2d transfer of m elements of bound vector operand arg
// starting at off into slot.
func (g *Graph) FetchVec(arg int8, off, m, slot int32, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Slot = OpFetch, slot
	o.A, o.M = argRef(arg, off, 0), m
	g.b.p.BytesH2D += int64(m) * g.b.p.Dtype.Size()
	return id
}

// Writeback emits a d2h transfer of slot's m x n window back to bound
// operand arg at (row, col), accounting its bytes in the D2H volume.
func (g *Graph) Writeback(slot int32, arg int8, row, col, m, n int32, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Slot = OpWriteback, slot
	o.A = argRef(arg, row, col)
	o.M, o.N = m, n
	g.b.p.BytesD2H += int64(m) * int64(n) * g.b.p.Dtype.Size()
	return id
}

// WritebackVec emits a d2h transfer of m elements back to bound vector
// operand arg at off.
func (g *Graph) WritebackVec(slot int32, arg int8, off, m int32, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Slot = OpWriteback, slot
	o.A, o.M = argRef(arg, off, 0), m
	g.b.p.BytesD2H += int64(m) * g.b.p.Dtype.Size()
	return id
}

// Dispatch emits a dispatch-overhead kernel (duration is the plan's
// DispatchS); it does not count as a sub-kernel.
func (g *Graph) Dispatch(deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KDispatch
	return id
}

// Gemm emits C = alpha*op(A)*op(B) + beta*C over tile refs.
func (g *Graph) Gemm(transA, transB byte, m, n, k int32, alpha AlphaSel, beta BetaSel, a, b, c Ref, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KGemm
	o.TransA, o.TransB = transA, transB
	o.M, o.N, o.K = m, n, k
	o.Alpha, o.Beta = alpha, beta
	o.A, o.B, o.C = a, b, c
	g.b.p.Subkernels++
	return id
}

// Gemv emits y = alpha*A*x + beta*y over tile refs.
func (g *Graph) Gemv(m, n int32, beta BetaSel, a, x, y Ref, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KGemv
	o.M, o.N = m, n
	o.Beta = beta
	o.A, o.B, o.C = a, x, y
	g.b.p.Subkernels++
	return id
}

// Axpy emits y += alpha*x over vector refs.
func (g *Graph) Axpy(n int32, x, y Ref, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KAxpy
	o.N = n
	o.A, o.C = x, y
	g.b.p.Subkernels++
	return id
}

// Potrf emits the in-place Cholesky factorization of the n x n tile a
// (the referenced triangle per uplo).
func (g *Graph) Potrf(uplo byte, n int32, a Ref, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KPotrf
	o.Uplo, o.N = uplo, n
	o.A = a
	g.b.p.Subkernels++
	return id
}

// Getrf emits the in-place unpivoted LU factorization of the n x n tile a.
func (g *Graph) Getrf(n int32, a Ref, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KGetrf
	o.N = n
	o.A = a
	g.b.p.Subkernels++
	return id
}

// Trsm emits the triangular tile solve op(A)*X = alpha*B (side L) or
// X*op(A) = alpha*B (side R), overwriting B.
func (g *Graph) Trsm(side, uplo, transA, diag byte, m, n int32, alpha AlphaSel, a, b Ref, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KTrsm
	o.Side, o.Uplo, o.TransA, o.Diag = side, uplo, transA, diag
	o.M, o.N = m, n
	o.Alpha = alpha
	o.A, o.B = a, b
	g.b.p.Subkernels++
	return id
}

// Syrk emits the symmetric rank-k tile update
// C = alpha*A*A^T + beta*C (trans 'N') or alpha*A^T*A + beta*C (trans 'T').
func (g *Graph) Syrk(uplo, trans byte, n, k int32, alpha AlphaSel, beta BetaSel, a, c Ref, deps ...OpID) OpID {
	g.deps(deps)
	o, id := g.b.emit()
	o.Kind, o.Kernel = OpKernel, KSyrk
	o.Uplo, o.TransA = uplo, trans
	o.N, o.K = n, k
	o.Alpha, o.Beta = alpha, beta
	o.A, o.C = a, c
	g.b.p.Subkernels++
	return id
}

// TailH2D records an op whose completion event the schedule leaves as a
// pending (unconsumed) h2d-stream wait at return.
func (g *Graph) TailH2D(id OpID) {
	if id >= 0 {
		g.b.p.TailH2D = append(g.b.p.TailH2D, id)
	}
}

// TailComp records a pending compute-stream tail wait.
func (g *Graph) TailComp(id OpID) {
	if id >= 0 {
		g.b.p.TailComp = append(g.b.p.TailComp, id)
	}
}

// Finish assigns the completion-event table and returns the sealed plan.
func (g *Graph) Finish() *Plan { return finish(g.b.p) }
