package plan

import (
	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// The tiled factorization planners. Each builds a task-graph plan over the
// Graph surface: tiles of the factored matrix live on the device for the
// whole schedule (fetched once, written back after their final kernel), and
// every data hazard between tile kernels is a kernel→kernel dependency edge
// — the tile-forwarding encoding — rather than a writeback/refetch
// round-trip. Dependency lists follow one uniform rule: a kernel waits on
// the last writer of each operand tile it touches, inputs first, output
// last (absent writers — device-resident operands never written — are the
// NoOp sentinel and vanish).

// CholeskySpec parameterizes the tiled Cholesky planner: the in-place
// lower-triangular factorization A = L*L^T of the N x N matrix A, tiled at
// T. Only the lower triangle is referenced, tile-granular: tiles strictly
// above the diagonal are never fetched, updated or written back.
type CholeskySpec struct {
	Dtype kernelmodel.Dtype
	N     int
	LocA  model.Loc
	T     int
}

// lowerIdx packs lower-triangle tile coordinates (i >= j) row-wise.
func lowerIdx(i, j int) int { return i*(i+1)/2 + j }

// BuildCholesky emits the right-looking tiled Cholesky schedule. Iteration
// k factors the diagonal tile (POTRF), solves the panel below it (TRSM
// right/lower/trans against the fresh diagonal factor), and applies the
// rank-T trailing update (SYRK on diagonal tiles, GEMM off-diagonal, both
// alpha=-1 beta=1). Diagonal and panel tiles are final after their POTRF
// or TRSM and are written back immediately, overlapping the remaining
// trailing updates.
func BuildCholesky(spec CholeskySpec) *Plan {
	T := spec.T
	nt := ceil(spec.N, T)
	dt := spec.Dtype

	p := &Plan{
		Routine: "cholesky", Dtype: dt,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: spec.N, N: spec.N, T: T,
		Alpha: 1, Beta: 0,
		Locs: []model.Loc{spec.LocA},
	}
	g := NewGraph(p)

	// Pre-size the arenas: nt(nt+1)/2 lower tiles (slot+alloc+fetch+writeback
	// each when host-resident), nt potrf, nt(nt-1)/2 trsm and syrk, C(nt,3)
	// gemm kernels, and at most 3 dependency edges per op.
	tiles := nt * (nt + 1) / 2
	kernels := nt + nt*(nt-1) + nt*(nt-1)*(nt-2)/6
	hostTiles := 0
	if spec.LocA == model.OnHost {
		hostTiles = tiles
	}
	g.Grow(hostTiles, 3*hostTiles+kernels, 3*kernels+hostTiles)

	// Per-tile planner state over the lower triangle: the kernel ref, the id
	// of the tile's last writer (its fetch, then each updating kernel) and
	// liveness for first-use fetching.
	state := make([]tileState, tiles)
	rows := func(i int) int { return min(T, spec.N-i*T) }
	tile := func(i, j int) *tileState {
		t := &state[lowerIdx(i, j)]
		if t.live {
			return t
		}
		t.live = true
		if spec.LocA == model.OnDevice {
			t.ref = ArgRef(0, int32(i*T), int32(j*T))
			t.ready = NoOp
			return t
		}
		r, c := rows(i), rows(j)
		slot := g.Slot(dt, int64(r)*int64(c))
		g.Alloc(slot)
		t.ref = SlotRef(slot, int32(r))
		t.ready = g.Fetch(0, int32(i*T), int32(j*T), int32(r), int32(c), slot)
		return t
	}
	writeback := func(i, j int, after OpID) {
		if spec.LocA == model.OnHost {
			t := &state[lowerIdx(i, j)]
			g.Writeback(t.ref.Slot, 0, int32(i*T), int32(j*T),
				int32(rows(i)), int32(rows(j)), after)
		}
	}

	for k := 0; k < nt; k++ {
		nk := rows(k)
		diag := tile(k, k)
		diag.ready = g.Potrf(blas.Lower, int32(nk), diag.ref, diag.ready)
		writeback(k, k, diag.ready)

		// Panel: A[i][k] <- A[i][k] * L[k][k]^-T, final after the solve.
		for i := k + 1; i < nt; i++ {
			pt := tile(i, k)
			pt.ready = g.Trsm(blas.Right, blas.Lower, blas.Trans, blas.NonUnit,
				int32(rows(i)), int32(nk), AlphaOne, diag.ref, pt.ref,
				diag.ready, pt.ready)
			writeback(i, k, pt.ready)
		}

		// Trailing update: A[i][j] -= A[i][k] * A[j][k]^T for k < j <= i.
		for j := k + 1; j < nt; j++ {
			jp := tile(j, k)
			dj := tile(j, j)
			dj.ready = g.Syrk(blas.Lower, blas.NoTrans, int32(rows(j)), int32(nk),
				AlphaNegOne, BetaOne, jp.ref, dj.ref,
				jp.ready, dj.ready)
			for i := j + 1; i < nt; i++ {
				ip := tile(i, k)
				ct := tile(i, j)
				ct.ready = g.Gemm(blas.NoTrans, blas.Trans,
					int32(rows(i)), int32(rows(j)), int32(nk),
					AlphaNegOne, BetaOne, ip.ref, jp.ref, ct.ref,
					ip.ready, jp.ready, ct.ready)
			}
		}
	}
	return g.Finish()
}

// LUSpec parameterizes the tiled LU planner: the in-place unpivoted
// factorization A = L*U of the N x N matrix A, tiled at T. The planner
// models no row exchanges (GETRF tiles are unpivoted), matching problem
// generators that supply diagonally dominant matrices.
type LUSpec struct {
	Dtype kernelmodel.Dtype
	N     int
	LocA  model.Loc
	T     int
}

// BuildLU emits the right-looking tiled LU schedule. Iteration k factors
// the diagonal tile (GETRF), solves the column panel against U[k][k]
// (TRSM right/upper) and the row panel against the unit L[k][k] (TRSM
// left/lower/unit), then applies the trailing update A[i][j] -=
// A[i][k]*A[k][j] (GEMM, alpha=-1 beta=1). Diagonal and panel tiles are
// written back right after their final kernel.
func BuildLU(spec LUSpec) *Plan {
	T := spec.T
	nt := ceil(spec.N, T)
	dt := spec.Dtype

	p := &Plan{
		Routine: "lu", Dtype: dt,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: spec.N, N: spec.N, T: T,
		Alpha: 1, Beta: 0,
		Locs: []model.Loc{spec.LocA},
	}
	g := NewGraph(p)

	// nt^2 tiles, nt getrf, nt(nt-1) trsm, sum r^2 = (nt-1)nt(2nt-1)/6 gemm.
	tiles := nt * nt
	kernels := nt + nt*(nt-1) + (nt-1)*nt*(2*nt-1)/6
	hostTiles := 0
	if spec.LocA == model.OnHost {
		hostTiles = tiles
	}
	g.Grow(hostTiles, 3*hostTiles+kernels, 3*kernels+hostTiles)

	state := make([]tileState, tiles)
	rows := func(i int) int { return min(T, spec.N-i*T) }
	tile := func(i, j int) *tileState {
		t := &state[i*nt+j]
		if t.live {
			return t
		}
		t.live = true
		if spec.LocA == model.OnDevice {
			t.ref = ArgRef(0, int32(i*T), int32(j*T))
			t.ready = NoOp
			return t
		}
		r, c := rows(i), rows(j)
		slot := g.Slot(dt, int64(r)*int64(c))
		g.Alloc(slot)
		t.ref = SlotRef(slot, int32(r))
		t.ready = g.Fetch(0, int32(i*T), int32(j*T), int32(r), int32(c), slot)
		return t
	}
	writeback := func(i, j int, after OpID) {
		if spec.LocA == model.OnHost {
			t := &state[i*nt+j]
			g.Writeback(t.ref.Slot, 0, int32(i*T), int32(j*T),
				int32(rows(i)), int32(rows(j)), after)
		}
	}

	for k := 0; k < nt; k++ {
		nk := rows(k)
		diag := tile(k, k)
		diag.ready = g.Getrf(int32(nk), diag.ref, diag.ready)
		writeback(k, k, diag.ready)

		// Column panel: A[i][k] <- A[i][k] * U[k][k]^-1.
		for i := k + 1; i < nt; i++ {
			pt := tile(i, k)
			pt.ready = g.Trsm(blas.Right, blas.Upper, blas.NoTrans, blas.NonUnit,
				int32(rows(i)), int32(nk), AlphaOne, diag.ref, pt.ref,
				diag.ready, pt.ready)
			writeback(i, k, pt.ready)
		}
		// Row panel: A[k][j] <- L[k][k]^-1 * A[k][j].
		for j := k + 1; j < nt; j++ {
			pt := tile(k, j)
			pt.ready = g.Trsm(blas.Left, blas.Lower, blas.NoTrans, blas.Unit,
				int32(nk), int32(rows(j)), AlphaOne, diag.ref, pt.ref,
				diag.ready, pt.ready)
			writeback(k, j, pt.ready)
		}
		// Trailing update.
		for j := k + 1; j < nt; j++ {
			up := tile(k, j)
			for i := k + 1; i < nt; i++ {
				lp := tile(i, k)
				ct := tile(i, j)
				ct.ready = g.Gemm(blas.NoTrans, blas.NoTrans,
					int32(rows(i)), int32(rows(j)), int32(nk),
					AlphaNegOne, BetaOne, lp.ref, up.ref, ct.ref,
					lp.ready, up.ready, ct.ready)
			}
		}
	}
	return g.Finish()
}

// TrsmSpec parameterizes the tiled triangular-solve planner. The planner
// covers the left/lower/no-trans case (op(A) = A lower triangular,
// A*X = alpha*B, X overwriting the M x N operand B); the scheduler layer
// validates flags before planning, exactly as it normalizes gemm
// transposes.
type TrsmSpec struct {
	Dtype      kernelmodel.Dtype
	Diag       byte
	M, N       int
	Alpha      float64
	LocA, LocB model.Loc
	T          int
}

// BuildTrsm emits the tiled left/lower solve. B's column blocks are
// independent; within one, row block i first accumulates
// alpha*B[i][j] - sum_{k<i} A[i][k]*X[k][j] (the first GEMM's beta carries
// the alpha scale), then the diagonal solve finishes X[i][j]. Solved X
// tiles forward to every later row's GEMMs and write back immediately.
func BuildTrsm(spec TrsmSpec) *Plan {
	T := spec.T
	mt := ceil(spec.M, T)
	nt := ceil(spec.N, T)
	dt := spec.Dtype

	// Beta doubles as the alpha scale of each tile's first accumulation
	// (BetaPlan edges); Alpha is the diagonal solve's scale when no GEMM
	// preceded it (AlphaPlan on row block 0).
	p := &Plan{
		Routine: "trsm", Dtype: dt,
		TransA: blas.NoTrans, TransB: blas.NoTrans, Diag: spec.Diag,
		M: spec.M, N: spec.N, T: T,
		Alpha: spec.Alpha, Beta: spec.Alpha,
		Locs: []model.Loc{spec.LocA, spec.LocB},
	}
	g := NewGraph(p)

	aTiles := mt * (mt + 1) / 2
	bTiles := mt * nt
	kernels := nt * (mt + mt*(mt-1)/2)
	hostA, hostB := 0, 0
	if spec.LocA == model.OnHost {
		hostA = aTiles
	}
	if spec.LocB == model.OnHost {
		hostB = bTiles
	}
	g.Grow(hostA+hostB, 2*hostA+3*hostB+kernels, 3*kernels+hostB)

	rowsM := func(i int) int { return min(T, spec.M-i*T) }
	colsN := func(j int) int { return min(T, spec.N-j*T) }

	// A's lower-triangle tiles: read-only, fetched on first use.
	aState := make([]tileState, aTiles)
	aTile := func(i, k int) *tileState {
		t := &aState[lowerIdx(i, k)]
		if t.live {
			return t
		}
		t.live = true
		if spec.LocA == model.OnDevice {
			t.ref = ArgRef(0, int32(i*T), int32(k*T))
			t.ready = NoOp
			return t
		}
		r, c := rowsM(i), rowsM(k)
		slot := g.Slot(dt, int64(r)*int64(c))
		g.Alloc(slot)
		t.ref = SlotRef(slot, int32(r))
		t.ready = g.Fetch(0, int32(i*T), int32(k*T), int32(r), int32(c), slot)
		return t
	}

	// B/X tiles: fetched per column sweep, overwritten in place.
	bState := make([]tileState, bTiles)
	bTile := func(i, j int) *tileState {
		t := &bState[i*nt+j]
		if t.live {
			return t
		}
		t.live = true
		if spec.LocB == model.OnDevice {
			t.ref = ArgRef(1, int32(i*T), int32(j*T))
			t.ready = NoOp
			return t
		}
		r, c := rowsM(i), colsN(j)
		slot := g.Slot(dt, int64(r)*int64(c))
		g.Alloc(slot)
		t.ref = SlotRef(slot, int32(r))
		t.ready = g.Fetch(1, int32(i*T), int32(j*T), int32(r), int32(c), slot)
		return t
	}

	for j := 0; j < nt; j++ {
		cols := colsN(j)
		for i := 0; i < mt; i++ {
			ri := rowsM(i)
			bt := bTile(i, j)
			for k := 0; k < i; k++ {
				at := aTile(i, k)
				xt := &bState[k*nt+j] // solved earlier in this column sweep
				beta := BetaOne
				if k == 0 {
					beta = BetaPlan
				}
				bt.ready = g.Gemm(blas.NoTrans, blas.NoTrans,
					int32(ri), int32(cols), int32(rowsM(k)),
					AlphaNegOne, beta, at.ref, xt.ref, bt.ref,
					at.ready, xt.ready, bt.ready)
			}
			alpha := AlphaOne
			if i == 0 {
				alpha = AlphaPlan
			}
			ad := aTile(i, i)
			bt.ready = g.Trsm(blas.Left, blas.Lower, blas.NoTrans, spec.Diag,
				int32(ri), int32(cols), alpha, ad.ref, bt.ref,
				ad.ready, bt.ready)
			if spec.LocB == model.OnHost {
				g.Writeback(bt.ref.Slot, 1, int32(i*T), int32(j*T),
					int32(ri), int32(cols), bt.ready)
			}
		}
	}
	return g.Finish()
}
