package plan

import (
	"sync/atomic"

	"cocopelia/internal/cudart"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
)

// Tape is a plan precompiled for timing-only replay on one GPU model: a
// flat instruction array with every per-op decision already taken. Where
// Executor.Run re-derives each op's stream call per replay — nested kind
// switches, transfer-size validation, operand resolution, memoized
// kernel-duration lookups — the tape stores the outcome (stream code,
// byte volume, kernel name and duration, dependency event slots) in
// contiguous slices, so replay is a tight loop over plain data with no
// per-op dispatch beyond one switch on the precomputed code.
//
// A tape is valid only for unbacked (timing-only) targets: functional
// payloads and host-side windows are exactly what it strips. Executor.Run
// remains the reference path for backed runs, and the two are pinned
// event-identical by the plan package's replay tests.
type Tape struct {
	gpu     *machine.GPUSpec // kernel durations are GPU-model-specific
	ops     []tapeOp
	deps    []int32 // dependency edges as completion-event slots
	tailH2D []int32 // tail waits as completion-event slots
	tailCmp []int32
	evSlots int
	slots   []Slot
}

// tapeOp codes: which stream the op runs on and what it enqueues.
const (
	tAlloc uint8 = iota
	tFetch
	tWriteback
	tKernel
)

// tapeNames is the kernel-name table tapeOp.name indexes into; keeping the
// string out of the op makes the instruction array pointer-free, so tapes
// are never scanned by the garbage collector and their arenas zero faster.
var tapeNames = [...]string{"dispatch", "dgemm", "sgemm", "gemv", "daxpy",
	"dpotrf", "spotrf", "dgetrf", "sgetrf", "dtrsm", "strsm", "dsyrk", "ssyrk"}

const (
	nDispatch uint8 = iota
	nDgemm
	nSgemm
	nGemv
	nDaxpy
	nDpotrf
	nSpotrf
	nDgetrf
	nSgetrf
	nDtrsm
	nStrsm
	nDsyrk
	nSsyrk
)

// dtypeName picks the float64 or float32 member of a d/s kernel-name pair.
func dtypeName(dt kernelmodel.Dtype, d, s uint8) uint8 {
	if dt == kernelmodel.F32 {
		return s
	}
	return d
}

// tapeOp is one precompiled instruction.
type tapeOp struct {
	bytes        int64   // transfer volume
	dur          float64 // kernel duration
	slot         int32   // staging-slot index of alloc/transfer ops
	ev           int32   // completion-event slot, -1 when nothing waits
	depOff, depN int32   // window into Tape.deps
	code         uint8
	name         uint8 // kernel-name index into tapeNames
	dir          machine.LinkDir
}

// TapeFor returns the plan's replay tape for the given GPU model,
// compiling and caching it on first use. The cache is a single atomic
// slot: every runner replays a plan on one testbed, and a racing
// recompile produces an identical tape (compilation is pure), so last
// write wins safely.
func (p *Plan) TapeFor(gpu *machine.GPUSpec) *Tape {
	if t := p.tape.Load(); t != nil && t.gpu == gpu {
		return t
	}
	t := compileTape(p, gpu)
	p.tape.Store(t)
	return t
}

// tapeMemo is a tiny linear-scan memo for kernel-duration evaluations
// during one tape compilation: a tiled plan launches thousands of kernels
// with only a handful of distinct shapes (full tiles plus edge tiles), and
// the model's exp/log/cbrt evaluation dominates otherwise.
type tapeMemo struct {
	keys []int64
	durs []float64
}

func (m *tapeMemo) get(key int64, eval func() float64) float64 {
	for i, k := range m.keys {
		if k == key {
			return m.durs[i]
		}
	}
	d := eval()
	m.keys = append(m.keys, key)
	m.durs = append(m.durs, d)
	return d
}

// compileTape lowers a plan to its flat enqueue tape, evaluating the same
// kernel-duration model the cudart launch path would consult (memoized
// there, precomputed here) so replay timing is bit-identical.
func compileTape(p *Plan, gpu *machine.GPUSpec) *Tape {
	t := &Tape{
		gpu:     gpu,
		ops:     make([]tapeOp, len(p.Ops)),
		deps:    make([]int32, len(p.deps)),
		tailH2D: evSlotsOf(p, p.TailH2D),
		tailCmp: evSlotsOf(p, p.TailComp),
		evSlots: p.EvSlots,
		slots:   p.Slots,
	}
	for i, d := range p.deps {
		t.deps[i] = p.Ops[d].Ev
	}
	// One memo per kernel kind: factorization plans mix GEMM, TRSM, SYRK and
	// the diagonal kernels in a single op list, and their shape keys (two or
	// three packed dims) would collide across kinds in a shared table.
	var memos [KSyrk + 1]tapeMemo
	for i := range p.Ops {
		o := &p.Ops[i]
		to := &t.ops[i]
		to.ev, to.depOff, to.depN, to.slot = o.Ev, o.depOff, o.depN, o.Slot
		switch o.Kind {
		case OpAlloc:
			to.code = tAlloc
		case OpFetch:
			to.code, to.dir = tFetch, machine.H2D
			to.bytes = tapeBytes(p, o)
		case OpWriteback:
			to.code, to.dir = tWriteback, machine.D2H
			to.bytes = tapeBytes(p, o)
		case OpKernel:
			to.code = tKernel
			switch o.Kernel {
			case KDispatch:
				to.name, to.dur = nDispatch, p.DispatchS
			case KGemm:
				to.name = dtypeName(p.Dtype, nDgemm, nSgemm)
				to.dur = memos[KGemm].get(int64(o.M)<<42|int64(o.N)<<21|int64(o.K), func() float64 {
					return kernelmodel.GemmTime(gpu, p.Dtype, int(o.M), int(o.N), int(o.K))
				})
			case KGemv:
				to.name = nGemv
				to.dur = memos[KGemv].get(int64(o.M)<<21|int64(o.N), func() float64 {
					return kernelmodel.GemvTime(gpu, kernelmodel.F64, int(o.M), int(o.N))
				})
			case KAxpy:
				to.name = nDaxpy
				to.dur = memos[KAxpy].get(int64(o.N), func() float64 {
					return kernelmodel.AxpyTime(gpu, kernelmodel.F64, int(o.N))
				})
			case KPotrf:
				to.name = dtypeName(p.Dtype, nDpotrf, nSpotrf)
				to.dur = memos[KPotrf].get(int64(o.N), func() float64 {
					return kernelmodel.PotrfTime(gpu, p.Dtype, int(o.N))
				})
			case KGetrf:
				to.name = dtypeName(p.Dtype, nDgetrf, nSgetrf)
				to.dur = memos[KGetrf].get(int64(o.N), func() float64 {
					return kernelmodel.GetrfTime(gpu, p.Dtype, int(o.N))
				})
			case KTrsm:
				to.name = dtypeName(p.Dtype, nDtrsm, nStrsm)
				// Side changes the flop/byte shape, so it is part of the key.
				to.dur = memos[KTrsm].get(int64(o.Side)<<42|int64(o.M)<<21|int64(o.N), func() float64 {
					return kernelmodel.TrsmTime(gpu, p.Dtype, o.Side, int(o.M), int(o.N))
				})
			case KSyrk:
				to.name = dtypeName(p.Dtype, nDsyrk, nSsyrk)
				to.dur = memos[KSyrk].get(int64(o.N)<<21|int64(o.K), func() float64 {
					return kernelmodel.SyrkTime(gpu, p.Dtype, int(o.N), int(o.K))
				})
			}
		}
	}
	return t
}

// tapeBytes is the byte volume the checked transfer entry points would
// compute: window elements times the staging slot's element size.
func tapeBytes(p *Plan, o *Op) int64 {
	elems := int64(o.M)
	if o.N != 0 {
		elems *= int64(o.N)
	}
	return elems * p.Slots[o.Slot].Dtype.Size()
}

// evSlotsOf maps op ids to their completion-event slots.
func evSlotsOf(p *Plan, ids []int32) []int32 {
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = p.Ops[id].Ev
	}
	return out
}

// RunTape replays a precompiled tape onto tgt: the batched, timing-only
// counterpart of Run, issuing the identical stream-call sequence (and so
// the identical simulation events) with no per-op validation, resolution
// or duration lookups. The target must be unbacked; backed runs take Run.
//
// Like Run it returns the acquired staging buffers for the caller to
// release after the engine drains, releasing them itself on error.
//
//cocolint:hotpath
func (e *Executor) RunTape(t *Tape, tgt Target) ([]*cudart.DevBuffer, error) {
	// Event slots need no clearing between replays: a dependency edge always
	// references an op emitted earlier in the tape, so every slot is written
	// before it is read (stale pointers from a previous replay are never
	// observed). The replay property tests pin this.
	if cap(e.events) < t.evSlots {
		//lint:ignore hotpath grow-once scratch: reallocated only when a replay needs more event slots than any before it
		e.events = make([]*cudart.Event, t.evSlots)
	}
	e.events = e.events[:t.evSlots]
	if cap(e.slots) < len(t.slots) {
		//lint:ignore hotpath grow-once scratch: reallocated only when a replay needs more staging slots than any before it
		e.slots = make([]*cudart.DevBuffer, len(t.slots))
	}
	e.slots = e.slots[:len(t.slots)]
	e.pooled = e.pooled[:0]

	// Hoist the hot-loop state into locals: the loop body runs hundreds of
	// thousands of times per replay and the compiler cannot otherwise prove
	// these loads loop-invariant across the stream calls.
	events, deps, h2d, d2h, comp := e.events, t.deps, tgt.H2D, tgt.D2H, tgt.Comp
	for i := range t.ops {
		o := &t.ops[i]
		switch o.code {
		case tAlloc:
			s := t.slots[o.slot]
			//lint:ignore hotpath Alloc is an interface by design; the sched.Pool implementation's Acquire is proved free at its own hot root
			buf, err := tgt.Alloc.Acquire(s.Dtype, s.Elems)
			if err != nil {
				for _, b := range e.pooled {
					//lint:ignore hotpath acquire-failure unwind runs at most once per failed replay
					tgt.Alloc.Release(b)
				}
				e.pooled = e.pooled[:0]
				return nil, err
			}
			e.slots[o.slot] = buf
			//lint:ignore hotpath pooled reuses its backing array across replays; it grows only to the widest plan's slot count
			e.pooled = append(e.pooled, buf)
		case tFetch:
			for _, d := range deps[o.depOff : o.depOff+o.depN] {
				h2d.WaitEvent(events[d])
			}
			ev := h2d.TransferOp(o.dir, o.bytes, e.slots[o.slot])
			if o.ev >= 0 {
				events[o.ev] = ev
			}
		case tWriteback:
			for _, d := range deps[o.depOff : o.depOff+o.depN] {
				d2h.WaitEvent(events[d])
			}
			ev := d2h.TransferOp(o.dir, o.bytes, e.slots[o.slot])
			if o.ev >= 0 {
				events[o.ev] = ev
			}
		case tKernel:
			for _, d := range deps[o.depOff : o.depOff+o.depN] {
				comp.WaitEvent(events[d])
			}
			ev := comp.KernelOp(tapeNames[o.name], o.dur)
			if o.ev >= 0 {
				events[o.ev] = ev
			}
		}
	}

	for _, s := range t.tailH2D {
		tgt.H2D.WaitEvent(e.events[s])
	}
	for _, s := range t.tailCmp {
		tgt.Comp.WaitEvent(e.events[s])
	}
	return e.pooled, nil
}

// tapeSlot is the Plan field backing TapeFor's cache. The alias lives here
// (not in plan.go) so the atomic dependency stays with the tape code.
type tapeSlot = atomic.Pointer[Tape]
