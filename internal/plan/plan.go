// Package plan defines the tile-operation IR shared by every scheduler in
// this repository: a compact, deterministic description of one routine
// invocation as a sequence of slot allocations, tile fetches, kernel
// launches and write-backs with explicit dependency edges and
// transfer-volume annotations.
//
// A plan is a pure function of the routine geometry, the tiling size, the
// operand location vector and the scheduling knobs — it references operands
// symbolically (by argument index), never by pointer, so one plan can be
// replayed against any operand set of the same shape, on any
// sched.Context/cudart.Runtime, and memoized across repetitions.
//
// Replay preserves the simulation's event total order: the executor walks
// the op list in emission order, registers each op's dependency waits in
// their recorded order, and enqueues exactly the stream call the imperative
// scheduler would have issued — so the (at, seq) order of every discrete
// event, and therefore every timing and payload result, is byte-identical
// to direct scheduling.
package plan

import (
	"fmt"
	"math"
	"strings"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
)

// Kind is the operation class of one plan op. The executing stream is
// implied: fetches run on the h2d stream, write-backs on the d2h stream,
// kernels on the compute stream, and allocations touch no stream.
type Kind uint8

// The op kinds.
const (
	OpAlloc Kind = iota
	OpFetch
	OpKernel
	OpWriteback
)

// Kernel is the kernel sub-kind of an OpKernel op.
type Kernel uint8

// The kernel sub-kinds. KDispatch models a comparator runtime's
// per-sub-kernel dispatch overhead and does not count as a sub-kernel.
// The factorization kinds (KPotrf, KGetrf, KTrsm, KSyrk) carry their own
// geometry and triangle flags per op, so one plan can mix kernel kinds —
// the task-graph generalization the tiled factorization planners build on.
const (
	KGemm Kernel = iota
	KGemv
	KAxpy
	KDispatch
	KPotrf
	KGetrf
	KTrsm
	KSyrk
)

// Ref locates one kernel operand: either a staging slot (Slot >= 0) or a
// window of the bound operand Arg (Slot < 0) at element coordinates
// (Row, Col); the executor resolves the window against the operand's
// device buffer and leading dimension at replay time, so plans stay
// layout-agnostic. A staging-slot reference needs no coordinates, so Row
// doubles as the slot's leading dimension (0 for vectors).
type Ref struct {
	Slot     int32
	Arg      int8
	Row, Col int32
}

// slotRef builds a staging-slot reference; Row carries the leading
// dimension.
func slotRef(slot, ld int32) Ref { return Ref{Slot: slot, Row: ld} }

// argRef builds a bound-operand window reference.
func argRef(arg int8, row, col int32) Ref {
	return Ref{Slot: -1, Arg: arg, Row: row, Col: col}
}

// BetaSel selects a kernel op's beta scalar without storing a float64 per
// op: every schedule in this repository launches kernels whose beta is 0,
// 1 (accumulation) or the routine's own beta.
type BetaSel uint8

// The beta selectors.
const (
	BetaZero BetaSel = iota
	BetaOne
	BetaPlan
)

// AlphaSel selects a kernel op's alpha scalar the same way BetaSel selects
// beta: the zero value keeps the plan-level alpha (every flat BLAS planner),
// while the factorization planners pin individual tile kernels to +1 (panel
// solves) or -1 (trailing-matrix updates) independent of the plan scalar.
type AlphaSel uint8

// The alpha selectors.
const (
	AlphaPlan AlphaSel = iota
	AlphaOne
	AlphaNegOne
)

// Op is one plan operation. The encoding is deliberately compact — large
// no-reuse plans run to ~10^5 ops, and both planning cost and replay cache
// traffic scale with the op size — so kernel and transfer ops overlay the
// same fields and per-plan constants live on the Plan, not the op:
//
//   - Kernels carry the launch shape (M, N, K) and operand references
//     (A, B, C) of the matching cudart call; alpha is the plan's alpha,
//     beta is selected by Beta, and a dispatch op's duration is the plan's
//     DispatchS.
//   - Transfers (OpFetch, OpWriteback) move an M x N element window of one
//     bound operand through staging slot Slot, reusing A as the host-side
//     window (operand index and element coordinates); N == 0 marks a 1-D
//     vector transfer of M elements. The byte volume is derived, not
//     stored (see Plan.opBytes).
//
// Dependencies reference earlier op ids and are stored in the plan's
// shared arena.
type Op struct {
	Kind           Kind
	Kernel         Kernel
	TransA, TransB byte
	Beta           BetaSel
	Alpha          AlphaSel
	// Side, Uplo and Diag carry the BLAS triangle flags of the
	// factorization kernels (KTrsm uses all three, KPotrf/KSyrk use Uplo);
	// the flat BLAS kinds leave them zero.
	Side, Uplo, Diag byte
	Slot             int32
	M, N, K          int32
	A, B, C          Ref
	depOff, depN     int32
	// Ev is the op's slot in the executor's completion-event table, or -1
	// when no later op waits on this op (most kernels and write-backs).
	// Keeping the table dense over referenced ops only — rather than one
	// entry per op — keeps the per-replay pointer scratch small.
	Ev int32
}

// opBeta resolves a kernel op's beta selector against the plan scalar.
func (p *Plan) opBeta(o *Op) float64 {
	switch o.Beta {
	case BetaZero:
		return 0
	case BetaOne:
		return 1
	}
	return p.Beta
}

// opAlpha resolves a kernel op's alpha selector against the plan scalar.
func (p *Plan) opAlpha(o *Op) float64 {
	switch o.Alpha {
	case AlphaOne:
		return 1
	case AlphaNegOne:
		return -1
	}
	return p.Alpha
}

// betaSel encodes a planner-computed beta, which is always +0, 1 or the
// plan's own beta, as a selector. The comparison is on bit patterns so
// replay reproduces the planner's float exactly (e.g. a beta of -0.0
// stays the plan scalar rather than collapsing to +0).
func betaSel(beta float64) BetaSel {
	switch math.Float64bits(beta) {
	case 0:
		return BetaZero
	case math.Float64bits(1):
		return BetaOne
	}
	return BetaPlan
}

// opBytes derives a transfer op's byte volume from its window shape and
// the plan dtype (vector transfers are always float64 in this repository's
// routines, which F64.Size covers).
func (p *Plan) opBytes(o *Op) int64 {
	if o.N == 0 {
		return int64(o.M) * p.Dtype.Size()
	}
	return int64(o.M) * int64(o.N) * p.Dtype.Size()
}

// Slot describes one staging buffer the executor acquires from the
// context's pool before the ops that reference it run.
type Slot struct {
	Dtype kernelmodel.Dtype
	Elems int64
}

// Plan is one routine invocation in IR form.
type Plan struct {
	// Routine identifies the schedule family: "gemm", "gemm-noreuse",
	// "gemv", "axpy", or one of the factorization task graphs "cholesky",
	// "lu" and "trsm".
	Routine        string
	Dtype          kernelmodel.Dtype
	TransA, TransB byte
	// Diag is the unit-diagonal flag of a "trsm" plan (blas.Unit or
	// blas.NonUnit); zero for every other routine.
	Diag        byte
	M, N, K     int
	T           int
	Alpha, Beta float64
	// DispatchS is the duration of the plan's dispatch ops, when the
	// schedule has them (comparator runtimes); zero otherwise.
	DispatchS float64
	// Locs is the operand location vector in argument order (gemm: A, B,
	// C; gemv: A, x, y; axpy: x, y).
	Locs []model.Loc

	Slots []Slot
	Ops   []Op
	deps  []int32

	// TailH2D and TailComp are op ids whose completion events the original
	// schedule left as pending (unconsumed) stream waits at return; the
	// executor re-registers them so the stream state after replay is
	// identical to direct scheduling.
	TailH2D, TailComp []int32

	// Transfer-volume annotations: the totals the schedule will move and
	// launch, computed at plan time (not accumulated during execution).
	Subkernels         int64
	BytesH2D, BytesD2H int64

	// EvSlots is the size of the executor's completion-event table: the
	// number of ops some later op (or tail wait) depends on.
	EvSlots int

	// tape caches the plan's precompiled timing-only replay tape (see
	// tape.go). Plans with a compiled tape must not be copied by value.
	tape tapeSlot
}

// NumArgs returns the number of operand bindings the plan expects.
func (p *Plan) NumArgs() int { return len(p.Locs) }

// Deps returns op i's dependency list: ids of earlier ops whose completion
// events must be waited on, in registration order.
func (p *Plan) Deps(i int) []int32 {
	o := &p.Ops[i]
	return p.deps[o.depOff : o.depOff+o.depN]
}

// Volumes summarizes a plan's annotated traffic.
type Volumes struct {
	BytesH2D, BytesD2H int64
	Subkernels         int64
}

// Volumes returns the plan's transfer-volume annotations.
func (p *Plan) Volumes() Volumes {
	return Volumes{BytesH2D: p.BytesH2D, BytesD2H: p.BytesD2H, Subkernels: p.Subkernels}
}

// KernelSeconds sums the modeled execution time of every kernel op on gpu
// — the compute term of the Werkhoven-style full-overlap lower bound
// max(kernel sum, t_h2d, t_d2h). Dispatch ops contribute their fixed
// duration; transfer ops contribute nothing.
func (p *Plan) KernelSeconds(gpu *machine.GPUSpec) float64 {
	sum := 0.0
	for i := range p.Ops {
		o := &p.Ops[i]
		if o.Kind != OpKernel {
			continue
		}
		switch o.Kernel {
		case KDispatch:
			sum += p.DispatchS
		case KGemm:
			sum += kernelmodel.GemmTime(gpu, p.Dtype, int(o.M), int(o.N), int(o.K))
		case KGemv:
			sum += kernelmodel.GemvTime(gpu, kernelmodel.F64, int(o.M), int(o.N))
		case KAxpy:
			sum += kernelmodel.AxpyTime(gpu, kernelmodel.F64, int(o.N))
		case KPotrf:
			sum += kernelmodel.PotrfTime(gpu, p.Dtype, int(o.N))
		case KGetrf:
			sum += kernelmodel.GetrfTime(gpu, p.Dtype, int(o.N))
		case KTrsm:
			sum += kernelmodel.TrsmTime(gpu, p.Dtype, o.Side, int(o.M), int(o.N))
		case KSyrk:
			sum += kernelmodel.SyrkTime(gpu, p.Dtype, int(o.N), int(o.K))
		}
	}
	return sum
}

// TransferOps counts the plan's fetch and write-back operations. Each
// transfer pays the link's per-transfer setup latency once, so the counts
// turn the byte volumes into link-time predictions.
func (p *Plan) TransferOps() (h2d, d2h int) {
	for i := range p.Ops {
		switch p.Ops[i].Kind {
		case OpFetch:
			h2d++
		case OpWriteback:
			d2h++
		}
	}
	return h2d, d2h
}

// builder accumulates ops and dependency edges while a planner runs.
// Dependencies for the op being built are appended to the arena before
// emit; dep ignores absent edges (negative ids), mirroring WaitEvent's
// no-op on pre-completed events.
type builder struct {
	p        *Plan
	depStart int32
}

// dep records a dependency for the next emitted op. id < 0 (the planner's
// encoding of an already-completed event) is skipped.
func (b *builder) dep(id int32) {
	if id >= 0 {
		b.p.deps = append(b.p.deps, id)
	}
}

// emit appends a zero op to the arena, binding the dependencies recorded
// since the last emit, and returns the arena slot for the caller to fill
// in place along with its id. Op is a wide struct and planners emit
// hundreds of thousands per campaign; filling the slot directly avoids a
// per-op stack literal plus arena copy. Callers must only set fields —
// never hold the pointer across another emit (the arena may grow).
func (b *builder) emit() (*Op, int32) {
	id := int32(len(b.p.Ops))
	if int(id) < cap(b.p.Ops) {
		// The arena comes zeroed from make, so extending into capacity
		// yields a zero op without writing 96 bytes of zeros first; the
		// caller fills only the fields it needs.
		b.p.Ops = b.p.Ops[:id+1]
	} else {
		b.p.Ops = append(b.p.Ops, Op{})
	}
	o := &b.p.Ops[id]
	o.depOff = b.depStart
	o.depN = int32(len(b.p.deps)) - b.depStart
	b.depStart = int32(len(b.p.deps))
	return o, id
}

// slot registers a staging buffer shape and returns its slot id.
func (b *builder) slot(dt kernelmodel.Dtype, elems int64) int32 {
	id := int32(len(b.p.Slots))
	b.p.Slots = append(b.p.Slots, Slot{Dtype: dt, Elems: elems})
	return id
}

// alloc emits the pool acquisition of a slot (allocation order is part of
// the IR: it determines pool-eviction behaviour and the device's memory
// peak, which replay must reproduce).
func (b *builder) alloc(slot int32) int32 {
	o, id := b.emit()
	o.Kind, o.Slot = OpAlloc, slot
	return id
}

// finish assigns the completion-event slots: every op referenced by a
// dependency edge or a tail wait gets a dense table index in
// first-reference order, all others get -1. Called once by each planner
// after emission.
func finish(p *Plan) *Plan {
	for i := range p.Ops {
		p.Ops[i].Ev = -1
	}
	n := int32(0)
	mark := func(id int32) {
		if p.Ops[id].Ev < 0 {
			p.Ops[id].Ev = n
			n++
		}
	}
	for _, d := range p.deps {
		mark(d)
	}
	for _, id := range p.TailH2D {
		mark(id)
	}
	for _, id := range p.TailComp {
		mark(id)
	}
	p.EvSlots = int(n)
	return p
}

// argNames returns the operand letters of a routine for dumps.
func argNames(routine string) []string {
	switch routine {
	case "gemv":
		return []string{"A", "x", "y"}
	case "axpy":
		return []string{"x", "y"}
	case "cholesky", "lu":
		return []string{"A"}
	case "trsm":
		return []string{"A", "B"}
	}
	return []string{"A", "B", "C"}
}

// locString renders a location vector as compact letters (H/D).
func locString(locs []model.Loc) string {
	var sb strings.Builder
	for _, l := range locs {
		if l == model.OnDevice {
			sb.WriteByte('D')
		} else {
			sb.WriteByte('H')
		}
	}
	return sb.String()
}

// transChar renders one transpose flag ('n' or 't').
func transChar(t byte) byte {
	if t == blas.Trans {
		return 't'
	}
	return 'n'
}

// transString renders a transpose pair ("nn", "nt", ...).
func transString(ta, tb byte) string {
	return string([]byte{transChar(ta), transChar(tb)})
}

// refString renders a kernel operand reference.
func refString(r Ref, names []string) string {
	if r.Slot >= 0 {
		if r.Row > 0 { // a slot ref's Row carries the leading dimension
			return fmt.Sprintf("s%d(ld=%d)", r.Slot, r.Row)
		}
		return fmt.Sprintf("s%d", r.Slot)
	}
	return fmt.Sprintf("%s[%d,%d]", names[r.Arg], r.Row, r.Col)
}

// Dump renders the plan as deterministic text: one line per slot and op,
// with ids, kinds, shapes, dependency edges and byte volumes. The format
// is stable — golden tests and the cocomodel -dump-plan flag both pin it.
func (p *Plan) Dump() string {
	var sb strings.Builder
	names := argNames(p.Routine)
	fmt.Fprintf(&sb, "plan %s dtype=%s trans=%s m=%d n=%d k=%d T=%d alpha=%g beta=%g locs=%s\n",
		p.Routine, p.Dtype, transString(p.TransA, p.TransB),
		p.M, p.N, p.K, p.T, p.Alpha, p.Beta, locString(p.Locs))
	fmt.Fprintf(&sb, "slots %d\n", len(p.Slots))
	for i, s := range p.Slots {
		fmt.Fprintf(&sb, "  s%d %s elems=%d\n", i, s.Dtype, s.Elems)
	}
	fmt.Fprintf(&sb, "ops %d\n", len(p.Ops))
	for i := range p.Ops {
		fmt.Fprintf(&sb, "  o%d %s", i, opString(p, int32(i), names))
		if deps := p.Deps(i); len(deps) > 0 {
			sb.WriteString(" deps=[")
			for j, d := range deps {
				if j > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "o%d", d)
			}
			sb.WriteByte(']')
		}
		sb.WriteByte('\n')
	}
	if len(p.TailH2D) > 0 || len(p.TailComp) > 0 {
		fmt.Fprintf(&sb, "tail h2d=%s comp=%s\n", idList(p.TailH2D), idList(p.TailComp))
	}
	fmt.Fprintf(&sb, "volumes h2d=%d d2h=%d subkernels=%d\n",
		p.BytesH2D, p.BytesD2H, p.Subkernels)
	return sb.String()
}

// idList renders a list of op ids.
func idList(ids []int32) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for j, d := range ids {
		if j > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "o%d", d)
	}
	sb.WriteByte(']')
	return sb.String()
}

// opString renders one op (without id or deps).
func opString(p *Plan, i int32, names []string) string {
	o := &p.Ops[i]
	switch o.Kind {
	case OpAlloc:
		return fmt.Sprintf("alloc s%d", o.Slot)
	case OpFetch:
		if o.N == 0 {
			return fmt.Sprintf("fetch %s[%d:+%d] -> s%d bytes=%d",
				names[o.A.Arg], o.A.Row, o.M, o.Slot, p.opBytes(o))
		}
		return fmt.Sprintf("fetch %s[%d,%d %dx%d] -> s%d bytes=%d",
			names[o.A.Arg], o.A.Row, o.A.Col, o.M, o.N, o.Slot, p.opBytes(o))
	case OpWriteback:
		if o.N == 0 {
			return fmt.Sprintf("writeback s%d -> %s[%d:+%d] bytes=%d",
				o.Slot, names[o.A.Arg], o.A.Row, o.M, p.opBytes(o))
		}
		return fmt.Sprintf("writeback s%d -> %s[%d,%d %dx%d] bytes=%d",
			o.Slot, names[o.A.Arg], o.A.Row, o.A.Col, o.M, o.N, p.opBytes(o))
	}
	switch o.Kernel {
	case KDispatch:
		return fmt.Sprintf("dispatch dur=%gs", p.DispatchS)
	case KGemm:
		return fmt.Sprintf("gemm %s m=%d n=%d k=%d alpha=%g beta=%g A=%s B=%s C=%s",
			transString(o.TransA, o.TransB), o.M, o.N, o.K, p.opAlpha(o), p.opBeta(o),
			refString(o.A, names), refString(o.B, names), refString(o.C, names))
	case KGemv:
		return fmt.Sprintf("gemv m=%d n=%d alpha=%g beta=%g A=%s x=%s y=%s",
			o.M, o.N, p.opAlpha(o), p.opBeta(o),
			refString(o.A, names), refString(o.B, names), refString(o.C, names))
	case KPotrf:
		return fmt.Sprintf("potrf uplo=%c n=%d A=%s", o.Uplo, o.N, refString(o.A, names))
	case KGetrf:
		return fmt.Sprintf("getrf n=%d A=%s", o.N, refString(o.A, names))
	case KTrsm:
		return fmt.Sprintf("trsm side=%c uplo=%c trans=%c diag=%c m=%d n=%d alpha=%g A=%s B=%s",
			o.Side, o.Uplo, transChar(o.TransA), o.Diag, o.M, o.N, p.opAlpha(o),
			refString(o.A, names), refString(o.B, names))
	case KSyrk:
		return fmt.Sprintf("syrk uplo=%c trans=%c n=%d k=%d alpha=%g beta=%g A=%s C=%s",
			o.Uplo, transChar(o.TransA), o.N, o.K, p.opAlpha(o), p.opBeta(o),
			refString(o.A, names), refString(o.C, names))
	}
	return fmt.Sprintf("axpy n=%d alpha=%g x=%s y=%s",
		o.N, p.opAlpha(o), refString(o.A, names), refString(o.C, names))
}
