package plan

import "cocopelia/internal/model"

// GemmVolumes returns, in closed form, the transfer-volume annotations the
// full-reuse gemm planner (BuildGemm) emits, without building the plan:
// each host-resident input crosses the link exactly once (tile raggedness
// cancels — the stored tiles partition the matrix), C is fetched only when
// beta contributes, and written back once when host-resident. Layers that
// only need a plan's traffic summary (the hybrid split planner) use this
// instead of materializing ops.
func GemmVolumes(spec GemmSpec) Volumes {
	sz := spec.Dtype.Size()
	mt := int64(ceil(spec.M, spec.T))
	nt := int64(ceil(spec.N, spec.T))
	kt := int64(ceil(spec.K, spec.T))
	v := Volumes{Subkernels: mt * nt * kt}
	if spec.LocA == model.OnHost {
		v.BytesH2D += int64(spec.M) * int64(spec.K) * sz
	}
	if spec.LocB == model.OnHost {
		v.BytesH2D += int64(spec.K) * int64(spec.N) * sz
	}
	if spec.LocC == model.OnHost {
		if spec.Beta != 0 {
			v.BytesH2D += int64(spec.M) * int64(spec.N) * sz
		}
		v.BytesD2H += int64(spec.M) * int64(spec.N) * sz
	}
	return v
}

// GemmNoReuseVolumes returns the closed-form annotations of the
// stateless-sub-kernel planner (BuildGemmNoReuse): every sub-kernel
// re-fetches its host-resident tiles (A crosses once per output column
// block, B once per output row block, C once per K step with a write-back
// each), independent of the staging depth.
func GemmNoReuseVolumes(spec GemmSpec) Volumes {
	sz := spec.Dtype.Size()
	mt := int64(ceil(spec.M, spec.T))
	nt := int64(ceil(spec.N, spec.T))
	kt := int64(ceil(spec.K, spec.T))
	v := Volumes{Subkernels: mt * nt * kt}
	if spec.LocA == model.OnHost {
		v.BytesH2D += nt * int64(spec.M) * int64(spec.K) * sz
	}
	if spec.LocB == model.OnHost {
		v.BytesH2D += mt * int64(spec.K) * int64(spec.N) * sz
	}
	if spec.LocC == model.OnHost {
		fetches := kt - 1
		if spec.Beta != 0 {
			fetches = kt
		}
		v.BytesH2D += fetches * int64(spec.M) * int64(spec.N) * sz
		v.BytesD2H += kt * int64(spec.M) * int64(spec.N) * sz
	}
	return v
}
