package plan

import "cocopelia/internal/model"

// GemmVolumes returns, in closed form, the transfer-volume annotations the
// full-reuse gemm planner (BuildGemm) emits, without building the plan:
// each host-resident input crosses the link exactly once (tile raggedness
// cancels — the stored tiles partition the matrix), C is fetched only when
// beta contributes, and written back once when host-resident. Layers that
// only need a plan's traffic summary (the hybrid split planner) use this
// instead of materializing ops.
func GemmVolumes(spec GemmSpec) Volumes {
	sz := spec.Dtype.Size()
	mt := int64(ceil(spec.M, spec.T))
	nt := int64(ceil(spec.N, spec.T))
	kt := int64(ceil(spec.K, spec.T))
	v := Volumes{Subkernels: mt * nt * kt}
	if spec.LocA == model.OnHost {
		v.BytesH2D += int64(spec.M) * int64(spec.K) * sz
	}
	if spec.LocB == model.OnHost {
		v.BytesH2D += int64(spec.K) * int64(spec.N) * sz
	}
	if spec.LocC == model.OnHost {
		if spec.Beta != 0 {
			v.BytesH2D += int64(spec.M) * int64(spec.N) * sz
		}
		v.BytesD2H += int64(spec.M) * int64(spec.N) * sz
	}
	return v
}

// lowerTileElems is the element count of the lower-triangle tile cover of
// an n x n matrix tiled at T: sum over tiles (i >= j) of rows_i * rows_j.
// With S = sum rows = n and Q = sum rows^2, the triangle-with-diagonal sum
// is (S^2 + Q) / 2 (always even: the cross terms pair up).
func lowerTileElems(n, T int) int64 {
	nt := int64(ceil(n, T))
	last := int64(n) - (nt-1)*int64(T)
	q := (nt-1)*int64(T)*int64(T) + last*last
	return (int64(n)*int64(n) + q) / 2
}

// CholeskyVolumes returns, in closed form, the traffic annotations of the
// tiled Cholesky planner (BuildCholesky): each lower-triangle tile crosses
// the link exactly once in each direction when A is host-resident, and the
// schedule launches nt POTRF, nt(nt-1)/2 each of TRSM and SYRK, and
// C(nt,3) GEMM tile kernels.
func CholeskyVolumes(spec CholeskySpec) Volumes {
	nt := int64(ceil(spec.N, spec.T))
	v := Volumes{Subkernels: nt + nt*(nt-1) + nt*(nt-1)*(nt-2)/6}
	if spec.LocA == model.OnHost {
		bytes := lowerTileElems(spec.N, spec.T) * spec.Dtype.Size()
		v.BytesH2D = bytes
		v.BytesD2H = bytes
	}
	return v
}

// LUVolumes returns the closed-form annotations of the tiled LU planner
// (BuildLU): the full matrix crosses once in each direction when
// host-resident, with nt GETRF, nt(nt-1) TRSM and sum_{r=1}^{nt-1} r^2
// GEMM tile kernels.
func LUVolumes(spec LUSpec) Volumes {
	nt := int64(ceil(spec.N, spec.T))
	v := Volumes{Subkernels: nt + nt*(nt-1) + (nt-1)*nt*(2*nt-1)/6}
	if spec.LocA == model.OnHost {
		bytes := int64(spec.N) * int64(spec.N) * spec.Dtype.Size()
		v.BytesH2D = bytes
		v.BytesD2H = bytes
	}
	return v
}

// TrsmVolumes returns the closed-form annotations of the tiled triangular
// solve (BuildTrsm): A's lower tile cover crosses once, B crosses once in
// and once out, and each of B's nt column blocks takes mt diagonal solves
// plus mt(mt-1)/2 update GEMMs.
func TrsmVolumes(spec TrsmSpec) Volumes {
	mt := int64(ceil(spec.M, spec.T))
	nt := int64(ceil(spec.N, spec.T))
	v := Volumes{Subkernels: nt * (mt + mt*(mt-1)/2)}
	if spec.LocA == model.OnHost {
		v.BytesH2D += lowerTileElems(spec.M, spec.T) * spec.Dtype.Size()
	}
	if spec.LocB == model.OnHost {
		bytes := int64(spec.M) * int64(spec.N) * spec.Dtype.Size()
		v.BytesH2D += bytes
		v.BytesD2H = bytes
	}
	return v
}

// GemmNoReuseVolumes returns the closed-form annotations of the
// stateless-sub-kernel planner (BuildGemmNoReuse): every sub-kernel
// re-fetches its host-resident tiles (A crosses once per output column
// block, B once per output row block, C once per K step with a write-back
// each), independent of the staging depth.
func GemmNoReuseVolumes(spec GemmSpec) Volumes {
	sz := spec.Dtype.Size()
	mt := int64(ceil(spec.M, spec.T))
	nt := int64(ceil(spec.N, spec.T))
	kt := int64(ceil(spec.K, spec.T))
	v := Volumes{Subkernels: mt * nt * kt}
	if spec.LocA == model.OnHost {
		v.BytesH2D += nt * int64(spec.M) * int64(spec.K) * sz
	}
	if spec.LocB == model.OnHost {
		v.BytesH2D += mt * int64(spec.K) * int64(spec.N) * sz
	}
	if spec.LocC == model.OnHost {
		fetches := kt - 1
		if spec.Beta != 0 {
			fetches = kt
		}
		v.BytesH2D += fetches * int64(spec.M) * int64(spec.N) * sz
		v.BytesD2H += kt * int64(spec.M) * int64(spec.N) * sz
	}
	return v
}
