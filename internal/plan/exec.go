package plan

import (
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/operand"
)

// Allocator is the staging-buffer pool a plan replays against (implemented
// by sched.Context).
type Allocator interface {
	Acquire(dt kernelmodel.Dtype, elems int64) (*cudart.DevBuffer, error)
	Release(b *cudart.DevBuffer)
}

// Target is the execution surface a plan replays onto: the three operation
// streams and the staging allocator of one scheduler context.
type Target struct {
	H2D, D2H, Comp *cudart.Stream
	Alloc          Allocator
}

// Arg binds one plan operand at replay time: exactly one of Mat/Vec is set,
// per the plan routine's argument list.
type Arg struct {
	Mat *operand.Matrix
	Vec *operand.Vector
}

// Executor replays plans onto a target. It owns reusable scratch (the
// op-id -> event table, the slot bindings and the acquired-buffer list), so
// replay allocates nothing once warm; like the scheduler context whose
// scratch it replaces, one executor supports one in-flight replay at a
// time.
type Executor struct {
	events []*cudart.Event
	slots  []*cudart.DevBuffer
	pooled []*cudart.DevBuffer
}

// resolve maps a kernel operand reference to (buffer, offset, ld).
func (e *Executor) resolve(args []Arg, r Ref) (*cudart.DevBuffer, int64, int) {
	if r.Slot >= 0 {
		return e.slots[r.Slot], 0, int(r.Row) // a slot ref's Row carries the ld
	}
	a := args[r.Arg]
	if a.Mat != nil {
		return a.Mat.Dev, int64(r.Row) + int64(r.Col)*int64(a.Mat.DevLd), a.Mat.DevLd
	}
	return a.Vec.Dev, int64(r.Row), 0
}

// Run replays p onto tgt with the operands bound by args. It issues the
// plan's stream calls in op order — each op's dependency waits first, in
// their recorded order, then the matching asynchronous call — which is
// exactly the call sequence the direct scheduler produced, so the
// simulation's event order is preserved.
//
// Run returns the staging buffers acquired from the allocator; the caller
// releases them after the engine drains. On error every acquired buffer
// has already been released.
func (e *Executor) Run(p *Plan, tgt Target, args []Arg) ([]*cudart.DevBuffer, error) {
	if len(args) != p.NumArgs() {
		return nil, fmt.Errorf("plan: %s plan wants %d operands, got %d",
			p.Routine, p.NumArgs(), len(args))
	}
	// The event table is dense over referenced ops only (Op.Ev), so the
	// pointer scratch — allocated, zeroed and GC-scanned per fresh context —
	// stays proportional to the dependency structure, not the op count.
	if cap(e.events) < p.EvSlots {
		e.events = make([]*cudart.Event, p.EvSlots)
	}
	e.events = e.events[:p.EvSlots]
	for i := range e.events {
		e.events[i] = nil
	}
	if cap(e.slots) < len(p.Slots) {
		e.slots = make([]*cudart.DevBuffer, len(p.Slots))
	}
	e.slots = e.slots[:len(p.Slots)]
	e.pooled = e.pooled[:0]

	fail := func(err error) ([]*cudart.DevBuffer, error) {
		for _, b := range e.pooled {
			tgt.Alloc.Release(b)
		}
		e.pooled = e.pooled[:0]
		return nil, err
	}

	for i := range p.Ops {
		o := &p.Ops[i]
		deps := p.deps[o.depOff : o.depOff+o.depN]
		switch o.Kind {
		case OpAlloc:
			s := p.Slots[o.Slot]
			buf, err := tgt.Alloc.Acquire(s.Dtype, s.Elems)
			if err != nil {
				return fail(err)
			}
			e.slots[o.Slot] = buf
			e.pooled = append(e.pooled, buf)

		case OpFetch:
			for _, d := range deps {
				tgt.H2D.WaitEvent(e.events[p.Ops[d].Ev])
			}
			dst := e.slots[o.Slot]
			var ev *cudart.Event
			var err error
			if o.N == 0 {
				v := args[o.A.Arg].Vec
				var host []float64
				if v.HostF64 != nil {
					host = v.HostF64[o.A.Row:]
				}
				ev, err = tgt.H2D.MemcpyH2DAsync(dst, 0, host, nil, int64(o.M))
			} else {
				m := args[o.A.Arg].Mat
				h64, h32 := m.HostSlices(int(o.A.Row), int(o.A.Col))
				ev, err = tgt.H2D.SetMatrixAsync(int(o.M), int(o.N),
					h64, h32, m.HostLd, dst, 0, int(o.M))
			}
			if err != nil {
				return fail(err)
			}
			if o.Ev >= 0 {
				e.events[o.Ev] = ev
			}

		case OpKernel:
			for _, d := range deps {
				tgt.Comp.WaitEvent(e.events[p.Ops[d].Ev])
			}
			var ev *cudart.Event
			var err error
			switch o.Kernel {
			case KDispatch:
				ev, err = tgt.Comp.KernelAsync("dispatch", p.DispatchS, nil)
			case KGemm:
				aBuf, aOff, aLd := e.resolve(args, o.A)
				bBuf, bOff, bLd := e.resolve(args, o.B)
				cBuf, cOff, cLd := e.resolve(args, o.C)
				ev, err = tgt.Comp.GemmAsync(o.TransA, o.TransB,
					int(o.M), int(o.N), int(o.K), p.opAlpha(o),
					aBuf, aOff, aLd, bBuf, bOff, bLd,
					p.opBeta(o), cBuf, cOff, cLd)
			case KGemv:
				aBuf, aOff, aLd := e.resolve(args, o.A)
				xBuf, xOff, _ := e.resolve(args, o.B)
				yBuf, yOff, _ := e.resolve(args, o.C)
				ev, err = tgt.Comp.GemvAsync(blas.NoTrans,
					int(o.M), int(o.N), p.Alpha,
					aBuf, aOff, aLd, xBuf, xOff, p.opBeta(o), yBuf, yOff)
			case KAxpy:
				xBuf, xOff, _ := e.resolve(args, o.A)
				yBuf, yOff, _ := e.resolve(args, o.C)
				ev, err = tgt.Comp.AxpyAsync(int(o.N), p.Alpha, xBuf, xOff, yBuf, yOff)
			case KPotrf:
				aBuf, aOff, aLd := e.resolve(args, o.A)
				ev, err = tgt.Comp.PotrfAsync(o.Uplo, int(o.N), aBuf, aOff, aLd)
			case KGetrf:
				aBuf, aOff, aLd := e.resolve(args, o.A)
				ev, err = tgt.Comp.GetrfAsync(int(o.N), aBuf, aOff, aLd)
			case KTrsm:
				aBuf, aOff, aLd := e.resolve(args, o.A)
				bBuf, bOff, bLd := e.resolve(args, o.B)
				ev, err = tgt.Comp.TrsmAsync(o.Side, o.Uplo, o.TransA, o.Diag,
					int(o.M), int(o.N), p.opAlpha(o),
					aBuf, aOff, aLd, bBuf, bOff, bLd)
			case KSyrk:
				aBuf, aOff, aLd := e.resolve(args, o.A)
				cBuf, cOff, cLd := e.resolve(args, o.C)
				ev, err = tgt.Comp.SyrkAsync(o.Uplo, o.TransA, int(o.N), int(o.K),
					p.opAlpha(o), aBuf, aOff, aLd,
					p.opBeta(o), cBuf, cOff, cLd)
			}
			if err != nil {
				return fail(err)
			}
			if o.Ev >= 0 {
				e.events[o.Ev] = ev
			}

		case OpWriteback:
			for _, d := range deps {
				tgt.D2H.WaitEvent(e.events[p.Ops[d].Ev])
			}
			src := e.slots[o.Slot]
			var ev *cudart.Event
			var err error
			if o.N == 0 {
				v := args[o.A.Arg].Vec
				var host []float64
				if v.HostF64 != nil {
					host = v.HostF64[o.A.Row:]
				}
				ev, err = tgt.D2H.MemcpyD2HAsync(host, nil, src, 0, int64(o.M))
			} else {
				m := args[o.A.Arg].Mat
				h64, h32 := m.HostSlices(int(o.A.Row), int(o.A.Col))
				ev, err = tgt.D2H.GetMatrixAsync(int(o.M), int(o.N),
					src, 0, int(o.M), h64, h32, m.HostLd)
			}
			if err != nil {
				return fail(err)
			}
			if o.Ev >= 0 {
				e.events[o.Ev] = ev
			}
		}
	}

	// Leave the streams in the exact state direct scheduling left them:
	// waits the schedule registered but never consumed stay pending.
	for _, id := range p.TailH2D {
		tgt.H2D.WaitEvent(e.events[p.Ops[id].Ev])
	}
	for _, id := range p.TailComp {
		tgt.Comp.WaitEvent(e.events[p.Ops[id].Ev])
	}
	return e.pooled, nil
}
