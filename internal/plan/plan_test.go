package plan

import (
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// The golden tests pin the exact op sequence — ids, kinds, dependency
// edges, slot assignments and byte volumes — of each planner on small
// shapes, via the deterministic Dump format. Any change to emission order
// is a change to the simulated event order and must show up here.

const goldenGemmHHH = `plan gemm dtype=f64 trans=nn m=4 n=2 k=4 T=2 alpha=1 beta=1 locs=HHH
slots 8
  s0 f64 elems=4
  s1 f64 elems=4
  s2 f64 elems=4
  s3 f64 elems=4
  s4 f64 elems=4
  s5 f64 elems=4
  s6 f64 elems=4
  s7 f64 elems=4
ops 22
  o0 alloc s0
  o1 fetch C[0,0 2x2] -> s0 bytes=32
  o2 alloc s1
  o3 fetch A[0,0 2x2] -> s1 bytes=32
  o4 alloc s2
  o5 fetch B[0,0 2x2] -> s2 bytes=32
  o6 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s1(ld=2) B=s2(ld=2) C=s0(ld=2) deps=[o3 o5 o1]
  o7 alloc s3
  o8 fetch A[0,2 2x2] -> s3 bytes=32
  o9 alloc s4
  o10 fetch B[2,0 2x2] -> s4 bytes=32
  o11 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s3(ld=2) B=s4(ld=2) C=s0(ld=2) deps=[o8 o10]
  o12 writeback s0 -> C[0,0 2x2] bytes=32 deps=[o11]
  o13 alloc s5
  o14 fetch C[2,0 2x2] -> s5 bytes=32
  o15 alloc s6
  o16 fetch A[2,0 2x2] -> s6 bytes=32
  o17 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s6(ld=2) B=s2(ld=2) C=s5(ld=2) deps=[o16 o5 o14]
  o18 alloc s7
  o19 fetch A[2,2 2x2] -> s7 bytes=32
  o20 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s7(ld=2) B=s4(ld=2) C=s5(ld=2) deps=[o19 o10]
  o21 writeback s5 -> C[2,0 2x2] bytes=32 deps=[o20]
volumes h2d=256 d2h=64 subkernels=4
`

const goldenGemmDHDBeta0 = `plan gemm dtype=f64 trans=nn m=4 n=2 k=2 T=2 alpha=2 beta=0 locs=DHD
slots 1
  s0 f64 elems=4
ops 4
  o0 alloc s0
  o1 fetch B[0,0 2x2] -> s0 bytes=32
  o2 gemm nn m=2 n=2 k=2 alpha=2 beta=0 A=A[0,0] B=s0(ld=2) C=C[0,0] deps=[o1]
  o3 gemm nn m=2 n=2 k=2 alpha=2 beta=0 A=A[2,0] B=s0(ld=2) C=C[2,0] deps=[o1]
volumes h2d=32 d2h=0 subkernels=2
`

const goldenGemmBlasx = `plan gemm dtype=f64 trans=tn m=2 n=2 k=2 T=2 alpha=1 beta=1 locs=HHH
slots 3
  s0 f64 elems=4
  s1 f64 elems=4
  s2 f64 elems=4
ops 9
  o0 alloc s0
  o1 fetch C[0,0 2x2] -> s0 bytes=32
  o2 alloc s1
  o3 fetch A[0,0 2x2] -> s1 bytes=32
  o4 alloc s2
  o5 fetch B[0,0 2x2] -> s2 bytes=32
  o6 dispatch dur=1e-05s deps=[o3 o5 o1]
  o7 gemm tn m=2 n=2 k=2 alpha=1 beta=1 A=s1(ld=2) B=s2(ld=2) C=s0(ld=2)
  o8 writeback s0 -> C[0,0 2x2] bytes=32 deps=[o7]
tail h2d=[] comp=[o8]
volumes h2d=96 d2h=32 subkernels=1
`

const goldenNoReuseHHH = `plan gemm-noreuse dtype=f64 trans=nn m=4 n=2 k=4 T=2 alpha=1 beta=1 locs=HHH
slots 6
  s0 f64 elems=4
  s1 f64 elems=4
  s2 f64 elems=4
  s3 f64 elems=4
  s4 f64 elems=4
  s5 f64 elems=4
ops 26
  o0 alloc s0
  o1 alloc s1
  o2 alloc s2
  o3 alloc s3
  o4 alloc s4
  o5 alloc s5
  o6 fetch A[0,0 2x2] -> s0 bytes=32
  o7 fetch B[0,0 2x2] -> s1 bytes=32
  o8 fetch C[0,0 2x2] -> s2 bytes=32
  o9 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s0(ld=2) B=s1(ld=2) C=s2(ld=2) deps=[o8]
  o10 writeback s2 -> C[0,0 2x2] bytes=32 deps=[o9]
  o11 fetch A[2,0 2x2] -> s3 bytes=32
  o12 fetch B[0,0 2x2] -> s4 bytes=32
  o13 fetch C[2,0 2x2] -> s5 bytes=32
  o14 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s3(ld=2) B=s4(ld=2) C=s5(ld=2) deps=[o13]
  o15 writeback s5 -> C[2,0 2x2] bytes=32 deps=[o14]
  o16 fetch A[0,2 2x2] -> s0 bytes=32 deps=[o9 o10]
  o17 fetch B[2,0 2x2] -> s1 bytes=32
  o18 fetch C[0,0 2x2] -> s2 bytes=32 deps=[o10]
  o19 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s0(ld=2) B=s1(ld=2) C=s2(ld=2) deps=[o18]
  o20 writeback s2 -> C[0,0 2x2] bytes=32 deps=[o19]
  o21 fetch A[2,2 2x2] -> s3 bytes=32 deps=[o14 o15]
  o22 fetch B[2,0 2x2] -> s4 bytes=32
  o23 fetch C[2,0 2x2] -> s5 bytes=32 deps=[o15]
  o24 gemm nn m=2 n=2 k=2 alpha=1 beta=1 A=s3(ld=2) B=s4(ld=2) C=s5(ld=2) deps=[o23]
  o25 writeback s5 -> C[2,0 2x2] bytes=32 deps=[o24]
volumes h2d=384 d2h=128 subkernels=4
`

const goldenGemv = `plan gemv dtype=f64 trans=nn m=4 n=4 k=0 T=2 alpha=1 beta=1 locs=HHH
slots 8
  s0 f64 elems=2
  s1 f64 elems=2
  s2 f64 elems=4
  s3 f64 elems=2
  s4 f64 elems=4
  s5 f64 elems=2
  s6 f64 elems=4
  s7 f64 elems=4
ops 22
  o0 alloc s0
  o1 fetch y[0:+2] -> s0 bytes=16
  o2 alloc s1
  o3 fetch x[0:+2] -> s1 bytes=16
  o4 alloc s2
  o5 fetch A[0,0 2x2] -> s2 bytes=32
  o6 gemv m=2 n=2 alpha=1 beta=1 A=s2(ld=2) x=s1 y=s0 deps=[o5 o3 o1]
  o7 alloc s3
  o8 fetch x[2:+2] -> s3 bytes=16
  o9 alloc s4
  o10 fetch A[0,2 2x2] -> s4 bytes=32
  o11 gemv m=2 n=2 alpha=1 beta=1 A=s4(ld=2) x=s3 y=s0 deps=[o10 o8]
  o12 writeback s0 -> y[0:+2] bytes=16 deps=[o11]
  o13 alloc s5
  o14 fetch y[2:+2] -> s5 bytes=16
  o15 alloc s6
  o16 fetch A[2,0 2x2] -> s6 bytes=32
  o17 gemv m=2 n=2 alpha=1 beta=1 A=s6(ld=2) x=s1 y=s5 deps=[o16 o3 o14]
  o18 alloc s7
  o19 fetch A[2,2 2x2] -> s7 bytes=32
  o20 gemv m=2 n=2 alpha=1 beta=1 A=s7(ld=2) x=s3 y=s5 deps=[o19 o8]
  o21 writeback s5 -> y[2:+2] bytes=16 deps=[o20]
volumes h2d=192 d2h=32 subkernels=4
`

const goldenAxpy = `plan axpy dtype=f64 trans=nn m=0 n=5 k=0 T=2 alpha=1.1 beta=0 locs=HH
slots 6
  s0 f64 elems=2
  s1 f64 elems=2
  s2 f64 elems=2
  s3 f64 elems=2
  s4 f64 elems=1
  s5 f64 elems=1
ops 18
  o0 alloc s0
  o1 fetch x[0:+2] -> s0 bytes=16
  o2 alloc s1
  o3 fetch y[0:+2] -> s1 bytes=16
  o4 axpy n=2 alpha=1.1 x=s0 y=s1 deps=[o1 o3]
  o5 writeback s1 -> y[0:+2] bytes=16 deps=[o4]
  o6 alloc s2
  o7 fetch x[2:+2] -> s2 bytes=16
  o8 alloc s3
  o9 fetch y[2:+2] -> s3 bytes=16
  o10 axpy n=2 alpha=1.1 x=s2 y=s3 deps=[o7 o9]
  o11 writeback s3 -> y[2:+2] bytes=16 deps=[o10]
  o12 alloc s4
  o13 fetch x[4:+1] -> s4 bytes=8
  o14 alloc s5
  o15 fetch y[4:+1] -> s5 bytes=8
  o16 axpy n=1 alpha=1.1 x=s4 y=s5 deps=[o13 o15]
  o17 writeback s5 -> y[4:+1] bytes=8 deps=[o16]
volumes h2d=80 d2h=40 subkernels=3
`

// goldenCholesky pins the task-graph schedule of a 3x3-tile right-
// looking Cholesky: POTRF/TRSM/SYRK/GEMM tile kernels with cross-kernel
// dependency edges, factored tiles forwarding device-side (no
// write-back/refetch between producer and consumer kernels).
const goldenCholesky = `plan cholesky dtype=f64 trans=nn m=6 n=6 k=0 T=2 alpha=1 beta=0 locs=H
slots 6
  s0 f64 elems=4
  s1 f64 elems=4
  s2 f64 elems=4
  s3 f64 elems=4
  s4 f64 elems=4
  s5 f64 elems=4
ops 28
  o0 alloc s0
  o1 fetch A[0,0 2x2] -> s0 bytes=32
  o2 potrf uplo=L n=2 A=s0(ld=2) deps=[o1]
  o3 writeback s0 -> A[0,0 2x2] bytes=32 deps=[o2]
  o4 alloc s1
  o5 fetch A[2,0 2x2] -> s1 bytes=32
  o6 trsm side=R uplo=L trans=t diag=N m=2 n=2 alpha=1 A=s0(ld=2) B=s1(ld=2) deps=[o2 o5]
  o7 writeback s1 -> A[2,0 2x2] bytes=32 deps=[o6]
  o8 alloc s2
  o9 fetch A[4,0 2x2] -> s2 bytes=32
  o10 trsm side=R uplo=L trans=t diag=N m=2 n=2 alpha=1 A=s0(ld=2) B=s2(ld=2) deps=[o2 o9]
  o11 writeback s2 -> A[4,0 2x2] bytes=32 deps=[o10]
  o12 alloc s3
  o13 fetch A[2,2 2x2] -> s3 bytes=32
  o14 syrk uplo=L trans=n n=2 k=2 alpha=-1 beta=1 A=s1(ld=2) C=s3(ld=2) deps=[o6 o13]
  o15 alloc s4
  o16 fetch A[4,2 2x2] -> s4 bytes=32
  o17 gemm nt m=2 n=2 k=2 alpha=-1 beta=1 A=s2(ld=2) B=s1(ld=2) C=s4(ld=2) deps=[o10 o6 o16]
  o18 alloc s5
  o19 fetch A[4,4 2x2] -> s5 bytes=32
  o20 syrk uplo=L trans=n n=2 k=2 alpha=-1 beta=1 A=s2(ld=2) C=s5(ld=2) deps=[o10 o19]
  o21 potrf uplo=L n=2 A=s3(ld=2) deps=[o14]
  o22 writeback s3 -> A[2,2 2x2] bytes=32 deps=[o21]
  o23 trsm side=R uplo=L trans=t diag=N m=2 n=2 alpha=1 A=s3(ld=2) B=s4(ld=2) deps=[o21 o17]
  o24 writeback s4 -> A[4,2 2x2] bytes=32 deps=[o23]
  o25 syrk uplo=L trans=n n=2 k=2 alpha=-1 beta=1 A=s4(ld=2) C=s5(ld=2) deps=[o23 o20]
  o26 potrf uplo=L n=2 A=s5(ld=2) deps=[o25]
  o27 writeback s5 -> A[4,4 2x2] bytes=32 deps=[o26]
volumes h2d=192 d2h=192 subkernels=10
`

// goldenLU pins the 3x3-tile right-looking unpivoted LU task graph:
// GETRF diagonals, upper/non-unit column-panel solves, lower/unit
// row-panel solves and the trailing GEMM updates.
const goldenLU = `plan lu dtype=f64 trans=nn m=6 n=6 k=0 T=2 alpha=1 beta=0 locs=H
slots 9
  s0 f64 elems=4
  s1 f64 elems=4
  s2 f64 elems=4
  s3 f64 elems=4
  s4 f64 elems=4
  s5 f64 elems=4
  s6 f64 elems=4
  s7 f64 elems=4
  s8 f64 elems=4
ops 41
  o0 alloc s0
  o1 fetch A[0,0 2x2] -> s0 bytes=32
  o2 getrf n=2 A=s0(ld=2) deps=[o1]
  o3 writeback s0 -> A[0,0 2x2] bytes=32 deps=[o2]
  o4 alloc s1
  o5 fetch A[2,0 2x2] -> s1 bytes=32
  o6 trsm side=R uplo=U trans=n diag=N m=2 n=2 alpha=1 A=s0(ld=2) B=s1(ld=2) deps=[o2 o5]
  o7 writeback s1 -> A[2,0 2x2] bytes=32 deps=[o6]
  o8 alloc s2
  o9 fetch A[4,0 2x2] -> s2 bytes=32
  o10 trsm side=R uplo=U trans=n diag=N m=2 n=2 alpha=1 A=s0(ld=2) B=s2(ld=2) deps=[o2 o9]
  o11 writeback s2 -> A[4,0 2x2] bytes=32 deps=[o10]
  o12 alloc s3
  o13 fetch A[0,2 2x2] -> s3 bytes=32
  o14 trsm side=L uplo=L trans=n diag=U m=2 n=2 alpha=1 A=s0(ld=2) B=s3(ld=2) deps=[o2 o13]
  o15 writeback s3 -> A[0,2 2x2] bytes=32 deps=[o14]
  o16 alloc s4
  o17 fetch A[0,4 2x2] -> s4 bytes=32
  o18 trsm side=L uplo=L trans=n diag=U m=2 n=2 alpha=1 A=s0(ld=2) B=s4(ld=2) deps=[o2 o17]
  o19 writeback s4 -> A[0,4 2x2] bytes=32 deps=[o18]
  o20 alloc s5
  o21 fetch A[2,2 2x2] -> s5 bytes=32
  o22 gemm nn m=2 n=2 k=2 alpha=-1 beta=1 A=s1(ld=2) B=s3(ld=2) C=s5(ld=2) deps=[o6 o14 o21]
  o23 alloc s6
  o24 fetch A[4,2 2x2] -> s6 bytes=32
  o25 gemm nn m=2 n=2 k=2 alpha=-1 beta=1 A=s2(ld=2) B=s3(ld=2) C=s6(ld=2) deps=[o10 o14 o24]
  o26 alloc s7
  o27 fetch A[2,4 2x2] -> s7 bytes=32
  o28 gemm nn m=2 n=2 k=2 alpha=-1 beta=1 A=s1(ld=2) B=s4(ld=2) C=s7(ld=2) deps=[o6 o18 o27]
  o29 alloc s8
  o30 fetch A[4,4 2x2] -> s8 bytes=32
  o31 gemm nn m=2 n=2 k=2 alpha=-1 beta=1 A=s2(ld=2) B=s4(ld=2) C=s8(ld=2) deps=[o10 o18 o30]
  o32 getrf n=2 A=s5(ld=2) deps=[o22]
  o33 writeback s5 -> A[2,2 2x2] bytes=32 deps=[o32]
  o34 trsm side=R uplo=U trans=n diag=N m=2 n=2 alpha=1 A=s5(ld=2) B=s6(ld=2) deps=[o32 o25]
  o35 writeback s6 -> A[4,2 2x2] bytes=32 deps=[o34]
  o36 trsm side=L uplo=L trans=n diag=U m=2 n=2 alpha=1 A=s5(ld=2) B=s7(ld=2) deps=[o32 o28]
  o37 writeback s7 -> A[2,4 2x2] bytes=32 deps=[o36]
  o38 gemm nn m=2 n=2 k=2 alpha=-1 beta=1 A=s6(ld=2) B=s7(ld=2) C=s8(ld=2) deps=[o34 o36 o31]
  o39 getrf n=2 A=s8(ld=2) deps=[o38]
  o40 writeback s8 -> A[4,4 2x2] bytes=32 deps=[o39]
volumes h2d=288 d2h=288 subkernels=14
`

// goldenTrsm pins the 2x2-tile left/lower/no-trans triangular solve:
// the first GEMM of each tile carries the alpha scale through BetaPlan
// (header beta equals alpha), row-block-0 TRSMs scale by AlphaPlan, and
// solved X tiles forward straight into the GEMMs below them.
const goldenTrsm = `plan trsm dtype=f64 trans=nn m=4 n=4 k=0 T=2 alpha=1 beta=1 locs=HH
slots 7
  s0 f64 elems=4
  s1 f64 elems=4
  s2 f64 elems=4
  s3 f64 elems=4
  s4 f64 elems=4
  s5 f64 elems=4
  s6 f64 elems=4
ops 24
  o0 alloc s0
  o1 fetch B[0,0 2x2] -> s0 bytes=32
  o2 alloc s1
  o3 fetch A[0,0 2x2] -> s1 bytes=32
  o4 trsm side=L uplo=L trans=n diag=N m=2 n=2 alpha=1 A=s1(ld=2) B=s0(ld=2) deps=[o3 o1]
  o5 writeback s0 -> B[0,0 2x2] bytes=32 deps=[o4]
  o6 alloc s2
  o7 fetch B[2,0 2x2] -> s2 bytes=32
  o8 alloc s3
  o9 fetch A[2,0 2x2] -> s3 bytes=32
  o10 gemm nn m=2 n=2 k=2 alpha=-1 beta=1 A=s3(ld=2) B=s0(ld=2) C=s2(ld=2) deps=[o9 o4 o7]
  o11 alloc s4
  o12 fetch A[2,2 2x2] -> s4 bytes=32
  o13 trsm side=L uplo=L trans=n diag=N m=2 n=2 alpha=1 A=s4(ld=2) B=s2(ld=2) deps=[o12 o10]
  o14 writeback s2 -> B[2,0 2x2] bytes=32 deps=[o13]
  o15 alloc s5
  o16 fetch B[0,2 2x2] -> s5 bytes=32
  o17 trsm side=L uplo=L trans=n diag=N m=2 n=2 alpha=1 A=s1(ld=2) B=s5(ld=2) deps=[o3 o16]
  o18 writeback s5 -> B[0,2 2x2] bytes=32 deps=[o17]
  o19 alloc s6
  o20 fetch B[2,2 2x2] -> s6 bytes=32
  o21 gemm nn m=2 n=2 k=2 alpha=-1 beta=1 A=s3(ld=2) B=s5(ld=2) C=s6(ld=2) deps=[o9 o17 o20]
  o22 trsm side=L uplo=L trans=n diag=N m=2 n=2 alpha=1 A=s4(ld=2) B=s6(ld=2) deps=[o12 o21]
  o23 writeback s6 -> B[2,2 2x2] bytes=32 deps=[o22]
volumes h2d=224 d2h=128 subkernels=6
`

func TestGoldenPlans(t *testing.T) {
	H, D := model.OnHost, model.OnDevice
	cases := []struct {
		name string
		p    *Plan
		want string
	}{
		{"gemm-hhh", BuildGemm(GemmSpec{Dtype: kernelmodel.F64,
			TransA: blas.NoTrans, TransB: blas.NoTrans,
			M: 4, N: 2, K: 4, Alpha: 1, Beta: 1,
			LocA: H, LocB: H, LocC: H, T: 2}), goldenGemmHHH},
		{"gemm-dhd-beta0", BuildGemm(GemmSpec{Dtype: kernelmodel.F64,
			TransA: blas.NoTrans, TransB: blas.NoTrans,
			M: 4, N: 2, K: 2, Alpha: 2, Beta: 0,
			LocA: D, LocB: H, LocC: D, T: 2}), goldenGemmDHDBeta0},
		{"gemm-blasx", BuildGemm(GemmSpec{Dtype: kernelmodel.F64,
			TransA: blas.Trans, TransB: blas.NoTrans,
			M: 2, N: 2, K: 2, Alpha: 1, Beta: 1,
			LocA: H, LocB: H, LocC: H, T: 2,
			DispatchOverheadS: 1e-5, BlockingWriteback: true}), goldenGemmBlasx},
		{"noreuse-hhh", BuildGemmNoReuse(GemmSpec{Dtype: kernelmodel.F64,
			TransA: blas.NoTrans, TransB: blas.NoTrans,
			M: 4, N: 2, K: 4, Alpha: 1, Beta: 1,
			LocA: H, LocB: H, LocC: H, T: 2}, 300), goldenNoReuseHHH},
		{"gemv", BuildGemv(GemvSpec{M: 4, N: 4, Alpha: 1, Beta: 1,
			LocA: H, LocX: H, LocY: H, T: 2}), goldenGemv},
		{"axpy", BuildAxpy(AxpySpec{N: 5, Alpha: 1.1, LocX: H, LocY: H, T: 2}), goldenAxpy},
		{"cholesky", BuildCholesky(CholeskySpec{Dtype: kernelmodel.F64,
			N: 6, LocA: H, T: 2}), goldenCholesky},
		{"lu", BuildLU(LUSpec{Dtype: kernelmodel.F64,
			N: 6, LocA: H, T: 2}), goldenLU},
		{"trsm", BuildTrsm(TrsmSpec{Dtype: kernelmodel.F64, Diag: blas.NonUnit,
			M: 4, N: 4, Alpha: 1, LocA: H, LocB: H, T: 2}), goldenTrsm},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Dump(); got != tc.want {
				t.Errorf("plan dump diverged from golden.\ngot:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

// planBattery builds a diverse set of plans for the structural-invariant
// and volume tests: ragged shapes, transposes, beta = 0 and every
// location extreme.
func planBattery() map[string]*Plan {
	H, D := model.OnHost, model.OnDevice
	gemm := func(ta, tb byte, m, n, k int, beta float64, la, lb, lc model.Loc, t int) GemmSpec {
		return GemmSpec{Dtype: kernelmodel.F64, TransA: ta, TransB: tb,
			M: m, N: n, K: k, Alpha: 1.5, Beta: beta, LocA: la, LocB: lb, LocC: lc, T: t}
	}
	nn := blas.NoTrans
	tt := blas.Trans
	return map[string]*Plan{
		"gemm-ragged":   BuildGemm(gemm(nn, nn, 130, 70, 95, 0.5, H, H, H, 64)),
		"gemm-trans":    BuildGemm(gemm(tt, tt, 90, 110, 70, 1, H, H, H, 64)),
		"gemm-beta0":    BuildGemm(gemm(nn, nn, 128, 64, 64, 0, H, H, H, 64)),
		"gemm-device":   BuildGemm(gemm(nn, nn, 128, 128, 128, 1, D, D, D, 64)),
		"gemm-mixed":    BuildGemm(gemm(nn, tt, 100, 60, 81, 1, D, H, H, 32)),
		"noreuse":       BuildGemmNoReuse(gemm(nn, nn, 130, 70, 95, 0.5, H, H, H, 64), 1<<30),
		"noreuse-beta0": BuildGemmNoReuse(gemm(nn, nn, 128, 64, 64, 0, H, H, H, 64), 1<<30),
		"noreuse-tight": BuildGemmNoReuse(gemm(nn, nn, 256, 256, 256, 1, H, H, H, 128), 500000),
		"gemv":          BuildGemv(GemvSpec{M: 190, N: 140, Alpha: 1, Beta: 0.25, LocA: H, LocX: H, LocY: H, T: 64}),
		"gemv-dev":      BuildGemv(GemvSpec{M: 150, N: 130, Alpha: 1, Beta: 0, LocA: D, LocX: D, LocY: H, T: 64}),
		"axpy":          BuildAxpy(AxpySpec{N: 1000, Alpha: 1.1, LocX: H, LocY: H, T: 384}),
		"axpy-dev":      BuildAxpy(AxpySpec{N: 777, Alpha: 0.75, LocX: D, LocY: D, T: 256}),
		"cholesky":      BuildCholesky(CholeskySpec{Dtype: kernelmodel.F64, N: 130, LocA: H, T: 64}),
		"cholesky-dev":  BuildCholesky(CholeskySpec{Dtype: kernelmodel.F64, N: 128, LocA: D, T: 64}),
		"lu":            BuildLU(LUSpec{Dtype: kernelmodel.F64, N: 130, LocA: H, T: 64}),
		"trsm":          BuildTrsm(TrsmSpec{Dtype: kernelmodel.F64, Diag: blas.NonUnit, M: 130, N: 70, Alpha: 0.5, LocA: H, LocB: H, T: 64}),
		"trsm-unit":     BuildTrsm(TrsmSpec{Dtype: kernelmodel.F64, Diag: blas.Unit, M: 96, N: 64, Alpha: 1, LocA: D, LocB: H, T: 32}),
	}
}

// TestPlanDepInvariants checks the structural guarantees replay relies on:
// every dependency points at an earlier, event-producing op, and tail
// waits reference real ops.
func TestPlanDepInvariants(t *testing.T) {
	for name, p := range planBattery() {
		t.Run(name, func(t *testing.T) {
			for i := range p.Ops {
				for _, d := range p.Deps(i) {
					if d < 0 || int(d) >= i {
						t.Fatalf("op %d has non-causal dep %d", i, d)
					}
					if p.Ops[d].Kind == OpAlloc {
						t.Fatalf("op %d depends on alloc op %d (no event)", i, d)
					}
				}
				if o := &p.Ops[i]; o.Kind == OpAlloc {
					if o.Slot < 0 || int(o.Slot) >= len(p.Slots) {
						t.Fatalf("alloc op %d references bad slot %d", i, o.Slot)
					}
				}
			}
			for _, id := range append(append([]int32(nil), p.TailH2D...), p.TailComp...) {
				if id < 0 || int(id) >= len(p.Ops) || p.Ops[id].Kind == OpAlloc {
					t.Fatalf("bad tail wait id %d", id)
				}
			}
		})
	}
}

// TestPlanVolumesMatchClosedForm checks that the annotations accumulated
// op-by-op during planning equal the closed-form predictions, across
// raggedness, transposes and beta handling.
func TestPlanVolumesMatchClosedForm(t *testing.T) {
	H, D := model.OnHost, model.OnDevice
	specs := []GemmSpec{
		{Dtype: kernelmodel.F64, TransA: blas.NoTrans, TransB: blas.NoTrans,
			M: 130, N: 70, K: 95, Alpha: 1, Beta: 0.5, LocA: H, LocB: H, LocC: H, T: 64},
		{Dtype: kernelmodel.F64, TransA: blas.Trans, TransB: blas.Trans,
			M: 90, N: 110, K: 70, Alpha: 1, Beta: 1, LocA: H, LocB: H, LocC: H, T: 64},
		{Dtype: kernelmodel.F32, TransA: blas.NoTrans, TransB: blas.NoTrans,
			M: 128, N: 64, K: 64, Alpha: 1, Beta: 0, LocA: H, LocB: H, LocC: H, T: 32},
		{Dtype: kernelmodel.F64, TransA: blas.NoTrans, TransB: blas.NoTrans,
			M: 128, N: 128, K: 128, Alpha: 1, Beta: 1, LocA: D, LocB: D, LocC: D, T: 64},
		{Dtype: kernelmodel.F64, TransA: blas.NoTrans, TransB: blas.Trans,
			M: 100, N: 60, K: 81, Alpha: 1, Beta: 1, LocA: D, LocB: H, LocC: H, T: 32},
	}
	for _, spec := range specs {
		if got, want := BuildGemm(spec).Volumes(), GemmVolumes(spec); got != want {
			t.Errorf("gemm %+v: built %+v, closed form %+v", spec, got, want)
		}
		if spec.TransA != blas.NoTrans || spec.TransB != blas.NoTrans {
			continue // no-reuse path is NoTrans-only
		}
		if got, want := BuildGemmNoReuse(spec, 1<<30).Volumes(), GemmNoReuseVolumes(spec); got != want {
			t.Errorf("noreuse %+v: built %+v, closed form %+v", spec, got, want)
		}
	}

	// Factorization planners: ragged and exact grids, host and device
	// residency, both TRSM diagonals.
	for _, spec := range []CholeskySpec{
		{Dtype: kernelmodel.F64, N: 130, LocA: H, T: 64},
		{Dtype: kernelmodel.F64, N: 128, LocA: D, T: 32},
		{Dtype: kernelmodel.F32, N: 96, LocA: H, T: 32},
	} {
		if got, want := BuildCholesky(spec).Volumes(), CholeskyVolumes(spec); got != want {
			t.Errorf("cholesky %+v: built %+v, closed form %+v", spec, got, want)
		}
	}
	for _, spec := range []LUSpec{
		{Dtype: kernelmodel.F64, N: 130, LocA: H, T: 64},
		{Dtype: kernelmodel.F64, N: 128, LocA: D, T: 32},
	} {
		if got, want := BuildLU(spec).Volumes(), LUVolumes(spec); got != want {
			t.Errorf("lu %+v: built %+v, closed form %+v", spec, got, want)
		}
	}
	for _, spec := range []TrsmSpec{
		{Dtype: kernelmodel.F64, Diag: blas.NonUnit, M: 130, N: 70, Alpha: 0.5, LocA: H, LocB: H, T: 64},
		{Dtype: kernelmodel.F64, Diag: blas.Unit, M: 96, N: 64, Alpha: 1, LocA: D, LocB: H, T: 32},
	} {
		if got, want := BuildTrsm(spec).Volumes(), TrsmVolumes(spec); got != want {
			t.Errorf("trsm %+v: built %+v, closed form %+v", spec, got, want)
		}
	}
}
