package plan

import (
	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// GemvSpec parameterizes the level-2 planner (y = alpha*A*x + beta*y,
// float64, A stored MxN).
type GemvSpec struct {
	M, N              int
	Alpha, Beta       float64
	LocA, LocX, LocY  model.Loc
	T                 int
	BlockingWriteback bool
}

// BuildGemv emits the level-2 schedule: A tiles fetched per sub-kernel, x
// chunks fetched once and reused down each tile column, y chunks
// accumulating on the device and written back once per tile row.
func BuildGemv(spec GemvSpec) *Plan {
	T := spec.T
	mt := ceil(spec.M, T)
	nt := ceil(spec.N, T)

	p := &Plan{
		Routine: "gemv", Dtype: kernelmodel.F64,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: spec.M, N: spec.N, T: T,
		Alpha: spec.Alpha, Beta: spec.Beta,
		Locs: []model.Loc{spec.LocA, spec.LocX, spec.LocY},
	}
	b := &builder{p: p}

	// x chunks: fetched once, reused by every tile row.
	xChunks := make([]tileState, nt)
	getX := func(tj, n int) *tileState {
		ch := &xChunks[tj]
		if ch.live {
			return ch
		}
		ch.live = true
		if spec.LocX == model.OnDevice {
			ch.ref = argRef(1, int32(tj*T), 0)
			ch.ready = -1
			return ch
		}
		slot := b.slot(kernelmodel.F64, int64(n))
		b.alloc(slot)
		ch.ref = slotRef(slot, 0)
		o, id := b.emit()
		o.Kind, o.Slot = OpFetch, slot
		o.A, o.M = argRef(1, int32(tj*T), 0), int32(n)
		ch.ready = id
		p.BytesH2D += int64(n) * 8
		return ch
	}

	pendingWB := int32(-1)
	lastComp := int32(-1)

	for ti := 0; ti < mt; ti++ {
		rows := min(T, spec.M-ti*T)
		var yRef Ref
		ySlot := int32(-1)
		yReady := int32(-1)
		if spec.LocY == model.OnDevice {
			yRef = argRef(2, int32(ti*T), 0)
		} else {
			ySlot = b.slot(kernelmodel.F64, int64(rows))
			b.alloc(ySlot)
			yRef = slotRef(ySlot, 0)
			if spec.Beta != 0 {
				o, id := b.emit()
				o.Kind, o.Slot = OpFetch, ySlot
				o.A, o.M = argRef(2, int32(ti*T), 0), int32(rows)
				yReady = id
				p.BytesH2D += int64(rows) * 8
			}
		}

		for tj := 0; tj < nt; tj++ {
			cols := min(T, spec.N-tj*T)
			xc := getX(tj, cols)
			aRef := argRef(0, int32(ti*T), int32(tj*T))
			aReady := int32(-1)
			if spec.LocA == model.OnHost {
				slot := b.slot(kernelmodel.F64, int64(rows)*int64(cols))
				b.alloc(slot)
				o, id := b.emit()
				o.Kind, o.Slot = OpFetch, slot
				o.A = argRef(0, int32(ti*T), int32(tj*T))
				o.M, o.N = int32(rows), int32(cols)
				aReady = id
				p.BytesH2D += int64(rows) * int64(cols) * 8
				aRef = slotRef(slot, int32(rows))
			}

			// Compute-stream waits, in registration order: pending blocking
			// write-back, the A fetch, the x chunk, then (first column only)
			// the y chunk.
			b.dep(pendingWB)
			pendingWB = -1
			b.dep(aReady)
			b.dep(xc.ready)
			beta := 1.0
			if tj == 0 {
				b.dep(yReady)
				beta = spec.Beta
				if spec.LocY == model.OnHost && spec.Beta == 0 {
					beta = 0
				}
			}
			o, kid := b.emit()
			o.Kind, o.Kernel = OpKernel, KGemv
			o.M, o.N = int32(rows), int32(cols)
			o.Beta = betaSel(beta)
			o.A, o.B, o.C = aRef, xc.ref, yRef
			lastComp = kid
			p.Subkernels++
		}

		if spec.LocY == model.OnHost {
			b.dep(lastComp)
			o, wb := b.emit()
			o.Kind, o.Slot = OpWriteback, ySlot
			o.A, o.M = argRef(2, int32(ti*T), 0), int32(rows)
			p.BytesD2H += int64(rows) * 8
			if spec.BlockingWriteback {
				pendingWB = wb
			}
		}
	}
	if pendingWB >= 0 {
		p.TailComp = append(p.TailComp, pendingWB)
	}
	return finish(p)
}

// AxpySpec parameterizes the level-1 planner (y += alpha*x, float64).
type AxpySpec struct {
	N          int
	Alpha      float64
	LocX, LocY model.Loc
	T          int
}

// BuildAxpy emits the level-1 schedule: independent 1-D chunks, each with
// its own staging slots, pipelined across the three streams.
func BuildAxpy(spec AxpySpec) *Plan {
	p := &Plan{
		Routine: "axpy", Dtype: kernelmodel.F64,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		N: spec.N, T: spec.T,
		Alpha: spec.Alpha,
		Locs:  []model.Loc{spec.LocX, spec.LocY},
	}
	b := &builder{p: p}

	chunks := ceil(spec.N, spec.T)
	for ci := 0; ci < chunks; ci++ {
		off := ci * spec.T
		n := min(spec.T, spec.N-off)

		chunk := func(arg int8) (Ref, int32) {
			if p.Locs[arg] == model.OnDevice {
				return argRef(arg, int32(off), 0), -1
			}
			slot := b.slot(kernelmodel.F64, int64(n))
			b.alloc(slot)
			o, ready := b.emit()
			o.Kind, o.Slot = OpFetch, slot
			o.A, o.M = argRef(arg, int32(off), 0), int32(n)
			p.BytesH2D += int64(n) * 8
			return slotRef(slot, 0), ready
		}
		xRef, xReady := chunk(0)
		yRef, yReady := chunk(1)

		b.dep(xReady)
		b.dep(yReady)
		o, kid := b.emit()
		o.Kind, o.Kernel = OpKernel, KAxpy
		o.N = int32(n)
		o.A, o.C = xRef, yRef
		p.Subkernels++

		if spec.LocY == model.OnHost {
			b.dep(kid)
			o, _ := b.emit()
			o.Kind, o.Slot = OpWriteback, yRef.Slot
			o.A, o.M = argRef(1, int32(off), 0), int32(n)
			p.BytesD2H += int64(n) * 8
		}
	}
	return finish(p)
}
