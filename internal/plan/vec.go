package plan

import (
	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// GemvSpec parameterizes the level-2 planner (y = alpha*A*x + beta*y,
// float64, A stored MxN).
type GemvSpec struct {
	M, N              int
	Alpha, Beta       float64
	LocA, LocX, LocY  model.Loc
	T                 int
	BlockingWriteback bool
}

// BuildGemv emits the level-2 schedule: A tiles fetched per sub-kernel, x
// chunks fetched once and reused down each tile column, y chunks
// accumulating on the device and written back once per tile row.
func BuildGemv(spec GemvSpec) *Plan {
	T := spec.T
	mt := ceil(spec.M, T)
	nt := ceil(spec.N, T)

	p := &Plan{
		Routine: "gemv", Dtype: kernelmodel.F64,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: spec.M, N: spec.N, T: T,
		Alpha: spec.Alpha, Beta: spec.Beta,
		Locs: []model.Loc{spec.LocA, spec.LocX, spec.LocY},
	}
	g := NewGraph(p)

	// x chunks: fetched once, reused by every tile row.
	xChunks := make([]tileState, nt)
	getX := func(tj, n int) *tileState {
		ch := &xChunks[tj]
		if ch.live {
			return ch
		}
		ch.live = true
		if spec.LocX == model.OnDevice {
			ch.ref = ArgRef(1, int32(tj*T), 0)
			ch.ready = NoOp
			return ch
		}
		slot := g.Slot(kernelmodel.F64, int64(n))
		g.Alloc(slot)
		ch.ref = SlotRef(slot, 0)
		ch.ready = g.FetchVec(1, int32(tj*T), int32(n), slot)
		return ch
	}

	pendingWB := NoOp
	lastComp := NoOp
	var depBuf []OpID

	for ti := 0; ti < mt; ti++ {
		rows := min(T, spec.M-ti*T)
		var yRef Ref
		ySlot := int32(-1)
		yReady := NoOp
		if spec.LocY == model.OnDevice {
			yRef = ArgRef(2, int32(ti*T), 0)
		} else {
			ySlot = g.Slot(kernelmodel.F64, int64(rows))
			g.Alloc(ySlot)
			yRef = SlotRef(ySlot, 0)
			if spec.Beta != 0 {
				yReady = g.FetchVec(2, int32(ti*T), int32(rows), ySlot)
			}
		}

		for tj := 0; tj < nt; tj++ {
			cols := min(T, spec.N-tj*T)
			xc := getX(tj, cols)
			aRef := ArgRef(0, int32(ti*T), int32(tj*T))
			aReady := NoOp
			if spec.LocA == model.OnHost {
				slot := g.Slot(kernelmodel.F64, int64(rows)*int64(cols))
				g.Alloc(slot)
				aReady = g.Fetch(0, int32(ti*T), int32(tj*T), int32(rows), int32(cols), slot)
				aRef = SlotRef(slot, int32(rows))
			}

			// Compute-stream waits, in registration order: pending blocking
			// write-back, the A fetch, the x chunk, then (first column only)
			// the y chunk.
			depBuf = append(depBuf[:0], pendingWB, aReady, xc.ready)
			pendingWB = NoOp
			beta := 1.0
			if tj == 0 {
				depBuf = append(depBuf, yReady)
				beta = spec.Beta
				if spec.LocY == model.OnHost && spec.Beta == 0 {
					beta = 0
				}
			}
			lastComp = g.Gemv(int32(rows), int32(cols), betaSel(beta),
				aRef, xc.ref, yRef, depBuf...)
		}

		if spec.LocY == model.OnHost {
			wb := g.WritebackVec(ySlot, 2, int32(ti*T), int32(rows), lastComp)
			if spec.BlockingWriteback {
				pendingWB = wb
			}
		}
	}
	g.TailComp(pendingWB)
	return g.Finish()
}

// AxpySpec parameterizes the level-1 planner (y += alpha*x, float64).
type AxpySpec struct {
	N          int
	Alpha      float64
	LocX, LocY model.Loc
	T          int
}

// BuildAxpy emits the level-1 schedule: independent 1-D chunks, each with
// its own staging slots, pipelined across the three streams.
func BuildAxpy(spec AxpySpec) *Plan {
	p := &Plan{
		Routine: "axpy", Dtype: kernelmodel.F64,
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		N: spec.N, T: spec.T,
		Alpha: spec.Alpha,
		Locs:  []model.Loc{spec.LocX, spec.LocY},
	}
	g := NewGraph(p)

	chunks := ceil(spec.N, spec.T)
	for ci := 0; ci < chunks; ci++ {
		off := ci * spec.T
		n := min(spec.T, spec.N-off)

		chunk := func(arg int8) (Ref, OpID) {
			if p.Locs[arg] == model.OnDevice {
				return ArgRef(arg, int32(off), 0), NoOp
			}
			slot := g.Slot(kernelmodel.F64, int64(n))
			g.Alloc(slot)
			ready := g.FetchVec(arg, int32(off), int32(n), slot)
			return SlotRef(slot, 0), ready
		}
		xRef, xReady := chunk(0)
		yRef, yReady := chunk(1)

		kid := g.Axpy(int32(n), xRef, yRef, xReady, yReady)

		if spec.LocY == model.OnHost {
			g.WritebackVec(yRef.Slot, 1, int32(off), int32(n), kid)
		}
	}
	return g.Finish()
}
