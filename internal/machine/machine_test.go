package machine

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCanonicalTestbedsValidate(t *testing.T) {
	for _, tb := range Testbeds() {
		if err := tb.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tb.Name, err)
		}
	}
}

func TestTestbedIIFasterLinkSlowerOverlap(t *testing.T) {
	// Table II: Testbed II has ~3x the bandwidth of Testbed I but larger
	// bidirectional slowdowns in both directions.
	a, b := TestbedI(), TestbedII()
	if b.H2D.BandwidthBps < 2.5*a.H2D.BandwidthBps {
		t.Error("Testbed II h2d bandwidth should be ~3x Testbed I")
	}
	if b.H2D.BidSlowdown <= a.H2D.BidSlowdown || b.D2H.BidSlowdown <= a.D2H.BidSlowdown {
		t.Error("Testbed II should have larger bidirectional slowdowns")
	}
	if a.D2H.BidSlowdown <= a.H2D.BidSlowdown {
		t.Error("d2h should be more affected than h2d by bidirectional use")
	}
}

func TestBandwidthPerFlopOrdering(t *testing.T) {
	// Section V: Testbed II has a lower bandwidth/FLOP ratio, so transfers
	// are a bigger bottleneck there.
	a, b := TestbedI(), TestbedII()
	ra := a.H2D.BandwidthBps / a.GPU.PeakFlops64
	rb := b.H2D.BandwidthBps / b.GPU.PeakFlops64
	if rb >= ra {
		t.Errorf("bandwidth/FLOP: Testbed II (%g) should be below Testbed I (%g)", rb, ra)
	}
}

func TestLinkTimeFor(t *testing.T) {
	p := LinkParams{LatencyS: 1e-5, BandwidthBps: 1e9, BidSlowdown: 1}
	got := p.TimeFor(1e9)
	want := 1.00001
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("TimeFor = %v, want %v", got, want)
	}
	if p.TimeFor(0) != p.LatencyS {
		t.Error("zero-byte transfer should cost exactly the latency")
	}
}

func TestLinkAccessor(t *testing.T) {
	tb := TestbedI()
	if tb.Link(H2D) != tb.H2D || tb.Link(D2H) != tb.D2H {
		t.Error("Link accessor mismatch")
	}
}

func TestLinkDirString(t *testing.T) {
	if H2D.String() != "h2d" || D2H.String() != "d2h" {
		t.Error("LinkDir string names wrong")
	}
	if LinkDir(9).String() == "" {
		t.Error("unknown direction should still render")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Testbed){
		func(tb *Testbed) { tb.Name = "" },
		func(tb *Testbed) { tb.H2D.BandwidthBps = 0 },
		func(tb *Testbed) { tb.D2H.LatencyS = -1 },
		func(tb *Testbed) { tb.H2D.BidSlowdown = 0.9 },
		func(tb *Testbed) { tb.GPU.PeakFlops64 = 0 },
		func(tb *Testbed) { tb.GPU.MemBandwidthBps = -1 },
		func(tb *Testbed) { tb.GPU.MemBytes = 0 },
		func(tb *Testbed) { tb.GPU.KernelLaunchS = -1e-9 },
		func(tb *Testbed) { tb.GPU.MaxEff64 = 1.5 },
		func(tb *Testbed) { tb.GPU.MaxEff32 = 0 },
		func(tb *Testbed) { tb.GPU.EffHalfDim = 0 },
		func(tb *Testbed) { tb.GPU.EffSharpness = -2 },
		func(tb *Testbed) { tb.GPU.SpikeAmp = 1 },
		func(tb *Testbed) { tb.GPU.NoiseSigma = -0.1 },
	}
	for i, mutate := range cases {
		tb := TestbedI()
		mutate(tb)
		if err := tb.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestByName(t *testing.T) {
	tb, err := ByName("Testbed II")
	if err != nil || tb.GPU.Name == "" {
		t.Fatalf("ByName: %v", err)
	}
	if _, err := ByName("Testbed III"); err == nil {
		t.Error("unknown testbed should error")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tb.json")
	orig := TestbedII()
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *orig {
		t.Errorf("round trip mismatch:\n got  %+v\n want %+v", got, orig)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := writeFile(bad, "{not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil {
		t.Error("malformed JSON should error")
	}
	invalid := filepath.Join(dir, "invalid.json")
	if err := writeFile(invalid, `{"name":"x","h2d":{"bandwidth_Bps":0}}`); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(invalid); err == nil {
		t.Error("invalid testbed should fail validation on load")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
