// Package machine describes the simulated testbeds. Each Testbed carries
// the ground-truth hardware parameters of the discrete-event GPU simulator:
// the PCIe link (latency, bandwidth and bidirectional slowdown per
// direction, after the paper's Table II), and the GPU compute/memory
// characteristics (after the paper's Table III).
//
// These are the parameters the machine *has*; the CoCoPeLia deployment
// phase (internal/microbench) re-discovers them empirically through
// micro-benchmarks, exactly as the paper does on real hardware, and it is
// those fitted values — not the ground truth — that feed the prediction
// models.
package machine

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
)

// LinkDir identifies a transfer direction across the host-device link. It
// is a byte so hot per-operation structs (cudart ops, plan tape entries)
// can pack it next to their other small scalars.
type LinkDir uint8

const (
	// H2D is a host-to-device transfer.
	H2D LinkDir = iota
	// D2H is a device-to-host transfer.
	D2H
)

// String returns the conventional short name of the direction.
func (d LinkDir) String() string {
	switch d {
	case H2D:
		return "h2d"
	case D2H:
		return "d2h"
	}
	return fmt.Sprintf("LinkDir(%d)", int(d))
}

// LinkParams is the ground truth for one transfer direction.
type LinkParams struct {
	// LatencyS is the fixed per-transfer setup latency t_l in seconds.
	LatencyS float64 `json:"latency_s"`
	// BandwidthBps is the unidirectional bandwidth 1/t_b in bytes/second.
	BandwidthBps float64 `json:"bandwidth_Bps"`
	// BidSlowdown is the factor (>= 1) by which the transfer slows down
	// while the opposite direction is simultaneously active.
	BidSlowdown float64 `json:"bid_slowdown"`
}

// TimeFor returns the unidirectional (uncontended) transfer time for the
// given payload in bytes.
func (p LinkParams) TimeFor(bytes int64) float64 {
	return p.LatencyS + float64(bytes)/p.BandwidthBps
}

// GPUSpec is the ground truth for the simulated device.
type GPUSpec struct {
	Name string `json:"name"`
	// PeakFlops64 and PeakFlops32 are the double- and single-precision
	// peak throughputs in FLOP/s.
	PeakFlops64 float64 `json:"peak_flops_fp64"`
	PeakFlops32 float64 `json:"peak_flops_fp32"`
	// MemBandwidthBps is the device-memory bandwidth in bytes/second,
	// used by the roofline for bandwidth-bound (e.g. level-1) kernels.
	MemBandwidthBps float64 `json:"mem_bandwidth_Bps"`
	// MemBytes is the device memory capacity.
	MemBytes int64 `json:"mem_bytes"`
	// KernelLaunchS is the fixed kernel-launch overhead in seconds.
	KernelLaunchS float64 `json:"kernel_launch_s"`
	// MaxEff64/MaxEff32 are the asymptotic fractions of peak that large
	// gemm kernels achieve (cuBLAS never quite reaches peak).
	MaxEff64 float64 `json:"max_eff_fp64"`
	MaxEff32 float64 `json:"max_eff_fp32"`
	// EffHalfDim is the problem dimension (cube-root of M*N*K) at which
	// gemm efficiency reaches half of its asymptote; it controls how fast
	// small tiles lose efficiency (GPU underutilization).
	EffHalfDim float64 `json:"eff_half_dim"`
	// EffSharpness is the exponent of the saturation curve.
	EffSharpness float64 `json:"eff_sharpness"`
	// SpikeAmp is the amplitude of deterministic per-size performance
	// perturbations ("spikes"); the paper observes these on the V100 and
	// not on the K40.
	SpikeAmp float64 `json:"spike_amp"`
	// NoiseSigma is the relative standard deviation of per-invocation
	// multiplicative timing noise (kernels and transfers alike).
	NoiseSigma float64 `json:"noise_sigma"`
}

// HostSpec is the ground truth for the host CPU's compute capability,
// used by the host-assisted execution extension. Host-resident data needs
// no transfers, so only throughput matters.
type HostSpec struct {
	// PeakFlops64/PeakFlops32 are the CPU's peak throughputs in FLOP/s.
	PeakFlops64 float64 `json:"peak_flops_fp64"`
	PeakFlops32 float64 `json:"peak_flops_fp32"`
	// GemmEff is the fraction of peak a tuned CPU gemm achieves.
	GemmEff float64 `json:"gemm_eff"`
}

// GemmTime returns the host execution time of an MxNxK gemm.
func (h HostSpec) GemmTime(f64 bool, m, n, k int) float64 {
	peak := h.PeakFlops64
	if !f64 {
		peak = h.PeakFlops32
	}
	if peak <= 0 || m <= 0 || n <= 0 || k <= 0 {
		return 0
	}
	return 2 * float64(m) * float64(n) * float64(k) / (peak * h.GemmEff)
}

// Testbed is one complete simulated machine.
type Testbed struct {
	Name string     `json:"name"`
	CPU  string     `json:"cpu"`
	PCIe string     `json:"pcie"`
	H2D  LinkParams `json:"h2d"`
	D2H  LinkParams `json:"d2h"`
	GPU  GPUSpec    `json:"gpu"`
	Host HostSpec   `json:"host"`
}

// Link returns the link parameters for the given direction.
func (t *Testbed) Link(dir LinkDir) LinkParams {
	if dir == H2D {
		return t.H2D
	}
	return t.D2H
}

// Validate checks that all parameters are physically meaningful.
func (t *Testbed) Validate() error {
	if t.Name == "" {
		return errors.New("machine: testbed has no name")
	}
	for _, l := range []struct {
		n string
		p LinkParams
	}{{"h2d", t.H2D}, {"d2h", t.D2H}} {
		if l.p.BandwidthBps <= 0 {
			return fmt.Errorf("machine: %s: %s bandwidth must be positive", t.Name, l.n)
		}
		if l.p.LatencyS < 0 {
			return fmt.Errorf("machine: %s: %s latency must be non-negative", t.Name, l.n)
		}
		if l.p.BidSlowdown < 1 {
			return fmt.Errorf("machine: %s: %s bidirectional slowdown must be >= 1", t.Name, l.n)
		}
	}
	g := t.GPU
	switch {
	case g.PeakFlops64 <= 0 || g.PeakFlops32 <= 0:
		return fmt.Errorf("machine: %s: peak FLOP/s must be positive", t.Name)
	case g.MemBandwidthBps <= 0:
		return fmt.Errorf("machine: %s: memory bandwidth must be positive", t.Name)
	case g.MemBytes <= 0:
		return fmt.Errorf("machine: %s: memory capacity must be positive", t.Name)
	case g.KernelLaunchS < 0:
		return fmt.Errorf("machine: %s: launch overhead must be non-negative", t.Name)
	case g.MaxEff64 <= 0 || g.MaxEff64 > 1 || g.MaxEff32 <= 0 || g.MaxEff32 > 1:
		return fmt.Errorf("machine: %s: max efficiency must be in (0, 1]", t.Name)
	case g.EffHalfDim <= 0 || g.EffSharpness <= 0:
		return fmt.Errorf("machine: %s: efficiency curve parameters must be positive", t.Name)
	case g.SpikeAmp < 0 || g.SpikeAmp >= 1 || g.NoiseSigma < 0 || g.NoiseSigma >= 1:
		return fmt.Errorf("machine: %s: spike/noise amplitudes must be in [0, 1)", t.Name)
	}
	h := t.Host
	if h.PeakFlops64 < 0 || h.PeakFlops32 < 0 || h.GemmEff < 0 || h.GemmEff > 1 {
		return fmt.Errorf("machine: %s: host spec out of range", t.Name)
	}
	return nil
}

const (
	gb = 1e9
	// GiB is the device-memory unit used in the testbed definitions.
	GiB = int64(1) << 30
)

// TestbedI returns the simulated equivalent of the paper's Testbed I:
// an NVIDIA Tesla K40 behind PCIe Gen2 x8. Link parameters follow Table II
// (≈3.15/3.29 GB/s with mild bidirectional slowdown), compute parameters
// follow the K40 datasheet values referenced in Table III.
func TestbedI() *Testbed {
	return &Testbed{
		Name: "Testbed I",
		CPU:  "Intel Core i7-4820K (simulated host)",
		PCIe: "Gen2 x8",
		H2D:  LinkParams{LatencyS: 12e-6, BandwidthBps: 3.15 * gb, BidSlowdown: 1.03},
		D2H:  LinkParams{LatencyS: 11e-6, BandwidthBps: 3.29 * gb, BidSlowdown: 1.16},
		GPU: GPUSpec{
			Name:            "NVIDIA Tesla K40 (simulated)",
			PeakFlops64:     1.43e12,
			PeakFlops32:     4.29e12,
			MemBandwidthBps: 288 * gb,
			MemBytes:        12 * GiB,
			KernelLaunchS:   9e-6,
			MaxEff64:        0.92,
			MaxEff32:        0.88,
			EffHalfDim:      300,
			EffSharpness:    1.8,
			SpikeAmp:        0.012,
			NoiseSigma:      0.012,
		},
		Host: HostSpec{
			PeakFlops64: 118e9, // 4 cores x AVX FMA x 3.7 GHz
			PeakFlops32: 236e9,
			GemmEff:     0.85,
		},
	}
}

// TestbedII returns the simulated equivalent of the paper's Testbed II:
// an NVIDIA Tesla V100 behind PCIe Gen3 x16. Table II reports ≈12.18/12.98
// GB/s with pronounced bidirectional slowdowns (1.27/1.41); the V100 also
// shows per-size performance spikes that the K40 does not.
func TestbedII() *Testbed {
	return &Testbed{
		Name: "Testbed II",
		CPU:  "Intel Xeon Gold 6138 (simulated host)",
		PCIe: "Gen3 x16",
		H2D:  LinkParams{LatencyS: 7e-6, BandwidthBps: 12.18 * gb, BidSlowdown: 1.27},
		D2H:  LinkParams{LatencyS: 7e-6, BandwidthBps: 12.98 * gb, BidSlowdown: 1.41},
		GPU: GPUSpec{
			Name:            "NVIDIA Tesla V100 (simulated)",
			PeakFlops64:     7.0e12,
			PeakFlops32:     14.0e12,
			MemBandwidthBps: 900 * gb,
			MemBytes:        32 * GiB,
			KernelLaunchS:   5e-6,
			MaxEff64:        0.94,
			MaxEff32:        0.92,
			EffHalfDim:      520,
			EffSharpness:    1.7,
			SpikeAmp:        0.06,
			NoiseSigma:      0.015,
		},
		Host: HostSpec{
			PeakFlops64: 1.28e12, // 20 cores x AVX-512 FMA x 2.0 GHz
			PeakFlops32: 2.56e12,
			GemmEff:     0.80,
		},
	}
}

// Testbeds returns both canonical testbeds in paper order.
func Testbeds() []*Testbed { return []*Testbed{TestbedI(), TestbedII()} }

// ByName returns the canonical testbed with the given name ("Testbed I" or
// "Testbed II", case-sensitive), or an error.
func ByName(name string) (*Testbed, error) {
	for _, tb := range Testbeds() {
		if tb.Name == name {
			return tb, nil
		}
	}
	return nil, fmt.Errorf("machine: unknown testbed %q", name)
}

// Save writes the testbed as indented JSON to path.
func (t *Testbed) Save(path string) error {
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("machine: marshal %s: %w", t.Name, err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a testbed from a JSON file and validates it.
func Load(path string) (*Testbed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	var t Testbed
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("machine: parse %s: %w", path, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
