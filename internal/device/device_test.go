package device

import (
	"errors"
	"math"
	"testing"

	"cocopelia/internal/machine"
	"cocopelia/internal/sim"
)

func newDev(noiseless bool) (*sim.Engine, *Device) {
	eng := sim.New()
	return eng, New(eng, machine.TestbedI(), 1, noiseless)
}

func TestKernelSerialization(t *testing.T) {
	eng, d := newDev(true)
	var ends []sim.Time
	for i := 0; i < 3; i++ {
		d.LaunchKernel("k", 1.0, nil, func() { ends = append(ends, eng.Now()) })
	}
	eng.Run()
	want := []sim.Time{1, 2, 3}
	for i := range want {
		if math.Abs(ends[i]-want[i]) > 1e-12 {
			t.Errorf("kernel %d ended at %v, want %v", i, ends[i], want[i])
		}
	}
	st := d.ComputeStats()
	if st.Kernels != 3 || math.Abs(st.BusySeconds-3) > 1e-12 {
		t.Errorf("compute stats %+v", st)
	}
}

func TestKernelPayloadRunsBeforeDone(t *testing.T) {
	eng, d := newDev(true)
	var order []string
	d.LaunchKernel("k", 0.5,
		func() { order = append(order, "payload") },
		func() { order = append(order, "done") })
	eng.Run()
	if len(order) != 2 || order[0] != "payload" || order[1] != "done" {
		t.Errorf("order = %v", order)
	}
}

func TestKernelObserver(t *testing.T) {
	eng, d := newDev(true)
	var names []string
	d.SetKernelObserver(func(name string, start, end sim.Time) {
		names = append(names, name)
		if end <= start {
			t.Error("empty kernel interval")
		}
	})
	d.LaunchKernel("dgemm", 0.1, nil, nil)
	d.LaunchKernel("sgemm", 0.1, nil, nil)
	eng.Run()
	if len(names) != 2 || names[0] != "dgemm" || names[1] != "sgemm" {
		t.Errorf("observed %v", names)
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	_, d := newDev(true)
	defer func() {
		if recover() == nil {
			t.Error("negative duration should panic")
		}
	}()
	d.LaunchKernel("k", -1, nil, nil)
}

func TestCompletionCallbackCanEnqueue(t *testing.T) {
	eng, d := newDev(true)
	var secondEnd sim.Time
	d.LaunchKernel("a", 1, nil, func() {
		d.LaunchKernel("b", 1, nil, func() { secondEnd = eng.Now() })
	})
	eng.Run()
	if math.Abs(secondEnd-2) > 1e-12 {
		t.Errorf("chained kernel ended at %v, want 2", secondEnd)
	}
}

func TestNoiseDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) sim.Time {
		eng := sim.New()
		d := New(eng, machine.TestbedII(), seed, false)
		var end sim.Time
		d.LaunchKernel("k", 1.0, nil, func() { end = eng.Now() })
		eng.Run()
		return end
	}
	if run(7) != run(7) {
		t.Error("same seed should reproduce exactly")
	}
	if run(7) == run(8) {
		t.Error("different seeds should differ")
	}
	if v := run(7); v < 0.8 || v > 1.2 {
		t.Errorf("noisy duration %v too far from nominal 1.0", v)
	}
}

func TestMalloc(t *testing.T) {
	_, d := newDev(true)
	total := d.Testbed().GPU.MemBytes
	b1, err := d.Malloc(total / 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != total/2 || b1.Size() != total/2 {
		t.Error("accounting wrong after alloc")
	}
	if _, err := d.Malloc(total); !errors.Is(err, ErrOutOfMemory) {
		t.Errorf("over-allocation should be ErrOutOfMemory, got %v", err)
	}
	if _, err := d.Malloc(-5); err == nil {
		t.Error("negative allocation should error")
	}
	if err := d.Free(b1); err != nil {
		t.Fatal(err)
	}
	if d.MemUsed() != 0 {
		t.Error("free did not release memory")
	}
	if err := d.Free(b1); err == nil {
		t.Error("double free should error")
	}
	if err := d.Free(nil); err == nil {
		t.Error("nil free should error")
	}
	if d.MemPeak() != total/2 {
		t.Errorf("peak = %d, want %d", d.MemPeak(), total/2)
	}
}

func TestTransferAndComputeOverlap(t *testing.T) {
	// A 1-second kernel launched together with a h2d transfer: both make
	// progress concurrently, ending near max(t_kernel, t_transfer).
	eng, d := newDev(true)
	tb := d.Testbed()
	bytes := int64(tb.H2D.BandwidthBps) // ~1 second of transfer
	var kernelEnd, xferEnd sim.Time
	d.LaunchKernel("k", 1.0, nil, func() { kernelEnd = eng.Now() })
	d.Link().Submit(machine.H2D, bytes, func() { xferEnd = eng.Now() })
	end := eng.Run()
	if kernelEnd == 0 || xferEnd == 0 {
		t.Fatal("callbacks missing")
	}
	if end > 1.1 {
		t.Errorf("overlapped execution took %v, want ~1.0 (no serialization)", end)
	}
}
