// Package device assembles the simulated GPU of a testbed: a single
// compute engine that executes kernels one at a time in FIFO order (the way
// consecutive cuBLAS kernels serialize on a saturated device), the two
// directional copy engines provided by the link model, and a device-memory
// accountant.
//
// The device is purely an execution-timing substrate. Kernel durations are
// supplied by the caller (the cudart layer computes them from the
// kernelmodel ground truth); the device adds per-invocation multiplicative
// noise and serializes execution on the virtual clock. Functional payloads
// — closures that perform the actual BLAS arithmetic on backed buffers —
// run at kernel completion, so numerics and timing stay consistent.
package device

import (
	"errors"
	"fmt"
	"math/rand"

	"cocopelia/internal/link"
	"cocopelia/internal/machine"
	"cocopelia/internal/sim"
)

// KernelObserver receives every executed kernel interval for tracing.
type KernelObserver func(name string, start, end sim.Time)

// Buffer is a device-memory allocation. It only accounts for capacity;
// typed storage for functional runs lives in the cudart layer.
type Buffer struct {
	size  int64
	freed bool
}

// Size returns the allocation size in bytes.
func (b *Buffer) Size() int64 { return b.size }

// kernelTask is one queued kernel execution. Tasks recycle through the
// device free list at completion, and the fire closure is created once per
// task object, so steady-state launches allocate nothing.
type kernelTask struct {
	dev      *Device
	name     string
	duration float64
	payload  func()
	done     func()
	start    sim.Time
	fire     func() // cached method value: completes this task
}

// Device is one simulated GPU attached to a sim.Engine.
type Device struct {
	eng  *sim.Engine
	tb   *machine.Testbed
	link *link.Link
	rng  *rand.Rand

	// queue is a FIFO ring over a reusable backing array: qHead indexes the
	// next task to run and the slice compacts to [:0] whenever it drains.
	queue      []*kernelTask
	qHead      int
	taskFree   []*kernelTask
	computing  bool
	busy       float64
	kernels    int64
	memUsed    int64
	memPeak    int64
	kernelObs  KernelObserver
	noiseSigma float64
}

// New creates a device for the testbed on the given engine. seed drives
// all measurement noise (kernel and transfer); the same seed reproduces a
// run exactly. Pass noiseless=true to disable noise entirely (useful for
// analytic unit tests).
func New(eng *sim.Engine, tb *machine.Testbed, seed int64, noiseless bool) *Device {
	sigma := tb.GPU.NoiseSigma
	var rng *rand.Rand
	if noiseless {
		sigma = 0
	} else {
		rng = rand.New(rand.NewSource(seed))
	}
	d := &Device{
		eng:        eng,
		tb:         tb,
		rng:        rng,
		noiseSigma: sigma,
	}
	// The link gets an independent stream derived from the same seed so
	// kernel and transfer noise do not interleave-order-depend.
	var linkRng *rand.Rand
	if !noiseless {
		linkRng = rand.New(rand.NewSource(seed ^ 0x5deece66d))
	}
	d.link = link.New(eng, tb, sigma, linkRng)
	if eng.Partitioned() {
		// Conservative lookahead for the partitioned engine's drains: a
		// transfer enters a link queue no earlier than one link latency
		// after the submitting event, so each link partition can be staged
		// that far past the other partitions' heads. Host and compute get
		// no lookahead (their events can be scheduled with zero delay).
		var look [sim.NumParts]sim.Time
		look[sim.PartH2D] = tb.H2D.LatencyS
		look[sim.PartD2H] = tb.D2H.LatencyS
		eng.SetLookahead(look)
	}
	return d
}

// Reset returns the device to its just-created state — empty compute
// queue, zeroed accounting, no observer — while keeping the kernel-task
// free list, and reseeds the noise streams (kernel and link) so the next
// run draws the exact sequences a freshly constructed device with that
// seed would. The engine is shared state and is NOT reset here; callers
// reusing a device across measurements reset the engine alongside it.
// Buffers allocated before the Reset are forgotten wholesale (the memory
// accounting restarts from zero), so holders must drop them. A noiseless
// device stays noiseless.
func (d *Device) Reset(seed int64) {
	if d.rng != nil {
		d.rng.Seed(seed)
	}
	for i := range d.queue {
		d.queue[i] = nil
	}
	d.queue = d.queue[:0]
	d.qHead = 0
	d.computing = false
	d.busy = 0
	d.kernels = 0
	d.memUsed, d.memPeak = 0, 0
	d.kernelObs = nil
	// The link's stream derives from the same seed exactly as in New.
	d.link.Reset(seed ^ 0x5deece66d)
}

// Engine returns the simulation engine driving this device.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Testbed returns the machine description of this device.
func (d *Device) Testbed() *machine.Testbed { return d.tb }

// Link returns the host-device interconnect.
func (d *Device) Link() *link.Link { return d.link }

// SetKernelObserver installs a trace observer for kernel intervals.
func (d *Device) SetKernelObserver(obs KernelObserver) { d.kernelObs = obs }

// ErrOutOfMemory is returned by Malloc when the device memory is exhausted.
var ErrOutOfMemory = errors.New("device: out of memory")

// Malloc reserves bytes of device memory.
func (d *Device) Malloc(bytes int64) (*Buffer, error) {
	if bytes < 0 {
		return nil, fmt.Errorf("device: negative allocation %d", bytes)
	}
	if d.memUsed+bytes > d.tb.GPU.MemBytes {
		return nil, fmt.Errorf("%w: want %d, used %d of %d",
			ErrOutOfMemory, bytes, d.memUsed, d.tb.GPU.MemBytes)
	}
	d.memUsed += bytes
	if d.memUsed > d.memPeak {
		d.memPeak = d.memUsed
	}
	return &Buffer{size: bytes}, nil
}

// Free releases a device allocation. Double frees are rejected.
func (d *Device) Free(b *Buffer) error {
	if b == nil {
		return errors.New("device: free of nil buffer")
	}
	if b.freed {
		return errors.New("device: double free")
	}
	b.freed = true
	d.memUsed -= b.size
	return nil
}

// MemUsed returns the bytes currently allocated.
func (d *Device) MemUsed() int64 { return d.memUsed }

// MemPeak returns the high-water mark of allocated bytes.
func (d *Device) MemPeak() int64 { return d.memPeak }

// noisy perturbs a duration with the device's multiplicative noise.
func (d *Device) noisy(duration float64) float64 {
	if d.rng == nil || d.noiseSigma == 0 {
		return duration
	}
	f := 1 + d.noiseSigma*d.rng.NormFloat64()
	if f < 0.5 {
		f = 0.5
	}
	return duration * f
}

// allocTask returns a recycled (or fresh) kernel task.
func (d *Device) allocTask() *kernelTask {
	if n := len(d.taskFree); n > 0 {
		t := d.taskFree[n-1]
		d.taskFree[n-1] = nil
		d.taskFree = d.taskFree[:n-1]
		return t
	}
	t := &kernelTask{dev: d}
	t.fire = t.complete
	return t
}

// LaunchKernel enqueues a kernel with the given base duration on the
// compute engine. payload (optional) performs the functional arithmetic
// and runs at completion time, before onDone (optional) is notified.
// Durations must be non-negative.
//
//cocolint:hotpath
func (d *Device) LaunchKernel(name string, duration float64, payload, onDone func()) {
	if duration < 0 {
		panic(fmt.Sprintf("device: negative kernel duration %g", duration))
	}
	t := d.allocTask()
	t.name, t.duration, t.payload, t.done = name, duration, payload, onDone
	//lint:ignore hotpath queue compacts to length zero whenever the engine drains it; the backing array grows only to the deepest backlog
	d.queue = append(d.queue, t)
	if !d.computing {
		d.runNext()
	}
}

// runNext pops the compute queue and executes its head.
func (d *Device) runNext() {
	if d.computing {
		return
	}
	if d.qHead == len(d.queue) {
		if d.qHead > 0 {
			d.queue = d.queue[:0]
			d.qHead = 0
		}
		return
	}
	t := d.queue[d.qHead]
	d.queue[d.qHead] = nil
	d.qHead++
	if d.qHead == len(d.queue) {
		d.queue = d.queue[:0]
		d.qHead = 0
	}
	d.computing = true
	t.start = d.eng.Now()
	d.eng.AfterPart(sim.PartCompute, d.noisy(t.duration), t.fire)
}

// complete finishes an executed kernel: accounting and the trace observer
// first, then the task recycles (its callbacks are saved locally, so a
// payload or completion callback that launches more kernels may reuse the
// object immediately), the next kernel starts, and the completion callback
// runs last — so a callback that enqueues more work observes a busy
// engine, matching hardware queues.
func (t *kernelTask) complete() {
	d := t.dev
	d.computing = false
	d.busy += d.eng.Now() - t.start
	d.kernels++
	if d.kernelObs != nil {
		d.kernelObs(t.name, t.start, d.eng.Now())
	}
	payload, done := t.payload, t.done
	t.name, t.payload, t.done = "", nil, nil
	d.taskFree = append(d.taskFree, t)
	if payload != nil {
		payload()
	}
	d.runNext()
	if done != nil {
		done()
	}
}

// ComputeStats describes the compute engine's accumulated activity.
type ComputeStats struct {
	BusySeconds float64
	Kernels     int64
}

// ComputeStats returns the accumulated compute activity.
func (d *Device) ComputeStats() ComputeStats {
	return ComputeStats{BusySeconds: d.busy, Kernels: d.kernels}
}
