package sched

import (
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/plan"
	"cocopelia/internal/sim"
)

// The tape-replay tests pin plan.RunTape to the reference Executor.Run on
// timing-only contexts: both paths must issue the identical stream-call
// sequence and therefore produce the identical simulation — same end time,
// same processed-event count, same per-direction link traffic.

// timingMat returns a storage-free operand at loc (device buffers are
// allocated unbacked when needed).
func timingMat(t *testing.T, c *Context, rows, cols int, loc model.Loc) *Matrix {
	t.Helper()
	if loc == model.OnHost {
		return &Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostLd: rows}
	}
	buf, err := c.rt.Malloc(kernelmodel.F64, int64(rows)*int64(cols), false)
	if err != nil {
		t.Fatal(err)
	}
	return &Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}
}

type replayTrace struct {
	end       sim.Time
	processed uint64
	h2d, d2h  int64 // link bytes
	transfers int64
}

// replayOnce builds a fresh timing-only context, lets build produce the
// plan and its bound arguments, replays through the selected path, and
// drains the simulation.
func replayOnce(t *testing.T, tape bool, build func(c *Context) (*plan.Plan, []plan.Arg)) replayTrace {
	t.Helper()
	c := newCtx(false)
	p, args := build(c)
	var err error
	if tape {
		_, err = c.exec.RunTape(p.TapeFor(&c.rt.Device().Testbed().GPU), c.target())
	} else {
		_, err = c.exec.Run(p, c.target(), args)
	}
	if err != nil {
		t.Fatal(err)
	}
	end, err := c.rt.Sync()
	if err != nil {
		t.Fatal(err)
	}
	lk := c.rt.Device().Link()
	h2d, d2h := lk.Stats(machine.H2D), lk.Stats(machine.D2H)
	return replayTrace{
		end:       end,
		processed: c.rt.Engine().Processed(),
		h2d:       h2d.Bytes,
		d2h:       d2h.Bytes,
		transfers: h2d.Transfers + d2h.Transfers,
	}
}

func checkTapeMatchesRun(t *testing.T, name string, build func(c *Context) (*plan.Plan, []plan.Arg)) {
	t.Helper()
	ref := replayOnce(t, false, build)
	got := replayOnce(t, true, build)
	if got != ref {
		t.Errorf("%s: tape replay diverged from Executor.Run:\n  run  %+v\n  tape %+v", name, ref, got)
	}
	if ref.processed == 0 {
		t.Errorf("%s: reference replay processed no events", name)
	}
}

func TestTapeReplayMatchesRun(t *testing.T) {
	H, D := model.OnHost, model.OnDevice
	gemm := func(dt kernelmodel.Dtype, transA, transB byte, m, n, k, T int, alpha, beta float64,
		locs [3]model.Loc, dispatch float64) func(c *Context) (*plan.Plan, []plan.Arg) {
		return func(c *Context) (*plan.Plan, []plan.Arg) {
			c.SetDispatchOverhead(dispatch)
			ar, ac := m, k
			if transA == blas.Trans {
				ar, ac = k, m
			}
			br, bc := k, n
			if transB == blas.Trans {
				br, bc = n, k
			}
			opts := GemmOpts{
				Dtype: dt, TransA: transA, TransB: transB,
				M: m, N: n, K: k, Alpha: alpha, Beta: beta, T: T,
				A: timingMat(t, c, ar, ac, locs[0]),
				B: timingMat(t, c, br, bc, locs[1]),
				C: timingMat(t, c, m, n, locs[2]),
			}
			p, err := c.PlanGemm(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, gemmArgs(opts)
		}
	}

	t.Run("gemm-hhh", func(t *testing.T) {
		checkTapeMatchesRun(t, "gemm-hhh",
			gemm(kernelmodel.F64, blas.NoTrans, blas.NoTrans, 96, 64, 80, 32, 1.5, 0.5, [3]model.Loc{H, H, H}, 0))
	})
	t.Run("gemm-dhd-beta0", func(t *testing.T) {
		checkTapeMatchesRun(t, "gemm-dhd-beta0",
			gemm(kernelmodel.F64, blas.NoTrans, blas.NoTrans, 64, 96, 64, 32, 2, 0, [3]model.Loc{D, H, D}, 0))
	})
	t.Run("gemm-f32-trans-dispatch", func(t *testing.T) {
		checkTapeMatchesRun(t, "gemm-f32-trans-dispatch",
			gemm(kernelmodel.F32, blas.Trans, blas.NoTrans, 64, 64, 96, 32, 1, 1, [3]model.Loc{H, H, H}, 1e-5))
	})
	t.Run("gemm-noreuse", func(t *testing.T) {
		checkTapeMatchesRun(t, "gemm-noreuse", func(c *Context) (*plan.Plan, []plan.Arg) {
			opts := GemmOpts{
				Dtype: kernelmodel.F64, M: 96, N: 96, K: 64, Alpha: 1, Beta: 1, T: 32,
				A: timingMat(t, c, 96, 64, H),
				B: timingMat(t, c, 64, 96, H),
				C: timingMat(t, c, 96, 96, H),
			}
			p, err := c.PlanGemmNoReuse(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, gemmArgs(opts)
		})
	})
	t.Run("gemv", func(t *testing.T) {
		checkTapeMatchesRun(t, "gemv", func(c *Context) (*plan.Plan, []plan.Arg) {
			opts := GemvOpts{
				M: 96, N: 64, Alpha: 1.25, Beta: 0.75, T: 32,
				A: timingMat(t, c, 96, 64, H),
				X: &Vector{N: 64, Loc: model.OnHost},
				Y: &Vector{N: 96, Loc: model.OnHost},
			}
			p, err := c.PlanGemv(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, gemvArgs(opts)
		})
	})
	t.Run("axpy", func(t *testing.T) {
		checkTapeMatchesRun(t, "axpy", func(c *Context) (*plan.Plan, []plan.Arg) {
			opts := AxpyOpts{
				N: 1000, Alpha: 1.1, T: 256,
				X: &Vector{N: 1000, Loc: model.OnHost},
				Y: &Vector{N: 1000, Loc: model.OnHost},
			}
			p, err := c.PlanAxpy(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, []plan.Arg{{Vec: opts.X}, {Vec: opts.Y}}
		})
	})
	t.Run("cholesky", func(t *testing.T) {
		checkTapeMatchesRun(t, "cholesky", func(c *Context) (*plan.Plan, []plan.Arg) {
			opts := CholeskyOpts{Dtype: kernelmodel.F64, N: 100, T: 32,
				A: timingMat(t, c, 100, 100, H)}
			p, err := c.PlanCholesky(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, []plan.Arg{{Mat: opts.A}}
		})
	})
	t.Run("cholesky-device", func(t *testing.T) {
		checkTapeMatchesRun(t, "cholesky-device", func(c *Context) (*plan.Plan, []plan.Arg) {
			opts := CholeskyOpts{Dtype: kernelmodel.F64, N: 96, T: 32,
				A: timingMat(t, c, 96, 96, D)}
			p, err := c.PlanCholesky(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, []plan.Arg{{Mat: opts.A}}
		})
	})
	t.Run("lu", func(t *testing.T) {
		checkTapeMatchesRun(t, "lu", func(c *Context) (*plan.Plan, []plan.Arg) {
			opts := LUOpts{Dtype: kernelmodel.F64, N: 100, T: 32,
				A: timingMat(t, c, 100, 100, H)}
			p, err := c.PlanLU(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, []plan.Arg{{Mat: opts.A}}
		})
	})
	t.Run("trsm", func(t *testing.T) {
		checkTapeMatchesRun(t, "trsm", func(c *Context) (*plan.Plan, []plan.Arg) {
			opts := TrsmOpts{Dtype: kernelmodel.F64, M: 96, N: 64, Alpha: 0.75, T: 32,
				A: timingMat(t, c, 96, 96, H),
				B: timingMat(t, c, 96, 64, H)}
			p, err := c.PlanTrsm(opts)
			if err != nil {
				t.Fatal(err)
			}
			return p, []plan.Arg{{Mat: opts.A}, {Mat: opts.B}}
		})
	})
}

// tapeFixture builds a warm timing-only context with a compiled gemm tape:
// after one replay every free list and scratch buffer is primed.
func tapeFixture(tb testing.TB, m, n, k, T int) (*Context, *plan.Tape) {
	c := newCtx(false)
	opts := GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: n, K: k, Alpha: 1, Beta: 1, T: T,
		A: &Matrix{Rows: m, Cols: k, Loc: model.OnHost, HostLd: m},
		B: &Matrix{Rows: k, Cols: n, Loc: model.OnHost, HostLd: k},
		C: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostLd: m},
	}
	p, err := c.PlanGemm(opts)
	if err != nil {
		tb.Fatal(err)
	}
	tape := p.TapeFor(&c.rt.Device().Testbed().GPU)
	replayTapeOnce(tb, c, tape)
	return c, tape
}

// replayTapeOnce replays the tape, drains the engine and releases the
// staging buffers back to the pool.
func replayTapeOnce(tb testing.TB, c *Context, tape *plan.Tape) {
	pooled, err := c.exec.RunTape(tape, c.target())
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := c.rt.Sync(); err != nil {
		tb.Fatal(err)
	}
	for _, b := range pooled {
		c.Release(b)
	}
}

// TestReplayTapeZeroAlloc gates the batched replay loop at zero
// allocations per replay once the context is warm: the tape, the executor
// scratch, the cudart op/event free lists, the link transfer free list and
// the engine event free list must all recycle.
func TestReplayTapeZeroAlloc(t *testing.T) {
	c, tape := tapeFixture(t, 256, 256, 256, 64)
	replayTapeOnce(t, c, tape) // second warm-up: pool buckets at steady state
	allocs := testing.AllocsPerRun(10, func() {
		replayTapeOnce(t, c, tape)
	})
	if allocs != 0 {
		t.Fatalf("tape replay allocates %.1f objects per run, want 0", allocs)
	}
}

// BenchmarkReplay measures one full batched plan replay — tape walk plus
// simulation drain — on a warm context.
func BenchmarkReplay(b *testing.B) {
	c, tape := tapeFixture(b, 1024, 1024, 1024, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		replayTapeOnce(b, c, tape)
	}
}
