package sched

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/plan"
)

// The tiled factorization entry points. Each follows the gemm pattern —
// validate, build (or match) the task-graph plan, replay it on the
// context's streams — so the factorizations get plan caching, pending
// (enqueue-only) composition and tape replay for free.

// CholeskyOpts parameterizes a tiled Cholesky invocation: the in-place
// lower-triangular factorization A = L*L^T of the N x N matrix A.
type CholeskyOpts struct {
	Dtype kernelmodel.Dtype
	N     int
	A     *Matrix
	// T is the square tiling size.
	T int
}

// validateFactorMatrix shares the square-operand checks of the cholesky
// and lu entry points.
func (c *Context) validateFactorMatrix(routine string, dt kernelmodel.Dtype, n, T int, a *Matrix) error {
	if n <= 0 {
		return fmt.Errorf("sched: non-positive %s dimension %d", routine, n)
	}
	if T <= 0 {
		return fmt.Errorf("sched: non-positive tiling size %d", T)
	}
	if err := a.Validate("A", dt, c.backed); err != nil {
		return err
	}
	if a.Rows != n || a.Cols != n {
		return fmt.Errorf("sched: %s operand is %dx%d, want %dx%d", routine, a.Rows, a.Cols, n, n)
	}
	return nil
}

// PlanCholesky validates the invocation and builds its task-graph plan
// without touching the streams.
func (c *Context) PlanCholesky(opts CholeskyOpts) (*plan.Plan, error) {
	if err := c.validateFactorMatrix("cholesky", opts.Dtype, opts.N, opts.T, opts.A); err != nil {
		return nil, err
	}
	return plan.BuildCholesky(plan.CholeskySpec{
		Dtype: opts.Dtype, N: opts.N, LocA: opts.A.Loc, T: opts.T,
	}), nil
}

// matchFactorPlan checks that a replayed square-factorization plan was
// built for this invocation.
func matchFactorPlan(p *plan.Plan, routine string, dt kernelmodel.Dtype, n, T int, a *Matrix) error {
	if p == nil {
		return errors.New("sched: nil plan")
	}
	if p.Routine != routine || p.Dtype != dt || p.M != n || p.N != n ||
		p.T != T || p.Locs[0] != a.Loc {
		return fmt.Errorf("sched: %s plan does not match the invocation", routine)
	}
	return nil
}

// Cholesky executes the tiled factorization with square tiling size
// opts.T, then synchronizes and reports the run. On backed contexts A's
// lower triangle is overwritten by L. Tiles strictly above the diagonal
// are never touched; above-diagonal entries inside diagonal tiles hold
// intermediate update values on return (the SYRK payload writes full
// tiles — see cudart.SyrkAsync).
func (c *Context) Cholesky(opts CholeskyOpts) (Result, error) {
	p, err := c.PlanCholesky(opts)
	if err != nil {
		return Result{}, err
	}
	return c.runPlanSync(p, []plan.Arg{{Mat: opts.A}})
}

// CholeskyEnqueueWith replays a previously built cholesky plan on the
// context's streams without draining the engine.
func (c *Context) CholeskyEnqueueWith(p *plan.Plan, opts CholeskyOpts) (*PendingGemm, error) {
	if err := c.validateFactorMatrix("cholesky", opts.Dtype, opts.N, opts.T, opts.A); err != nil {
		return nil, err
	}
	if err := matchFactorPlan(p, "cholesky", opts.Dtype, opts.N, opts.T, opts.A); err != nil {
		return nil, err
	}
	return c.enqueuePlan(p, []plan.Arg{{Mat: opts.A}})
}

// CholeskyWith executes a previously built cholesky plan against an
// operand of the matching shape.
func (c *Context) CholeskyWith(p *plan.Plan, opts CholeskyOpts) (Result, error) {
	pend, err := c.CholeskyEnqueueWith(p, opts)
	if err != nil {
		return Result{}, err
	}
	return c.finishSync(pend)
}

// LUOpts parameterizes a tiled unpivoted LU invocation: the in-place
// factorization A = L*U of the N x N matrix A. The schedule models no row
// exchanges; backed callers supply pivot-free (e.g. diagonally dominant)
// matrices.
type LUOpts struct {
	Dtype kernelmodel.Dtype
	N     int
	A     *Matrix
	T     int
}

// PlanLU validates the invocation and builds its task-graph plan.
func (c *Context) PlanLU(opts LUOpts) (*plan.Plan, error) {
	if err := c.validateFactorMatrix("lu", opts.Dtype, opts.N, opts.T, opts.A); err != nil {
		return nil, err
	}
	return plan.BuildLU(plan.LUSpec{
		Dtype: opts.Dtype, N: opts.N, LocA: opts.A.Loc, T: opts.T,
	}), nil
}

// LU executes the tiled unpivoted factorization, synchronizes and reports
// the run.
func (c *Context) LU(opts LUOpts) (Result, error) {
	p, err := c.PlanLU(opts)
	if err != nil {
		return Result{}, err
	}
	return c.runPlanSync(p, []plan.Arg{{Mat: opts.A}})
}

// LUEnqueueWith replays a previously built lu plan without draining the
// engine.
func (c *Context) LUEnqueueWith(p *plan.Plan, opts LUOpts) (*PendingGemm, error) {
	if err := c.validateFactorMatrix("lu", opts.Dtype, opts.N, opts.T, opts.A); err != nil {
		return nil, err
	}
	if err := matchFactorPlan(p, "lu", opts.Dtype, opts.N, opts.T, opts.A); err != nil {
		return nil, err
	}
	return c.enqueuePlan(p, []plan.Arg{{Mat: opts.A}})
}

// LUWith executes a previously built lu plan against an operand of the
// matching shape.
func (c *Context) LUWith(p *plan.Plan, opts LUOpts) (Result, error) {
	pend, err := c.LUEnqueueWith(p, opts)
	if err != nil {
		return Result{}, err
	}
	return c.finishSync(pend)
}

// TrsmOpts parameterizes a tiled triangular solve A*X = alpha*B with A
// the M x M lower triangle and X overwriting the M x N operand B. The
// planner covers the left/lower/no-trans case; the flags exist so the
// zero value reads as the supported combination and diverging requests
// fail loudly here rather than building a wrong schedule.
type TrsmOpts struct {
	Dtype                    kernelmodel.Dtype
	Side, Uplo, TransA, Diag byte
	M, N                     int
	Alpha                    float64
	A, B                     *Matrix
	T                        int
}

// validateTrsm checks the invocation and returns the normalized diag flag.
func (c *Context) validateTrsm(opts TrsmOpts) (diag byte, err error) {
	if opts.M <= 0 || opts.N <= 0 {
		return 0, fmt.Errorf("sched: non-positive trsm dims %dx%d", opts.M, opts.N)
	}
	if opts.T <= 0 {
		return 0, fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	if opts.Side != 0 && opts.Side != blas.Left {
		return 0, fmt.Errorf("sched: trsm planner covers side %q only, got %q", blas.Left, opts.Side)
	}
	if opts.Uplo != 0 && opts.Uplo != blas.Lower {
		return 0, fmt.Errorf("sched: trsm planner covers uplo %q only, got %q", blas.Lower, opts.Uplo)
	}
	if opts.TransA != 0 && opts.TransA != blas.NoTrans {
		return 0, fmt.Errorf("sched: trsm planner covers trans %q only, got %q", blas.NoTrans, opts.TransA)
	}
	switch opts.Diag {
	case 0, blas.NonUnit:
		diag = blas.NonUnit
	case blas.Unit:
		diag = blas.Unit
	default:
		return 0, fmt.Errorf("sched: bad trsm diag flag %q", opts.Diag)
	}
	dt := opts.Dtype
	if err := opts.A.Validate("A", dt, c.backed); err != nil {
		return 0, err
	}
	if err := opts.B.Validate("B", dt, c.backed); err != nil {
		return 0, err
	}
	if opts.A.Rows != opts.M || opts.A.Cols != opts.M ||
		opts.B.Rows != opts.M || opts.B.Cols != opts.N {
		return 0, errors.New("sched: trsm operand shapes inconsistent with m, n")
	}
	return diag, nil
}

// PlanTrsm validates the invocation and builds its task-graph plan.
func (c *Context) PlanTrsm(opts TrsmOpts) (*plan.Plan, error) {
	diag, err := c.validateTrsm(opts)
	if err != nil {
		return nil, err
	}
	return plan.BuildTrsm(plan.TrsmSpec{
		Dtype: opts.Dtype, Diag: diag, M: opts.M, N: opts.N,
		Alpha: opts.Alpha, LocA: opts.A.Loc, LocB: opts.B.Loc, T: opts.T,
	}), nil
}

// matchTrsmPlan checks that a replayed trsm plan was built for this
// invocation.
func matchTrsmPlan(p *plan.Plan, opts TrsmOpts, diag byte) error {
	if p == nil {
		return errors.New("sched: nil plan")
	}
	if p.Routine != "trsm" || p.Dtype != opts.Dtype || p.Diag != diag ||
		p.M != opts.M || p.N != opts.N || p.T != opts.T ||
		!sameScalar(p.Alpha, opts.Alpha) ||
		p.Locs[0] != opts.A.Loc || p.Locs[1] != opts.B.Loc {
		return errors.New("sched: trsm plan does not match the invocation")
	}
	return nil
}

// Trsm executes the tiled triangular solve, synchronizes and reports the
// run. On backed contexts B is overwritten by X.
func (c *Context) Trsm(opts TrsmOpts) (Result, error) {
	p, err := c.PlanTrsm(opts)
	if err != nil {
		return Result{}, err
	}
	return c.runPlanSync(p, []plan.Arg{{Mat: opts.A}, {Mat: opts.B}})
}

// TrsmEnqueueWith replays a previously built trsm plan without draining
// the engine.
func (c *Context) TrsmEnqueueWith(p *plan.Plan, opts TrsmOpts) (*PendingGemm, error) {
	diag, err := c.validateTrsm(opts)
	if err != nil {
		return nil, err
	}
	if err := matchTrsmPlan(p, opts, diag); err != nil {
		return nil, err
	}
	return c.enqueuePlan(p, []plan.Arg{{Mat: opts.A}, {Mat: opts.B}})
}

// TrsmWith executes a previously built trsm plan against operands of the
// matching shape.
func (c *Context) TrsmWith(p *plan.Plan, opts TrsmOpts) (Result, error) {
	pend, err := c.TrsmEnqueueWith(p, opts)
	if err != nil {
		return Result{}, err
	}
	return c.finishSync(pend)
}
