package sched

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
	"cocopelia/internal/plan"
)

func TestNoReuseGemmFunctionalAllCombos(t *testing.T) {
	for _, combo := range model.LocCombos(3) {
		c := newCtx(true)
		m, n, k, T := 96, 64, 80, 32
		rng := rand.New(rand.NewSource(13))
		hostA := randMat(rng, m, k)
		hostB := randMat(rng, k, n)
		hostC := randMat(rng, m, n)
		ref := append([]float64(nil), hostC...)
		if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1.25, hostA, m, hostB, k, 0.75, ref, m); err != nil {
			t.Fatal(err)
		}
		mat := func(rows, cols int, host []float64, loc model.Loc) *Matrix {
			if loc == model.OnHost {
				return &Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostF64: host, HostLd: rows}
			}
			return deviceMatrix(t, c, rows, cols, host)
		}
		A := mat(m, k, hostA, combo[0])
		B := mat(k, n, hostB, combo[1])
		C := mat(m, n, hostC, combo[2])
		_, err := c.GemmNoReuse(GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: n, K: k,
			Alpha: 1.25, Beta: 0.75, A: A, B: B, C: C, T: T,
		})
		if err != nil {
			t.Fatalf("combo %v: %v", combo, err)
		}
		got := hostC
		if combo[2] == model.OnDevice {
			got = make([]float64, m*n)
			s := c.rt.NewStream()
			if _, err := s.MemcpyD2HAsync(got, nil, C.Dev, 0, int64(m*n)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.rt.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if d := maxDiff(got, ref); d > 1e-10 {
			t.Errorf("combo %v: no-reuse result differs from reference by %g", combo, d)
		}
	}
}

func TestNoReuseBetaZero(t *testing.T) {
	c := newCtx(true)
	m, T := 64, 32
	rng := rand.New(rand.NewSource(14))
	hostA := randMat(rng, m, m)
	hostB := randMat(rng, m, m)
	hostC := make([]float64, m*m)
	for i := range hostC {
		hostC[i] = math.NaN()
	}
	ref := make([]float64, m*m)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, m, m, 1, hostA, m, hostB, m, 0, ref, m); err != nil {
		t.Fatal(err)
	}
	if _, err := c.GemmNoReuse(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 0,
		A: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostF64: hostA, HostLd: m},
		B: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostF64: hostB, HostLd: m},
		C: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostF64: hostC, HostLd: m},
		T: T,
	}); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(hostC, ref); d > 1e-10 {
		t.Errorf("beta=0 no-reuse result differs by %g", d)
	}
}

func TestNoReuseTransferVolume(t *testing.T) {
	// Per-sub-kernel traffic: every sub-kernel fetches A, B and (after the
	// first k-step) the C partial, and writes C back every step. For a
	// 4x4x4 tile grid with beta=1: A and B cross 64 times each, C crosses
	// 64 times in and 64 times out.
	c := newCtx(false)
	m, T := 512, 128
	opts := GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		B: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		C: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		T: T,
	}
	res, err := c.GemmNoReuse(opts)
	if err != nil {
		t.Fatal(err)
	}
	tile := int64(T*T) * 8
	if want := 3 * 64 * tile; res.BytesH2D != want {
		t.Errorf("h2d = %d, want %d", res.BytesH2D, want)
	}
	if want := 64 * tile; res.BytesD2H != want {
		t.Errorf("d2h = %d, want %d", res.BytesD2H, want)
	}
	if res.Subkernels != 64 {
		t.Errorf("subkernels = %d", res.Subkernels)
	}
	// The same traffic must be predicted by the plan annotations and the
	// closed-form volumes before anything executes.
	p, err := c.PlanGemmNoReuse(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Volumes{BytesH2D: 3 * 64 * tile, BytesD2H: 64 * tile, Subkernels: 64}
	if v := p.Volumes(); v != want {
		t.Errorf("plan annotations = %+v, want %+v", v, want)
	}
	spec := plan.GemmSpec{Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		LocA: model.OnHost, LocB: model.OnHost, LocC: model.OnHost, T: T}
	if v := plan.GemmNoReuseVolumes(spec); v != want {
		t.Errorf("closed-form volumes = %+v, want %+v", v, want)
	}
}

func TestNoReuseSlowerThanReuse(t *testing.T) {
	run := func(noReuse bool) float64 {
		c := newCtx(false)
		opts := GemmOpts{
			Dtype: kernelmodel.F64, M: 4096, N: 4096, K: 4096, Alpha: 1, Beta: 1,
			A: &Matrix{Rows: 4096, Cols: 4096, Loc: model.OnHost, HostLd: 4096},
			B: &Matrix{Rows: 4096, Cols: 4096, Loc: model.OnHost, HostLd: 4096},
			C: &Matrix{Rows: 4096, Cols: 4096, Loc: model.OnHost, HostLd: 4096},
			T: 1024,
		}
		var res Result
		var err error
		if noReuse {
			res, err = c.GemmNoReuse(opts)
		} else {
			res, err = c.Gemm(opts)
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	nr, r := run(true), run(false)
	if nr <= 1.5*r {
		t.Errorf("no-reuse (%g) should be much slower than reuse (%g)", nr, r)
	}
}

func TestNoReuseMemoryBounded(t *testing.T) {
	// Even for a large problem the staging footprint stays within the
	// slot budget (plus nothing else).
	c := newCtx(false)
	m, T := 4096, 512
	_, err := c.GemmNoReuse(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		B: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		C: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := int64(plan.MaxNoReuseSlots) * 3 * int64(T*T) * 8
	if peak := c.rt.Device().MemPeak(); peak > bound {
		t.Errorf("staging peak %d exceeds bound %d", peak, bound)
	}
}

func TestNoReuseHugeTilesAdaptSlots(t *testing.T) {
	// Tiles near the device-memory scale must still run (the slot count
	// shrinks) — the regression behind very large sweep tiles on the K40.
	c := newCtx(false)
	m, T := 16384, 8192
	_, err := c.GemmNoReuse(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		B: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		C: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		T: T,
	})
	if err != nil {
		t.Fatalf("huge-tile no-reuse run failed: %v", err)
	}
	if used := c.rt.Device().MemPeak(); used > c.rt.Device().Testbed().GPU.MemBytes {
		t.Errorf("peak %d exceeds device memory", used)
	}
}
