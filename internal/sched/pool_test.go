package sched

import (
	"errors"
	"testing"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
)

// poolCount returns how many free buffers the pool holds for a shape.
func poolCount(c *Context, elems int64) int {
	if bk := c.bucket(poolKey{kernelmodel.F64, elems}); bk != nil {
		return len(bk.bufs)
	}
	return 0
}

// TestAcquireOOMEvictsOtherShapesLargestFirst pins the pool's memory-
// pressure policy: an allocation that does not fit evicts pooled buffers
// of OTHER shapes, largest first and one at a time, and never touches the
// requested shape's pool — so a tile-size sweep keeps the working set of
// the tile size it is currently measuring.
func TestAcquireOOMEvictsOtherShapesLargestFirst(t *testing.T) {
	c := newCtx(false)
	mem := c.rt.Device().Testbed().GPU.MemBytes
	eBig := mem / (4 * 8)    // ~mem/4 per buffer
	eMid := mem / (8 * 8)    // ~mem/8
	eSmall := mem / (16 * 8) // ~mem/16

	// Pool two buffers of each shape: ~7/8 of device memory stays
	// allocated and pooled.
	for _, elems := range []int64{eBig, eMid, eSmall} {
		var bufs []*cudart.DevBuffer
		for i := 0; i < 2; i++ {
			b, err := c.Acquire(kernelmodel.F64, elems)
			if err != nil {
				t.Fatalf("staging acquire(%d): %v", elems, err)
			}
			bufs = append(bufs, b)
		}
		for _, b := range bufs {
			c.Release(b)
		}
	}
	if free := mem - c.rt.Device().MemUsed(); free >= eBig*8 {
		t.Fatalf("test setup failed to exhaust memory: %d free", free)
	}

	// A request for a shape not in the pool must evict exactly one big
	// buffer (largest-first), leaving the smaller pools intact.
	eNew := mem / (5 * 8) // ~mem/5: fits only after one big eviction
	b, err := c.Acquire(kernelmodel.F64, eNew)
	if err != nil {
		t.Fatalf("acquire under memory pressure: %v", err)
	}
	if got := poolCount(c, eBig); got != 1 {
		t.Errorf("big pool has %d buffers after eviction, want 1", got)
	}
	if got := poolCount(c, eMid); got != 2 {
		t.Errorf("mid pool has %d buffers, want 2 (evicted mid before a larger shape)", got)
	}
	if got := poolCount(c, eSmall); got != 2 {
		t.Errorf("small pool has %d buffers, want 2", got)
	}
	c.Release(b)

	// When nothing of another shape is left to evict, the out-of-memory
	// error surfaces instead of the pool being purged.
	c2 := newCtx(false)
	inUse, err := c2.Acquire(kernelmodel.F64, mem*7/(8*8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Acquire(kernelmodel.F64, mem/(4*8)); !errors.Is(err, device.ErrOutOfMemory) {
		t.Errorf("acquire with no evictable buffers returned %v, want ErrOutOfMemory", err)
	}
	c2.Release(inUse)
}
