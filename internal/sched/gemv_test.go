package sched

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

func TestGemvFunctionalAllCombos(t *testing.T) {
	for _, combo := range model.LocCombos(3) {
		c := newCtx(true)
		m, n, T := 96, 80, 32
		rng := rand.New(rand.NewSource(21))
		hostA := randMat(rng, m, n)
		hostX := randMat(rng, n, 1)
		hostY := randMat(rng, m, 1)
		ref := append([]float64(nil), hostY...)
		if err := blas.Dgemv(blas.NoTrans, m, n, 1.5, hostA, m, hostX, 1, 0.5, ref, 1); err != nil {
			t.Fatal(err)
		}

		var A *Matrix
		if combo[0] == model.OnHost {
			A = &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF64: hostA, HostLd: m}
		} else {
			A = deviceMatrix(t, c, m, n, hostA)
		}
		vec := func(nn int, host []float64, loc model.Loc) *Vector {
			if loc == model.OnHost {
				return &Vector{N: nn, Loc: model.OnHost, HostF64: host}
			}
			buf, err := c.rt.Malloc(kernelmodel.F64, int64(nn), true)
			if err != nil {
				t.Fatal(err)
			}
			s := c.rt.NewStream()
			if _, err := s.MemcpyH2DAsync(buf, 0, host, nil, int64(nn)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.rt.Sync(); err != nil {
				t.Fatal(err)
			}
			return &Vector{N: nn, Loc: model.OnDevice, Dev: buf}
		}
		x := vec(n, hostX, combo[1])
		y := vec(m, hostY, combo[2])

		res, err := c.Gemv(GemvOpts{M: m, N: n, Alpha: 1.5, Beta: 0.5, A: A, X: x, Y: y, T: T})
		if err != nil {
			t.Fatalf("combo %v: %v", combo, err)
		}
		got := hostY
		if combo[2] == model.OnDevice {
			got = make([]float64, m)
			s := c.rt.NewStream()
			if _, err := s.MemcpyD2HAsync(got, nil, y.Dev, 0, int64(m)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.rt.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if d := maxDiff(got, ref); d > 1e-10 {
			t.Errorf("combo %v: gemv differs by %g", combo, d)
		}
		// 3x3 tile grid.
		if res.Subkernels != 9 {
			t.Errorf("combo %v: %d subkernels, want 9", combo, res.Subkernels)
		}
	}
}

func TestGemvBetaZero(t *testing.T) {
	c := newCtx(true)
	m, n, T := 64, 48, 16
	rng := rand.New(rand.NewSource(22))
	hostA := randMat(rng, m, n)
	hostX := randMat(rng, n, 1)
	hostY := make([]float64, m)
	for i := range hostY {
		hostY[i] = math.NaN()
	}
	ref := make([]float64, m)
	if err := blas.Dgemv(blas.NoTrans, m, n, 1, hostA, m, hostX, 1, 0, ref, 1); err != nil {
		t.Fatal(err)
	}
	res, err := c.Gemv(GemvOpts{
		M: m, N: n, Alpha: 1, Beta: 0,
		A: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF64: hostA, HostLd: m},
		X: &Vector{N: n, Loc: model.OnHost, HostF64: hostX},
		Y: &Vector{N: m, Loc: model.OnHost, HostF64: hostY},
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(hostY, ref); d > 1e-10 {
		t.Errorf("beta=0 gemv differs by %g", d)
	}
	// beta=0: y never fetched, so h2d = A + x only.
	if want := int64(m*n+n) * 8; res.BytesH2D != want {
		t.Errorf("h2d = %d, want %d", res.BytesH2D, want)
	}
	if want := int64(m) * 8; res.BytesD2H != want {
		t.Errorf("d2h = %d, want %d", res.BytesD2H, want)
	}
}

func TestGemvVectorReuse(t *testing.T) {
	// x chunks are fetched once even though every tile row uses them.
	c := newCtx(false)
	m, n, T := 1024, 1024, 256
	res, err := c.Gemv(GemvOpts{
		M: m, N: n, Alpha: 1, Beta: 1,
		A: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostLd: m},
		X: &Vector{N: n, Loc: model.OnHost},
		Y: &Vector{N: m, Loc: model.OnHost},
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(m*n+n+m) * 8 // A once + x once + y once
	if res.BytesH2D != want {
		t.Errorf("h2d = %d, want %d (vector reuse)", res.BytesH2D, want)
	}
	if res.Subkernels != 16 {
		t.Errorf("subkernels = %d, want 16", res.Subkernels)
	}
}

func TestGemvValidation(t *testing.T) {
	c := newCtx(false)
	A := &Matrix{Rows: 64, Cols: 64, Loc: model.OnHost, HostLd: 64}
	x := &Vector{N: 64, Loc: model.OnHost}
	cases := []GemvOpts{
		{M: 0, N: 64, A: A, X: x, Y: x, T: 16},
		{M: 64, N: 64, A: A, X: x, Y: x, T: 0},
		{M: 64, N: 64, A: nil, X: x, Y: x, T: 16},
		{M: 64, N: 32, A: A, X: x, Y: x, T: 16}, // shape mismatch
		{M: 64, N: 64, A: A, X: &Vector{N: 32, Loc: model.OnHost}, Y: x, T: 16},
	}
	for i, opts := range cases {
		if _, err := c.Gemv(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGemvOverlap(t *testing.T) {
	// The pipelined makespan must beat transfers + compute serialized.
	c := newCtx(false)
	m := 16384
	res, err := c.Gemv(GemvOpts{
		M: m, N: m, Alpha: 1, Beta: 1,
		A: &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m},
		X: &Vector{N: m, Loc: model.OnHost},
		Y: &Vector{N: m, Loc: model.OnHost},
		T: 4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	// gemv is completely transfer-bound: a well-overlapped pipeline runs
	// within a few percent of the h2d volume alone, hiding compute and
	// write-backs entirely.
	tb := c.rt.Device().Testbed()
	h2dBound := float64(res.BytesH2D) / tb.H2D.BandwidthBps
	if res.Seconds < h2dBound {
		t.Errorf("makespan %g below the h2d lower bound %g", res.Seconds, h2dBound)
	}
	if res.Seconds > 1.05*h2dBound {
		t.Errorf("makespan %g should be within 5%% of the h2d bound %g (poor overlap)", res.Seconds, h2dBound)
	}
}
