package sched

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/plan"
	"cocopelia/internal/sim"
)

func newCtx(backed bool) *Context {
	eng := sim.New()
	dev := device.New(eng, machine.TestbedI(), 1, true)
	return NewContext(cudart.New(dev), backed)
}

func randMat(rng *rand.Rand, rows, cols int) []float64 {
	s := make([]float64, rows*cols)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

// deviceMatrix uploads host data into a device-resident Matrix.
func deviceMatrix(t *testing.T, c *Context, rows, cols int, host []float64) *Matrix {
	t.Helper()
	buf, err := c.rt.Malloc(kernelmodel.F64, int64(rows*cols), true)
	if err != nil {
		t.Fatal(err)
	}
	s := c.rt.NewStream()
	if _, err := s.MemcpyH2DAsync(buf, 0, host, nil, int64(rows*cols)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.rt.Sync(); err != nil {
		t.Fatal(err)
	}
	return &Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}
}

func maxDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// runGemmCombo executes a tiled gemm with the given locations and checks
// the result against the reference BLAS.
func runGemmCombo(t *testing.T, m, n, k, T int, alpha, beta float64, locs [3]model.Loc) {
	t.Helper()
	c := newCtx(true)
	rng := rand.New(rand.NewSource(int64(m*n + k + T)))
	hostA := randMat(rng, m, k)
	hostB := randMat(rng, k, n)
	hostC := randMat(rng, m, n)
	ref := append([]float64(nil), hostC...)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, alpha, hostA, m, hostB, k, beta, ref, m); err != nil {
		t.Fatal(err)
	}

	mat := func(rows, cols int, host []float64, loc model.Loc) *Matrix {
		if loc == model.OnHost {
			return &Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostF64: host, HostLd: rows}
		}
		return deviceMatrix(t, c, rows, cols, host)
	}
	A := mat(m, k, hostA, locs[0])
	B := mat(k, n, hostB, locs[1])
	C := mat(m, n, hostC, locs[2])

	res, err := c.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: n, K: k,
		Alpha: alpha, Beta: beta, A: A, B: B, C: C, T: T,
	})
	if err != nil {
		t.Fatalf("combo %v: %v", locs, err)
	}
	got := hostC
	if locs[2] == model.OnDevice {
		got = make([]float64, m*n)
		s := c.rt.NewStream()
		if _, err := s.MemcpyD2HAsync(got, nil, C.Dev, 0, int64(m*n)); err != nil {
			t.Fatal(err)
		}
		if _, err := c.rt.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if d := maxDiff(got, ref); d > 1e-10 {
		t.Errorf("combo %v: result differs from reference by %g", locs, d)
	}
	if res.Seconds <= 0 || res.Subkernels <= 0 {
		t.Errorf("combo %v: implausible result %+v", locs, res)
	}
}

func TestGemmAllLocationCombos(t *testing.T) {
	for _, combo := range model.LocCombos(3) {
		runGemmCombo(t, 96, 64, 80, 32, 1.0, 1.0, [3]model.Loc{combo[0], combo[1], combo[2]})
	}
}

func TestGemmRaggedTiles(t *testing.T) {
	// Dimensions not divisible by T exercise the edge-tile paths.
	runGemmCombo(t, 70, 45, 53, 32, 2.0, 0.5, [3]model.Loc{model.OnHost, model.OnHost, model.OnHost})
}

func TestGemmBetaZeroSkipsCFetch(t *testing.T) {
	c := newCtx(true)
	m, n, k, T := 64, 64, 64, 32
	rng := rand.New(rand.NewSource(2))
	hostA := randMat(rng, m, k)
	hostB := randMat(rng, k, n)
	hostC := make([]float64, m*n)
	for i := range hostC {
		hostC[i] = math.NaN() // must be fully overwritten, never fetched
	}
	res, err := c.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: n, K: k, Alpha: 1, Beta: 0,
		A: &Matrix{Rows: m, Cols: k, Loc: model.OnHost, HostF64: hostA, HostLd: m},
		B: &Matrix{Rows: k, Cols: n, Loc: model.OnHost, HostF64: hostB, HostLd: k},
		C: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF64: hostC, HostLd: m},
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	// h2d volume must be A + B only.
	want := int64(m*k+k*n) * 8
	if res.BytesH2D != want {
		t.Errorf("h2d bytes = %d, want %d (no C fetch with beta=0)", res.BytesH2D, want)
	}
	ref := make([]float64, m*n)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, hostA, m, hostB, k, 0, ref, m); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(hostC, ref); d > 1e-10 {
		t.Errorf("beta=0 result differs by %g", d)
	}
}

func TestGemmSinglePrecision(t *testing.T) {
	c := newCtx(true)
	m, n, k, T := 48, 48, 48, 16
	hostA := make([]float32, m*k)
	hostB := make([]float32, k*n)
	hostC := make([]float32, m*n)
	rng := rand.New(rand.NewSource(3))
	for i := range hostA {
		hostA[i] = float32(rng.NormFloat64())
	}
	for i := range hostB {
		hostB[i] = float32(rng.NormFloat64())
	}
	ref := append([]float32(nil), hostC...)
	if err := blas.Sgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, hostA, m, hostB, k, 0, ref, m); err != nil {
		t.Fatal(err)
	}
	_, err := c.Gemm(GemmOpts{
		Dtype: kernelmodel.F32, M: m, N: n, K: k, Alpha: 1, Beta: 0,
		A: &Matrix{Rows: m, Cols: k, Loc: model.OnHost, HostF32: hostA, HostLd: m},
		B: &Matrix{Rows: k, Cols: n, Loc: model.OnHost, HostF32: hostB, HostLd: k},
		C: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF32: hostC, HostLd: m},
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	var d float64
	for i := range ref {
		d = math.Max(d, math.Abs(float64(hostC[i]-ref[i])))
	}
	if d > 1e-4 {
		t.Errorf("sgemm tiled result differs by %g", d)
	}
}

func TestGemmFullReuseTransferVolume(t *testing.T) {
	// Full offload: each input tile crosses the link exactly once, so the
	// h2d volume equals |A| + |B| + |C| regardless of the tile count.
	c := newCtx(false)
	m, n, k, T := 512, 512, 512, 128
	A := &Matrix{Rows: m, Cols: k, Loc: model.OnHost, HostLd: m}
	B := &Matrix{Rows: k, Cols: n, Loc: model.OnHost, HostLd: k}
	C := &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostLd: m}
	opts := GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: n, K: k, Alpha: 1, Beta: 1,
		A: A, B: B, C: C, T: T,
	}
	res, err := c.Gemm(opts)
	if err != nil {
		t.Fatal(err)
	}
	wantIn := int64(m*k+k*n+m*n) * 8
	wantOut := int64(m*n) * 8
	if res.BytesH2D != wantIn {
		t.Errorf("h2d bytes = %d, want %d (full reuse)", res.BytesH2D, wantIn)
	}
	if res.BytesD2H != wantOut {
		t.Errorf("d2h bytes = %d, want %d", res.BytesD2H, wantOut)
	}
	wantK := int64(4 * 4 * 4)
	if res.Subkernels != wantK {
		t.Errorf("subkernels = %d, want %d", res.Subkernels, wantK)
	}
	// The invariant must hold at plan time too: the plan's annotations and
	// the closed-form volumes both predict the executed traffic.
	p, err := c.PlanGemm(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Volumes{BytesH2D: wantIn, BytesD2H: wantOut, Subkernels: wantK}
	if v := p.Volumes(); v != want {
		t.Errorf("plan annotations = %+v, want %+v", v, want)
	}
	spec := plan.GemmSpec{Dtype: kernelmodel.F64, TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: m, N: n, K: k, Alpha: 1, Beta: 1,
		LocA: model.OnHost, LocB: model.OnHost, LocC: model.OnHost, T: T}
	if v := plan.GemmVolumes(spec); v != want {
		t.Errorf("closed-form volumes = %+v, want %+v", v, want)
	}
}

func TestGemmOverlapBeatsSerial(t *testing.T) {
	// The pipelined makespan must beat the no-overlap lower bound of
	// transfers + compute executed serially.
	c := newCtx(false)
	m := 4096
	T := 1024
	A := &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m}
	B := &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m}
	C := &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostLd: m}
	res, err := c.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: A, B: B, C: C, T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	tb := c.rt.Device().Testbed()
	gpu := &tb.GPU
	bytesIn := float64(3*m*m) * 8
	bytesOut := float64(m*m) * 8
	serial := bytesIn/tb.H2D.BandwidthBps + bytesOut/tb.D2H.BandwidthBps
	perTile := kernelmodel.GemmTime(gpu, kernelmodel.F64, T, T, T)
	serial += perTile * 64
	if res.Seconds >= serial {
		t.Errorf("makespan %g not better than serial bound %g", res.Seconds, serial)
	}
	// And it cannot beat the compute-only lower bound.
	if res.Seconds < perTile*64 {
		t.Errorf("makespan %g below compute bound %g", res.Seconds, perTile*64)
	}
}

func TestGemmValidation(t *testing.T) {
	c := newCtx(false)
	ok := &Matrix{Rows: 64, Cols: 64, Loc: model.OnHost, HostLd: 64}
	cases := []GemmOpts{
		{Dtype: kernelmodel.F64, M: 0, N: 64, K: 64, A: ok, B: ok, C: ok, T: 32},
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64, A: ok, B: ok, C: ok, T: 0},
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64, A: nil, B: ok, C: ok, T: 32},
		{Dtype: kernelmodel.F64, M: 64, N: 32, K: 64, A: ok, B: ok, C: ok, T: 32}, // shape mismatch
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64,
			A: &Matrix{Rows: 64, Cols: 64, Loc: model.OnHost, HostLd: 10}, B: ok, C: ok, T: 32},
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64,
			A: &Matrix{Rows: 64, Cols: 64, Loc: model.OnDevice}, B: ok, C: ok, T: 32}, // no dev buffer
	}
	for i, opts := range cases {
		if _, err := c.Gemm(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAxpyAllLocationCombos(t *testing.T) {
	for _, combo := range model.LocCombos(2) {
		c := newCtx(true)
		n, T := 1000, 256
		rng := rand.New(rand.NewSource(11))
		hostX := randMat(rng, n, 1)
		hostY := randMat(rng, n, 1)
		ref := append([]float64(nil), hostY...)
		if err := blas.Daxpy(n, 2.5, hostX, 1, ref, 1); err != nil {
			t.Fatal(err)
		}
		vec := func(host []float64, loc model.Loc) *Vector {
			if loc == model.OnHost {
				return &Vector{N: n, Loc: model.OnHost, HostF64: host}
			}
			buf, err := c.rt.Malloc(kernelmodel.F64, int64(n), true)
			if err != nil {
				t.Fatal(err)
			}
			s := c.rt.NewStream()
			if _, err := s.MemcpyH2DAsync(buf, 0, host, nil, int64(n)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.rt.Sync(); err != nil {
				t.Fatal(err)
			}
			return &Vector{N: n, Loc: model.OnDevice, Dev: buf}
		}
		x := vec(hostX, combo[0])
		y := vec(hostY, combo[1])
		res, err := c.Axpy(AxpyOpts{N: n, Alpha: 2.5, X: x, Y: y, T: T})
		if err != nil {
			t.Fatalf("combo %v: %v", combo, err)
		}
		got := hostY
		if combo[1] == model.OnDevice {
			got = make([]float64, n)
			s := c.rt.NewStream()
			if _, err := s.MemcpyD2HAsync(got, nil, y.Dev, 0, int64(n)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.rt.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if d := maxDiff(got, ref); d > 1e-12 {
			t.Errorf("combo %v: axpy differs by %g", combo, d)
		}
		if res.Subkernels != 4 {
			t.Errorf("combo %v: %d chunks, want 4", combo, res.Subkernels)
		}
	}
}

func TestAxpyValidation(t *testing.T) {
	c := newCtx(false)
	x := &Vector{N: 100, Loc: model.OnHost}
	if _, err := c.Axpy(AxpyOpts{N: 0, X: x, Y: x, T: 10}); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := c.Axpy(AxpyOpts{N: 100, X: x, Y: x, T: 0}); err == nil {
		t.Error("T=0 should error")
	}
	if _, err := c.Axpy(AxpyOpts{N: 100, X: nil, Y: x, T: 10}); err == nil {
		t.Error("nil x should error")
	}
	y := &Vector{N: 50, Loc: model.OnHost}
	if _, err := c.Axpy(AxpyOpts{N: 100, X: x, Y: y, T: 10}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestBufferPoolReuseAcrossCalls(t *testing.T) {
	// The second identical call must reuse pooled buffers: device memory
	// peak should not double.
	c := newCtx(false)
	opts := GemmOpts{
		Dtype: kernelmodel.F64, M: 512, N: 512, K: 512, Alpha: 1, Beta: 1,
		A: &Matrix{Rows: 512, Cols: 512, Loc: model.OnHost, HostLd: 512},
		B: &Matrix{Rows: 512, Cols: 512, Loc: model.OnHost, HostLd: 512},
		C: &Matrix{Rows: 512, Cols: 512, Loc: model.OnHost, HostLd: 512},
		T: 128,
	}
	if _, err := c.Gemm(opts); err != nil {
		t.Fatal(err)
	}
	peak1 := c.rt.Device().MemPeak()
	if _, err := c.Gemm(opts); err != nil {
		t.Fatal(err)
	}
	if peak2 := c.rt.Device().MemPeak(); peak2 != peak1 {
		t.Errorf("second call grew the memory peak: %d -> %d", peak1, peak2)
	}
	if err := c.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	if used := c.rt.Device().MemUsed(); used != 0 {
		t.Errorf("ReleaseAll left %d bytes allocated", used)
	}
}

func TestGemmDeterministicTiming(t *testing.T) {
	run := func() float64 {
		c := newCtx(false)
		res, err := c.Gemm(GemmOpts{
			Dtype: kernelmodel.F64, M: 1024, N: 1024, K: 1024, Alpha: 1, Beta: 1,
			A: &Matrix{Rows: 1024, Cols: 1024, Loc: model.OnHost, HostLd: 1024},
			B: &Matrix{Rows: 1024, Cols: 1024, Loc: model.OnHost, HostLd: 1024},
			C: &Matrix{Rows: 1024, Cols: 1024, Loc: model.OnHost, HostLd: 1024},
			T: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	if run() != run() {
		t.Error("noiseless runs must be deterministic")
	}
}
