package sched

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
	"cocopelia/internal/plan"
)

// spdMatrix builds a symmetric positive-definite n x n matrix M·M^T + n·I.
func spdMatrix(rng *rand.Rand, n int) []float64 {
	m := randMat(rng, n, n)
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[i+k*n] * m[j+k*n]
			}
			a[i+j*n] = s
		}
		a[j+j*n] += float64(n)
	}
	return a
}

// lowerMaxDiff compares two column-major n x n matrices on the lower
// triangle only.
func lowerMaxDiff(a, b []float64, n int) float64 {
	var m float64
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if d := math.Abs(a[i+j*n] - b[i+j*n]); d > m {
				m = d
			}
		}
	}
	return m
}

// readDevice copies a device-resident matrix back to a fresh host slice.
func readDevice(t *testing.T, c *Context, m *Matrix) []float64 {
	t.Helper()
	got := make([]float64, m.Rows*m.Cols)
	s := c.rt.NewStream()
	if _, err := s.MemcpyD2HAsync(got, nil, m.Dev, 0, int64(len(got))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.rt.Sync(); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCholeskyMatchesUnblocked(t *testing.T) {
	// Ragged n exercises the edge-tile shapes of every kernel kind.
	for _, loc := range []model.Loc{model.OnHost, model.OnDevice} {
		c := newCtx(true)
		n, T := 52, 16
		rng := rand.New(rand.NewSource(5))
		host := spdMatrix(rng, n)
		ref := append([]float64(nil), host...)
		if err := blas.Potrf(blas.Lower, n, ref, n); err != nil {
			t.Fatal(err)
		}
		var A *Matrix
		if loc == model.OnHost {
			A = &Matrix{Rows: n, Cols: n, Loc: model.OnHost, HostF64: host, HostLd: n}
		} else {
			A = deviceMatrix(t, c, n, n, host)
		}
		res, err := c.Cholesky(CholeskyOpts{Dtype: kernelmodel.F64, N: n, A: A, T: T})
		if err != nil {
			t.Fatalf("loc %v: %v", loc, err)
		}
		got := host
		if loc == model.OnDevice {
			got = readDevice(t, c, A)
		}
		if d := lowerMaxDiff(got, ref, n); d > 1e-9 {
			t.Errorf("loc %v: tiled L differs from unblocked by %g", loc, d)
		}
		// nt=4: 4 potrf + 6 trsm + 6 syrk + 4 gemm.
		if res.Subkernels != 20 {
			t.Errorf("loc %v: subkernels = %d, want 20", loc, res.Subkernels)
		}
	}
}

func TestCholeskyUpperTilesUntouched(t *testing.T) {
	c := newCtx(true)
	n, T := 48, 16
	rng := rand.New(rand.NewSource(6))
	host := spdMatrix(rng, n)
	orig := append([]float64(nil), host...)
	A := &Matrix{Rows: n, Cols: n, Loc: model.OnHost, HostF64: host, HostLd: n}
	if _, err := c.Cholesky(CholeskyOpts{Dtype: kernelmodel.F64, N: n, A: A, T: T}); err != nil {
		t.Fatal(err)
	}
	// Tiles strictly above the diagonal never cross the link.
	for tj := 1; tj < n/T; tj++ {
		for ti := 0; ti < tj; ti++ {
			for j := tj * T; j < (tj+1)*T; j++ {
				for i := ti * T; i < (ti+1)*T; i++ {
					if host[i+j*n] != orig[i+j*n] {
						t.Fatalf("above-diagonal tile (%d,%d) modified at (%d,%d)", ti, tj, i, j)
					}
				}
			}
		}
	}
}

func TestCholeskyVolumesMatchClosedForm(t *testing.T) {
	for _, n := range []int{48, 52, 100} {
		c := newCtx(false)
		T := 16
		A := &Matrix{Rows: n, Cols: n, Loc: model.OnHost, HostLd: n}
		opts := CholeskyOpts{Dtype: kernelmodel.F64, N: n, A: A, T: T}
		p, err := c.PlanCholesky(opts)
		if err != nil {
			t.Fatal(err)
		}
		spec := plan.CholeskySpec{Dtype: kernelmodel.F64, N: n, LocA: model.OnHost, T: T}
		if got, want := p.Volumes(), plan.CholeskyVolumes(spec); got != want {
			t.Errorf("n=%d: plan volumes %+v, closed form %+v", n, got, want)
		}
		res, err := c.CholeskyWith(p, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.BytesH2D != p.BytesH2D || res.BytesD2H != p.BytesD2H {
			t.Errorf("n=%d: executed traffic (%d, %d) != annotations (%d, %d)",
				n, res.BytesH2D, res.BytesD2H, p.BytesH2D, p.BytesD2H)
		}
	}
}

func TestLUMatchesUnblocked(t *testing.T) {
	c := newCtx(true)
	n, T := 52, 16
	rng := rand.New(rand.NewSource(7))
	host := randMat(rng, n, n)
	// Diagonal dominance keeps the unpivoted factorization stable.
	for j := 0; j < n; j++ {
		host[j+j*n] += float64(n)
	}
	ref := append([]float64(nil), host...)
	if err := blas.Getrf(n, ref, n); err != nil {
		t.Fatal(err)
	}
	A := &Matrix{Rows: n, Cols: n, Loc: model.OnHost, HostF64: host, HostLd: n}
	res, err := c.LU(LUOpts{Dtype: kernelmodel.F64, N: n, A: A, T: T})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(host, ref); d > 1e-9 {
		t.Errorf("tiled LU differs from unblocked by %g", d)
	}
	// nt=4: 4 getrf + 12 trsm + 14 gemm.
	if res.Subkernels != 30 {
		t.Errorf("subkernels = %d, want 30", res.Subkernels)
	}
	spec := plan.LUSpec{Dtype: kernelmodel.F64, N: n, LocA: model.OnHost, T: T}
	want := plan.LUVolumes(spec)
	if res.BytesH2D != want.BytesH2D || res.BytesD2H != want.BytesD2H || res.Subkernels != want.Subkernels {
		t.Errorf("traffic %+v does not match closed form %+v", res, want)
	}
}

func TestTrsmMatchesReference(t *testing.T) {
	for _, diag := range []byte{blas.NonUnit, blas.Unit} {
		c := newCtx(true)
		m, n, T := 52, 37, 16
		alpha := 0.75
		rng := rand.New(rand.NewSource(8))
		hostA := randMat(rng, m, m)
		for j := 0; j < m; j++ {
			hostA[j+j*m] += float64(m) // well-conditioned solves
		}
		hostB := randMat(rng, m, n)
		ref := append([]float64(nil), hostB...)
		if err := blas.Trsm(blas.Left, blas.Lower, blas.NoTrans, diag,
			m, n, alpha, hostA, m, ref, m); err != nil {
			t.Fatal(err)
		}
		A := &Matrix{Rows: m, Cols: m, Loc: model.OnHost, HostF64: hostA, HostLd: m}
		B := &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF64: hostB, HostLd: m}
		res, err := c.Trsm(TrsmOpts{
			Dtype: kernelmodel.F64, Diag: diag, M: m, N: n, Alpha: alpha,
			A: A, B: B, T: T,
		})
		if err != nil {
			t.Fatalf("diag %q: %v", diag, err)
		}
		// Unit-diag solves lack the diagonal-dominance conditioning boost
		// (the implicit unit diagonal ignores the boosted entries), so the
		// tolerance is looser than the other factorization checks.
		if d := maxDiff(hostB, ref); d > 1e-7 {
			t.Errorf("diag %q: tiled solve differs from reference by %g", diag, d)
		}
		spec := plan.TrsmSpec{Dtype: kernelmodel.F64, Diag: diag, M: m, N: n,
			Alpha: alpha, LocA: model.OnHost, LocB: model.OnHost, T: T}
		want := plan.TrsmVolumes(spec)
		if res.BytesH2D != want.BytesH2D || res.BytesD2H != want.BytesD2H || res.Subkernels != want.Subkernels {
			t.Errorf("diag %q: traffic %+v does not match closed form %+v", diag, res, want)
		}
	}
}

func TestFactorPlanReplayDeterministic(t *testing.T) {
	// A cached plan must replay with identical timing, and *With must match
	// Cholesky/LU/Trsm built fresh.
	run := func(with bool) (float64, float64, float64) {
		c := newCtx(false)
		n, T := 104, 32
		A := &Matrix{Rows: n, Cols: n, Loc: model.OnHost, HostLd: n}
		B := &Matrix{Rows: n, Cols: n, Loc: model.OnHost, HostLd: n}
		chOpts := CholeskyOpts{Dtype: kernelmodel.F64, N: n, A: A, T: T}
		luOpts := LUOpts{Dtype: kernelmodel.F64, N: n, A: A, T: T}
		trOpts := TrsmOpts{Dtype: kernelmodel.F64, M: n, N: n, Alpha: 1, A: A, B: B, T: T}
		var ch, lu, tr Result
		var err error
		if with {
			var p *plan.Plan
			if p, err = c.PlanCholesky(chOpts); err != nil {
				t.Fatal(err)
			}
			if ch, err = c.CholeskyWith(p, chOpts); err != nil {
				t.Fatal(err)
			}
			if p, err = c.PlanLU(luOpts); err != nil {
				t.Fatal(err)
			}
			if lu, err = c.LUWith(p, luOpts); err != nil {
				t.Fatal(err)
			}
			if p, err = c.PlanTrsm(trOpts); err != nil {
				t.Fatal(err)
			}
			if tr, err = c.TrsmWith(p, trOpts); err != nil {
				t.Fatal(err)
			}
		} else {
			if ch, err = c.Cholesky(chOpts); err != nil {
				t.Fatal(err)
			}
			if lu, err = c.LU(luOpts); err != nil {
				t.Fatal(err)
			}
			if tr, err = c.Trsm(trOpts); err != nil {
				t.Fatal(err)
			}
		}
		return ch.Seconds, lu.Seconds, tr.Seconds
	}
	c1, l1, t1 := run(false)
	c2, l2, t2 := run(true)
	if c1 != c2 || l1 != l2 || t1 != t2 {
		t.Errorf("plan replay differs from direct run: (%g,%g,%g) vs (%g,%g,%g)",
			c1, l1, t1, c2, l2, t2)
	}
}

func TestFactorValidation(t *testing.T) {
	c := newCtx(false)
	ok := &Matrix{Rows: 64, Cols: 64, Loc: model.OnHost, HostLd: 64}
	if _, err := c.Cholesky(CholeskyOpts{Dtype: kernelmodel.F64, N: 0, A: ok, T: 32}); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := c.Cholesky(CholeskyOpts{Dtype: kernelmodel.F64, N: 64, A: ok, T: 0}); err == nil {
		t.Error("T=0 should error")
	}
	if _, err := c.LU(LUOpts{Dtype: kernelmodel.F64, N: 32, A: ok, T: 16}); err == nil {
		t.Error("shape mismatch should error")
	}
	bad := &Matrix{Rows: 64, Cols: 64, Loc: model.OnHost, HostLd: 64}
	if _, err := c.Trsm(TrsmOpts{Dtype: kernelmodel.F64, Side: blas.Right,
		M: 64, N: 64, Alpha: 1, A: ok, B: bad, T: 32}); err == nil {
		t.Error("unsupported side should error")
	}
	if _, err := c.Trsm(TrsmOpts{Dtype: kernelmodel.F64, Uplo: blas.Upper,
		M: 64, N: 64, Alpha: 1, A: ok, B: bad, T: 32}); err == nil {
		t.Error("unsupported uplo should error")
	}
	if _, err := c.Trsm(TrsmOpts{Dtype: kernelmodel.F64, Diag: 'X',
		M: 64, N: 64, Alpha: 1, A: ok, B: bad, T: 32}); err == nil {
		t.Error("bad diag should error")
	}
	// A replayed plan must match the invocation, including the diag flag.
	opts := TrsmOpts{Dtype: kernelmodel.F64, M: 64, N: 64, Alpha: 1, A: ok, B: bad, T: 32}
	p, err := c.PlanTrsm(opts)
	if err != nil {
		t.Fatal(err)
	}
	other := opts
	other.Diag = blas.Unit
	if _, err := c.TrsmWith(p, other); err == nil {
		t.Error("diag mismatch should error")
	}
	ch, err := c.PlanCholesky(CholeskyOpts{Dtype: kernelmodel.F64, N: 64, A: ok, T: 32})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LUWith(ch, LUOpts{Dtype: kernelmodel.F64, N: 64, A: ok, T: 32}); err == nil {
		t.Error("routine mismatch should error")
	}
}

// TestFactorWorkerInvariance runs each factorization on noisy backed
// contexts with payload worker pools of 1, 2 and 8 and demands
// Float64bits-identical timings and output payloads: the parallel payload
// engine must not change any simulated or numerical result.
func TestFactorWorkerInvariance(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, c *Context) (Result, []float64)
	}{
		{"cholesky", func(t *testing.T, c *Context) (Result, []float64) {
			n := 100
			a := equivMat(t, c, n, n, spdMatrix(rand.New(rand.NewSource(41)), n), model.OnHost)
			res, err := c.Cholesky(CholeskyOpts{Dtype: kernelmodel.F64, N: n, A: a, T: 32})
			if err != nil {
				t.Fatal(err)
			}
			return res, output(t, c, a)
		}},
		{"lu", func(t *testing.T, c *Context) (Result, []float64) {
			n := 100
			host := randMat(rand.New(rand.NewSource(43)), n, n)
			for i := 0; i < n; i++ {
				host[i+i*n] += float64(n)
			}
			a := equivMat(t, c, n, n, host, model.OnHost)
			res, err := c.LU(LUOpts{Dtype: kernelmodel.F64, N: n, A: a, T: 32})
			if err != nil {
				t.Fatal(err)
			}
			return res, output(t, c, a)
		}},
		{"trsm", func(t *testing.T, c *Context) (Result, []float64) {
			m, n := 96, 64
			rng := rand.New(rand.NewSource(47))
			hostA := randMat(rng, m, m)
			for i := 0; i < m; i++ {
				hostA[i+i*m] += float64(m)
			}
			a := equivMat(t, c, m, m, hostA, model.OnHost)
			b := equivMat(t, c, m, n, randMat(rng, m, n), model.OnHost)
			res, err := c.Trsm(TrsmOpts{Dtype: kernelmodel.F64, M: m, N: n,
				Alpha: 0.75, A: a, B: b, T: 32})
			if err != nil {
				t.Fatal(err)
			}
			return res, output(t, c, b)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref Result
			var refOut []float64
			for i, workers := range []int{1, 2, 8} {
				c := equivCtx(workers)
				res, out := tc.run(t, c)
				if i == 0 {
					ref, refOut = res, out
					continue
				}
				if math.Float64bits(res.Seconds) != math.Float64bits(ref.Seconds) {
					t.Errorf("workers=%d: Seconds diverged: %v vs %v", workers, res.Seconds, ref.Seconds)
				}
				if res.Subkernels != ref.Subkernels || res.BytesH2D != ref.BytesH2D ||
					res.BytesD2H != ref.BytesD2H {
					t.Errorf("workers=%d: annotations diverged: %+v vs %+v", workers, res, ref)
				}
				if len(out) != len(refOut) {
					t.Fatalf("workers=%d: payload length diverged", workers)
				}
				for j := range out {
					if math.Float64bits(out[j]) != math.Float64bits(refOut[j]) {
						t.Fatalf("workers=%d: payload diverged at %d: %x vs %x",
							workers, j, math.Float64bits(out[j]), math.Float64bits(refOut[j]))
					}
				}
			}
		})
	}
}
