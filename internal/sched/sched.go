// Package sched implements the CoCoPeLia library's tile scheduler (the
// paper's Section IV-C): square tiling, per-operation CUDA streams (one for
// h2d, one for d2h, one for kernel execution), full data reuse (each input
// tile crosses the link exactly once), location-aware transfers, and GPU
// buffer/stream reuse across calls.
//
// The scheduler is generalized per BLAS level: the level-3 path (gemm)
// walks the output tiles accumulating over the K dimension, and the level-1
// path (axpy) pipelines 1-D chunks. Adding a routine requires only a
// wrapper that maps its operands onto these paths, as in the paper.
package sched

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
)

// Matrix, Vector and Result are the shared operand descriptors.
type (
	// Matrix aliases operand.Matrix for caller convenience.
	Matrix = operand.Matrix
	// Vector aliases operand.Vector.
	Vector = operand.Vector
	// Result aliases operand.Result.
	Result = operand.Result
)

// poolKey identifies reusable device buffers by dtype and capacity.
type poolKey struct {
	dt    kernelmodel.Dtype
	elems int64
}

// poolBucket holds the free buffers of one shape. Buckets live in a slice
// rather than a map: a call touches only a handful of shapes, the linear
// scan is cheaper than hashing on the per-tile acquire path, and iteration
// order is deterministic.
type poolBucket struct {
	key  poolKey
	bufs []*cudart.DevBuffer
}

// Context holds the reusable state of the CoCoPeLia library on one device:
// the three operation streams and the tile-buffer pool. Reusing a Context
// across calls emulates the paper's iterative use-case (no per-call
// allocation/stream-creation overhead after the first call).
type Context struct {
	rt     *cudart.Runtime
	h2d    *cudart.Stream
	d2h    *cudart.Stream
	comp   *cudart.Stream
	pool   []poolBucket
	backed bool

	// Reusable per-call scratch, so the tile loops of gemm/gemv/noreuse
	// allocate nothing once the context is warm.
	aCache, bCache, cCache tileCache
	gemmPooled             []*cudart.DevBuffer
	xChunks                []vecChunk
	wbEvents               []*cudart.Event
	slots                  []slotGroup
	// overheadS is an optional per-sub-kernel dispatch overhead occupying
	// the compute pipeline; the CoCoPeLia library leaves it zero, while
	// comparator wrappers (e.g. the BLASX-style library with its runtime
	// tile-management engine) use it to model their scheduling cost.
	overheadS float64
	// blockingWriteback makes the compute stream wait for each completed
	// output tile's write-back before starting the next tile — the
	// synchronization behaviour of tile-manager runtimes that confirm an
	// output tile's host copy before recycling its cache slot. The
	// CoCoPeLia library leaves this off (write-backs are fully
	// asynchronous on the d2h stream).
	blockingWriteback bool
}

// SetDispatchOverhead sets the per-sub-kernel dispatch overhead in seconds.
func (c *Context) SetDispatchOverhead(seconds float64) { c.overheadS = seconds }

// SetBlockingWriteback toggles compute-blocking output write-backs.
func (c *Context) SetBlockingWriteback(on bool) { c.blockingWriteback = on }

// NewContext creates a scheduler context. backed selects functional runs
// (real arithmetic on real storage); timing-only runs pass false.
func NewContext(rt *cudart.Runtime, backed bool) *Context {
	return &Context{
		rt:     rt,
		h2d:    rt.NewStream(),
		d2h:    rt.NewStream(),
		comp:   rt.NewStream(),
		backed: backed,
	}
}

// Runtime returns the underlying CUDA-like runtime.
func (c *Context) Runtime() *cudart.Runtime { return c.rt }

// bucket returns the pool bucket for key, or nil.
func (c *Context) bucket(key poolKey) *poolBucket {
	for i := range c.pool {
		if c.pool[i].key == key {
			return &c.pool[i]
		}
	}
	return nil
}

// acquire returns a device buffer of at least elems elements, reusing the
// pool when possible. When the device is out of memory, pooled buffers of
// OTHER shapes are evicted largest-first — one at a time, retrying the
// allocation after each — so the current tile shape's pool survives long
// sweeps over many tile sizes.
func (c *Context) acquire(dt kernelmodel.Dtype, elems int64) (*cudart.DevBuffer, error) {
	key := poolKey{dt, elems}
	if bk := c.bucket(key); bk != nil && len(bk.bufs) > 0 {
		n := len(bk.bufs) - 1
		b := bk.bufs[n]
		bk.bufs[n] = nil
		bk.bufs = bk.bufs[:n]
		return b, nil
	}
	b, err := c.rt.Malloc(dt, elems, c.backed)
	for errors.Is(err, device.ErrOutOfMemory) {
		evicted, ferr := c.evictLargest(key)
		if ferr != nil {
			return nil, ferr
		}
		if !evicted {
			break
		}
		b, err = c.rt.Malloc(dt, elems, c.backed)
	}
	return b, err
}

// evictLargest frees one pooled buffer of the largest byte size among the
// shapes other than keep, reporting whether anything was freed.
func (c *Context) evictLargest(keep poolKey) (bool, error) {
	best := -1
	var bestBytes int64
	for i := range c.pool {
		bk := &c.pool[i]
		if bk.key == keep || len(bk.bufs) == 0 {
			continue
		}
		if bytes := bk.key.elems * bk.key.dt.Size(); bytes > bestBytes {
			best, bestBytes = i, bytes
		}
	}
	if best < 0 {
		return false, nil
	}
	bk := &c.pool[best]
	n := len(bk.bufs) - 1
	b := bk.bufs[n]
	bk.bufs[n] = nil
	bk.bufs = bk.bufs[:n]
	if err := c.rt.Free(b); err != nil {
		return false, err
	}
	return true, nil
}

// release returns a buffer to the pool for reuse by later calls.
func (c *Context) release(b *cudart.DevBuffer) {
	key := poolKey{b.Dtype(), b.Elems()}
	if bk := c.bucket(key); bk != nil {
		bk.bufs = append(bk.bufs, b)
		return
	}
	c.pool = append(c.pool, poolBucket{key: key, bufs: []*cudart.DevBuffer{b}})
}

// ReleaseAll frees every pooled buffer back to the device, keeping the
// (empty) buckets for reuse.
func (c *Context) ReleaseAll() error {
	for i := range c.pool {
		bk := &c.pool[i]
		for j, b := range bk.bufs {
			bk.bufs[j] = nil
			if err := c.rt.Free(b); err != nil {
				return err
			}
		}
		bk.bufs = bk.bufs[:0]
	}
	return nil
}

// GemmOpts parameterizes a tiled gemm invocation:
// C[MxN] = alpha·op(A)·op(B) + beta·C with op controlled by the BLAS
// transpose flags (zero values mean NoTrans). A is stored MxK (KxM when
// transposed); B is stored KxN (NxK when transposed).
type GemmOpts struct {
	Dtype          kernelmodel.Dtype
	TransA, TransB byte
	M, N, K        int
	Alpha, Beta    float64
	A, B, C        *Matrix
	// T is the square tiling size (required; auto-selection lives above
	// this layer in the public API).
	T int
}

// normTrans maps the zero value to NoTrans and validates the flag.
func normTrans(t byte) (byte, error) {
	switch t {
	case 0, blas.NoTrans:
		return blas.NoTrans, nil
	case blas.Trans:
		return blas.Trans, nil
	}
	return 0, fmt.Errorf("sched: bad transpose flag %q", t)
}

// devTile is a device-resident tile with its layout.
type devTile struct {
	buf   *cudart.DevBuffer
	off   int64
	ld    int
	ready *cudart.Event
}

// tileCache maps tile coordinates to device tiles over a reusable flat
// array with per-slot generation stamps: reset bumps the generation
// instead of clearing, so repeated calls on a warm context allocate
// nothing and never pay a per-slot wipe.
type tileCache struct {
	tiles []devTile
	gen   []uint32
	cols  int
	cur   uint32
}

// reset prepares the cache for a rows x cols tile grid, invalidating every
// slot.
func (tc *tileCache) reset(rows, cols int) {
	n := rows * cols
	if cap(tc.tiles) < n {
		tc.tiles = make([]devTile, n)
		tc.gen = make([]uint32, n)
		tc.cur = 0
	}
	tc.tiles = tc.tiles[:n]
	tc.gen = tc.gen[:n]
	tc.cols = cols
	tc.cur++
}

// at returns the slot for tile (ti, tj) and whether it holds a live entry.
// An absent slot's contents are stale; the caller fills it and calls put.
func (tc *tileCache) at(ti, tj int) (*devTile, bool) {
	i := ti*tc.cols + tj
	return &tc.tiles[i], tc.gen[i] == tc.cur
}

// put marks the slot for tile (ti, tj) live.
func (tc *tileCache) put(ti, tj int) {
	tc.gen[ti*tc.cols+tj] = tc.cur
}

// vecChunk is a staged 1-D chunk of a host vector (the level-2 path's x
// reuse cache). ready is nil while the slot is unused.
type vecChunk struct {
	buf   *cudart.DevBuffer
	off   int64
	ready *cudart.Event
}

// PendingGemm is an enqueued-but-not-drained tiled gemm: every transfer
// and kernel is on its streams, but the virtual clock has not been run.
// It exists so cooperating schedulers (the multi-GPU layer) can enqueue
// several schedules that then execute concurrently on a shared clock.
// A context supports one pending gemm at a time: the pending run borrows
// the context's reusable scratch, which the next enqueue reclaims.
type PendingGemm struct {
	ctx    *Context
	res    Result
	pooled []*cudart.DevBuffer
	start  float64
}

// Finish releases the pending run's pooled buffers and returns its
// result with the makespan measured to `end`. Call it exactly once, after
// the shared engine has drained.
func (p *PendingGemm) Finish(end float64) Result {
	for _, b := range p.pooled {
		p.ctx.release(b)
	}
	p.pooled = nil
	p.res.Seconds = end - p.start
	return p.res
}

// OnDrained enqueues fn to run when all work enqueued so far on the
// context's three streams has completed (used to timestamp a pending
// run's own completion inside a larger concurrent batch).
func (c *Context) OnDrained(fn func()) {
	s := c.rt.NewStream()
	s.WaitEvent(c.h2d.Record())
	s.WaitEvent(c.comp.Record())
	s.WaitEvent(c.d2h.Record())
	s.Callback(fn)
}

// Gemm executes C = alpha*A*B + beta*C with square tiling size opts.T,
// full data reuse and 3-way overlap, then synchronizes and reports the
// run. Ragged edge tiles (dimensions not divisible by T) are handled.
func (c *Context) Gemm(opts GemmOpts) (Result, error) {
	pend, err := c.GemmEnqueue(opts)
	if err != nil {
		return Result{}, err
	}
	end, err := c.rt.Sync()
	res := pend.Finish(end)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// GemmEnqueue builds the full tiled schedule on the context's streams
// without draining the engine. See Gemm for semantics.
func (c *Context) GemmEnqueue(opts GemmOpts) (*PendingGemm, error) {
	if opts.M <= 0 || opts.N <= 0 || opts.K <= 0 {
		return nil, fmt.Errorf("sched: non-positive gemm dims %dx%dx%d", opts.M, opts.N, opts.K)
	}
	if opts.T <= 0 {
		return nil, fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	dt := opts.Dtype
	transA, err := normTrans(opts.TransA)
	if err != nil {
		return nil, err
	}
	transB, err := normTrans(opts.TransB)
	if err != nil {
		return nil, err
	}
	if err := opts.A.Validate("A", dt, c.backed); err != nil {
		return nil, err
	}
	if err := opts.B.Validate("B", dt, c.backed); err != nil {
		return nil, err
	}
	if err := opts.C.Validate("C", dt, c.backed); err != nil {
		return nil, err
	}
	aRows, aCols := opts.M, opts.K
	if transA == blas.Trans {
		aRows, aCols = opts.K, opts.M
	}
	bRows, bCols := opts.K, opts.N
	if transB == blas.Trans {
		bRows, bCols = opts.N, opts.K
	}
	if opts.A.Rows != aRows || opts.A.Cols != aCols ||
		opts.B.Rows != bRows || opts.B.Cols != bCols ||
		opts.C.Rows != opts.M || opts.C.Cols != opts.N {
		return nil, errors.New("sched: operand shapes inconsistent with m, n, k and transposes")
	}

	T := opts.T
	mt := ceil(opts.M, T)
	nt := ceil(opts.N, T)
	kt := ceil(opts.K, T)

	res := Result{T: T}
	start := c.rt.Now()

	// Tile caches: fetched-once device tiles per operand, keyed by STORED
	// tile coordinates (so the grids follow the transposes). The caches and
	// the pooled-buffer list reuse context-owned backing; a context
	// therefore supports one pending gemm at a time (see PendingGemm).
	aGridR, aGridC := mt, kt
	if transA == blas.Trans {
		aGridR, aGridC = kt, mt
	}
	bGridR, bGridC := kt, nt
	if transB == blas.Trans {
		bGridR, bGridC = nt, kt
	}
	c.aCache.reset(aGridR, aGridC)
	c.bCache.reset(bGridR, bGridC)
	c.cCache.reset(mt, nt)
	pooled := c.gemmPooled[:0]

	fail := func(err error) (*PendingGemm, error) {
		for _, b := range pooled {
			c.release(b)
		}
		c.gemmPooled = pooled[:0]
		return nil, err
	}

	// getTile returns (fetching on first use) the device tile (ti, tj) of
	// the operand. rows/cols are the tile's actual dimensions.
	getTile := func(m *Matrix, cache *tileCache, ti, tj, rows, cols int, fetch bool) (*devTile, error) {
		t, ok := cache.at(ti, tj)
		if ok {
			return t, nil
		}
		if m.Loc == model.OnDevice {
			t.buf = m.Dev
			t.off = int64(ti*T) + int64(tj*T)*int64(m.DevLd)
			t.ld = m.DevLd
			t.ready = cudart.DoneEvent()
			cache.put(ti, tj)
			return t, nil
		}
		buf, err := c.acquire(dt, int64(rows)*int64(cols))
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, buf)
		t.buf, t.off, t.ld = buf, 0, rows
		if fetch {
			h64, h32 := m.HostSlices(ti*T, tj*T)
			ev, err := c.h2d.SetMatrixAsync(rows, cols, h64, h32, m.HostLd, buf, 0, rows)
			if err != nil {
				return nil, err
			}
			t.ready = ev
			res.BytesH2D += int64(rows) * int64(cols) * dt.Size()
		} else {
			t.ready = cudart.DoneEvent()
		}
		cache.put(ti, tj)
		return t, nil
	}

	fetchC := opts.Beta != 0 // C contributes only when beta != 0

	// Walk output tiles; accumulate over K on the compute stream.
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < mt; ti++ {
			rows := min(T, opts.M-ti*T)
			cols := min(T, opts.N-tj*T)
			cTile, err := getTile(opts.C, &c.cCache, ti, tj, rows, cols, fetchC)
			if err != nil {
				return fail(err)
			}
			for tk := 0; tk < kt; tk++ {
				inner := min(T, opts.K-tk*T)
				// Tiles are cached and fetched in STORED coordinates; the
				// kernel applies the transpose.
				ai, aj, ar, ac := ti, tk, rows, inner
				if transA == blas.Trans {
					ai, aj, ar, ac = tk, ti, inner, rows
				}
				aTile, err := getTile(opts.A, &c.aCache, ai, aj, ar, ac, true)
				if err != nil {
					return fail(err)
				}
				bi, bj, br, bc := tk, tj, inner, cols
				if transB == blas.Trans {
					bi, bj, br, bc = tj, tk, cols, inner
				}
				bTile, err := getTile(opts.B, &c.bCache, bi, bj, br, bc, true)
				if err != nil {
					return fail(err)
				}
				c.comp.WaitEvent(aTile.ready)
				c.comp.WaitEvent(bTile.ready)
				beta := 1.0
				if tk == 0 {
					c.comp.WaitEvent(cTile.ready)
					beta = opts.Beta
					if !fetchC {
						beta = 0
					}
				}
				if c.overheadS > 0 {
					if _, err := c.comp.KernelAsync("dispatch", c.overheadS, nil); err != nil {
						return fail(err)
					}
				}
				if _, err := c.comp.GemmAsync(transA, transB,
					rows, cols, inner, opts.Alpha,
					aTile.buf, aTile.off, aTile.ld,
					bTile.buf, bTile.off, bTile.ld,
					beta, cTile.buf, cTile.off, cTile.ld); err != nil {
					return fail(err)
				}
				res.Subkernels++
			}
			// Write the finished C tile back if C lives on the host.
			if opts.C.Loc == model.OnHost {
				c.d2h.WaitEvent(c.comp.Record())
				h64, h32 := opts.C.HostSlices(ti*T, tj*T)
				if _, err := c.d2h.GetMatrixAsync(rows, cols,
					cTile.buf, cTile.off, cTile.ld, h64, h32, opts.C.HostLd); err != nil {
					return fail(err)
				}
				res.BytesD2H += int64(rows) * int64(cols) * dt.Size()
				if c.blockingWriteback {
					c.comp.WaitEvent(c.d2h.Record())
				}
			}
		}
	}

	c.gemmPooled = pooled
	return &PendingGemm{ctx: c, res: res, pooled: pooled, start: start}, nil
}

// AxpyOpts parameterizes a tiled daxpy invocation.
type AxpyOpts struct {
	N     int
	Alpha float64
	X, Y  *Vector
	// T is the 1-D chunk length.
	T int
}

// Axpy executes y += alpha*x with 1-D tiling and 3-way overlap.
func (c *Context) Axpy(opts AxpyOpts) (Result, error) {
	if opts.N <= 0 {
		return Result{}, fmt.Errorf("sched: non-positive axpy length %d", opts.N)
	}
	if opts.T <= 0 {
		return Result{}, fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	if err := opts.X.Validate("x", c.backed); err != nil {
		return Result{}, err
	}
	if err := opts.Y.Validate("y", c.backed); err != nil {
		return Result{}, err
	}
	if opts.X.N != opts.N || opts.Y.N != opts.N {
		return Result{}, errors.New("sched: vector lengths inconsistent with n")
	}

	res := Result{T: opts.T}
	start := c.rt.Now()
	var pooled []*cudart.DevBuffer

	fail := func(err error) (Result, error) {
		for _, b := range pooled {
			c.release(b)
		}
		return Result{}, err
	}

	chunks := ceil(opts.N, opts.T)
	for ci := 0; ci < chunks; ci++ {
		off := ci * opts.T
		n := min(opts.T, opts.N-off)

		// x chunk.
		var xBuf *cudart.DevBuffer
		var xOff int64
		xReady := cudart.DoneEvent()
		if opts.X.Loc == model.OnDevice {
			xBuf, xOff = opts.X.Dev, int64(off)
		} else {
			b, err := c.acquire(kernelmodel.F64, int64(n))
			if err != nil {
				return fail(err)
			}
			pooled = append(pooled, b)
			xBuf, xOff = b, 0
			var host []float64
			if opts.X.HostF64 != nil {
				host = opts.X.HostF64[off:]
			}
			ev, err := c.h2d.MemcpyH2DAsync(b, 0, host, nil, int64(n))
			if err != nil {
				return fail(err)
			}
			xReady = ev
			res.BytesH2D += int64(n) * 8
		}

		// y chunk.
		var yBuf *cudart.DevBuffer
		var yOff int64
		yReady := cudart.DoneEvent()
		if opts.Y.Loc == model.OnDevice {
			yBuf, yOff = opts.Y.Dev, int64(off)
		} else {
			b, err := c.acquire(kernelmodel.F64, int64(n))
			if err != nil {
				return fail(err)
			}
			pooled = append(pooled, b)
			yBuf, yOff = b, 0
			var host []float64
			if opts.Y.HostF64 != nil {
				host = opts.Y.HostF64[off:]
			}
			ev, err := c.h2d.MemcpyH2DAsync(b, 0, host, nil, int64(n))
			if err != nil {
				return fail(err)
			}
			yReady = ev
			res.BytesH2D += int64(n) * 8
		}

		c.comp.WaitEvent(xReady)
		c.comp.WaitEvent(yReady)
		if _, err := c.comp.AxpyAsync(n, opts.Alpha, xBuf, xOff, yBuf, yOff); err != nil {
			return fail(err)
		}
		res.Subkernels++

		if opts.Y.Loc == model.OnHost {
			c.d2h.WaitEvent(c.comp.Record())
			var host []float64
			if opts.Y.HostF64 != nil {
				host = opts.Y.HostF64[off:]
			}
			if _, err := c.d2h.MemcpyD2HAsync(host, nil, yBuf, yOff, int64(n)); err != nil {
				return fail(err)
			}
			res.BytesD2H += int64(n) * 8
		}
	}

	end, err := c.rt.Sync()
	for _, b := range pooled {
		c.release(b)
	}
	if err != nil {
		return Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}

func ceil(a, b int) int { return (a + b - 1) / b }
