// Package sched implements the CoCoPeLia library's tile scheduler (the
// paper's Section IV-C): square tiling, per-operation CUDA streams (one for
// h2d, one for d2h, one for kernel execution), full data reuse (each input
// tile crosses the link exactly once), location-aware transfers, and GPU
// buffer/stream reuse across calls.
//
// The scheduler is split into planners and an executor: every entry point
// validates its operands, builds a deterministic tile-operation plan
// (internal/plan) and replays it onto the context's streams. Plans are pure
// functions of the routine geometry, so callers that repeat an invocation
// shape (campaign sweeps, multi-GPU panels) build the plan once and replay
// it with Plan*/​*With; the replay is event-identical to direct scheduling.
package sched

import (
	"errors"
	"fmt"
	"math"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/operand"
	"cocopelia/internal/plan"
)

// Matrix, Vector and Result are the shared operand descriptors.
type (
	// Matrix aliases operand.Matrix for caller convenience.
	Matrix = operand.Matrix
	// Vector aliases operand.Vector.
	Vector = operand.Vector
	// Result aliases operand.Result.
	Result = operand.Result
)

// poolKey identifies reusable device buffers by dtype and capacity.
type poolKey struct {
	dt    kernelmodel.Dtype
	elems int64
}

// poolBucket holds the free buffers of one shape. Buckets live in a slice
// rather than a map: a call touches only a handful of shapes, the linear
// scan is cheaper than hashing on the per-tile acquire path, and iteration
// order is deterministic.
type poolBucket struct {
	key  poolKey
	bufs []*cudart.DevBuffer
}

// Context holds the reusable state of the CoCoPeLia library on one device:
// the three operation streams, the tile-buffer pool and the plan executor's
// replay scratch. Reusing a Context across calls emulates the paper's
// iterative use-case (no per-call allocation/stream-creation overhead after
// the first call).
type Context struct {
	rt     *cudart.Runtime
	h2d    *cudart.Stream
	d2h    *cudart.Stream
	comp   *cudart.Stream
	pool   []poolBucket
	backed bool

	// exec replays tile plans onto the streams; it owns the per-call
	// scratch (event table, slot bindings, acquired-buffer list), so the
	// replay loops allocate nothing once the context is warm.
	exec plan.Executor
	// overheadS is an optional per-sub-kernel dispatch overhead occupying
	// the compute pipeline; the CoCoPeLia library leaves it zero, while
	// comparator wrappers (e.g. the BLASX-style library with its runtime
	// tile-management engine) use it to model their scheduling cost.
	overheadS float64
	// blockingWriteback makes the compute stream wait for each completed
	// output tile's write-back before starting the next tile — the
	// synchronization behaviour of tile-manager runtimes that confirm an
	// output tile's host copy before recycling its cache slot. The
	// CoCoPeLia library leaves this off (write-backs are fully
	// asynchronous on the d2h stream).
	blockingWriteback bool
}

// SetDispatchOverhead sets the per-sub-kernel dispatch overhead in seconds.
func (c *Context) SetDispatchOverhead(seconds float64) { c.overheadS = seconds }

// SetBlockingWriteback toggles compute-blocking output write-backs.
func (c *Context) SetBlockingWriteback(on bool) { c.blockingWriteback = on }

// NewContext creates a scheduler context. backed selects functional runs
// (real arithmetic on real storage); timing-only runs pass false.
func NewContext(rt *cudart.Runtime, backed bool) *Context {
	return &Context{
		rt:     rt,
		h2d:    rt.NewStream(),
		d2h:    rt.NewStream(),
		comp:   rt.NewStream(),
		backed: backed,
	}
}

// Runtime returns the underlying CUDA-like runtime.
func (c *Context) Runtime() *cudart.Runtime { return c.rt }

// Reset returns the context to its just-created state while keeping its
// three streams and the executor's replay scratch. The tile pool is
// emptied — the pooled buffers are dropped, not freed, because callers
// reset the device's memory accounting wholesale in the same breath — so
// the next call's Acquire sequence hits the allocator exactly as a fresh
// context's would. The bucket slice and each bucket's backing array are
// kept, so steady-state reuse allocates nothing.
func (c *Context) Reset() {
	for i := range c.pool {
		bk := &c.pool[i]
		for j := range bk.bufs {
			bk.bufs[j] = nil
		}
		bk.bufs = bk.bufs[:0]
	}
	c.overheadS = 0
	c.blockingWriteback = false
}

// target is the execution surface plans replay onto.
func (c *Context) target() plan.Target {
	return plan.Target{H2D: c.h2d, D2H: c.d2h, Comp: c.comp, Alloc: c}
}

// bucket returns the pool bucket for key, or nil.
func (c *Context) bucket(key poolKey) *poolBucket {
	for i := range c.pool {
		if c.pool[i].key == key {
			return &c.pool[i]
		}
	}
	return nil
}

// Acquire returns a device buffer of at least elems elements, reusing the
// pool when possible; it implements plan.Allocator. When the device is out
// of memory, pooled buffers of OTHER shapes are evicted largest-first — one
// at a time, retrying the allocation after each — so the current tile
// shape's pool survives long sweeps over many tile sizes.
//
//cocolint:hotpath
func (c *Context) Acquire(dt kernelmodel.Dtype, elems int64) (*cudart.DevBuffer, error) {
	key := poolKey{dt, elems}
	if bk := c.bucket(key); bk != nil && len(bk.bufs) > 0 {
		n := len(bk.bufs) - 1
		b := bk.bufs[n]
		bk.bufs[n] = nil
		bk.bufs = bk.bufs[:n]
		return b, nil
	}
	//lint:ignore hotpath pool miss allocates the buffer it will pool; steady-state replays of a warmed context hit the bucket above
	return c.acquireSlow(key)
}

// acquireSlow is Acquire's pool-miss path: allocate the shape's first
// buffer, evicting pooled buffers of other shapes largest-first while the
// device is out of memory.
func (c *Context) acquireSlow(key poolKey) (*cudart.DevBuffer, error) {
	b, err := c.rt.Malloc(key.dt, key.elems, c.backed)
	for errors.Is(err, device.ErrOutOfMemory) {
		evicted, ferr := c.evictLargest(key)
		if ferr != nil {
			return nil, ferr
		}
		if !evicted {
			break
		}
		b, err = c.rt.Malloc(key.dt, key.elems, c.backed)
	}
	return b, err
}

// evictLargest frees one pooled buffer of the largest byte size among the
// shapes other than keep, reporting whether anything was freed.
func (c *Context) evictLargest(keep poolKey) (bool, error) {
	best := -1
	var bestBytes int64
	for i := range c.pool {
		bk := &c.pool[i]
		if bk.key == keep || len(bk.bufs) == 0 {
			continue
		}
		if bytes := bk.key.elems * bk.key.dt.Size(); bytes > bestBytes {
			best, bestBytes = i, bytes
		}
	}
	if best < 0 {
		return false, nil
	}
	bk := &c.pool[best]
	n := len(bk.bufs) - 1
	b := bk.bufs[n]
	bk.bufs[n] = nil
	bk.bufs = bk.bufs[:n]
	if err := c.rt.Free(b); err != nil {
		return false, err
	}
	return true, nil
}

// Release returns a buffer to the pool for reuse by later calls; it
// implements plan.Allocator.
//
//cocolint:hotpath
func (c *Context) Release(b *cudart.DevBuffer) {
	key := poolKey{b.Dtype(), b.Elems()}
	if bk := c.bucket(key); bk != nil {
		//lint:ignore hotpath bucket free list reuses its backing array; it grows only to the shape's peak pooled count
		bk.bufs = append(bk.bufs, b)
		return
	}
	//lint:ignore hotpath a newly seen shape creates its bucket once; every later release of the shape takes the append above
	c.addBucket(key, b)
}

// addBucket creates the pool bucket of a newly seen buffer shape.
func (c *Context) addBucket(key poolKey, b *cudart.DevBuffer) {
	c.pool = append(c.pool, poolBucket{key: key, bufs: []*cudart.DevBuffer{b}})
}

// ReleaseAll frees every pooled buffer back to the device, keeping the
// (empty) buckets for reuse.
func (c *Context) ReleaseAll() error {
	for i := range c.pool {
		bk := &c.pool[i]
		for j, b := range bk.bufs {
			bk.bufs[j] = nil
			if err := c.rt.Free(b); err != nil {
				return err
			}
		}
		bk.bufs = bk.bufs[:0]
	}
	return nil
}

// GemmOpts parameterizes a tiled gemm invocation:
// C[MxN] = alpha·op(A)·op(B) + beta·C with op controlled by the BLAS
// transpose flags (zero values mean NoTrans). A is stored MxK (KxM when
// transposed); B is stored KxN (NxK when transposed).
type GemmOpts struct {
	Dtype          kernelmodel.Dtype
	TransA, TransB byte
	M, N, K        int
	Alpha, Beta    float64
	A, B, C        *Matrix
	// T is the square tiling size (required; auto-selection lives above
	// this layer in the public API).
	T int
}

// normTrans maps the zero value to NoTrans and validates the flag.
func normTrans(t byte) (byte, error) {
	switch t {
	case 0, blas.NoTrans:
		return blas.NoTrans, nil
	case blas.Trans:
		return blas.Trans, nil
	}
	return 0, fmt.Errorf("sched: bad transpose flag %q", t)
}

// validateGemm checks the invocation for the full-reuse path and returns
// the normalized transpose flags.
func (c *Context) validateGemm(opts GemmOpts) (transA, transB byte, err error) {
	if opts.M <= 0 || opts.N <= 0 || opts.K <= 0 {
		return 0, 0, fmt.Errorf("sched: non-positive gemm dims %dx%dx%d", opts.M, opts.N, opts.K)
	}
	if opts.T <= 0 {
		return 0, 0, fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	dt := opts.Dtype
	if transA, err = normTrans(opts.TransA); err != nil {
		return 0, 0, err
	}
	if transB, err = normTrans(opts.TransB); err != nil {
		return 0, 0, err
	}
	if err := opts.A.Validate("A", dt, c.backed); err != nil {
		return 0, 0, err
	}
	if err := opts.B.Validate("B", dt, c.backed); err != nil {
		return 0, 0, err
	}
	if err := opts.C.Validate("C", dt, c.backed); err != nil {
		return 0, 0, err
	}
	aRows, aCols := opts.M, opts.K
	if transA == blas.Trans {
		aRows, aCols = opts.K, opts.M
	}
	bRows, bCols := opts.K, opts.N
	if transB == blas.Trans {
		bRows, bCols = opts.N, opts.K
	}
	if opts.A.Rows != aRows || opts.A.Cols != aCols ||
		opts.B.Rows != bRows || opts.B.Cols != bCols ||
		opts.C.Rows != opts.M || opts.C.Cols != opts.N {
		return 0, 0, errors.New("sched: operand shapes inconsistent with m, n, k and transposes")
	}
	return transA, transB, nil
}

// sameScalar compares plan coefficients for identity: a replayed plan must
// have been built with bit-identical scalars (tolerance would let a plan
// replay against a different problem), so this is deliberately an exact
// bit-pattern comparison, not an approximate one.
func sameScalar(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// matchGemmPlan checks that a replayed plan was built for this invocation.
func matchGemmPlan(p *plan.Plan, opts GemmOpts, transA, transB byte, routine string) error {
	if p == nil {
		return errors.New("sched: nil plan")
	}
	if p.Routine != routine || p.Dtype != opts.Dtype ||
		p.M != opts.M || p.N != opts.N || p.K != opts.K || p.T != opts.T ||
		p.TransA != transA || p.TransB != transB ||
		!sameScalar(p.Alpha, opts.Alpha) || !sameScalar(p.Beta, opts.Beta) ||
		p.Locs[0] != opts.A.Loc || p.Locs[1] != opts.B.Loc || p.Locs[2] != opts.C.Loc {
		return fmt.Errorf("sched: %s plan does not match the invocation", routine)
	}
	return nil
}

// gemmArgs binds the gemm operands in plan argument order.
func gemmArgs(opts GemmOpts) []plan.Arg {
	return []plan.Arg{{Mat: opts.A}, {Mat: opts.B}, {Mat: opts.C}}
}

// PendingGemm is an enqueued-but-not-drained tiled routine: every transfer
// and kernel is on its streams, but the virtual clock has not been run.
// The name is historical — the gemv/axpy/no-reuse Enqueue variants return
// it too; the semantics are routine-agnostic.
// It exists so cooperating schedulers (the multi-GPU layer) can enqueue
// several schedules that then execute concurrently on a shared clock.
// A context supports one pending gemm at a time: the pending run borrows
// the context's reusable replay scratch, which the next enqueue reclaims.
type PendingGemm struct {
	ctx    *Context
	res    Result
	pooled []*cudart.DevBuffer
	start  float64
}

// Finish releases the pending run's pooled buffers and returns its
// result with the makespan measured to `end`. Call it exactly once, after
// the shared engine has drained.
func (p *PendingGemm) Finish(end float64) Result {
	for _, b := range p.pooled {
		p.ctx.Release(b)
	}
	p.pooled = nil
	p.res.Seconds = end - p.start
	return p.res
}

// OnDrained enqueues fn to run when all work enqueued so far on the
// context's three streams has completed (used to timestamp a pending
// run's own completion inside a larger concurrent batch).
func (c *Context) OnDrained(fn func()) {
	s := c.rt.NewStream()
	s.WaitEvent(c.h2d.Record())
	s.WaitEvent(c.comp.Record())
	s.WaitEvent(c.d2h.Record())
	s.Callback(fn)
}

// Gemm executes C = alpha*A*B + beta*C with square tiling size opts.T,
// full data reuse and 3-way overlap, then synchronizes and reports the
// run. Ragged edge tiles (dimensions not divisible by T) are handled.
func (c *Context) Gemm(opts GemmOpts) (Result, error) {
	pend, err := c.GemmEnqueue(opts)
	if err != nil {
		return Result{}, err
	}
	end, err := c.rt.Sync()
	res := pend.Finish(end)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// GemmWith executes a previously built full-reuse gemm plan against
// operands of the matching shape, synchronizes and reports the run.
func (c *Context) GemmWith(p *plan.Plan, opts GemmOpts) (Result, error) {
	pend, err := c.GemmEnqueueWith(p, opts)
	if err != nil {
		return Result{}, err
	}
	end, err := c.rt.Sync()
	res := pend.Finish(end)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// PlanGemm validates the invocation and builds its full-reuse tile plan
// without touching the streams. The plan depends only on the geometry,
// tiling size, operand locations and the context's scheduling knobs, so it
// can be cached and replayed via GemmEnqueueWith/GemmWith.
func (c *Context) PlanGemm(opts GemmOpts) (*plan.Plan, error) {
	transA, transB, err := c.validateGemm(opts)
	if err != nil {
		return nil, err
	}
	return plan.BuildGemm(plan.GemmSpec{
		Dtype: opts.Dtype, TransA: transA, TransB: transB,
		M: opts.M, N: opts.N, K: opts.K,
		Alpha: opts.Alpha, Beta: opts.Beta,
		LocA: opts.A.Loc, LocB: opts.B.Loc, LocC: opts.C.Loc,
		T:                 opts.T,
		DispatchOverheadS: c.overheadS,
		BlockingWriteback: c.blockingWriteback,
	}), nil
}

// GemmEnqueue builds the full tiled schedule on the context's streams
// without draining the engine. See Gemm for semantics.
func (c *Context) GemmEnqueue(opts GemmOpts) (*PendingGemm, error) {
	p, err := c.PlanGemm(opts)
	if err != nil {
		return nil, err
	}
	return c.replayGemm(p, opts)
}

// GemmEnqueueWith replays a previously built full-reuse gemm plan on the
// context's streams without draining the engine. The operands must match
// the plan's geometry and location vector; replay is event-identical to
// GemmEnqueue with the same options.
func (c *Context) GemmEnqueueWith(p *plan.Plan, opts GemmOpts) (*PendingGemm, error) {
	transA, transB, err := c.validateGemm(opts)
	if err != nil {
		return nil, err
	}
	if err := matchGemmPlan(p, opts, transA, transB, "gemm"); err != nil {
		return nil, err
	}
	return c.replayGemm(p, opts)
}

// replayGemm runs a validated plan and wraps the pending result.
func (c *Context) replayGemm(p *plan.Plan, opts GemmOpts) (*PendingGemm, error) {
	return c.enqueuePlan(p, gemmArgs(opts))
}

// enqueuePlan replays a validated plan on the context's streams without
// draining the engine — through the precompiled timing-only tape on
// unbacked contexts, through the reference executor otherwise (the two are
// pinned event-identical by the scheduler's tape-replay tests).
func (c *Context) enqueuePlan(p *plan.Plan, args []plan.Arg) (*PendingGemm, error) {
	res := Result{T: p.T, Subkernels: p.Subkernels, BytesH2D: p.BytesH2D, BytesD2H: p.BytesD2H}
	start := c.rt.Now()
	var pooled []*cudart.DevBuffer
	var err error
	if c.backed {
		pooled, err = c.exec.Run(p, c.target(), args)
	} else {
		pooled, err = c.exec.RunTape(p.TapeFor(&c.rt.Device().Testbed().GPU), c.target())
	}
	if err != nil {
		return nil, err
	}
	return &PendingGemm{ctx: c, res: res, pooled: pooled, start: start}, nil
}

// runPlanSync replays a plan, drains the engine and reports the run (the
// shared tail of every run-to-completion entry point).
func (c *Context) runPlanSync(p *plan.Plan, args []plan.Arg) (Result, error) {
	pend, err := c.enqueuePlan(p, args)
	if err != nil {
		return Result{}, err
	}
	return c.finishSync(pend)
}

// finishSync drains the engine and settles an enqueued run (the shared
// tail of the *With entry points, after their Enqueue variants return).
func (c *Context) finishSync(pend *PendingGemm) (Result, error) {
	end, err := c.rt.Sync()
	res := pend.Finish(end)
	if err != nil {
		return Result{}, err
	}
	return res, nil
}

// AxpyOpts parameterizes a tiled daxpy invocation.
type AxpyOpts struct {
	N     int
	Alpha float64
	X, Y  *Vector
	// T is the 1-D chunk length.
	T int
}

// validateAxpy checks the level-1 invocation.
func (c *Context) validateAxpy(opts AxpyOpts) error {
	if opts.N <= 0 {
		return fmt.Errorf("sched: non-positive axpy length %d", opts.N)
	}
	if opts.T <= 0 {
		return fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	if err := opts.X.Validate("x", c.backed); err != nil {
		return err
	}
	if err := opts.Y.Validate("y", c.backed); err != nil {
		return err
	}
	if opts.X.N != opts.N || opts.Y.N != opts.N {
		return errors.New("sched: vector lengths inconsistent with n")
	}
	return nil
}

// PlanAxpy validates the invocation and builds its 1-D chunk plan.
func (c *Context) PlanAxpy(opts AxpyOpts) (*plan.Plan, error) {
	if err := c.validateAxpy(opts); err != nil {
		return nil, err
	}
	return plan.BuildAxpy(plan.AxpySpec{
		N: opts.N, Alpha: opts.Alpha,
		LocX: opts.X.Loc, LocY: opts.Y.Loc, T: opts.T,
	}), nil
}

// Axpy executes y += alpha*x with 1-D tiling and 3-way overlap.
func (c *Context) Axpy(opts AxpyOpts) (Result, error) {
	p, err := c.PlanAxpy(opts)
	if err != nil {
		return Result{}, err
	}
	return c.runPlanSync(p, []plan.Arg{{Vec: opts.X}, {Vec: opts.Y}})
}

// AxpyEnqueueWith replays a previously built axpy plan on the context's
// streams without draining the engine (the enqueue-only counterpart of
// AxpyWith, mirroring GemmEnqueueWith).
func (c *Context) AxpyEnqueueWith(p *plan.Plan, opts AxpyOpts) (*PendingGemm, error) {
	if err := c.validateAxpy(opts); err != nil {
		return nil, err
	}
	if p == nil || p.Routine != "axpy" || p.N != opts.N || p.T != opts.T ||
		!sameScalar(p.Alpha, opts.Alpha) ||
		p.Locs[0] != opts.X.Loc || p.Locs[1] != opts.Y.Loc {
		return nil, errors.New("sched: axpy plan does not match the invocation")
	}
	return c.enqueuePlan(p, []plan.Arg{{Vec: opts.X}, {Vec: opts.Y}})
}

// AxpyWith executes a previously built axpy plan against vectors of the
// matching shape.
func (c *Context) AxpyWith(p *plan.Plan, opts AxpyOpts) (Result, error) {
	pend, err := c.AxpyEnqueueWith(p, opts)
	if err != nil {
		return Result{}, err
	}
	return c.finishSync(pend)
}
