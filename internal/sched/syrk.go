package sched

import (
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
)

// SyrkOpts parameterizes a tiled symmetric rank-k update:
// C[NxN] = alpha·A·Aᵀ + beta·C (Trans == NoTrans, A stored NxK) or
// C[NxN] = alpha·Aᵀ·A + beta·C (Trans == Trans,  A stored KxN).
// The full C is written (the framework has no packed triangular storage).
type SyrkOpts struct {
	Dtype       kernelmodel.Dtype
	Trans       byte
	N, K        int
	Alpha, Beta float64
	A, C        *Matrix
	// T is the square tiling size.
	T int
}

// Syrk executes the rank-k update through the generic level-3 tile
// scheduler — the paper's extension recipe in action: a new BLAS routine
// needs only a wrapper that maps its operands onto the tiled gemm path
// (here, B aliases A with the complementary transpose). Note the mapped
// execution fetches A's tiles through both operand caches, so the h2d
// traffic is 2·|A| rather than |A|; a dedicated syrk scheduler could share
// the caches, which the paper leaves as routine-specific fine-tuning.
func (c *Context) Syrk(opts SyrkOpts) (Result, error) {
	trans, err := normTrans(opts.Trans)
	if err != nil {
		return Result{}, fmt.Errorf("sched: syrk: %w", err)
	}
	transA, transB := blas.NoTrans, blas.Trans
	if trans == blas.Trans {
		transA, transB = blas.Trans, blas.NoTrans
	}
	return c.Gemm(GemmOpts{
		Dtype:  opts.Dtype,
		TransA: transA, TransB: transB,
		M: opts.N, N: opts.N, K: opts.K,
		Alpha: opts.Alpha, Beta: opts.Beta,
		A: opts.A, B: opts.A, C: opts.C,
		T: opts.T,
	})
}
