package sched

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/plan"
)

// validateGemmNoReuse checks the stateless-sub-kernel invocation. The
// comparator takes its operands stored NoTrans and ignores transpose flags.
func (c *Context) validateGemmNoReuse(opts GemmOpts) error {
	if opts.M <= 0 || opts.N <= 0 || opts.K <= 0 {
		return fmt.Errorf("sched: non-positive gemm dims %dx%dx%d", opts.M, opts.N, opts.K)
	}
	if opts.T <= 0 {
		return fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	dt := opts.Dtype
	if err := opts.A.Validate("A", dt, c.backed); err != nil {
		return err
	}
	if err := opts.B.Validate("B", dt, c.backed); err != nil {
		return err
	}
	if err := opts.C.Validate("C", dt, c.backed); err != nil {
		return err
	}
	if opts.A.Rows != opts.M || opts.A.Cols != opts.K ||
		opts.B.Rows != opts.K || opts.B.Cols != opts.N ||
		opts.C.Rows != opts.M || opts.C.Cols != opts.N {
		return errors.New("sched: operand shapes inconsistent with m, n, k")
	}
	return nil
}

// PlanGemmNoReuse validates the invocation and builds the stateless
// comparator's plan. The staging depth is sized to the device memory free
// at planning time, so the plan embeds the slot-group ring it will replay
// with.
func (c *Context) PlanGemmNoReuse(opts GemmOpts) (*plan.Plan, error) {
	if err := c.validateGemmNoReuse(opts); err != nil {
		return nil, err
	}
	dev := c.rt.Device()
	freeBytes := dev.Testbed().GPU.MemBytes - dev.MemUsed()
	return plan.BuildGemmNoReuse(plan.GemmSpec{
		Dtype: opts.Dtype, TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: opts.M, N: opts.N, K: opts.K,
		Alpha: opts.Alpha, Beta: opts.Beta,
		LocA: opts.A.Loc, LocB: opts.B.Loc, LocC: opts.C.Loc,
		T: opts.T,
	}, freeBytes), nil
}

// GemmNoReuse executes C = alpha*A*B + beta*C with stateless sub-kernels:
// every sub-kernel fetches fresh tiles of all its host-resident operands
// and writes its C tile back immediately — exactly the per-sub-kernel
// traffic pattern the paper's Eq. 1-4 model (and the behaviour of
// non-reuse-aware offload libraries). It is the measured counterpart for
// validating the Baseline/DataLoc/BTS models on level-3 BLAS (the paper
// uses cuBLASXt for this role).
func (c *Context) GemmNoReuse(opts GemmOpts) (Result, error) {
	p, err := c.PlanGemmNoReuse(opts)
	if err != nil {
		return Result{}, err
	}
	return c.runPlanSync(p, gemmArgs(opts))
}

// GemmNoReuseEnqueueWith replays a previously built no-reuse plan on the
// context's streams without draining the engine (the enqueue-only
// counterpart of GemmNoReuseWith, mirroring GemmEnqueueWith).
func (c *Context) GemmNoReuseEnqueueWith(p *plan.Plan, opts GemmOpts) (*PendingGemm, error) {
	if err := c.validateGemmNoReuse(opts); err != nil {
		return nil, err
	}
	if err := matchGemmPlan(p, opts, blas.NoTrans, blas.NoTrans, "gemm-noreuse"); err != nil {
		return nil, err
	}
	return c.enqueuePlan(p, gemmArgs(opts))
}

// GemmNoReuseWith executes a previously built no-reuse plan against
// operands of the matching shape. The plan carries its staging depth, so
// replay uses the slot ring sized at planning time regardless of the
// device's current free memory.
func (c *Context) GemmNoReuseWith(p *plan.Plan, opts GemmOpts) (Result, error) {
	pend, err := c.GemmNoReuseEnqueueWith(p, opts)
	if err != nil {
		return Result{}, err
	}
	return c.finishSync(pend)
}
