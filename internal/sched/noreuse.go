package sched

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/model"
)

// maxNoReuseSlots bounds the in-flight staging depth of the no-reuse path;
// the effective depth shrinks for very large tiles so the bounded staging
// always fits device memory.
const maxNoReuseSlots = 8

// slotGroup is one in-flight staging set of the no-reuse pipeline.
type slotGroup struct {
	a, b, c       *cudart.DevBuffer
	lastKernel    *cudart.Event
	lastWriteback *cudart.Event
}

// GemmNoReuse executes C = alpha*A*B + beta*C with stateless sub-kernels:
// every sub-kernel fetches fresh tiles of all its host-resident operands
// and writes its C tile back immediately — exactly the per-sub-kernel
// traffic pattern the paper's Eq. 1-4 model (and the behaviour of
// non-reuse-aware offload libraries). It is the measured counterpart for
// validating the Baseline/DataLoc/BTS models on level-3 BLAS (the paper
// uses cuBLASXt for this role).
func (c *Context) GemmNoReuse(opts GemmOpts) (Result, error) {
	if opts.M <= 0 || opts.N <= 0 || opts.K <= 0 {
		return Result{}, fmt.Errorf("sched: non-positive gemm dims %dx%dx%d", opts.M, opts.N, opts.K)
	}
	if opts.T <= 0 {
		return Result{}, fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	dt := opts.Dtype
	if err := opts.A.Validate("A", dt, c.backed); err != nil {
		return Result{}, err
	}
	if err := opts.B.Validate("B", dt, c.backed); err != nil {
		return Result{}, err
	}
	if err := opts.C.Validate("C", dt, c.backed); err != nil {
		return Result{}, err
	}
	if opts.A.Rows != opts.M || opts.A.Cols != opts.K ||
		opts.B.Rows != opts.K || opts.B.Cols != opts.N ||
		opts.C.Rows != opts.M || opts.C.Cols != opts.N {
		return Result{}, errors.New("sched: operand shapes inconsistent with m, n, k")
	}

	T := opts.T
	mt := ceil(opts.M, T)
	nt := ceil(opts.N, T)
	kt := ceil(opts.K, T)
	res := Result{T: T}
	start := c.rt.Now()

	// Bounded staging: slot groups sized for full tiles, reused with
	// event dependencies so overwrites never race in-flight consumers.
	var pooled []*cudart.DevBuffer
	fail := func(err error) (Result, error) {
		for _, buf := range pooled {
			c.release(buf)
		}
		return Result{}, err
	}
	tileA := int64(min(T, opts.M)) * int64(min(T, opts.K))
	tileB := int64(min(T, opts.K)) * int64(min(T, opts.N))
	tileC := int64(min(T, opts.M)) * int64(min(T, opts.N))
	// Size the staging depth to the memory left on the device.
	var groupBytes int64
	if opts.A.Loc == model.OnHost {
		groupBytes += tileA * dt.Size()
	}
	if opts.B.Loc == model.OnHost {
		groupBytes += tileB * dt.Size()
	}
	if opts.C.Loc == model.OnHost {
		groupBytes += tileC * dt.Size()
	}
	nSlots := maxNoReuseSlots
	if groupBytes > 0 {
		free := c.rt.Device().Testbed().GPU.MemBytes - c.rt.Device().MemUsed()
		if byMem := int(free / (groupBytes + groupBytes/8)); byMem < nSlots {
			nSlots = byMem
		}
		if nSlots < 2 {
			nSlots = 2
		}
	}
	if cap(c.slots) < nSlots {
		c.slots = make([]slotGroup, maxNoReuseSlots)
	}
	slots := c.slots[:nSlots]
	for i := range slots {
		g := &slots[i]
		*g = slotGroup{lastKernel: cudart.DoneEvent(), lastWriteback: cudart.DoneEvent()}
		var err error
		if opts.A.Loc == model.OnHost {
			if g.a, err = c.acquire(dt, tileA); err != nil {
				return fail(err)
			}
			pooled = append(pooled, g.a)
		}
		if opts.B.Loc == model.OnHost {
			if g.b, err = c.acquire(dt, tileB); err != nil {
				return fail(err)
			}
			pooled = append(pooled, g.b)
		}
		if opts.C.Loc == model.OnHost {
			if g.c, err = c.acquire(dt, tileC); err != nil {
				return fail(err)
			}
			pooled = append(pooled, g.c)
		}
	}

	// writebackOf tracks the last write-back event of each host C tile so
	// its next fetch reads the updated host data; the flat grid reuses
	// context-owned backing.
	if cap(c.wbEvents) < mt*nt {
		c.wbEvents = make([]*cudart.Event, mt*nt)
	}
	writebackOf := c.wbEvents[:mt*nt]
	for i := range writebackOf {
		writebackOf[i] = nil
	}

	// Sub-kernels iterate with the K dimension outermost, so consecutive
	// sub-kernels belong to different output tiles: each C tile's
	// write-back -> re-fetch round trip overlaps with the kernels of the
	// other tiles instead of serializing the pipeline.
	idx := 0
	for tk := 0; tk < kt; tk++ {
		inner := min(T, opts.K-tk*T)
		for tj := 0; tj < nt; tj++ {
			for ti := 0; ti < mt; ti++ {
				rows := min(T, opts.M-ti*T)
				cols := min(T, opts.N-tj*T)
				g := &slots[idx%nSlots]
				idx++
				// The staging slots may still feed an in-flight kernel or
				// write-back from their previous use.
				c.h2d.WaitEvent(g.lastKernel)
				c.h2d.WaitEvent(g.lastWriteback)

				// A tile.
				aBuf, aOff, aLd := opts.A.Dev, int64(ti*T)+int64(tk*T)*int64(opts.A.DevLd), opts.A.DevLd
				if opts.A.Loc == model.OnHost {
					h64, h32 := opts.A.HostSlices(ti*T, tk*T)
					if _, err := c.h2d.SetMatrixAsync(rows, inner, h64, h32, opts.A.HostLd, g.a, 0, rows); err != nil {
						return fail(err)
					}
					res.BytesH2D += int64(rows) * int64(inner) * dt.Size()
					aBuf, aOff, aLd = g.a, 0, rows
				}
				// B tile.
				bBuf, bOff, bLd := opts.B.Dev, int64(tk*T)+int64(tj*T)*int64(opts.B.DevLd), opts.B.DevLd
				if opts.B.Loc == model.OnHost {
					h64, h32 := opts.B.HostSlices(tk*T, tj*T)
					if _, err := c.h2d.SetMatrixAsync(inner, cols, h64, h32, opts.B.HostLd, g.b, 0, inner); err != nil {
						return fail(err)
					}
					res.BytesH2D += int64(inner) * int64(cols) * dt.Size()
					bBuf, bOff, bLd = g.b, 0, inner
				}
				// C tile: the running partial makes a full round trip when
				// C lives on the host.
				beta := 1.0
				cBuf, cOff, cLd := opts.C.Dev, int64(ti*T)+int64(tj*T)*int64(opts.C.DevLd), opts.C.DevLd
				if opts.C.Loc == model.OnHost {
					cBuf, cOff, cLd = g.c, 0, rows
					fetch := tk > 0 || opts.Beta != 0
					if fetch {
						// The previous write-back of this C tile must land
						// in host memory before we re-read it.
						if wb := writebackOf[ti*nt+tj]; wb != nil {
							c.h2d.WaitEvent(wb)
						}
						h64, h32 := opts.C.HostSlices(ti*T, tj*T)
						if _, err := c.h2d.SetMatrixAsync(rows, cols, h64, h32, opts.C.HostLd, g.c, 0, rows); err != nil {
							return fail(err)
						}
						res.BytesH2D += int64(rows) * int64(cols) * dt.Size()
						if tk == 0 {
							beta = opts.Beta
						}
					} else {
						beta = 0
					}
				} else if tk == 0 {
					beta = opts.Beta
				}

				c.comp.WaitEvent(c.h2d.Record())
				if _, err := c.comp.GemmAsync(blas.NoTrans, blas.NoTrans,
					rows, cols, inner, opts.Alpha,
					aBuf, aOff, aLd, bBuf, bOff, bLd,
					beta, cBuf, cOff, cLd); err != nil {
					return fail(err)
				}
				res.Subkernels++
				g.lastKernel = c.comp.Record()

				if opts.C.Loc == model.OnHost {
					c.d2h.WaitEvent(g.lastKernel)
					h64, h32 := opts.C.HostSlices(ti*T, tj*T)
					if _, err := c.d2h.GetMatrixAsync(rows, cols, cBuf, cOff, cLd, h64, h32, opts.C.HostLd); err != nil {
						return fail(err)
					}
					res.BytesD2H += int64(rows) * int64(cols) * dt.Size()
					g.lastWriteback = c.d2h.Record()
					writebackOf[ti*nt+tj] = g.lastWriteback
				}
			}
		}
	}

	end, err := c.rt.Sync()
	for _, buf := range pooled {
		c.release(buf)
	}
	if err != nil {
		return Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}
