package sched

// This file preserves the pre-plan imperative schedulers verbatim as an
// oracle: the replay-equivalence tests run each routine through the
// plan-based entry points and through these direct implementations on
// separate engines, and require byte-identical timings and payloads. Any
// divergence in stream-call order between a planner and its original
// imperative loop changes the simulation's event order and shows up here
// as a Float64bits mismatch.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/parallel"
	"cocopelia/internal/sim"
)

func ceil(a, b int) int { return (a + b - 1) / b }

// refTile is the oracle's devTile.
type refTile struct {
	buf   *cudart.DevBuffer
	off   int64
	ld    int
	ready *cudart.Event
	live  bool
}

// refGemm is the original GemmEnqueue loop followed by Sync/Finish.
func refGemm(c *Context, opts GemmOpts) (Result, error) {
	dt := opts.Dtype
	transA, err := normTrans(opts.TransA)
	if err != nil {
		return Result{}, err
	}
	transB, err := normTrans(opts.TransB)
	if err != nil {
		return Result{}, err
	}

	T := opts.T
	mt := ceil(opts.M, T)
	nt := ceil(opts.N, T)
	kt := ceil(opts.K, T)

	res := Result{T: T}
	start := c.rt.Now()

	aGridR, aGridC := mt, kt
	if transA == blas.Trans {
		aGridR, aGridC = kt, mt
	}
	bGridR, bGridC := kt, nt
	if transB == blas.Trans {
		bGridR, bGridC = nt, kt
	}
	aCache := make([]refTile, aGridR*aGridC)
	bCache := make([]refTile, bGridR*bGridC)
	cCache := make([]refTile, mt*nt)
	aCols, bCols := aGridC, bGridC
	var pooled []*cudart.DevBuffer

	fail := func(err error) (Result, error) {
		for _, b := range pooled {
			c.Release(b)
		}
		return Result{}, err
	}

	getTile := func(m *Matrix, cache []refTile, cols, ti, tj, rows, tcols int, fetch bool) (*refTile, error) {
		t := &cache[ti*cols+tj]
		if t.live {
			return t, nil
		}
		t.live = true
		if m.Loc == model.OnDevice {
			t.buf = m.Dev
			t.off = int64(ti*T) + int64(tj*T)*int64(m.DevLd)
			t.ld = m.DevLd
			t.ready = cudart.DoneEvent()
			return t, nil
		}
		buf, err := c.Acquire(dt, int64(rows)*int64(tcols))
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, buf)
		t.buf, t.off, t.ld = buf, 0, rows
		if fetch {
			h64, h32 := m.HostSlices(ti*T, tj*T)
			ev, err := c.h2d.SetMatrixAsync(rows, tcols, h64, h32, m.HostLd, buf, 0, rows)
			if err != nil {
				return nil, err
			}
			t.ready = ev
			res.BytesH2D += int64(rows) * int64(tcols) * dt.Size()
		} else {
			t.ready = cudart.DoneEvent()
		}
		return t, nil
	}

	fetchC := opts.Beta != 0

	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < mt; ti++ {
			rows := min(T, opts.M-ti*T)
			cols := min(T, opts.N-tj*T)
			cTile, err := getTile(opts.C, cCache, nt, ti, tj, rows, cols, fetchC)
			if err != nil {
				return fail(err)
			}
			for tk := 0; tk < kt; tk++ {
				inner := min(T, opts.K-tk*T)
				ai, aj, ar, ac := ti, tk, rows, inner
				if transA == blas.Trans {
					ai, aj, ar, ac = tk, ti, inner, rows
				}
				aTile, err := getTile(opts.A, aCache, aCols, ai, aj, ar, ac, true)
				if err != nil {
					return fail(err)
				}
				bi, bj, br, bc := tk, tj, inner, cols
				if transB == blas.Trans {
					bi, bj, br, bc = tj, tk, cols, inner
				}
				bTile, err := getTile(opts.B, bCache, bCols, bi, bj, br, bc, true)
				if err != nil {
					return fail(err)
				}
				c.comp.WaitEvent(aTile.ready)
				c.comp.WaitEvent(bTile.ready)
				beta := 1.0
				if tk == 0 {
					c.comp.WaitEvent(cTile.ready)
					beta = opts.Beta
					if !fetchC {
						beta = 0
					}
				}
				if c.overheadS > 0 {
					if _, err := c.comp.KernelAsync("dispatch", c.overheadS, nil); err != nil {
						return fail(err)
					}
				}
				if _, err := c.comp.GemmAsync(transA, transB,
					rows, cols, inner, opts.Alpha,
					aTile.buf, aTile.off, aTile.ld,
					bTile.buf, bTile.off, bTile.ld,
					beta, cTile.buf, cTile.off, cTile.ld); err != nil {
					return fail(err)
				}
				res.Subkernels++
			}
			if opts.C.Loc == model.OnHost {
				c.d2h.WaitEvent(c.comp.Record())
				h64, h32 := opts.C.HostSlices(ti*T, tj*T)
				if _, err := c.d2h.GetMatrixAsync(rows, cols,
					cTile.buf, cTile.off, cTile.ld, h64, h32, opts.C.HostLd); err != nil {
					return fail(err)
				}
				res.BytesD2H += int64(rows) * int64(cols) * dt.Size()
				if c.blockingWriteback {
					c.comp.WaitEvent(c.d2h.Record())
				}
			}
		}
	}

	end, err := c.rt.Sync()
	for _, b := range pooled {
		c.Release(b)
	}
	if err != nil {
		return Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}

// refSlotGroup is the oracle's no-reuse staging set.
type refSlotGroup struct {
	a, b, c       *cudart.DevBuffer
	lastKernel    *cudart.Event
	lastWriteback *cudart.Event
}

// refGemmNoReuse is the original stateless-sub-kernel loop.
func refGemmNoReuse(c *Context, opts GemmOpts) (Result, error) {
	dt := opts.Dtype
	T := opts.T
	mt := ceil(opts.M, T)
	nt := ceil(opts.N, T)
	kt := ceil(opts.K, T)
	res := Result{T: T}
	start := c.rt.Now()

	var pooled []*cudart.DevBuffer
	fail := func(err error) (Result, error) {
		for _, buf := range pooled {
			c.Release(buf)
		}
		return Result{}, err
	}
	tileA := int64(min(T, opts.M)) * int64(min(T, opts.K))
	tileB := int64(min(T, opts.K)) * int64(min(T, opts.N))
	tileC := int64(min(T, opts.M)) * int64(min(T, opts.N))
	var groupBytes int64
	if opts.A.Loc == model.OnHost {
		groupBytes += tileA * dt.Size()
	}
	if opts.B.Loc == model.OnHost {
		groupBytes += tileB * dt.Size()
	}
	if opts.C.Loc == model.OnHost {
		groupBytes += tileC * dt.Size()
	}
	nSlots := 8
	if groupBytes > 0 {
		free := c.rt.Device().Testbed().GPU.MemBytes - c.rt.Device().MemUsed()
		if byMem := int(free / (groupBytes + groupBytes/8)); byMem < nSlots {
			nSlots = byMem
		}
		if nSlots < 2 {
			nSlots = 2
		}
	}
	slots := make([]refSlotGroup, nSlots)
	for i := range slots {
		g := &slots[i]
		*g = refSlotGroup{lastKernel: cudart.DoneEvent(), lastWriteback: cudart.DoneEvent()}
		var err error
		if opts.A.Loc == model.OnHost {
			if g.a, err = c.Acquire(dt, tileA); err != nil {
				return fail(err)
			}
			pooled = append(pooled, g.a)
		}
		if opts.B.Loc == model.OnHost {
			if g.b, err = c.Acquire(dt, tileB); err != nil {
				return fail(err)
			}
			pooled = append(pooled, g.b)
		}
		if opts.C.Loc == model.OnHost {
			if g.c, err = c.Acquire(dt, tileC); err != nil {
				return fail(err)
			}
			pooled = append(pooled, g.c)
		}
	}

	writebackOf := make([]*cudart.Event, mt*nt)

	idx := 0
	for tk := 0; tk < kt; tk++ {
		inner := min(T, opts.K-tk*T)
		for tj := 0; tj < nt; tj++ {
			for ti := 0; ti < mt; ti++ {
				rows := min(T, opts.M-ti*T)
				cols := min(T, opts.N-tj*T)
				g := &slots[idx%nSlots]
				idx++
				c.h2d.WaitEvent(g.lastKernel)
				c.h2d.WaitEvent(g.lastWriteback)

				aBuf, aOff, aLd := opts.A.Dev, int64(ti*T)+int64(tk*T)*int64(opts.A.DevLd), opts.A.DevLd
				if opts.A.Loc == model.OnHost {
					h64, h32 := opts.A.HostSlices(ti*T, tk*T)
					if _, err := c.h2d.SetMatrixAsync(rows, inner, h64, h32, opts.A.HostLd, g.a, 0, rows); err != nil {
						return fail(err)
					}
					res.BytesH2D += int64(rows) * int64(inner) * dt.Size()
					aBuf, aOff, aLd = g.a, 0, rows
				}
				bBuf, bOff, bLd := opts.B.Dev, int64(tk*T)+int64(tj*T)*int64(opts.B.DevLd), opts.B.DevLd
				if opts.B.Loc == model.OnHost {
					h64, h32 := opts.B.HostSlices(tk*T, tj*T)
					if _, err := c.h2d.SetMatrixAsync(inner, cols, h64, h32, opts.B.HostLd, g.b, 0, inner); err != nil {
						return fail(err)
					}
					res.BytesH2D += int64(inner) * int64(cols) * dt.Size()
					bBuf, bOff, bLd = g.b, 0, inner
				}
				beta := 1.0
				cBuf, cOff, cLd := opts.C.Dev, int64(ti*T)+int64(tj*T)*int64(opts.C.DevLd), opts.C.DevLd
				if opts.C.Loc == model.OnHost {
					cBuf, cOff, cLd = g.c, 0, rows
					fetch := tk > 0 || opts.Beta != 0
					if fetch {
						if wb := writebackOf[ti*nt+tj]; wb != nil {
							c.h2d.WaitEvent(wb)
						}
						h64, h32 := opts.C.HostSlices(ti*T, tj*T)
						if _, err := c.h2d.SetMatrixAsync(rows, cols, h64, h32, opts.C.HostLd, g.c, 0, rows); err != nil {
							return fail(err)
						}
						res.BytesH2D += int64(rows) * int64(cols) * dt.Size()
						if tk == 0 {
							beta = opts.Beta
						}
					} else {
						beta = 0
					}
				} else if tk == 0 {
					beta = opts.Beta
				}

				c.comp.WaitEvent(c.h2d.Record())
				if _, err := c.comp.GemmAsync(blas.NoTrans, blas.NoTrans,
					rows, cols, inner, opts.Alpha,
					aBuf, aOff, aLd, bBuf, bOff, bLd,
					beta, cBuf, cOff, cLd); err != nil {
					return fail(err)
				}
				res.Subkernels++
				g.lastKernel = c.comp.Record()

				if opts.C.Loc == model.OnHost {
					c.d2h.WaitEvent(g.lastKernel)
					h64, h32 := opts.C.HostSlices(ti*T, tj*T)
					if _, err := c.d2h.GetMatrixAsync(rows, cols, cBuf, cOff, cLd, h64, h32, opts.C.HostLd); err != nil {
						return fail(err)
					}
					res.BytesD2H += int64(rows) * int64(cols) * dt.Size()
					g.lastWriteback = c.d2h.Record()
					writebackOf[ti*nt+tj] = g.lastWriteback
				}
			}
		}
	}

	end, err := c.rt.Sync()
	for _, buf := range pooled {
		c.Release(buf)
	}
	if err != nil {
		return Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}

// refVecChunk is the oracle's staged x chunk.
type refVecChunk struct {
	buf   *cudart.DevBuffer
	off   int64
	ready *cudart.Event
}

// refGemv is the original level-2 loop.
func refGemv(c *Context, opts GemvOpts) (Result, error) {
	T := opts.T
	mt := ceil(opts.M, T)
	nt := ceil(opts.N, T)
	res := Result{T: T}
	start := c.rt.Now()
	var pooled []*cudart.DevBuffer
	fail := func(err error) (Result, error) {
		for _, b := range pooled {
			c.Release(b)
		}
		return Result{}, err
	}

	xChunks := make([]refVecChunk, nt)
	getX := func(tj, n int) (*refVecChunk, error) {
		ch := &xChunks[tj]
		if ch.ready != nil {
			return ch, nil
		}
		if opts.X.Loc == model.OnDevice {
			*ch = refVecChunk{buf: opts.X.Dev, off: int64(tj * T), ready: cudart.DoneEvent()}
			return ch, nil
		}
		buf, err := c.Acquire(kernelmodel.F64, int64(n))
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, buf)
		var host []float64
		if opts.X.HostF64 != nil {
			host = opts.X.HostF64[tj*T:]
		}
		ev, err := c.h2d.MemcpyH2DAsync(buf, 0, host, nil, int64(n))
		if err != nil {
			return nil, err
		}
		res.BytesH2D += int64(n) * 8
		*ch = refVecChunk{buf: buf, off: 0, ready: ev}
		return ch, nil
	}

	for ti := 0; ti < mt; ti++ {
		rows := min(T, opts.M-ti*T)
		var yBuf *cudart.DevBuffer
		var yOff int64
		yReady := cudart.DoneEvent()
		if opts.Y.Loc == model.OnDevice {
			yBuf, yOff = opts.Y.Dev, int64(ti*T)
		} else {
			buf, err := c.Acquire(kernelmodel.F64, int64(rows))
			if err != nil {
				return fail(err)
			}
			pooled = append(pooled, buf)
			yBuf, yOff = buf, 0
			if opts.Beta != 0 {
				var host []float64
				if opts.Y.HostF64 != nil {
					host = opts.Y.HostF64[ti*T:]
				}
				ev, err := c.h2d.MemcpyH2DAsync(buf, 0, host, nil, int64(rows))
				if err != nil {
					return fail(err)
				}
				res.BytesH2D += int64(rows) * 8
				yReady = ev
			}
		}

		for tj := 0; tj < nt; tj++ {
			cols := min(T, opts.N-tj*T)
			xc, err := getX(tj, cols)
			if err != nil {
				return fail(err)
			}
			aBuf, aOff, aLd := opts.A.Dev, int64(0), opts.A.DevLd
			if opts.A.Loc == model.OnHost {
				buf, err := c.Acquire(kernelmodel.F64, int64(rows)*int64(cols))
				if err != nil {
					return fail(err)
				}
				pooled = append(pooled, buf)
				h64, h32 := opts.A.HostSlices(ti*T, tj*T)
				ev, err := c.h2d.SetMatrixAsync(rows, cols, h64, h32, opts.A.HostLd, buf, 0, rows)
				if err != nil {
					return fail(err)
				}
				res.BytesH2D += int64(rows) * int64(cols) * 8
				c.comp.WaitEvent(ev)
				aBuf, aOff, aLd = buf, 0, rows
			} else {
				aOff = int64(ti*T) + int64(tj*T)*int64(opts.A.DevLd)
			}

			c.comp.WaitEvent(xc.ready)
			beta := 1.0
			if tj == 0 {
				c.comp.WaitEvent(yReady)
				beta = opts.Beta
				if opts.Y.Loc == model.OnHost && opts.Beta == 0 {
					beta = 0
				}
			}
			if _, err := c.comp.GemvAsync(blas.NoTrans, rows, cols, opts.Alpha,
				aBuf, aOff, aLd, xc.buf, xc.off, beta, yBuf, yOff); err != nil {
				return fail(err)
			}
			res.Subkernels++
		}

		if opts.Y.Loc == model.OnHost {
			c.d2h.WaitEvent(c.comp.Record())
			var host []float64
			if opts.Y.HostF64 != nil {
				host = opts.Y.HostF64[ti*T:]
			}
			if _, err := c.d2h.MemcpyD2HAsync(host, nil, yBuf, yOff, int64(rows)); err != nil {
				return fail(err)
			}
			res.BytesD2H += int64(rows) * 8
			if c.blockingWriteback {
				c.comp.WaitEvent(c.d2h.Record())
			}
		}
	}

	end, err := c.rt.Sync()
	for _, b := range pooled {
		c.Release(b)
	}
	if err != nil {
		return Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}

// refAxpy is the original level-1 loop.
func refAxpy(c *Context, opts AxpyOpts) (Result, error) {
	res := Result{T: opts.T}
	start := c.rt.Now()
	var pooled []*cudart.DevBuffer

	fail := func(err error) (Result, error) {
		for _, b := range pooled {
			c.Release(b)
		}
		return Result{}, err
	}

	chunks := ceil(opts.N, opts.T)
	for ci := 0; ci < chunks; ci++ {
		off := ci * opts.T
		n := min(opts.T, opts.N-off)

		var xBuf *cudart.DevBuffer
		var xOff int64
		xReady := cudart.DoneEvent()
		if opts.X.Loc == model.OnDevice {
			xBuf, xOff = opts.X.Dev, int64(off)
		} else {
			b, err := c.Acquire(kernelmodel.F64, int64(n))
			if err != nil {
				return fail(err)
			}
			pooled = append(pooled, b)
			xBuf, xOff = b, 0
			var host []float64
			if opts.X.HostF64 != nil {
				host = opts.X.HostF64[off:]
			}
			ev, err := c.h2d.MemcpyH2DAsync(b, 0, host, nil, int64(n))
			if err != nil {
				return fail(err)
			}
			xReady = ev
			res.BytesH2D += int64(n) * 8
		}

		var yBuf *cudart.DevBuffer
		var yOff int64
		yReady := cudart.DoneEvent()
		if opts.Y.Loc == model.OnDevice {
			yBuf, yOff = opts.Y.Dev, int64(off)
		} else {
			b, err := c.Acquire(kernelmodel.F64, int64(n))
			if err != nil {
				return fail(err)
			}
			pooled = append(pooled, b)
			yBuf, yOff = b, 0
			var host []float64
			if opts.Y.HostF64 != nil {
				host = opts.Y.HostF64[off:]
			}
			ev, err := c.h2d.MemcpyH2DAsync(b, 0, host, nil, int64(n))
			if err != nil {
				return fail(err)
			}
			yReady = ev
			res.BytesH2D += int64(n) * 8
		}

		c.comp.WaitEvent(xReady)
		c.comp.WaitEvent(yReady)
		if _, err := c.comp.AxpyAsync(n, opts.Alpha, xBuf, xOff, yBuf, yOff); err != nil {
			return fail(err)
		}
		res.Subkernels++

		if opts.Y.Loc == model.OnHost {
			c.d2h.WaitEvent(c.comp.Record())
			var host []float64
			if opts.Y.HostF64 != nil {
				host = opts.Y.HostF64[off:]
			}
			if _, err := c.d2h.MemcpyD2HAsync(host, nil, yBuf, yOff, int64(n)); err != nil {
				return fail(err)
			}
			res.BytesD2H += int64(n) * 8
		}
	}

	end, err := c.rt.Sync()
	for _, b := range pooled {
		c.Release(b)
	}
	if err != nil {
		return Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}

// equivCase is one replay-equivalence scenario: build operands on a fresh
// noisy device and run one routine, returning the result and the final
// host-visible output payload.
type equivCase struct {
	name string
	run  func(t *testing.T, c *Context, direct bool) (Result, []float64)
}

// equivCtx builds a fresh simulated device with NOISE enabled (seeded), so
// timing equivalence is tested against the hardest clock, plus a payload
// worker pool of the given size.
func equivCtx(workers int) *Context {
	eng := sim.New()
	dev := device.New(eng, machine.TestbedI(), 7, false)
	rt := cudart.New(dev)
	if workers > 1 {
		rt.SetPayloadPool(parallel.NewPool(workers))
	}
	return NewContext(rt, true)
}

// equivMat builds a matrix operand at loc from host data (copied, so the
// two runs never share storage).
func equivMat(t *testing.T, c *Context, rows, cols int, host []float64, loc model.Loc) *Matrix {
	t.Helper()
	cp := append([]float64(nil), host...)
	if loc == model.OnHost {
		return &Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostF64: cp, HostLd: rows}
	}
	return deviceMatrix(t, c, rows, cols, cp)
}

// equivVec builds a vector operand at loc.
func equivVec(t *testing.T, c *Context, n int, host []float64, loc model.Loc) *Vector {
	t.Helper()
	cp := append([]float64(nil), host...)
	if loc == model.OnHost {
		return &Vector{N: n, Loc: model.OnHost, HostF64: cp}
	}
	buf, err := c.rt.Malloc(kernelmodel.F64, int64(n), true)
	if err != nil {
		t.Fatal(err)
	}
	s := c.rt.NewStream()
	if _, err := s.MemcpyH2DAsync(buf, 0, cp, nil, int64(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.rt.Sync(); err != nil {
		t.Fatal(err)
	}
	return &Vector{N: n, Loc: model.OnDevice, Dev: buf}
}

// readback copies a device matrix's contents to the host.
func readback(t *testing.T, c *Context, buf *cudart.DevBuffer, n int) []float64 {
	t.Helper()
	out := make([]float64, n)
	s := c.rt.NewStream()
	if _, err := s.MemcpyD2HAsync(out, nil, buf, 0, int64(n)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.rt.Sync(); err != nil {
		t.Fatal(err)
	}
	return out
}

// output returns the host-visible output payload of a matrix operand.
func output(t *testing.T, c *Context, m *Matrix) []float64 {
	if m.Loc == model.OnHost {
		return m.HostF64
	}
	return readback(t, c, m.Dev, m.Rows*m.Cols)
}

// outputVec returns the host-visible output payload of a vector operand.
func outputVec(t *testing.T, c *Context, v *Vector) []float64 {
	if v.Loc == model.OnHost {
		return v.HostF64
	}
	return readback(t, c, v.Dev, v.N)
}

// gemmEquivCase builds one gemm scenario (shared by the reuse and no-reuse
// suites via the runner argument).
func gemmEquivCase(name string, m, n, k, T int, transA, transB byte, alpha, beta float64,
	locs [3]model.Loc, overheadS float64, blockingWB bool,
	planned func(*Context, GemmOpts) (Result, error),
	direct func(*Context, GemmOpts) (Result, error)) equivCase {
	return equivCase{name: name, run: func(t *testing.T, c *Context, useDirect bool) (Result, []float64) {
		t.Helper()
		c.SetDispatchOverhead(overheadS)
		c.SetBlockingWriteback(blockingWB)
		rng := rand.New(rand.NewSource(int64(m + 31*n + 7*k)))
		ar, ac := m, k
		if transA == blas.Trans {
			ar, ac = k, m
		}
		br, bc := k, n
		if transB == blas.Trans {
			br, bc = n, k
		}
		A := equivMat(t, c, ar, ac, randMat(rng, ar, ac), locs[0])
		B := equivMat(t, c, br, bc, randMat(rng, br, bc), locs[1])
		C := equivMat(t, c, m, n, randMat(rng, m, n), locs[2])
		opts := GemmOpts{Dtype: kernelmodel.F64, TransA: transA, TransB: transB,
			M: m, N: n, K: k, Alpha: alpha, Beta: beta, A: A, B: B, C: C, T: T}
		f := planned
		if useDirect {
			f = direct
		}
		res, err := f(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res, output(t, c, C)
	}}
}

// equivCases enumerates the replay-equivalence scenarios across all four
// routines: location combinations, ragged shapes, transposes, beta = 0 and
// the comparator knobs (dispatch overhead, blocking write-back).
func equivCases() []equivCase {
	H, D := model.OnHost, model.OnDevice
	gemm := func(c *Context, o GemmOpts) (Result, error) { return c.Gemm(o) }
	noreuse := func(c *Context, o GemmOpts) (Result, error) { return c.GemmNoReuse(o) }
	cases := []equivCase{
		gemmEquivCase("gemm/host-ragged", 130, 70, 95, 64, blas.NoTrans, blas.NoTrans, 1.25, 0.5, [3]model.Loc{H, H, H}, 0, false, gemm, refGemm),
		gemmEquivCase("gemm/beta0", 128, 64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0, [3]model.Loc{H, H, H}, 0, false, gemm, refGemm),
		gemmEquivCase("gemm/trans", 90, 110, 70, 64, blas.Trans, blas.Trans, 1, 1, [3]model.Loc{H, H, H}, 0, false, gemm, refGemm),
		gemmEquivCase("gemm/devA-devC", 128, 128, 128, 64, blas.NoTrans, blas.NoTrans, 1, 1, [3]model.Loc{D, H, D}, 0, false, gemm, refGemm),
		gemmEquivCase("gemm/blasx-knobs", 130, 70, 95, 64, blas.NoTrans, blas.NoTrans, 1, 1, [3]model.Loc{H, H, H}, 2e-5, true, gemm, refGemm),
		gemmEquivCase("noreuse/host-ragged", 130, 70, 95, 64, blas.NoTrans, blas.NoTrans, 1.25, 0.5, [3]model.Loc{H, H, H}, 0, false, noreuse, refGemmNoReuse),
		gemmEquivCase("noreuse/beta0", 128, 64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0, [3]model.Loc{H, H, H}, 0, false, noreuse, refGemmNoReuse),
		gemmEquivCase("noreuse/device", 128, 128, 128, 64, blas.NoTrans, blas.NoTrans, 1, 1, [3]model.Loc{D, D, D}, 0, false, noreuse, refGemmNoReuse),
		{name: "gemv/host-ragged", run: func(t *testing.T, c *Context, direct bool) (Result, []float64) {
			rng := rand.New(rand.NewSource(17))
			m, n := 190, 140
			A := equivMat(t, c, m, n, randMat(rng, m, n), model.OnHost)
			X := equivVec(t, c, n, randMat(rng, n, 1), model.OnHost)
			Y := equivVec(t, c, m, randMat(rng, m, 1), model.OnHost)
			opts := GemvOpts{M: m, N: n, Alpha: 1.5, Beta: 0.25, A: A, X: X, Y: Y, T: 64}
			f := (*Context).Gemv
			if direct {
				f = refGemv
			}
			res, err := f(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res, outputVec(t, c, Y)
		}},
		{name: "gemv/devX-blockingWB", run: func(t *testing.T, c *Context, direct bool) (Result, []float64) {
			c.SetBlockingWriteback(true)
			rng := rand.New(rand.NewSource(19))
			m, n := 150, 130
			A := equivMat(t, c, m, n, randMat(rng, m, n), model.OnHost)
			X := equivVec(t, c, n, randMat(rng, n, 1), model.OnDevice)
			Y := equivVec(t, c, m, randMat(rng, m, 1), model.OnHost)
			opts := GemvOpts{M: m, N: n, Alpha: 1, Beta: 0, A: A, X: X, Y: Y, T: 64}
			f := (*Context).Gemv
			if direct {
				f = refGemv
			}
			res, err := f(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res, outputVec(t, c, Y)
		}},
		{name: "axpy/host-ragged", run: func(t *testing.T, c *Context, direct bool) (Result, []float64) {
			rng := rand.New(rand.NewSource(23))
			n := 1000
			X := equivVec(t, c, n, randMat(rng, n, 1), model.OnHost)
			Y := equivVec(t, c, n, randMat(rng, n, 1), model.OnHost)
			opts := AxpyOpts{N: n, Alpha: 1.1, X: X, Y: Y, T: 384}
			f := (*Context).Axpy
			if direct {
				f = refAxpy
			}
			res, err := f(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res, outputVec(t, c, Y)
		}},
		{name: "axpy/devX", run: func(t *testing.T, c *Context, direct bool) (Result, []float64) {
			rng := rand.New(rand.NewSource(29))
			n := 777
			X := equivVec(t, c, n, randMat(rng, n, 1), model.OnDevice)
			Y := equivVec(t, c, n, randMat(rng, n, 1), model.OnHost)
			opts := AxpyOpts{N: n, Alpha: 0.75, X: X, Y: Y, T: 256}
			f := (*Context).Axpy
			if direct {
				f = refAxpy
			}
			res, err := f(c, opts)
			if err != nil {
				t.Fatal(err)
			}
			return res, outputVec(t, c, Y)
		}},
	}
	return cases
}

// TestPlanReplayEquivalence runs every scenario through the plan-based
// path and the preserved imperative oracle on separate engines and demands
// byte-identical timings, annotations and output payloads, at payload
// worker counts 1, 2 and 8.
func TestPlanReplayEquivalence(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		for _, tc := range equivCases() {
			t.Run(fmt.Sprintf("%s/workers=%d", tc.name, workers), func(t *testing.T) {
				cPlan := equivCtx(workers)
				resPlan, outPlan := tc.run(t, cPlan, false)
				cRef := equivCtx(workers)
				resRef, outRef := tc.run(t, cRef, true)

				if math.Float64bits(resPlan.Seconds) != math.Float64bits(resRef.Seconds) {
					t.Errorf("Seconds diverged: plan %v (%x) vs direct %v (%x)",
						resPlan.Seconds, math.Float64bits(resPlan.Seconds),
						resRef.Seconds, math.Float64bits(resRef.Seconds))
				}
				if resPlan.Subkernels != resRef.Subkernels ||
					resPlan.BytesH2D != resRef.BytesH2D ||
					resPlan.BytesD2H != resRef.BytesD2H {
					t.Errorf("annotations diverged: plan %+v vs direct %+v", resPlan, resRef)
				}
				if len(outPlan) != len(outRef) {
					t.Fatalf("payload length diverged: %d vs %d", len(outPlan), len(outRef))
				}
				for i := range outPlan {
					if math.Float64bits(outPlan[i]) != math.Float64bits(outRef[i]) {
						t.Fatalf("payload diverged at %d: %x vs %x",
							i, math.Float64bits(outPlan[i]), math.Float64bits(outRef[i]))
					}
				}
			})
		}
	}
}

// TestPlanReplayReuse replays one memoized plan twice on the same context
// and checks the second run is byte-identical to a freshly planned one on
// an identically-prepared context (the campaign runner's reuse pattern).
func TestPlanReplayReuse(t *testing.T) {
	build := func() (*Context, GemmOpts) {
		c := equivCtx(1)
		rng := rand.New(rand.NewSource(5))
		m, n, k := 130, 70, 95
		A := equivMat(t, c, m, k, randMat(rng, m, k), model.OnHost)
		B := equivMat(t, c, k, n, randMat(rng, k, n), model.OnHost)
		C := equivMat(t, c, m, n, randMat(rng, m, n), model.OnHost)
		return c, GemmOpts{Dtype: kernelmodel.F64, M: m, N: n, K: k,
			Alpha: 1, Beta: 1, A: A, B: B, C: C, T: 64}
	}

	cA, optsA := build()
	p, err := cA.PlanGemm(optsA)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := cA.GemmWith(p, optsA)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cA.GemmWith(p, optsA)
	if err != nil {
		t.Fatal(err)
	}

	cB, optsB := build()
	s1, err := cB.Gemm(optsB)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := cB.Gemm(optsB)
	if err != nil {
		t.Fatal(err)
	}

	for i, pair := range [][2]Result{{r1, s1}, {r2, s2}} {
		if math.Float64bits(pair[0].Seconds) != math.Float64bits(pair[1].Seconds) {
			t.Errorf("call %d: replayed %v vs direct %v", i+1, pair[0].Seconds, pair[1].Seconds)
		}
	}
	for i := range optsA.C.HostF64 {
		if math.Float64bits(optsA.C.HostF64[i]) != math.Float64bits(optsB.C.HostF64[i]) {
			t.Fatalf("payload diverged at %d", i)
		}
	}

	// A plan built for one shape must refuse other invocations.
	bad := optsA
	bad.N = 80
	bad.B = equivMat(t, cA, 95, 80, randMat(rand.New(rand.NewSource(6)), 95, 80), model.OnHost)
	bad.C = equivMat(t, cA, 130, 80, randMat(rand.New(rand.NewSource(7)), 130, 80), model.OnHost)
	if _, err := cA.GemmWith(p, bad); err == nil {
		t.Fatal("GemmWith accepted a mismatched plan")
	}
}
