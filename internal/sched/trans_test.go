package sched

import (
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// TestGemmAllTransposeCombos verifies the tiled scheduler against the
// reference BLAS for every transpose-flag combination, with ragged tiles.
func TestGemmAllTransposeCombos(t *testing.T) {
	m, n, k, T := 70, 45, 53, 32
	rng := rand.New(rand.NewSource(41))
	for _, ta := range []byte{blas.NoTrans, blas.Trans} {
		for _, tb := range []byte{blas.NoTrans, blas.Trans} {
			c := newCtx(true)
			aRows, aCols := m, k
			if ta == blas.Trans {
				aRows, aCols = k, m
			}
			bRows, bCols := k, n
			if tb == blas.Trans {
				bRows, bCols = n, k
			}
			hostA := randMat(rng, aRows, aCols)
			hostB := randMat(rng, bRows, bCols)
			hostC := randMat(rng, m, n)
			ref := append([]float64(nil), hostC...)
			if err := blas.Dgemm(ta, tb, m, n, k, 1.5, hostA, aRows, hostB, bRows, 0.5, ref, m); err != nil {
				t.Fatal(err)
			}
			res, err := c.Gemm(GemmOpts{
				Dtype: kernelmodel.F64, TransA: ta, TransB: tb,
				M: m, N: n, K: k, Alpha: 1.5, Beta: 0.5,
				A: &Matrix{Rows: aRows, Cols: aCols, Loc: model.OnHost, HostF64: hostA, HostLd: aRows},
				B: &Matrix{Rows: bRows, Cols: bCols, Loc: model.OnHost, HostF64: hostB, HostLd: bRows},
				C: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF64: hostC, HostLd: m},
				T: T,
			})
			if err != nil {
				t.Fatalf("ta=%c tb=%c: %v", ta, tb, err)
			}
			if d := maxDiff(hostC, ref); d > 1e-10 {
				t.Errorf("ta=%c tb=%c: result differs by %g", ta, tb, d)
			}
			if res.Subkernels != 3*2*2 {
				t.Errorf("ta=%c tb=%c: %d subkernels", ta, tb, res.Subkernels)
			}
		}
	}
}

func TestGemmTransposedDeviceResident(t *testing.T) {
	// A device-resident transposed operand is used in place through
	// stored-coordinate subviews.
	c := newCtx(true)
	m, n, k, T := 64, 48, 56, 32
	rng := rand.New(rand.NewSource(42))
	hostA := randMat(rng, k, m) // stored KxM, op(A) = A^T
	hostB := randMat(rng, k, n)
	hostC := make([]float64, m*n)
	ref := make([]float64, m*n)
	if err := blas.Dgemm(blas.Trans, blas.NoTrans, m, n, k, 1, hostA, k, hostB, k, 0, ref, m); err != nil {
		t.Fatal(err)
	}
	devA := deviceMatrix(t, c, k, m, hostA)
	res, err := c.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, TransA: blas.Trans,
		M: m, N: n, K: k, Alpha: 1, Beta: 0,
		A: devA,
		B: &Matrix{Rows: k, Cols: n, Loc: model.OnHost, HostF64: hostB, HostLd: k},
		C: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF64: hostC, HostLd: m},
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(hostC, ref); d > 1e-10 {
		t.Errorf("device-resident transposed A: diff %g", d)
	}
	// A on device: only B crosses h2d (beta=0 skips C).
	if want := int64(k*n) * 8; res.BytesH2D != want {
		t.Errorf("h2d = %d, want %d", res.BytesH2D, want)
	}
}

func TestGemmBadTransposeFlag(t *testing.T) {
	c := newCtx(false)
	A := &Matrix{Rows: 64, Cols: 64, Loc: model.OnHost, HostLd: 64}
	if _, err := c.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, TransA: 'X',
		M: 64, N: 64, K: 64, A: A, B: A, C: A, T: 32,
	}); err == nil {
		t.Error("bad transpose flag should error")
	}
	// Shape mismatch under transposition must be caught.
	if _, err := c.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, TransA: blas.Trans,
		M: 64, N: 64, K: 32, A: A, B: A, C: A, T: 32,
	}); err == nil {
		t.Error("transposed shape mismatch should error")
	}
}

func TestSyrkWrapper(t *testing.T) {
	for _, trans := range []byte{blas.NoTrans, blas.Trans} {
		c := newCtx(true)
		n, k, T := 48, 40, 16
		rng := rand.New(rand.NewSource(43))
		aRows, aCols := n, k
		if trans == blas.Trans {
			aRows, aCols = k, n
		}
		hostA := randMat(rng, aRows, aCols)
		hostC := randMat(rng, n, n)
		ref := append([]float64(nil), hostC...)
		if err := blas.Syrk(trans, n, k, 1.5, hostA, aRows, 0.5, ref, n); err != nil {
			t.Fatal(err)
		}
		res, err := c.Syrk(SyrkOpts{
			Dtype: kernelmodel.F64, Trans: trans, N: n, K: k,
			Alpha: 1.5, Beta: 0.5,
			A: &Matrix{Rows: aRows, Cols: aCols, Loc: model.OnHost, HostF64: hostA, HostLd: aRows},
			C: &Matrix{Rows: n, Cols: n, Loc: model.OnHost, HostF64: hostC, HostLd: n},
			T: T,
		})
		if err != nil {
			t.Fatalf("trans=%c: %v", trans, err)
		}
		if d := maxDiff(hostC, ref); d > 1e-10 {
			t.Errorf("trans=%c: syrk differs by %g", trans, d)
		}
		if res.Subkernels <= 0 {
			t.Error("no subkernels recorded")
		}
	}
	// Bad flag propagates.
	c := newCtx(false)
	A := &Matrix{Rows: 8, Cols: 8, Loc: model.OnHost, HostLd: 8}
	if _, err := c.Syrk(SyrkOpts{Dtype: kernelmodel.F64, Trans: 'Q', N: 8, K: 8, A: A, C: A, T: 8}); err == nil {
		t.Error("bad syrk flag should error")
	}
}
