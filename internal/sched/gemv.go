package sched

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// GemvOpts parameterizes a tiled level-2 invocation
// y = alpha*A*x + beta*y for an M x N matrix A.
type GemvOpts struct {
	M, N        int
	Alpha, Beta float64
	A           *Matrix
	X, Y        *Vector
	// T is the square tiling size applied to both matrix dimensions.
	T int
}

// Gemv executes the level-2 path of the tile scheduler (Section III-C:
// two tiled dimensions, square tiling, modest vector reuse): A is split
// into TxT tiles each fetched once, x chunks are fetched once and reused
// down each tile column, and y chunks accumulate on the device and are
// written back once after their last partial product.
func (c *Context) Gemv(opts GemvOpts) (Result, error) {
	if opts.M <= 0 || opts.N <= 0 {
		return Result{}, fmt.Errorf("sched: non-positive gemv dims %dx%d", opts.M, opts.N)
	}
	if opts.T <= 0 {
		return Result{}, fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	if err := opts.A.Validate("A", kernelmodel.F64, c.backed); err != nil {
		return Result{}, err
	}
	if err := opts.X.Validate("x", c.backed); err != nil {
		return Result{}, err
	}
	if err := opts.Y.Validate("y", c.backed); err != nil {
		return Result{}, err
	}
	if opts.A.Rows != opts.M || opts.A.Cols != opts.N || opts.X.N != opts.N || opts.Y.N != opts.M {
		return Result{}, errors.New("sched: operand shapes inconsistent with m, n")
	}

	T := opts.T
	mt := ceil(opts.M, T)
	nt := ceil(opts.N, T)
	res := Result{T: T}
	start := c.rt.Now()
	var pooled []*cudart.DevBuffer
	fail := func(err error) (Result, error) {
		for _, b := range pooled {
			c.release(b)
		}
		return Result{}, err
	}

	// x chunks: fetched once, reused by every tile row (vector reuse). The
	// chunk grid reuses context-owned backing; ready == nil marks an unused
	// slot.
	if cap(c.xChunks) < nt {
		c.xChunks = make([]vecChunk, nt)
	}
	xChunks := c.xChunks[:nt]
	for i := range xChunks {
		xChunks[i] = vecChunk{}
	}
	getX := func(tj, n int) (*vecChunk, error) {
		ch := &xChunks[tj]
		if ch.ready != nil {
			return ch, nil
		}
		if opts.X.Loc == model.OnDevice {
			*ch = vecChunk{buf: opts.X.Dev, off: int64(tj * T), ready: cudart.DoneEvent()}
			return ch, nil
		}
		buf, err := c.acquire(kernelmodel.F64, int64(n))
		if err != nil {
			return nil, err
		}
		pooled = append(pooled, buf)
		var host []float64
		if opts.X.HostF64 != nil {
			host = opts.X.HostF64[tj*T:]
		}
		ev, err := c.h2d.MemcpyH2DAsync(buf, 0, host, nil, int64(n))
		if err != nil {
			return nil, err
		}
		res.BytesH2D += int64(n) * 8
		*ch = vecChunk{buf: buf, off: 0, ready: ev}
		return ch, nil
	}

	// Walk tile rows: each accumulates one y chunk across the tile
	// columns, then writes it back.
	for ti := 0; ti < mt; ti++ {
		rows := min(T, opts.M-ti*T)
		// y chunk.
		var yBuf *cudart.DevBuffer
		var yOff int64
		yReady := cudart.DoneEvent()
		if opts.Y.Loc == model.OnDevice {
			yBuf, yOff = opts.Y.Dev, int64(ti*T)
		} else {
			buf, err := c.acquire(kernelmodel.F64, int64(rows))
			if err != nil {
				return fail(err)
			}
			pooled = append(pooled, buf)
			yBuf, yOff = buf, 0
			if opts.Beta != 0 {
				var host []float64
				if opts.Y.HostF64 != nil {
					host = opts.Y.HostF64[ti*T:]
				}
				ev, err := c.h2d.MemcpyH2DAsync(buf, 0, host, nil, int64(rows))
				if err != nil {
					return fail(err)
				}
				res.BytesH2D += int64(rows) * 8
				yReady = ev
			}
		}

		for tj := 0; tj < nt; tj++ {
			cols := min(T, opts.N-tj*T)
			xc, err := getX(tj, cols)
			if err != nil {
				return fail(err)
			}
			// A tile: used exactly once, so fetch per sub-kernel.
			aBuf, aOff, aLd := opts.A.Dev, int64(0), opts.A.DevLd
			if opts.A.Loc == model.OnHost {
				buf, err := c.acquire(kernelmodel.F64, int64(rows)*int64(cols))
				if err != nil {
					return fail(err)
				}
				pooled = append(pooled, buf)
				h64, h32 := opts.A.HostSlices(ti*T, tj*T)
				ev, err := c.h2d.SetMatrixAsync(rows, cols, h64, h32, opts.A.HostLd, buf, 0, rows)
				if err != nil {
					return fail(err)
				}
				res.BytesH2D += int64(rows) * int64(cols) * 8
				c.comp.WaitEvent(ev)
				aBuf, aOff, aLd = buf, 0, rows
			} else {
				aOff = int64(ti*T) + int64(tj*T)*int64(opts.A.DevLd)
			}

			c.comp.WaitEvent(xc.ready)
			beta := 1.0
			if tj == 0 {
				c.comp.WaitEvent(yReady)
				beta = opts.Beta
				if opts.Y.Loc == model.OnHost && opts.Beta == 0 {
					beta = 0
				}
			}
			if _, err := c.comp.GemvAsync(blas.NoTrans, rows, cols, opts.Alpha,
				aBuf, aOff, aLd, xc.buf, xc.off, beta, yBuf, yOff); err != nil {
				return fail(err)
			}
			res.Subkernels++
		}

		if opts.Y.Loc == model.OnHost {
			c.d2h.WaitEvent(c.comp.Record())
			var host []float64
			if opts.Y.HostF64 != nil {
				host = opts.Y.HostF64[ti*T:]
			}
			if _, err := c.d2h.MemcpyD2HAsync(host, nil, yBuf, yOff, int64(rows)); err != nil {
				return fail(err)
			}
			res.BytesD2H += int64(rows) * 8
			if c.blockingWriteback {
				c.comp.WaitEvent(c.d2h.Record())
			}
		}
	}

	end, err := c.rt.Sync()
	for _, b := range pooled {
		c.release(b)
	}
	if err != nil {
		return Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}
