package sched

import (
	"errors"
	"fmt"

	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/plan"
)

// GemvOpts parameterizes a tiled level-2 invocation
// y = alpha*A*x + beta*y for an M x N matrix A.
type GemvOpts struct {
	M, N        int
	Alpha, Beta float64
	A           *Matrix
	X, Y        *Vector
	// T is the square tiling size applied to both matrix dimensions.
	T int
}

// validateGemv checks the level-2 invocation.
func (c *Context) validateGemv(opts GemvOpts) error {
	if opts.M <= 0 || opts.N <= 0 {
		return fmt.Errorf("sched: non-positive gemv dims %dx%d", opts.M, opts.N)
	}
	if opts.T <= 0 {
		return fmt.Errorf("sched: non-positive tiling size %d", opts.T)
	}
	if err := opts.A.Validate("A", kernelmodel.F64, c.backed); err != nil {
		return err
	}
	if err := opts.X.Validate("x", c.backed); err != nil {
		return err
	}
	if err := opts.Y.Validate("y", c.backed); err != nil {
		return err
	}
	if opts.A.Rows != opts.M || opts.A.Cols != opts.N || opts.X.N != opts.N || opts.Y.N != opts.M {
		return errors.New("sched: operand shapes inconsistent with m, n")
	}
	return nil
}

// PlanGemv validates the invocation and builds its level-2 plan.
func (c *Context) PlanGemv(opts GemvOpts) (*plan.Plan, error) {
	if err := c.validateGemv(opts); err != nil {
		return nil, err
	}
	return plan.BuildGemv(plan.GemvSpec{
		M: opts.M, N: opts.N,
		Alpha: opts.Alpha, Beta: opts.Beta,
		LocA: opts.A.Loc, LocX: opts.X.Loc, LocY: opts.Y.Loc,
		T:                 opts.T,
		BlockingWriteback: c.blockingWriteback,
	}), nil
}

// gemvArgs binds the gemv operands in plan argument order.
func gemvArgs(opts GemvOpts) []plan.Arg {
	return []plan.Arg{{Mat: opts.A}, {Vec: opts.X}, {Vec: opts.Y}}
}

// Gemv executes the level-2 path of the tile scheduler (Section III-C:
// two tiled dimensions, square tiling, modest vector reuse): A is split
// into TxT tiles each fetched once, x chunks are fetched once and reused
// down each tile column, and y chunks accumulate on the device and are
// written back once after their last partial product.
func (c *Context) Gemv(opts GemvOpts) (Result, error) {
	p, err := c.PlanGemv(opts)
	if err != nil {
		return Result{}, err
	}
	return c.runPlanSync(p, gemvArgs(opts))
}

// GemvEnqueueWith replays a previously built gemv plan on the context's
// streams without draining the engine, so callers can time the enqueue and
// the event-queue advance separately (see PendingGemm).
func (c *Context) GemvEnqueueWith(p *plan.Plan, opts GemvOpts) (*PendingGemm, error) {
	if err := c.validateGemv(opts); err != nil {
		return nil, err
	}
	if p == nil || p.Routine != "gemv" || p.M != opts.M || p.N != opts.N || p.T != opts.T ||
		!sameScalar(p.Alpha, opts.Alpha) || !sameScalar(p.Beta, opts.Beta) ||
		p.Locs[0] != opts.A.Loc || p.Locs[1] != opts.X.Loc || p.Locs[2] != opts.Y.Loc {
		return nil, errors.New("sched: gemv plan does not match the invocation")
	}
	return c.enqueuePlan(p, gemvArgs(opts))
}

// GemvWith executes a previously built gemv plan against operands of the
// matching shape.
func (c *Context) GemvWith(p *plan.Plan, opts GemvOpts) (Result, error) {
	pend, err := c.GemvEnqueueWith(p, opts)
	if err != nil {
		return Result{}, err
	}
	return c.finishSync(pend)
}
