package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// TestGemmRandomizedEquivalence cross-checks randomly shaped tiled gemm
// executions (random dims, tile, scalars and operand locations, both
// reuse and no-reuse schedulers) against the reference BLAS.
func TestGemmRandomizedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCtx(true)
		m := 1 + rng.Intn(80)
		n := 1 + rng.Intn(80)
		k := 1 + rng.Intn(80)
		T := 1 + rng.Intn(96)
		alpha := rng.NormFloat64()
		beta := 0.0
		if rng.Intn(2) == 0 {
			beta = rng.NormFloat64()
		}
		hostA := randMat(rng, m, k)
		hostB := randMat(rng, k, n)
		hostC := randMat(rng, m, n)
		ref := append([]float64(nil), hostC...)
		if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, alpha, hostA, m, hostB, k, beta, ref, m); err != nil {
			t.Fatal(err)
		}

		locs := [3]model.Loc{}
		for i := range locs {
			if rng.Intn(3) == 0 {
				locs[i] = model.OnDevice
			}
		}
		mat := func(rows, cols int, host []float64, loc model.Loc) *Matrix {
			if loc == model.OnHost {
				return &Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostF64: host, HostLd: rows}
			}
			return deviceMatrix(t, c, rows, cols, host)
		}
		A := mat(m, k, hostA, locs[0])
		B := mat(k, n, hostB, locs[1])
		C := mat(m, n, hostC, locs[2])
		opts := GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: n, K: k,
			Alpha: alpha, Beta: beta, A: A, B: B, C: C, T: T,
		}
		var err error
		if rng.Intn(2) == 0 {
			_, err = c.Gemm(opts)
		} else {
			_, err = c.GemmNoReuse(opts)
		}
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		got := hostC
		if locs[2] == model.OnDevice {
			got = make([]float64, m*n)
			s := c.rt.NewStream()
			if _, err := s.MemcpyD2HAsync(got, nil, C.Dev, 0, int64(m*n)); err != nil {
				t.Fatal(err)
			}
			if _, err := c.rt.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		if d := maxDiff(got, ref); d > 1e-9 {
			t.Logf("seed %d (m=%d n=%d k=%d T=%d locs=%v): diff %g", seed, m, n, k, T, locs, d)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestAxpyRandomizedEquivalence does the same for the level-1 path.
func TestAxpyRandomizedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCtx(true)
		n := 1 + rng.Intn(5000)
		T := 1 + rng.Intn(n+100)
		alpha := rng.NormFloat64()
		hostX := randMat(rng, n, 1)
		hostY := randMat(rng, n, 1)
		ref := append([]float64(nil), hostY...)
		if err := blas.Daxpy(n, alpha, hostX, 1, ref, 1); err != nil {
			t.Fatal(err)
		}
		_, err := c.Axpy(AxpyOpts{
			N: n, Alpha: alpha,
			X: &Vector{N: n, Loc: model.OnHost, HostF64: hostX},
			Y: &Vector{N: n, Loc: model.OnHost, HostF64: hostY},
			T: T,
		})
		if err != nil {
			return false
		}
		return maxDiff(hostY, ref) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGemvRandomizedEquivalence does the same for the level-2 path.
func TestGemvRandomizedEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := newCtx(true)
		m := 1 + rng.Intn(100)
		n := 1 + rng.Intn(100)
		T := 1 + rng.Intn(120)
		alpha, beta := rng.NormFloat64(), rng.NormFloat64()
		hostA := randMat(rng, m, n)
		hostX := randMat(rng, n, 1)
		hostY := randMat(rng, m, 1)
		ref := append([]float64(nil), hostY...)
		if err := blas.Dgemv(blas.NoTrans, m, n, alpha, hostA, m, hostX, 1, beta, ref, 1); err != nil {
			t.Fatal(err)
		}
		_, err := c.Gemv(GemvOpts{
			M: m, N: n, Alpha: alpha, Beta: beta,
			A: &Matrix{Rows: m, Cols: n, Loc: model.OnHost, HostF64: hostA, HostLd: m},
			X: &Vector{N: n, Loc: model.OnHost, HostF64: hostX},
			Y: &Vector{N: m, Loc: model.OnHost, HostF64: hostY},
			T: T,
		})
		if err != nil {
			return false
		}
		return maxDiff(hostY, ref) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
