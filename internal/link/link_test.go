package link

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/machine"
	"cocopelia/internal/sim"
)

// testbed returns a link-test machine with round numbers: h2d 1 GB/s with
// slowdown 2, d2h 1 GB/s with slowdown 4, zero latency unless lat is set.
func testbed(lat float64) *machine.Testbed {
	tb := machine.TestbedI()
	tb.H2D = machine.LinkParams{LatencyS: lat, BandwidthBps: 1e9, BidSlowdown: 2}
	tb.D2H = machine.LinkParams{LatencyS: lat, BandwidthBps: 1e9, BidSlowdown: 4}
	return tb
}

func almost(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.9g, want %.9g", what, got, want)
	}
}

func TestSingleTransferTime(t *testing.T) {
	eng := sim.New()
	l := New(eng, testbed(1e-5), 0, nil)
	var doneAt sim.Time
	l.Submit(machine.H2D, 1e9, func() { doneAt = eng.Now() })
	eng.Run()
	almost(t, doneAt, 1.00001, 1e-12, "h2d 1GB at 1GB/s + 10us latency")
}

func TestZeroByteTransfer(t *testing.T) {
	eng := sim.New()
	l := New(eng, testbed(5e-6), 0, nil)
	var doneAt sim.Time
	l.Submit(machine.D2H, 0, func() { doneAt = eng.Now() })
	eng.Run()
	almost(t, doneAt, 5e-6, 1e-15, "zero-byte transfer costs latency only")
}

func TestNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative size should panic")
		}
	}()
	New(sim.New(), testbed(0), 0, nil).Submit(machine.H2D, -1, nil)
}

func TestSameDirectionSerializesFIFO(t *testing.T) {
	eng := sim.New()
	l := New(eng, testbed(0), 0, nil)
	var order []int
	var times []sim.Time
	for i := 0; i < 3; i++ {
		i := i
		l.Submit(machine.H2D, 1e9, func() {
			order = append(order, i)
			times = append(times, eng.Now())
		})
	}
	eng.Run()
	for i := 0; i < 3; i++ {
		if order[i] != i {
			t.Fatalf("FIFO violated: %v", order)
		}
		almost(t, times[i], float64(i+1), 1e-9, "serialized completion")
	}
}

func TestFullBidirectionalSlowdown(t *testing.T) {
	// Equal 1 GB transfers in both directions starting together:
	// h2d takes sl_h2d * 1s only while d2h is active. d2h at rate 1/4
	// finishes at 4s; h2d at rate 1/2 finishes at 2s, after which d2h has
	// 0.5 GB left draining at full rate -> d2h total 2 + 0.5 = 2.5s.
	eng := sim.New()
	l := New(eng, testbed(0), 0, nil)
	var h2dAt, d2hAt sim.Time
	l.Submit(machine.H2D, 1e9, func() { h2dAt = eng.Now() })
	l.Submit(machine.D2H, 1e9, func() { d2hAt = eng.Now() })
	eng.Run()
	almost(t, h2dAt, 2.0, 1e-9, "h2d under contention")
	almost(t, d2hAt, 2.5, 1e-9, "d2h piecewise")
}

func TestPartialOverlapMatchesEq3(t *testing.T) {
	// The scenario of the paper's Eq. 3: t_out_bid shorter than t_in_bid.
	// h2d 1 GB (bid rate 0.5 GB/s), d2h 0.25 GB (bid rate 0.25 GB/s).
	// d2h done at 1.0s; h2d then has 0.5 GB at full speed -> 1.5s total,
	// which equals t_out_bid + (t_in_bid - t_out_bid)/sl_h2d = 1 + 1/2.
	eng := sim.New()
	l := New(eng, testbed(0), 0, nil)
	var h2dAt, d2hAt sim.Time
	l.Submit(machine.H2D, 1e9, func() { h2dAt = eng.Now() })
	l.Submit(machine.D2H, 25e7, func() { d2hAt = eng.Now() })
	eng.Run()
	almost(t, d2hAt, 1.0, 1e-9, "short d2h")
	almost(t, h2dAt, 1.5, 1e-9, "long h2d piecewise (Eq. 3)")
}

func TestLateOppositeArrivalSlowsInFlight(t *testing.T) {
	// h2d 1 GB starts at 0 (uncontended). At t=0.5 a d2h 0.125 GB starts.
	// h2d has 0.5 GB left; rate drops to 0.5 GB/s while d2h active.
	// d2h rate 0.25 finishes at 0.5+0.5=1.0; h2d drained 0.25 in that
	// window, 0.25 left at full rate -> total 1.25s.
	eng := sim.New()
	tb := testbed(0)
	l := New(eng, tb, 0, nil)
	var h2dAt sim.Time
	l.Submit(machine.H2D, 1e9, func() { h2dAt = eng.Now() })
	eng.Schedule(0.5, func() {
		l.Submit(machine.D2H, 125e6, nil)
	})
	eng.Run()
	almost(t, h2dAt, 1.25, 1e-9, "in-flight h2d slowed by late d2h")
}

func TestObserverAndStats(t *testing.T) {
	eng := sim.New()
	l := New(eng, testbed(1e-6), 0, nil)
	var observed []int64
	l.SetObserver(func(dir machine.LinkDir, start, end sim.Time, bytes int64) {
		if dir == machine.H2D {
			observed = append(observed, bytes)
		}
		if end < start {
			t.Error("observer interval reversed")
		}
	})
	l.Submit(machine.H2D, 1000, nil)
	l.Submit(machine.H2D, 2000, nil)
	l.Submit(machine.D2H, 500, nil)
	eng.Run()
	if len(observed) != 2 || observed[0] != 1000 || observed[1] != 2000 {
		t.Errorf("observer saw %v", observed)
	}
	st := l.Stats(machine.H2D)
	if st.Bytes != 3000 || st.Transfers != 2 {
		t.Errorf("h2d stats %+v", st)
	}
	if st.BusySeconds <= 0 {
		t.Error("busy time should accumulate")
	}
	if d := l.Stats(machine.D2H); d.Bytes != 500 || d.Transfers != 1 {
		t.Errorf("d2h stats %+v", d)
	}
}

func TestNoiseDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.New()
		l := New(eng, testbed(0), 0.05, rand.New(rand.NewSource(42)))
		var at sim.Time
		l.Submit(machine.H2D, 1e8, func() { at = eng.Now() })
		return func() sim.Time { eng.Run(); return at }()
	}
	if run() != run() {
		t.Error("same seed must give identical transfer times")
	}
}

func TestNoiseVariesAcrossTransfers(t *testing.T) {
	eng := sim.New()
	l := New(eng, testbed(0), 0.05, rand.New(rand.NewSource(1)))
	var t1, t2 sim.Time
	start2 := sim.Time(0)
	l.Submit(machine.H2D, 1e8, func() { t1 = eng.Now() })
	eng.Schedule(10, func() {
		start2 = eng.Now()
		l.Submit(machine.H2D, 1e8, func() { t2 = eng.Now() - start2 })
	})
	eng.Run()
	if t1 == t2 {
		t.Error("noise should differ across transfers")
	}
	// Both must stay within a few sigma of the ideal 0.1s.
	for _, v := range []sim.Time{t1, t2} {
		if v < 0.07 || v > 0.15 {
			t.Errorf("noisy duration %g outside plausible band", v)
		}
	}
}

// Conservation: with no noise, total busy data time per direction equals
// bytes/bandwidth when the other direction is idle.
func TestBusyConservationUncontended(t *testing.T) {
	eng := sim.New()
	l := New(eng, testbed(0), 0, nil)
	const n = 7
	for i := 0; i < n; i++ {
		l.Submit(machine.H2D, 3e8, nil)
	}
	eng.Run()
	st := l.Stats(machine.H2D)
	almost(t, st.BusySeconds, n*0.3, 1e-9, "uncontended busy time")
}
