// Package link simulates the host-device interconnect (PCIe) of a testbed
// as two directional channels that share a physical medium.
//
// Each direction behaves like a CUDA copy engine: transfers are processed
// one at a time in FIFO order. A transfer consists of a fixed latency phase
// (t_l) followed by a fluid data phase that drains bytes at the current
// effective rate. While BOTH directions are in their data phase, each
// side's rate is divided by its direction-specific bidirectional slowdown
// factor — the paper's sl_{h2d,bid} and sl_{d2h,bid}. Rates are recomputed,
// and in-flight completion events rescheduled, at every instant the set of
// active transfers changes, so partially-overlapped opposite transfers are
// modeled exactly (the situation the paper's Eq. 3 approximates
// analytically).
//
// Per-transfer multiplicative bandwidth noise makes repeated measurements
// differ, which exercises the confidence-interval stopping rule of the
// deployment micro-benchmarks.
package link

import (
	"fmt"
	"math/rand"

	"cocopelia/internal/machine"
	"cocopelia/internal/sim"
)

// Observer receives the completed data-phase interval of every transfer.
// It is used by the trace package to build timelines. start marks the end
// of the latency phase; bytes is the payload size.
type Observer func(dir machine.LinkDir, start, end sim.Time, bytes int64)

// transfer is one queued or in-flight copy. Transfers recycle through the
// link free list at completion; the two scheduling closures are created
// once per transfer object, so steady-state submissions allocate nothing.
type transfer struct {
	link      *Link
	dir       machine.LinkDir
	bytes     int64
	remaining float64 // bytes left to drain in the data phase
	rate      float64 // current drain rate, bytes/s
	bwFactor  float64 // per-transfer multiplicative noise on bandwidth
	dataStart sim.Time
	updated   sim.Time // when `remaining` was last settled
	inData    bool     // latency phase finished
	done      func()
	complete  *sim.Event
	enterFn   func() // cached: begins this transfer's data phase
	finishFn  func() // cached: completes this transfer's direction
}

// channel is one direction of the link.
type channel struct {
	params  machine.LinkParams
	queue   []*transfer // FIFO ring over a reusable backing array
	qHead   int
	active  *transfer
	busy    float64 // accumulated busy seconds (latency + data)
	started sim.Time
	bytes   int64 // total payload bytes completed
	count   int64 // total transfers completed
}

// Link is the simulated interconnect. It must be driven by the same
// sim.Engine as the rest of the device.
type Link struct {
	eng      *sim.Engine
	dirs     [2]*channel
	rng      *rand.Rand
	noise    float64
	observer Observer
	free     []*transfer
}

// New creates a link on eng with the testbed's parameters. noiseSigma is
// the relative standard deviation of per-transfer bandwidth noise; rng may
// be nil for a noiseless link.
func New(eng *sim.Engine, tb *machine.Testbed, noiseSigma float64, rng *rand.Rand) *Link {
	l := &Link{
		eng:   eng,
		noise: noiseSigma,
		rng:   rng,
	}
	l.dirs[machine.H2D] = &channel{params: tb.H2D}
	l.dirs[machine.D2H] = &channel{params: tb.D2H}
	return l
}

// SetObserver installs a trace observer (may be nil to remove).
func (l *Link) SetObserver(obs Observer) { l.observer = obs }

// Reset returns the link to its just-created state — empty channels, zeroed
// counters, no observer — while keeping the transfer free list, and reseeds
// the noise stream so the next run draws the exact sequence a freshly
// constructed link with that seed would. Transfers still queued or in
// flight are abandoned (their completion events belong to an engine the
// caller is resetting in the same breath). A noiseless link stays
// noiseless.
func (l *Link) Reset(seed int64) {
	if l.rng != nil {
		l.rng.Seed(seed)
	}
	for _, c := range l.dirs {
		for i := range c.queue {
			c.queue[i] = nil
		}
		c.queue = c.queue[:0]
		c.qHead = 0
		c.active = nil
		c.busy, c.started = 0, 0
		c.bytes, c.count = 0, 0
	}
	l.observer = nil
}

// Stats describes one direction's accumulated activity.
type Stats struct {
	BusySeconds float64
	Bytes       int64
	Transfers   int64
}

// Stats returns the accumulated activity of the given direction.
func (l *Link) Stats(dir machine.LinkDir) Stats {
	c := l.dirs[dir]
	return Stats{BusySeconds: c.busy, Bytes: c.bytes, Transfers: c.count}
}

// Submit enqueues a transfer of the given size; onDone fires (as a
// simulation event) when the last byte lands. Zero-byte transfers cost the
// latency only. Negative sizes panic: they always indicate a caller bug.
//
//cocolint:hotpath
func (l *Link) Submit(dir machine.LinkDir, bytes int64, onDone func()) {
	if bytes < 0 {
		panic(fmt.Sprintf("link: negative transfer size %d", bytes))
	}
	t := l.allocTransfer(dir, bytes, onDone)
	c := l.dirs[dir]
	//lint:ignore hotpath per-direction queue compacts to length zero whenever it drains; the backing array grows only to the deepest backlog
	c.queue = append(c.queue, t)
	if c.active == nil {
		l.startNext(dir)
	}
}

// allocTransfer returns a recycled (or fresh) transfer, drawing the
// bandwidth noise at submission time exactly as before.
func (l *Link) allocTransfer(dir machine.LinkDir, bytes int64, onDone func()) *transfer {
	var t *transfer
	if n := len(l.free); n > 0 {
		t = l.free[n-1]
		l.free[n-1] = nil
		l.free = l.free[:n-1]
		t.rate, t.dataStart, t.updated = 0, 0, 0
		t.inData = false
	} else {
		t = &transfer{link: l}
		t.enterFn = func() { t.link.enterData(t.dir, t) }
		t.finishFn = func() { t.link.finish(t.dir) }
	}
	t.dir, t.bytes, t.remaining = dir, bytes, float64(bytes)
	t.done, t.bwFactor = onDone, l.bwFactor()
	return t
}

// bwFactor draws the per-transfer bandwidth noise.
func (l *Link) bwFactor() float64 {
	if l.rng == nil || l.noise == 0 {
		return 1
	}
	f := 1 + l.noise*l.rng.NormFloat64()
	if f < 0.5 {
		f = 0.5 // clamp pathological draws
	}
	return f
}

// startNext pops the queue head of dir and begins its latency phase.
func (l *Link) startNext(dir machine.LinkDir) {
	c := l.dirs[dir]
	if c.active != nil {
		return
	}
	if c.qHead == len(c.queue) {
		if c.qHead > 0 {
			c.queue = c.queue[:0]
			c.qHead = 0
		}
		return
	}
	t := c.queue[c.qHead]
	c.queue[c.qHead] = nil
	c.qHead++
	if c.qHead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qHead = 0
	}
	c.active = t
	c.started = l.eng.Now()
	l.eng.AfterPart(part(dir), c.params.LatencyS, t.enterFn)
}

// enterData moves a transfer from its latency phase into the fluid data
// phase and recomputes rates on both directions.
func (l *Link) enterData(dir machine.LinkDir, t *transfer) {
	t.inData = true
	t.dataStart = l.eng.Now()
	t.updated = l.eng.Now()
	l.replan()
}

// part maps a link direction onto its event-queue partition. Queue-entry
// events land at least one link latency after the event submitting them —
// the lookahead bound the partitioned engine's drains use — while
// completion events may be scheduled or rescheduled arbitrarily close to
// now; the engine's (at, seq) merge scan keeps that correct regardless.
func part(dir machine.LinkDir) sim.Partition {
	if dir == machine.H2D {
		return sim.PartH2D
	}
	return sim.PartD2H
}

// otherDir returns the opposite direction.
func otherDir(dir machine.LinkDir) machine.LinkDir {
	if dir == machine.H2D {
		return machine.D2H
	}
	return machine.H2D
}

// replan settles the progress of every in-flight data-phase transfer at the
// current instant, assigns new rates based on whether the opposite
// direction is simultaneously active, and reschedules completion events.
// It is the hottest function in the link (every transfer boundary calls it),
// so the two directions are unrolled rather than ranged over.
func (l *Link) replan() {
	now := l.eng.Now()
	ch, cd := l.dirs[machine.H2D], l.dirs[machine.D2H]
	th, td := ch.active, cd.active
	hData := th != nil && th.inData
	dData := td != nil && td.inData
	bothActive := hData && dData
	if hData {
		l.replanOne(machine.H2D, ch, th, now, bothActive)
	}
	if dData {
		l.replanOne(machine.D2H, cd, td, now, bothActive)
	}
}

// replanOne settles one in-flight data-phase transfer at now and
// reschedules its completion. The remaining bytes are always settled at the
// old rate and the finish recomputed from scratch — even when the effective
// rate is unchanged — because reusing a previously scheduled finish time
// instead of recomputing now + remaining/rate can differ in the last ulp,
// and event times must be bit-identical across replay paths.
func (l *Link) replanOne(dir machine.LinkDir, c *channel, t *transfer, now sim.Time, bothActive bool) {
	if t.rate > 0 {
		t.remaining -= t.rate * (now - t.updated)
		if t.remaining < 0 {
			t.remaining = 0
		}
	}
	t.updated = now
	rate := c.params.BandwidthBps * t.bwFactor
	if bothActive {
		rate /= c.params.BidSlowdown
	}
	t.rate = rate
	finish := now
	if t.remaining > 0 {
		finish = now + t.remaining/rate
	}
	if t.complete != nil && t.complete.Pending() {
		l.eng.Reschedule(t.complete, finish)
	} else {
		t.complete = l.eng.SchedulePart(part(dir), finish, t.finishFn)
	}
}

// inData reports whether dir has a transfer in its data phase.
func (l *Link) inData(dir machine.LinkDir) bool {
	t := l.dirs[dir].active
	return t != nil && t.inData
}

// finish completes the active transfer of dir, notifies the observer and
// the caller, starts the next queued transfer, and re-plans the opposite
// direction (whose contention just disappeared).
func (l *Link) finish(dir machine.LinkDir) {
	c := l.dirs[dir]
	t := c.active
	if t == nil {
		panic("link: completion with no active transfer")
	}
	now := l.eng.Now()
	c.active = nil
	// The completion event has fired; the engine may recycle it, so the
	// reference must not outlive this call.
	t.complete = nil
	c.busy += now - c.started
	c.bytes += t.bytes
	c.count++
	if l.observer != nil {
		l.observer(dir, t.dataStart, now, t.bytes)
	}
	// The opposite direction speeds up now that we are done. The transfer
	// recycles before its completion callback runs (the callback is saved
	// locally), so a callback that submits more transfers may reuse it.
	l.replan()
	l.startNext(dir)
	done := t.done
	t.done = nil
	l.free = append(l.free, t)
	if done != nil {
		done()
	}
}
