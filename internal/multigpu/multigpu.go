// Package multigpu implements the paper's stated future-work direction —
// "extend the model ... to multi-GPU and host-assisted execution" — on the
// simulated substrate: a cluster of GPUs, each behind its own PCIe link,
// executing one tiled level-3 problem cooperatively.
//
// The workload distribution follows the performance-aware static split the
// paper advocates: the output matrix C is partitioned into column panels,
// one per GPU (so B tiles are never shared across GPUs and A tiles are
// duplicated only as needed — the same layout BLASX uses for multi-GPU
// gemm), and every GPU runs the reuse-aware tile scheduler on its panel
// with its own streams. The DR model extends naturally: each GPU's panel
// is an independent sub-problem, and the predicted multi-GPU makespan is
// the slowest panel's prediction.
package multigpu

import (
	"errors"
	"fmt"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/plan"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
)

// Cluster is a set of simulated GPUs of the same testbed type attached to
// one host, each behind an independent link, sharing one virtual clock.
type Cluster struct {
	eng      *sim.Engine
	tb       *machine.Testbed
	runtimes []*cudart.Runtime
	contexts []*sched.Context
	backed   bool
}

// NewCluster creates n identical GPUs of the testbed type. backed selects
// functional execution.
func NewCluster(tb *machine.Testbed, n int, seed int64, backed bool) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("multigpu: need at least one GPU, got %d", n)
	}
	if err := tb.Validate(); err != nil {
		return nil, err
	}
	eng := sim.New()
	c := &Cluster{eng: eng, tb: tb, backed: backed}
	for i := 0; i < n; i++ {
		dev := device.New(eng, tb, seed+int64(i)*7919, false)
		rt := cudart.New(dev)
		c.runtimes = append(c.runtimes, rt)
		c.contexts = append(c.contexts, sched.NewContext(rt, backed))
	}
	return c, nil
}

// Size returns the number of GPUs.
func (c *Cluster) Size() int { return len(c.runtimes) }

// Engine returns the shared simulation engine.
func (c *Cluster) Engine() *sim.Engine { return c.eng }

// Runtime returns GPU i's runtime (for staging device-resident operands in
// tests).
func (c *Cluster) Runtime(i int) *cudart.Runtime { return c.runtimes[i] }

// GemmOpts parameterizes a multi-GPU gemm. All operands must be
// host-resident: with more than one GPU there is no single "the device"
// for an operand to live on (device-resident operands remain a single-GPU
// feature, as in the paper).
type GemmOpts struct {
	Dtype       kernelmodel.Dtype
	M, N, K     int
	Alpha, Beta float64
	A, B, C     *operand.Matrix
	// T is the square tiling size used by every GPU's scheduler.
	T int
}

// Result reports a multi-GPU execution.
type Result struct {
	// Seconds is the makespan (all GPUs synchronized).
	Seconds float64
	// T is the tiling size used.
	T int
	// PerGPU carries each GPU's own scheduler result (its panel).
	PerGPU []operand.Result
}

// Gflops converts the makespan to GFLOP/s for the full problem.
func (r Result) Gflops(m, n, k int) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return 2 * float64(m) * float64(n) * float64(k) / r.Seconds / 1e9
}

// PredictDR extends the DR model to the cluster: each GPU's column panel
// is an independent reuse-aware sub-problem on its own link, so the
// predicted makespan is the slowest panel's DR prediction.
func PredictDR(sm model.SubModels, routine string, dtypeSize int64, m, n, k, T, gpus int) (float64, error) {
	if gpus <= 0 {
		return 0, fmt.Errorf("multigpu: non-positive GPU count %d", gpus)
	}
	panels := panelCols(n, gpus, T)
	worst := 0.0
	for _, p := range panels {
		prm := model.GemmParams(routine, dtypeSize, int64(m), int64(p[1]), int64(k),
			model.OnHost, model.OnHost, model.OnHost)
		t, err := model.Predict(model.DR, &prm, sm, T)
		if err != nil {
			return 0, err
		}
		if t > worst {
			worst = t
		}
	}
	return worst, nil
}

// SelectT returns the tiling size minimizing the predicted cluster
// makespan over the sub-model grid's feasible candidates.
func SelectT(sm model.SubModels, routine string, dtypeSize int64, m, n, k, gpus int) (model.Selection, error) {
	prm := model.GemmParams(routine, dtypeSize, int64(m), int64(n), int64(k),
		model.OnHost, model.OnHost, model.OnHost)
	cands := model.Candidates(&prm, sm)
	if len(cands) == 0 {
		return model.Selection{}, model.ErrNoCandidates
	}
	best := model.Selection{Predicted: -1}
	for _, T := range cands {
		t, err := PredictDR(sm, routine, dtypeSize, m, n, k, T, gpus)
		if err != nil {
			return model.Selection{}, err
		}
		if best.Predicted < 0 || t < best.Predicted {
			best = model.Selection{T: T, Predicted: t}
		}
	}
	return best, nil
}

// PanelVolumes sums the plan-level transfer-volume annotations of the
// per-GPU column-panel sub-plans a cluster gemm of this shape would
// replay, using the closed-form planner volumes (all operands
// host-resident, as Gemm requires). Layers that budget traffic against a
// split — the hybrid planner — consume these annotations instead of
// re-deriving transfer math.
func PanelVolumes(dt kernelmodel.Dtype, m, n, k, T, gpus int, beta float64) plan.Volumes {
	var total plan.Volumes
	for _, p := range panelCols(n, gpus, T) {
		v := plan.GemmVolumes(plan.GemmSpec{
			Dtype: dt, M: m, N: p[1], K: k, Beta: beta,
			LocA: model.OnHost, LocB: model.OnHost, LocC: model.OnHost, T: T,
		})
		total.BytesH2D += v.BytesH2D
		total.BytesD2H += v.BytesD2H
		total.Subkernels += v.Subkernels
	}
	return total
}

// panelCols splits n columns into g contiguous panels aligned to the tile
// size where possible, returning each panel's starting column and width.
func panelCols(n, g, T int) [][2]int {
	if g > n {
		g = n
	}
	// Align panel boundaries to multiples of T so no tile straddles two
	// GPUs.
	tiles := (n + T - 1) / T
	base := tiles / g
	extra := tiles % g
	var out [][2]int
	col := 0
	for i := 0; i < g; i++ {
		t := base
		if i < extra {
			t++
		}
		w := t * T
		if col+w > n {
			w = n - col
		}
		if w <= 0 {
			continue
		}
		out = append(out, [2]int{col, w})
		col += w
	}
	return out
}

// Gemm executes C = alpha*A*B + beta*C across the cluster: GPU i owns one
// column panel of C (and the matching panel of B), runs the reuse-aware
// scheduler on it, and all panels execute concurrently on the shared
// clock.
func (c *Cluster) Gemm(opts GemmOpts) (Result, error) {
	if opts.M <= 0 || opts.N <= 0 || opts.K <= 0 {
		return Result{}, fmt.Errorf("multigpu: non-positive dims %dx%dx%d", opts.M, opts.N, opts.K)
	}
	if opts.T <= 0 {
		return Result{}, fmt.Errorf("multigpu: non-positive tiling size %d", opts.T)
	}
	for _, m := range []*operand.Matrix{opts.A, opts.B, opts.C} {
		if m == nil {
			return Result{}, errors.New("multigpu: nil operand")
		}
		if m.Loc != model.OnHost {
			return Result{}, errors.New("multigpu: operands must be host-resident")
		}
	}
	if err := opts.A.Validate("A", opts.Dtype, c.backed); err != nil {
		return Result{}, err
	}
	if err := opts.B.Validate("B", opts.Dtype, c.backed); err != nil {
		return Result{}, err
	}
	if err := opts.C.Validate("C", opts.Dtype, c.backed); err != nil {
		return Result{}, err
	}
	if opts.A.Rows != opts.M || opts.A.Cols != opts.K ||
		opts.B.Rows != opts.K || opts.B.Cols != opts.N ||
		opts.C.Rows != opts.M || opts.C.Cols != opts.N {
		return Result{}, errors.New("multigpu: operand shapes inconsistent with m, n, k")
	}

	panels := panelCols(opts.N, len(c.runtimes), opts.T)
	start := c.eng.Now()
	res := Result{T: opts.T, PerGPU: make([]operand.Result, len(panels))}

	// subMatrix views one column block of a host matrix.
	subMatrix := func(m *operand.Matrix, col, width int) *operand.Matrix {
		out := &operand.Matrix{
			Rows: m.Rows, Cols: width, Loc: model.OnHost, HostLd: m.HostLd,
		}
		off := col * m.HostLd
		if m.HostF64 != nil {
			out.HostF64 = m.HostF64[off:]
		}
		if m.HostF32 != nil {
			out.HostF32 = m.HostF32[off:]
		}
		return out
	}

	// Enqueue every panel's full schedule before draining anything: the
	// panels then execute concurrently on the shared virtual clock, each
	// GPU bounded by its own link and compute engine. Each panel is one
	// sub-plan replayed on its GPU's context; panelCols produces at most
	// two distinct widths, consecutively, so memoizing the last width's
	// plan dedupes the planning work across the cluster.
	pending := make([]*sched.PendingGemm, len(panels))
	panelEnd := make([]float64, len(panels))
	var panelPlan *plan.Plan
	for i, p := range panels {
		bPanel := subMatrix(opts.B, p[0], p[1])
		cPanel := subMatrix(opts.C, p[0], p[1])
		sub := sched.GemmOpts{
			Dtype: opts.Dtype, M: opts.M, N: p[1], K: opts.K,
			Alpha: opts.Alpha, Beta: opts.Beta,
			A: opts.A, B: bPanel, C: cPanel, T: opts.T,
		}
		var err error
		if panelPlan == nil || panelPlan.N != p[1] {
			panelPlan, err = c.contexts[i].PlanGemm(sub)
		}
		var pend *sched.PendingGemm
		if err == nil {
			pend, err = c.contexts[i].GemmEnqueueWith(panelPlan, sub)
		}
		if err != nil {
			// Drain whatever was enqueued so the engine is reusable, then
			// surface the error.
			for _, rt := range c.runtimes {
				_, _ = rt.Sync()
			}
			for j := 0; j < i; j++ {
				pending[j].Finish(c.eng.Now())
			}
			return Result{}, err
		}
		pending[i] = pend
		i := i
		c.contexts[i].OnDrained(func() { panelEnd[i] = c.eng.Now() })
	}

	// One drain executes everything; per-runtime Sync verifies no GPU
	// deadlocked.
	for _, rt := range c.runtimes {
		if _, err := rt.Sync(); err != nil {
			return Result{}, err
		}
	}
	for i, pend := range pending {
		res.PerGPU[i] = pend.Finish(panelEnd[i])
	}
	res.Seconds = c.eng.Now() - start
	return res, nil
}
