package multigpu

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/operand"
	"cocopelia/internal/predictor"
)

func TestPanelCols(t *testing.T) {
	cases := []struct {
		n, g, T int
		want    [][2]int
	}{
		{4096, 2, 1024, [][2]int{{0, 2048}, {2048, 2048}}},
		{4096, 4, 1024, [][2]int{{0, 1024}, {1024, 1024}, {2048, 1024}, {3072, 1024}}},
		// Uneven tile counts: 5 tiles over 2 GPUs -> 3 + 2.
		{5120, 2, 1024, [][2]int{{0, 3072}, {3072, 2048}}},
		// Ragged tail stays within n.
		{5000, 2, 1024, [][2]int{{0, 3072}, {3072, 1928}}},
		// More GPUs than columns collapses.
		{100, 8, 64, [][2]int{{0, 64}, {64, 36}}},
	}
	for _, c := range cases {
		got := panelCols(c.n, c.g, c.T)
		if len(got) != len(c.want) {
			t.Errorf("panelCols(%d,%d,%d) = %v, want %v", c.n, c.g, c.T, got, c.want)
			continue
		}
		total := 0
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("panelCols(%d,%d,%d)[%d] = %v, want %v", c.n, c.g, c.T, i, got[i], c.want[i])
			}
			total += got[i][1]
		}
		if total != c.n {
			t.Errorf("panels cover %d of %d columns", total, c.n)
		}
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(machine.TestbedII(), 0, 1, false); err == nil {
		t.Error("zero GPUs should error")
	}
	bad := machine.TestbedII()
	bad.GPU.PeakFlops64 = 0
	if _, err := NewCluster(bad, 2, 1, false); err == nil {
		t.Error("invalid testbed should error")
	}
	cl, err := NewCluster(machine.TestbedII(), 2, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Size() != 2 || cl.Engine() == nil || cl.Runtime(0) == nil {
		t.Error("cluster accessors wrong")
	}
	A := operand.HostMatrix(64, 64, nil)
	cases := []GemmOpts{
		{Dtype: kernelmodel.F64, M: 0, N: 64, K: 64, A: A, B: A, C: A, T: 32},
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64, A: A, B: A, C: A, T: 0},
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64, A: nil, B: A, C: A, T: 32},
		{Dtype: kernelmodel.F64, M: 64, N: 32, K: 64, A: A, B: A, C: A, T: 32},
	}
	for i, opts := range cases {
		if _, err := cl.Gemm(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMultiGPUFunctional(t *testing.T) {
	// Two GPUs computing one gemm must produce the reference result.
	cl, err := NewCluster(machine.TestbedI(), 2, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	m, n, k, T := 96, 112, 80, 32
	rng := rand.New(rand.NewSource(5))
	hostA := make([]float64, m*k)
	hostB := make([]float64, k*n)
	hostC := make([]float64, m*n)
	for i := range hostA {
		hostA[i] = rng.NormFloat64()
	}
	for i := range hostB {
		hostB[i] = rng.NormFloat64()
	}
	for i := range hostC {
		hostC[i] = rng.NormFloat64()
	}
	ref := append([]float64(nil), hostC...)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1.5, hostA, m, hostB, k, 0.5, ref, m); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: n, K: k, Alpha: 1.5, Beta: 0.5,
		A: operand.HostMatrix(m, k, hostA),
		B: operand.HostMatrix(k, n, hostB),
		C: operand.HostMatrix(m, n, hostC),
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(hostC[i]-ref[i]) > 1e-10 {
			t.Fatalf("c[%d] = %g, want %g", i, hostC[i], ref[i])
		}
	}
	if len(res.PerGPU) != 2 {
		t.Fatalf("expected 2 panels, got %d", len(res.PerGPU))
	}
	var kernels int64
	for _, r := range res.PerGPU {
		kernels += r.Subkernels
	}
	if want := int64(3 * 4 * 3); kernels != want { // ceil(96/32)*ceil(112/32)*ceil(80/32)
		t.Errorf("total subkernels = %d, want %d", kernels, want)
	}
}

func TestMultiGPUScaling(t *testing.T) {
	// Compute-heavy problem: 2 GPUs should approach 2x; 4 GPUs must not
	// be slower than 2.
	makespan := func(gpus int) float64 {
		cl, err := NewCluster(machine.TestbedII(), gpus, 7, false)
		if err != nil {
			t.Fatal(err)
		}
		m := 8192
		res, err := cl.Gemm(GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
			A: operand.HostMatrix(m, m, nil),
			B: operand.HostMatrix(m, m, nil),
			C: operand.HostMatrix(m, m, nil),
			T: 2048,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	t1, t2, t4 := makespan(1), makespan(2), makespan(4)
	if s := t1 / t2; s < 1.4 || s > 2.05 {
		t.Errorf("2-GPU speedup %.2fx implausible (t1=%g t2=%g)", s, t1, t2)
	}
	if t4 > t2*1.02 {
		t.Errorf("4 GPUs (%g) slower than 2 (%g)", t4, t2)
	}
}

func TestMultiGPUMatchesSingleGPUScheduler(t *testing.T) {
	// A 1-GPU cluster must reproduce the plain scheduler's makespan.
	cl, err := NewCluster(machine.TestbedII(), 1, 7, false)
	if err != nil {
		t.Fatal(err)
	}
	m := 4096
	res, err := cl.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(m, m, nil),
		B: operand.HostMatrix(m, m, nil),
		C: operand.HostMatrix(m, m, nil),
		T: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerGPU) != 1 || math.Abs(res.PerGPU[0].Seconds-res.Seconds) > 1e-9 {
		t.Errorf("1-GPU cluster result inconsistent: %+v", res)
	}
}

func TestPredictAndSelect(t *testing.T) {
	dep := microbench.Run(machine.TestbedII(), microbench.DefaultConfig())
	pred := predictor.New(dep)
	sm, err := pred.SubModels("dgemm", 0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := PredictDR(sm, "dgemm", 8, 8192, 8192, 8192, 2048, 1)
	if err != nil {
		t.Fatal(err)
	}
	two, err := PredictDR(sm, "dgemm", 8, 8192, 8192, 8192, 2048, 2)
	if err != nil {
		t.Fatal(err)
	}
	if two >= one {
		t.Errorf("2-GPU prediction (%g) should beat 1-GPU (%g)", two, one)
	}
	if _, err := PredictDR(sm, "dgemm", 8, 64, 64, 64, 2048, 0); err == nil {
		t.Error("zero GPUs should error")
	}
	sel, err := SelectT(sm, "dgemm", 8, 16384, 16384, 16384, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sel.T <= 0 || sel.Predicted <= 0 {
		t.Errorf("selection implausible: %+v", sel)
	}
	if _, err := SelectT(sm, "dgemm", 8, 64, 64, 64, 2); err == nil {
		t.Error("tiny problem should have no candidates")
	}
}

func TestMultiGPUSelectionEndToEnd(t *testing.T) {
	// The cluster-aware selection should produce a measured makespan
	// within a reasonable band of its prediction.
	dep := microbench.Run(machine.TestbedII(), microbench.DefaultConfig())
	pred := predictor.New(dep)
	sm, err := pred.SubModels("dgemm", 0)
	if err != nil {
		t.Fatal(err)
	}
	const gpus = 2
	m := 8192
	sel, err := SelectT(sm, "dgemm", 8, m, m, m, gpus)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(machine.TestbedII(), gpus, 11, false)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(m, m, nil),
		B: operand.HostMatrix(m, m, nil),
		C: operand.HostMatrix(m, m, nil),
		T: sel.T,
	})
	if err != nil {
		t.Fatal(err)
	}
	errPct := 100 * (sel.Predicted - res.Seconds) / res.Seconds
	if errPct < -40 || errPct > 40 {
		t.Errorf("cluster DR prediction off by %.1f%% (pred %g, meas %g)", errPct, sel.Predicted, res.Seconds)
	}
}
