// Package kernelmodel is the ground-truth duration model of BLAS kernels on
// the simulated GPUs. It plays the role that the cuBLAS kernels themselves
// play on real hardware: given a routine and sub-problem dimensions it
// produces the kernel execution time the device will exhibit.
//
// The model deliberately includes the phenomena the paper identifies as the
// reasons simple linear models fail (Section III-A):
//
//   - non-linear execution time: a roofline combining compute throughput
//     with device-memory bandwidth, so small and thin kernels are
//     memory-bound;
//   - GPU underutilization for small sub-problems: a saturating efficiency
//     curve in the problem "dimension" (cube root of M·N·K);
//   - shape sensitivity: fat-by-thin multiplications differ from square
//     ones with the same FLOP count through their byte/FLOP ratio;
//   - fixed kernel launch overhead;
//   - deterministic per-size performance perturbations ("spikes"), with a
//     larger amplitude on the V100-class testbed, as observed in the
//     paper's Section V-C.
//
// Per-invocation measurement noise is NOT applied here; the device layer
// adds it so that repeated invocations of the same kernel differ, which is
// what drives the confidence-interval stopping rule of the deployment
// micro-benchmarks.
package kernelmodel

import (
	"fmt"
	"math"

	"cocopelia/internal/machine"
)

// Dtype identifies the floating-point element type of a routine.
type Dtype int

const (
	// F64 is IEEE double precision (the "d" routine prefix).
	F64 Dtype = iota
	// F32 is IEEE single precision (the "s" routine prefix).
	F32
)

// Size returns the element size in bytes.
func (d Dtype) Size() int64 {
	if d == F32 {
		return 4
	}
	return 8
}

// String returns "f64" or "f32".
func (d Dtype) String() string {
	if d == F32 {
		return "f32"
	}
	return "f64"
}

// peak returns the device peak FLOP/s for the dtype.
func peak(g *machine.GPUSpec, dt Dtype) float64 {
	if dt == F32 {
		return g.PeakFlops32
	}
	return g.PeakFlops64
}

// maxEff returns the asymptotic kernel efficiency for the dtype.
func maxEff(g *machine.GPUSpec, dt Dtype) float64 {
	if dt == F32 {
		return g.MaxEff32
	}
	return g.MaxEff64
}

// hash01 maps integers to a deterministic pseudo-uniform value in [0, 1).
// It drives the per-size performance spikes: the same dimensions always get
// the same perturbation, as on real hardware where specific sizes hit
// pathological (or lucky) kernel configurations.
func hash01(vals ...int64) float64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// spikeFactor returns the multiplicative per-size perturbation of kernel
// efficiency. Sizes are bucketed at 128-element granularity so neighbouring
// dimensions share a spike, mimicking kernel-selection boundaries.
func spikeFactor(g *machine.GPUSpec, dt Dtype, dims ...int) float64 {
	if g.SpikeAmp == 0 {
		return 1
	}
	buckets := make([]int64, 0, len(dims)+1)
	buckets = append(buckets, int64(dt))
	for _, d := range dims {
		buckets = append(buckets, int64(d/128))
	}
	return 1 + g.SpikeAmp*(2*hash01(buckets...)-1)
}

// gemmEff returns the achieved fraction of peak for an MxNxK gemm. It
// saturates toward the device maximum with the characteristic dimension
// d = cbrt(M·N·K) and carries a mild penalty for extreme aspect ratios.
func gemmEff(g *machine.GPUSpec, dt Dtype, m, n, k int) float64 {
	d := math.Cbrt(float64(m) * float64(n) * float64(k))
	eff := maxEff(g, dt) / (1 + math.Pow(g.EffHalfDim/d, g.EffSharpness))
	minDim := math.Min(float64(m), math.Min(float64(n), float64(k)))
	if minDim > 0 && minDim < d {
		// Extreme aspect ratios (fat-by-thin) schedule less efficiently.
		eff *= math.Pow(minDim/d, 0.08)
	}
	return eff * spikeFactor(g, dt, m, n, k)
}

// memEff returns the achieved fraction of device-memory bandwidth for a
// streaming kernel touching the given number of bytes. Short vectors cannot
// saturate the memory system.
func memEff(g *machine.GPUSpec, bytes int64) float64 {
	// Half of peak bandwidth at ~2 MiB working sets, saturating above.
	const halfBytes = 2 << 20
	return 0.92 / (1 + math.Pow(halfBytes/float64(bytes+1), 0.9))
}

// GemmTime returns the execution time of an MxNxK gemm sub-kernel
// (C[MxN] += A[MxK]·B[KxN]) on the device.
func GemmTime(g *machine.GPUSpec, dt Dtype, m, n, k int) float64 {
	if m <= 0 || n <= 0 || k <= 0 {
		return g.KernelLaunchS
	}
	flops := 2 * float64(m) * float64(n) * float64(k)
	bytes := (int64(m)*int64(k) + int64(k)*int64(n) + 2*int64(m)*int64(n)) * dt.Size()
	tCompute := flops / (peak(g, dt) * gemmEff(g, dt, m, n, k))
	tMemory := float64(bytes) / (g.MemBandwidthBps * memEff(g, bytes))
	return g.KernelLaunchS + math.Max(tCompute, tMemory)
}

// AxpyTime returns the execution time of y += alpha*x for vectors of length
// n. axpy is purely bandwidth-bound: it reads x and y and writes y.
func AxpyTime(g *machine.GPUSpec, dt Dtype, n int) float64 {
	if n <= 0 {
		return g.KernelLaunchS
	}
	bytes := 3 * int64(n) * dt.Size()
	return g.KernelLaunchS + float64(bytes)/(g.MemBandwidthBps*memEff(g, bytes))
}

// GemvTime returns the execution time of y = alpha*A*x + beta*y for an
// MxN matrix: bandwidth-bound on the matrix traffic with a small compute
// component.
func GemvTime(g *machine.GPUSpec, dt Dtype, m, n int) float64 {
	if m <= 0 || n <= 0 {
		return g.KernelLaunchS
	}
	bytes := (int64(m)*int64(n) + 2*int64(m) + int64(n)) * dt.Size()
	flops := 2 * float64(m) * float64(n)
	tMemory := float64(bytes) / (g.MemBandwidthBps * memEff(g, bytes))
	tCompute := flops / (peak(g, dt) * 0.5)
	return g.KernelLaunchS + math.Max(tCompute, tMemory)
}

// PotrfTime returns the execution time of the in-place Cholesky
// factorization of an n x n tile (n³/3 flops over n² elements). The
// panel's sequential dependency chain keeps the kernel well below gemm
// efficiency at equal volume, which is why blocked factorizations push
// their flops into TRSM/SYRK/GEMM updates.
func PotrfTime(g *machine.GPUSpec, dt Dtype, n int) float64 {
	if n <= 0 {
		return g.KernelLaunchS
	}
	flops := float64(n) * float64(n) * float64(n) / 3
	bytes := int64(n) * int64(n) * dt.Size()
	tCompute := flops / (peak(g, dt) * 0.40 * gemmEff(g, dt, n, n, n))
	tMemory := float64(bytes) / (g.MemBandwidthBps * memEff(g, bytes))
	return g.KernelLaunchS + math.Max(tCompute, tMemory)
}

// GetrfTime returns the execution time of the in-place unpivoted LU
// factorization of an n x n tile (2n³/3 flops over n² elements).
func GetrfTime(g *machine.GPUSpec, dt Dtype, n int) float64 {
	if n <= 0 {
		return g.KernelLaunchS
	}
	flops := 2 * float64(n) * float64(n) * float64(n) / 3
	bytes := int64(n) * int64(n) * dt.Size()
	tCompute := flops / (peak(g, dt) * 0.45 * gemmEff(g, dt, n, n, n))
	tMemory := float64(bytes) / (g.MemBandwidthBps * memEff(g, bytes))
	return g.KernelLaunchS + math.Max(tCompute, tMemory)
}

// TrsmTime returns the execution time of a triangular tile solve with an
// m x n right-hand side: side 'L' solves op(A)X = B with A m x m (m²n
// flops), any other side solves Xop(A) = B with A n x n (mn² flops). The
// per-column back-substitution chain costs roughly half of the equivalent
// gemm's efficiency.
func TrsmTime(g *machine.GPUSpec, dt Dtype, side byte, m, n int) float64 {
	if m <= 0 || n <= 0 {
		return g.KernelLaunchS
	}
	var flops float64
	var bytes int64
	if side == 'L' {
		flops = float64(m) * float64(m) * float64(n)
		bytes = (int64(m)*int64(m) + 2*int64(m)*int64(n)) * dt.Size()
	} else {
		flops = float64(m) * float64(n) * float64(n)
		bytes = (int64(n)*int64(n) + 2*int64(m)*int64(n)) * dt.Size()
	}
	tCompute := flops / (peak(g, dt) * 0.50 * gemmEff(g, dt, m, n, min(m, n)))
	tMemory := float64(bytes) / (g.MemBandwidthBps * memEff(g, bytes))
	return g.KernelLaunchS + math.Max(tCompute, tMemory)
}

// SyrkTime returns the execution time of a symmetric rank-k tile update of
// an n x n output (n²k flops — the triangle halves the multiply count of
// the equivalent gemm, and cuBLAS syrk tracks gemm efficiency closely).
func SyrkTime(g *machine.GPUSpec, dt Dtype, n, k int) float64 {
	if n <= 0 || k <= 0 {
		return g.KernelLaunchS
	}
	flops := float64(n) * float64(n) * float64(k)
	bytes := (int64(n)*int64(k) + int64(n)*int64(n)) * dt.Size()
	tCompute := flops / (peak(g, dt) * gemmEff(g, dt, n, n, k))
	tMemory := float64(bytes) / (g.MemBandwidthBps * memEff(g, bytes))
	return g.KernelLaunchS + math.Max(tCompute, tMemory)
}

// DotTime returns the execution time of a length-n dot product (reads two
// vectors, reduction output negligible).
func DotTime(g *machine.GPUSpec, dt Dtype, n int) float64 {
	if n <= 0 {
		return g.KernelLaunchS
	}
	bytes := 2 * int64(n) * dt.Size()
	return g.KernelLaunchS + float64(bytes)/(g.MemBandwidthBps*memEff(g, bytes))
}

// ScalTime returns the execution time of x *= alpha for a length-n vector
// (read + write of one vector).
func ScalTime(g *machine.GPUSpec, dt Dtype, n int) float64 {
	if n <= 0 {
		return g.KernelLaunchS
	}
	bytes := 2 * int64(n) * dt.Size()
	return g.KernelLaunchS + float64(bytes)/(g.MemBandwidthBps*memEff(g, bytes))
}

// Routine identifies a modeled BLAS kernel for the generic dispatcher.
type Routine string

// The routines with ground-truth timing models.
const (
	RoutineGemm  Routine = "gemm"
	RoutineAxpy  Routine = "axpy"
	RoutineGemv  Routine = "gemv"
	RoutineDot   Routine = "dot"
	RoutineScal  Routine = "scal"
	RoutinePotrf Routine = "potrf"
	RoutineGetrf Routine = "getrf"
	RoutineTrsm  Routine = "trsm"
	RoutineSyrk  Routine = "syrk"
)

// Time dispatches to the routine-specific model. dims carries (M, N, K) for
// gemm, (M, N) for gemv and trsm (trsm dispatches as a left-side solve;
// right-side callers use TrsmTime directly), (N, K) for syrk, and (N) for
// potrf, getrf and the level-1 routines.
func Time(g *machine.GPUSpec, r Routine, dt Dtype, dims ...int) (float64, error) {
	switch r {
	case RoutineGemm:
		if len(dims) != 3 {
			return 0, fmt.Errorf("kernelmodel: gemm needs 3 dims, got %d", len(dims))
		}
		return GemmTime(g, dt, dims[0], dims[1], dims[2]), nil
	case RoutineGemv:
		if len(dims) != 2 {
			return 0, fmt.Errorf("kernelmodel: gemv needs 2 dims, got %d", len(dims))
		}
		return GemvTime(g, dt, dims[0], dims[1]), nil
	case RoutineTrsm:
		if len(dims) != 2 {
			return 0, fmt.Errorf("kernelmodel: trsm needs 2 dims, got %d", len(dims))
		}
		return TrsmTime(g, dt, 'L', dims[0], dims[1]), nil
	case RoutineSyrk:
		if len(dims) != 2 {
			return 0, fmt.Errorf("kernelmodel: syrk needs 2 dims, got %d", len(dims))
		}
		return SyrkTime(g, dt, dims[0], dims[1]), nil
	case RoutinePotrf:
		if len(dims) != 1 {
			return 0, fmt.Errorf("kernelmodel: potrf needs 1 dim, got %d", len(dims))
		}
		return PotrfTime(g, dt, dims[0]), nil
	case RoutineGetrf:
		if len(dims) != 1 {
			return 0, fmt.Errorf("kernelmodel: getrf needs 1 dim, got %d", len(dims))
		}
		return GetrfTime(g, dt, dims[0]), nil
	case RoutineAxpy, RoutineDot, RoutineScal:
		if len(dims) != 1 {
			return 0, fmt.Errorf("kernelmodel: %s needs 1 dim, got %d", r, len(dims))
		}
		switch r {
		case RoutineAxpy:
			return AxpyTime(g, dt, dims[0]), nil
		case RoutineDot:
			return DotTime(g, dt, dims[0]), nil
		default:
			return ScalTime(g, dt, dims[0]), nil
		}
	}
	return 0, fmt.Errorf("kernelmodel: unknown routine %q", r)
}

// GemmGflops is a convenience that converts a gemm time to GFLOP/s.
func GemmGflops(m, n, k int, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return 2 * float64(m) * float64(n) * float64(k) / seconds / 1e9
}
