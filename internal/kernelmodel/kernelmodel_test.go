package kernelmodel

import (
	"math"
	"testing"
	"testing/quick"

	"cocopelia/internal/machine"
)

func gpuI() *machine.GPUSpec  { return &machine.TestbedI().GPU }
func gpuII() *machine.GPUSpec { return &machine.TestbedII().GPU }

func TestDtype(t *testing.T) {
	if F64.Size() != 8 || F32.Size() != 4 {
		t.Error("dtype sizes wrong")
	}
	if F64.String() != "f64" || F32.String() != "f32" {
		t.Error("dtype names wrong")
	}
}

func TestGemmTimeMonotoneInSize(t *testing.T) {
	g := gpuII()
	prev := 0.0
	for _, T := range []int{256, 512, 1024, 2048, 4096, 8192} {
		tt := GemmTime(g, F64, T, T, T)
		if tt <= prev {
			t.Errorf("gemm time not increasing at T=%d: %g <= %g", T, tt, prev)
		}
		prev = tt
	}
}

func TestGemmEfficiencyImprovesWithSize(t *testing.T) {
	// GFLOP/s should rise with tile size (GPU underutilization for small
	// tiles) and approach but not exceed peak*maxEff.
	for _, g := range []*machine.GPUSpec{gpuI(), gpuII()} {
		small := GemmGflops(256, 256, 256, GemmTime(g, F64, 256, 256, 256))
		large := GemmGflops(8192, 8192, 8192, GemmTime(g, F64, 8192, 8192, 8192))
		if small >= large {
			t.Errorf("%s: small tile %g GF/s >= large tile %g GF/s", g.Name, small, large)
		}
		ceiling := g.PeakFlops64 / 1e9 * g.MaxEff64 * (1 + g.SpikeAmp)
		if large > ceiling {
			t.Errorf("%s: %g GF/s exceeds efficiency ceiling %g", g.Name, large, ceiling)
		}
		if large < 0.75*g.PeakFlops64/1e9 {
			t.Errorf("%s: large gemm only %g GF/s, unrealistically low", g.Name, large)
		}
	}
}

func TestGemmDoublePrecisionSlower(t *testing.T) {
	g := gpuII()
	d := GemmTime(g, F64, 4096, 4096, 4096)
	s := GemmTime(g, F32, 4096, 4096, 4096)
	if s >= d {
		t.Errorf("sgemm (%g) should be faster than dgemm (%g)", s, d)
	}
}

func TestGemmShapeSensitivity(t *testing.T) {
	// Same FLOP count, thin K: must be slower than square (higher
	// byte/FLOP, reduction-heavy shape). 2048^3 == (8192, 8192, 128).
	g := gpuI()
	square := GemmTime(g, F64, 2048, 2048, 2048)
	thin := GemmTime(g, F64, 8192, 8192, 128)
	if thin <= square {
		t.Errorf("thin-K gemm (%g) should be slower than square (%g)", thin, square)
	}
}

func TestGemmLaunchOverheadDominatesTiny(t *testing.T) {
	g := gpuII()
	tt := GemmTime(g, F64, 8, 8, 8)
	if tt < g.KernelLaunchS {
		t.Errorf("tiny kernel %g below launch overhead %g", tt, g.KernelLaunchS)
	}
	if tt > 10*g.KernelLaunchS {
		t.Errorf("tiny kernel %g should be launch-dominated", tt)
	}
}

func TestGemmDegenerateDims(t *testing.T) {
	g := gpuI()
	if GemmTime(g, F64, 0, 128, 128) != g.KernelLaunchS {
		t.Error("zero-dim gemm should cost exactly the launch")
	}
	if GemmTime(g, F64, -1, 128, 128) != g.KernelLaunchS {
		t.Error("negative-dim gemm should cost exactly the launch")
	}
}

func TestSpikesLargerOnTestbedII(t *testing.T) {
	// Measure the relative spread of efficiency across neighbouring sizes;
	// the V100-like device must show larger per-size perturbations.
	spread := func(g *machine.GPUSpec) float64 {
		lo, hi := math.Inf(1), math.Inf(-1)
		for T := 2048; T <= 4096; T += 128 {
			gf := GemmGflops(T, T, T, GemmTime(g, F64, T, T, T))
			eff := gf * 1e9 / g.PeakFlops64
			lo = math.Min(lo, eff)
			hi = math.Max(hi, eff)
		}
		return (hi - lo) / lo
	}
	if spread(gpuII()) <= spread(gpuI()) {
		t.Errorf("Testbed II spike spread (%g) should exceed Testbed I (%g)",
			spread(gpuII()), spread(gpuI()))
	}
}

func TestSpikeDeterminism(t *testing.T) {
	g := gpuII()
	a := GemmTime(g, F64, 3000, 3000, 3000)
	b := GemmTime(g, F64, 3000, 3000, 3000)
	if a != b {
		t.Error("kernel model must be deterministic per size")
	}
}

func TestAxpyBandwidthBound(t *testing.T) {
	g := gpuII()
	n := 64 << 20
	tt := AxpyTime(g, F64, n)
	ideal := float64(3*8*n) / g.MemBandwidthBps
	if tt < ideal {
		t.Errorf("axpy %g faster than memory-bandwidth ideal %g", tt, ideal)
	}
	if tt > 2*ideal {
		t.Errorf("large axpy %g should be near bandwidth ideal %g", tt, ideal)
	}
	if AxpyTime(g, F64, 0) != g.KernelLaunchS {
		t.Error("empty axpy should cost the launch")
	}
}

func TestLevel1And2Monotone(t *testing.T) {
	g := gpuI()
	for _, fn := range []func(int) float64{
		func(n int) float64 { return AxpyTime(g, F64, n) },
		func(n int) float64 { return DotTime(g, F64, n) },
		func(n int) float64 { return ScalTime(g, F64, n) },
		func(n int) float64 { return GemvTime(g, F64, n, n) },
	} {
		prev := 0.0
		for _, n := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
			v := fn(n)
			if v <= prev {
				t.Errorf("time not increasing at n=%d", n)
			}
			prev = v
		}
	}
	if GemvTime(g, F64, 0, 5) != g.KernelLaunchS || DotTime(g, F64, -3) != g.KernelLaunchS ||
		ScalTime(g, F64, 0) != g.KernelLaunchS {
		t.Error("degenerate level-1/2 kernels should cost the launch")
	}
}

func TestTimeDispatch(t *testing.T) {
	g := gpuI()
	cases := []struct {
		r    Routine
		dims []int
		ok   bool
	}{
		{RoutineGemm, []int{128, 128, 128}, true},
		{RoutineGemm, []int{128}, false},
		{RoutineGemv, []int{128, 128}, true},
		{RoutineGemv, []int{128, 128, 128}, false},
		{RoutineAxpy, []int{1024}, true},
		{RoutineAxpy, []int{}, false},
		{RoutineDot, []int{1024}, true},
		{RoutineScal, []int{1024}, true},
		{Routine("lu"), []int{4}, false},
	}
	for _, c := range cases {
		v, err := Time(g, c.r, F64, c.dims...)
		if c.ok && (err != nil || v <= 0) {
			t.Errorf("%s%v: unexpected err=%v v=%g", c.r, c.dims, err, v)
		}
		if !c.ok && err == nil {
			t.Errorf("%s%v: expected error", c.r, c.dims)
		}
	}
}

func TestGemmGflops(t *testing.T) {
	if GemmGflops(1000, 1000, 1000, 1) != 2 {
		t.Error("GFLOP/s conversion wrong")
	}
	if GemmGflops(10, 10, 10, 0) != 0 {
		t.Error("zero time should yield 0 GF/s")
	}
}

func TestHash01Range(t *testing.T) {
	f := func(a, b, c int64) bool {
		v := hash01(a, b, c)
		return v >= 0 && v < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: kernel times are always strictly positive and finite.
func TestTimesFiniteProperty(t *testing.T) {
	g := gpuII()
	f := func(m, n, k uint16) bool {
		tt := GemmTime(g, F64, int(m), int(n), int(k))
		return tt > 0 && !math.IsInf(tt, 0) && !math.IsNaN(tt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
