package model

import (
	"errors"
	"math"
	"testing"

	"cocopelia/internal/machine"
)

// fakeSub is a controllable SubModels implementation for unit tests.
type fakeSub struct {
	h2dLat, h2dInvBw float64 // seconds, seconds/byte
	d2hLat, d2hInvBw float64
	slH, slD         float64
	grid             []int
	tile             func(T int) float64
	full             float64
}

func (f *fakeSub) TransferTime(dir machine.LinkDir, bytes int64) float64 {
	if dir == machine.H2D {
		return f.h2dLat + f.h2dInvBw*float64(bytes)
	}
	return f.d2hLat + f.d2hInvBw*float64(bytes)
}
func (f *fakeSub) BidSlowdown(dir machine.LinkDir) float64 {
	if dir == machine.H2D {
		return f.slH
	}
	return f.slD
}
func (f *fakeSub) KernelTileTime(T int) (float64, error) {
	for _, g := range f.grid {
		if g == T {
			return f.tile(T), nil
		}
	}
	return 0, errors.New("off grid")
}
func (f *fakeSub) KernelFullTime() float64 { return f.full }
func (f *fakeSub) TileGrid() []int         { return f.grid }

// newSub returns a plausible fake: 10 GB/s links, small latencies,
// slowdowns 1.2/1.4, a gemm-like tile-time curve with efficiency loss at
// small T, and a grid of 256..4096.
func newSub() *fakeSub {
	var grid []int
	for T := 256; T <= 4096; T += 256 {
		grid = append(grid, T)
	}
	return &fakeSub{
		h2dLat: 1e-5, h2dInvBw: 1e-10,
		d2hLat: 1e-5, d2hInvBw: 1e-10,
		slH: 1.2, slD: 1.4,
		grid: grid,
		tile: func(T int) float64 {
			flops := 2 * float64(T) * float64(T) * float64(T)
			eff := 0.9 / (1 + 300/float64(T))
			return 5e-6 + flops/(7e12*eff)
		},
		full: 0, // set per test
	}
}

func gemmFull(m, n, k int64) Params {
	return GemmParams("dgemm", 8, m, n, k, OnHost, OnHost, OnHost)
}

func TestSubkernelsPerLevel(t *testing.T) {
	p1 := AxpyParams("daxpy", 8, 1<<20, OnHost, OnHost)
	if got := p1.Subkernels(1 << 18); got != 4 {
		t.Errorf("level-1 k = %d, want 4", got)
	}
	p2 := GemvParams("dgemv", 8, 4096, 2048, OnHost, OnHost, OnHost)
	if got := p2.Subkernels(1024); got != 4*2 {
		t.Errorf("level-2 k = %d, want 8", got)
	}
	p3 := gemmFull(4096, 2048, 1024)
	if got := p3.Subkernels(1024); got != 4*2*1 {
		t.Errorf("level-3 k = %d, want 8", got)
	}
	// Ceiling behaviour for non-divisible dims.
	pc := gemmFull(1000, 1000, 1000)
	if got := pc.Subkernels(512); got != 8 {
		t.Errorf("ceil k = %d, want 8", got)
	}
}

func TestOperandHelpers(t *testing.T) {
	mat := Operand{Rows: 1024, Cols: 512}
	if mat.TileBytes(256, 8) != 256*256*8 {
		t.Error("matrix tile bytes wrong")
	}
	if mat.Tiles(256) != 4*2 {
		t.Error("matrix tiles wrong")
	}
	if mat.Bytes(8) != 1024*512*8 {
		t.Error("matrix bytes wrong")
	}
	vec := Operand{Rows: 1000, Cols: 1}
	if vec.TileBytes(256, 4) != 256*4 {
		t.Error("vector tile bytes wrong")
	}
	if vec.Tiles(256) != 4 {
		t.Error("vector tiles wrong")
	}
}

func TestValidate(t *testing.T) {
	good := gemmFull(512, 512, 512)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Level: 0, DtypeSize: 8, D1: 1, Operands: []Operand{{Rows: 1, Cols: 1}}},
		{Level: 3, DtypeSize: 3, D1: 1, D2: 1, D3: 1, Operands: []Operand{{Rows: 1, Cols: 1}}},
		{Level: 3, DtypeSize: 8, D1: 0, D2: 1, D3: 1, Operands: []Operand{{Rows: 1, Cols: 1}}},
		{Level: 1, DtypeSize: 8, D1: 5},
		{Level: 1, DtypeSize: 8, D1: 5, Operands: []Operand{{Rows: 0, Cols: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestOverlapTimeEq3(t *testing.T) {
	// Manual case matching the link-model test: tIn=1, tOut=0.25,
	// slH=2, slD=4 -> tInBid=2, tOutBid=1 -> 1 + (2-1)/2 = 1.5.
	got := overlapTime(1, 0.25, 2, 4)
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("overlapTime = %g, want 1.5", got)
	}
	// Mirror case: tOut longer.
	got = overlapTime(0.25, 1, 2, 4)
	want := 0.5 + (4-0.5)/4
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("mirror overlapTime = %g, want %g", got, want)
	}
	// No opposite traffic: plain times.
	if overlapTime(1, 0, 2, 4) != 1 || overlapTime(0, 1, 2, 4) != 1 {
		t.Error("one-sided overlap should be the plain time")
	}
}

func TestModelOrderingDataLocVsBaseline(t *testing.T) {
	// With B and C on the device, DataLoc must predict strictly less than
	// Baseline (which transfers everything both ways).
	sm := newSub()
	p := GemmParams("dgemm", 8, 8192, 8192, 8192, OnHost, OnDevice, OnDevice)
	base, err := Predict(Baseline, &p, sm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := Predict(DataLoc, &p, sm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if loc >= base {
		t.Errorf("DataLoc (%g) should be below Baseline (%g)", loc, base)
	}
}

func TestBTSAtLeastDataLoc(t *testing.T) {
	// Bidirectional slowdown can only lengthen the dominant transfer term.
	sm := newSub()
	// Make transfers dominate: very slow link.
	sm.h2dInvBw, sm.d2hInvBw = 1e-8, 1e-8
	p := gemmFull(8192, 8192, 8192)
	for _, T := range []int{512, 1024, 2048} {
		loc, _ := Predict(DataLoc, &p, sm, T)
		bts, _ := Predict(BTS, &p, sm, T)
		if bts < loc-1e-15 {
			t.Errorf("T=%d: BTS (%g) below DataLoc (%g)", T, bts, loc)
		}
	}
	// And with both directions busy it must be strictly larger.
	loc, _ := Predict(DataLoc, &p, sm, 1024)
	bts, _ := Predict(BTS, &p, sm, 1024)
	if bts <= loc {
		t.Errorf("BTS (%g) should exceed DataLoc (%g) for transfer-bound full offload", bts, loc)
	}
}

func TestDRBelowBTSForReuseHeavyProblem(t *testing.T) {
	// Full-offload square gemm with a slow link: reuse slashes transfer
	// volume, so DR must predict much less than BTS.
	sm := newSub()
	sm.h2dInvBw, sm.d2hInvBw = 1e-9, 1e-9 // 1 GB/s
	p := gemmFull(8192, 8192, 8192)
	bts, err := Predict(BTS, &p, sm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	dr, err := Predict(DR, &p, sm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if dr >= bts {
		t.Errorf("DR (%g) should be below BTS (%g)", dr, bts)
	}
}

func TestDRKInClamping(t *testing.T) {
	// 512-cube at T=256: tiles per operand 4, k=8, kIn=3*(4-1)=9 exceeds
	// the pipelined sub-kernel budget k-1=7; the excess serializes.
	sm := newSub()
	p := gemmFull(512, 512, 512)
	got, err := Predict(DR, &p, sm, 256)
	if err != nil {
		t.Fatal(err)
	}
	tGPU, _ := sm.KernelTileTime(256)
	tileH2D := sm.TransferTime(machine.H2D, 256*256*8)
	// kIn = 9, kOut = 4: the h2d slowdown applies for the 4/9 of the
	// fetch phase during which outputs drain.
	fetchBid := tileH2D * (1 + (sm.slH-1)*4.0/9.0)
	tInFirst := 3 * tileH2D
	tOutTail := sm.TransferTime(machine.D2H, 256*256*8)
	want := tInFirst + math.Max(fetchBid, tGPU)*7 + tGPU + fetchBid*2 + tOutTail
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("DR with kIn>k-1: got %g, want %g", got, want)
	}
}

func TestDRComputeBoundApproachesKernelTime(t *testing.T) {
	// With a fast link, DR's prediction is dominated by k * tGPU.
	sm := newSub()
	sm.h2dInvBw, sm.d2hInvBw = 1e-12, 1e-12
	p := gemmFull(8192, 8192, 8192)
	T := 2048
	dr, err := Predict(DR, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	tGPU, _ := sm.KernelTileTime(T)
	k := float64(p.Subkernels(T))
	if dr < k*tGPU {
		t.Errorf("DR (%g) below pure compute bound (%g)", dr, k*tGPU)
	}
	if dr > 1.05*k*tGPU {
		t.Errorf("DR (%g) should approach compute bound (%g) on a fast link", dr, k*tGPU)
	}
}

func TestCSOUnderpredictsWithNonlinearKernel(t *testing.T) {
	// CSO divides the full-problem kernel time (efficient, large kernel)
	// across chunks, ignoring that small tiles are less efficient. Its
	// prediction must therefore fall below DataLoc's for compute-bound
	// problems.
	sm := newSub()
	p := gemmFull(8192, 8192, 8192)
	// Full-problem time from the same curve the tile lookup uses.
	sm.full = sm.tile(8192)
	T := 512
	cso, err := Predict(CSO, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	loc, err := Predict(DataLoc, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	if cso >= loc {
		t.Errorf("CSO (%g) should underpredict vs DataLoc (%g) at small tiles", cso, loc)
	}
}

func TestPredictErrors(t *testing.T) {
	sm := newSub()
	p := gemmFull(4096, 4096, 4096)
	if _, err := Predict(Kind("magic"), &p, sm, 1024); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := Predict(BTS, &p, sm, 0); err == nil {
		t.Error("T=0 should error")
	}
	if _, err := Predict(BTS, &p, sm, 1000); err == nil {
		t.Error("off-grid tile should error")
	}
	bad := Params{}
	if _, err := Predict(BTS, &bad, sm, 1024); err == nil {
		t.Error("invalid params should error")
	}
}

func TestCandidates(t *testing.T) {
	sm := newSub()
	p := gemmFull(4096, 4096, 4096)
	cands := Candidates(&p, sm)
	// min(D)/1.5 = 2730.67, so largest candidate is 2560.
	if len(cands) == 0 || cands[len(cands)-1] != 2560 {
		t.Errorf("candidates = %v", cands)
	}
	for _, c := range cands {
		if float64(c) > 4096/1.5 {
			t.Errorf("candidate %d violates T <= minD/1.5", c)
		}
	}
	// Tiny problem: falls back to smallest grid entry if it fits.
	tiny := gemmFull(300, 300, 300)
	cands = Candidates(&tiny, sm)
	if len(cands) != 1 || cands[0] != 256 {
		t.Errorf("tiny candidates = %v", cands)
	}
	// Smaller than the whole grid: no candidates.
	micro := gemmFull(100, 100, 100)
	if got := Candidates(&micro, sm); got != nil {
		t.Errorf("micro candidates = %v, want none", got)
	}
	// Level-1 problems are bounded by D1 directly.
	ax := AxpyParams("daxpy", 8, 1024, OnHost, OnHost)
	cands = Candidates(&ax, sm)
	if len(cands) != 4 { // 256, 512, 768, 1024
		t.Errorf("axpy candidates = %v", cands)
	}
}

func TestSelectTIsArgmin(t *testing.T) {
	sm := newSub()
	p := gemmFull(8192, 8192, 8192)
	sel, err := SelectT(DR, &p, sm)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over candidates.
	bestT, bestV := 0, math.Inf(1)
	for _, T := range Candidates(&p, sm) {
		v, err := Predict(DR, &p, sm, T)
		if err != nil {
			t.Fatal(err)
		}
		if v < bestV {
			bestT, bestV = T, v
		}
	}
	if sel.T != bestT || math.Abs(sel.Predicted-bestV) > 1e-15 {
		t.Errorf("SelectT = %+v, brute force = (%d, %g)", sel, bestT, bestV)
	}
	if sel.T <= 0 {
		t.Error("selected T must be positive")
	}
}

func TestSelectTNoCandidates(t *testing.T) {
	sm := newSub()
	p := gemmFull(10, 10, 10)
	if _, err := SelectT(DR, &p, sm); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("want ErrNoCandidates, got %v", err)
	}
}

func TestSelectTAvoidsTinyTiles(t *testing.T) {
	// Small tiles pay per-tile latency and kernel-efficiency costs in
	// every model, so the selected T must not be the smallest candidate
	// and the smallest candidate must predict strictly worse.
	sm := newSub()
	sm.h2dInvBw, sm.d2hInvBw = 5e-10, 5e-10 // 2 GB/s
	p := gemmFull(16384, 16384, 16384)
	cands := Candidates(&p, sm)
	for _, kind := range []Kind{Baseline, DataLoc, BTS, DR} {
		sel, err := SelectT(kind, &p, sm)
		if err != nil {
			t.Fatal(err)
		}
		if sel.T == cands[0] {
			t.Errorf("%s: optimum T=%d is the smallest candidate", kind, sel.T)
		}
		worst, err := Predict(kind, &p, sm, cands[0])
		if err != nil {
			t.Fatal(err)
		}
		if worst <= sel.Predicted {
			t.Errorf("%s: smallest tile (%g) not worse than optimum (%g)", kind, worst, sel.Predicted)
		}
	}
}

func TestGemmParamsFlags(t *testing.T) {
	p := GemmParams("dgemm", 8, 100, 200, 300, OnHost, OnDevice, OnHost)
	if len(p.Operands) != 3 {
		t.Fatal("gemm should have 3 operands")
	}
	a, b, c := p.Operands[0], p.Operands[1], p.Operands[2]
	if !a.Get || a.Set {
		t.Error("A on host: get only")
	}
	if b.Get || b.Set {
		t.Error("B on device: no transfers")
	}
	if !c.Get || !c.Set {
		t.Error("C on host: get and set")
	}
	if a.Rows != 100 || a.Cols != 300 || b.Rows != 300 || b.Cols != 200 || c.Rows != 100 || c.Cols != 200 {
		t.Error("operand shapes wrong")
	}
}

func TestAxpyParamsFlags(t *testing.T) {
	p := AxpyParams("daxpy", 8, 1000, OnDevice, OnHost)
	x, y := p.Operands[0], p.Operands[1]
	if x.Get || x.Set {
		t.Error("x on device: no transfers")
	}
	if !y.Get || !y.Set {
		t.Error("y on host: get and set")
	}
	if p.Level != 1 {
		t.Error("axpy is level 1")
	}
}

func TestLocCombos(t *testing.T) {
	combos := LocCombos(3)
	if len(combos) != 7 {
		t.Fatalf("3 operands should give 7 combos, got %d", len(combos))
	}
	for _, l := range combos[0] {
		if l != OnHost {
			t.Error("first combo should be all-on-host")
		}
	}
	seen := map[string]bool{}
	for _, c := range combos {
		key := ComboName([]string{"A", "B", "C"}, c)
		if seen[key] {
			t.Errorf("duplicate combo %s", key)
		}
		seen[key] = true
	}
	if LocCombos(0) != nil {
		t.Error("zero operands should give nil")
	}
}

func TestComboName(t *testing.T) {
	got := ComboName([]string{"A", "B"}, []Loc{OnHost, OnDevice})
	if got != "A:host B:device" {
		t.Errorf("ComboName = %q", got)
	}
}
