// Package model implements the CoCoPeLia 3-way-concurrency prediction
// models of the paper's Section III, plus the CSO comparator model of van
// Werkhoven et al. that the paper evaluates against.
//
// A model prediction needs two ingredients:
//
//   - Params, the routine/problem description of Table I (dimensions,
//     datatype, operand shapes and the get/set data-location flags);
//   - SubModels, the empirically fitted machine sub-models produced by the
//     deployment phase (transfer latency/bandwidth fits, bidirectional
//     slowdown factors and the kernel-time lookup table).
//
// Five predictors are provided, in increasing order of fidelity:
//
//	CSO      — the comparator: linear kernel scaling, unidirectional
//	           transfer times, no data-location or reuse awareness.
//	Baseline — Eq. 1: per-tile pipeline, all operands transferred both ways.
//	DataLoc  — Eq. 2: transfer only what the get/set flags require.
//	BTS      — Eq. 3+4: adds the asymmetric bidirectional-transfer slowdown.
//	DR       — Eq. 5: adds full data reuse (each input tile fetched once);
//	           the right model for reuse-aware level-3 BLAS libraries.
package model

import (
	"errors"
	"fmt"
	"math"

	"cocopelia/internal/machine"
)

// Level is the BLAS level of a routine (1, 2 or 3); it determines how many
// problem dimensions are tiled.
type Level int

// Operand describes one routine operand (a matrix or vector) per Table I.
type Operand struct {
	// Name is the BLAS letter of the operand ("A", "B", "C", "X", "Y").
	Name string
	// Rows and Cols are the operand dimensions S1_i, S2_i (Cols = 1 for
	// vectors).
	Rows, Cols int64
	// Get marks operands that must be fetched to the GPU (resident on the
	// host and read by the routine).
	Get bool
	// Set marks operands that must be returned to the host (written by the
	// routine with the result wanted back on the host).
	Set bool
}

// TileBytes returns the bytes of one T (vector) or TxT (matrix) tile of
// the operand for the given element size.
func (o Operand) TileBytes(T int, dtypeSize int64) int64 {
	if o.Cols == 1 {
		return int64(T) * dtypeSize
	}
	return int64(T) * int64(T) * dtypeSize
}

// Tiles returns how many tiles the operand splits into for tiling size T.
func (o Operand) Tiles(T int) int64 {
	return ceilDiv(o.Rows, int64(T)) * ceilDiv(o.Cols, int64(T))
}

// TilesF returns the operand's tile count in fractional, volume-
// proportional form: edge tiles count by their actual area rather than as
// full tiles. The analytic equations use this so that tiling sizes that do
// not divide the problem are not charged for work and traffic that the
// ragged edge tiles never perform. Each dimension contributes at least one
// tile.
func (o Operand) TilesF(T int) float64 {
	r := float64(o.Rows) / float64(T)
	c := float64(o.Cols) / float64(T)
	if r < 1 {
		r = 1
	}
	if c < 1 {
		c = 1
	}
	return r * c
}

// Bytes returns the total operand size in bytes.
func (o Operand) Bytes(dtypeSize int64) int64 { return o.Rows * o.Cols * dtypeSize }

func ceilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("model: non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Params is the routine/problem description of the paper's Table I.
type Params struct {
	// Routine is the BLAS name, e.g. "dgemm".
	Routine string
	// Level is the BLAS level (1, 2 or 3).
	Level Level
	// DtypeSize is sizeof(dtype) in bytes.
	DtypeSize int64
	// D1, D2, D3 are the problem dimensions. D2 applies to level >= 2 and
	// D3 to level 3 only (set unused dimensions to 1).
	D1, D2, D3 int64
	// Operands are the routine's matrices/vectors with location flags.
	Operands []Operand
}

// Validate checks internal consistency.
func (p *Params) Validate() error {
	if p.Level < 1 || p.Level > 3 {
		return fmt.Errorf("model: bad BLAS level %d", p.Level)
	}
	if p.DtypeSize != 4 && p.DtypeSize != 8 {
		return fmt.Errorf("model: bad dtype size %d", p.DtypeSize)
	}
	if p.D1 <= 0 || (p.Level >= 2 && p.D2 <= 0) || (p.Level == 3 && p.D3 <= 0) {
		return fmt.Errorf("model: non-positive dimensions %dx%dx%d for level %d",
			p.D1, p.D2, p.D3, p.Level)
	}
	if len(p.Operands) == 0 {
		return errors.New("model: no operands")
	}
	for _, o := range p.Operands {
		if o.Rows <= 0 || o.Cols <= 0 {
			return fmt.Errorf("model: operand %s has non-positive shape %dx%d", o.Name, o.Rows, o.Cols)
		}
	}
	return nil
}

// Subkernels returns k, the number of sub-kernels the problem splits into
// for tiling size T (Section III-B).
func (p *Params) Subkernels(T int) int64 {
	k := ceilDiv(p.D1, int64(T))
	if p.Level >= 2 {
		k *= ceilDiv(p.D2, int64(T))
	}
	if p.Level == 3 {
		k *= ceilDiv(p.D3, int64(T))
	}
	return k
}

// SubkernelsF returns k in fractional, volume-proportional form (see
// Operand.TilesF): the number of full-T sub-kernels the problem's work is
// worth. Each tiled dimension contributes at least one.
func (p *Params) SubkernelsF(T int) float64 {
	dim := func(d int64) float64 {
		v := float64(d) / float64(T)
		if v < 1 {
			return 1
		}
		return v
	}
	k := dim(p.D1)
	if p.Level >= 2 {
		k *= dim(p.D2)
	}
	if p.Level == 3 {
		k *= dim(p.D3)
	}
	return k
}

// MinDim returns the smallest tiled problem dimension, which bounds the
// usable tiling sizes.
func (p *Params) MinDim() int64 {
	m := p.D1
	if p.Level >= 2 && p.D2 < m {
		m = p.D2
	}
	if p.Level == 3 && p.D3 < m {
		m = p.D3
	}
	return m
}

// SubModels supplies the empirically fitted machine sub-models that
// instantiate the analytic equations on a concrete testbed and routine.
// Implementations come from the deployment phase (internal/microbench via
// internal/predictor).
type SubModels interface {
	// TransferTime predicts a unidirectional transfer of the given size:
	// the fitted t_l + t_b * bytes.
	TransferTime(dir machine.LinkDir, bytes int64) float64
	// BidSlowdown returns the fitted slowdown factor (>= 1) of dir while
	// the opposite direction is simultaneously active.
	BidSlowdown(dir machine.LinkDir) float64
	// KernelTileTime predicts the routine sub-kernel execution time for a
	// square tile of size T (all tiled dimensions equal to T). It reports
	// an error for tile sizes outside the benchmarked lookup grid.
	KernelTileTime(T int) (float64, error)
	// KernelFullTime predicts the un-tiled full-problem kernel time. Only
	// the CSO comparator uses it (CoCoPeLia deliberately avoids needing
	// it, Section IV-A).
	KernelFullTime() float64
	// TileGrid returns the benchmarked tile sizes, ascending.
	TileGrid() []int
}

// Kind identifies one of the prediction models.
type Kind string

// The predictor kinds, in increasing fidelity order.
const (
	CSO      Kind = "CSO"
	Baseline Kind = "Baseline"
	DataLoc  Kind = "DataLoc"
	BTS      Kind = "BTS"
	DR       Kind = "DR"
)

// Kinds lists all predictors in paper order.
func Kinds() []Kind { return []Kind{CSO, Baseline, DataLoc, BTS, DR} }

// tileTransferTimes returns the per-subkernel transfer times used by the
// equations: the location-aware input time t_in (sum over get operands of
// one tile each), output time t_out (sum over set operands), and the
// all-operand variants used by the Baseline model.
func tileTransferTimes(p *Params, sm SubModels, T int) (tIn, tOut, tInAll, tOutAll float64) {
	for _, o := range p.Operands {
		h2d := sm.TransferTime(machine.H2D, o.TileBytes(T, p.DtypeSize))
		d2h := sm.TransferTime(machine.D2H, o.TileBytes(T, p.DtypeSize))
		tInAll += h2d
		tOutAll += d2h
		if o.Get {
			tIn += h2d
		}
		if o.Set {
			tOut += d2h
		}
	}
	return tIn, tOut, tInAll, tOutAll
}

// Predict returns the model's total offload-time prediction for tiling
// size T.
func Predict(kind Kind, p *Params, sm SubModels, T int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if T <= 0 {
		return 0, fmt.Errorf("model: non-positive tiling size %d", T)
	}
	switch kind {
	case CSO:
		return predictCSO(p, sm, T)
	case Baseline:
		return predictBaseline(p, sm, T)
	case DataLoc:
		return predictDataLoc(p, sm, T)
	case BTS:
		return predictBTS(p, sm, T)
	case DR:
		return predictDR(p, sm, T)
	}
	return 0, fmt.Errorf("model: unknown kind %q", kind)
}

// predictCSO is the comparator model of van Werkhoven et al. [11] for the
// 3-way overlap scenario with two copy engines: the full-problem input,
// kernel and output phases pipeline over k chunks, with per-chunk times
// obtained by dividing the full-phase times linearly. It neither knows the
// data-location flags nor bidirectional slowdown nor non-linear kernel
// behaviour — the deficiencies the paper demonstrates.
func predictCSO(p *Params, sm SubModels, T int) (float64, error) {
	k := p.SubkernelsF(T)
	var inBytes, outBytes int64
	for _, o := range p.Operands {
		if o.Get {
			inBytes += o.Bytes(p.DtypeSize)
		}
		if o.Set {
			outBytes += o.Bytes(p.DtypeSize)
		}
	}
	tIn := sm.TransferTime(machine.H2D, inBytes)
	tOut := sm.TransferTime(machine.D2H, outBytes)
	if outBytes == 0 {
		tOut = 0
	}
	if inBytes == 0 {
		tIn = 0
	}
	tExec := sm.KernelFullTime()
	dominant := math.Max(tExec, math.Max(tIn, tOut))
	// Pipeline: k-1 chunks at the dominant pace plus one pass of each
	// phase to fill and drain.
	return dominant*(k-1)/k + (tIn+tExec+tOut)/k, nil
}

// predictBaseline is the paper's Eq. 1: per-tile pipelining under the
// pessimistic assumption that every operand is both input and output.
func predictBaseline(p *Params, sm SubModels, T int) (float64, error) {
	tGPU, err := sm.KernelTileTime(T)
	if err != nil {
		return 0, err
	}
	k := p.SubkernelsF(T)
	_, _, tInAll, tOutAll := tileTransferTimes(p, sm, T)
	dominant := math.Max(tGPU, math.Max(tInAll, tOutAll))
	return dominant*math.Max(k-1, 0) + tInAll + tGPU + tOutAll, nil
}

// predictDataLoc is the paper's Eq. 2: like Eq. 1 but transferring only
// the tiles the get/set flags require.
func predictDataLoc(p *Params, sm SubModels, T int) (float64, error) {
	tGPU, err := sm.KernelTileTime(T)
	if err != nil {
		return 0, err
	}
	k := p.SubkernelsF(T)
	tIn, tOut, _, _ := tileTransferTimes(p, sm, T)
	dominant := math.Max(tGPU, math.Max(tIn, tOut))
	return dominant*math.Max(k-1, 0) + tIn + tGPU + tOut, nil
}

// overlapTime implements the paper's Eq. 3: the combined duration of a
// per-subkernel h2d input burst and d2h output burst that partially
// overlap, with each side slowed by its bidirectional factor while the
// other is active, and the remainder of the longer transfer proceeding at
// full speed.
func overlapTime(tIn, tOut, slH2D, slD2H float64) float64 {
	if tIn == 0 {
		return tOut
	}
	if tOut == 0 {
		return tIn
	}
	tInBid := slH2D * tIn
	tOutBid := slD2H * tOut
	if tInBid >= tOutBid {
		return tOutBid + (tInBid-tOutBid)/slH2D
	}
	return tInBid + (tOutBid-tInBid)/slD2H
}

// predictBTS is the paper's Eq. 4 (the BTS-Model): Eq. 2 with the
// dominant transfer term replaced by the bidirectional overlap time of
// Eq. 3.
func predictBTS(p *Params, sm SubModels, T int) (float64, error) {
	tGPU, err := sm.KernelTileTime(T)
	if err != nil {
		return 0, err
	}
	k := p.SubkernelsF(T)
	tIn, tOut, _, _ := tileTransferTimes(p, sm, T)
	tOver := overlapTime(tIn, tOut, sm.BidSlowdown(machine.H2D), sm.BidSlowdown(machine.D2H))
	return math.Max(tGPU, tOver)*math.Max(k-1, 0) + tIn + tGPU + tOut, nil
}

// predictDR is the paper's Eq. 5 (the DR-Model), reconstructed from the
// prose and Fig. 2 (the printed formula is typographically corrupted, see
// DESIGN.md): with full data reuse each input tile crosses the link once,
// so only k_in = Σ get_i·(tiles_i − 1) sub-kernels carry a (single-tile)
// fetch; those are paced at max(t_h2d_bid, t_GPU) while the remaining
// k − k_in sub-kernels are purely compute-paced. The first sub-kernel's
// inputs (one tile per get operand) lead in un-overlapped, and the last
// output tile drains after the final kernel.
func predictDR(p *Params, sm SubModels, T int) (float64, error) {
	tGPU, err := sm.KernelTileTime(T)
	if err != nil {
		return 0, err
	}
	k := p.SubkernelsF(T)
	var kIn, kOut float64
	var tInFirst, tOutTail float64
	var fetchTile float64 // representative single-tile fetch time
	for _, o := range p.Operands {
		h2d := sm.TransferTime(machine.H2D, o.TileBytes(T, p.DtypeSize))
		if o.Get {
			kIn += math.Max(o.TilesF(T)-1, 0)
			tInFirst += h2d
			if h2d > fetchTile {
				fetchTile = h2d
			}
		}
		if o.Set {
			kOut += o.TilesF(T)
			tOutTail += sm.TransferTime(machine.D2H, o.TileBytes(T, p.DtypeSize))
		}
	}
	// While outputs drain, fetches suffer the bidirectional slowdown; with
	// full reuse the d2h volume is a fraction of the fetch volume, so the
	// slowdown applies to fetches only for that fraction of the phase (the
	// aggregate-level analogue of Eq. 3).
	fetchBid := fetchTile
	if kOut > 0 && kIn > 0 {
		share := math.Min(kOut/kIn, 1)
		fetchBid *= 1 + (sm.BidSlowdown(machine.H2D)-1)*share
	}
	transferPaced := math.Min(kIn, math.Max(k-1, 0))
	t := tInFirst +
		math.Max(fetchBid, tGPU)*transferPaced +
		tGPU*(math.Max(k-1, 0)-transferPaced) +
		tGPU + tOutTail
	if kIn > transferPaced {
		// More fetches than pipelined sub-kernels (very coarse tilings):
		// the excess serializes on the h2d engine.
		t += fetchBid * (kIn - transferPaced)
	}
	// Full reuse can never cost more than per-sub-kernel transfers, but
	// the excess-serialization term above is pessimistic in low-reuse
	// corners (e.g. a single tile along K); cap at the DataLoc model.
	if dl, err := predictDataLoc(p, sm, T); err == nil && dl < t {
		t = dl
	}
	return t, nil
}

// ErrNoCandidates is returned by SelectT when no benchmarked tile size fits
// the problem.
var ErrNoCandidates = errors.New("model: no feasible tile-size candidates")

// Candidates returns the tile sizes from the sub-model grid that are
// feasible for the problem. Following the paper's validation protocol,
// level-2/3 tilings must satisfy T <= min(D)/1.5; level-1 tilings must not
// exceed the problem length.
func Candidates(p *Params, sm SubModels) []int {
	var out []int
	maxT := p.MinDim()
	if p.Level >= 2 {
		maxT = int64(float64(p.MinDim()) / 1.5)
	}
	for _, T := range sm.TileGrid() {
		if int64(T) <= maxT {
			out = append(out, T)
		}
	}
	if out == nil && len(sm.TileGrid()) > 0 {
		// Degenerate small problems: fall back to the smallest grid entry
		// so the runtime can still operate.
		g := sm.TileGrid()
		if int64(g[0]) <= p.MinDim() {
			out = []int{g[0]}
		}
	}
	return out
}

// Selection is the result of a tile-size search.
type Selection struct {
	T         int
	Predicted float64
}

// SelectT returns the candidate tiling size minimizing the model's
// predicted offload time (the paper's CoCoPeLia_select).
func SelectT(kind Kind, p *Params, sm SubModels) (Selection, error) {
	cands := Candidates(p, sm)
	if len(cands) == 0 {
		return Selection{}, ErrNoCandidates
	}
	best := Selection{T: 0, Predicted: math.Inf(1)}
	for _, T := range cands {
		t, err := Predict(kind, p, sm, T)
		if err != nil {
			return Selection{}, fmt.Errorf("model: predict %s at T=%d: %w", kind, T, err)
		}
		if t < best.Predicted {
			best = Selection{T: T, Predicted: t}
		}
	}
	return best, nil
}
