package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGemm draws a random valid gemm problem and a feasible grid tile.
func randomGemm(rng *rand.Rand) (Params, int) {
	dims := func() int64 { return int64(1+rng.Intn(64)) * 256 }
	m, n, k := dims(), dims(), dims()
	locs := []Loc{OnHost, OnDevice}
	p := GemmParams("dgemm", 8, m, n, k,
		locs[rng.Intn(2)], locs[rng.Intn(2)], locs[rng.Intn(2)])
	// Guarantee at least one host operand so there is something to model.
	p.Operands[0].Get = true
	T := 256 * (1 + rng.Intn(16))
	if int64(T) > p.MinDim() {
		T = int(p.MinDim())
	}
	return p, T
}

// TestPredictionsFiniteAndPositive: every model yields a positive finite
// time for any valid problem/tile pair.
func TestPredictionsFiniteAndPositive(t *testing.T) {
	sm := newSub()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, T := randomGemm(rng)
		for _, kind := range append(Kinds(),
			WerkSerial, Werk2Way, Werk1Engine, AblDRInteger, AblBTSUnidir) {
			v, err := PredictExtended(kind, &p, sm, T)
			if err != nil {
				// Off-grid tiles are legal failures; anything else is not.
				if _, lookupErr := sm.KernelTileTime(T); lookupErr != nil {
					continue
				}
				t.Logf("seed %d kind %s T %d: %v", seed, kind, T, err)
				return false
			}
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Logf("seed %d kind %s T %d: value %g", seed, kind, T, v)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestDRNeverExceedsDataLoc: full data reuse can only reduce the predicted
// offload time relative to the per-sub-kernel transfer model.
func TestDRNeverExceedsDataLoc(t *testing.T) {
	sm := newSub()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, T := randomGemm(rng)
		if _, err := sm.KernelTileTime(T); err != nil {
			return true
		}
		dr, err1 := Predict(DR, &p, sm, T)
		dl, err2 := Predict(DataLoc, &p, sm, T)
		if err1 != nil || err2 != nil {
			return false
		}
		if dr > dl*(1+1e-9) {
			t.Logf("seed %d: DR %g > DataLoc %g (T=%d, %dx%dx%d)",
				seed, dr, dl, T, p.D1, p.D2, p.D3)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDataLocNeverExceedsBaseline: transferring only what the location
// flags require can only reduce the prediction.
func TestDataLocNeverExceedsBaseline(t *testing.T) {
	sm := newSub()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, T := randomGemm(rng)
		if _, err := sm.KernelTileTime(T); err != nil {
			return true
		}
		dl, err1 := Predict(DataLoc, &p, sm, T)
		base, err2 := Predict(Baseline, &p, sm, T)
		if err1 != nil || err2 != nil {
			return false
		}
		return dl <= base*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestBTSAtLeastDataLocProperty: bidirectional contention can only
// lengthen the dominant transfer term.
func TestBTSAtLeastDataLocProperty(t *testing.T) {
	sm := newSub()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, T := randomGemm(rng)
		if _, err := sm.KernelTileTime(T); err != nil {
			return true
		}
		bts, err1 := Predict(BTS, &p, sm, T)
		dl, err2 := Predict(DataLoc, &p, sm, T)
		if err1 != nil || err2 != nil {
			return false
		}
		return bts >= dl*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPredictionMonotoneInProblemSize: growing every dimension cannot
// shrink the prediction.
func TestPredictionMonotoneInProblemSize(t *testing.T) {
	sm := newSub()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := int64(1+rng.Intn(30)) * 256
		T := 256
		small := GemmParams("dgemm", 8, s, s, s, OnHost, OnHost, OnHost)
		big := GemmParams("dgemm", 8, s+256, s+256, s+256, OnHost, OnHost, OnHost)
		for _, kind := range Kinds() {
			if kind == CSO {
				continue // CSO depends on the caller-supplied full time
			}
			a, err1 := Predict(kind, &small, sm, T)
			b, err2 := Predict(kind, &big, sm, T)
			if err1 != nil || err2 != nil {
				return false
			}
			if b < a*(1-1e-9) {
				t.Logf("seed %d kind %s: grew problem, prediction fell %g -> %g", seed, kind, a, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSubkernelsFConsistency: the fractional count is bounded by the
// integer (ceiling) count and is at least the floor product.
func TestSubkernelsFConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, T := randomGemm(rng)
		frac := p.SubkernelsF(T)
		ceilK := float64(p.Subkernels(T))
		return frac <= ceilK+1e-9 && frac > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
