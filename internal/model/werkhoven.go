package model

import (
	"errors"
	"math"

	"cocopelia/internal/machine"
)

// This file implements the rest of the van Werkhoven et al. [11] model
// family that the paper's CSO comparator comes from, plus explicitly
// labelled ablation variants of the CoCoPeLia models. The extra Werkhoven
// models ground the related-work comparison (serial offload, 2-way
// overlap, 3-way with a single copy engine), and the ablations quantify
// the value of individual CoCoPeLia modeling decisions.

// The extended comparator and ablation model kinds.
const (
	// WerkSerial is the no-overlap offload model: input, kernel and
	// output phases execute back to back.
	WerkSerial Kind = "Werk-serial"
	// Werk2Way overlaps h2d transfers with kernel execution but drains
	// the output serially (the single-copy-engine, input-overlap-only
	// scenario of [11]).
	Werk2Way Kind = "Werk-2way"
	// Werk1Engine is 3-way pipelining with a single copy engine: input
	// and output transfers share one queue and never overlap each other.
	Werk1Engine Kind = "Werk-1engine"
	// AblDRInteger is the DR model with integer (ceiling) tile counts
	// instead of fractional volume-proportional counts — the ablation
	// showing why ragged edge tiles must be charged by volume.
	AblDRInteger Kind = "DR-intTiles"
	// AblBTSUnidir is the BTS model with the bidirectional slowdown
	// forced to 1 — the ablation showing why modeling h2d/d2h contention
	// matters (it degenerates to the DataLoc model's dominant term
	// computed with Eq. 3 disabled).
	AblBTSUnidir Kind = "BTS-noBid"
)

// fullPhaseTimes returns the full-problem input/output transfer times and
// the full kernel estimate used by the Werkhoven family.
func fullPhaseTimes(p *Params, sm SubModels) (tIn, tExec, tOut float64) {
	var inBytes, outBytes int64
	for _, o := range p.Operands {
		if o.Get {
			inBytes += o.Bytes(p.DtypeSize)
		}
		if o.Set {
			outBytes += o.Bytes(p.DtypeSize)
		}
	}
	if inBytes > 0 {
		tIn = sm.TransferTime(machine.H2D, inBytes)
	}
	if outBytes > 0 {
		tOut = sm.TransferTime(machine.D2H, outBytes)
	}
	return tIn, sm.KernelFullTime(), tOut
}

// predictWerkSerial is the no-overlap baseline of [11].
func predictWerkSerial(p *Params, sm SubModels) (float64, error) {
	tIn, tExec, tOut := fullPhaseTimes(p, sm)
	return tIn + tExec + tOut, nil
}

// predictWerk2Way pipelines input chunks with kernel chunks over k pieces;
// the output phase runs after the pipeline drains.
func predictWerk2Way(p *Params, sm SubModels, T int) (float64, error) {
	k := p.SubkernelsF(T)
	tIn, tExec, tOut := fullPhaseTimes(p, sm)
	dominant := math.Max(tIn, tExec)
	return dominant*math.Max(k-1, 0)/k + (tIn+tExec)/k + tOut, nil
}

// predictWerk1Engine pipelines all three phases but input and output
// transfers serialize on one copy engine.
func predictWerk1Engine(p *Params, sm SubModels, T int) (float64, error) {
	k := p.SubkernelsF(T)
	tIn, tExec, tOut := fullPhaseTimes(p, sm)
	dominant := math.Max(tIn+tOut, tExec)
	return dominant*math.Max(k-1, 0)/k + (tIn+tExec+tOut)/k, nil
}

// predictDRIntegerTiles is predictDR with ceiling tile counts.
func predictDRIntegerTiles(p *Params, sm SubModels, T int) (float64, error) {
	tGPU, err := sm.KernelTileTime(T)
	if err != nil {
		return 0, err
	}
	k := float64(p.Subkernels(T))
	var kIn, kOut float64
	var tInFirst, tOutTail float64
	var fetchTile float64
	for _, o := range p.Operands {
		h2d := sm.TransferTime(machine.H2D, o.TileBytes(T, p.DtypeSize))
		if o.Get {
			kIn += math.Max(float64(o.Tiles(T)-1), 0)
			tInFirst += h2d
			if h2d > fetchTile {
				fetchTile = h2d
			}
		}
		if o.Set {
			kOut += float64(o.Tiles(T))
			tOutTail += sm.TransferTime(machine.D2H, o.TileBytes(T, p.DtypeSize))
		}
	}
	fetchBid := fetchTile
	if kOut > 0 && kIn > 0 {
		share := math.Min(kOut/kIn, 1)
		fetchBid *= 1 + (sm.BidSlowdown(machine.H2D)-1)*share
	}
	transferPaced := math.Min(kIn, math.Max(k-1, 0))
	t := tInFirst +
		math.Max(fetchBid, tGPU)*transferPaced +
		tGPU*(math.Max(k-1, 0)-transferPaced) +
		tGPU + tOutTail
	if kIn > transferPaced {
		t += fetchBid * (kIn - transferPaced)
	}
	return t, nil
}

// predictBTSUnidir is predictBTS with the slowdown factors forced to 1.
func predictBTSUnidir(p *Params, sm SubModels, T int) (float64, error) {
	tGPU, err := sm.KernelTileTime(T)
	if err != nil {
		return 0, err
	}
	k := p.SubkernelsF(T)
	tIn, tOut, _, _ := tileTransferTimes(p, sm, T)
	tOver := overlapTime(tIn, tOut, 1, 1)
	return math.Max(tGPU, tOver)*math.Max(k-1, 0) + tIn + tGPU + tOut, nil
}

// PredictExtended evaluates the extended comparator/ablation models; it
// falls back to Predict for the primary kinds so callers can treat the
// whole family uniformly.
func PredictExtended(kind Kind, p *Params, sm SubModels, T int) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if T <= 0 {
		return 0, errors.New("model: non-positive tiling size")
	}
	switch kind {
	case WerkSerial:
		return predictWerkSerial(p, sm)
	case Werk2Way:
		return predictWerk2Way(p, sm, T)
	case Werk1Engine:
		return predictWerk1Engine(p, sm, T)
	case AblDRInteger:
		return predictDRIntegerTiles(p, sm, T)
	case AblBTSUnidir:
		return predictBTSUnidir(p, sm, T)
	}
	return Predict(kind, p, sm, T)
}

// OptimalChunks returns the chunk count n minimizing the [11]-style
// pipelined time t(n) = dominant*(n-1)/n + (tIn+tExec+tOut)/n + c*n for a
// per-chunk management overhead c > 0 (their method for choosing the
// number of CUDA streams). It returns at least 1.
func OptimalChunks(tIn, tExec, tOut, overheadPerChunk float64) int {
	if overheadPerChunk <= 0 {
		return 1
	}
	dominant := math.Max(tExec, math.Max(tIn, tOut))
	fill := tIn + tExec + tOut - dominant
	if fill <= 0 {
		return 1
	}
	n := int(math.Round(math.Sqrt(fill / overheadPerChunk)))
	if n < 1 {
		n = 1
	}
	return n
}
