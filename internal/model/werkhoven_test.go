package model

import (
	"math"
	"testing"
)

func TestWerkhovenOrdering(t *testing.T) {
	// More overlap can only help: serial >= 2-way >= 1-engine >= CSO
	// (2 copy engines) for a full-offload problem with substantial
	// transfers in both directions.
	sm := newSub()
	sm.h2dInvBw, sm.d2hInvBw = 1e-9, 1e-9 // slow link, transfers matter
	p := gemmFull(8192, 8192, 8192)
	sm.full = sm.tile(8192)
	T := 1024
	serial, err := PredictExtended(WerkSerial, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	twoWay, err := PredictExtended(Werk2Way, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	oneEngine, err := PredictExtended(Werk1Engine, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	cso, err := PredictExtended(CSO, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	if !(serial >= twoWay && twoWay >= oneEngine && oneEngine >= cso) {
		t.Errorf("overlap ordering violated: serial=%g 2way=%g 1eng=%g cso=%g",
			serial, twoWay, oneEngine, cso)
	}
	if serial <= cso {
		t.Error("serial must be strictly worse than full 3-way overlap")
	}
}

func TestWerkSerialIsSum(t *testing.T) {
	sm := newSub()
	p := gemmFull(4096, 4096, 4096)
	sm.full = 0.5
	got, err := PredictExtended(WerkSerial, &p, sm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	bytes := int64(4096) * 4096 * 8
	want := sm.TransferTime(0, 3*bytes) + 0.5 + sm.TransferTime(1, bytes)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("serial = %g, want %g", got, want)
	}
}

func TestAblDRIntegerOverchargesRaggedTiles(t *testing.T) {
	// At a tile size that does not divide the problem, the integer-count
	// ablation must predict more time than the fractional DR model (it
	// charges edge tiles as full tiles).
	sm := newSub()
	p := gemmFull(8192, 8192, 8192)
	T := 3328 // 8192/3328 = 2.46 -> ceil 3 per dim
	frac, err := Predict(DR, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	integer, err := PredictExtended(AblDRInteger, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	if integer <= frac {
		t.Errorf("integer tiles (%g) should exceed fractional (%g) at ragged T", integer, frac)
	}
	// At a dividing tile size the two agree.
	T = 2048
	frac, _ = Predict(DR, &p, sm, T)
	integer, _ = PredictExtended(AblDRInteger, &p, sm, T)
	if math.Abs(frac-integer) > 1e-12 {
		t.Errorf("dividing T: fractional %g != integer %g", frac, integer)
	}
}

func TestAblBTSUnidirUnderestimatesContention(t *testing.T) {
	// Removing the bidirectional slowdown can only lower the prediction
	// for transfer-bound problems with traffic in both directions.
	sm := newSub()
	sm.h2dInvBw, sm.d2hInvBw = 1e-8, 1e-8
	p := gemmFull(8192, 8192, 8192)
	T := 1024
	bts, err := Predict(BTS, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	uni, err := PredictExtended(AblBTSUnidir, &p, sm, T)
	if err != nil {
		t.Fatal(err)
	}
	if uni >= bts {
		t.Errorf("no-bid ablation (%g) should be below BTS (%g)", uni, bts)
	}
}

func TestPredictExtendedFallsBack(t *testing.T) {
	sm := newSub()
	p := gemmFull(4096, 4096, 4096)
	a, err := PredictExtended(DataLoc, &p, sm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Predict(DataLoc, &p, sm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("PredictExtended must delegate primary kinds to Predict")
	}
	if _, err := PredictExtended(Kind("nope"), &p, sm, 1024); err == nil {
		t.Error("unknown kind should error through the fallback")
	}
	if _, err := PredictExtended(WerkSerial, &p, sm, 0); err == nil {
		t.Error("T=0 should error")
	}
	bad := Params{}
	if _, err := PredictExtended(WerkSerial, &bad, sm, 1024); err == nil {
		t.Error("invalid params should error")
	}
}

func TestOptimalChunks(t *testing.T) {
	// fill = tIn + tOut when exec dominates.
	n := OptimalChunks(0.1, 1.0, 0.1, 1e-4)
	want := int(math.Round(math.Sqrt(0.2 / 1e-4)))
	if n != want {
		t.Errorf("chunks = %d, want %d", n, want)
	}
	if OptimalChunks(1, 1, 1, 0) != 1 {
		t.Error("zero overhead should return 1")
	}
	if OptimalChunks(0, 1, 0, 1e-4) != 1 {
		t.Error("no fill time should return 1")
	}
	if OptimalChunks(1e-9, 1, 0, 10) != 1 {
		t.Error("overhead-dominated should clamp to 1")
	}
}
