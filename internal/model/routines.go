package model

import "fmt"

// Loc describes where an operand initially resides; it determines the
// Table I get/set flags. Following the paper, operands residing on the GPU
// need no fetch, and results whose operand originated on the GPU stay
// there (no write-back).
type Loc int

const (
	// OnHost marks an operand initially resident in host memory.
	OnHost Loc = iota
	// OnDevice marks an operand already resident in GPU memory.
	OnDevice
)

// String returns "host" or "device".
func (l Loc) String() string {
	if l == OnDevice {
		return "device"
	}
	return "host"
}

// GemmParams builds the Table I parameter struct for
// C[MxN] = alpha·A[MxK]·B[KxN] + beta·C. Each operand's location sets its
// get flag; C additionally carries the set flag when it lives on the host
// (the result must return).
func GemmParams(routine string, dtypeSize int64, m, n, k int64, locA, locB, locC Loc) Params {
	return Params{
		Routine:   routine,
		Level:     3,
		DtypeSize: dtypeSize,
		D1:        m, D2: n, D3: k,
		Operands: []Operand{
			{Name: "A", Rows: m, Cols: k, Get: locA == OnHost},
			{Name: "B", Rows: k, Cols: n, Get: locB == OnHost},
			{Name: "C", Rows: m, Cols: n, Get: locC == OnHost, Set: locC == OnHost},
		},
	}
}

// AxpyParams builds the Table I parameter struct for y += alpha·x over
// length-n vectors.
func AxpyParams(routine string, dtypeSize int64, n int64, locX, locY Loc) Params {
	return Params{
		Routine:   routine,
		Level:     1,
		DtypeSize: dtypeSize,
		D1:        n, D2: 1, D3: 1,
		Operands: []Operand{
			{Name: "X", Rows: n, Cols: 1, Get: locX == OnHost},
			{Name: "Y", Rows: n, Cols: 1, Get: locY == OnHost, Set: locY == OnHost},
		},
	}
}

// GemvParams builds the Table I parameter struct for
// y[M] = alpha·A[MxN]·x[N] + beta·y.
func GemvParams(routine string, dtypeSize int64, m, n int64, locA, locX, locY Loc) Params {
	return Params{
		Routine:   routine,
		Level:     2,
		DtypeSize: dtypeSize,
		D1:        m, D2: n, D3: 1,
		Operands: []Operand{
			{Name: "A", Rows: m, Cols: n, Get: locA == OnHost},
			{Name: "X", Rows: n, Cols: 1, Get: locX == OnHost},
			{Name: "Y", Rows: m, Cols: 1, Get: locY == OnHost, Set: locY == OnHost},
		},
	}
}

// LocCombos enumerates all host/device location assignments for n operands
// except the all-on-device one (which needs no overlap, and the paper
// excludes it). Combinations are ordered with all-on-host first.
func LocCombos(n int) [][]Loc {
	if n <= 0 {
		return nil
	}
	total := 1 << n
	var out [][]Loc
	for mask := 0; mask < total-1; mask++ {
		combo := make([]Loc, n)
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				combo[i] = OnDevice
			}
		}
		out = append(out, combo)
	}
	return out
}

// ComboName renders a location combination like "A:host B:device C:host".
func ComboName(names []string, locs []Loc) string {
	s := ""
	for i, l := range locs {
		if i > 0 {
			s += " "
		}
		name := "?"
		if i < len(names) {
			name = names[i]
		}
		s += fmt.Sprintf("%s:%s", name, l)
	}
	return s
}
