package blas

// Micro-kernels: compute a gemmMR x gemmNR block of C += A~ * B~ from one
// packed A micro-panel and one packed B micro-panel (B~ already carries
// alpha). Accumulators live in registers for the whole kc loop; a register
// round-trip of a float is exact, so the per-element result is bitwise
// identical to the oracle's store-per-term loop as long as terms are added
// one at a time in k order — which is exactly what every kernel here does
// (no pairwise trees, no fused multiply-add).

// microKernel4x4 is the portable full-tile kernel: 16 scalar accumulators,
// one multiply and one ordered add per term.
func microKernel4x4[F Float](kc int, ap, bp []F, c []F, ldc int) {
	col0 := c[0*ldc : 0*ldc+4]
	col1 := c[1*ldc : 1*ldc+4]
	col2 := c[2*ldc : 2*ldc+4]
	col3 := c[3*ldc : 3*ldc+4]
	c00, c10, c20, c30 := col0[0], col0[1], col0[2], col0[3]
	c01, c11, c21, c31 := col1[0], col1[1], col1[2], col1[3]
	c02, c12, c22, c32 := col2[0], col2[1], col2[2], col2[3]
	c03, c13, c23, c33 := col3[0], col3[1], col3[2], col3[3]
	ap = ap[:4*kc]
	bp = bp[:4*kc]
	for l := 0; l < kc; l++ {
		a := ap[4*l : 4*l+4]
		b := bp[4*l : 4*l+4]
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0 := b[0]
		c00 += a0 * b0
		c10 += a1 * b0
		c20 += a2 * b0
		c30 += a3 * b0
		b1 := b[1]
		c01 += a0 * b1
		c11 += a1 * b1
		c21 += a2 * b1
		c31 += a3 * b1
		b2 := b[2]
		c02 += a0 * b2
		c12 += a1 * b2
		c22 += a2 * b2
		c32 += a3 * b2
		b3 := b[3]
		c03 += a0 * b3
		c13 += a1 * b3
		c23 += a2 * b3
		c33 += a3 * b3
	}
	col0[0], col0[1], col0[2], col0[3] = c00, c10, c20, c30
	col1[0], col1[1], col1[2], col1[3] = c01, c11, c21, c31
	col2[0], col2[1], col2[2], col2[3] = c02, c12, c22, c32
	col3[0], col3[1], col3[2], col3[3] = c03, c13, c23, c33
}

// microKernelTail handles ragged edges: an mr x nr corner (mr <= mrK,
// nr <= nrK) read from zero-padded micro-panels whose packed widths are
// the selected kernel's mrK x nrK tile. Only the valid C elements are
// loaded and stored; padded lanes accumulate zeros into dead accumulator
// slots. Arithmetic stays exact (one multiply, one ordered add per term)
// under every policy — tails never fuse.
func microKernelTail[F Float](kc, mr, nr, mrK, nrK int, ap, bp []F, c []F, ldc int) {
	var acc [maxMR * maxNR]F
	for jj := 0; jj < nr; jj++ {
		for ii := 0; ii < mr; ii++ {
			acc[jj*maxMR+ii] = c[ii+jj*ldc]
		}
	}
	for l := 0; l < kc; l++ {
		a := ap[mrK*l : mrK*l+mrK]
		b := bp[nrK*l : nrK*l+nrK]
		for jj := 0; jj < nr; jj++ {
			bj := b[jj]
			for ii := 0; ii < mr; ii++ {
				acc[jj*maxMR+ii] += a[ii] * bj
			}
		}
	}
	for jj := 0; jj < nr; jj++ {
		for ii := 0; ii < mr; ii++ {
			c[ii+jj*ldc] = acc[jj*maxMR+ii]
		}
	}
}
