package blas

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/parallel"
)

// Fuzz targets for the fused kernels: random geometry and coefficients,
// checked against the exact oracle within the k-scaled ULP bound and for
// bitwise identity across worker counts. `go test -fuzz=FuzzGemmFMA64`
// explores beyond the seeded corpus; a plain `go test` run replays the
// seeds as regression cases.

func fuzzGeometry(seed int64) (gc gemmCase, rng *rand.Rand) {
	rng = rand.New(rand.NewSource(seed))
	gc = gemmCase{
		ta: NoTrans, tb: NoTrans,
		m: 1 + rng.Intn(70), n: 1 + rng.Intn(70), k: rng.Intn(70),
		padA: rng.Intn(3), padB: rng.Intn(3), padC: rng.Intn(3),
	}
	if rng.Intn(2) == 1 {
		gc.ta = Trans
	}
	if rng.Intn(2) == 1 {
		gc.tb = Trans
	}
	coeffs := []float64{0, 1, -1, 0.5, -2.25, 3}
	gc.alpha = coeffs[rng.Intn(len(coeffs))]
	gc.beta = coeffs[rng.Intn(len(coeffs))]
	return gc, rng
}

func FuzzGemmFMA64(f *testing.F) {
	if !registeredFMA(registered64) {
		f.Skip("no fused float64 kernel on this host")
	}
	for _, seed := range []int64{1, 7, 42, 9001, -3} {
		f.Add(seed)
	}
	pools := []*parallel.Pool{parallel.NewPool(2), parallel.NewPool(8)}
	f.Fuzz(func(t *testing.T, seed int64) {
		gc, _ := fuzzGeometry(seed)
		runFMACase64(t, gc, pools)
	})
}

func FuzzGemmFMA32(f *testing.F) {
	if !registeredFMA(registered32) {
		f.Skip("no fused float32 kernel on this host")
	}
	for _, seed := range []int64{2, 11, 77, 1234} {
		f.Add(seed)
	}
	pool := parallel.NewPool(4)
	f.Fuzz(func(t *testing.T, seed int64) {
		gc, rng := fuzzGeometry(seed)
		aRows, aCols := gc.m, gc.k
		if gc.ta == Trans {
			aRows, aCols = gc.k, gc.m
		}
		bRows, bCols := gc.k, gc.n
		if gc.tb == Trans {
			bRows, bCols = gc.n, gc.k
		}
		lda, ldb, ldc := max(1, aRows+gc.padA), max(1, bRows+gc.padB), gc.m+gc.padC
		alpha, beta := float32(gc.alpha), float32(gc.beta)
		a := make([]float32, max(1, lda*aCols))
		b := make([]float32, max(1, ldb*bCols))
		c0 := make([]float32, ldc*gc.n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		for i := range c0 {
			c0[i] = float32(rng.NormFloat64())
		}
		ref := append([]float32(nil), c0...)
		if err := GemmNaive(gc.ta, gc.tb, gc.m, gc.n, gc.k, alpha, a, lda, b, ldb, beta, ref, ldc); err != nil {
			t.Fatal(err)
		}
		absv := func(x []float32) []float32 {
			y := make([]float32, len(x))
			for i, v := range x {
				y[i] = float32(math.Abs(float64(v)))
			}
			return y
		}
		mag := absv(c0)
		if err := GemmNaive(gc.ta, gc.tb, gc.m, gc.n, gc.k, float32(math.Abs(float64(alpha))),
			absv(a), lda, absv(b), ldb, float32(math.Abs(float64(beta))), mag, ldc); err != nil {
			t.Fatal(err)
		}
		got := append([]float32(nil), c0...)
		if err := GemmPolicy(KernelFMA, gc.ta, gc.tb, gc.m, gc.n, gc.k, alpha, a, lda, b, ldb, beta, got, ldc); err != nil {
			t.Fatal(err)
		}
		bound := 4 * float64(gc.k+2) * 0x1p-23
		for i := range got {
			if diff := math.Abs(float64(got[i]) - float64(ref[i])); diff > bound*float64(mag[i]) {
				t.Fatalf("%s: element %d outside ULP bound: got %v, oracle %v", gc.name(), i, got[i], ref[i])
			}
		}
		cw := append([]float32(nil), c0...)
		if err := GemmParallelPolicy(pool, KernelFMA, gc.ta, gc.tb, gc.m, gc.n, gc.k, alpha, a, lda, b, ldb, beta, cw, ldc); err != nil {
			t.Fatal(err)
		}
		if i := bitsEqual32(cw, got); i >= 0 {
			t.Fatalf("%s: fma float32 not bitwise identical across workers (element %d)", gc.name(), i)
		}
	})
}
