package blas

// Micro-kernel registry with explicitly versioned numerics.
//
// Every GEMM call routes through one registered kernel variant, selected
// by (element type, KernelPolicy) and overridable process-wide with the
// COCOPELIA_BLAS_KERNEL environment variable. The registry exists so the
// engine can grow faster kernels without silently changing bits:
//
//   - KernelExact variants are bitwise identical to the GemmNaive oracle
//     (one IEEE multiply + one ordered add per term, no fused
//     multiply-add). They are the default, and everything that pins
//     byte-identical output — the campaign runs, the Float64bits
//     differential tests — runs on them.
//   - KernelFMA variants contract each multiply-add pair into a single
//     rounding (VFMADD231 on amd64, FMLA on arm64) and may use a wider
//     register tile. They are opt-in, strictly faster, and validated by
//     ULP-bounded differential tests instead of bitwise ones.
//
// Whatever the variant, results remain bitwise identical across worker
// counts: the blocking schedule is a pure function of (m, n, k, kernel),
// never of the partition (see gemm_blocked.go).

import (
	"fmt"
	"sync"
)

// KernelPolicy selects the rounding-mode contract of the micro-kernel a
// GEMM call runs on.
type KernelPolicy uint8

const (
	// KernelExact selects the bitwise oracle numerics: one IEEE multiply
	// and one ordered add per term, bit-for-bit equal to GemmNaive. This
	// is the default policy everywhere.
	KernelExact KernelPolicy = iota
	// KernelFMA selects fused-multiply-add numerics: each multiply-add
	// pair rounds once, so results differ from the oracle by a k-scaled
	// ULP bound (but stay bitwise reproducible for a fixed kernel and
	// geometry, at any worker count). Falls back to the exact kernel when
	// the host has no fused variant.
	KernelFMA
)

// String returns the policy's env-override spelling.
func (p KernelPolicy) String() string {
	switch p {
	case KernelExact:
		return "exact"
	case KernelFMA:
		return "fma"
	}
	return fmt.Sprintf("KernelPolicy(%d)", uint8(p))
}

// kernelSel is one resolved micro-kernel configuration: the register tile
// geometry the packing layer must match, and at most one native function
// (nil means the portable Go kernels). Exactly one of f64/f32 is non-nil
// for a native variant; both are nil for "generic".
type kernelSel struct {
	name   string // e.g. "generic", "avx", "fma-avx2", "neon"
	policy KernelPolicy
	mr, nr int
	f64    func(kc int, a, b, c *float64, ldc int)
	f32    func(kc int, a, b, c *float32, ldc int)
}

// registered64/registered32 hold the native kernels the arch init
// installed, in preference order within a policy (first match wins).
// The portable generic kernel is always available as the fallback and is
// not listed here.
var (
	registered64 []kernelSel
	registered32 []kernelSel
)

// registerKernel64 installs a native float64 micro-kernel (called from
// arch init functions, before any resolution can have happened).
func registerKernel64(name string, policy KernelPolicy, mr, nr int, fn func(kc int, a, b, c *float64, ldc int)) {
	checkTile(name, mr, nr)
	registered64 = append(registered64, kernelSel{name: name, policy: policy, mr: mr, nr: nr, f64: fn})
}

// registerKernel32 installs a native float32 micro-kernel.
func registerKernel32(name string, policy KernelPolicy, mr, nr int, fn func(kc int, a, b, c *float32, ldc int)) {
	checkTile(name, mr, nr)
	registered32 = append(registered32, kernelSel{name: name, policy: policy, mr: mr, nr: nr, f32: fn})
}

// checkTile bounds a kernel's register tile by what the shared packing
// and tail machinery supports (maxMR/maxNR size the tail accumulator and
// gemmMC/gemmNC must stay multiples of the tile).
func checkTile(name string, mr, nr int) {
	if mr <= 0 || nr <= 0 || mr > maxMR || nr > maxNR || gemmMC%mr != 0 || gemmNC%nr != 0 {
		panic(fmt.Sprintf("blas: kernel %q tile %dx%d outside supported bounds (max %dx%d, must divide MC=%d/NC=%d)",
			name, mr, nr, maxMR, maxNR, gemmMC, gemmNC))
	}
}

// genericSel is the portable exact configuration: the 4x4 Go micro-kernel
// that every platform and every exotic Float instantiation runs on.
func genericSel() kernelSel {
	return kernelSel{name: "generic", policy: KernelExact, mr: gemmMR, nr: gemmNR}
}

// Resolution state: computed once, on the first kernel lookup, from the
// registered kernels and the COCOPELIA_BLAS_KERNEL override (cpu.go).
// Slots are (dtype, policy) pairs.
const (
	slotF64Exact = iota
	slotF64FMA
	slotF32Exact
	slotF32FMA
	numKernelSlots
)

var (
	kernelOnce sync.Once
	kernelTab  [numKernelSlots]kernelSel
	kernelErr  error
)

// kernelForSlot returns the resolved kernel for a (dtype, policy) slot.
// After the one-time resolution this is an array load, so the dispatch
// path of every Gemm call stays allocation-free.
//
//cocolint:hotpath
func kernelForSlot(slot uint8) (kernelSel, error) {
	// One-time env-override resolution; steady-state calls take Once's
	// atomic fast path and an array load.
	kernelOnce.Do(resolveKernels)
	if kernelErr != nil {
		return kernelSel{}, kernelErr
	}
	return kernelTab[slot], nil
}

// kernelFor resolves the micro-kernel for element type F under policy.
// Exotic named float types always run the portable generic kernel.
func kernelFor[F Float](policy KernelPolicy) (kernelSel, error) {
	if policy > KernelFMA {
		return kernelSel{}, fmt.Errorf("blas: unknown kernel policy %d", uint8(policy))
	}
	slot := uint8(policy)
	switch any((*F)(nil)).(type) {
	case *float64:
	case *float32:
		slot += slotF32Exact
	default:
		return genericSel(), nil
	}
	return kernelForSlot(slot)
}

// SelectedKernel reports the micro-kernel variant name that policy
// resolves to for element type F in this process, after the
// COCOPELIA_BLAS_KERNEL override. It errors exactly when Gemm calls
// under the same policy would (unknown override value, or an override
// pinning a kernel this host does not have).
func SelectedKernel[F Float](policy KernelPolicy) (string, error) {
	sel, err := kernelFor[F](policy)
	if err != nil {
		return "", err
	}
	return sel.name, nil
}
