package blas

import "cocopelia/internal/parallel"

// This file is the driver of the blocked GEMM engine: three-level cache
// blocking (NC column panels x KC depth panels x MC row blocks) over the
// packed micro-panels of pack.go, with the innermost work done by the
// micro-kernels (microkernel.go, plus the optional vectorized float64
// kernel installed by the amd64 build).
//
// Determinism: C columns are independent — element (i,j) is touched only
// by the beta pass over column j and by micro-kernels in column j's panel
// — so partitioning columns across workers cannot change any element's
// accumulation order. Within one column the order is fixed by the pc/k
// loops: terms arrive in increasing k, one rounded add each, which is the
// oracle's order. Hence results are bitwise identical to GemmNaive and
// across worker counts; TestGemmBlockedBitwise* pin both properties.

// dgemmKernel4x4 is the optional native full-tile kernel for float64
// (installed by init on amd64 when the CPU supports AVX; nil elsewhere).
// It must compute exactly what microKernel4x4 computes, bit for bit:
// per-lane IEEE multiply then ordered add, no FMA contraction.
var dgemmKernel4x4 func(kc int, a, b, c *float64, ldc int)

// checkGemm validates a Gemm call's flags, dimensions and operand shapes.
func checkGemm[F Float](transA, transB byte, m, n, k int, a []F, lda int, b []F, ldb int, c []F, ldc int) error {
	if err := checkTrans("gemm(A)", transA); err != nil {
		return err
	}
	if err := checkTrans("gemm(B)", transB); err != nil {
		return err
	}
	if m < 0 || n < 0 || k < 0 {
		return badShape("gemm: negative dimensions m=%d n=%d k=%d", m, n, k)
	}
	aRows, aCols := m, k
	if transA == Trans {
		aRows, aCols = k, m
	}
	bRows, bCols := k, n
	if transB == Trans {
		bRows, bCols = n, k
	}
	if err := checkMatrix("A", aRows, aCols, lda, a); err != nil {
		return err
	}
	if err := checkMatrix("B", bRows, bCols, ldb, b); err != nil {
		return err
	}
	return checkMatrix("C", m, n, ldc, c)
}

// scaleColumns applies the beta pass to C columns [jLo, jHi), exactly as
// the oracle does: zero-fill for beta == 0 (so NaNs are overwritten, per
// BLAS), no-op for beta == 1, one rounded multiply otherwise.
func scaleColumns[F Float](m, jLo, jHi int, beta F, c []F, ldc int) {
	for j := jLo; j < jHi; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op(A) is m x k,
// op(B) is k x n and C is m x n, all column-major, using the blocked
// packed engine on the calling goroutine. Results are bitwise identical to
// the GemmNaive oracle.
func Gemm[F Float](transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	return GemmParallel(nil, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// GemmParallel is Gemm fanned out over the pool's workers, each owning a
// disjoint range of C column panels. The fixed blocking makes every C
// element's accumulation order independent of the partition, so the result
// is bitwise identical at any worker count (a nil pool runs inline).
func GemmParallel[F Float](p *parallel.Pool, transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	if err := checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc); err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	accumulate := alpha != 0 && k > 0
	small := int64(m)*int64(n)*int64(k) <= gemmSmallCutoff
	workers := p.Workers()
	if panels := (n + gemmNR - 1) / gemmNR; workers > panels {
		workers = panels
	}
	if workers <= 1 || !accumulate || small {
		scaleColumns(m, 0, n, beta, c, ldc)
		if !accumulate {
			return nil
		}
		if small {
			gemmRefAccum(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
			return nil
		}
		gemmColumns(transA, transB, m, 0, n, k, alpha, a, lda, b, ldb, c, ldc)
		return nil
	}
	// Split the column panels into one contiguous, NR-aligned range per
	// worker. The split only chooses who computes a column, never how.
	panelsPer := ((n+gemmNR-1)/gemmNR + workers - 1) / workers
	type colRange struct{ lo, hi int }
	ranges := make([]colRange, 0, workers)
	for lo := 0; lo < n; lo += panelsPer * gemmNR {
		ranges = append(ranges, colRange{lo, min(lo+panelsPer*gemmNR, n)})
	}
	return parallel.ForEach(p, ranges, func(_ int, r colRange) error {
		scaleColumns(m, r.lo, r.hi, beta, c, ldc)
		gemmColumns(transA, transB, m, r.lo, r.hi, k, alpha, a, lda, b, ldb, c, ldc)
		return nil
	})
}

// gemmColumns runs the blocked engine over C columns [jLo, jHi). The beta
// pass must already have run; alpha != 0 and k > 0.
func gemmColumns[F Float](transA, transB byte, m, jLo, jHi, k int, alpha F, a []F, lda int, b []F, ldb int, c []F, ldc int) {
	bufs := gemmBufPool.Get().(*gemmBuffers)
	defer gemmBufPool.Put(bufs)
	apCap := roundUp(min(gemmMC, m), gemmMR) * min(gemmKC, k)
	bpCap := min(gemmKC, k) * roundUp(min(gemmNC, jHi-jLo), gemmNR)
	ap, bp := packSlices[F](bufs, apCap, bpCap)

	// Native-kernel views (nil unless F is literally float64 and the
	// platform installed a kernel). The pointer-based casts never allocate.
	var a64, b64, c64 []float64
	kern := dgemmKernel4x4
	if kern != nil {
		var okA, okB, okC bool
		a64, okA = asTyped[float64](&ap)
		b64, okB = asTyped[float64](&bp)
		c64, okC = asTyped[float64](&c)
		if !okA || !okB || !okC {
			kern = nil
		}
	}

	for jc := jLo; jc < jHi; jc += gemmNC {
		nc := min(gemmNC, jHi-jc)
		ncPad := roundUp(nc, gemmNR)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(transB, b, ldb, pc, jc, kc, nc, alpha, bp[:kc*ncPad])
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA(transA, a, lda, ic, pc, mc, kc, ap[:roundUp(mc, gemmMR)*kc])
				for jr := 0; jr < nc; jr += gemmNR {
					nr := min(gemmNR, nc-jr)
					cPanel := c[(ic)+(jc+jr)*ldc:]
					for ir := 0; ir < mc; ir += gemmMR {
						mr := min(gemmMR, mc-ir)
						if mr == gemmMR && nr == gemmNR {
							if kern != nil {
								cb := c64[(ic+ir)+(jc+jr)*ldc:]
								kern(kc, &a64[ir*kc], &b64[jr*kc], &cb[0], ldc)
								continue
							}
							microKernel4x4(kc, ap[ir*kc:], bp[jr*kc:], cPanel[ir:], ldc)
							continue
						}
						microKernelTail(kc, mr, nr, ap[ir*kc:], bp[jr*kc:], cPanel[ir:], ldc)
					}
				}
			}
		}
	}
}

// gemmRefAccum is the oracle's accumulation loop (j-l-i order, one rounded
// multiply-then-add per term), shared by GemmNaive and the small-problem
// path of the engine. The beta pass must already have run.
func gemmRefAccum[F Float](transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, c []F, ldc int) {
	for j := 0; j < n; j++ {
		cCol := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			var blj F
			if transB == Trans {
				blj = alpha * b[j+l*ldb]
			} else {
				blj = alpha * b[l+j*ldb]
			}
			if transA == NoTrans {
				aCol := a[l*lda : l*lda+m]
				for i, av := range aCol {
					cCol[i] += av * blj
				}
			} else {
				arow := a[l:]
				for i := 0; i < m; i++ {
					cCol[i] += arow[i*lda] * blj
				}
			}
		}
	}
}

// GemmNaive is the reference j-l-i triple loop, kept as the differential
// oracle for the blocked engine: Gemm/GemmParallel must produce bitwise
// identical results to it for every input. It is also the honest baseline
// for the engine's benchmarks.
func GemmNaive[F Float](transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	if err := checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc); err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	scaleColumns(m, 0, n, beta, c, ldc)
	if alpha == 0 || k == 0 {
		return nil
	}
	gemmRefAccum(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
	return nil
}

// SyrkParallel is Syrk through the parallel blocked engine.
func SyrkParallel[F Float](p *parallel.Pool, trans byte, n, k int, alpha F, a []F, lda int, beta F, c []F, ldc int) error {
	if err := checkTrans("syrk", trans); err != nil {
		return err
	}
	if trans == NoTrans {
		return GemmParallel(p, NoTrans, Trans, n, n, k, alpha, a, lda, a, lda, beta, c, ldc)
	}
	return GemmParallel(p, Trans, NoTrans, n, n, k, alpha, a, lda, a, lda, beta, c, ldc)
}
