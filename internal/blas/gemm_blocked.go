package blas

import "cocopelia/internal/parallel"

// This file is the driver of the blocked GEMM engine: three-level cache
// blocking (NC column panels x KC depth panels x MC row blocks) over the
// packed micro-panels of pack.go, with the innermost work done by the
// micro-kernel variant the registry resolves for the call's element type
// and KernelPolicy (registry.go: portable/AVX exact kernels, AVX2+FMA and
// NEON fused kernels).
//
// Determinism: C columns are independent — element (i,j) is touched only
// by the beta pass over column j and by micro-kernels in column j's panel
// — so partitioning columns across workers cannot change any element's
// accumulation order. Within one column the order is fixed by the pc/k
// loops: terms arrive in increasing k, one rounded accumulation step
// each. Under KernelExact that step is the oracle's multiply-then-add, so
// results are bitwise identical to GemmNaive; under KernelFMA it is one
// fused rounding, so results are ULP-bounded against the oracle instead.
// Either way the schedule is a pure function of (m, n, k, kernel), so
// results are bitwise identical across worker counts;
// TestGemmBlockedBitwise* and TestGemmFMA* pin these properties.

// checkGemm validates a Gemm call's flags, dimensions and operand shapes.
func checkGemm[F Float](transA, transB byte, m, n, k int, a []F, lda int, b []F, ldb int, c []F, ldc int) error {
	if err := checkTrans("gemm(A)", transA); err != nil {
		return err
	}
	if err := checkTrans("gemm(B)", transB); err != nil {
		return err
	}
	if m < 0 || n < 0 || k < 0 {
		return badShape("gemm: negative dimensions m=%d n=%d k=%d", m, n, k)
	}
	aRows, aCols := m, k
	if transA == Trans {
		aRows, aCols = k, m
	}
	bRows, bCols := k, n
	if transB == Trans {
		bRows, bCols = n, k
	}
	if err := checkMatrix("A", aRows, aCols, lda, a); err != nil {
		return err
	}
	if err := checkMatrix("B", bRows, bCols, ldb, b); err != nil {
		return err
	}
	return checkMatrix("C", m, n, ldc, c)
}

// scaleColumns applies the beta pass to C columns [jLo, jHi), exactly as
// the oracle does: zero-fill for beta == 0 (so NaNs are overwritten, per
// BLAS), no-op for beta == 1, one rounded multiply otherwise.
func scaleColumns[F Float](m, jLo, jHi int, beta F, c []F, ldc int) {
	for j := jLo; j < jHi; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := range col {
				col[i] *= beta
			}
		}
	}
}

// Gemm computes C = alpha*op(A)*op(B) + beta*C where op(A) is m x k,
// op(B) is k x n and C is m x n, all column-major, using the blocked
// packed engine on the calling goroutine under the default KernelExact
// policy. Results are bitwise identical to the GemmNaive oracle.
func Gemm[F Float](transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	return GemmParallelPolicy(nil, KernelExact, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// GemmPolicy is Gemm under an explicit kernel policy (see KernelPolicy
// for the numerics contract of each).
func GemmPolicy[F Float](policy KernelPolicy, transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	return GemmParallelPolicy(nil, policy, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// GemmParallel is Gemm fanned out over the pool's workers, each owning a
// disjoint range of C column panels. The fixed blocking makes every C
// element's accumulation order independent of the partition, so the result
// is bitwise identical at any worker count (a nil pool runs inline).
func GemmParallel[F Float](p *parallel.Pool, transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	return GemmParallelPolicy(p, KernelExact, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// GemmParallelPolicy is the full engine entry point: an explicit kernel
// policy and a worker pool. Whatever the selected kernel, the blocking
// schedule depends only on (m, n, k, kernel), so results are bitwise
// identical at any worker count; KernelExact results are additionally
// bitwise identical to the GemmNaive oracle.
func GemmParallelPolicy[F Float](p *parallel.Pool, policy KernelPolicy, transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	if err := checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc); err != nil {
		return err
	}
	sel, err := kernelFor[F](policy)
	if err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	accumulate := alpha != 0 && k > 0
	small := int64(m)*int64(n)*int64(k) <= gemmSmallCutoff
	workers := p.Workers()
	if panels := (n + sel.nr - 1) / sel.nr; workers > panels {
		workers = panels
	}
	if workers <= 1 || !accumulate || small {
		scaleColumns(m, 0, n, beta, c, ldc)
		if !accumulate {
			return nil
		}
		if small {
			gemmRefAccum(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
			return nil
		}
		gemmColumns(sel, transA, transB, m, 0, n, k, alpha, a, lda, b, ldb, c, ldc)
		return nil
	}
	// Split the column panels into one contiguous, NR-aligned range per
	// worker. The split only chooses who computes a column, never how.
	panelsPer := ((n+sel.nr-1)/sel.nr + workers - 1) / workers
	type colRange struct{ lo, hi int }
	ranges := make([]colRange, 0, workers)
	for lo := 0; lo < n; lo += panelsPer * sel.nr {
		ranges = append(ranges, colRange{lo, min(lo+panelsPer*sel.nr, n)})
	}
	return parallel.ForEach(p, ranges, func(_ int, r colRange) error {
		scaleColumns(m, r.lo, r.hi, beta, c, ldc)
		gemmColumns(sel, transA, transB, m, r.lo, r.hi, k, alpha, a, lda, b, ldb, c, ldc)
		return nil
	})
}

// gemmColumns runs the blocked engine over C columns [jLo, jHi) on the
// selected kernel. The beta pass must already have run; alpha != 0 and
// k > 0.
func gemmColumns[F Float](sel kernelSel, transA, transB byte, m, jLo, jHi, k int, alpha F, a []F, lda int, b []F, ldb int, c []F, ldc int) {
	mrK, nrK := sel.mr, sel.nr
	bufs := gemmBufPool.Get().(*gemmBuffers)
	defer gemmBufPool.Put(bufs)
	apCap := roundUp(min(gemmMC, m), mrK) * min(gemmKC, k)
	bpCap := min(gemmKC, k) * roundUp(min(gemmNC, jHi-jLo), nrK)
	ap, bp := packSlices[F](bufs, apCap, bpCap)

	// Native-kernel views (nil unless F is literally the kernel's element
	// type). The pointer-based casts never allocate.
	var a64, b64, c64 []float64
	kern64 := sel.f64
	if kern64 != nil {
		var okA, okB, okC bool
		a64, okA = asTyped[float64](&ap)
		b64, okB = asTyped[float64](&bp)
		c64, okC = asTyped[float64](&c)
		if !okA || !okB || !okC {
			kern64 = nil
		}
	}
	var a32, b32, c32 []float32
	kern32 := sel.f32
	if kern32 != nil {
		var okA, okB, okC bool
		a32, okA = asTyped[float32](&ap)
		b32, okB = asTyped[float32](&bp)
		c32, okC = asTyped[float32](&c)
		if !okA || !okB || !okC {
			kern32 = nil
		}
	}

	for jc := jLo; jc < jHi; jc += gemmNC {
		nc := min(gemmNC, jHi-jc)
		ncPad := roundUp(nc, nrK)
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(transB, b, ldb, pc, jc, kc, nc, nrK, alpha, bp[:kc*ncPad])
			for ic := 0; ic < m; ic += gemmMC {
				mc := min(gemmMC, m-ic)
				packA(transA, a, lda, ic, pc, mc, kc, mrK, ap[:roundUp(mc, mrK)*kc])
				for jr := 0; jr < nc; jr += nrK {
					nr := min(nrK, nc-jr)
					cPanel := c[(ic)+(jc+jr)*ldc:]
					for ir := 0; ir < mc; ir += mrK {
						mr := min(mrK, mc-ir)
						if mr == mrK && nr == nrK {
							if kern64 != nil {
								cb := c64[(ic+ir)+(jc+jr)*ldc:]
								kern64(kc, &a64[ir*kc], &b64[jr*kc], &cb[0], ldc)
								continue
							}
							if kern32 != nil {
								cb := c32[(ic+ir)+(jc+jr)*ldc:]
								kern32(kc, &a32[ir*kc], &b32[jr*kc], &cb[0], ldc)
								continue
							}
							if mrK == gemmMR && nrK == gemmNR {
								microKernel4x4(kc, ap[ir*kc:], bp[jr*kc:], cPanel[ir:], ldc)
								continue
							}
						}
						microKernelTail(kc, mr, nr, mrK, nrK, ap[ir*kc:], bp[jr*kc:], cPanel[ir:], ldc)
					}
				}
			}
		}
	}
}

// gemmRefAccum is the oracle's accumulation loop (j-l-i order, one rounded
// multiply-then-add per term), shared by GemmNaive and the small-problem
// path of the engine. The beta pass must already have run.
func gemmRefAccum[F Float](transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, c []F, ldc int) {
	for j := 0; j < n; j++ {
		cCol := c[j*ldc : j*ldc+m]
		for l := 0; l < k; l++ {
			var blj F
			if transB == Trans {
				blj = alpha * b[j+l*ldb]
			} else {
				blj = alpha * b[l+j*ldb]
			}
			if transA == NoTrans {
				aCol := a[l*lda : l*lda+m]
				for i, av := range aCol {
					cCol[i] += av * blj
				}
			} else {
				arow := a[l:]
				for i := 0; i < m; i++ {
					cCol[i] += arow[i*lda] * blj
				}
			}
		}
	}
}

// GemmNaive is the reference j-l-i triple loop, kept as the differential
// oracle for the blocked engine: Gemm/GemmParallel must produce bitwise
// identical results to it for every input. It is also the honest baseline
// for the engine's benchmarks.
func GemmNaive[F Float](transA, transB byte, m, n, k int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	if err := checkGemm(transA, transB, m, n, k, a, lda, b, ldb, c, ldc); err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	scaleColumns(m, 0, n, beta, c, ldc)
	if alpha == 0 || k == 0 {
		return nil
	}
	gemmRefAccum(transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
	return nil
}

// SyrkParallel is Syrk through the parallel blocked engine.
func SyrkParallel[F Float](p *parallel.Pool, trans byte, n, k int, alpha F, a []F, lda int, beta F, c []F, ldc int) error {
	return SyrkParallelPolicy(p, KernelExact, trans, n, k, alpha, a, lda, beta, c, ldc)
}

// SyrkParallelPolicy is SyrkParallel under an explicit kernel policy.
func SyrkParallelPolicy[F Float](p *parallel.Pool, policy KernelPolicy, trans byte, n, k int, alpha F, a []F, lda int, beta F, c []F, ldc int) error {
	if err := checkTrans("syrk", trans); err != nil {
		return err
	}
	if trans == NoTrans {
		return GemmParallelPolicy(p, policy, NoTrans, Trans, n, n, k, alpha, a, lda, a, lda, beta, c, ldc)
	}
	return GemmParallelPolicy(p, policy, Trans, NoTrans, n, n, k, alpha, a, lda, a, lda, beta, c, ldc)
}
