package blas

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// symmetrize fills the unreferenced triangle so the reference full-matrix
// product can be computed directly.
func symmetrize(a []float64, n, lda int, uplo byte) []float64 {
	full := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			ii, jj := i, j
			if (uplo == Upper && i > j) || (uplo == Lower && i < j) {
				ii, jj = j, i
			}
			full[i+j*n] = a[ii+jj*lda]
		}
	}
	return full
}

func TestSymmAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for _, side := range []byte{Left, Right} {
		for _, uplo := range []byte{Upper, Lower} {
			m, n := 7, 5
			na := m
			if side == Right {
				na = n
			}
			a := randSlice(rng, na*na)
			b := randSlice(rng, m*n)
			c := randSlice(rng, m*n)
			cRef := append([]float64(nil), c...)
			if err := Symm(side, uplo, m, n, 1.3, a, na, b, m, -0.4, c, m); err != nil {
				t.Fatalf("side=%c uplo=%c: %v", side, uplo, err)
			}
			full := symmetrize(a, na, na, uplo)
			var err error
			if side == Left {
				err = Dgemm(NoTrans, NoTrans, m, n, m, 1.3, full, m, b, m, -0.4, cRef, m)
			} else {
				err = Dgemm(NoTrans, NoTrans, m, n, n, 1.3, b, m, full, n, -0.4, cRef, m)
			}
			if err != nil {
				t.Fatal(err)
			}
			if d := maxAbsDiff(c, cRef); d > 1e-12 {
				t.Errorf("side=%c uplo=%c: diff %g", side, uplo, d)
			}
		}
	}
}

func TestSymmValidation(t *testing.T) {
	a := make([]float64, 16)
	if err := Symm('X', Upper, 2, 2, 1.0, a, 4, a, 4, 0, a, 4); err == nil {
		t.Error("bad side should error")
	}
	if err := Symm(Left, 'X', 2, 2, 1.0, a, 4, a, 4, 0, a, 4); err == nil {
		t.Error("bad uplo should error")
	}
	if err := Symm(Left, Upper, 8, 2, 1.0, a, 4, a, 8, 0, a, 8); err == nil {
		t.Error("short A should error")
	}
}

// trsmCase runs one trsm and validates it by multiplying back.
func trsmCase(t *testing.T, side, uplo, transA, diag byte, m, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	na := m
	if side == Right {
		na = n
	}
	// Build a well-conditioned triangular A: dominant diagonal.
	a := make([]float64, na*na)
	for j := 0; j < na; j++ {
		for i := 0; i < na; i++ {
			if (uplo == Upper && i <= j) || (uplo == Lower && i >= j) {
				a[i+j*na] = rng.NormFloat64() * 0.3
			}
			if i == j {
				a[i+j*na] = 2 + rng.Float64()
			}
		}
	}
	bOrig := randSlice(rng, m*n)
	x := append([]float64(nil), bOrig...)
	alpha := 1.7
	if err := Trsm(side, uplo, transA, diag, m, n, alpha, a, na, x, m); err != nil {
		t.Fatalf("trsm(%c%c%c%c): %v", side, uplo, transA, diag, err)
	}
	// Reconstruct op(A)*X (or X*op(A)) and compare against alpha*B.
	full := make([]float64, na*na)
	copy(full, a)
	if diag == Unit {
		for i := 0; i < na; i++ {
			full[i+i*na] = 1
		}
	}
	check := make([]float64, m*n)
	var err error
	if side == Left {
		err = Dgemm(transA, NoTrans, m, n, m, 1, full, na, x, m, 0, check, m)
	} else {
		err = Dgemm(NoTrans, transA, m, n, n, 1, x, m, full, na, 0, check, m)
	}
	if err != nil {
		t.Fatal(err)
	}
	for i := range check {
		if math.Abs(check[i]-alpha*bOrig[i]) > 1e-9 {
			t.Fatalf("trsm(%c%c%c%c): residual %g at %d",
				side, uplo, transA, diag, check[i]-alpha*bOrig[i], i)
		}
	}
}

func TestTrsmAllVariants(t *testing.T) {
	seed := int64(0)
	for _, side := range []byte{Left, Right} {
		for _, uplo := range []byte{Upper, Lower} {
			for _, trans := range []byte{NoTrans, Trans} {
				for _, diag := range []byte{NonUnit, Unit} {
					seed++
					trsmCase(t, side, uplo, trans, diag, 7, 5, seed)
				}
			}
		}
	}
}

func TestTrsmValidation(t *testing.T) {
	a := make([]float64, 16)
	if err := Trsm('X', Upper, NoTrans, NonUnit, 2, 2, 1, a, 4, a, 4); err == nil {
		t.Error("bad side should error")
	}
	if err := Trsm(Left, 'X', NoTrans, NonUnit, 2, 2, 1, a, 4, a, 4); err == nil {
		t.Error("bad uplo should error")
	}
	if err := Trsm(Left, Upper, 'Q', NonUnit, 2, 2, 1, a, 4, a, 4); err == nil {
		t.Error("bad trans should error")
	}
	if err := Trsm(Left, Upper, NoTrans, 'Q', 2, 2, 1, a, 4, a, 4); err == nil {
		t.Error("bad diag should error")
	}
	if err := Trsm(Left, Upper, NoTrans, NonUnit, 8, 2, 1, a, 4, a, 8); err == nil {
		t.Error("short A should error")
	}
}

// Property: trsm(alpha=1) then multiplying back recovers B for random
// well-conditioned systems.
func TestTrsmRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := make([]float64, n*n)
		for j := 0; j < n; j++ {
			for i := 0; i <= j; i++ {
				a[i+j*n] = rng.NormFloat64() * 0.2
			}
			a[j+j*n] = 1.5 + rng.Float64()
		}
		b := randSlice(rng, n)
		x := append([]float64(nil), b...)
		if Trsm(Left, Upper, NoTrans, NonUnit, n, 1, 1, a, n, x, n) != nil {
			return false
		}
		// Check A*x == b.
		for i := 0; i < n; i++ {
			s := 0.0
			for l := i; l < n; l++ {
				s += a[i+l*n] * x[l]
			}
			if math.Abs(s-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
