//go:build amd64

package blas

import (
	"math"
	"math/rand"
	"testing"
)

// Direct micro-kernel tests: each fused assembly kernel must match a
// scalar math.FMA reference bit for bit on packed panels — VFMADD231
// and math.FMA round identically, so there is no tolerance here. This
// covers kernels the registry shadows on this host (on an AVX-512
// machine the AVX2 float64 kernel never resolves, but it must still be
// correct for the hosts where it does).

// fmaRef64 accumulates c (mrK x 4, column-major, leading dim ldc) with
// one fused rounding per term, mirroring the packed-panel layout the
// kernels consume.
func fmaRef64(kc, mrK int, ap, bp, c []float64, ldc int) {
	for l := 0; l < kc; l++ {
		for j := 0; j < 4; j++ {
			b := bp[l*4+j]
			for i := 0; i < mrK; i++ {
				c[i+j*ldc] = math.FMA(ap[l*mrK+i], b, c[i+j*ldc])
			}
		}
	}
}

func testFusedKernel64(t *testing.T, mrK int, kern func(kc int, a, b, c *float64, ldc int)) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(mrK)))
	for _, kc := range []int{1, 2, 7, gemmKC} {
		ldc := mrK + 3
		ap := randSlice(rng, mrK*kc)
		bp := randSlice(rng, 4*kc)
		c0 := randSlice(rng, ldc*4)
		want := append([]float64(nil), c0...)
		fmaRef64(kc, mrK, ap, bp, want, ldc)
		got := append([]float64(nil), c0...)
		kern(kc, &ap[0], &bp[0], &got[0], ldc)
		if i := bitsEqual64(got, want); i >= 0 {
			t.Fatalf("kc=%d: kernel differs from math.FMA reference at element %d: %v != %v",
				kc, i, got[i], want[i])
		}
	}
}

func TestDgemmKernel8x4FMADirect(t *testing.T) {
	if !hasAVX2FMA() {
		t.Skip("no AVX2+FMA on this host")
	}
	testFusedKernel64(t, 8, dgemmKernel8x4FMA)
}

func TestDgemmKernel16x4AVX512Direct(t *testing.T) {
	if !hasAVX512() {
		t.Skip("no AVX-512 on this host")
	}
	testFusedKernel64(t, 16, dgemmKernel16x4AVX512)
}

func TestSgemmKernel16x4FMADirect(t *testing.T) {
	if !hasAVX2FMA() {
		t.Skip("no AVX2+FMA on this host")
	}
	rng := rand.New(rand.NewSource(5))
	const mrK = 16
	for _, kc := range []int{1, 3, gemmKC} {
		ldc := mrK + 1
		ap := make([]float32, mrK*kc)
		bp := make([]float32, 4*kc)
		c0 := make([]float32, ldc*4)
		for i := range ap {
			ap[i] = float32(rng.NormFloat64())
		}
		for i := range bp {
			bp[i] = float32(rng.NormFloat64())
		}
		for i := range c0 {
			c0[i] = float32(rng.NormFloat64())
		}
		want := append([]float32(nil), c0...)
		for l := 0; l < kc; l++ {
			for j := 0; j < 4; j++ {
				b := bp[l*4+j]
				for i := 0; i < mrK; i++ {
					// One fused rounding per term, in float32: FMA32(a, b, c)
					// is the correctly rounded float32 of the exact a*b+c.
					want[i+j*ldc] = float32(math.FMA(float64(ap[l*mrK+i]), float64(b), float64(want[i+j*ldc])))
				}
			}
		}
		got := append([]float32(nil), c0...)
		sgemmKernel16x4FMA(kc, &ap[0], &bp[0], &got[0], ldc)
		if i := bitsEqual32(got, want); i >= 0 {
			t.Fatalf("kc=%d: kernel differs from FMA reference at element %d: %v != %v",
				kc, i, got[i], want[i])
		}
	}
}
