// Package blas provides reference CPU implementations of the dense BLAS
// routines the CoCoPeLia framework offloads. They follow the Fortran BLAS
// conventions: column-major storage with explicit leading dimensions, and
// the standard transpose flags.
//
// These implementations serve two purposes: they are the functional payload
// of simulated GPU kernels (so the tile scheduler's decomposition,
// K-dimension accumulation and write-back logic are verified with real
// numerics), and they are the ground truth that integration tests compare
// tiled executions against.
package blas

import (
	"errors"
	"fmt"
	"math"
)

// Float is the element-type constraint of the generic kernels.
type Float interface {
	~float32 | ~float64
}

// Transpose flags, matching the BLAS character convention.
const (
	// NoTrans selects op(X) = X.
	NoTrans byte = 'N'
	// Trans selects op(X) = X^T.
	Trans byte = 'T'
)

// ErrShape is wrapped by all dimension/stride validation failures.
var ErrShape = errors.New("blas: bad shape")

func badShape(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrShape, fmt.Sprintf(format, args...))
}

// checkMatrix validates a column-major rows x cols matrix with leading
// dimension ld backed by data.
func checkMatrix[F Float](name string, rows, cols, ld int, data []F) error {
	if rows < 0 || cols < 0 {
		return badShape("%s: negative dimensions %dx%d", name, rows, cols)
	}
	if ld < max(1, rows) {
		return badShape("%s: ld=%d < rows=%d", name, ld, rows)
	}
	if rows == 0 || cols == 0 {
		return nil
	}
	need := (cols-1)*ld + rows
	if len(data) < need {
		return badShape("%s: backing slice too short: have %d, need %d", name, len(data), need)
	}
	return nil
}

// checkVector validates a length-n vector with stride inc (inc != 0).
func checkVector[F Float](name string, n, inc int, data []F) error {
	if n < 0 {
		return badShape("%s: negative length %d", name, n)
	}
	if inc == 0 {
		return badShape("%s: zero increment", name)
	}
	if n == 0 {
		return nil
	}
	need := (n-1)*abs(inc) + 1
	if len(data) < need {
		return badShape("%s: backing slice too short: have %d, need %d", name, len(data), need)
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// vecIdx returns the slice index of logical element i of a strided vector.
func vecIdx(i, n, inc int) int {
	if inc >= 0 {
		return i * inc
	}
	return (n - 1 - i) * -inc
}

// Axpy computes y += alpha*x over length-n strided vectors.
func Axpy[F Float](n int, alpha F, x []F, incx int, y []F, incy int) error {
	if err := checkVector("x", n, incx, x); err != nil {
		return err
	}
	if err := checkVector("y", n, incy, y); err != nil {
		return err
	}
	if n == 0 || alpha == 0 {
		return nil
	}
	if incx == 1 && incy == 1 {
		for i := 0; i < n; i++ {
			y[i] += alpha * x[i]
		}
		return nil
	}
	for i := 0; i < n; i++ {
		y[vecIdx(i, n, incy)] += alpha * x[vecIdx(i, n, incx)]
	}
	return nil
}

// Scal computes x *= alpha over a length-n strided vector.
func Scal[F Float](n int, alpha F, x []F, incx int) error {
	if err := checkVector("x", n, incx, x); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		x[vecIdx(i, n, incx)] *= alpha
	}
	return nil
}

// Copy copies x into y over length-n strided vectors.
func Copy[F Float](n int, x []F, incx int, y []F, incy int) error {
	if err := checkVector("x", n, incx, x); err != nil {
		return err
	}
	if err := checkVector("y", n, incy, y); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		y[vecIdx(i, n, incy)] = x[vecIdx(i, n, incx)]
	}
	return nil
}

// Swap exchanges x and y over length-n strided vectors.
func Swap[F Float](n int, x []F, incx int, y []F, incy int) error {
	if err := checkVector("x", n, incx, x); err != nil {
		return err
	}
	if err := checkVector("y", n, incy, y); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		xi, yi := vecIdx(i, n, incx), vecIdx(i, n, incy)
		x[xi], y[yi] = y[yi], x[xi]
	}
	return nil
}

// Dot returns the inner product of two length-n strided vectors.
func Dot[F Float](n int, x []F, incx int, y []F, incy int) (F, error) {
	if err := checkVector("x", n, incx, x); err != nil {
		return 0, err
	}
	if err := checkVector("y", n, incy, y); err != nil {
		return 0, err
	}
	var s F
	for i := 0; i < n; i++ {
		s += x[vecIdx(i, n, incx)] * y[vecIdx(i, n, incy)]
	}
	return s, nil
}

// Nrm2 returns the Euclidean norm of a length-n strided vector, using the
// scaled accumulation that avoids overflow.
func Nrm2[F Float](n int, x []F, incx int) (F, error) {
	if err := checkVector("x", n, incx, x); err != nil {
		return 0, err
	}
	var scale, ssq float64 = 0, 1
	for i := 0; i < n; i++ {
		v := math.Abs(float64(x[vecIdx(i, n, incx)]))
		if v == 0 {
			continue
		}
		if scale < v {
			r := scale / v
			ssq = 1 + ssq*r*r
			scale = v
		} else {
			r := v / scale
			ssq += r * r
		}
	}
	return F(scale * math.Sqrt(ssq)), nil
}

// Asum returns the sum of absolute values of a length-n strided vector.
func Asum[F Float](n int, x []F, incx int) (F, error) {
	if err := checkVector("x", n, incx, x); err != nil {
		return 0, err
	}
	var s F
	for i := 0; i < n; i++ {
		v := x[vecIdx(i, n, incx)]
		if v < 0 {
			v = -v
		}
		s += v
	}
	return s, nil
}

// Iamax returns the index (0-based, into the logical vector) of the element
// with the largest absolute value, or -1 for an empty vector.
func Iamax[F Float](n int, x []F, incx int) (int, error) {
	if err := checkVector("x", n, incx, x); err != nil {
		return 0, err
	}
	if n == 0 {
		return -1, nil
	}
	best, bestAbs := 0, F(-1)
	for i := 0; i < n; i++ {
		v := x[vecIdx(i, n, incx)]
		if v < 0 {
			v = -v
		}
		if v > bestAbs {
			best, bestAbs = i, v
		}
	}
	return best, nil
}

// opDims returns the (rows, cols) of op(X) for an rows x cols stored X.
func opDims(trans byte, rows, cols int) (int, int) {
	if trans == Trans {
		return cols, rows
	}
	return rows, cols
}

func checkTrans(name string, trans byte) error {
	if trans != NoTrans && trans != Trans {
		return badShape("%s: bad transpose flag %q", name, trans)
	}
	return nil
}

// Gemv computes y = alpha*op(A)*x + beta*y for an m x n stored matrix A.
func Gemv[F Float](trans byte, m, n int, alpha F, a []F, lda int, x []F, incx int, beta F, y []F, incy int) error {
	if err := checkTrans("gemv", trans); err != nil {
		return err
	}
	if err := checkMatrix("A", m, n, lda, a); err != nil {
		return err
	}
	rows, cols := opDims(trans, m, n) // op(A) is rows x cols
	if err := checkVector("x", cols, incx, x); err != nil {
		return err
	}
	if err := checkVector("y", rows, incy, y); err != nil {
		return err
	}
	// The transpose branch is hoisted out of the loops so each inner loop
	// is direct slice indexing (a per-element accessor closure would defeat
	// bounds-check elimination and inlining).
	if trans == Trans {
		for i := 0; i < rows; i++ {
			yi := vecIdx(i, rows, incy)
			// op(A) row i is stored column i of A: unit stride.
			arow := a[i*lda : i*lda+cols]
			var acc F
			if incx == 1 {
				for j, av := range arow {
					acc += av * x[j]
				}
			} else {
				for j, av := range arow {
					acc += av * x[vecIdx(j, cols, incx)]
				}
			}
			y[yi] = alpha*acc + beta*y[yi]
		}
		return nil
	}
	for i := 0; i < rows; i++ {
		yi := vecIdx(i, rows, incy)
		arow := a[i:]
		var acc F
		for j := 0; j < cols; j++ {
			acc += arow[j*lda] * x[vecIdx(j, cols, incx)]
		}
		y[yi] = alpha*acc + beta*y[yi]
	}
	return nil
}

// Ger computes A += alpha * x * y^T for an m x n matrix A.
func Ger[F Float](m, n int, alpha F, x []F, incx int, y []F, incy int, a []F, lda int) error {
	if err := checkMatrix("A", m, n, lda, a); err != nil {
		return err
	}
	if err := checkVector("x", m, incx, x); err != nil {
		return err
	}
	if err := checkVector("y", n, incy, y); err != nil {
		return err
	}
	if alpha == 0 || m == 0 || n == 0 {
		return nil
	}
	for j := 0; j < n; j++ {
		yj := alpha * y[vecIdx(j, n, incy)]
		col := a[j*lda : j*lda+m]
		if incx == 1 {
			for i, xv := range x[:m] {
				col[i] += xv * yj
			}
			continue
		}
		for i := 0; i < m; i++ {
			col[i] += x[vecIdx(i, m, incx)] * yj
		}
	}
	return nil
}

// Syrk computes C = alpha*A*A^T + beta*C (trans=NoTrans) or
// C = alpha*A^T*A + beta*C (trans=Trans) for the full n x n matrix C
// (both triangles are written; the framework has no packed storage).
func Syrk[F Float](trans byte, n, k int, alpha F, a []F, lda int, beta F, c []F, ldc int) error {
	if err := checkTrans("syrk", trans); err != nil {
		return err
	}
	if trans == NoTrans {
		return Gemm(NoTrans, Trans, n, n, k, alpha, a, lda, a, lda, beta, c, ldc)
	}
	return Gemm(Trans, NoTrans, n, n, k, alpha, a, lda, a, lda, beta, c, ldc)
}

// Side and triangle flags for symm/trsm, matching the BLAS character
// convention.
const (
	// Left selects op on the left: C = alpha*A*B + ...
	Left byte = 'L'
	// Right selects op on the right: C = alpha*B*A + ...
	Right byte = 'R'
	// Upper selects the upper triangle of a triangular/symmetric matrix.
	Upper byte = 'U'
	// Lower selects the lower triangle.
	Lower byte = 'L'
	// Unit marks an implicit unit diagonal.
	Unit byte = 'U'
	// NonUnit marks an explicit diagonal.
	NonUnit byte = 'N'
)

// Symm computes C = alpha*A*B + beta*C (side Left) or
// C = alpha*B*A + beta*C (side Right), where A is symmetric with the
// referenced triangle given by uplo. C is m x n; A is m x m (Left) or
// n x n (Right).
func Symm[F Float](side, uplo byte, m, n int, alpha F, a []F, lda int, b []F, ldb int, beta F, c []F, ldc int) error {
	if side != Left && side != Right {
		return badShape("symm: bad side %q", side)
	}
	if uplo != Upper && uplo != Lower {
		return badShape("symm: bad uplo %q", uplo)
	}
	na := m
	if side == Right {
		na = n
	}
	if err := checkMatrix("A", na, na, lda, a); err != nil {
		return err
	}
	if err := checkMatrix("B", m, n, ldb, b); err != nil {
		return err
	}
	if err := checkMatrix("C", m, n, ldc, c); err != nil {
		return err
	}
	if m == 0 || n == 0 {
		return nil
	}
	// Beta pass over whole C columns first (as in Gemm), so the alpha == 0
	// fast path and the accumulation loops below never rescale C.
	for j := 0; j < n; j++ {
		col := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range col {
				col[i] = 0
			}
		} else if beta != 1 {
			for i := range col {
				col[i] *= beta
			}
		}
	}
	if alpha == 0 {
		return nil
	}
	if side == Left {
		// C[:, j] += sum_l A[:, l] * (alpha*B[l, j]): column-sliced axpy
		// accumulation, mirroring the Gemm idiom. Symmetric column l is
		// read from the referenced triangle in two parts — a unit-stride
		// stored column segment and the mirrored row at stride lda.
		for j := 0; j < n; j++ {
			cCol := c[j*ldc : j*ldc+m]
			bCol := b[j*ldb : j*ldb+m]
			for l := 0; l < m; l++ {
				blj := alpha * bCol[l]
				arow := a[l:]
				if uplo == Upper {
					// A[0..l, l] is stored column l; A[l+1.., l] mirrors
					// stored row l.
					aCol := a[l*lda : l*lda+l+1]
					for i, av := range aCol {
						cCol[i] += av * blj
					}
					for i := l + 1; i < m; i++ {
						cCol[i] += arow[i*lda] * blj
					}
				} else {
					// A[0..l-1, l] mirrors stored row l; A[l.., l] is
					// stored column l.
					for i := 0; i < l; i++ {
						cCol[i] += arow[i*lda] * blj
					}
					aCol := a[l+l*lda : l*lda+m]
					for o, av := range aCol {
						cCol[l+o] += av * blj
					}
				}
			}
		}
		return nil
	}
	// Side == Right: C[:, j] += sum_l B[:, l] * (alpha*A[l, j]).
	for j := 0; j < n; j++ {
		cCol := c[j*ldc : j*ldc+m]
		for l := 0; l < n; l++ {
			i, jj := l, j
			if (uplo == Upper && i > jj) || (uplo == Lower && i < jj) {
				i, jj = jj, i
			}
			alj := alpha * a[i+jj*lda]
			bCol := b[l*ldb : l*ldb+m]
			for ii, bv := range bCol {
				cCol[ii] += bv * alj
			}
		}
	}
	return nil
}

// Trsm solves op(A)*X = alpha*B (side Left) or X*op(A) = alpha*B (side
// Right) for X, overwriting B, where A is triangular per uplo/diag and
// B is m x n.
func Trsm[F Float](side, uplo, transA, diag byte, m, n int, alpha F, a []F, lda int, b []F, ldb int) error {
	if side != Left && side != Right {
		return badShape("trsm: bad side %q", side)
	}
	if uplo != Upper && uplo != Lower {
		return badShape("trsm: bad uplo %q", uplo)
	}
	if err := checkTrans("trsm", transA); err != nil {
		return err
	}
	if diag != Unit && diag != NonUnit {
		return badShape("trsm: bad diag %q", diag)
	}
	na := m
	if side == Right {
		na = n
	}
	if err := checkMatrix("A", na, na, lda, a); err != nil {
		return err
	}
	if err := checkMatrix("B", m, n, ldb, b); err != nil {
		return err
	}
	// Effective triangle orientation after the transpose.
	lower := uplo == Lower
	if transA == Trans {
		lower = !lower
	}
	at := func(i, j int) F {
		if transA == Trans {
			i, j = j, i
		}
		return a[i+j*lda]
	}
	if alpha != 1 {
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				b[i+j*ldb] *= alpha
			}
		}
	}
	solveCol := func(x []F, stride, k int) {
		// Solves the k x k system op(A)*y = x in place, where x is strided.
		if lower {
			for i := 0; i < k; i++ {
				var s F
				for l := 0; l < i; l++ {
					s += at(i, l) * x[l*stride]
				}
				x[i*stride] -= s
				if diag == NonUnit {
					x[i*stride] /= at(i, i)
				}
			}
		} else {
			for i := k - 1; i >= 0; i-- {
				var s F
				for l := i + 1; l < k; l++ {
					s += at(i, l) * x[l*stride]
				}
				x[i*stride] -= s
				if diag == NonUnit {
					x[i*stride] /= at(i, i)
				}
			}
		}
	}
	if side == Left {
		for j := 0; j < n; j++ {
			solveCol(b[j*ldb:], 1, m)
		}
	} else {
		// X*op(A) = B  <=>  op(A)^T * X^T = B^T: solve rows of B against
		// the transposed triangle.
		lower = !lower
		origAt := at
		at = func(i, j int) F { return origAt(j, i) }
		for i := 0; i < m; i++ {
			solveCol(b[i:], ldb, n)
		}
	}
	return nil
}

// Named double/single precision wrappers, matching the BLAS naming scheme
// used throughout the paper.

// Daxpy is Axpy for float64.
func Daxpy(n int, alpha float64, x []float64, incx int, y []float64, incy int) error {
	return Axpy(n, alpha, x, incx, y, incy)
}

// Saxpy is Axpy for float32.
func Saxpy(n int, alpha float32, x []float32, incx int, y []float32, incy int) error {
	return Axpy(n, alpha, x, incx, y, incy)
}

// Dgemm is Gemm for float64.
func Dgemm(transA, transB byte, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) error {
	return Gemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Sgemm is Gemm for float32.
func Sgemm(transA, transB byte, m, n, k int, alpha float32, a []float32, lda int, b []float32, ldb int, beta float32, c []float32, ldc int) error {
	return Gemm(transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Dgemv is Gemv for float64.
func Dgemv(trans byte, m, n int, alpha float64, a []float64, lda int, x []float64, incx int, beta float64, y []float64, incy int) error {
	return Gemv(trans, m, n, alpha, a, lda, x, incx, beta, y, incy)
}

// Ddot is Dot for float64.
func Ddot(n int, x []float64, incx int, y []float64, incy int) (float64, error) {
	return Dot(n, x, incx, y, incy)
}

// Dnrm2 is Nrm2 for float64.
func Dnrm2(n int, x []float64, incx int) (float64, error) { return Nrm2(n, x, incx) }

// Dscal is Scal for float64.
func Dscal(n int, alpha float64, x []float64, incx int) error { return Scal(n, alpha, x, incx) }
