package blas

// Packing: the engine copies blocks of op(A) and op(B) into contiguous,
// transpose-normalized buffers before the micro-kernel runs. After packing
// the four transA/transB combinations are indistinguishable — the
// micro-kernel always streams MR-wide A micro-panels against NR-wide B
// micro-panels with unit stride — and ragged edges are zero-padded to full
// micro-panel width so only the C write-back needs tail handling.
//
// alpha is folded into the packed B panel: the oracle computes every term
// as op(A)[i,l] * (alpha*op(B)[l,j]), so scaling B at pack time (one
// multiply per packed value instead of one per k-loop iteration) preserves
// bitwise equality with it.

// packA copies the mc x kc block of op(A) whose top-left element is
// op(A)[ic, pc] into ap as row micro-panels: panel ir holds rows
// [ic+ir*gemmMR, ...) in k-major order, gemmMR values per k step, the last
// panel zero-padded to gemmMR rows. ap must hold roundUp(mc)*kc elements.
func packA[F Float](transA byte, a []F, lda int, ic, pc, mc, kc int, ap []F) {
	for ir := 0; ir < mc; ir += gemmMR {
		mr := min(gemmMR, mc-ir)
		dst := ap[ir*kc : ir*kc+gemmMR*kc]
		if transA == NoTrans {
			// op(A)[i,l] = a[i + l*lda]: one unit-stride column segment
			// per k step.
			for l := 0; l < kc; l++ {
				src := a[(ic+ir)+(pc+l)*lda:]
				d := dst[l*gemmMR : l*gemmMR+gemmMR]
				for ii := 0; ii < mr; ii++ {
					d[ii] = src[ii]
				}
				for ii := mr; ii < gemmMR; ii++ {
					d[ii] = 0
				}
			}
			continue
		}
		// op(A)[i,l] = a[l + i*lda]: each packed row is a unit-stride
		// stored column of A.
		for ii := 0; ii < gemmMR; ii++ {
			if ii >= mr {
				for l := 0; l < kc; l++ {
					dst[l*gemmMR+ii] = 0
				}
				continue
			}
			src := a[pc+(ic+ir+ii)*lda:]
			for l := 0; l < kc; l++ {
				dst[l*gemmMR+ii] = src[l]
			}
		}
	}
}

// packB copies the kc x nc block of op(B) whose top-left element is
// op(B)[pc, jc] into bp as column micro-panels scaled by alpha: panel jr
// holds columns [jc+jr*gemmNR, ...) in k-major order, gemmNR values per k
// step, the last panel zero-padded. bp must hold kc*roundUp(nc) elements.
func packB[F Float](transB byte, b []F, ldb int, pc, jc, kc, nc int, alpha F, bp []F) {
	for jr := 0; jr < nc; jr += gemmNR {
		nr := min(gemmNR, nc-jr)
		dst := bp[jr*kc : jr*kc+gemmNR*kc]
		if transB == NoTrans {
			// op(B)[l,j] = b[l + j*ldb]: each packed column is a
			// unit-stride stored column of B.
			for jj := 0; jj < gemmNR; jj++ {
				if jj >= nr {
					for l := 0; l < kc; l++ {
						dst[l*gemmNR+jj] = 0
					}
					continue
				}
				src := b[pc+(jc+jr+jj)*ldb:]
				if alpha == 1 {
					for l := 0; l < kc; l++ {
						dst[l*gemmNR+jj] = src[l]
					}
				} else {
					for l := 0; l < kc; l++ {
						dst[l*gemmNR+jj] = alpha * src[l]
					}
				}
			}
			continue
		}
		// op(B)[l,j] = b[j + l*ldb]: one unit-stride row segment per k
		// step.
		for l := 0; l < kc; l++ {
			src := b[(jc+jr)+(pc+l)*ldb:]
			d := dst[l*gemmNR : l*gemmNR+gemmNR]
			if alpha == 1 {
				for jj := 0; jj < nr; jj++ {
					d[jj] = src[jj]
				}
			} else {
				for jj := 0; jj < nr; jj++ {
					d[jj] = alpha * src[jj]
				}
			}
			for jj := nr; jj < gemmNR; jj++ {
				d[jj] = 0
			}
		}
	}
}
