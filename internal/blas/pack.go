package blas

// Packing: the engine copies blocks of op(A) and op(B) into contiguous,
// transpose-normalized buffers before the micro-kernel runs. After packing
// the four transA/transB combinations are indistinguishable — the
// micro-kernel always streams mr-wide A micro-panels against nr-wide B
// micro-panels with unit stride — and ragged edges are zero-padded to full
// micro-panel width so only the C write-back needs tail handling. The
// panel widths mr/nr come from the selected kernel variant (registry.go):
// 4x4 for the exact kernels, wider tiles for the fused ones.
//
// alpha is folded into the packed B panel: the oracle computes every term
// as op(A)[i,l] * (alpha*op(B)[l,j]), so scaling B at pack time (one
// multiply per packed value instead of one per k-loop iteration) preserves
// bitwise equality with it.

// packA copies the mc x kc block of op(A) whose top-left element is
// op(A)[ic, pc] into ap as row micro-panels: panel ir holds rows
// [ic+ir*mr, ...) in k-major order, mr values per k step, the last panel
// zero-padded to mr rows. ap must hold roundUp(mc, mr)*kc elements.
func packA[F Float](transA byte, a []F, lda int, ic, pc, mc, kc, mrK int, ap []F) {
	for ir := 0; ir < mc; ir += mrK {
		mr := min(mrK, mc-ir)
		dst := ap[ir*kc : ir*kc+mrK*kc]
		if transA == NoTrans {
			// op(A)[i,l] = a[i + l*lda]: one unit-stride column segment
			// per k step.
			for l := 0; l < kc; l++ {
				src := a[(ic+ir)+(pc+l)*lda:]
				d := dst[l*mrK : l*mrK+mrK]
				for ii := 0; ii < mr; ii++ {
					d[ii] = src[ii]
				}
				for ii := mr; ii < mrK; ii++ {
					d[ii] = 0
				}
			}
			continue
		}
		// op(A)[i,l] = a[l + i*lda]: each packed row is a unit-stride
		// stored column of A.
		for ii := 0; ii < mrK; ii++ {
			if ii >= mr {
				for l := 0; l < kc; l++ {
					dst[l*mrK+ii] = 0
				}
				continue
			}
			src := a[pc+(ic+ir+ii)*lda:]
			for l := 0; l < kc; l++ {
				dst[l*mrK+ii] = src[l]
			}
		}
	}
}

// packB copies the kc x nc block of op(B) whose top-left element is
// op(B)[pc, jc] into bp as column micro-panels scaled by alpha: panel jr
// holds columns [jc+jr*nr, ...) in k-major order, nr values per k step,
// the last panel zero-padded. bp must hold kc*roundUp(nc, nr) elements.
func packB[F Float](transB byte, b []F, ldb int, pc, jc, kc, nc, nrK int, alpha F, bp []F) {
	for jr := 0; jr < nc; jr += nrK {
		nr := min(nrK, nc-jr)
		dst := bp[jr*kc : jr*kc+nrK*kc]
		if transB == NoTrans {
			// op(B)[l,j] = b[l + j*ldb]: each packed column is a
			// unit-stride stored column of B.
			for jj := 0; jj < nrK; jj++ {
				if jj >= nr {
					for l := 0; l < kc; l++ {
						dst[l*nrK+jj] = 0
					}
					continue
				}
				src := b[pc+(jc+jr+jj)*ldb:]
				if alpha == 1 {
					for l := 0; l < kc; l++ {
						dst[l*nrK+jj] = src[l]
					}
				} else {
					for l := 0; l < kc; l++ {
						dst[l*nrK+jj] = alpha * src[l]
					}
				}
			}
			continue
		}
		// op(B)[l,j] = b[j + l*ldb]: one unit-stride row segment per k
		// step.
		for l := 0; l < kc; l++ {
			src := b[(jc+jr)+(pc+l)*ldb:]
			d := dst[l*nrK : l*nrK+nrK]
			if alpha == 1 {
				for jj := 0; jj < nr; jj++ {
					d[jj] = src[jj]
				}
			} else {
				for jj := 0; jj < nr; jj++ {
					d[jj] = alpha * src[jj]
				}
			}
			for jj := nr; jj < nrK; jj++ {
				d[jj] = 0
			}
		}
	}
}
