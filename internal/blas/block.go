package blas

import "sync"

// Blocking parameters of the packed GEMM engine (see DESIGN.md "Blocked
// GEMM payload engine"). They are fixed constants on purpose: the
// determinism contract of the engine — bitwise-identical results at any
// worker count, and bitwise equality with the GemmNaive oracle — relies on
// every C element receiving its k-dimension terms in the same order no
// matter how the work is partitioned. Fixed blocking keeps the per-element
// accumulation schedule a pure function of (m, n, k), never of the worker
// count or the machine.
const (
	// gemmMR x gemmNR is the register micro-tile of the portable exact
	// kernel: the micro-kernel keeps an MRxNR block of C in registers
	// while streaming one packed A micro-panel against one packed B
	// micro-panel. Native kernel variants may register wider tiles
	// (registry.go); the packing layer follows the selected tile.
	gemmMR = 4
	gemmNR = 4
	// maxMR/maxNR bound any registered kernel tile: they size the tail
	// kernel's stack accumulator, and registration rejects tiles past
	// them (or tiles that do not divide gemmMC/gemmNC).
	maxMR = 16
	maxNR = 4
	// gemmKC is the k-extent of a packed panel pair: one B micro-panel
	// (gemmKC x gemmNR values) stays resident in L1 while a whole A block
	// streams against it.
	gemmKC = 256
	// gemmMC is the row extent of a packed A block (gemmMC x gemmKC values
	// sized for L2 residency).
	gemmMC = 128
	// gemmNC is the column extent of a packed B panel.
	gemmNC = 2048
	// gemmSmallCutoff routes tiny problems (m*n*k at or below it) to the
	// reference loop, which beats the engine's packing overhead there.
	// Both paths produce the same bits, so the cutoff is invisible to
	// callers.
	gemmSmallCutoff = 24 * 24 * 24
)

// gemmBuffers is one worker's pair of packing buffers. The engine recycles
// them through a sync.Pool so steady-state Gemm calls allocate nothing; the
// float64 and float32 views share the slot because a worker only ever uses
// the pair matching its element type.
type gemmBuffers struct {
	a64, b64 []float64
	a32, b32 []float32
}

var gemmBufPool = sync.Pool{New: func() any { return new(gemmBuffers) }}

// asTyped reinterprets *[]E as []F when F and E are the same type (the
// alloc-free pointer form of the conversion: a pointer always fits an
// interface word, so boxing it never heap-allocates).
func asTyped[F Float, E Float](p *[]E) ([]F, bool) {
	if q, ok := any(p).(*[]F); ok {
		return *q, true
	}
	return nil, false
}

// packSlices returns the worker's A- and B-packing buffers with at least
// na and nb elements. Exotic Float instantiations (named float types) are
// not pooled and simply allocate.
func packSlices[F Float](bufs *gemmBuffers, na, nb int) (ap, bp []F) {
	var probe *[]F
	switch any(probe).(type) {
	case *[]float64:
		if cap(bufs.a64) < na {
			bufs.a64 = make([]float64, na)
		}
		if cap(bufs.b64) < nb {
			bufs.b64 = make([]float64, nb)
		}
		bufs.a64, bufs.b64 = bufs.a64[:na], bufs.b64[:nb]
		ap, _ = asTyped[F](&bufs.a64)
		bp, _ = asTyped[F](&bufs.b64)
	case *[]float32:
		if cap(bufs.a32) < na {
			bufs.a32 = make([]float32, na)
		}
		if cap(bufs.b32) < nb {
			bufs.b32 = make([]float32, nb)
		}
		bufs.a32, bufs.b32 = bufs.a32[:na], bufs.b32[:nb]
		ap, _ = asTyped[F](&bufs.a32)
		bp, _ = asTyped[F](&bufs.b32)
	default:
		ap, bp = make([]F, na), make([]F, nb)
	}
	return ap, bp
}

func roundUp(x, to int) int { return (x + to - 1) / to * to }
