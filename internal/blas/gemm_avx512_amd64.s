// AVX-512 fused micro-kernel of the blocked GEMM engine, registered
// under KernelFMA (gemm_amd64.go) and preferred over the AVX2 fused
// kernel when ZMM state is available: the 256-bit FMA kernel saturates
// the two 256-bit FMA ports, so the only way past that ceiling is the
// 512-bit datapath.
//
// Same arithmetic contract as gemm_fma_amd64.s: one VFMADD231PD
// rounding per term, terms accumulated in increasing k order per C
// element, so the result is ULP-bounded against the exact oracle and
// bitwise reproducible across runs and worker counts.

#include "textflag.h"

// func dgemmKernel16x4AVX512(kc int, a, b, c *float64, ldc int)
//
// a: packed A micro-panel, 16 doubles per k step (unit stride).
// b: packed B micro-panel, 4 doubles per k step, alpha folded in.
// c: 16x4 column-major block of C, leading dimension ldc (elements).
//
// Register plan: Z0..Z7 hold the 16x4 C tile (two ZMM per column),
// Z8/Z9 and Z14/Z15 stream A, Z10..Z13 and Z16..Z19 hold B broadcasts.
// Per k step: 2 loads + 4 broadcasts feed 8 FMAs over 8-wide lanes.
TEXT ·dgemmKernel16x4AVX512(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8              // ldc in bytes

	// Column pointers of the C block.
	MOVQ DX, R9              // &c[0, 0]
	LEAQ (DX)(R8*1), R10     // &c[0, 1]
	LEAQ (R10)(R8*1), R11    // &c[0, 2]
	LEAQ (R11)(R8*1), R12    // &c[0, 3]

	// Accumulators: two ZMM per column (rows 0..7 and 8..15).
	VMOVUPD (R9), Z0
	VMOVUPD 64(R9), Z1
	VMOVUPD (R10), Z2
	VMOVUPD 64(R10), Z3
	VMOVUPD (R11), Z4
	VMOVUPD 64(R11), Z5
	VMOVUPD (R12), Z6
	VMOVUPD 64(R12), Z7

	MOVQ CX, BX
	SHRQ $1, BX              // unrolled-by-2 iteration count
	ANDQ $1, CX              // remainder k step
	TESTQ BX, BX
	JZ   tail

loop2:
	// k step 0
	VMOVUPD (SI), Z8
	VMOVUPD 64(SI), Z9
	VBROADCASTSD (DI), Z10
	VFMADD231PD Z8, Z10, Z0
	VFMADD231PD Z9, Z10, Z1
	VBROADCASTSD 8(DI), Z11
	VFMADD231PD Z8, Z11, Z2
	VFMADD231PD Z9, Z11, Z3
	VBROADCASTSD 16(DI), Z12
	VFMADD231PD Z8, Z12, Z4
	VFMADD231PD Z9, Z12, Z5
	VBROADCASTSD 24(DI), Z13
	VFMADD231PD Z8, Z13, Z6
	VFMADD231PD Z9, Z13, Z7

	// k step 1
	VMOVUPD 128(SI), Z14
	VMOVUPD 192(SI), Z15
	VBROADCASTSD 32(DI), Z16
	VFMADD231PD Z14, Z16, Z0
	VFMADD231PD Z15, Z16, Z1
	VBROADCASTSD 40(DI), Z17
	VFMADD231PD Z14, Z17, Z2
	VFMADD231PD Z15, Z17, Z3
	VBROADCASTSD 48(DI), Z18
	VFMADD231PD Z14, Z18, Z4
	VFMADD231PD Z15, Z18, Z5
	VBROADCASTSD 56(DI), Z19
	VFMADD231PD Z14, Z19, Z6
	VFMADD231PD Z15, Z19, Z7

	ADDQ $256, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  loop2

tail:
	TESTQ CX, CX
	JZ   done

	VMOVUPD (SI), Z8
	VMOVUPD 64(SI), Z9
	VBROADCASTSD (DI), Z10
	VFMADD231PD Z8, Z10, Z0
	VFMADD231PD Z9, Z10, Z1
	VBROADCASTSD 8(DI), Z11
	VFMADD231PD Z8, Z11, Z2
	VFMADD231PD Z9, Z11, Z3
	VBROADCASTSD 16(DI), Z12
	VFMADD231PD Z8, Z12, Z4
	VFMADD231PD Z9, Z12, Z5
	VBROADCASTSD 24(DI), Z13
	VFMADD231PD Z8, Z13, Z6
	VFMADD231PD Z9, Z13, Z7

done:
	VMOVUPD Z0, (R9)
	VMOVUPD Z1, 64(R9)
	VMOVUPD Z2, (R10)
	VMOVUPD Z3, 64(R10)
	VMOVUPD Z4, (R11)
	VMOVUPD Z5, 64(R11)
	VMOVUPD Z6, (R12)
	VMOVUPD Z7, 64(R12)
	VZEROUPPER
	RET
