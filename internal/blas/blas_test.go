package blas

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveGemm is an index-by-index reference used to validate Gemm.
func naiveGemm(transA, transB byte, m, n, k int, alpha float64, a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	at := func(i, l int) float64 {
		if transA == Trans {
			return a[l+i*lda]
		}
		return a[i+l*lda]
	}
	bt := func(l, j int) float64 {
		if transB == Trans {
			return b[j+l*ldb]
		}
		return b[l+j*ldb]
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			s := 0.0
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i+j*ldc] = alpha*s + beta*c[i+j*ldc]
		}
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestGemmAgainstNaiveAllTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, ta := range []byte{NoTrans, Trans} {
		for _, tb := range []byte{NoTrans, Trans} {
			m, n, k := 7, 5, 9
			lda, ldb, ldc := 11, 12, 9
			a := randSlice(rng, lda*12)
			b := randSlice(rng, ldb*12)
			c := randSlice(rng, ldc*n)
			cRef := append([]float64(nil), c...)
			alpha, beta := 1.3, -0.7
			if err := Dgemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc); err != nil {
				t.Fatalf("ta=%c tb=%c: %v", ta, tb, err)
			}
			naiveGemm(ta, tb, m, n, k, alpha, a, lda, b, ldb, beta, cRef, ldc)
			if d := maxAbsDiff(c, cRef); d > 1e-12 {
				t.Errorf("ta=%c tb=%c: max diff %g", ta, tb, d)
			}
		}
	}
}

func TestGemmBetaZeroOverwritesNaN(t *testing.T) {
	// beta=0 must overwrite C even if it held NaN (BLAS semantics).
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c := []float64{math.NaN(), math.NaN(), math.NaN(), math.NaN()}
	if err := Dgemm(NoTrans, NoTrans, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2); err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if math.IsNaN(v) {
			t.Fatalf("c[%d] still NaN", i)
		}
	}
	// Spot check: c[0] = 1*5 + 3*6 = 23 (column major).
	if c[0] != 23 {
		t.Errorf("c[0] = %v, want 23", c[0])
	}
}

func TestGemmIdentity(t *testing.T) {
	n := 6
	eye := make([]float64, n*n)
	for i := 0; i < n; i++ {
		eye[i+i*n] = 1
	}
	rng := rand.New(rand.NewSource(4))
	b := randSlice(rng, n*n)
	c := make([]float64, n*n)
	if err := Dgemm(NoTrans, NoTrans, n, n, n, 1, eye, n, b, n, 0, c, n); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(c, b); d > 1e-15 {
		t.Errorf("I*B != B, diff %g", d)
	}
}

func TestGemmDegenerateDims(t *testing.T) {
	// Zero dimensions are legal no-ops.
	if err := Dgemm(NoTrans, NoTrans, 0, 0, 0, 1, nil, 1, nil, 1, 1, nil, 1); err != nil {
		t.Errorf("zero-dim gemm: %v", err)
	}
	c := []float64{1, 2, 3, 4}
	// k=0 with beta=2: C *= 2.
	if err := Dgemm(NoTrans, NoTrans, 2, 2, 0, 1, nil, 2, nil, 2, 2, c, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6, 8}
	if d := maxAbsDiff(c, want); d != 0 {
		t.Errorf("k=0 scaling: %v", c)
	}
}

func TestGemmValidation(t *testing.T) {
	a := make([]float64, 16)
	cases := []struct {
		name string
		err  error
	}{
		{"bad transA", Dgemm('X', NoTrans, 2, 2, 2, 1, a, 4, a, 4, 0, a, 4)},
		{"bad transB", Dgemm(NoTrans, 'Q', 2, 2, 2, 1, a, 4, a, 4, 0, a, 4)},
		{"negative m", Dgemm(NoTrans, NoTrans, -1, 2, 2, 1, a, 4, a, 4, 0, a, 4)},
		{"small lda", Dgemm(NoTrans, NoTrans, 4, 2, 2, 1, a, 2, a, 4, 0, a, 4)},
		{"short A", Dgemm(NoTrans, NoTrans, 4, 4, 4, 1, a[:3], 4, a, 4, 0, a, 4)},
		{"short C", Dgemm(NoTrans, NoTrans, 4, 4, 2, 1, a[:8], 4, a[:8], 4, 0, a[:7], 4)},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		} else if !errors.Is(c.err, ErrShape) {
			t.Errorf("%s: error %v is not ErrShape", c.name, c.err)
		}
	}
}

func TestSgemmSinglePrecision(t *testing.T) {
	a := []float32{1, 2, 3, 4}
	b := []float32{1, 0, 0, 1}
	c := make([]float32, 4)
	if err := Sgemm(NoTrans, NoTrans, 2, 2, 2, 1, a, 2, b, 2, 0, c, 2); err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if c[i] != a[i] {
			t.Fatalf("A*I: c=%v", c)
		}
	}
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{10, 20, 30}
	if err := Daxpy(3, 2, x, 1, y, 1); err != nil {
		t.Fatal(err)
	}
	want := []float64{12, 24, 36}
	if d := maxAbsDiff(y, want); d != 0 {
		t.Errorf("axpy: %v", y)
	}
	// alpha = 0 is a no-op.
	if err := Daxpy(3, 0, x, 1, y, 1); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(y, want); d != 0 {
		t.Errorf("axpy alpha=0 changed y: %v", y)
	}
}

func TestAxpyStrided(t *testing.T) {
	x := []float64{1, 99, 2, 99, 3}
	y := []float64{10, 20, 30}
	if err := Daxpy(3, 1, x, 2, y, 1); err != nil {
		t.Fatal(err)
	}
	want := []float64{11, 22, 33}
	if d := maxAbsDiff(y, want); d != 0 {
		t.Errorf("strided axpy: %v", y)
	}
}

func TestAxpyNegativeStride(t *testing.T) {
	// Negative incx reads x in reverse, per BLAS convention.
	x := []float64{3, 2, 1}
	y := []float64{0, 0, 0}
	if err := Daxpy(3, 1, x, -1, y, 1); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	if d := maxAbsDiff(y, want); d != 0 {
		t.Errorf("negative stride axpy: %v", y)
	}
}

func TestAxpyValidation(t *testing.T) {
	y := make([]float64, 3)
	if err := Daxpy(3, 1, []float64{1}, 1, y, 1); !errors.Is(err, ErrShape) {
		t.Error("short x should be ErrShape")
	}
	if err := Daxpy(3, 1, y, 0, y, 1); !errors.Is(err, ErrShape) {
		t.Error("zero stride should be ErrShape")
	}
	if err := Daxpy(-1, 1, y, 1, y, 1); !errors.Is(err, ErrShape) {
		t.Error("negative n should be ErrShape")
	}
}

func TestScalCopySwap(t *testing.T) {
	x := []float64{1, 2, 3}
	if err := Dscal(3, 3, x, 1); err != nil {
		t.Fatal(err)
	}
	if x[2] != 9 {
		t.Errorf("scal: %v", x)
	}
	y := make([]float64, 3)
	if err := Copy(3, x, 1, y, 1); err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(x, y) != 0 {
		t.Errorf("copy: %v", y)
	}
	z := []float64{-1, -2, -3}
	if err := Swap(3, y, 1, z, 1); err != nil {
		t.Fatal(err)
	}
	if z[0] != 3 || y[0] != -1 {
		t.Errorf("swap: y=%v z=%v", y, z)
	}
}

func TestDotNrm2AsumIamax(t *testing.T) {
	x := []float64{3, -4, 0}
	d, err := Ddot(3, x, 1, x, 1)
	if err != nil || d != 25 {
		t.Errorf("dot = %v, %v", d, err)
	}
	n, err := Dnrm2(3, x, 1)
	if err != nil || math.Abs(n-5) > 1e-14 {
		t.Errorf("nrm2 = %v, %v", n, err)
	}
	a, err := Asum(3, x, 1)
	if err != nil || a != 7 {
		t.Errorf("asum = %v, %v", a, err)
	}
	i, err := Iamax(3, x, 1)
	if err != nil || i != 1 {
		t.Errorf("iamax = %v, %v", i, err)
	}
	if i, _ := Iamax[float64](0, nil, 1); i != -1 {
		t.Error("iamax of empty should be -1")
	}
}

func TestNrm2NoOverflow(t *testing.T) {
	x := []float64{1e200, 1e200}
	n, err := Dnrm2(2, x, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e200 * math.Sqrt2
	if math.Abs(n-want)/want > 1e-14 {
		t.Errorf("nrm2 overflow-safe: got %g, want %g", n, want)
	}
}

func TestGemvAgainstGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, n := 6, 4
	a := randSlice(rng, m*n)
	x := randSlice(rng, n)
	y := randSlice(rng, m)
	yRef := append([]float64(nil), y...)
	if err := Dgemv(NoTrans, m, n, 2.0, a, m, x, 1, 0.5, y, 1); err != nil {
		t.Fatal(err)
	}
	// Same through gemm with n=1.
	if err := Dgemm(NoTrans, NoTrans, m, 1, n, 2.0, a, m, x, n, 0.5, yRef, m); err != nil {
		t.Fatal(err)
	}
	if d := maxAbsDiff(y, yRef); d > 1e-12 {
		t.Errorf("gemv vs gemm diff %g", d)
	}
}

func TestGemvTrans(t *testing.T) {
	// A = [1 3; 2 4] stored col-major [1 2 3 4]; A^T x with x=(1,1) = (3, 7).
	a := []float64{1, 2, 3, 4}
	x := []float64{1, 1}
	y := []float64{0, 0}
	if err := Dgemv(Trans, 2, 2, 1, a, 2, x, 1, 0, y, 1); err != nil {
		t.Fatal(err)
	}
	if y[0] != 3 || y[1] != 7 {
		t.Errorf("gemv trans: %v", y)
	}
}

func TestGer(t *testing.T) {
	a := make([]float64, 4) // 2x2 zero
	x := []float64{1, 2}
	y := []float64{3, 4}
	if err := Ger(2, 2, 1, x, 1, y, 1, a, 2); err != nil {
		t.Fatal(err)
	}
	// a[i + j*2] = x[i]*y[j]
	want := []float64{3, 6, 4, 8}
	if d := maxAbsDiff(a, want); d != 0 {
		t.Errorf("ger: %v", a)
	}
}

func TestSyrk(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n, k := 5, 3
	a := randSlice(rng, n*k)
	c := make([]float64, n*n)
	if err := Syrk[float64](NoTrans, n, k, 1, a, n, 0, c, n); err != nil {
		t.Fatal(err)
	}
	// C must be symmetric and match A*A^T.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if math.Abs(c[i+j*n]-c[j+i*n]) > 1e-12 {
				t.Fatalf("syrk not symmetric at (%d,%d)", i, j)
			}
		}
	}
	ref := make([]float64, n*n)
	naiveGemm(NoTrans, Trans, n, n, k, 1, a, n, a, n, 0, ref, n)
	if d := maxAbsDiff(c, ref); d > 1e-12 {
		t.Errorf("syrk vs naive diff %g", d)
	}
	// Trans variant: A^T A for k x n... here op dims swap.
	c2 := make([]float64, k*k)
	if err := Syrk[float64](Trans, k, n, 1, a, n, 0, c2, k); err != nil {
		t.Fatal(err)
	}
	ref2 := make([]float64, k*k)
	naiveGemm(Trans, NoTrans, k, k, n, 1, a, n, a, n, 0, ref2, k)
	if d := maxAbsDiff(c2, ref2); d > 1e-12 {
		t.Errorf("syrk trans vs naive diff %g", d)
	}
}

// Property: gemm is linear in alpha.
func TestGemmLinearityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(alphaRaw float64, seed int64) bool {
		alpha := math.Mod(alphaRaw, 8)
		r := rand.New(rand.NewSource(seed))
		m, n, k := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c1 := make([]float64, m*n)
		c2 := make([]float64, m*n)
		if Dgemm(NoTrans, NoTrans, m, n, k, alpha, a, m, b, k, 0, c1, m) != nil {
			return false
		}
		if Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c2, m) != nil {
			return false
		}
		for i := range c2 {
			c2[i] *= alpha
		}
		return maxAbsDiff(c1, c2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: (A*B)^T == B^T * A^T, exercised via the transpose flags.
func TestGemmTransposeIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a := randSlice(r, m*k)
		b := randSlice(r, k*n)
		c := make([]float64, m*n)  // C = A*B (m x n)
		ct := make([]float64, n*m) // D = B^T*A^T (n x m), expect D = C^T
		if Dgemm(NoTrans, NoTrans, m, n, k, 1, a, m, b, k, 0, c, m) != nil {
			return false
		}
		if Dgemm(Trans, Trans, n, m, k, 1, b, k, a, m, 0, ct, n) != nil {
			return false
		}
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				if math.Abs(c[i+j*m]-ct[j+i*n]) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: dot(x, x) == nrm2(x)^2 within tolerance.
func TestDotNrm2ConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(64)
		x := randSlice(r, n)
		d, err1 := Ddot(n, x, 1, x, 1)
		nm, err2 := Dnrm2(n, x, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(d-nm*nm) <= 1e-9*(1+math.Abs(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDgemm256(b *testing.B) {
	n := 256
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, n*n)
	bb := randSlice(rng, n*n)
	c := make([]float64, n*n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dgemm(NoTrans, NoTrans, n, n, n, 1, a, n, bb, n, 0, c, n)
	}
}
