// NEON micro-kernels of the blocked GEMM engine (arm64, FMLA), registered
// under KernelFMA (gemm_arm64.go).
//
// Arithmetic contract (see registry.go): FMLA contracts each multiply-add
// pair into a single rounding, so results are ULP-bounded against the
// exact oracle, not bitwise equal — but stay bitwise reproducible for a
// fixed kernel and geometry at any worker count (terms accumulate in
// increasing k order per C element).
//
// Register plan (both kernels): V0..V7 hold the C tile (two vectors per
// column), V16..V19 stream the packed A/B panels, V20 holds the current
// B broadcast. V8..V15 (callee-saved low halves in AAPCS64) are never
// touched.

#include "textflag.h"

// func dgemmKernel4x4NEON(kc int, a, b, c *float64, ldc int)
//
// a: packed A micro-panel, 4 doubles per k step (unit stride).
// b: packed B micro-panel, 4 doubles per k step, alpha folded in.
// c: 4x4 column-major block of C, leading dimension ldc (elements).
TEXT ·dgemmKernel4x4NEON(SB), NOSPLIT, $0-40
	MOVD kc+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R3
	MOVD ldc+32(FP), R4
	LSL  $3, R4, R4          // ldc in bytes

	// Column pointers of the C block.
	MOVD R3, R5              // &c[0, 0]
	ADD  R4, R5, R6          // &c[0, 1]
	ADD  R4, R6, R7          // &c[0, 2]
	ADD  R4, R7, R8          // &c[0, 3]

	// Accumulators: two 2-lane vectors per column (rows 0..1 and 2..3).
	VLD1 (R5), [V0.D2, V1.D2]
	VLD1 (R6), [V2.D2, V3.D2]
	VLD1 (R7), [V4.D2, V5.D2]
	VLD1 (R8), [V6.D2, V7.D2]

	CBZ  R0, done

loop:
	VLD1.P 32(R1), [V16.D2, V17.D2]   // a[0:2], a[2:4]
	VLD1.P 32(R2), [V18.D2, V19.D2]   // b[0:2], b[2:4]

	VDUP  V18.D[0], V20.D2
	VFMLA V20.D2, V16.D2, V0.D2
	VFMLA V20.D2, V17.D2, V1.D2
	VDUP  V18.D[1], V20.D2
	VFMLA V20.D2, V16.D2, V2.D2
	VFMLA V20.D2, V17.D2, V3.D2
	VDUP  V19.D[0], V20.D2
	VFMLA V20.D2, V16.D2, V4.D2
	VFMLA V20.D2, V17.D2, V5.D2
	VDUP  V19.D[1], V20.D2
	VFMLA V20.D2, V16.D2, V6.D2
	VFMLA V20.D2, V17.D2, V7.D2

	SUBS $1, R0, R0
	BNE  loop

done:
	VST1 [V0.D2, V1.D2], (R5)
	VST1 [V2.D2, V3.D2], (R6)
	VST1 [V4.D2, V5.D2], (R7)
	VST1 [V6.D2, V7.D2], (R8)
	RET

// func sgemmKernel8x4NEON(kc int, a, b, c *float32, ldc int)
//
// a: packed A micro-panel, 8 floats per k step (unit stride).
// b: packed B micro-panel, 4 floats per k step, alpha folded in.
// c: 8x4 column-major block of C, leading dimension ldc (elements).
TEXT ·sgemmKernel8x4NEON(SB), NOSPLIT, $0-40
	MOVD kc+0(FP), R0
	MOVD a+8(FP), R1
	MOVD b+16(FP), R2
	MOVD c+24(FP), R3
	MOVD ldc+32(FP), R4
	LSL  $2, R4, R4          // ldc in bytes

	MOVD R3, R5
	ADD  R4, R5, R6
	ADD  R4, R6, R7
	ADD  R4, R7, R8

	// Accumulators: two 4-lane vectors per column (rows 0..3 and 4..7).
	VLD1 (R5), [V0.S4, V1.S4]
	VLD1 (R6), [V2.S4, V3.S4]
	VLD1 (R7), [V4.S4, V5.S4]
	VLD1 (R8), [V6.S4, V7.S4]

	CBZ  R0, done

loop:
	VLD1.P 32(R1), [V16.S4, V17.S4]   // a[0:4], a[4:8]
	VLD1.P 16(R2), [V18.S4]           // b[0:4]

	VDUP  V18.S[0], V20.S4
	VFMLA V20.S4, V16.S4, V0.S4
	VFMLA V20.S4, V17.S4, V1.S4
	VDUP  V18.S[1], V20.S4
	VFMLA V20.S4, V16.S4, V2.S4
	VFMLA V20.S4, V17.S4, V3.S4
	VDUP  V18.S[2], V20.S4
	VFMLA V20.S4, V16.S4, V4.S4
	VFMLA V20.S4, V17.S4, V5.S4
	VDUP  V18.S[3], V20.S4
	VFMLA V20.S4, V16.S4, V6.S4
	VFMLA V20.S4, V17.S4, V7.S4

	SUBS $1, R0, R0
	BNE  loop

done:
	VST1 [V0.S4, V1.S4], (R5)
	VST1 [V2.S4, V3.S4], (R6)
	VST1 [V4.S4, V5.S4], (R7)
	VST1 [V6.S4, V7.S4], (R8)
	RET
