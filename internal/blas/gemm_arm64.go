//go:build arm64

package blas

// Native micro-kernel registration for arm64: NEON (ASIMD) is baseline
// on every arm64 Go port, so init registers the FMLA kernels
// (gemm_arm64.s) unconditionally. FMLA fuses each multiply-add pair into
// a single rounding, so both kernels carry the KernelFMA policy; the
// bitwise-exact policy on arm64 runs the portable Go micro-kernels,
// which keeps the oracle contract architecture-independent.

// dgemmKernel4x4NEON is the fused float64 kernel: a 4x4 register tile
// accumulated with FMLA over 2-lane vectors.
//
//go:noescape
func dgemmKernel4x4NEON(kc int, a, b, c *float64, ldc int)

// sgemmKernel8x4NEON is the fused float32 kernel: an 8x4 register tile
// accumulated with FMLA over 4-lane vectors.
//
//go:noescape
func sgemmKernel8x4NEON(kc int, a, b, c *float32, ldc int)

func init() {
	registerKernel64("neon", KernelFMA, 4, 4, dgemmKernel4x4NEON)
	registerKernel32("neon", KernelFMA, 8, 4, sgemmKernel8x4NEON)
}
