package blas

// This file holds the unblocked dense factorization kernels. They are the
// functional payloads of the simulated GPU's diagonal-tile kernels
// (POTRF/GETRF): the tiled factorization planners decompose a matrix into
// tile task graphs whose diagonal factorizations land here, while the
// panel solves and trailing updates reuse Trsm/Syrk/Gemm.

import (
	"errors"
	"fmt"
	"math"
)

// badWrap wraps a sentinel error with formatted detail.
func badWrap(sentinel error, format string, args ...any) error {
	return fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))
}

// ErrNotPositiveDefinite is wrapped by Potrf when a leading minor is not
// positive definite.
var ErrNotPositiveDefinite = errors.New("blas: matrix not positive definite")

// ErrSingular is wrapped by Getrf when a pivot is exactly zero.
var ErrSingular = errors.New("blas: matrix is singular")

// Potrf computes the in-place Cholesky factorization of the n x n matrix A:
// A = L*L^T (uplo Lower, L written to the lower triangle) or A = U^T*U
// (uplo Upper). Only the referenced triangle is read and written; the
// opposite triangle is left untouched.
func Potrf[F Float](uplo byte, n int, a []F, lda int) error {
	if uplo != Upper && uplo != Lower {
		return badShape("potrf: bad uplo %q", uplo)
	}
	if err := checkMatrix("A", n, n, lda, a); err != nil {
		return err
	}
	if uplo == Lower {
		for j := 0; j < n; j++ {
			// Diagonal: a[j,j] = sqrt(a[j,j] - sum_k L[j,k]²).
			var s F
			row := a[j:]
			for k := 0; k < j; k++ {
				v := row[k*lda]
				s += v * v
			}
			d := a[j+j*lda] - s
			if d <= 0 {
				return errorMinor(j)
			}
			d = F(math.Sqrt(float64(d)))
			a[j+j*lda] = d
			// Column below: L[i,j] = (a[i,j] - sum_k L[i,k]·L[j,k]) / d.
			for i := j + 1; i < n; i++ {
				var s F
				for k := 0; k < j; k++ {
					s += a[i+k*lda] * a[j+k*lda]
				}
				a[i+j*lda] = (a[i+j*lda] - s) / d
			}
		}
		return nil
	}
	// Upper: factor the transposed problem over the upper triangle.
	for j := 0; j < n; j++ {
		var s F
		col := a[j*lda : j*lda+j]
		for _, v := range col {
			s += v * v
		}
		d := a[j+j*lda] - s
		if d <= 0 {
			return errorMinor(j)
		}
		d = F(math.Sqrt(float64(d)))
		a[j+j*lda] = d
		for i := j + 1; i < n; i++ {
			var s F
			for k := 0; k < j; k++ {
				s += a[k+j*lda] * a[k+i*lda]
			}
			a[j+i*lda] = (a[j+i*lda] - s) / d
		}
	}
	return nil
}

func errorMinor(j int) error {
	return badWrap(ErrNotPositiveDefinite, "leading minor of order %d", j+1)
}

// Getrf computes the in-place unpivoted LU factorization of the n x n
// matrix A = L*U with L unit lower triangular (its unit diagonal is not
// stored) and U upper triangular. Without pivoting the factorization
// requires every leading minor to be nonsingular — callers supply
// diagonally dominant (or otherwise pivot-free) matrices, matching the
// tiled right-looking planner, which models no row exchanges.
func Getrf[F Float](n int, a []F, lda int) error {
	if err := checkMatrix("A", n, n, lda, a); err != nil {
		return err
	}
	for k := 0; k < n; k++ {
		p := a[k+k*lda]
		if p == 0 {
			return badWrap(ErrSingular, "zero pivot at %d", k)
		}
		for i := k + 1; i < n; i++ {
			l := a[i+k*lda] / p
			a[i+k*lda] = l
			for j := k + 1; j < n; j++ {
				a[i+j*lda] -= l * a[k+j*lda]
			}
		}
	}
	return nil
}
