//go:build amd64

package blas

// amd64 CPU feature probes (CPUID/XGETBV assembly in cpu_amd64.s). The
// OS check matters as much as the CPU bit: YMM state must be enabled in
// XCR0 or any VEX-encoded instruction faults.

func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// hasAVX reports CPU AVX support with OS-enabled YMM state (OSXSAVE set
// and XCR0 covering the XMM|YMM bits).
func hasAVX() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	return xcr0&0x6 == 0x6
}

// hasAVX2FMA reports AVX2 plus FMA3 support on top of hasAVX (leaf 1
// ECX bit 12 for FMA, leaf 7 EBX bit 5 for AVX2).
func hasAVX2FMA() bool {
	if !hasAVX() {
		return false
	}
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	const fma = 1 << 12
	if ecx&fma == 0 {
		return false
	}
	_, ebx, _, _ := cpuidAsm(7, 0)
	const avx2 = 1 << 5
	return ebx&avx2 != 0
}

// hasAVX512 reports AVX-512F support with OS-enabled ZMM state (XCR0
// must cover the opmask and both upper-ZMM state components on top of
// XMM|YMM, or any EVEX-encoded instruction faults).
func hasAVX512() bool {
	if !hasAVX2FMA() {
		return false
	}
	_, ebx, _, _ := cpuidAsm(7, 0)
	const avx512f = 1 << 16
	if ebx&avx512f == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	return xcr0&0xe6 == 0xe6
}
