package blas

// CPU feature handling and the kernel env override. Architecture probes
// live in cpu_GOARCH files (cpuid/xgetbv on amd64; arm64 needs none —
// NEON is baseline); this file owns the one policy decision they feed:
// which registered kernel variant a (dtype, policy) pair resolves to,
// and how COCOPELIA_BLAS_KERNEL overrides that resolution.

import (
	"fmt"
	"os"
	"runtime"
)

// KernelEnv is the environment variable that pins the micro-kernel
// variant process-wide, so tests and benchmarks can select a kernel
// deterministically regardless of what policy callers pass:
//
//	exact    pin the best bitwise-oracle kernel (native when available)
//	fma      pin the fused kernels; error if this host has none
//	neon     pin the arm64 NEON kernels; error off arm64
//	generic  pin the portable Go 4x4 kernel (no assembly at all)
//
// Unset or empty means no pin: callers get the kernel their policy asks
// for. Any other value is rejected with an error from the first call.
const KernelEnv = "COCOPELIA_BLAS_KERNEL"

// resolveKernels computes the process-wide kernel table once, from the
// registered native kernels and the KernelEnv override.
func resolveKernels() {
	kernelTab, kernelErr = resolveFromEnv(os.Getenv(KernelEnv))
}

// resolveFromEnv is the pure resolution function (tested directly): it
// maps an override value to the four (dtype, policy) kernel slots.
func resolveFromEnv(val string) ([numKernelSlots]kernelSel, error) {
	var tab [numKernelSlots]kernelSel
	g := genericSel()
	tab[slotF64Exact] = firstKernel(registered64, KernelExact, g)
	tab[slotF32Exact] = firstKernel(registered32, KernelExact, g)
	// A missing fused kernel falls back to the exact resolution, so the
	// KernelFMA policy is portable: opt-in callers run fused where the
	// host has it and bitwise-exact elsewhere.
	tab[slotF64FMA] = firstKernel(registered64, KernelFMA, tab[slotF64Exact])
	tab[slotF32FMA] = firstKernel(registered32, KernelFMA, tab[slotF32Exact])

	switch val {
	case "":
		// No pin: policy-selected resolution stands.
	case "exact":
		tab[slotF64FMA] = tab[slotF64Exact]
		tab[slotF32FMA] = tab[slotF32Exact]
	case "generic":
		for i := range tab {
			tab[i] = g
		}
	case "fma":
		// A pin must not silently fall back: error when either dtype has
		// no fused kernel on this host.
		if tab[slotF64FMA].policy != KernelFMA || tab[slotF32FMA].policy != KernelFMA {
			return tab, fmt.Errorf("blas: %s=fma: no fused micro-kernel available on this CPU (%s)", KernelEnv, runtime.GOARCH)
		}
		tab[slotF64Exact] = tab[slotF64FMA]
		tab[slotF32Exact] = tab[slotF32FMA]
	case "neon":
		n64, ok64 := kernelNamed(registered64, "neon")
		n32, ok32 := kernelNamed(registered32, "neon")
		if !ok64 || !ok32 {
			return tab, fmt.Errorf("blas: %s=neon: NEON kernels exist only on arm64 (GOARCH=%s)", KernelEnv, runtime.GOARCH)
		}
		tab = [numKernelSlots]kernelSel{n64, n64, n32, n32}
	default:
		return tab, fmt.Errorf("blas: unknown %s value %q (valid: exact, fma, neon, generic)", KernelEnv, val)
	}
	return tab, nil
}

// firstKernel returns the first registered kernel with the given policy,
// or the fallback.
func firstKernel(reg []kernelSel, policy KernelPolicy, fallback kernelSel) kernelSel {
	for _, k := range reg {
		if k.policy == policy {
			return k
		}
	}
	return fallback
}

// kernelNamed returns the registered kernel with the given variant name.
func kernelNamed(reg []kernelSel, name string) (kernelSel, bool) {
	for _, k := range reg {
		if k.name == name {
			return k, true
		}
	}
	return kernelSel{}, false
}
