//go:build amd64

package blas

// Native micro-kernel plumbing for amd64: init installs the AVX float64
// kernel (gemm_amd64.s) into the engine's dispatch hook when the CPU and
// OS support 256-bit vector state. Every other configuration — other
// architectures, pre-AVX CPUs, non-float64 element types, edge tiles —
// runs the portable Go micro-kernels, which produce the same bits.

//go:noescape
func dgemmKernel4x4AVX(kc int, a, b, c *float64, ldc int)

func cpuidAsm(op, sub uint32) (eax, ebx, ecx, edx uint32)

func xgetbvAsm() (eax, edx uint32)

// hasAVX reports CPU AVX support with OS-enabled YMM state (OSXSAVE set
// and XCR0 covering the XMM|YMM bits).
func hasAVX() bool {
	maxID, _, _, _ := cpuidAsm(0, 0)
	if maxID < 1 {
		return false
	}
	_, _, ecx, _ := cpuidAsm(1, 0)
	const osxsave = 1 << 27
	const avx = 1 << 28
	if ecx&osxsave == 0 || ecx&avx == 0 {
		return false
	}
	xcr0, _ := xgetbvAsm()
	return xcr0&0x6 == 0x6
}

func init() {
	if hasAVX() {
		dgemmKernel4x4 = dgemmKernel4x4AVX
	}
}
