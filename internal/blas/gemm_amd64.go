//go:build amd64

package blas

// Native micro-kernel registration for amd64: init installs the AVX
// exact kernel (gemm_amd64.s) and, when the CPU has AVX2+FMA3 with
// OS-enabled YMM state, the fused wide-tile kernels (gemm_fma_amd64.s)
// into the registry. Pre-AVX CPUs, non-float element types and edge
// tiles run the portable Go micro-kernels.

// dgemmKernel4x4AVX is the exact float64 kernel: VMULPD + ordered
// VADDPD per k step, bitwise identical to the oracle.
//
//go:noescape
func dgemmKernel4x4AVX(kc int, a, b, c *float64, ldc int)

// dgemmKernel8x4FMA is the fused float64 kernel: an 8x4 register tile
// accumulated with VFMADD231PD (one rounding per term).
//
//go:noescape
func dgemmKernel8x4FMA(kc int, a, b, c *float64, ldc int)

// sgemmKernel16x4FMA is the fused float32 kernel: a 16x4 register tile
// accumulated with VFMADD231PS.
//
//go:noescape
func sgemmKernel16x4FMA(kc int, a, b, c *float32, ldc int)

// dgemmKernel16x4AVX512 is the fused float64 kernel on the 512-bit
// datapath: a 16x4 register tile accumulated with EVEX VFMADD231PD.
//
//go:noescape
func dgemmKernel16x4AVX512(kc int, a, b, c *float64, ldc int)

func init() {
	if hasAVX() {
		registerKernel64("avx", KernelExact, 4, 4, dgemmKernel4x4AVX)
	}
	// Registration order is preference order within a policy
	// (resolveFromEnv picks the first match): the AVX-512 kernel beats
	// the AVX2 one wherever ZMM state exists, so it registers first.
	if hasAVX512() {
		registerKernel64("fma-avx512", KernelFMA, 16, 4, dgemmKernel16x4AVX512)
	}
	if hasAVX2FMA() {
		registerKernel64("fma-avx2", KernelFMA, 8, 4, dgemmKernel8x4FMA)
		registerKernel32("fma-avx2", KernelFMA, 16, 4, sgemmKernel16x4FMA)
	}
}
