// AVX micro-kernel of the blocked GEMM engine (float64, 4x4 micro-tile).
//
// Arithmetic contract (see microkernel.go): per-lane IEEE-754 double
// multiply (VMULPD) followed by an ordered add (VADDPD) per k step —
// deliberately NOT VFMADD, whose single rounding would break the bitwise
// equality of the engine with the GemmNaive oracle and with the portable
// Go micro-kernel used for tails and other element types.

#include "textflag.h"

// func dgemmKernel4x4AVX(kc int, a, b, c *float64, ldc int)
//
// a: packed A micro-panel, 4 doubles per k step (unit stride).
// b: packed B micro-panel, 4 doubles per k step, alpha folded in.
// c: 4x4 column-major block of C, leading dimension ldc (elements).
TEXT ·dgemmKernel4x4AVX(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8              // ldc in bytes

	// Column pointers of the C block.
	MOVQ DX, R9              // &c[0, 0]
	LEAQ (DX)(R8*1), R10     // &c[0, 1]
	LEAQ (R10)(R8*1), R11    // &c[0, 2]
	LEAQ (R11)(R8*1), R12    // &c[0, 3]

	// Accumulators: one YMM column each, loaded from C so every k-step add
	// continues the caller's running sums (bitwise identical to the
	// oracle's store-per-term loop: register round-trips are exact).
	VMOVUPD (R9), Y0
	VMOVUPD (R10), Y1
	VMOVUPD (R11), Y2
	VMOVUPD (R12), Y3

	MOVQ CX, BX
	SHRQ $2, BX              // unrolled-by-4 iteration count
	ANDQ $3, CX              // remainder k steps
	TESTQ BX, BX
	JZ   tail

loop4:
	// k step 0
	VMOVUPD (SI), Y4
	VBROADCASTSD (DI), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD 8(DI), Y6
	VMULPD Y4, Y6, Y6
	VADDPD Y6, Y1, Y1
	VBROADCASTSD 16(DI), Y7
	VMULPD Y4, Y7, Y7
	VADDPD Y7, Y2, Y2
	VBROADCASTSD 24(DI), Y8
	VMULPD Y4, Y8, Y8
	VADDPD Y8, Y3, Y3

	// k step 1
	VMOVUPD 32(SI), Y9
	VBROADCASTSD 32(DI), Y5
	VMULPD Y9, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD 40(DI), Y6
	VMULPD Y9, Y6, Y6
	VADDPD Y6, Y1, Y1
	VBROADCASTSD 48(DI), Y7
	VMULPD Y9, Y7, Y7
	VADDPD Y7, Y2, Y2
	VBROADCASTSD 56(DI), Y8
	VMULPD Y9, Y8, Y8
	VADDPD Y8, Y3, Y3

	// k step 2
	VMOVUPD 64(SI), Y4
	VBROADCASTSD 64(DI), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD 72(DI), Y6
	VMULPD Y4, Y6, Y6
	VADDPD Y6, Y1, Y1
	VBROADCASTSD 80(DI), Y7
	VMULPD Y4, Y7, Y7
	VADDPD Y7, Y2, Y2
	VBROADCASTSD 88(DI), Y8
	VMULPD Y4, Y8, Y8
	VADDPD Y8, Y3, Y3

	// k step 3
	VMOVUPD 96(SI), Y9
	VBROADCASTSD 96(DI), Y5
	VMULPD Y9, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD 104(DI), Y6
	VMULPD Y9, Y6, Y6
	VADDPD Y6, Y1, Y1
	VBROADCASTSD 112(DI), Y7
	VMULPD Y9, Y7, Y7
	VADDPD Y7, Y2, Y2
	VBROADCASTSD 120(DI), Y8
	VMULPD Y9, Y8, Y8
	VADDPD Y8, Y3, Y3

	ADDQ $128, SI
	ADDQ $128, DI
	DECQ BX
	JNZ  loop4

tail:
	TESTQ CX, CX
	JZ   done

tailloop:
	VMOVUPD (SI), Y4
	VBROADCASTSD (DI), Y5
	VMULPD Y4, Y5, Y5
	VADDPD Y5, Y0, Y0
	VBROADCASTSD 8(DI), Y6
	VMULPD Y4, Y6, Y6
	VADDPD Y6, Y1, Y1
	VBROADCASTSD 16(DI), Y7
	VMULPD Y4, Y7, Y7
	VADDPD Y7, Y2, Y2
	VBROADCASTSD 24(DI), Y8
	VMULPD Y4, Y8, Y8
	VADDPD Y8, Y3, Y3
	ADDQ $32, SI
	ADDQ $32, DI
	DECQ CX
	JNZ  tailloop

done:
	VMOVUPD Y0, (R9)
	VMOVUPD Y1, (R10)
	VMOVUPD Y2, (R11)
	VMOVUPD Y3, (R12)
	VZEROUPPER
	RET
