//go:build race

package blas

// raceEnabled reports whether this test binary was built with the race
// detector. Under race, sync.Pool.Put randomly drops objects on the
// floor (to shake out pool races), so pool-backed steady-state paths
// cannot pin zero allocations there.
const raceEnabled = true
