// Fused micro-kernels of the blocked GEMM engine (AVX2+FMA3), registered
// under KernelFMA (gemm_amd64.go).
//
// Arithmetic contract (see registry.go): each multiply-add pair contracts
// into a single VFMADD231 rounding, so results differ from the exact
// oracle by a k-scaled ULP bound — validated by the ULP differential
// tests, never by bitwise comparison. Terms still accumulate one at a
// time in increasing k order per C element, so for a fixed kernel the
// result is a pure function of (m, n, k, inputs): bitwise reproducible
// across runs and worker counts.

#include "textflag.h"

// func dgemmKernel8x4FMA(kc int, a, b, c *float64, ldc int)
//
// a: packed A micro-panel, 8 doubles per k step (unit stride).
// b: packed B micro-panel, 4 doubles per k step, alpha folded in.
// c: 8x4 column-major block of C, leading dimension ldc (elements).
//
// Register plan: Y0..Y7 hold the 8x4 C tile (two YMM per column),
// Y8/Y9 and Y14/Y15 stream A, Y10..Y13 hold B broadcasts. Per k step:
// 2 loads + 4 broadcasts feed 8 FMAs, so the loop is FMA-bound.
TEXT ·dgemmKernel8x4FMA(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $3, R8              // ldc in bytes

	// Column pointers of the C block.
	MOVQ DX, R9              // &c[0, 0]
	LEAQ (DX)(R8*1), R10     // &c[0, 1]
	LEAQ (R10)(R8*1), R11    // &c[0, 2]
	LEAQ (R11)(R8*1), R12    // &c[0, 3]

	// Accumulators: two YMM per column (rows 0..3 and 4..7).
	VMOVUPD (R9), Y0
	VMOVUPD 32(R9), Y1
	VMOVUPD (R10), Y2
	VMOVUPD 32(R10), Y3
	VMOVUPD (R11), Y4
	VMOVUPD 32(R11), Y5
	VMOVUPD (R12), Y6
	VMOVUPD 32(R12), Y7

	MOVQ CX, BX
	SHRQ $1, BX              // unrolled-by-2 iteration count
	ANDQ $1, CX              // remainder k step
	TESTQ BX, BX
	JZ   tail

loop2:
	// k step 0
	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y9
	VBROADCASTSD (DI), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VBROADCASTSD 16(DI), Y12
	VFMADD231PD Y8, Y12, Y4
	VFMADD231PD Y9, Y12, Y5
	VBROADCASTSD 24(DI), Y13
	VFMADD231PD Y8, Y13, Y6
	VFMADD231PD Y9, Y13, Y7

	// k step 1
	VMOVUPD 64(SI), Y14
	VMOVUPD 96(SI), Y15
	VBROADCASTSD 32(DI), Y10
	VFMADD231PD Y14, Y10, Y0
	VFMADD231PD Y15, Y10, Y1
	VBROADCASTSD 40(DI), Y11
	VFMADD231PD Y14, Y11, Y2
	VFMADD231PD Y15, Y11, Y3
	VBROADCASTSD 48(DI), Y12
	VFMADD231PD Y14, Y12, Y4
	VFMADD231PD Y15, Y12, Y5
	VBROADCASTSD 56(DI), Y13
	VFMADD231PD Y14, Y13, Y6
	VFMADD231PD Y15, Y13, Y7

	ADDQ $128, SI
	ADDQ $64, DI
	DECQ BX
	JNZ  loop2

tail:
	TESTQ CX, CX
	JZ   done

	VMOVUPD (SI), Y8
	VMOVUPD 32(SI), Y9
	VBROADCASTSD (DI), Y10
	VFMADD231PD Y8, Y10, Y0
	VFMADD231PD Y9, Y10, Y1
	VBROADCASTSD 8(DI), Y11
	VFMADD231PD Y8, Y11, Y2
	VFMADD231PD Y9, Y11, Y3
	VBROADCASTSD 16(DI), Y12
	VFMADD231PD Y8, Y12, Y4
	VFMADD231PD Y9, Y12, Y5
	VBROADCASTSD 24(DI), Y13
	VFMADD231PD Y8, Y13, Y6
	VFMADD231PD Y9, Y13, Y7

done:
	VMOVUPD Y0, (R9)
	VMOVUPD Y1, 32(R9)
	VMOVUPD Y2, (R10)
	VMOVUPD Y3, 32(R10)
	VMOVUPD Y4, (R11)
	VMOVUPD Y5, 32(R11)
	VMOVUPD Y6, (R12)
	VMOVUPD Y7, 32(R12)
	VZEROUPPER
	RET

// func sgemmKernel16x4FMA(kc int, a, b, c *float32, ldc int)
//
// a: packed A micro-panel, 16 floats per k step (unit stride).
// b: packed B micro-panel, 4 floats per k step, alpha folded in.
// c: 16x4 column-major block of C, leading dimension ldc (elements).
//
// Same shape as the float64 kernel with 8-wide single-precision lanes:
// two YMM per C column, 2 loads + 4 broadcasts per 8 FMAs.
TEXT ·sgemmKernel16x4FMA(SB), NOSPLIT, $0-40
	MOVQ kc+0(FP), CX
	MOVQ a+8(FP), SI
	MOVQ b+16(FP), DI
	MOVQ c+24(FP), DX
	MOVQ ldc+32(FP), R8
	SHLQ $2, R8              // ldc in bytes

	MOVQ DX, R9
	LEAQ (DX)(R8*1), R10
	LEAQ (R10)(R8*1), R11
	LEAQ (R11)(R8*1), R12

	VMOVUPS (R9), Y0
	VMOVUPS 32(R9), Y1
	VMOVUPS (R10), Y2
	VMOVUPS 32(R10), Y3
	VMOVUPS (R11), Y4
	VMOVUPS 32(R11), Y5
	VMOVUPS (R12), Y6
	VMOVUPS 32(R12), Y7

	MOVQ CX, BX
	SHRQ $1, BX
	ANDQ $1, CX
	TESTQ BX, BX
	JZ   tail

loop2:
	// k step 0
	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9
	VBROADCASTSS (DI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 4(DI), Y11
	VFMADD231PS Y8, Y11, Y2
	VFMADD231PS Y9, Y11, Y3
	VBROADCASTSS 8(DI), Y12
	VFMADD231PS Y8, Y12, Y4
	VFMADD231PS Y9, Y12, Y5
	VBROADCASTSS 12(DI), Y13
	VFMADD231PS Y8, Y13, Y6
	VFMADD231PS Y9, Y13, Y7

	// k step 1
	VMOVUPS 64(SI), Y14
	VMOVUPS 96(SI), Y15
	VBROADCASTSS 16(DI), Y10
	VFMADD231PS Y14, Y10, Y0
	VFMADD231PS Y15, Y10, Y1
	VBROADCASTSS 20(DI), Y11
	VFMADD231PS Y14, Y11, Y2
	VFMADD231PS Y15, Y11, Y3
	VBROADCASTSS 24(DI), Y12
	VFMADD231PS Y14, Y12, Y4
	VFMADD231PS Y15, Y12, Y5
	VBROADCASTSS 28(DI), Y13
	VFMADD231PS Y14, Y13, Y6
	VFMADD231PS Y15, Y13, Y7

	ADDQ $128, SI
	ADDQ $32, DI
	DECQ BX
	JNZ  loop2

tail:
	TESTQ CX, CX
	JZ   done

	VMOVUPS (SI), Y8
	VMOVUPS 32(SI), Y9
	VBROADCASTSS (DI), Y10
	VFMADD231PS Y8, Y10, Y0
	VFMADD231PS Y9, Y10, Y1
	VBROADCASTSS 4(DI), Y11
	VFMADD231PS Y8, Y11, Y2
	VFMADD231PS Y9, Y11, Y3
	VBROADCASTSS 8(DI), Y12
	VFMADD231PS Y8, Y12, Y4
	VFMADD231PS Y9, Y12, Y5
	VBROADCASTSS 12(DI), Y13
	VFMADD231PS Y8, Y13, Y6
	VFMADD231PS Y9, Y13, Y7

done:
	VMOVUPS Y0, (R9)
	VMOVUPS Y1, 32(R9)
	VMOVUPS Y2, (R10)
	VMOVUPS Y3, 32(R10)
	VMOVUPS Y4, (R11)
	VMOVUPS Y5, 32(R11)
	VMOVUPS Y6, (R12)
	VMOVUPS Y7, 32(R12)
	VZEROUPPER
	RET
