package blas

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// spdMatrix builds a symmetric positive-definite n x n matrix M·M^T + n·I.
func spdMatrix(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	m := make([]float64, n*n)
	for i := range m {
		m[i] = rng.Float64() - 0.5
	}
	a := make([]float64, n*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m[i+k*n] * m[j+k*n]
			}
			a[i+j*n] = s
		}
		a[j+j*n] += float64(n)
	}
	return a
}

func TestPotrfLowerReconstructs(t *testing.T) {
	const n = 17
	a := spdMatrix(n, 3)
	l := append([]float64(nil), a...)
	if err := Potrf(Lower, n, l, n); err != nil {
		t.Fatalf("Potrf: %v", err)
	}
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			var s float64
			for k := 0; k <= j; k++ {
				s += l[i+k*n] * l[j+k*n]
			}
			if d := math.Abs(s - a[i+j*n]); d > 1e-9 {
				t.Fatalf("L·L^T mismatch at (%d,%d): |%g - %g| = %g", i, j, s, a[i+j*n], d)
			}
		}
	}
	// The strict upper triangle must be untouched.
	for j := 1; j < n; j++ {
		for i := 0; i < j; i++ {
			if l[i+j*n] != a[i+j*n] {
				t.Fatalf("upper triangle modified at (%d,%d)", i, j)
			}
		}
	}
}

func TestPotrfUpperMatchesLower(t *testing.T) {
	const n = 11
	a := spdMatrix(n, 7)
	lo := append([]float64(nil), a...)
	up := append([]float64(nil), a...)
	if err := Potrf(Lower, n, lo, n); err != nil {
		t.Fatalf("Potrf lower: %v", err)
	}
	if err := Potrf(Upper, n, up, n); err != nil {
		t.Fatalf("Potrf upper: %v", err)
	}
	// U must equal L^T on the referenced triangles.
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if d := math.Abs(lo[i+j*n] - up[j+i*n]); d > 1e-12 {
				t.Fatalf("U != L^T at (%d,%d): %g vs %g", i, j, lo[i+j*n], up[j+i*n])
			}
		}
	}
}

func TestPotrfNotPositiveDefinite(t *testing.T) {
	a := []float64{1, 2, 2, 1} // eigenvalues 3, -1
	err := Potrf(Lower, 2, a, 2)
	if !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("want ErrNotPositiveDefinite, got %v", err)
	}
}

func TestGetrfReconstructs(t *testing.T) {
	const n = 13
	rng := rand.New(rand.NewSource(9))
	a := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64() - 0.5
	}
	// Diagonal dominance keeps every unpivoted leading minor nonsingular.
	for j := 0; j < n; j++ {
		a[j+j*n] += float64(n)
	}
	lu := append([]float64(nil), a...)
	if err := Getrf(n, lu, n); err != nil {
		t.Fatalf("Getrf: %v", err)
	}
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for k := 0; k <= min(i, j); k++ {
				l := lu[i+k*n]
				if k == i {
					l = 1
				}
				s += l * lu[k+j*n]
			}
			if d := math.Abs(s - a[i+j*n]); d > 1e-9 {
				t.Fatalf("L·U mismatch at (%d,%d): %g", i, j, d)
			}
		}
	}
}

func TestGetrfSingular(t *testing.T) {
	a := []float64{0, 1, 1, 0}
	if err := Getrf(2, a, 2); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}
