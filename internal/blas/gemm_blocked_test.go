package blas

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cocopelia/internal/parallel"
)

// bitsEqual64 reports bitwise equality of two float64 slices (NaN-safe,
// sign-of-zero-sensitive — stricter than any epsilon comparison).
func bitsEqual64(a, b []float64) int {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i
		}
	}
	return -1
}

func bitsEqual32(a, b []float32) int {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i
		}
	}
	return -1
}

// gemmCase is one differential configuration: the blocked engine (at
// several worker counts) must reproduce the GemmNaive oracle bit for bit.
type gemmCase struct {
	ta, tb      byte
	m, n, k     int
	alpha, beta float64
	// extra leading-dimension slack beyond the minimal stored rows.
	padA, padB, padC int
}

func (gc gemmCase) name() string {
	return fmt.Sprintf("%c%c_m%d_n%d_k%d_a%g_b%g_pad%d%d%d",
		gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, gc.beta, gc.padA, gc.padB, gc.padC)
}

// runGemmCase checks blocked-vs-oracle and cross-worker-count bitwise
// equality for one configuration.
func runGemmCase(t *testing.T, gc gemmCase, pools []*parallel.Pool) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(gc.m)*1_000_003 + int64(gc.n)*1009 + int64(gc.k)))
	aRows, aCols := gc.m, gc.k
	if gc.ta == Trans {
		aRows, aCols = gc.k, gc.m
	}
	bRows, bCols := gc.k, gc.n
	if gc.tb == Trans {
		bRows, bCols = gc.n, gc.k
	}
	lda, ldb, ldc := aRows+gc.padA, bRows+gc.padB, gc.m+gc.padC
	a := randSlice(rng, lda*aCols)
	b := randSlice(rng, ldb*bCols)
	c0 := randSlice(rng, ldc*gc.n)

	ref := append([]float64(nil), c0...)
	if err := GemmNaive(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a, lda, b, ldb, gc.beta, ref, ldc); err != nil {
		t.Fatalf("%s: oracle: %v", gc.name(), err)
	}

	got := append([]float64(nil), c0...)
	if err := Gemm(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a, lda, b, ldb, gc.beta, got, ldc); err != nil {
		t.Fatalf("%s: blocked: %v", gc.name(), err)
	}
	if i := bitsEqual64(got, ref); i >= 0 {
		t.Fatalf("%s: blocked differs from oracle at %d: %v != %v", gc.name(), i, got[i], ref[i])
	}

	for _, p := range pools {
		cw := append([]float64(nil), c0...)
		if err := GemmParallel(p, gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a, lda, b, ldb, gc.beta, cw, ldc); err != nil {
			t.Fatalf("%s: %d workers: %v", gc.name(), p.Workers(), err)
		}
		if i := bitsEqual64(cw, ref); i >= 0 {
			t.Fatalf("%s: %d workers differ from oracle at %d: %v != %v",
				gc.name(), p.Workers(), i, cw[i], ref[i])
		}
	}
}

// TestGemmBlockedBitwiseTable sweeps the engine's edge geometry: all four
// transpose combinations, non-minimal leading dimensions, the BLAS
// fast-path alpha/beta sentinels, and ragged shapes that are not multiples
// of the micro-tile or cache-block sizes (including a case past the NC
// panel width and one past KC in the k dimension).
func TestGemmBlockedBitwiseTable(t *testing.T) {
	pools := []*parallel.Pool{parallel.NewPool(1), parallel.NewPool(2), parallel.NewPool(8)}
	shapes := [][3]int{
		{1, 1, 1},
		{3, 5, 2},
		{gemmMR, gemmNR, 7},
		{gemmMR + 1, gemmNR + 1, gemmKC + 1},
		{gemmMC - 1, 33, 40},
		{gemmMC + 3, gemmNR*8 + 2, gemmKC*2 + 5},
		{65, gemmNC + 9, 12}, // crosses the NC panel boundary
		{127, 129, 128},
	}
	coeffs := []float64{0, 1, -0.5}
	for _, ta := range []byte{NoTrans, Trans} {
		for _, tb := range []byte{NoTrans, Trans} {
			for si, sh := range shapes {
				// Rotate through the alpha/beta grid so the table stays
				// O(shapes) while every (alpha, beta) pair is exercised.
				for ci := range coeffs {
					alpha := coeffs[(si+ci)%len(coeffs)]
					beta := coeffs[ci]
					gc := gemmCase{ta: ta, tb: tb, m: sh[0], n: sh[1], k: sh[2],
						alpha: alpha, beta: beta, padA: si % 3, padB: (si + 1) % 3, padC: (si + 2) % 3}
					runGemmCase(t, gc, pools)
				}
			}
		}
	}
}

// TestGemmBlockedBitwiseFuzz drives random shapes, strides and
// coefficients through the differential harness.
func TestGemmBlockedBitwiseFuzz(t *testing.T) {
	pools := []*parallel.Pool{parallel.NewPool(2), parallel.NewPool(8)}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		gc := gemmCase{
			ta: NoTrans, tb: NoTrans,
			m: 1 + r.Intn(90), n: 1 + r.Intn(90), k: 1 + r.Intn(90),
			alpha: [4]float64{0, 1, -0.5, r.NormFloat64()}[r.Intn(4)],
			beta:  [4]float64{0, 1, -0.5, r.NormFloat64()}[r.Intn(4)],
			padA:  r.Intn(4), padB: r.Intn(4), padC: r.Intn(4),
		}
		if r.Intn(2) == 1 {
			gc.ta = Trans
		}
		if r.Intn(2) == 1 {
			gc.tb = Trans
		}
		runGemmCase(t, gc, pools)
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestGemmBlockedFloat32 pins the float32 path (portable micro-kernel) to
// its oracle, serial and parallel.
func TestGemmBlockedFloat32(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	m, n, k := 67, 45, gemmKC+9
	a := make([]float32, m*k)
	b := make([]float32, k*n)
	c0 := make([]float32, m*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
	}
	for i := range b {
		b[i] = float32(rng.NormFloat64())
	}
	for i := range c0 {
		c0[i] = float32(rng.NormFloat64())
	}
	ref := append([]float32(nil), c0...)
	if err := GemmNaive[float32](NoTrans, Trans, m, n, k, 1.25, a, m, b, n, -0.5, ref, m); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*parallel.Pool{nil, parallel.NewPool(8)} {
		got := append([]float32(nil), c0...)
		if err := GemmParallel[float32](p, NoTrans, Trans, m, n, k, 1.25, a, m, b, n, -0.5, got, m); err != nil {
			t.Fatal(err)
		}
		if i := bitsEqual32(got, ref); i >= 0 {
			t.Fatalf("workers=%d: differs from oracle at %d: %v != %v", p.Workers(), i, got[i], ref[i])
		}
	}
}

// TestSyrkParallelBitwise checks the Syrk routing through the engine.
func TestSyrkParallelBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n, k := 70, 33
	a := randSlice(rng, n*k)
	c0 := randSlice(rng, n*n)
	for _, trans := range []byte{NoTrans, Trans} {
		nn, kk := n, k
		if trans == Trans {
			nn, kk = k, n
		}
		ref := append([]float64(nil), c0[:nn*nn]...)
		ta, tb := NoTrans, Trans
		if trans == Trans {
			ta, tb = Trans, NoTrans
		}
		if err := GemmNaive(ta, tb, nn, nn, kk, 1.5, a, n, a, n, -0.5, ref, nn); err != nil {
			t.Fatal(err)
		}
		for _, p := range []*parallel.Pool{nil, parallel.NewPool(4)} {
			got := append([]float64(nil), c0[:nn*nn]...)
			if err := SyrkParallel(p, trans, nn, kk, 1.5, a, n, -0.5, got, nn); err != nil {
				t.Fatal(err)
			}
			if i := bitsEqual64(got, ref); i >= 0 {
				t.Fatalf("trans=%c workers=%d: differs at %d", trans, p.Workers(), i)
			}
		}
	}
}

// TestGemmBlockedBetaZeroOverwritesNaN pins the BLAS beta == 0 semantics
// on the blocked path (C must be overwritten, never multiplied).
func TestGemmBlockedBetaZeroOverwritesNaN(t *testing.T) {
	n := 40
	rng := rand.New(rand.NewSource(9))
	a := randSlice(rng, n*n)
	b := randSlice(rng, n*n)
	c := make([]float64, n*n)
	for i := range c {
		c[i] = math.NaN()
	}
	if err := Gemm(NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 0, c, n); err != nil {
		t.Fatal(err)
	}
	for i, v := range c {
		if math.IsNaN(v) {
			t.Fatalf("c[%d] still NaN after beta=0 blocked gemm", i)
		}
	}
}

// TestGemmSteadyStateAllocs verifies the sync.Pool-backed packing buffers:
// after a warm-up call, serial blocked Gemm performs no allocations.
func TestGemmSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool randomly drops Puts, so the packing buffers cannot pin 0 allocs")
	}
	n := 160 // above the small-problem cutoff, ragged against MC/KC
	rng := rand.New(rand.NewSource(11))
	a := randSlice(rng, n*n)
	b := randSlice(rng, n*n)
	c := make([]float64, n*n)
	_ = Gemm(NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	allocs := testing.AllocsPerRun(5, func() {
		_ = Gemm(NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	})
	if allocs > 0 {
		t.Errorf("steady-state blocked Gemm allocates %.1f objects/op, want 0", allocs)
	}
}
