package blas

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"cocopelia/internal/parallel"
)

// registeredFMA reports whether a fused kernel is registered for the
// dtype's list on this host.
func registeredFMA(reg []kernelSel) bool {
	for _, k := range reg {
		if k.policy == KernelFMA {
			return true
		}
	}
	return false
}

// resetKernels clears the one-time kernel resolution so a test can
// exercise the env-override pathway end to end; the cleanup re-clears it
// so later tests resolve from the restored environment.
func resetKernels(t *testing.T) {
	t.Helper()
	kernelOnce = sync.Once{}
	t.Cleanup(func() { kernelOnce = sync.Once{} })
}

// magBound64 returns the per-element magnitude bound of a gemm call:
// |beta||C0| + sum_l |alpha * op(A)[i,l] * op(B)[l,j]|, computed by the
// oracle over absolute values. The fused kernels' deviation from the
// exact oracle is a small k-scaled multiple of eps times this bound.
func magBound64(gc gemmCase, a []float64, lda int, b []float64, ldb int, c0 []float64, ldc int) []float64 {
	absv := func(x []float64) []float64 {
		y := make([]float64, len(x))
		for i, v := range x {
			y[i] = math.Abs(v)
		}
		return y
	}
	mag := absv(c0)
	if err := GemmNaive(gc.ta, gc.tb, gc.m, gc.n, gc.k, math.Abs(gc.alpha),
		absv(a), lda, absv(b), ldb, math.Abs(gc.beta), mag, ldc); err != nil {
		panic(err)
	}
	return mag
}

// ulpCheck64 asserts |got-ref| <= 4*(k+2)*eps*mag element-wise. Elements
// with zero magnitude must match exactly (a fused kernel cannot conjure
// a nonzero from zero terms).
func ulpCheck64(t *testing.T, tag string, k int, got, ref, mag []float64) {
	t.Helper()
	bound := 4 * float64(k+2) * 0x1p-52
	for i := range got {
		if diff := math.Abs(got[i] - ref[i]); diff > bound*mag[i] {
			t.Fatalf("%s: element %d outside ULP bound: got %v, oracle %v (|diff|=%g > %g)",
				tag, i, got[i], ref[i], diff, bound*mag[i])
		}
	}
}

// runFMACase64 checks one float64 configuration: the fused engine must be
// ULP-bounded against the oracle and bitwise identical across worker
// counts (the blocking schedule is partition-independent).
func runFMACase64(t *testing.T, gc gemmCase, pools []*parallel.Pool) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(gc.m)*2_000_003 + int64(gc.n)*1013 + int64(gc.k)))
	aRows, aCols := gc.m, gc.k
	if gc.ta == Trans {
		aRows, aCols = gc.k, gc.m
	}
	bRows, bCols := gc.k, gc.n
	if gc.tb == Trans {
		bRows, bCols = gc.n, gc.k
	}
	lda, ldb, ldc := aRows+gc.padA, bRows+gc.padB, gc.m+gc.padC
	if lda < 1 {
		lda = 1
	}
	if ldb < 1 {
		ldb = 1
	}
	a := randSlice(rng, max(1, lda*aCols))
	b := randSlice(rng, max(1, ldb*bCols))
	c0 := randSlice(rng, ldc*gc.n)

	ref := append([]float64(nil), c0...)
	if err := GemmNaive(gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a, lda, b, ldb, gc.beta, ref, ldc); err != nil {
		t.Fatalf("%s: oracle: %v", gc.name(), err)
	}
	mag := magBound64(gc, a, lda, b, ldb, c0, ldc)

	got := append([]float64(nil), c0...)
	if err := GemmPolicy(KernelFMA, gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a, lda, b, ldb, gc.beta, got, ldc); err != nil {
		t.Fatalf("%s: fma: %v", gc.name(), err)
	}
	ulpCheck64(t, gc.name(), gc.k, got, ref, mag)

	for _, p := range pools {
		cw := append([]float64(nil), c0...)
		if err := GemmParallelPolicy(p, KernelFMA, gc.ta, gc.tb, gc.m, gc.n, gc.k, gc.alpha, a, lda, b, ldb, gc.beta, cw, ldc); err != nil {
			t.Fatalf("%s: fma %d workers: %v", gc.name(), p.Workers(), err)
		}
		if i := bitsEqual64(cw, got); i >= 0 {
			t.Fatalf("%s: fma result not bitwise identical at %d workers (element %d: %v != %v)",
				gc.name(), p.Workers(), i, cw[i], got[i])
		}
	}
}

// TestGemmFMADifferentialULP64 sweeps the fused float64 kernel over all
// transpose combinations, odd-tail shapes (m, n, k not multiples of
// MR/NR/KC), alpha/beta edge cases and worker counts 1/2/8.
func TestGemmFMADifferentialULP64(t *testing.T) {
	if !registeredFMA(registered64) {
		t.Skip("no fused float64 kernel on this host")
	}
	pools := []*parallel.Pool{parallel.NewPool(1), parallel.NewPool(2), parallel.NewPool(8)}
	shapes := [][3]int{
		{1, 1, 1},                              // small-problem cutoff path
		{8, 4, 64},                             // exact multiples of the 8x4 tile
		{9, 5, 67},                             // one past every tile edge
		{gemmMC + 5, 3*gemmNR + 1, gemmKC + 3}, // ragged against MC/NR/KC
		{2*gemmMC - 7, 65, 2*gemmKC + 1},       // multi-block with k tail
		{37, 129, 40},
	}
	coeffs := []float64{0, 1, -0.5, 0.75}
	for _, ta := range []byte{NoTrans, Trans} {
		for _, tb := range []byte{NoTrans, Trans} {
			for si, sh := range shapes {
				for ci := range coeffs {
					gc := gemmCase{ta: ta, tb: tb, m: sh[0], n: sh[1], k: sh[2],
						alpha: coeffs[(si+ci)%len(coeffs)], beta: coeffs[ci],
						padA: si % 3, padB: (si + 1) % 3, padC: (si + 2) % 3}
					runFMACase64(t, gc, pools)
				}
			}
		}
	}
}

// TestGemmFMADifferentialULP32 is the float32 fused-kernel differential:
// ULP-bounded against the float32 oracle and bitwise across workers.
func TestGemmFMADifferentialULP32(t *testing.T) {
	if !registeredFMA(registered32) {
		t.Skip("no fused float32 kernel on this host")
	}
	pools := []*parallel.Pool{parallel.NewPool(2), parallel.NewPool(8)}
	shapes := [][3]int{
		{16, 4, 64}, // exact multiples of the 16x4 tile
		{17, 5, 67}, // odd tails
		{gemmMC + 9, 33, gemmKC + 5},
		{130, 129, 96},
	}
	type cfg struct{ ta, tb byte }
	for _, tt := range []cfg{{NoTrans, NoTrans}, {Trans, NoTrans}, {NoTrans, Trans}, {Trans, Trans}} {
		for si, sh := range shapes {
			m, n, k := sh[0], sh[1], sh[2]
			alpha, beta := float32(1.25), float32(-0.5)
			if si%2 == 1 {
				alpha, beta = 0.75, 0
			}
			rng := rand.New(rand.NewSource(int64(m)*31 + int64(si)))
			aRows, aCols := m, k
			if tt.ta == Trans {
				aRows, aCols = k, m
			}
			bRows, bCols := k, n
			if tt.tb == Trans {
				bRows, bCols = n, k
			}
			a := make([]float32, aRows*aCols)
			b := make([]float32, bRows*bCols)
			c0 := make([]float32, m*n)
			for i := range a {
				a[i] = float32(rng.NormFloat64())
			}
			for i := range b {
				b[i] = float32(rng.NormFloat64())
			}
			for i := range c0 {
				c0[i] = float32(rng.NormFloat64())
			}
			ref := append([]float32(nil), c0...)
			if err := GemmNaive(tt.ta, tt.tb, m, n, k, alpha, a, aRows, b, bRows, beta, ref, m); err != nil {
				t.Fatal(err)
			}
			// Magnitude bound over absolute values, in float32 like the data.
			absv := func(x []float32) []float32 {
				y := make([]float32, len(x))
				for i, v := range x {
					y[i] = float32(math.Abs(float64(v)))
				}
				return y
			}
			mag := absv(c0)
			if err := GemmNaive(tt.ta, tt.tb, m, n, k, float32(math.Abs(float64(alpha))),
				absv(a), aRows, absv(b), bRows, float32(math.Abs(float64(beta))), mag, m); err != nil {
				t.Fatal(err)
			}
			got := append([]float32(nil), c0...)
			if err := GemmPolicy(KernelFMA, tt.ta, tt.tb, m, n, k, alpha, a, aRows, b, bRows, beta, got, m); err != nil {
				t.Fatal(err)
			}
			bound := 4 * float64(k+2) * 0x1p-23
			for i := range got {
				if diff := math.Abs(float64(got[i]) - float64(ref[i])); diff > bound*float64(mag[i]) {
					t.Fatalf("%c%c m=%d n=%d k=%d: element %d outside ULP bound: got %v, oracle %v",
						tt.ta, tt.tb, m, n, k, i, got[i], ref[i])
				}
			}
			for _, p := range pools {
				cw := append([]float32(nil), c0...)
				if err := GemmParallelPolicy(p, KernelFMA, tt.ta, tt.tb, m, n, k, alpha, a, aRows, b, bRows, beta, cw, m); err != nil {
					t.Fatal(err)
				}
				if i := bitsEqual32(cw, got); i >= 0 {
					t.Fatalf("%c%c m=%d n=%d k=%d: fma float32 not bitwise identical at %d workers (element %d)",
						tt.ta, tt.tb, m, n, k, p.Workers(), i)
				}
			}
		}
	}
}

// TestSyrkPolicyFMA routes Syrk through the fused engine and checks the
// ULP bound against the exact Syrk result.
func TestSyrkPolicyFMA(t *testing.T) {
	if !registeredFMA(registered64) {
		t.Skip("no fused float64 kernel on this host")
	}
	rng := rand.New(rand.NewSource(41))
	n, k := 70, 65
	a := randSlice(rng, n*k)
	c0 := randSlice(rng, n*n)
	for _, trans := range []byte{NoTrans, Trans} {
		nn, kk := n, k
		ta, tb := NoTrans, Trans
		if trans == Trans {
			nn, kk = k, n
			ta, tb = Trans, NoTrans
		}
		gc := gemmCase{ta: ta, tb: tb, m: nn, n: nn, k: kk, alpha: 1.5, beta: -0.5}
		ref := append([]float64(nil), c0[:nn*nn]...)
		if err := GemmNaive(ta, tb, nn, nn, kk, 1.5, a, n, a, n, -0.5, ref, nn); err != nil {
			t.Fatal(err)
		}
		mag := magBound64(gc, a, n, a, n, c0[:nn*nn], nn)
		for _, p := range []*parallel.Pool{nil, parallel.NewPool(4)} {
			got := append([]float64(nil), c0[:nn*nn]...)
			if err := SyrkParallelPolicy(p, KernelFMA, trans, nn, kk, 1.5, a, n, -0.5, got, nn); err != nil {
				t.Fatal(err)
			}
			ulpCheck64(t, "syrk-fma", kk, got, ref, mag)
		}
	}
}

// TestGemmPolicyExactMatchesGemm pins that the explicit KernelExact
// policy is the same code path as the default entry points, bit for bit.
func TestGemmPolicyExactMatchesGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	a := randSlice(rng, n*n)
	b := randSlice(rng, n*n)
	c0 := randSlice(rng, n*n)
	want := append([]float64(nil), c0...)
	if err := Gemm(NoTrans, Trans, n, n, n, 1.25, a, n, b, n, -0.5, want, n); err != nil {
		t.Fatal(err)
	}
	got := append([]float64(nil), c0...)
	if err := GemmPolicy(KernelExact, NoTrans, Trans, n, n, n, 1.25, a, n, b, n, -0.5, got, n); err != nil {
		t.Fatal(err)
	}
	if i := bitsEqual64(got, want); i >= 0 {
		t.Fatalf("GemmPolicy(KernelExact) differs from Gemm at element %d", i)
	}
}

// TestKernelResolution drives the pure resolver over every defined
// override value.
func TestKernelResolution(t *testing.T) {
	tab, err := resolveFromEnv("")
	if err != nil {
		t.Fatalf("empty override: %v", err)
	}
	if got := tab[slotF64Exact].policy; got != KernelExact {
		t.Errorf("f64 exact slot resolved to policy %v", got)
	}
	if registeredFMA(registered64) && tab[slotF64FMA].policy != KernelFMA {
		t.Errorf("f64 fma slot did not resolve to a fused kernel (got %q)", tab[slotF64FMA].name)
	}
	if !registeredFMA(registered64) && tab[slotF64FMA].name != tab[slotF64Exact].name {
		t.Errorf("without a fused kernel the fma slot must fall back to exact, got %q", tab[slotF64FMA].name)
	}

	tab, err = resolveFromEnv("generic")
	if err != nil {
		t.Fatalf("generic override: %v", err)
	}
	for i, sel := range tab {
		if sel.name != "generic" || sel.f64 != nil || sel.f32 != nil {
			t.Errorf("generic override slot %d resolved to %q", i, sel.name)
		}
	}

	tab, err = resolveFromEnv("exact")
	if err != nil {
		t.Fatalf("exact override: %v", err)
	}
	if tab[slotF64FMA].name != tab[slotF64Exact].name || tab[slotF32FMA].name != tab[slotF32Exact].name {
		t.Errorf("exact override must pin fma slots to the exact kernels")
	}

	tab, err = resolveFromEnv("fma")
	if registeredFMA(registered64) && registeredFMA(registered32) {
		if err != nil {
			t.Fatalf("fma override on an FMA host: %v", err)
		}
		for i, sel := range tab {
			if sel.policy != KernelFMA {
				t.Errorf("fma override slot %d resolved to policy %v (%q)", i, sel.policy, sel.name)
			}
		}
	} else if err == nil {
		t.Errorf("fma override without fused kernels must error")
	}

	if _, ok := kernelNamed(registered64, "neon"); !ok {
		if _, err := resolveFromEnv("neon"); err == nil || !strings.Contains(err.Error(), "arm64") {
			t.Errorf("neon override off arm64: want an error naming arm64, got %v", err)
		}
	}

	if _, err := resolveFromEnv("avx512wat"); err == nil ||
		!strings.Contains(err.Error(), KernelEnv) || !strings.Contains(err.Error(), "avx512wat") {
		t.Errorf("unknown override: want an error naming the variable and value, got %v", err)
	}
}

// TestKernelEnvPinEndToEnd exercises the env override through the real
// resolution path: an unknown value must fail the first Gemm call with a
// clear error, and a valid pin must change what SelectedKernel reports.
func TestKernelEnvPinEndToEnd(t *testing.T) {
	resetKernels(t)
	t.Setenv(KernelEnv, "definitely-not-a-kernel")
	n := 32
	a := make([]float64, n*n)
	c := make([]float64, n*n)
	err := Gemm(NoTrans, NoTrans, n, n, n, 1, a, n, a, n, 0, c, n)
	if err == nil || !strings.Contains(err.Error(), "definitely-not-a-kernel") {
		t.Fatalf("Gemm under an unknown kernel pin: want a clear error, got %v", err)
	}

	kernelOnce = sync.Once{}
	t.Setenv(KernelEnv, "generic")
	name, err := SelectedKernel[float64](KernelFMA)
	if err != nil || name != "generic" {
		t.Fatalf("generic pin: SelectedKernel = %q, %v", name, err)
	}
	if err := Gemm(NoTrans, NoTrans, n, n, n, 1, a, n, a, n, 0, c, n); err != nil {
		t.Fatalf("Gemm under generic pin: %v", err)
	}
}

// TestSelectedKernelNames sanity-checks the reported variant names on
// this host.
func TestSelectedKernelNames(t *testing.T) {
	exact, err := SelectedKernel[float64](KernelExact)
	if err != nil {
		t.Fatal(err)
	}
	if exact != "generic" && exact != "avx" {
		t.Errorf("f64 exact kernel %q: want generic or avx", exact)
	}
	if registeredFMA(registered64) {
		fma, err := SelectedKernel[float64](KernelFMA)
		if err != nil {
			t.Fatal(err)
		}
		if fma == exact {
			t.Errorf("f64 fma kernel resolved to the exact kernel %q on an FMA host", fma)
		}
	}
	// Exotic named float types always run the portable generic kernel.
	type myFloat float64
	name, err := SelectedKernel[myFloat](KernelFMA)
	if err != nil || name != "generic" {
		t.Errorf("named float type: SelectedKernel = %q, %v (want generic)", name, err)
	}
}

// TestGemmDispatchAllocs extends the steady-state zero-alloc gate to the
// registry dispatch path, for both policies.
func TestGemmDispatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool randomly drops Puts, so the packing buffers cannot pin 0 allocs")
	}
	n := 160
	rng := rand.New(rand.NewSource(13))
	a := randSlice(rng, n*n)
	b := randSlice(rng, n*n)
	c := make([]float64, n*n)
	for _, policy := range []KernelPolicy{KernelExact, KernelFMA} {
		_ = GemmPolicy(policy, NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		allocs := testing.AllocsPerRun(5, func() {
			_ = GemmPolicy(policy, NoTrans, NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
		})
		if allocs > 0 {
			t.Errorf("steady-state GemmPolicy(%v) allocates %.1f objects/op, want 0", policy, allocs)
		}
	}
}

// TestKernelPolicyString pins the env-override spellings.
func TestKernelPolicyString(t *testing.T) {
	if KernelExact.String() != "exact" || KernelFMA.String() != "fma" {
		t.Errorf("policy strings: %q, %q", KernelExact, KernelFMA)
	}
	if s := KernelPolicy(7).String(); !strings.Contains(s, "7") {
		t.Errorf("out-of-range policy string %q", s)
	}
}
