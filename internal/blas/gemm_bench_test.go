package blas

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"cocopelia/internal/parallel"
)

// gemmGFLOPs reports the achieved GFLOP/s for b.N square-n GEMMs.
func gemmGFLOPs(b *testing.B, n int) {
	b.Helper()
	flops := 2 * float64(n) * float64(n) * float64(n)
	b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

func benchSquareDgemm(b *testing.B, n int, run func(a, bm, c []float64)) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, n*n)
	bm := randSlice(rng, n*n)
	c := make([]float64, n*n)
	run(a, bm, c) // warm up packing buffers so steady state is measured
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run(a, bm, c)
	}
	gemmGFLOPs(b, n)
}

// BenchmarkDgemm measures the blocked engine, single worker, at the
// paper's tiling-relevant sizes (T = 256..2048). The n=1024 case is the
// PR acceptance gate against BenchmarkDgemmNaive.
func BenchmarkDgemm(b *testing.B) {
	for _, n := range []int{256, 512, 1024, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSquareDgemm(b, n, func(a, bm, c []float64) {
				_ = Dgemm(NoTrans, NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
			})
		})
	}
}

// BenchmarkDgemmNaive is the pre-engine reference loop at the acceptance
// size, kept for before/after comparisons.
func BenchmarkDgemmNaive(b *testing.B) {
	n := 1024
	benchSquareDgemm(b, n, func(a, bm, c []float64) {
		_ = GemmNaive(NoTrans, NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
	})
}

// BenchmarkDgemmParallel measures the engine fanned out over a worker
// pool (results stay bitwise identical to the serial run).
func BenchmarkDgemmParallel(b *testing.B) {
	pool := parallel.NewPool(runtime.GOMAXPROCS(0))
	for _, n := range []int{1024, 2048} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			benchSquareDgemm(b, n, func(a, bm, c []float64) {
				_ = GemmParallel(pool, NoTrans, NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
			})
		})
	}
}

// BenchmarkDgemmTrans exercises the packing paths that normalize
// transposed operands into the same streaming layout.
func BenchmarkDgemmTrans(b *testing.B) {
	n := 512
	for _, tt := range []struct{ ta, tb byte }{{Trans, NoTrans}, {NoTrans, Trans}, {Trans, Trans}} {
		b.Run(fmt.Sprintf("%c%c", tt.ta, tt.tb), func(b *testing.B) {
			benchSquareDgemm(b, n, func(a, bm, c []float64) {
				_ = Dgemm(tt.ta, tt.tb, n, n, n, 1, a, n, bm, n, 0, c, n)
			})
		})
	}
}

// BenchmarkSgemm measures the float32 path (portable micro-kernel).
func BenchmarkSgemm(b *testing.B) {
	n := 512
	rng := rand.New(rand.NewSource(1))
	a := make([]float32, n*n)
	bm := make([]float32, n*n)
	c := make([]float32, n*n)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		bm[i] = float32(rng.NormFloat64())
	}
	_ = Sgemm(NoTrans, NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Sgemm(NoTrans, NoTrans, n, n, n, 1, a, n, bm, n, 0, c, n)
	}
	gemmGFLOPs(b, n)
}
