// Package cublasxt implements a comparator library that mirrors the
// documented behaviour of NVIDIA's cuBLASXt, the state-of-practice
// automatic offload library the paper evaluates against:
//
//   - square tiling with a caller-supplied tile size (cuBLASXt exposes
//     cublasXtSetBlockDim; it does not select the tile size itself);
//   - a fixed number of worker streams with bounded per-stream staging
//     buffers, each stream pipelining fetch -> compute -> write-back for
//     the output tiles assigned to it round-robin (overlap comes from
//     different workers being in different pipeline phases);
//   - NO cross-sub-kernel data reuse: input tiles are re-fetched for every
//     sub-kernel that needs them, so A crosses the link ~N/T times and B
//     ~M/T times — the transfer inefficiency BLASX and CoCoPeLia fix.
//
// Data-location awareness: operands already resident on the device are
// used in place (cuBLASXt accepts device pointers too).
package cublasxt

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
)

// DefaultStreams is the number of worker streams (cuBLASXt uses a small
// fixed pool per GPU).
const DefaultStreams = 4

// slotRole identifies a worker's staging slot.
type slotRole int

const (
	slotA slotRole = iota
	slotB
	slotC
)

// worker is one pipeline stream with its bounded staging buffers.
type worker struct {
	stream *cudart.Stream
	slots  map[slotRole]*cudart.DevBuffer
}

// Handle is the cublasXt-like context: worker streams and their staging
// buffers, reused across calls.
type Handle struct {
	rt      *cudart.Runtime
	workers []*worker
	backed  bool
}

// New creates a handle with the given number of worker streams (0 selects
// DefaultStreams). backed selects functional runs.
func New(rt *cudart.Runtime, streams int, backed bool) *Handle {
	if streams <= 0 {
		streams = DefaultStreams
	}
	h := &Handle{rt: rt, backed: backed}
	for i := 0; i < streams; i++ {
		h.workers = append(h.workers, &worker{
			stream: rt.NewStream(),
			slots:  map[slotRole]*cudart.DevBuffer{},
		})
	}
	return h
}

// Runtime returns the underlying runtime.
func (h *Handle) Runtime() *cudart.Runtime { return h.rt }

// slot returns the worker's staging buffer for the role, (re)allocating
// when the needed capacity grows. In-stream ordering makes reuse safe: the
// next fetch into a slot is enqueued after the kernels that read it.
func (h *Handle) slot(w *worker, role slotRole, dt kernelmodel.Dtype, elems int64) (*cudart.DevBuffer, error) {
	if b := w.slots[role]; b != nil {
		if b.Dtype() == dt && b.Elems() >= elems {
			return b, nil
		}
		if err := h.rt.Free(b); err != nil {
			return nil, err
		}
		delete(w.slots, role)
	}
	b, err := h.rt.Malloc(dt, elems, h.backed)
	if err != nil {
		return nil, err
	}
	w.slots[role] = b
	return b, nil
}

// ReleaseAll frees all staging buffers.
func (h *Handle) ReleaseAll() error {
	for _, w := range h.workers {
		for role, b := range w.slots {
			if err := h.rt.Free(b); err != nil {
				return err
			}
			delete(w.slots, role)
		}
	}
	return nil
}

// GemmOpts parameterizes a cublasXt-like gemm call.
type GemmOpts struct {
	Dtype       kernelmodel.Dtype
	M, N, K     int
	Alpha, Beta float64
	A, B, C     *operand.Matrix
	// T is the block dimension (cublasXtSetBlockDim); required.
	T int
}

// Gemm executes C = alpha*A*B + beta*C with cuBLASXt-style tiling: output
// tiles round-robin across worker streams, inputs re-fetched per
// sub-kernel.
func (h *Handle) Gemm(opts GemmOpts) (operand.Result, error) {
	if opts.M <= 0 || opts.N <= 0 || opts.K <= 0 {
		return operand.Result{}, fmt.Errorf("cublasxt: non-positive dims %dx%dx%d", opts.M, opts.N, opts.K)
	}
	if opts.T <= 0 {
		return operand.Result{}, fmt.Errorf("cublasxt: non-positive block dim %d", opts.T)
	}
	dt := opts.Dtype
	if err := opts.A.Validate("A", dt, h.backed); err != nil {
		return operand.Result{}, err
	}
	if err := opts.B.Validate("B", dt, h.backed); err != nil {
		return operand.Result{}, err
	}
	if err := opts.C.Validate("C", dt, h.backed); err != nil {
		return operand.Result{}, err
	}
	if opts.A.Rows != opts.M || opts.A.Cols != opts.K ||
		opts.B.Rows != opts.K || opts.B.Cols != opts.N ||
		opts.C.Rows != opts.M || opts.C.Cols != opts.N {
		return operand.Result{}, errors.New("cublasxt: operand shapes inconsistent with m, n, k")
	}

	T := opts.T
	mt := ceil(opts.M, T)
	nt := ceil(opts.N, T)
	kt := ceil(opts.K, T)
	res := operand.Result{T: T}
	start := h.rt.Now()

	// Pre-size every staging slot to a full TxT tile before enqueuing any
	// work: a mid-run reallocation would free a buffer still referenced by
	// in-flight asynchronous operations. For very large tiles, fewer
	// workers participate so the staging always fits device memory (real
	// cuBLASXt likewise bounds its workspace).
	var groupBytes int64
	if opts.A.Loc == model.OnHost {
		groupBytes += int64(min(T, opts.M)) * int64(min(T, opts.K)) * dt.Size()
	}
	if opts.B.Loc == model.OnHost {
		groupBytes += int64(min(T, opts.K)) * int64(min(T, opts.N)) * dt.Size()
	}
	if opts.C.Loc == model.OnHost {
		groupBytes += int64(min(T, opts.M)) * int64(min(T, opts.N)) * dt.Size()
	}
	workers := h.workers
	if groupBytes > 0 {
		free := h.rt.Device().Testbed().GPU.MemBytes - h.rt.Device().MemUsed()
		if byMem := int(free / (groupBytes + groupBytes/8)); byMem < len(workers) {
			if byMem < 1 {
				byMem = 1
			}
			// Release staging held by the excluded workers from earlier
			// calls so the remaining ones can grow.
			for _, w := range h.workers[byMem:] {
				for role, b := range w.slots {
					if err := h.rt.Free(b); err != nil {
						return operand.Result{}, err
					}
					delete(w.slots, role)
				}
			}
			workers = h.workers[:byMem]
		}
	}
	for _, w := range workers {
		if opts.A.Loc == model.OnHost {
			if _, err := h.slot(w, slotA, dt, int64(min(T, opts.M))*int64(min(T, opts.K))); err != nil {
				return operand.Result{}, err
			}
		}
		if opts.B.Loc == model.OnHost {
			if _, err := h.slot(w, slotB, dt, int64(min(T, opts.K))*int64(min(T, opts.N))); err != nil {
				return operand.Result{}, err
			}
		}
		if opts.C.Loc == model.OnHost {
			if _, err := h.slot(w, slotC, dt, int64(min(T, opts.M))*int64(min(T, opts.N))); err != nil {
				return operand.Result{}, err
			}
		}
	}

	// stageIn copies a host tile into the worker's staging slot (in-stream
	// ordering provides the reuse dependency), or returns an in-place view
	// for device-resident operands.
	stageIn := func(w *worker, m *operand.Matrix, role slotRole, row, col, rows, cols int, fetch bool) (*cudart.DevBuffer, int64, int, error) {
		if m.Loc == model.OnDevice {
			return m.Dev, int64(row) + int64(col)*int64(m.DevLd), m.DevLd, nil
		}
		buf, err := h.slot(w, role, dt, int64(rows)*int64(cols))
		if err != nil {
			return nil, 0, 0, err
		}
		if fetch {
			h64, h32 := m.HostSlices(row, col)
			if _, err := w.stream.SetMatrixAsync(rows, cols, h64, h32, m.HostLd, buf, 0, rows); err != nil {
				return nil, 0, 0, err
			}
			res.BytesH2D += int64(rows) * int64(cols) * dt.Size()
		}
		return buf, 0, rows, nil
	}

	tileIdx := 0
	for tj := 0; tj < nt; tj++ {
		for ti := 0; ti < mt; ti++ {
			w := workers[tileIdx%len(workers)]
			tileIdx++
			rows := min(T, opts.M-ti*T)
			cols := min(T, opts.N-tj*T)

			fetchC := opts.Beta != 0
			cBuf, cOff, cLd, err := stageIn(w, opts.C, slotC, ti*T, tj*T, rows, cols, fetchC)
			if err != nil {
				return operand.Result{}, err
			}
			for tk := 0; tk < kt; tk++ {
				inner := min(T, opts.K-tk*T)
				// Inputs are re-fetched for every sub-kernel: no reuse.
				aBuf, aOff, aLd, err := stageIn(w, opts.A, slotA, ti*T, tk*T, rows, inner, true)
				if err != nil {
					return operand.Result{}, err
				}
				bBuf, bOff, bLd, err := stageIn(w, opts.B, slotB, tk*T, tj*T, inner, cols, true)
				if err != nil {
					return operand.Result{}, err
				}
				beta := 1.0
				if tk == 0 {
					beta = opts.Beta
					if opts.C.Loc == model.OnHost && !fetchC {
						beta = 0
					}
				}
				if _, err := w.stream.GemmAsync(blas.NoTrans, blas.NoTrans,
					rows, cols, inner, opts.Alpha,
					aBuf, aOff, aLd, bBuf, bOff, bLd,
					beta, cBuf, cOff, cLd); err != nil {
					return operand.Result{}, err
				}
				res.Subkernels++
			}
			if opts.C.Loc == model.OnHost {
				h64, h32 := opts.C.HostSlices(ti*T, tj*T)
				if _, err := w.stream.GetMatrixAsync(rows, cols, cBuf, cOff, cLd, h64, h32, opts.C.HostLd); err != nil {
					return operand.Result{}, err
				}
				res.BytesD2H += int64(rows) * int64(cols) * dt.Size()
			}
		}
	}

	end, err := h.rt.Sync()
	if err != nil {
		return operand.Result{}, err
	}
	res.Seconds = end - start
	return res, nil
}

func ceil(a, b int) int { return (a + b - 1) / b }
