package cublasxt

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/sim"
)

func newHandle(backed bool, streams int) *Handle {
	eng := sim.New()
	dev := device.New(eng, machine.TestbedI(), 1, true)
	return New(cudart.New(dev), streams, backed)
}

func randMat(rng *rand.Rand, rows, cols int) []float64 {
	s := make([]float64, rows*cols)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestGemmFunctionalAllCombos(t *testing.T) {
	for _, combo := range model.LocCombos(3) {
		h := newHandle(true, 3)
		m, n, k, T := 96, 64, 80, 32
		rng := rand.New(rand.NewSource(5))
		hostA := randMat(rng, m, k)
		hostB := randMat(rng, k, n)
		hostC := randMat(rng, m, n)
		ref := append([]float64(nil), hostC...)
		if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1.5, hostA, m, hostB, k, 0.5, ref, m); err != nil {
			t.Fatal(err)
		}
		mat := func(rows, cols int, host []float64, loc model.Loc) *operand.Matrix {
			if loc == model.OnHost {
				return operand.HostMatrix(rows, cols, host)
			}
			buf, err := h.rt.Malloc(kernelmodel.F64, int64(rows*cols), true)
			if err != nil {
				t.Fatal(err)
			}
			s := h.rt.NewStream()
			if _, err := s.MemcpyH2DAsync(buf, 0, host, nil, int64(rows*cols)); err != nil {
				t.Fatal(err)
			}
			if _, err := h.rt.Sync(); err != nil {
				t.Fatal(err)
			}
			return &operand.Matrix{Rows: rows, Cols: cols, Loc: model.OnDevice, Dev: buf, DevLd: rows}
		}
		A := mat(m, k, hostA, combo[0])
		B := mat(k, n, hostB, combo[1])
		C := mat(m, n, hostC, combo[2])
		if _, err := h.Gemm(GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: n, K: k, Alpha: 1.5, Beta: 0.5,
			A: A, B: B, C: C, T: T,
		}); err != nil {
			t.Fatalf("combo %v: %v", combo, err)
		}
		got := hostC
		if combo[2] == model.OnDevice {
			got = make([]float64, m*n)
			s := h.rt.NewStream()
			if _, err := s.MemcpyD2HAsync(got, nil, C.Dev, 0, int64(m*n)); err != nil {
				t.Fatal(err)
			}
			if _, err := h.rt.Sync(); err != nil {
				t.Fatal(err)
			}
		}
		var d float64
		for i := range ref {
			d = math.Max(d, math.Abs(got[i]-ref[i]))
		}
		if d > 1e-10 {
			t.Errorf("combo %v: result differs by %g", combo, d)
		}
	}
}

func TestGemmNoReuseTransferVolume(t *testing.T) {
	// cuBLASXt re-fetches inputs per sub-kernel: h2d volume must be
	// A*nt + B*mt + C (full offload), far above the reuse-aware |A|+|B|+|C|.
	h := newHandle(false, 4)
	m, T := 512, 128 // mt = nt = kt = 4
	A := operand.HostMatrix(m, m, nil)
	B := operand.HostMatrix(m, m, nil)
	C := operand.HostMatrix(m, m, nil)
	res, err := h.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: A, B: B, C: C, T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	matBytes := int64(m*m) * 8
	want := matBytes*4 + matBytes*4 + matBytes // A*nt + B*mt + C
	if res.BytesH2D != want {
		t.Errorf("h2d bytes = %d, want %d (no reuse)", res.BytesH2D, want)
	}
	if res.BytesD2H != matBytes {
		t.Errorf("d2h bytes = %d, want %d", res.BytesD2H, matBytes)
	}
	if res.Subkernels != 64 {
		t.Errorf("subkernels = %d, want 64", res.Subkernels)
	}
}

func TestStagingMemoryBounded(t *testing.T) {
	// Device memory must stay at the staging-slot footprint, not the
	// transfer volume.
	h := newHandle(false, 4)
	m, T := 2048, 512
	_, err := h.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(m, m, nil),
		B: operand.HostMatrix(m, m, nil),
		C: operand.HostMatrix(m, m, nil),
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	slotBytes := int64(T*T) * 8
	maxStaging := slotBytes * 3 * 4 // 3 slots x 4 workers
	if peak := h.rt.Device().MemPeak(); peak > maxStaging {
		t.Errorf("staging peak %d exceeds bound %d", peak, maxStaging)
	}
	if err := h.ReleaseAll(); err != nil {
		t.Fatal(err)
	}
	if used := h.rt.Device().MemUsed(); used != 0 {
		t.Errorf("ReleaseAll left %d bytes", used)
	}
}

func TestMoreStreamsOverlapBetter(t *testing.T) {
	// A single worker serializes fetch/compute; four workers pipeline.
	run := func(streams int) float64 {
		h := newHandle(false, streams)
		m := 4096
		res, err := h.Gemm(GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
			A: operand.HostMatrix(m, m, nil),
			B: operand.HostMatrix(m, m, nil),
			C: operand.HostMatrix(m, m, nil),
			T: 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	if t4, t1 := run(4), run(1); t4 >= t1 {
		t.Errorf("4 streams (%g) should beat 1 stream (%g)", t4, t1)
	}
}

func TestValidation(t *testing.T) {
	h := newHandle(false, 2)
	ok := operand.HostMatrix(64, 64, nil)
	cases := []GemmOpts{
		{Dtype: kernelmodel.F64, M: 0, N: 64, K: 64, A: ok, B: ok, C: ok, T: 32},
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64, A: ok, B: ok, C: ok, T: 0},
		{Dtype: kernelmodel.F64, M: 64, N: 64, K: 64, A: nil, B: ok, C: ok, T: 32},
		{Dtype: kernelmodel.F64, M: 32, N: 64, K: 64, A: ok, B: ok, C: ok, T: 32},
	}
	for i, opts := range cases {
		if _, err := h.Gemm(opts); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDefaultStreams(t *testing.T) {
	h := newHandle(false, 0)
	if len(h.workers) != DefaultStreams {
		t.Errorf("workers = %d, want %d", len(h.workers), DefaultStreams)
	}
}

func TestHugeTilesClampWorkers(t *testing.T) {
	// A tile near the problem size would need 4 workers x 3 slots of
	// ~1.2 GB each — more than the K40's memory. The handle must shrink
	// its worker set and still run (the regression behind the paper-scale
	// Fig. 1 sweep).
	h := newHandle(false, 4)
	m, T := 16384, 12032
	res, err := h.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(m, m, nil),
		B: operand.HostMatrix(m, m, nil),
		C: operand.HostMatrix(m, m, nil),
		T: T,
	})
	if err != nil {
		t.Fatalf("huge-tile gemm failed: %v", err)
	}
	if res.Subkernels != 8 { // ceil(16384/12032)^3 = 2^3
		t.Errorf("subkernels = %d, want 8", res.Subkernels)
	}
	dev := h.rt.Device()
	if dev.MemPeak() > dev.Testbed().GPU.MemBytes {
		t.Errorf("peak %d exceeds device memory", dev.MemPeak())
	}
}

func TestHugeTileSingleTileDegenerate(t *testing.T) {
	// T >= every dimension: one sub-kernel, serial offload, still correct
	// functionally.
	h := newHandle(true, 4)
	m := 48
	rng := rand.New(rand.NewSource(71))
	hostA := randMat(rng, m, m)
	hostB := randMat(rng, m, m)
	hostC := make([]float64, m*m)
	ref := make([]float64, m*m)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, m, m, 1, hostA, m, hostB, m, 0, ref, m); err != nil {
		t.Fatal(err)
	}
	res, err := h.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 0,
		A: operand.HostMatrix(m, m, hostA),
		B: operand.HostMatrix(m, m, hostB),
		C: operand.HostMatrix(m, m, hostC),
		T: 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Subkernels != 1 {
		t.Errorf("subkernels = %d, want 1", res.Subkernels)
	}
	var d float64
	for i := range ref {
		d = math.Max(d, math.Abs(hostC[i]-ref[i]))
	}
	if d > 1e-10 {
		t.Errorf("single-tile result differs by %g", d)
	}
}
