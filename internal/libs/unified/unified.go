// Package unified implements the unified-memory daxpy baseline the paper
// compares CoCoPeLia's level-1 path against: a CUDA-unified-memory
// implementation with prefetching.
//
// Unified memory migrates data at page granularity. With
// cudaMemPrefetchAsync the input pages stream to the device ahead of the
// kernels (overlapping h2d with compute at a fixed prefetch granularity),
// but the written output pages migrate back on demand only when the host
// touches them — after the computation — so the d2h traffic does not
// overlap with compute. The small prefetch granularity also pays the
// per-transfer latency far more often than an explicitly tiled scheduler.
package unified

import (
	"errors"
	"fmt"

	"cocopelia/internal/cudart"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
)

// PrefetchElems is the prefetch granularity in float64 elements (2 MiB,
// the unified-memory migration chunk commonly used with prefetch hints).
const PrefetchElems = (2 << 20) / 8

// Daxpy executes y += alpha*x through the unified-memory path and reports
// the run. Operands already resident on the device need no migration.
func Daxpy(rt *cudart.Runtime, n int, alpha float64, x, y *operand.Vector, backed bool) (operand.Result, error) {
	if n <= 0 {
		return operand.Result{}, fmt.Errorf("unified: non-positive length %d", n)
	}
	if err := x.Validate("x", backed); err != nil {
		return operand.Result{}, err
	}
	if err := y.Validate("y", backed); err != nil {
		return operand.Result{}, err
	}
	if x.N != n || y.N != n {
		return operand.Result{}, errors.New("unified: vector lengths inconsistent with n")
	}

	res := operand.Result{T: PrefetchElems}
	start := rt.Now()
	prefetch := rt.NewStream()
	compute := rt.NewStream()
	writeback := rt.NewStream()

	// Managed mirrors of host-resident operands.
	var xBuf, yBuf *cudart.DevBuffer
	var err error
	if x.Loc == model.OnDevice {
		xBuf = x.Dev
	} else if xBuf, err = rt.Malloc(kernelmodel.F64, int64(n), backed); err != nil {
		return operand.Result{}, err
	}
	if y.Loc == model.OnDevice {
		yBuf = y.Dev
	} else if yBuf, err = rt.Malloc(kernelmodel.F64, int64(n), backed); err != nil {
		return operand.Result{}, err
	}

	chunks := (n + PrefetchElems - 1) / PrefetchElems
	for ci := 0; ci < chunks; ci++ {
		off := ci * PrefetchElems
		cn := min(PrefetchElems, n-off)

		ready := cudart.DoneEvent()
		// Prefetch the chunk's pages of every host-resident operand.
		if x.Loc == model.OnHost {
			var host []float64
			if x.HostF64 != nil {
				host = x.HostF64[off:]
			}
			if _, err := prefetch.MemcpyH2DAsync(xBuf, int64(off), host, nil, int64(cn)); err != nil {
				return operand.Result{}, err
			}
			res.BytesH2D += int64(cn) * 8
			ready = prefetch.Record()
		}
		if y.Loc == model.OnHost {
			var host []float64
			if y.HostF64 != nil {
				host = y.HostF64[off:]
			}
			if _, err := prefetch.MemcpyH2DAsync(yBuf, int64(off), host, nil, int64(cn)); err != nil {
				return operand.Result{}, err
			}
			res.BytesH2D += int64(cn) * 8
			ready = prefetch.Record()
		}
		compute.WaitEvent(ready)
		if _, err := compute.AxpyAsync(cn, alpha, xBuf, int64(off), yBuf, int64(off)); err != nil {
			return operand.Result{}, err
		}
		res.Subkernels++
	}

	// On-demand migration back: the host touches y only after the whole
	// kernel sequence, so the d2h chunks all queue behind the final
	// kernel — no overlap with compute.
	if y.Loc == model.OnHost {
		writeback.WaitEvent(compute.Record())
		for ci := 0; ci < chunks; ci++ {
			off := ci * PrefetchElems
			cn := min(PrefetchElems, n-off)
			var host []float64
			if y.HostF64 != nil {
				host = y.HostF64[off:]
			}
			if _, err := writeback.MemcpyD2HAsync(host, nil, yBuf, int64(off), int64(cn)); err != nil {
				return operand.Result{}, err
			}
			res.BytesD2H += int64(cn) * 8
		}
	}

	end, err := rt.Sync()
	if err != nil {
		return operand.Result{}, err
	}
	// Managed mirrors are transient per call.
	if x.Loc == model.OnHost {
		if err := rt.Free(xBuf); err != nil {
			return operand.Result{}, err
		}
	}
	if y.Loc == model.OnHost {
		if err := rt.Free(yBuf); err != nil {
			return operand.Result{}, err
		}
	}
	res.Seconds = end - start
	return res, nil
}
