package unified

import (
	"math"
	"testing"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/operand"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
)

func newRT() *cudart.Runtime {
	eng := sim.New()
	return cudart.New(device.New(eng, machine.TestbedII(), 1, true))
}

func TestDaxpyFunctional(t *testing.T) {
	rt := newRT()
	n := 3 * PrefetchElems / 2 // exercises a ragged final chunk
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i % 97)
		y[i] = 1
	}
	res, err := Daxpy(rt, n, 3, operand.HostVector(n, x), operand.HostVector(n, y), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		want := 1 + 3*float64(i%97)
		if math.Abs(y[i]-want) > 1e-12 {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], want)
		}
	}
	if res.Subkernels != 2 {
		t.Errorf("chunks = %d, want 2", res.Subkernels)
	}
	if want := int64(2*n) * 8; res.BytesH2D != want {
		t.Errorf("h2d = %d, want %d", res.BytesH2D, want)
	}
	if want := int64(n) * 8; res.BytesD2H != want {
		t.Errorf("d2h = %d, want %d", res.BytesD2H, want)
	}
	if rt.Device().MemUsed() != 0 {
		t.Error("managed mirrors not freed")
	}
}

func TestDaxpyDeviceResidentNoTraffic(t *testing.T) {
	rt := newRT()
	n := PrefetchElems
	mk := func() *operand.Vector {
		buf, err := rt.Malloc(kernelmodel.F64, int64(n), false)
		if err != nil {
			t.Fatal(err)
		}
		return &operand.Vector{N: n, Loc: model.OnDevice, Dev: buf}
	}
	res, err := Daxpy(rt, n, 2, mk(), mk(), false)
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesH2D != 0 || res.BytesD2H != 0 {
		t.Errorf("device-resident daxpy moved %d/%d bytes", res.BytesH2D, res.BytesD2H)
	}
}

func TestDaxpySlowerThanCoCoPeLia(t *testing.T) {
	// The paper's comparison: explicit tiled 3-way overlap must beat the
	// unified-memory path for the full-offload scenario, because unified
	// memory cannot overlap the write-back with compute and pays far more
	// per-transfer latencies.
	n := 64 << 20
	runUM := func() float64 {
		rt := newRT()
		res, err := Daxpy(rt, n, 2, operand.HostVector(n, nil), operand.HostVector(n, nil), false)
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	runCoco := func() float64 {
		rt := newRT()
		ctx := sched.NewContext(rt, false)
		res, err := ctx.Axpy(sched.AxpyOpts{
			N: n, Alpha: 2,
			X: operand.HostVector(n, nil),
			Y: operand.HostVector(n, nil),
			T: 8 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	um, coco := runUM(), runCoco()
	if coco >= um {
		t.Errorf("cocopelia daxpy (%g) should beat unified memory (%g)", coco, um)
	}
}

func TestDaxpyValidation(t *testing.T) {
	rt := newRT()
	v := operand.HostVector(100, nil)
	if _, err := Daxpy(rt, 0, 1, v, v, false); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := Daxpy(rt, 100, 1, nil, v, false); err == nil {
		t.Error("nil x should error")
	}
	w := operand.HostVector(50, nil)
	if _, err := Daxpy(rt, 100, 1, v, w, false); err == nil {
		t.Error("length mismatch should error")
	}
}
