// Package blasx implements a comparator library modeled on BLASX (Wang et
// al. [8]), the reuse-aware multi-GPU BLAS the paper evaluates against:
//
//   - a runtime tile-management engine with a device-resident tile cache,
//     so input tiles cross the link once (like CoCoPeLia, unlike
//     cuBLASXt) — here provided by the shared tile scheduler;
//   - a STATIC tile size, fixed at compile time to T = 2048 (the paper
//     uses this value for its BLASX baseline), clamped to the problem;
//   - a small per-task dispatch overhead for the runtime tile-map
//     management that BLASX performs on every sub-kernel;
//   - compute-blocking output write-backs: BLASX's tile manager confirms
//     each completed output tile's host copy before recycling the cache
//     slot, so write-back traffic partially serializes with compute —
//     unlike CoCoPeLia's fully asynchronous d2h stream.
package blasx

import (
	"cocopelia/internal/cudart"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/operand"
	"cocopelia/internal/sched"
)

// StaticT is BLASX's compile-time tile size.
const StaticT = 2048

// DispatchOverheadS models the runtime tile-management cost per sub-kernel.
const DispatchOverheadS = 4e-6

// Library is a BLASX-style handle. It reuses device buffers and streams
// across calls.
type Library struct {
	ctx *sched.Context
}

// New creates a BLASX-style library on the runtime.
func New(rt *cudart.Runtime, backed bool) *Library {
	ctx := sched.NewContext(rt, backed)
	ctx.SetDispatchOverhead(DispatchOverheadS)
	ctx.SetBlockingWriteback(true)
	return &Library{ctx: ctx}
}

// Runtime returns the underlying runtime.
func (l *Library) Runtime() *cudart.Runtime { return l.ctx.Runtime() }

// ReleaseAll frees the pooled tile buffers.
func (l *Library) ReleaseAll() error { return l.ctx.ReleaseAll() }

// TileFor returns the static tile size clamped to the problem dimensions.
func TileFor(m, n, k int) int {
	t := StaticT
	for _, d := range []int{m, n, k} {
		if d < t {
			t = d
		}
	}
	return t
}

// GemmOpts parameterizes a BLASX-style gemm call. There is no tile-size
// parameter: BLASX fixes it statically.
type GemmOpts struct {
	Dtype       kernelmodel.Dtype
	M, N, K     int
	Alpha, Beta float64
	A, B, C     *operand.Matrix
}

// Gemm executes C = alpha*A*B + beta*C with the static tile size.
func (l *Library) Gemm(opts GemmOpts) (operand.Result, error) {
	return l.ctx.Gemm(sched.GemmOpts{
		Dtype: opts.Dtype,
		M:     opts.M, N: opts.N, K: opts.K,
		Alpha: opts.Alpha, Beta: opts.Beta,
		A: opts.A, B: opts.B, C: opts.C,
		T: TileFor(opts.M, opts.N, opts.K),
	})
}
