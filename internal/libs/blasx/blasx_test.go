package blasx

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/operand"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
)

func newLib(backed bool) *Library {
	eng := sim.New()
	dev := device.New(eng, machine.TestbedI(), 1, true)
	return New(cudart.New(dev), backed)
}

func TestTileFor(t *testing.T) {
	if TileFor(8192, 8192, 8192) != StaticT {
		t.Error("large problems use the static tile")
	}
	if TileFor(1024, 8192, 8192) != 1024 {
		t.Error("tile clamps to the smallest dimension")
	}
}

func TestGemmFunctional(t *testing.T) {
	l := newLib(true)
	m, n, k := 96, 80, 64
	rng := rand.New(rand.NewSource(1))
	hostA := make([]float64, m*k)
	hostB := make([]float64, k*n)
	hostC := make([]float64, m*n)
	for i := range hostA {
		hostA[i] = rng.NormFloat64()
	}
	for i := range hostB {
		hostB[i] = rng.NormFloat64()
	}
	ref := append([]float64(nil), hostC...)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, hostA, m, hostB, k, 0, ref, m); err != nil {
		t.Fatal(err)
	}
	res, err := l.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: n, K: k, Alpha: 1, Beta: 0,
		A: operand.HostMatrix(m, k, hostA),
		B: operand.HostMatrix(k, n, hostB),
		C: operand.HostMatrix(m, n, hostC),
	})
	if err != nil {
		t.Fatal(err)
	}
	var d float64
	for i := range ref {
		d = math.Max(d, math.Abs(hostC[i]-ref[i]))
	}
	if d > 1e-10 {
		t.Errorf("result differs by %g", d)
	}
	if res.T != 64 {
		t.Errorf("tile = %d, want clamp to 64", res.T)
	}
}

func TestStaticTileUsedForLargeProblem(t *testing.T) {
	l := newLib(false)
	m := 4096
	res, err := l.Gemm(GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(m, m, nil),
		B: operand.HostMatrix(m, m, nil),
		C: operand.HostMatrix(m, m, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.T != StaticT {
		t.Errorf("tile = %d, want %d", res.T, StaticT)
	}
	// Reuse-aware transfer volume.
	if want := int64(3*m*m) * 8; res.BytesH2D != want {
		t.Errorf("h2d = %d, want %d (reuse)", res.BytesH2D, want)
	}
}

func TestDispatchOverheadSlowsVsCoCoPeLia(t *testing.T) {
	// At the same tile size, BLASX's dispatch overhead must make it
	// slower than the plain CoCoPeLia scheduler.
	m := 4096
	runBlasx := func() float64 {
		l := newLib(false)
		res, err := l.Gemm(GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
			A: operand.HostMatrix(m, m, nil),
			B: operand.HostMatrix(m, m, nil),
			C: operand.HostMatrix(m, m, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	runCoco := func() float64 {
		eng := sim.New()
		dev := device.New(eng, machine.TestbedI(), 1, true)
		ctx := sched.NewContext(cudart.New(dev), false)
		res, err := ctx.Gemm(sched.GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
			A: operand.HostMatrix(m, m, nil),
			B: operand.HostMatrix(m, m, nil),
			C: operand.HostMatrix(m, m, nil),
			T: StaticT,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	if b, c := runBlasx(), runCoco(); b <= c {
		t.Errorf("blasx (%g) should be slower than cocopelia at same T (%g)", b, c)
	}
}
