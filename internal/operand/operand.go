// Package operand defines the operand descriptors and result types shared
// by all GPU BLAS library implementations in this repository (the
// CoCoPeLia tile scheduler and the cuBLASXt-, BLASX- and unified-memory-
// style comparators).
package operand

import (
	"fmt"

	"cocopelia/internal/cudart"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/model"
)

// Matrix describes one column-major matrix operand and where it initially
// resides. Host-resident operands carry host storage (which may be nil in
// timing-only runs); device-resident operands carry a full-matrix device
// buffer.
type Matrix struct {
	Rows, Cols int
	Loc        model.Loc
	// Host storage (Loc == OnHost); exactly one of the two slices is used,
	// matching the routine dtype. Nil slices are legal in timing-only runs.
	HostF64 []float64
	HostF32 []float32
	HostLd  int
	// Device storage (Loc == OnDevice).
	Dev   *cudart.DevBuffer
	DevLd int
}

// HostMatrix returns a host-resident descriptor over float64 storage with
// a packed leading dimension (nil storage for timing-only runs).
func HostMatrix(rows, cols int, data []float64) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Loc: model.OnHost, HostF64: data, HostLd: rows}
}

// Validate checks the descriptor for the routine dtype. backed requires
// host storage to actually be present and large enough.
func (m *Matrix) Validate(name string, dt kernelmodel.Dtype, backed bool) error {
	if m == nil {
		return fmt.Errorf("operand: %s is nil", name)
	}
	if m.Rows <= 0 || m.Cols <= 0 {
		return fmt.Errorf("operand: %s has non-positive shape %dx%d", name, m.Rows, m.Cols)
	}
	if m.Loc == model.OnHost {
		if m.HostLd < m.Rows {
			return fmt.Errorf("operand: %s host ld %d < rows %d", name, m.HostLd, m.Rows)
		}
		if backed {
			need := (m.Cols-1)*m.HostLd + m.Rows
			if dt == kernelmodel.F64 && len(m.HostF64) < need {
				return fmt.Errorf("operand: %s host storage too short", name)
			}
			if dt == kernelmodel.F32 && len(m.HostF32) < need {
				return fmt.Errorf("operand: %s host storage too short", name)
			}
		}
		return nil
	}
	if m.Dev == nil {
		return fmt.Errorf("operand: %s on device without a buffer", name)
	}
	if m.DevLd < m.Rows {
		return fmt.Errorf("operand: %s device ld %d < rows %d", name, m.DevLd, m.Rows)
	}
	if m.Dev.Dtype() != dt {
		return fmt.Errorf("operand: %s device buffer dtype mismatch", name)
	}
	return nil
}

// HostSlices returns the host storage slices offset to (row, col), or nil
// slices when storage is absent (timing-only).
func (m *Matrix) HostSlices(row, col int) (f64 []float64, f32 []float32) {
	off := row + col*m.HostLd
	if m.HostF64 != nil {
		f64 = m.HostF64[off:]
	}
	if m.HostF32 != nil {
		f32 = m.HostF32[off:]
	}
	return f64, f32
}

// Vector describes one vector operand for the level-1 routines.
type Vector struct {
	N       int
	Loc     model.Loc
	HostF64 []float64
	Dev     *cudart.DevBuffer
}

// HostVector returns a host-resident float64 vector descriptor.
func HostVector(n int, data []float64) *Vector {
	return &Vector{N: n, Loc: model.OnHost, HostF64: data}
}

// Validate checks the descriptor. backed requires host storage.
func (v *Vector) Validate(name string, backed bool) error {
	if v == nil {
		return fmt.Errorf("operand: %s is nil", name)
	}
	if v.N <= 0 {
		return fmt.Errorf("operand: %s has non-positive length %d", name, v.N)
	}
	if v.Loc == model.OnHost {
		if backed && len(v.HostF64) < v.N {
			return fmt.Errorf("operand: %s host storage too short", name)
		}
		return nil
	}
	if v.Dev == nil {
		return fmt.Errorf("operand: %s on device without a buffer", name)
	}
	return nil
}

// Result reports one routine invocation's execution.
type Result struct {
	// Seconds is the virtual makespan of the call (enqueue to drain).
	Seconds float64
	// T is the tiling size used.
	T int
	// Subkernels is the number of GPU kernels launched.
	Subkernels int64
	// BytesH2D and BytesD2H are the payload bytes moved per direction.
	BytesH2D, BytesD2H int64
}

// Gflops returns the achieved GFLOP/s for a gemm of the given dimensions.
func (r Result) Gflops(m, n, k int) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return 2 * float64(m) * float64(n) * float64(k) / r.Seconds / 1e9
}
