package operand

import (
	"testing"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/sim"
)

func devBuffer(t *testing.T, dt kernelmodel.Dtype, elems int64) *cudart.DevBuffer {
	t.Helper()
	eng := sim.New()
	rt := cudart.New(device.New(eng, machine.TestbedI(), 1, true))
	buf, err := rt.Malloc(dt, elems, false)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestHostMatrixConstructor(t *testing.T) {
	data := make([]float64, 12)
	m := HostMatrix(3, 4, data)
	if m.Rows != 3 || m.Cols != 4 || m.HostLd != 3 || m.Loc != model.OnHost {
		t.Errorf("descriptor wrong: %+v", m)
	}
	if err := m.Validate("A", kernelmodel.F64, true); err != nil {
		t.Error(err)
	}
}

func TestMatrixValidate(t *testing.T) {
	cases := []struct {
		name string
		m    *Matrix
		dt   kernelmodel.Dtype
		back bool
		ok   bool
	}{
		{"nil", nil, kernelmodel.F64, false, false},
		{"bad shape", &Matrix{Rows: 0, Cols: 4, Loc: model.OnHost, HostLd: 1}, kernelmodel.F64, false, false},
		{"bad ld", &Matrix{Rows: 4, Cols: 4, Loc: model.OnHost, HostLd: 2}, kernelmodel.F64, false, false},
		{"timing ok", &Matrix{Rows: 4, Cols: 4, Loc: model.OnHost, HostLd: 4}, kernelmodel.F64, false, true},
		{"backed short", &Matrix{Rows: 4, Cols: 4, Loc: model.OnHost, HostLd: 4, HostF64: make([]float64, 5)}, kernelmodel.F64, true, false},
		{"backed ok", &Matrix{Rows: 4, Cols: 4, Loc: model.OnHost, HostLd: 4, HostF64: make([]float64, 16)}, kernelmodel.F64, true, true},
		{"backed f32 short", &Matrix{Rows: 4, Cols: 4, Loc: model.OnHost, HostLd: 4, HostF32: make([]float32, 5)}, kernelmodel.F32, true, false},
		{"device no buffer", &Matrix{Rows: 4, Cols: 4, Loc: model.OnDevice}, kernelmodel.F64, false, false},
	}
	for _, c := range cases {
		err := c.m.Validate("A", c.dt, c.back)
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMatrixValidateDevice(t *testing.T) {
	buf := devBuffer(t, kernelmodel.F64, 16)
	good := &Matrix{Rows: 4, Cols: 4, Loc: model.OnDevice, Dev: buf, DevLd: 4}
	if err := good.Validate("A", kernelmodel.F64, false); err != nil {
		t.Error(err)
	}
	badLd := &Matrix{Rows: 4, Cols: 4, Loc: model.OnDevice, Dev: buf, DevLd: 2}
	if err := badLd.Validate("A", kernelmodel.F64, false); err == nil {
		t.Error("device ld < rows should error")
	}
	wrongDt := &Matrix{Rows: 4, Cols: 4, Loc: model.OnDevice, Dev: buf, DevLd: 4}
	if err := wrongDt.Validate("A", kernelmodel.F32, false); err == nil {
		t.Error("dtype mismatch should error")
	}
}

func TestHostSlices(t *testing.T) {
	data := make([]float64, 20) // 4x5, ld 4
	for i := range data {
		data[i] = float64(i)
	}
	m := HostMatrix(4, 5, data)
	f64, f32 := m.HostSlices(1, 2)
	if f32 != nil {
		t.Error("f32 view should be nil")
	}
	if f64[0] != float64(1+2*4) {
		t.Errorf("offset wrong: %g", f64[0])
	}
	empty := HostMatrix(4, 5, nil)
	f64, f32 = empty.HostSlices(1, 2)
	if f64 != nil || f32 != nil {
		t.Error("nil storage should give nil views")
	}
}

func TestVectorValidate(t *testing.T) {
	if err := (&Vector{N: 4, Loc: model.OnHost}).Validate("x", false); err != nil {
		t.Error(err)
	}
	if err := (*Vector)(nil).Validate("x", false); err == nil {
		t.Error("nil vector should error")
	}
	if err := (&Vector{N: 0, Loc: model.OnHost}).Validate("x", false); err == nil {
		t.Error("empty vector should error")
	}
	if err := (&Vector{N: 4, Loc: model.OnHost, HostF64: make([]float64, 2)}).Validate("x", true); err == nil {
		t.Error("short backed vector should error")
	}
	if err := (&Vector{N: 4, Loc: model.OnDevice}).Validate("x", false); err == nil {
		t.Error("device vector without buffer should error")
	}
	hv := HostVector(4, make([]float64, 4))
	if err := hv.Validate("x", true); err != nil {
		t.Error(err)
	}
}

func TestResultGflops(t *testing.T) {
	r := Result{Seconds: 2}
	if g := r.Gflops(1000, 1000, 1000); g != 1 {
		t.Errorf("gflops = %g, want 1", g)
	}
	if (Result{}).Gflops(10, 10, 10) != 0 {
		t.Error("zero-time result should give 0")
	}
}
