package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one complete event ("ph":"X") in the Chrome Trace Event
// format, the JSON schema understood by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	// Ts and Dur are in microseconds per the format.
	Ts  float64 `json:"ts"`
	Dur float64 `json:"dur"`
	Pid int     `json:"pid"`
	Tid int     `json:"tid"`
	// Args carries transfer sizes for the tooltip.
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serializes the timeline in the Chrome Trace Event
// format (JSON array form): one "thread" per engine lane, durations in
// microseconds. The output loads directly into chrome://tracing or
// https://ui.perfetto.dev.
func (t *Trace) WriteChromeTrace(w io.Writer) error {
	events := make([]chromeEvent, 0, len(t.Intervals)+int(numLanes))
	for lane := Lane(0); lane < numLanes; lane++ {
		events = append(events, chromeEvent{
			Name: "thread_name", Cat: "__metadata", Ph: "M",
			Pid: 1, Tid: int(lane) + 1,
			Args: map[string]any{"name": lane.String()},
		})
	}
	ivs := append([]Interval(nil), t.Intervals...)
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	for _, iv := range ivs {
		ev := chromeEvent{
			Name: iv.Name,
			Cat:  iv.Lane.String(),
			Ph:   "X",
			Ts:   iv.Start * 1e6,
			Dur:  (iv.End - iv.Start) * 1e6,
			Pid:  1,
			Tid:  int(iv.Lane) + 1,
		}
		if iv.Bytes > 0 {
			ev.Args = map[string]any{"bytes": iv.Bytes}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(events); err != nil {
		return fmt.Errorf("trace: chrome export: %w", err)
	}
	return nil
}
