package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"cocopelia/internal/cudart"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/operand"
	"cocopelia/internal/sched"
	"cocopelia/internal/sim"
)

func tracedGemm(t *testing.T, m, T int) *Trace {
	t.Helper()
	eng := sim.New()
	dev := device.New(eng, machine.TestbedII(), 1, true)
	tr := Attach(dev)
	ctx := sched.NewContext(cudart.New(dev), false)
	_, err := ctx.Gemm(sched.GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(m, m, nil),
		B: operand.HostMatrix(m, m, nil),
		C: operand.HostMatrix(m, m, nil),
		T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAttachCapturesAllLanes(t *testing.T) {
	tr := tracedGemm(t, 2048, 512)
	seen := map[Lane]bool{}
	for _, iv := range tr.Intervals {
		seen[iv.Lane] = true
		if iv.End < iv.Start {
			t.Error("reversed interval")
		}
	}
	for lane := Lane(0); lane < numLanes; lane++ {
		if !seen[lane] {
			t.Errorf("lane %s has no intervals", lane)
		}
	}
}

func TestSpanAndBusy(t *testing.T) {
	tr := tracedGemm(t, 2048, 512)
	start, end := tr.Span()
	if start < 0 || end <= start {
		t.Errorf("span [%g, %g] implausible", start, end)
	}
	for lane := Lane(0); lane < numLanes; lane++ {
		busy := tr.BusySeconds(lane)
		if busy <= 0 || busy > end-start+1e-9 {
			t.Errorf("lane %s busy %g outside (0, span]", lane, busy)
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	tr := tracedGemm(t, 2048, 512)
	for lane, u := range tr.Utilization() {
		if u <= 0 || u > 1+1e-9 {
			t.Errorf("lane %s utilization %g outside (0, 1]", lane, u)
		}
	}
	empty := &Trace{}
	if len(empty.Utilization()) != 0 {
		t.Error("empty trace should have no utilization entries")
	}
}

func TestOverlapFractionPositive(t *testing.T) {
	tr := tracedGemm(t, 4096, 1024)
	f := tr.OverlapFraction()
	if f <= 0.1 || f > 1 {
		t.Errorf("overlap fraction %g implausible for a pipelined gemm", f)
	}
	if (&Trace{}).OverlapFraction() != 0 {
		t.Error("empty trace overlap should be 0")
	}
}

func TestOverlapFractionManual(t *testing.T) {
	tr := &Trace{Intervals: []Interval{
		{Lane: LaneH2D, Start: 0, End: 2},
		{Lane: LaneCompute, Start: 1, End: 3},
	}}
	// Overlap [1,2) of span [0,3): 1/3.
	if f := tr.OverlapFraction(); math.Abs(f-1.0/3.0) > 1e-12 {
		t.Errorf("overlap = %g, want 1/3", f)
	}
}

func TestGanttRendering(t *testing.T) {
	tr := tracedGemm(t, 2048, 512)
	g := tr.Gantt(80)
	for _, want := range []string{"h2d", "exec", "d2h", "timeline"} {
		if !strings.Contains(g, want) {
			t.Errorf("gantt missing %q:\n%s", want, g)
		}
	}
	if !strings.Contains(g, "#") || !strings.Contains(g, "v") {
		t.Errorf("gantt missing activity marks:\n%s", g)
	}
	if (&Trace{}).Gantt(40) != "(empty trace)\n" {
		t.Error("empty gantt rendering wrong")
	}
}

func TestPhasesTransferThenCompute(t *testing.T) {
	// A reuse-aware gemm on a transfer-heavy configuration starts
	// h2d-dominant and ends compute-dominant (the Fig. 2 narrative).
	tr := tracedGemm(t, 8192, 1024)
	phases := tr.Phases(10)
	if len(phases) != 10 {
		t.Fatalf("got %d phases", len(phases))
	}
	if phases[0].Dominant != LaneH2D {
		t.Errorf("first phase dominated by %s, want h2d", phases[0].Dominant)
	}
	last := phases[len(phases)-2] // final window may be the d2h drain
	if last.Dominant != LaneCompute {
		t.Errorf("late phase dominated by %s, want exec", last.Dominant)
	}
	if (&Trace{}).Phases(5) != nil {
		t.Error("empty trace should have no phases")
	}
}

func TestReset(t *testing.T) {
	tr := tracedGemm(t, 1024, 512)
	if len(tr.Intervals) == 0 {
		t.Fatal("expected intervals")
	}
	tr.Reset()
	if len(tr.Intervals) != 0 {
		t.Error("reset did not clear intervals")
	}
}

func TestLaneString(t *testing.T) {
	if LaneH2D.String() != "h2d" || LaneCompute.String() != "exec" || LaneD2H.String() != "d2h" {
		t.Error("lane names wrong")
	}
	if Lane(9).String() == "" {
		t.Error("unknown lane should render")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := tracedGemm(t, 2048, 512)
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 3 metadata records + one complete event per interval.
	if len(events) != len(tr.Intervals)+3 {
		t.Errorf("got %d events, want %d", len(events), len(tr.Intervals)+3)
	}
	seenMeta, seenX := 0, 0
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			seenMeta++
		case "X":
			seenX++
			if ev["dur"].(float64) < 0 {
				t.Error("negative duration")
			}
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if seenMeta != 3 || seenX != len(tr.Intervals) {
		t.Errorf("meta=%d X=%d", seenMeta, seenX)
	}
}
