// Package trace captures per-engine activity timelines from the simulated
// device and renders them as text Gantt charts and utilization summaries.
// It regenerates the narrative of the paper's Fig. 2: a reuse-aware
// level-3 offload that starts transfer-bound and becomes compute-bound
// once tiles are resident.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cocopelia/internal/device"
	"cocopelia/internal/machine"
	"cocopelia/internal/sim"
)

// Lane identifies one hardware engine's row in the timeline.
type Lane int

// The three engine lanes of a 3-way-concurrency timeline.
const (
	LaneH2D Lane = iota
	LaneCompute
	LaneD2H
	numLanes
)

// String returns the lane's display name.
func (l Lane) String() string {
	switch l {
	case LaneH2D:
		return "h2d"
	case LaneCompute:
		return "exec"
	case LaneD2H:
		return "d2h"
	}
	return fmt.Sprintf("Lane(%d)", int(l))
}

// Interval is one busy period of an engine.
type Interval struct {
	Lane  Lane
	Name  string
	Start sim.Time
	End   sim.Time
	Bytes int64 // transfers only
}

// Trace accumulates intervals from an instrumented device.
type Trace struct {
	Intervals []Interval
}

// Attach instruments the device (link + compute engine) and returns the
// trace that will accumulate its activity. Attaching replaces any previous
// observers on the device.
func Attach(dev *device.Device) *Trace {
	t := &Trace{}
	dev.Link().SetObserver(func(dir machine.LinkDir, start, end sim.Time, bytes int64) {
		lane := LaneH2D
		if dir == machine.D2H {
			lane = LaneD2H
		}
		t.Intervals = append(t.Intervals, Interval{Lane: lane, Name: dir.String(), Start: start, End: end, Bytes: bytes})
	})
	dev.SetKernelObserver(func(name string, start, end sim.Time) {
		t.Intervals = append(t.Intervals, Interval{Lane: LaneCompute, Name: name, Start: start, End: end})
	})
	return t
}

// Reset discards accumulated intervals (e.g. between measured runs).
func (t *Trace) Reset() { t.Intervals = t.Intervals[:0] }

// Span returns the earliest start and latest end over all intervals.
func (t *Trace) Span() (start, end sim.Time) {
	if len(t.Intervals) == 0 {
		return 0, 0
	}
	start, end = math.Inf(1), math.Inf(-1)
	for _, iv := range t.Intervals {
		start = math.Min(start, iv.Start)
		end = math.Max(end, iv.End)
	}
	return start, end
}

// BusySeconds returns the total busy time of a lane.
func (t *Trace) BusySeconds(lane Lane) float64 {
	s := 0.0
	for _, iv := range t.Intervals {
		if iv.Lane == lane {
			s += iv.End - iv.Start
		}
	}
	return s
}

// Utilization returns each lane's busy fraction of the trace span.
func (t *Trace) Utilization() map[Lane]float64 {
	start, end := t.Span()
	out := map[Lane]float64{}
	if end <= start {
		return out
	}
	for lane := Lane(0); lane < numLanes; lane++ {
		out[lane] = t.BusySeconds(lane) / (end - start)
	}
	return out
}

// OverlapFraction returns the fraction of the trace span during which at
// least two lanes are simultaneously busy — the degree of achieved
// concurrency.
func (t *Trace) OverlapFraction() float64 {
	start, end := t.Span()
	if end <= start {
		return 0
	}
	type edge struct {
		at    sim.Time
		lane  Lane
		delta int
	}
	var edges []edge
	for _, iv := range t.Intervals {
		edges = append(edges, edge{iv.Start, iv.Lane, +1}, edge{iv.End, iv.Lane, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		//lint:ignore floatorder exact tie-break on stored interval edges; both sides are loaded values, no rounding happens here
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // close before open at ties
	})
	depth := map[Lane]int{}
	busyLanes := func() int {
		n := 0
		for _, d := range depth {
			if d > 0 {
				n++
			}
		}
		return n
	}
	overlapped := 0.0
	prev := start
	for _, e := range edges {
		if busyLanes() >= 2 {
			overlapped += e.at - prev
		}
		prev = e.at
		depth[e.lane] += e.delta
	}
	return overlapped / (end - start)
}

// Gantt renders the trace as a three-lane ASCII timeline of the given
// width (columns). Each column covers span/width seconds; a cell is marked
// when the lane is busy for any part of that column.
func (t *Trace) Gantt(width int) string {
	if width < 10 {
		width = 10
	}
	start, end := t.Span()
	if end <= start {
		return "(empty trace)\n"
	}
	scale := float64(width) / (end - start)
	rows := make([][]byte, numLanes)
	marks := [numLanes]byte{'v', '#', '^'}
	for lane := range rows {
		rows[lane] = []byte(strings.Repeat(".", width))
	}
	for _, iv := range t.Intervals {
		c0 := int((iv.Start - start) * scale)
		c1 := int(math.Ceil((iv.End - start) * scale))
		if c1 <= c0 {
			c1 = c0 + 1
		}
		for c := c0; c < c1 && c < width; c++ {
			rows[iv.Lane][c] = marks[iv.Lane]
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline: %.4gs .. %.4gs (%.4gs span)\n", start, end, end-start)
	for lane := Lane(0); lane < numLanes; lane++ {
		fmt.Fprintf(&b, "%5s |%s|\n", lane, rows[lane])
	}
	return b.String()
}

// Phase describes the dominant engine over a window of the run.
type Phase struct {
	Start, End sim.Time
	// Dominant is the busiest lane in the window.
	Dominant Lane
}

// Phases splits the span into n windows and reports each window's busiest
// lane, surfacing the transfer-bound -> compute-bound progression of
// reuse-aware execution (Fig. 2).
func (t *Trace) Phases(n int) []Phase {
	start, end := t.Span()
	if end <= start || n <= 0 {
		return nil
	}
	win := (end - start) / float64(n)
	busy := make([][]float64, n)
	for i := range busy {
		busy[i] = make([]float64, numLanes)
	}
	for _, iv := range t.Intervals {
		for w := 0; w < n; w++ {
			w0 := start + float64(w)*win
			w1 := w0 + win
			lo := math.Max(iv.Start, w0)
			hi := math.Min(iv.End, w1)
			if hi > lo {
				busy[w][iv.Lane] += hi - lo
			}
		}
	}
	out := make([]Phase, n)
	for w := 0; w < n; w++ {
		best := LaneCompute
		for lane := Lane(0); lane < numLanes; lane++ {
			if busy[w][lane] > busy[w][best] {
				best = lane
			}
		}
		out[w] = Phase{
			Start:    start + float64(w)*win,
			End:      start + float64(w+1)*win,
			Dominant: best,
		}
	}
	return out
}
