// Package predictor is the CoCoPeLia tile-selection runtime (the paper's
// Section IV-B): it binds the deployment database (fitted transfer
// sub-models and kernel lookup tables) to the analytic models and answers
// "which tiling size should this routine invocation use?".
//
// Following the paper, model initialization happens on the first invocation
// with a given parameter set (routine, problem size, location flags, model
// kind) and the selected tile is cached and reused by subsequent identical
// calls.
package predictor

import (
	"fmt"

	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
)

// SubModels adapts a deployment database (plus an optional full-problem
// kernel-time estimate for the CSO comparator) to the model.SubModels
// interface for one routine.
type SubModels struct {
	dep      *microbench.Deployment
	table    *microbench.KernelTable
	fullTime float64
}

var _ model.SubModels = (*SubModels)(nil)

// TransferTime implements model.SubModels with the fitted t_l + t_b*bytes.
func (s *SubModels) TransferTime(dir machine.LinkDir, bytes int64) float64 {
	return s.dep.Fit(dir).TimeFor(bytes)
}

// BidSlowdown implements model.SubModels with the fitted slowdown.
func (s *SubModels) BidSlowdown(dir machine.LinkDir) float64 {
	return s.dep.Fit(dir).Slowdown
}

// KernelTileTime implements model.SubModels by direct lookup in the
// measured table.
func (s *SubModels) KernelTileTime(T int) (float64, error) { return s.table.Lookup(T) }

// KernelFullTime implements model.SubModels; it returns the caller-supplied
// full-problem estimate (used only by the CSO comparator) or 0 when unset.
func (s *SubModels) KernelFullTime() float64 { return s.fullTime }

// TileGrid implements model.SubModels.
func (s *SubModels) TileGrid() []int { return s.table.Grid }

// Predictor answers tile-size selection queries against one deployment.
type Predictor struct {
	dep    *microbench.Deployment
	cache  map[string]model.Selection
	hits   int
	misses int
}

// New creates a predictor over a deployment database.
func New(dep *microbench.Deployment) *Predictor {
	return &Predictor{dep: dep, cache: map[string]model.Selection{}}
}

// Deployment returns the underlying deployment database.
func (p *Predictor) Deployment() *microbench.Deployment { return p.dep }

// SubModels builds the model sub-model bundle for a routine.
// fullKernelTime may be zero unless the CSO comparator will be used.
func (p *Predictor) SubModels(routine string, fullKernelTime float64) (*SubModels, error) {
	kt, err := p.dep.Kernel(routine)
	if err != nil {
		return nil, err
	}
	return &SubModels{dep: p.dep, table: kt, fullTime: fullKernelTime}, nil
}

// signature builds the model-reuse cache key: routine, problem size and
// location flags plus the model kind, per Section IV-C.
func signature(kind model.Kind, prm *model.Params) string {
	key := fmt.Sprintf("%s|%s|%d|%dx%dx%d", kind, prm.Routine, prm.DtypeSize, prm.D1, prm.D2, prm.D3)
	for _, o := range prm.Operands {
		key += fmt.Sprintf("|%s:%dx%d:%t:%t", o.Name, o.Rows, o.Cols, o.Get, o.Set)
	}
	return key
}

// Select returns the model-optimal tiling size for the invocation,
// consulting the selection cache first.
func (p *Predictor) Select(kind model.Kind, prm *model.Params) (model.Selection, error) {
	key := signature(kind, prm)
	if sel, ok := p.cache[key]; ok {
		p.hits++
		return sel, nil
	}
	sm, err := p.SubModels(prm.Routine, 0)
	if err != nil {
		return model.Selection{}, err
	}
	sel, err := model.SelectT(kind, prm, sm)
	if err != nil {
		return model.Selection{}, err
	}
	p.cache[key] = sel
	p.misses++
	return sel, nil
}

// Predict evaluates one model at an explicit tiling size (no caching).
func (p *Predictor) Predict(kind model.Kind, prm *model.Params, T int, fullKernelTime float64) (float64, error) {
	sm, err := p.SubModels(prm.Routine, fullKernelTime)
	if err != nil {
		return 0, err
	}
	return model.Predict(kind, prm, sm, T)
}

// CacheStats reports selection-cache activity (model reuse).
func (p *Predictor) CacheStats() (hits, misses int) { return p.hits, p.misses }
