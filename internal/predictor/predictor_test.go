package predictor

import (
	"testing"

	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
)

var dep = microbench.Run(machine.TestbedII(), microbench.DefaultConfig())

func TestSubModelsInterface(t *testing.T) {
	p := New(dep)
	sm, err := p.SubModels("dgemm", 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if sm.KernelFullTime() != 1.5 {
		t.Error("full time not passed through")
	}
	if got := sm.TransferTime(machine.H2D, 1<<20); got <= 0 {
		t.Error("transfer time must be positive")
	}
	if sm.BidSlowdown(machine.D2H) < 1 {
		t.Error("slowdown must be >= 1")
	}
	if len(sm.TileGrid()) != 64 {
		t.Errorf("gemm grid length %d", len(sm.TileGrid()))
	}
	if _, err := sm.KernelTileTime(2048); err != nil {
		t.Errorf("grid lookup: %v", err)
	}
	if _, err := sm.KernelTileTime(1000); err == nil {
		t.Error("off-grid lookup should error")
	}
	if _, err := p.SubModels("zherk", 0); err == nil {
		t.Error("unknown routine should error")
	}
}

func TestSelectCachesBySignature(t *testing.T) {
	p := New(dep)
	prm := model.GemmParams("dgemm", 8, 8192, 8192, 8192, model.OnHost, model.OnHost, model.OnHost)
	s1, err := p.Select(model.DR, &prm)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := p.Select(model.DR, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Error("repeated selection differs")
	}
	hits, misses := p.CacheStats()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	// A different location combo is a different signature.
	prm2 := model.GemmParams("dgemm", 8, 8192, 8192, 8192, model.OnHost, model.OnDevice, model.OnHost)
	if _, err := p.Select(model.DR, &prm2); err != nil {
		t.Fatal(err)
	}
	if _, misses := p.CacheStats(); misses != 2 {
		t.Error("different flags should miss the cache")
	}
	// A different model kind is a different signature too.
	if _, err := p.Select(model.BTS, &prm); err != nil {
		t.Fatal(err)
	}
	if _, misses := p.CacheStats(); misses != 3 {
		t.Error("different kind should miss the cache")
	}
}

func TestSelectionPlausible(t *testing.T) {
	p := New(dep)
	prm := model.GemmParams("dgemm", 8, 16384, 16384, 16384, model.OnHost, model.OnHost, model.OnHost)
	sel, err := p.Select(model.DR, &prm)
	if err != nil {
		t.Fatal(err)
	}
	if sel.T < 256 || float64(sel.T) > 16384/1.5 {
		t.Errorf("selected T=%d outside feasible range", sel.T)
	}
	if sel.Predicted <= 0 {
		t.Error("prediction must be positive")
	}
	// daxpy selection from its own grid.
	ax := model.AxpyParams("daxpy", 8, 64<<20, model.OnHost, model.OnHost)
	sel, err = p.Select(model.BTS, &ax)
	if err != nil {
		t.Fatal(err)
	}
	if sel.T < 1<<18 || sel.T > 64<<20 {
		t.Errorf("daxpy T=%d outside grid", sel.T)
	}
}

func TestPredictExplicitT(t *testing.T) {
	p := New(dep)
	prm := model.GemmParams("dgemm", 8, 8192, 8192, 8192, model.OnHost, model.OnHost, model.OnHost)
	v, err := p.Predict(model.BTS, &prm, 2048, 0)
	if err != nil || v <= 0 {
		t.Errorf("predict = %g, %v", v, err)
	}
	if _, err := p.Predict(model.BTS, &prm, 2000, 0); err == nil {
		t.Error("off-grid T should error")
	}
	// CSO needs the full-kernel estimate; with one supplied it must work.
	v, err = p.Predict(model.CSO, &prm, 2048, 3.0)
	if err != nil || v <= 0 {
		t.Errorf("CSO predict = %g, %v", v, err)
	}
}

func TestDeploymentAccessor(t *testing.T) {
	p := New(dep)
	if p.Deployment() != dep {
		t.Error("deployment accessor mismatch")
	}
}
