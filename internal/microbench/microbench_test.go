package microbench

import (
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"cocopelia/internal/machine"
)

// deployI caches a Testbed I deployment for the package's tests.
var deployI = func() *Deployment {
	return Run(machine.TestbedI(), DefaultConfig())
}()

func relErr(got, want float64) float64 { return math.Abs(got-want) / want }

func TestFitsRecoverGroundTruthBandwidth(t *testing.T) {
	tb := machine.TestbedI()
	if e := relErr(1/deployI.H2D.SecPerByte, tb.H2D.BandwidthBps); e > 0.03 {
		t.Errorf("h2d bandwidth fit off by %.1f%%", 100*e)
	}
	if e := relErr(1/deployI.D2H.SecPerByte, tb.D2H.BandwidthBps); e > 0.03 {
		t.Errorf("d2h bandwidth fit off by %.1f%%", 100*e)
	}
}

func TestFitsRecoverLatency(t *testing.T) {
	tb := machine.TestbedI()
	if e := relErr(deployI.H2D.LatencyS, tb.H2D.LatencyS); e > 0.25 {
		t.Errorf("h2d latency fit %g vs truth %g", deployI.H2D.LatencyS, tb.H2D.LatencyS)
	}
}

func TestFitsRecoverSlowdown(t *testing.T) {
	tb := machine.TestbedI()
	if e := relErr(deployI.H2D.Slowdown, tb.H2D.BidSlowdown); e > 0.05 {
		t.Errorf("h2d slowdown fit %g vs truth %g", deployI.H2D.Slowdown, tb.H2D.BidSlowdown)
	}
	if e := relErr(deployI.D2H.Slowdown, tb.D2H.BidSlowdown); e > 0.05 {
		t.Errorf("d2h slowdown fit %g vs truth %g", deployI.D2H.Slowdown, tb.D2H.BidSlowdown)
	}
	if deployI.H2D.Slowdown < 1 || deployI.D2H.Slowdown < 1 {
		t.Error("slowdowns must be >= 1")
	}
}

func TestD2HMoreAffectedThanH2D(t *testing.T) {
	// The paper's observation: d2h suffers more from bidirectional use.
	if deployI.D2H.Slowdown <= deployI.H2D.Slowdown {
		t.Errorf("d2h slowdown (%g) should exceed h2d (%g)",
			deployI.D2H.Slowdown, deployI.H2D.Slowdown)
	}
}

func TestTransferFitTimeFor(t *testing.T) {
	f := TransferFit{LatencyS: 1e-5, SecPerByte: 1e-9}
	if got := f.TimeFor(1e9); math.Abs(got-1.00001) > 1e-12 {
		t.Errorf("TimeFor = %g", got)
	}
}

func TestKernelTablesComplete(t *testing.T) {
	for _, name := range []string{"dgemm", "sgemm", "daxpy"} {
		kt, err := deployI.Kernel(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(kt.Grid) != len(kt.Times) {
			t.Fatalf("%s: grid/time length mismatch", name)
		}
		for i, v := range kt.Times {
			if v <= 0 {
				t.Fatalf("%s: non-positive time at grid[%d]=%d", name, i, kt.Grid[i])
			}
		}
	}
	if len(deployI.Kernels["dgemm"].Grid) != 64 {
		t.Errorf("gemm grid should have 64 entries, has %d", len(deployI.Kernels["dgemm"].Grid))
	}
	if len(deployI.Kernels["daxpy"].Grid) != 256 {
		t.Errorf("daxpy grid should have 256 entries, has %d", len(deployI.Kernels["daxpy"].Grid))
	}
	if _, err := deployI.Kernel("zgemm"); err == nil {
		t.Error("unknown routine should error")
	}
}

func TestKernelTableMonotoneOverall(t *testing.T) {
	// Times grow with tile size; noise may wiggle neighbours, so compare
	// entries 4 apart.
	kt := deployI.Kernels["dgemm"]
	for i := 4; i < len(kt.Times); i++ {
		if kt.Times[i] <= kt.Times[i-4] {
			t.Errorf("dgemm lookup not increasing: T=%d (%g) vs T=%d (%g)",
				kt.Grid[i], kt.Times[i], kt.Grid[i-4], kt.Times[i-4])
		}
	}
}

func TestKernelLookup(t *testing.T) {
	kt := deployI.Kernels["dgemm"]
	v, err := kt.Lookup(2048)
	if err != nil || v <= 0 {
		t.Errorf("lookup(2048) = %g, %v", v, err)
	}
	if _, err := kt.Lookup(2000); err == nil {
		t.Error("off-grid lookup should error")
	}
}

func TestDeploymentFitAccessor(t *testing.T) {
	if deployI.Fit(machine.H2D) != deployI.H2D || deployI.Fit(machine.D2H) != deployI.D2H {
		t.Error("Fit accessor mismatch")
	}
}

func TestVirtualSecondsReported(t *testing.T) {
	if deployI.VirtualSeconds <= 0 {
		t.Error("campaign should consume virtual time")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deploy.json")
	if err := deployI.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.TestbedName != deployI.TestbedName || got.H2D != deployI.H2D {
		t.Error("round trip mismatch")
	}
	if len(got.Kernels) != len(deployI.Kernels) {
		t.Error("kernel tables lost in round trip")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestDeterministicCampaign(t *testing.T) {
	// Same seed, same machine: identical fits.
	a := Run(machine.TestbedI(), DefaultConfig())
	if a.H2D != deployI.H2D || a.D2H != deployI.D2H {
		t.Error("deployment campaign is not deterministic")
	}
}

func TestTableIIRendering(t *testing.T) {
	out := TableII(deployI)
	for _, want := range []string{"Testbed I", "h2d", "d2h", "sl"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("Table II should have header + 2 rows, got %d lines", lines)
	}
}

func TestGrids(t *testing.T) {
	tg := TransferGrid()
	if len(tg) != 64 || tg[0] != 256 || tg[63] != 16384 {
		t.Errorf("transfer grid wrong: len=%d", len(tg))
	}
	ag := AxpyTileGrid()
	if len(ag) != 256 || ag[0] != 1<<18 || ag[255] != 1<<26 {
		t.Errorf("axpy grid wrong: len=%d", len(ag))
	}
}

// TestDeploymentParallelDeterminism checks the parallel campaign's core
// guarantee at the deployment layer: every micro-benchmark cell seeds its
// noise from the cell key, so the fitted databases are identical at any
// worker count.
func TestDeploymentParallelDeterminism(t *testing.T) {
	serial := DefaultConfig()
	serial.Workers = 1
	fanned := DefaultConfig()
	fanned.Workers = 8
	a := Run(machine.TestbedII(), serial)
	b := Run(machine.TestbedII(), fanned)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("deployments differ between 1 and 8 workers:\nserial: %+v\nparallel: %+v", a, b)
	}
}
