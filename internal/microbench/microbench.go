// Package microbench implements the CoCoPeLia deployment phase (the
// paper's Section IV-A): the offline micro-benchmarks that instantiate the
// prediction models on a machine.
//
// It measures, on the simulated testbed:
//
//   - t_l per direction, as the average latency of multiple single-byte
//     transfers;
//   - t_b per direction, by least-squares regression (zero intercept,
//     latency excluded) over 64 square double-precision transfers of
//     256..16384 elements per side;
//   - the bidirectional t_b and the slowdown factor sl per direction, by
//     coupling each transfer with saturating traffic in the opposite
//     direction;
//   - the per-routine kernel-time lookup tables over the tile grids the
//     paper uses (gemm: T = 256..16384 step 256; axpy: N = 2^18..2^26 step
//     2^18).
//
// Every measurement repeats until the 95% confidence interval of its mean
// falls within 5% of the mean, exactly the paper's stopping rule. The
// result is a serializable Deployment database that the tile-selection
// runtime consumes.
package microbench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/parallel"
	"cocopelia/internal/sim"
	"cocopelia/internal/stats"
)

// Config controls the micro-benchmark campaign.
type Config struct {
	// CITolerance is the stopping-rule tolerance (paper: 0.05).
	CITolerance float64
	// MinReps and MaxReps bound the repetitions per measurement.
	MinReps, MaxReps int
	// LatencyProbes is the number of single-byte transfers averaged for
	// t_l.
	LatencyProbes int
	// Seed drives the simulated machine's measurement noise. Every
	// measurement cell derives its own noise stream from (Seed, cell
	// key), so the campaign's result is independent of execution order.
	Seed int64
	// Workers bounds the campaign's parallel fan-out over measurement
	// cells (0 = all cores, 1 = serial). The deployment database is
	// identical at every setting.
	Workers int
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{CITolerance: 0.05, MinReps: 3, MaxReps: 100, LatencyProbes: 32, Seed: 20210328}
}

// TransferFit is one direction's fitted transfer sub-model (a Table II
// row).
type TransferFit struct {
	// LatencyS is the fitted t_l in seconds.
	LatencyS float64 `json:"latency_s"`
	// SecPerByte is the fitted t_b (1/bandwidth) in seconds/byte.
	SecPerByte float64 `json:"sec_per_byte"`
	// RSE is the residual standard error of the unidirectional fit.
	RSE float64 `json:"rse"`
	// SecPerByteBid is t_b fitted while the opposite direction is
	// saturated.
	SecPerByteBid float64 `json:"sec_per_byte_bid"`
	// RSEBid is the residual standard error of the bidirectional fit.
	RSEBid float64 `json:"rse_bid"`
	// Slowdown is sl = SecPerByteBid / SecPerByte, clamped to >= 1.
	Slowdown float64 `json:"slowdown"`
}

// TimeFor returns the fitted unidirectional transfer time for a payload.
func (f TransferFit) TimeFor(bytes int64) float64 {
	return f.LatencyS + f.SecPerByte*float64(bytes)
}

// KernelTable is the empirically measured sub-kernel execution-time lookup
// table of one routine (the t_GPU^T predictor).
type KernelTable struct {
	Routine string    `json:"routine"`
	Dtype   string    `json:"dtype"`
	Grid    []int     `json:"grid"`
	Times   []float64 `json:"times_s"`
}

// Lookup returns the measured time for tile size T. Following the paper,
// only direct value lookups on the benchmarked grid are supported.
func (kt *KernelTable) Lookup(T int) (float64, error) {
	i := sort.SearchInts(kt.Grid, T)
	if i < len(kt.Grid) && kt.Grid[i] == T {
		return kt.Times[i], nil
	}
	return 0, fmt.Errorf("microbench: tile size %d not in the %s lookup grid", T, kt.Routine)
}

// Deployment is the machine database produced by the deployment phase.
type Deployment struct {
	TestbedName string                  `json:"testbed"`
	H2D         TransferFit             `json:"h2d"`
	D2H         TransferFit             `json:"d2h"`
	Kernels     map[string]*KernelTable `json:"kernels"`
	// VirtualSeconds is the simulated machine time the campaign consumed
	// (the paper reports minutes per testbed).
	VirtualSeconds float64 `json:"virtual_seconds"`
}

// Fit returns the transfer fit for a direction.
func (d *Deployment) Fit(dir machine.LinkDir) TransferFit {
	if dir == machine.H2D {
		return d.H2D
	}
	return d.D2H
}

// Kernel returns the lookup table for a routine name (e.g. "dgemm").
func (d *Deployment) Kernel(routine string) (*KernelTable, error) {
	kt, ok := d.Kernels[routine]
	if !ok {
		return nil, fmt.Errorf("microbench: routine %q not deployed", routine)
	}
	return kt, nil
}

// Save writes the deployment database as JSON.
func (d *Deployment) Save(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("microbench: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a deployment database from JSON.
func Load(path string) (*Deployment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("microbench: %w", err)
	}
	var d Deployment
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("microbench: parse %s: %w", path, err)
	}
	return &d, nil
}

// runner executes one measurement cell on a private simulated device
// seeded from the cell's key, so cells are mutually independent and can
// run in any order or concurrently.
type runner struct {
	cfg Config
	tb  *machine.Testbed
	eng *sim.Engine
	dev *device.Device
}

func newRunner(tb *machine.Testbed, cfg Config, seed int64) *runner {
	eng := sim.New()
	return &runner{cfg: cfg, tb: tb, eng: eng, dev: device.New(eng, tb, seed, false)}
}

// cellSeed derives a cell's noise seed from the campaign seed and the
// cell key (FNV-1a mix, matching the style of eval's per-repetition
// seeds).
func cellSeed(base int64, key string) int64 {
	h := int64(1469598103934665603)
	for _, c := range key {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h ^ (base * 6364136223846793005)
}

// measure repeats fn (which must return one sample of the measured
// quantity) until the CI stopping rule is satisfied, and returns the mean.
func (r *runner) measure(fn func() float64) float64 {
	var samples []float64
	for i := 0; i < r.cfg.MaxReps; i++ {
		samples = append(samples, fn())
		if len(samples) >= r.cfg.MinReps && stats.MeanWithinCI(samples, r.cfg.CITolerance) {
			break
		}
	}
	return stats.Mean(samples)
}

// timedTransfer runs one transfer and returns its duration on the virtual
// clock.
func (r *runner) timedTransfer(dir machine.LinkDir, bytes int64) float64 {
	start := r.eng.Now()
	var end sim.Time
	r.dev.Link().Submit(dir, bytes, func() { end = r.eng.Now() })
	r.eng.Run()
	return end - start
}

// timedTransferBid runs one transfer while the opposite direction is kept
// saturated, and returns the transfer's duration.
func (r *runner) timedTransferBid(dir machine.LinkDir, bytes int64) float64 {
	opposite := otherDir(dir)
	// Saturate the opposite direction with a transfer several times
	// larger, submitted first so it is in its data phase throughout.
	r.dev.Link().Submit(opposite, bytes*8, nil)
	var start, end sim.Time
	started := false
	// Submit the measured transfer after the opposite's latency phase.
	r.eng.After(r.tb.Link(opposite).LatencyS*2, func() {
		start = r.eng.Now()
		started = true
		r.dev.Link().Submit(dir, bytes, func() { end = r.eng.Now() })
	})
	r.eng.Run()
	if !started {
		panic("microbench: bidirectional probe never started")
	}
	return end - start
}

func otherDir(dir machine.LinkDir) machine.LinkDir {
	if dir == machine.H2D {
		return machine.D2H
	}
	return machine.H2D
}

// TransferGrid returns the square transfer sizes of the paper's campaign:
// sides 256..16384 step 256 (64 samples) of double-precision elements.
func TransferGrid() []int {
	var g []int
	for d := 256; d <= 16384; d += 256 {
		g = append(g, d)
	}
	return g
}

// GemmTileGrid returns the gemm kernel lookup grid (T = 256..16384 step
// 256, 64 entries).
func GemmTileGrid() []int { return TransferGrid() }

// AxpyTileGrid returns the daxpy kernel lookup grid (N = 2^18..2^26 step
// 2^18, 256 entries).
func AxpyTileGrid() []int {
	var g []int
	for n := 1 << 18; n <= 1<<26; n += 1 << 18 {
		g = append(g, n)
	}
	return g
}

// assembleFit fits the Table II coefficients of one direction from the
// campaign's measured cell values.
func assembleFit(dirName string, vals map[string]float64) TransferFit {
	tl := vals["lat|"+dirName]
	var xs, ysUni, ysBid []float64
	for _, d := range TransferGrid() {
		bytes := int64(d) * int64(d) * 8
		xs = append(xs, float64(bytes))
		ysUni = append(ysUni, vals[fmt.Sprintf("uni|%s|%d", dirName, d)]-tl)
		ysBid = append(ysBid, vals[fmt.Sprintf("bid|%s|%d", dirName, d)]-tl)
	}
	tb, rse, err := stats.FitZeroIntercept(xs, ysUni)
	if err != nil {
		panic(fmt.Sprintf("microbench: unidirectional fit: %v", err))
	}
	tbBid, rseBid, err := stats.FitZeroIntercept(xs, ysBid)
	if err != nil {
		panic(fmt.Sprintf("microbench: bidirectional fit: %v", err))
	}
	sl := tbBid / tb
	if sl < 1 {
		sl = 1
	}
	return TransferFit{
		LatencyS:      tl,
		SecPerByte:    tb,
		RSE:           rse,
		SecPerByteBid: tbBid,
		RSEBid:        rseBid,
		Slowdown:      sl,
	}
}

// timedKernel executes one kernel of the given ground-truth duration and
// returns its measured (noisy) duration.
func (r *runner) timedKernel(name string, baseDuration float64) float64 {
	start := r.eng.Now()
	var end sim.Time
	r.dev.LaunchKernel(name, baseDuration, nil, func() { end = r.eng.Now() })
	r.eng.Run()
	return end - start
}

// mcell is one independent measurement cell of the deployment campaign:
// a unique key (which also seeds the cell's noise stream) and the probe
// routine producing the measured value on the cell's private device.
type mcell struct {
	key string
	run func(r *runner) float64
}

// campaignCells enumerates the full deployment work-list: per-direction
// latency, unidirectional and bidirectional bandwidth over the transfer
// grid, and the per-routine kernel lookup tables.
func campaignCells(tb *machine.Testbed, cfg Config) []mcell {
	var cells []mcell
	add := func(key string, run func(r *runner) float64) {
		cells = append(cells, mcell{key: key, run: run})
	}

	for _, d := range []struct {
		name string
		dir  machine.LinkDir
	}{{"h2d", machine.H2D}, {"d2h", machine.D2H}} {
		dir := d.dir
		// t_l: average of single-byte transfers.
		add("lat|"+d.name, func(r *runner) float64 {
			var lat []float64
			for i := 0; i < r.cfg.LatencyProbes; i++ {
				lat = append(lat, r.timedTransfer(dir, 1))
			}
			return stats.Mean(lat)
		})
		for _, side := range TransferGrid() {
			bytes := int64(side) * int64(side) * 8
			add(fmt.Sprintf("uni|%s|%d", d.name, side), func(r *runner) float64 {
				return r.measure(func() float64 { return r.timedTransfer(dir, bytes) })
			})
			add(fmt.Sprintf("bid|%s|%d", d.name, side), func(r *runner) float64 {
				return r.measure(func() float64 { return r.timedTransferBid(dir, bytes) })
			})
		}
	}

	gpu := &tb.GPU
	for _, spec := range []struct {
		name string
		dt   kernelmodel.Dtype
	}{{"dgemm", kernelmodel.F64}, {"sgemm", kernelmodel.F32}} {
		spec := spec
		for _, T := range GemmTileGrid() {
			base := kernelmodel.GemmTime(gpu, spec.dt, T, T, T)
			add(fmt.Sprintf("kern|%s|%d", spec.name, T), func(r *runner) float64 {
				return r.measure(func() float64 { return r.timedKernel(spec.name, base) })
			})
		}
	}
	// Level-2: square TxT tiles of the matrix operand.
	for _, T := range GemmTileGrid() {
		base := kernelmodel.GemvTime(gpu, kernelmodel.F64, T, T)
		add(fmt.Sprintf("kern|dgemv|%d", T), func(r *runner) float64 {
			return r.measure(func() float64 { return r.timedKernel("dgemv", base) })
		})
	}
	for _, n := range AxpyTileGrid() {
		base := kernelmodel.AxpyTime(gpu, kernelmodel.F64, n)
		add(fmt.Sprintf("kern|daxpy|%d", n), func(r *runner) float64 {
			return r.measure(func() float64 { return r.timedKernel("daxpy", base) })
		})
	}
	return cells
}

// kernelTable assembles one routine's lookup table from measured cells.
func kernelTable(routine, dtype string, grid []int, vals map[string]float64) *KernelTable {
	times := make([]float64, len(grid))
	for i, T := range grid {
		times[i] = vals[fmt.Sprintf("kern|%s|%d", routine, T)]
	}
	return &KernelTable{Routine: routine, Dtype: dtype, Grid: grid, Times: times}
}

// Run executes the full deployment campaign on a testbed. The campaign
// enumerates its measurement cells up front, fans them across
// cfg.Workers cores (each cell simulating on a private device seeded
// from the cell key), and assembles the fits sequentially — so the
// resulting database is bit-for-bit identical at any worker count.
func Run(tb *machine.Testbed, cfg Config) *Deployment {
	cells := campaignCells(tb, cfg)
	type cellOut struct {
		value   float64
		virtual float64
	}
	outs, err := parallel.Map(parallel.NewPool(cfg.Workers), cells,
		func(_ int, c mcell) (cellOut, error) {
			r := newRunner(tb, cfg, cellSeed(cfg.Seed, c.key))
			v := c.run(r)
			return cellOut{value: v, virtual: r.eng.Now()}, nil
		})
	if err != nil {
		panic(fmt.Sprintf("microbench: %v", err)) // cells never return errors
	}
	vals := make(map[string]float64, len(cells))
	virtual := 0.0
	for i, c := range cells {
		vals[c.key] = outs[i].value
		virtual += outs[i].virtual
	}

	gemmGrid := GemmTileGrid()
	return &Deployment{
		TestbedName: tb.Name,
		H2D:         assembleFit("h2d", vals),
		D2H:         assembleFit("d2h", vals),
		Kernels: map[string]*KernelTable{
			"dgemm": kernelTable("dgemm", kernelmodel.F64.String(), gemmGrid, vals),
			"sgemm": kernelTable("sgemm", kernelmodel.F32.String(), gemmGrid, vals),
			"dgemv": kernelTable("dgemv", kernelmodel.F64.String(), gemmGrid, vals),
			"daxpy": kernelTable("daxpy", kernelmodel.F64.String(), AxpyTileGrid(), vals),
		},
		VirtualSeconds: virtual,
	}
}

// TableII renders the fitted transfer sub-models in the format of the
// paper's Table II.
func TableII(deps ...*Deployment) string {
	s := fmt.Sprintf("%-12s %-5s %12s %14s %12s %16s %12s %8s\n",
		"System", "dir", "t_l (s)", "1/t_b (GB/s)", "RSE", "1/t_b bid (GB/s)", "RSE bid", "sl")
	for _, d := range deps {
		for _, row := range []struct {
			dir string
			f   TransferFit
		}{{"h2d", d.H2D}, {"d2h", d.D2H}} {
			s += fmt.Sprintf("%-12s %-5s %12.3g %14.2f %12.3g %16.2f %12.3g %8.2f\n",
				d.TestbedName, row.dir,
				row.f.LatencyS,
				1/row.f.SecPerByte/1e9,
				row.f.RSE,
				1/row.f.SecPerByteBid/1e9,
				row.f.RSEBid,
				row.f.Slowdown)
		}
	}
	return s
}
