// Package microbench implements the CoCoPeLia deployment phase (the
// paper's Section IV-A): the offline micro-benchmarks that instantiate the
// prediction models on a machine.
//
// It measures, on the simulated testbed:
//
//   - t_l per direction, as the average latency of multiple single-byte
//     transfers;
//   - t_b per direction, by least-squares regression (zero intercept,
//     latency excluded) over 64 square double-precision transfers of
//     256..16384 elements per side;
//   - the bidirectional t_b and the slowdown factor sl per direction, by
//     coupling each transfer with saturating traffic in the opposite
//     direction;
//   - the per-routine kernel-time lookup tables over the tile grids the
//     paper uses (gemm: T = 256..16384 step 256; axpy: N = 2^18..2^26 step
//     2^18).
//
// Every measurement repeats until the 95% confidence interval of its mean
// falls within 5% of the mean, exactly the paper's stopping rule. The
// result is a serializable Deployment database that the tile-selection
// runtime consumes.
package microbench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/sim"
	"cocopelia/internal/stats"
)

// Config controls the micro-benchmark campaign.
type Config struct {
	// CITolerance is the stopping-rule tolerance (paper: 0.05).
	CITolerance float64
	// MinReps and MaxReps bound the repetitions per measurement.
	MinReps, MaxReps int
	// LatencyProbes is the number of single-byte transfers averaged for
	// t_l.
	LatencyProbes int
	// Seed drives the simulated machine's measurement noise.
	Seed int64
}

// DefaultConfig returns the paper-faithful configuration.
func DefaultConfig() Config {
	return Config{CITolerance: 0.05, MinReps: 3, MaxReps: 100, LatencyProbes: 32, Seed: 20210328}
}

// TransferFit is one direction's fitted transfer sub-model (a Table II
// row).
type TransferFit struct {
	// LatencyS is the fitted t_l in seconds.
	LatencyS float64 `json:"latency_s"`
	// SecPerByte is the fitted t_b (1/bandwidth) in seconds/byte.
	SecPerByte float64 `json:"sec_per_byte"`
	// RSE is the residual standard error of the unidirectional fit.
	RSE float64 `json:"rse"`
	// SecPerByteBid is t_b fitted while the opposite direction is
	// saturated.
	SecPerByteBid float64 `json:"sec_per_byte_bid"`
	// RSEBid is the residual standard error of the bidirectional fit.
	RSEBid float64 `json:"rse_bid"`
	// Slowdown is sl = SecPerByteBid / SecPerByte, clamped to >= 1.
	Slowdown float64 `json:"slowdown"`
}

// TimeFor returns the fitted unidirectional transfer time for a payload.
func (f TransferFit) TimeFor(bytes int64) float64 {
	return f.LatencyS + f.SecPerByte*float64(bytes)
}

// KernelTable is the empirically measured sub-kernel execution-time lookup
// table of one routine (the t_GPU^T predictor).
type KernelTable struct {
	Routine string    `json:"routine"`
	Dtype   string    `json:"dtype"`
	Grid    []int     `json:"grid"`
	Times   []float64 `json:"times_s"`
}

// Lookup returns the measured time for tile size T. Following the paper,
// only direct value lookups on the benchmarked grid are supported.
func (kt *KernelTable) Lookup(T int) (float64, error) {
	i := sort.SearchInts(kt.Grid, T)
	if i < len(kt.Grid) && kt.Grid[i] == T {
		return kt.Times[i], nil
	}
	return 0, fmt.Errorf("microbench: tile size %d not in the %s lookup grid", T, kt.Routine)
}

// Deployment is the machine database produced by the deployment phase.
type Deployment struct {
	TestbedName string                  `json:"testbed"`
	H2D         TransferFit             `json:"h2d"`
	D2H         TransferFit             `json:"d2h"`
	Kernels     map[string]*KernelTable `json:"kernels"`
	// VirtualSeconds is the simulated machine time the campaign consumed
	// (the paper reports minutes per testbed).
	VirtualSeconds float64 `json:"virtual_seconds"`
}

// Fit returns the transfer fit for a direction.
func (d *Deployment) Fit(dir machine.LinkDir) TransferFit {
	if dir == machine.H2D {
		return d.H2D
	}
	return d.D2H
}

// Kernel returns the lookup table for a routine name (e.g. "dgemm").
func (d *Deployment) Kernel(routine string) (*KernelTable, error) {
	kt, ok := d.Kernels[routine]
	if !ok {
		return nil, fmt.Errorf("microbench: routine %q not deployed", routine)
	}
	return kt, nil
}

// Save writes the deployment database as JSON.
func (d *Deployment) Save(path string) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return fmt.Errorf("microbench: marshal: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Load reads a deployment database from JSON.
func Load(path string) (*Deployment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("microbench: %w", err)
	}
	var d Deployment
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("microbench: parse %s: %w", path, err)
	}
	return &d, nil
}

// runner executes measurements on a private simulated device.
type runner struct {
	cfg Config
	tb  *machine.Testbed
	eng *sim.Engine
	dev *device.Device
}

func newRunner(tb *machine.Testbed, cfg Config) *runner {
	eng := sim.New()
	return &runner{cfg: cfg, tb: tb, eng: eng, dev: device.New(eng, tb, cfg.Seed, false)}
}

// measure repeats fn (which must return one sample of the measured
// quantity) until the CI stopping rule is satisfied, and returns the mean.
func (r *runner) measure(fn func() float64) float64 {
	var samples []float64
	for i := 0; i < r.cfg.MaxReps; i++ {
		samples = append(samples, fn())
		if len(samples) >= r.cfg.MinReps && stats.MeanWithinCI(samples, r.cfg.CITolerance) {
			break
		}
	}
	return stats.Mean(samples)
}

// timedTransfer runs one transfer and returns its duration on the virtual
// clock.
func (r *runner) timedTransfer(dir machine.LinkDir, bytes int64) float64 {
	start := r.eng.Now()
	var end sim.Time
	r.dev.Link().Submit(dir, bytes, func() { end = r.eng.Now() })
	r.eng.Run()
	return end - start
}

// timedTransferBid runs one transfer while the opposite direction is kept
// saturated, and returns the transfer's duration.
func (r *runner) timedTransferBid(dir machine.LinkDir, bytes int64) float64 {
	opposite := otherDir(dir)
	// Saturate the opposite direction with a transfer several times
	// larger, submitted first so it is in its data phase throughout.
	r.dev.Link().Submit(opposite, bytes*8, nil)
	var start, end sim.Time
	started := false
	// Submit the measured transfer after the opposite's latency phase.
	r.eng.After(r.tb.Link(opposite).LatencyS*2, func() {
		start = r.eng.Now()
		started = true
		r.dev.Link().Submit(dir, bytes, func() { end = r.eng.Now() })
	})
	r.eng.Run()
	if !started {
		panic("microbench: bidirectional probe never started")
	}
	return end - start
}

func otherDir(dir machine.LinkDir) machine.LinkDir {
	if dir == machine.H2D {
		return machine.D2H
	}
	return machine.H2D
}

// TransferGrid returns the square transfer sizes of the paper's campaign:
// sides 256..16384 step 256 (64 samples) of double-precision elements.
func TransferGrid() []int {
	var g []int
	for d := 256; d <= 16384; d += 256 {
		g = append(g, d)
	}
	return g
}

// GemmTileGrid returns the gemm kernel lookup grid (T = 256..16384 step
// 256, 64 entries).
func GemmTileGrid() []int { return TransferGrid() }

// AxpyTileGrid returns the daxpy kernel lookup grid (N = 2^18..2^26 step
// 2^18, 256 entries).
func AxpyTileGrid() []int {
	var g []int
	for n := 1 << 18; n <= 1<<26; n += 1 << 18 {
		g = append(g, n)
	}
	return g
}

// fitDirection measures one direction's latency, unidirectional and
// bidirectional bandwidth, and fits the Table II coefficients.
func (r *runner) fitDirection(dir machine.LinkDir) TransferFit {
	// t_l: average of single-byte transfers.
	var lat []float64
	for i := 0; i < r.cfg.LatencyProbes; i++ {
		lat = append(lat, r.timedTransfer(dir, 1))
	}
	tl := stats.Mean(lat)

	var xs, ysUni, ysBid []float64
	for _, d := range TransferGrid() {
		bytes := int64(d) * int64(d) * 8
		uni := r.measure(func() float64 { return r.timedTransfer(dir, bytes) })
		bid := r.measure(func() float64 { return r.timedTransferBid(dir, bytes) })
		xs = append(xs, float64(bytes))
		ysUni = append(ysUni, uni-tl)
		ysBid = append(ysBid, bid-tl)
	}
	tb, rse, err := stats.FitZeroIntercept(xs, ysUni)
	if err != nil {
		panic(fmt.Sprintf("microbench: unidirectional fit: %v", err))
	}
	tbBid, rseBid, err := stats.FitZeroIntercept(xs, ysBid)
	if err != nil {
		panic(fmt.Sprintf("microbench: bidirectional fit: %v", err))
	}
	sl := tbBid / tb
	if sl < 1 {
		sl = 1
	}
	return TransferFit{
		LatencyS:      tl,
		SecPerByte:    tb,
		RSE:           rse,
		SecPerByteBid: tbBid,
		RSEBid:        rseBid,
		Slowdown:      sl,
	}
}

// timedKernel executes one kernel of the given ground-truth duration and
// returns its measured (noisy) duration.
func (r *runner) timedKernel(name string, baseDuration float64) float64 {
	start := r.eng.Now()
	var end sim.Time
	r.dev.LaunchKernel(name, baseDuration, nil, func() { end = r.eng.Now() })
	r.eng.Run()
	return end - start
}

// benchKernels builds the lookup tables for the three paper routines.
func (r *runner) benchKernels() map[string]*KernelTable {
	gpu := &r.tb.GPU
	tables := map[string]*KernelTable{}

	gemmGrid := GemmTileGrid()
	for _, spec := range []struct {
		name string
		dt   kernelmodel.Dtype
	}{{"dgemm", kernelmodel.F64}, {"sgemm", kernelmodel.F32}} {
		times := make([]float64, len(gemmGrid))
		for i, T := range gemmGrid {
			base := kernelmodel.GemmTime(gpu, spec.dt, T, T, T)
			times[i] = r.measure(func() float64 { return r.timedKernel(spec.name, base) })
		}
		tables[spec.name] = &KernelTable{
			Routine: spec.name, Dtype: spec.dt.String(), Grid: gemmGrid, Times: times,
		}
	}

	// Level-2: square TxT tiles of the matrix operand.
	gemvTimes := make([]float64, len(gemmGrid))
	for i, T := range gemmGrid {
		base := kernelmodel.GemvTime(gpu, kernelmodel.F64, T, T)
		gemvTimes[i] = r.measure(func() float64 { return r.timedKernel("dgemv", base) })
	}
	tables["dgemv"] = &KernelTable{
		Routine: "dgemv", Dtype: kernelmodel.F64.String(), Grid: gemmGrid, Times: gemvTimes,
	}

	axpyGrid := AxpyTileGrid()
	times := make([]float64, len(axpyGrid))
	for i, n := range axpyGrid {
		base := kernelmodel.AxpyTime(gpu, kernelmodel.F64, n)
		times[i] = r.measure(func() float64 { return r.timedKernel("daxpy", base) })
	}
	tables["daxpy"] = &KernelTable{
		Routine: "daxpy", Dtype: kernelmodel.F64.String(), Grid: axpyGrid, Times: times,
	}
	return tables
}

// Run executes the full deployment campaign on a testbed.
func Run(tb *machine.Testbed, cfg Config) *Deployment {
	r := newRunner(tb, cfg)
	d := &Deployment{
		TestbedName: tb.Name,
		H2D:         r.fitDirection(machine.H2D),
		D2H:         r.fitDirection(machine.D2H),
		Kernels:     r.benchKernels(),
	}
	d.VirtualSeconds = r.eng.Now()
	return d
}

// TableII renders the fitted transfer sub-models in the format of the
// paper's Table II.
func TableII(deps ...*Deployment) string {
	s := fmt.Sprintf("%-12s %-5s %12s %14s %12s %16s %12s %8s\n",
		"System", "dir", "t_l (s)", "1/t_b (GB/s)", "RSE", "1/t_b bid (GB/s)", "RSE bid", "sl")
	for _, d := range deps {
		for _, row := range []struct {
			dir string
			f   TransferFit
		}{{"h2d", d.H2D}, {"d2h", d.D2H}} {
			s += fmt.Sprintf("%-12s %-5s %12.3g %14.2f %12.3g %16.2f %12.3g %8.2f\n",
				d.TestbedName, row.dir,
				row.f.LatencyS,
				1/row.f.SecPerByte/1e9,
				row.f.RSE,
				1/row.f.SecPerByteBid/1e9,
				row.f.RSEBid,
				row.f.Slowdown)
		}
	}
	return s
}
