package hybrid

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/microbench"
	"cocopelia/internal/model"
	"cocopelia/internal/multigpu"
	"cocopelia/internal/operand"
	"cocopelia/internal/predictor"
)

var dep = microbench.Run(machine.TestbedII(), microbench.DefaultConfig())

func subModels(t *testing.T) model.SubModels {
	t.Helper()
	sm, err := predictor.New(dep).SubModels("dgemm", 0)
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestPlanSplitBalances(t *testing.T) {
	sm := subModels(t)
	tb := machine.TestbedII()
	plan, err := PlanSplit(sm, tb, "dgemm", 8, 8192, 8192, 8192, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.T <= 0 {
		t.Fatal("no tiling size planned")
	}
	if plan.HostCols <= 0 {
		t.Error("the host should get a panel for a transfer-bound full offload")
	}
	if plan.HostCols%256 != 0 {
		t.Errorf("host panel %d not aligned to the planning step", plan.HostCols)
	}
	if plan.HostCols >= 8192/2+plan.T {
		t.Errorf("host panel %d implausibly large", plan.HostCols)
	}
	// The hybrid prediction must beat the GPU-only prediction.
	gpuOnly, err := multigpu.PredictDR(sm, "dgemm", 8, 8192, 8192, 8192, plan.T, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan.PredictedSeconds >= gpuOnly {
		t.Errorf("hybrid prediction %g not better than GPU-only %g", plan.PredictedSeconds, gpuOnly)
	}
}

func TestPlanSplitErrors(t *testing.T) {
	sm := subModels(t)
	tb := machine.TestbedII()
	if _, err := PlanSplit(sm, tb, "dgemm", 8, 8192, 8192, 8192, 0); err == nil {
		t.Error("zero GPUs should error")
	}
	if _, err := PlanSplit(sm, tb, "dgemm", 8, 64, 64, 64, 1); err == nil {
		t.Error("tiny problem should have no candidates")
	}
}

func TestHybridFunctional(t *testing.T) {
	cl, err := multigpu.NewCluster(machine.TestbedII(), 1, 3, true)
	if err != nil {
		t.Fatal(err)
	}
	m, n, k := 96, 128, 80
	rng := rand.New(rand.NewSource(9))
	hostA := make([]float64, m*k)
	hostB := make([]float64, k*n)
	hostC := make([]float64, m*n)
	for i := range hostA {
		hostA[i] = rng.NormFloat64()
	}
	for i := range hostB {
		hostB[i] = rng.NormFloat64()
	}
	for i := range hostC {
		hostC[i] = rng.NormFloat64()
	}
	ref := append([]float64(nil), hostC...)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 2, hostA, m, hostB, k, 0.5, ref, m); err != nil {
		t.Fatal(err)
	}
	res, err := Gemm(cl, GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: n, K: k, Alpha: 2, Beta: 0.5,
		A:    operand.HostMatrix(m, k, hostA),
		B:    operand.HostMatrix(k, n, hostB),
		C:    operand.HostMatrix(m, n, hostC),
		Plan: Plan{T: 32, HostCols: 64},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(hostC[i]-ref[i]) > 1e-10 {
			t.Fatalf("c[%d] = %g, want %g", i, hostC[i], ref[i])
		}
	}
	if res.HostCols != 64 || res.HostSeconds <= 0 {
		t.Errorf("host side missing from result: %+v", res)
	}
	if len(res.GPU) != 1 || res.GPU[0].Subkernels <= 0 {
		t.Error("GPU side missing from result")
	}
}

func TestHybridBeatsGPUOnlyMeasured(t *testing.T) {
	sm := subModels(t)
	tb := machine.TestbedII()
	m := 8192
	plan, err := PlanSplit(sm, tb, "dgemm", 8, m, m, m, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(p Plan) float64 {
		cl, err := multigpu.NewCluster(tb, 1, 13, false)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Gemm(cl, GemmOpts{
			Dtype: kernelmodel.F64, M: m, N: m, K: m, Alpha: 1, Beta: 1,
			A:    operand.HostMatrix(m, m, nil),
			B:    operand.HostMatrix(m, m, nil),
			C:    operand.HostMatrix(m, m, nil),
			Plan: p,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seconds
	}
	hybrid := run(plan)
	gpuOnly := run(Plan{T: plan.T, HostCols: 0})
	if hybrid >= gpuOnly {
		t.Errorf("hybrid (%g) should beat GPU-only (%g) at the same T", hybrid, gpuOnly)
	}
}

// TestPlanSplitVolumeAnnotations pins the split plan's GPU transfer-volume
// fields against an actual cluster execution of the GPU side: the
// annotations come from the tile planners (via multigpu.PanelVolumes), so
// they must equal the bytes the replayed panel plans really move.
func TestPlanSplitVolumeAnnotations(t *testing.T) {
	sm := subModels(t)
	tb := machine.TestbedII()
	m, gpus := 8192, 2
	plan, err := PlanSplit(sm, tb, "dgemm", 8, m, m, m, gpus)
	if err != nil {
		t.Fatal(err)
	}
	if plan.GPUBytesH2D <= 0 || plan.GPUBytesD2H <= 0 {
		t.Fatalf("split plan carries no volume annotations: %+v", plan)
	}
	want := multigpu.PanelVolumes(kernelmodel.F64, m, m-plan.HostCols, m, plan.T, gpus, 1)
	if plan.GPUBytesH2D != want.BytesH2D || plan.GPUBytesD2H != want.BytesD2H {
		t.Errorf("annotations (%d, %d) != panel volumes (%d, %d)",
			plan.GPUBytesH2D, plan.GPUBytesD2H, want.BytesH2D, want.BytesD2H)
	}
	cl, err := multigpu.NewCluster(tb, gpus, 13, false)
	if err != nil {
		t.Fatal(err)
	}
	gpuCols := m - plan.HostCols
	res, err := cl.Gemm(multigpu.GemmOpts{
		Dtype: kernelmodel.F64, M: m, N: gpuCols, K: m, Alpha: 1, Beta: 1,
		A: operand.HostMatrix(m, m, nil),
		B: operand.HostMatrix(m, gpuCols, nil),
		C: operand.HostMatrix(m, gpuCols, nil),
		T: plan.T,
	})
	if err != nil {
		t.Fatal(err)
	}
	var h2d, d2h int64
	for _, g := range res.PerGPU {
		h2d += g.BytesH2D
		d2h += g.BytesD2H
	}
	if h2d != plan.GPUBytesH2D || d2h != plan.GPUBytesD2H {
		t.Errorf("executed volumes (%d, %d) != plan annotations (%d, %d)",
			h2d, d2h, plan.GPUBytesH2D, plan.GPUBytesD2H)
	}
}

func TestHybridValidation(t *testing.T) {
	cl, err := multigpu.NewCluster(machine.TestbedII(), 1, 3, false)
	if err != nil {
		t.Fatal(err)
	}
	A := operand.HostMatrix(64, 64, nil)
	if _, err := Gemm(cl, GemmOpts{
		Dtype: kernelmodel.F64, M: 64, N: 64, K: 64,
		A: A, B: A, C: A, Plan: Plan{T: 0},
	}); err == nil {
		t.Error("missing tiling size should error")
	}
	if _, err := Gemm(cl, GemmOpts{
		Dtype: kernelmodel.F64, M: 64, N: 64, K: 64,
		A: A, B: A, C: A, Plan: Plan{T: 32, HostCols: 64},
	}); err == nil {
		t.Error("host panel covering all of N should error")
	}
	dev := &operand.Matrix{Rows: 64, Cols: 64, Loc: model.OnDevice}
	if _, err := Gemm(cl, GemmOpts{
		Dtype: kernelmodel.F64, M: 64, N: 64, K: 64,
		A: dev, B: A, C: A, Plan: Plan{T: 32, HostCols: 32},
	}); err == nil {
		t.Error("device operand should error")
	}
}

func TestHostSpecGemmTime(t *testing.T) {
	h := machine.HostSpec{PeakFlops64: 100e9, PeakFlops32: 200e9, GemmEff: 0.5}
	if got := h.GemmTime(true, 1000, 1000, 1000); math.Abs(got-2e9/50e9) > 1e-12 {
		t.Errorf("host f64 gemm time %g", got)
	}
	if got := h.GemmTime(false, 1000, 1000, 1000); math.Abs(got-2e9/100e9) > 1e-12 {
		t.Errorf("host f32 gemm time %g", got)
	}
	if h.GemmTime(true, 0, 5, 5) != 0 {
		t.Error("degenerate host gemm should be 0")
	}
}
