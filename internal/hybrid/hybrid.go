// Package hybrid implements host-assisted execution — the second half of
// the paper's future-work vision ("multi-GPU and host-assisted execution
// ... a portable auto-tuned heterogeneous BLAS library"): the host CPU
// computes a column panel of the output while the GPU cluster computes the
// rest, with the split chosen by the performance models.
//
// Host-resident operands need no transfers on the host side, so the host
// panel's cost is pure compute (machine.HostSpec); the GPU panels go
// through the reuse-aware tile scheduler as usual. The model-driven split
// picks the largest host panel (aligned to the tiling size) whose
// predicted host time does not exceed the predicted cluster time for the
// remainder — balancing the heterogeneous workers.
package hybrid

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/model"
	"cocopelia/internal/multigpu"
	"cocopelia/internal/operand"
)

// Plan describes a chosen heterogeneous split.
type Plan struct {
	// T is the GPU tiling size.
	T int
	// HostCols is the width of the host's column panel (0 = GPU only).
	HostCols int
	// PredictedSeconds is the predicted hybrid makespan.
	PredictedSeconds float64
	// PredictedHost and PredictedGPU are the per-side predictions.
	PredictedHost, PredictedGPU float64
	// GPUBytesH2D and GPUBytesD2H are the GPU side's transfer volumes for
	// the chosen split, taken from the tile planners' annotations
	// (multigpu.PanelVolumes) rather than re-derived transfer math. They
	// assume the general beta != 0 case (C makes the round trip).
	GPUBytesH2D, GPUBytesD2H int64
}

// PlanSplit chooses the host panel width and tiling size: for each
// feasible T it grows the host panel (in T-column steps) while the host
// remains faster than the cluster's predicted remainder, and returns the
// best (T, split) found.
func PlanSplit(sm model.SubModels, tb *machine.Testbed, routine string, dtypeSize int64, m, n, k, gpus int) (Plan, error) {
	if gpus <= 0 {
		return Plan{}, fmt.Errorf("hybrid: non-positive GPU count %d", gpus)
	}
	prm := model.GemmParams(routine, dtypeSize, int64(m), int64(n), int64(k),
		model.OnHost, model.OnHost, model.OnHost)
	cands := model.Candidates(&prm, sm)
	if len(cands) == 0 {
		return Plan{}, model.ErrNoCandidates
	}
	f64 := dtypeSize == 8
	// The host panel grows in fine-grained column steps, independent of
	// the GPU tile: the host needs no tiling (its data is in place), and
	// a full T-wide panel is usually already more than its fair share.
	const hostStep = 256
	best := Plan{PredictedSeconds: -1}
	for _, T := range cands {
		for hostCols := 0; hostCols <= n/2; hostCols += hostStep {
			gpuCols := n - hostCols
			if gpuCols < T {
				break
			}
			tHost := tb.Host.GemmTime(f64, m, hostCols, k)
			tGPU, err := multigpu.PredictDR(sm, routine, dtypeSize, m, gpuCols, k, T, gpus)
			if err != nil {
				return Plan{}, err
			}
			total := tHost
			if tGPU > total {
				total = tGPU
			}
			if best.PredictedSeconds < 0 || total < best.PredictedSeconds {
				best = Plan{
					T: T, HostCols: hostCols,
					PredictedSeconds: total,
					PredictedHost:    tHost, PredictedGPU: tGPU,
				}
			}
			// Growing the host panel past the balance point only hurts.
			if tHost > tGPU {
				break
			}
		}
	}
	if best.PredictedSeconds >= 0 {
		dt := kernelmodel.F32
		if f64 {
			dt = kernelmodel.F64
		}
		v := multigpu.PanelVolumes(dt, m, n-best.HostCols, k, best.T, gpus, 1)
		best.GPUBytesH2D, best.GPUBytesD2H = v.BytesH2D, v.BytesD2H
	}
	return best, nil
}

// Result reports a hybrid execution.
type Result struct {
	Seconds  float64
	T        int
	HostCols int
	// HostSeconds is the host panel's compute time; GPU holds the
	// cluster's per-GPU results.
	HostSeconds float64
	GPU         []operand.Result
}

// Gflops converts the makespan to GFLOP/s for the full problem.
func (r Result) Gflops(m, n, k int) float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return 2 * float64(m) * float64(n) * float64(k) / r.Seconds / 1e9
}

// GemmOpts parameterizes a hybrid gemm. Operands must be host-resident.
type GemmOpts struct {
	Dtype       kernelmodel.Dtype
	M, N, K     int
	Alpha, Beta float64
	A, B, C     *operand.Matrix
	// Plan is the split to execute (from PlanSplit).
	Plan Plan
}

// Gemm executes the hybrid plan on the cluster: the host computes its
// panel (as a simulated compute interval, with real arithmetic in backed
// runs) while the GPUs run the tiled scheduler on the remainder.
func Gemm(cl *multigpu.Cluster, opts GemmOpts) (Result, error) {
	if opts.Plan.T <= 0 {
		return Result{}, errors.New("hybrid: plan has no tiling size")
	}
	if opts.Plan.HostCols < 0 || opts.Plan.HostCols >= opts.N {
		return Result{}, fmt.Errorf("hybrid: host panel %d outside (0, n)", opts.Plan.HostCols)
	}
	for _, mat := range []*operand.Matrix{opts.A, opts.B, opts.C} {
		if mat == nil || mat.Loc != model.OnHost {
			return Result{}, errors.New("hybrid: operands must be host-resident")
		}
	}

	hostCols := opts.Plan.HostCols
	gpuCols := opts.N - hostCols
	eng := cl.Engine()
	start := eng.Now()
	res := Result{T: opts.Plan.T, HostCols: hostCols}

	// Host panel: the last hostCols columns. Its duration comes from the
	// host spec; its arithmetic runs at completion on backed operands.
	hostDone := start
	if hostCols > 0 {
		tb := cl.Runtime(0).Device().Testbed()
		dur := tb.Host.GemmTime(opts.Dtype == kernelmodel.F64, opts.M, hostCols, opts.K)
		payload := func() {
			if opts.C.HostF64 == nil && opts.C.HostF32 == nil {
				return
			}
			col := gpuCols
			var err error
			if opts.Dtype == kernelmodel.F64 {
				err = blas.Dgemm(blas.NoTrans, blas.NoTrans, opts.M, hostCols, opts.K,
					opts.Alpha, opts.A.HostF64, opts.A.HostLd,
					opts.B.HostF64[col*opts.B.HostLd:], opts.B.HostLd,
					opts.Beta, opts.C.HostF64[col*opts.C.HostLd:], opts.C.HostLd)
			} else {
				err = blas.Sgemm(blas.NoTrans, blas.NoTrans, opts.M, hostCols, opts.K,
					float32(opts.Alpha), opts.A.HostF32, opts.A.HostLd,
					opts.B.HostF32[col*opts.B.HostLd:], opts.B.HostLd,
					float32(opts.Beta), opts.C.HostF32[col*opts.C.HostLd:], opts.C.HostLd)
			}
			if err != nil {
				panic(fmt.Sprintf("hybrid: host payload: %v", err))
			}
		}
		eng.After(dur, func() {
			payload()
			hostDone = eng.Now()
		})
	}

	// GPU panels: the first gpuCols columns through the cluster.
	sub := func(mat *operand.Matrix, cols int) *operand.Matrix {
		out := &operand.Matrix{Rows: mat.Rows, Cols: cols, Loc: model.OnHost, HostLd: mat.HostLd}
		out.HostF64, out.HostF32 = mat.HostF64, mat.HostF32
		return out
	}
	gpuRes, err := cl.Gemm(multigpu.GemmOpts{
		Dtype: opts.Dtype, M: opts.M, N: gpuCols, K: opts.K,
		Alpha: opts.Alpha, Beta: opts.Beta,
		A: opts.A, B: sub(opts.B, gpuCols), C: sub(opts.C, gpuCols),
		T: opts.Plan.T,
	})
	if err != nil {
		return Result{}, err
	}
	res.GPU = gpuRes.PerGPU
	res.HostSeconds = hostDone - start
	res.Seconds = eng.Now() - start
	return res, nil
}
