package cudart

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/sim"
)

// TestRandomDAGOrderingStress builds random operation DAGs across several
// streams with random cross-stream event dependencies, and verifies that
// execution respects both in-stream ordering and every event edge.
func TestRandomDAGOrderingStress(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := sim.New()
		rt := New(device.New(eng, machine.TestbedI(), seed, false))
		return runDAG(t, rng, rt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// runDAG executes one randomized DAG and checks its ordering invariants.
func runDAG(t *testing.T, rng *rand.Rand, rt *Runtime) bool {
	t.Helper()
	const nStreams = 4
	nOps := 40 + rng.Intn(60)

	streams := make([]*Stream, nStreams)
	for i := range streams {
		streams[i] = rt.NewStream()
	}

	type opInfo struct {
		stream    int
		dependsOn []int // op indices whose completion must precede this op
	}
	infos := make([]opInfo, nOps)
	events := make([]*Event, nOps)
	executed := make([]int, 0, nOps)
	orderOf := make([]int, nOps) // op index -> position in executed order

	lastOnStream := make([]int, nStreams)
	for i := range lastOnStream {
		lastOnStream[i] = -1
	}

	buf, err := rt.Malloc(kernelmodel.F64, 1024, false)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < nOps; i++ {
		s := rng.Intn(nStreams)
		info := opInfo{stream: s}
		if prev := lastOnStream[s]; prev >= 0 {
			info.dependsOn = append(info.dependsOn, prev)
		}
		// Random cross-stream dependency on an earlier op's event.
		if i > 0 && rng.Intn(2) == 0 {
			dep := rng.Intn(i)
			streams[s].WaitEvent(events[dep])
			info.dependsOn = append(info.dependsOn, dep)
		}
		i := i
		// Mix op types: host callback, h2d, d2h, kernel.
		switch rng.Intn(4) {
		case 0:
			streams[s].Callback(func() { executed = append(executed, i) })
			events[i] = streams[s].Record()
		case 1:
			ev, err := streams[s].MemcpyH2DAsync(buf, 0, nil, nil, int64(1+rng.Intn(1024)))
			if err != nil {
				t.Fatal(err)
			}
			streams[s].Callback(func() { executed = append(executed, i) })
			_ = ev
			events[i] = streams[s].Record()
		case 2:
			if _, err := streams[s].MemcpyD2HAsync(nil, nil, buf, 0, int64(1+rng.Intn(1024))); err != nil {
				t.Fatal(err)
			}
			streams[s].Callback(func() { executed = append(executed, i) })
			events[i] = streams[s].Record()
		default:
			if _, err := streams[s].KernelAsync("k", float64(rng.Intn(100))*1e-6, nil); err != nil {
				t.Fatal(err)
			}
			streams[s].Callback(func() { executed = append(executed, i) })
			events[i] = streams[s].Record()
		}
		infos[i] = info
		lastOnStream[s] = i
	}

	if _, err := rt.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if len(executed) != nOps {
		t.Fatalf("executed %d of %d ops", len(executed), nOps)
	}
	for pos, op := range executed {
		orderOf[op] = pos
	}
	for i, info := range infos {
		for _, dep := range info.dependsOn {
			if orderOf[dep] >= orderOf[i] {
				t.Fatalf("op %d executed before its dependency %d", i, dep)
				return false
			}
		}
	}
	return true
}
