package cudart

import (
	"math"
	"math/rand"
	"testing"

	"cocopelia/internal/blas"
	"cocopelia/internal/device"
	"cocopelia/internal/kernelmodel"
	"cocopelia/internal/machine"
	"cocopelia/internal/parallel"
	"cocopelia/internal/sim"
)

func newRT() *Runtime {
	eng := sim.New()
	return New(device.New(eng, machine.TestbedI(), 1, true))
}

func TestStreamOrdering(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Callback(func() { order = append(order, i) })
	}
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("stream order violated: %v", order)
		}
	}
}

func TestCrossStreamEventOrdering(t *testing.T) {
	rt := newRT()
	s1, s2 := rt.NewStream(), rt.NewStream()
	var order []string
	s1.Callback(func() { order = append(order, "a") })
	ev := s1.Record()
	s2.WaitEvent(ev)
	s2.Callback(func() { order = append(order, "b") })
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("cross-stream order: %v", order)
	}
}

func TestWaitOnDoneEventIsNoop(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	s.WaitEvent(DoneEvent())
	s.WaitEvent(nil)
	ran := false
	s.Callback(func() { ran = true })
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("callback after done-event wait did not run")
	}
}

func TestMemcpyRoundTrip(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	n := int64(1000)
	buf, err := rt.Malloc(kernelmodel.F64, n, true)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]float64, n)
	for i := range src {
		src[i] = float64(i)
	}
	dst := make([]float64, n)
	if _, err := s.MemcpyH2DAsync(buf, 0, src, nil, n); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MemcpyD2HAsync(dst, nil, buf, 0, n); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestMemcpyBounds(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	buf, _ := rt.Malloc(kernelmodel.F64, 10, false)
	if _, err := s.MemcpyH2DAsync(buf, 5, nil, nil, 6); err == nil {
		t.Error("out-of-range h2d should error")
	}
	if _, err := s.MemcpyH2DAsync(nil, 0, nil, nil, 1); err == nil {
		t.Error("nil buffer should error")
	}
	if _, err := s.MemcpyD2HAsync(nil, nil, buf, -1, 2); err == nil {
		t.Error("negative offset should error")
	}
}

func TestMemcpyTiming(t *testing.T) {
	rt := newRT()
	tb := rt.Device().Testbed()
	s := rt.NewStream()
	buf, _ := rt.Malloc(kernelmodel.F64, 1<<20, false)
	start := rt.Now()
	if _, err := s.MemcpyH2DAsync(buf, 0, nil, nil, 1<<20); err != nil {
		t.Fatal(err)
	}
	end, err := rt.Sync()
	if err != nil {
		t.Fatal(err)
	}
	want := tb.H2D.LatencyS + float64(8<<20)/tb.H2D.BandwidthBps
	if math.Abs((end-start)-want) > 1e-9 {
		t.Errorf("h2d took %g, want %g", end-start, want)
	}
}

func TestSetGetMatrixSubmatrix(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	// Host matrix 4x4 col-major; copy its 2x3 submatrix starting at (1,1).
	host := make([]float64, 16)
	for i := range host {
		host[i] = float64(i)
	}
	dev, _ := rt.Malloc(kernelmodel.F64, 6, true)
	sub := host[1+4:] // offset (1,1), ld 4
	if _, err := s.SetMatrixAsync(2, 3, sub, nil, 4, dev, 0, 2); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 6)
	if _, err := s.GetMatrixAsync(2, 3, dev, 0, 2, out, nil, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 9, 10, 13, 14}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("submatrix copy: got %v, want %v", out, want)
		}
	}
}

func TestSetMatrixValidation(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	dev, _ := rt.Malloc(kernelmodel.F64, 6, false)
	if _, err := s.SetMatrixAsync(4, 2, nil, nil, 2, dev, 0, 4); err == nil {
		t.Error("host ld < rows should error")
	}
	if _, err := s.SetMatrixAsync(2, 4, nil, nil, 2, dev, 0, 2); err == nil {
		t.Error("device overflow should error")
	}
	if _, err := s.SetMatrixAsync(-1, 2, nil, nil, 2, dev, 0, 2); err == nil {
		t.Error("negative rows should error")
	}
}

func TestGemmAsyncFunctional(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	m, n, k := 4, 3, 5
	rng := rand.New(rand.NewSource(9))
	hostA := make([]float64, m*k)
	hostB := make([]float64, k*n)
	hostC := make([]float64, m*n)
	for i := range hostA {
		hostA[i] = rng.NormFloat64()
	}
	for i := range hostB {
		hostB[i] = rng.NormFloat64()
	}
	dA, _ := rt.Malloc(kernelmodel.F64, int64(m*k), true)
	dB, _ := rt.Malloc(kernelmodel.F64, int64(k*n), true)
	dC, _ := rt.Malloc(kernelmodel.F64, int64(m*n), true)
	_, _ = s.MemcpyH2DAsync(dA, 0, hostA, nil, int64(m*k))
	_, _ = s.MemcpyH2DAsync(dB, 0, hostB, nil, int64(k*n))
	if _, err := s.GemmAsync(blas.NoTrans, blas.NoTrans, m, n, k, 1, dA, 0, m, dB, 0, k, 0, dC, 0, m); err != nil {
		t.Fatal(err)
	}
	_, _ = s.MemcpyD2HAsync(hostC, nil, dC, 0, int64(m*n))
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, m*n)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1, hostA, m, hostB, k, 0, ref, m); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(hostC[i]-ref[i]) > 1e-12 {
			t.Fatalf("gemm async mismatch at %d: %g vs %g", i, hostC[i], ref[i])
		}
	}
}

// TestGemmAsyncPayloadPoolBitwise runs the same GEMM payload serially and
// through a worker pool installed with SetPayloadPool: the blocked engine
// guarantees bitwise identical results at any worker count.
func TestGemmAsyncPayloadPoolBitwise(t *testing.T) {
	m, n, k := 130, 70, 65
	rng := rand.New(rand.NewSource(41))
	hostA := make([]float64, m*k)
	hostB := make([]float64, k*n)
	for i := range hostA {
		hostA[i] = rng.NormFloat64()
	}
	for i := range hostB {
		hostB[i] = rng.NormFloat64()
	}
	run := func(pool *parallel.Pool) []float64 {
		rt := newRT()
		rt.SetPayloadPool(pool)
		s := rt.NewStream()
		dA, _ := rt.Malloc(kernelmodel.F64, int64(m*k), true)
		dB, _ := rt.Malloc(kernelmodel.F64, int64(k*n), true)
		dC, _ := rt.Malloc(kernelmodel.F64, int64(m*n), true)
		_, _ = s.MemcpyH2DAsync(dA, 0, hostA, nil, int64(m*k))
		_, _ = s.MemcpyH2DAsync(dB, 0, hostB, nil, int64(k*n))
		if _, err := s.GemmAsync(blas.NoTrans, blas.NoTrans, m, n, k, 1.25, dA, 0, m, dB, 0, k, 0, dC, 0, m); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, m*n)
		_, _ = s.MemcpyD2HAsync(out, nil, dC, 0, int64(m*n))
		if _, err := rt.Sync(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(nil)
	for _, w := range []int{2, 8} {
		pooled := run(parallel.NewPool(w))
		for i := range serial {
			if math.Float64bits(serial[i]) != math.Float64bits(pooled[i]) {
				t.Fatalf("workers=%d: payload differs from serial at %d: %v != %v",
					w, i, pooled[i], serial[i])
			}
		}
	}
}

// TestGemmAsyncPayloadPolicy opts payloads into the fused kernels with
// SetPayloadPolicy: the result must stay within a k-scaled ULP bound of
// the exact engine, be bitwise identical across worker counts, and the
// policy must revert to exact on Reset.
func TestGemmAsyncPayloadPolicy(t *testing.T) {
	m, n, k := 130, 70, 65
	rng := rand.New(rand.NewSource(43))
	hostA := make([]float64, m*k)
	hostB := make([]float64, k*n)
	for i := range hostA {
		hostA[i] = rng.NormFloat64()
	}
	for i := range hostB {
		hostB[i] = rng.NormFloat64()
	}
	run := func(policy blas.KernelPolicy, pool *parallel.Pool) []float64 {
		rt := newRT()
		rt.SetPayloadPool(pool)
		rt.SetPayloadPolicy(policy)
		s := rt.NewStream()
		dA, _ := rt.Malloc(kernelmodel.F64, int64(m*k), true)
		dB, _ := rt.Malloc(kernelmodel.F64, int64(k*n), true)
		dC, _ := rt.Malloc(kernelmodel.F64, int64(m*n), true)
		_, _ = s.MemcpyH2DAsync(dA, 0, hostA, nil, int64(m*k))
		_, _ = s.MemcpyH2DAsync(dB, 0, hostB, nil, int64(k*n))
		if _, err := s.GemmAsync(blas.NoTrans, blas.NoTrans, m, n, k, 1.25, dA, 0, m, dB, 0, k, 0, dC, 0, m); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, m*n)
		_, _ = s.MemcpyD2HAsync(out, nil, dC, 0, int64(m*n))
		if _, err := rt.Sync(); err != nil {
			t.Fatal(err)
		}
		return out
	}
	exact := run(blas.KernelExact, nil)
	fused := run(blas.KernelFMA, nil)
	// Magnitude bound per element: 1.25 * sum_l |A[i,l]||B[l,j]|, computed
	// on the host (cancellation makes |exact| itself too small a yardstick).
	absA := make([]float64, len(hostA))
	absB := make([]float64, len(hostB))
	for i, v := range hostA {
		absA[i] = math.Abs(v)
	}
	for i, v := range hostB {
		absB[i] = math.Abs(v)
	}
	mag := make([]float64, m*n)
	if err := blas.Dgemm(blas.NoTrans, blas.NoTrans, m, n, k, 1.25, absA, m, absB, k, 0, mag, m); err != nil {
		t.Fatal(err)
	}
	bound := 4 * float64(k+2) * 0x1p-52
	for i := range exact {
		if diff := math.Abs(fused[i] - exact[i]); diff > bound*mag[i] {
			t.Fatalf("fused payload element %d outside ULP bound: %v vs %v", i, fused[i], exact[i])
		}
	}
	for _, w := range []int{2, 8} {
		pooled := run(blas.KernelFMA, parallel.NewPool(w))
		for i := range fused {
			if math.Float64bits(fused[i]) != math.Float64bits(pooled[i]) {
				t.Fatalf("workers=%d: fused payload differs from serial at %d", w, i)
			}
		}
	}
	rt := newRT()
	rt.SetPayloadPolicy(blas.KernelFMA)
	if got := rt.PayloadPolicy(); got != blas.KernelFMA {
		t.Fatalf("PayloadPolicy after set: %v", got)
	}
	rt.Reset(rt.Device())
	if got := rt.PayloadPolicy(); got != blas.KernelExact {
		t.Fatalf("PayloadPolicy after Reset: %v, want exact", got)
	}
}

func TestGemmDtypeMismatch(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	d64, _ := rt.Malloc(kernelmodel.F64, 16, false)
	d32, _ := rt.Malloc(kernelmodel.F32, 16, false)
	if _, err := s.GemmAsync(blas.NoTrans, blas.NoTrans, 2, 2, 2, 1, d64, 0, 2, d32, 0, 2, 0, d64, 0, 2); err == nil {
		t.Error("dtype mismatch should error")
	}
}

func TestAxpyAsyncFunctional(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 1
	}
	dX, _ := rt.Malloc(kernelmodel.F64, int64(n), true)
	dY, _ := rt.Malloc(kernelmodel.F64, int64(n), true)
	_, _ = s.MemcpyH2DAsync(dX, 0, x, nil, int64(n))
	_, _ = s.MemcpyH2DAsync(dY, 0, y, nil, int64(n))
	if _, err := s.AxpyAsync(n, 2, dX, 0, dY, 0); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, n)
	_, _ = s.MemcpyD2HAsync(out, nil, dY, 0, int64(n))
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != 1+2*float64(i) {
			t.Fatalf("axpy mismatch at %d: %g", i, out[i])
		}
	}
	if _, err := s.AxpyAsync(200, 1, dX, 0, dY, 0); err == nil {
		t.Error("axpy out of range should error")
	}
}

func TestGemvAsyncFunctional(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	m, n := 3, 2
	a := []float64{1, 2, 3, 4, 5, 6} // 3x2 col-major
	x := []float64{1, 1}
	dA, _ := rt.Malloc(kernelmodel.F64, 6, true)
	dX, _ := rt.Malloc(kernelmodel.F64, 2, true)
	dY, _ := rt.Malloc(kernelmodel.F64, 3, true)
	_, _ = s.MemcpyH2DAsync(dA, 0, a, nil, 6)
	_, _ = s.MemcpyH2DAsync(dX, 0, x, nil, 2)
	if _, err := s.GemvAsync(blas.NoTrans, m, n, 1, dA, 0, m, dX, 0, 0, dY, 0); err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 3)
	_, _ = s.MemcpyD2HAsync(out, nil, dY, 0, 3)
	if _, err := rt.Sync(); err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 7, 9}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("gemv: got %v, want %v", out, want)
		}
	}
}

func TestThreeWayOverlap(t *testing.T) {
	// The core 3-way concurrency behaviour: an h2d copy, a kernel and a
	// d2h copy on three streams overlap; makespan ~ max of the three, not
	// their sum.
	rt := newRT()
	tb := rt.Device().Testbed()
	sIn, sK, sOut := rt.NewStream(), rt.NewStream(), rt.NewStream()
	elems := int64(16 << 20)
	in, _ := rt.Malloc(kernelmodel.F64, elems, false)
	out, _ := rt.Malloc(kernelmodel.F64, elems, false)
	_, _ = sIn.MemcpyH2DAsync(in, 0, nil, nil, elems)
	_, _ = sK.GemmAsync(blas.NoTrans, blas.NoTrans, 2048, 2048, 2048, 1, in, 0, 2048, in, 0, 2048, 0, out, 0, 2048)
	_, _ = sOut.MemcpyD2HAsync(nil, nil, out, 0, elems)
	end, err := rt.Sync()
	if err != nil {
		t.Fatal(err)
	}
	bytes := float64(elems * 8)
	tH2D := bytes / (tb.H2D.BandwidthBps / tb.H2D.BidSlowdown)
	tD2H := bytes / (tb.D2H.BandwidthBps / tb.D2H.BidSlowdown)
	tK := kernelmodel.GemmTime(&tb.GPU, kernelmodel.F64, 2048, 2048, 2048)
	serial := tH2D + tD2H + tK
	if end >= serial*0.95 {
		t.Errorf("no overlap: makespan %g vs serial %g", end, serial)
	}
}

func TestSyncDetectsDeadlock(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	never := &Event{} // recorded nowhere, never fires
	s.WaitEvent(never)
	s.Callback(func() {})
	if _, err := rt.Sync(); err == nil {
		t.Error("Sync should report blocked operations")
	}
}

func TestMallocFree(t *testing.T) {
	rt := newRT()
	b, err := rt.Malloc(kernelmodel.F32, 100, true)
	if err != nil {
		t.Fatal(err)
	}
	if b.Dtype() != kernelmodel.F32 || b.Elems() != 100 || !b.Backed() {
		t.Error("buffer metadata wrong")
	}
	if b.F32() == nil || b.F64() != nil {
		t.Error("backing storage wrong")
	}
	if rt.Device().MemUsed() != 400 {
		t.Errorf("mem used %d, want 400", rt.Device().MemUsed())
	}
	if err := rt.Free(b); err != nil {
		t.Fatal(err)
	}
	if rt.Device().MemUsed() != 0 {
		t.Error("free did not release")
	}
	if err := rt.Free(nil); err == nil {
		t.Error("nil free should error")
	}
	if _, err := rt.Malloc(kernelmodel.F64, -1, false); err == nil {
		t.Error("negative malloc should error")
	}
}

// TestLaunchSyncSteadyStateDoesNotAllocate pins the zero-allocation
// invariant of the timing-only launch path: once the op, event, kernel-task
// and transfer free lists are warm, a full enqueue+Sync cycle over all
// three engines allocates nothing (the cudart analog of the sim package's
// TestScheduleSteadyStateDoesNotAllocateEvents).
func TestLaunchSyncSteadyStateDoesNotAllocate(t *testing.T) {
	rt := newRT()
	s := rt.NewStream()
	buf, err := rt.Malloc(kernelmodel.F64, 4096, false)
	if err != nil {
		t.Fatal(err)
	}
	cycle := func() {
		if _, err := s.MemcpyH2DAsync(buf, 0, nil, nil, 1024); err != nil {
			t.Fatal(err)
		}
		if _, err := s.KernelAsync("k", 1e-6, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := s.MemcpyD2HAsync(nil, nil, buf, 0, 1024); err != nil {
			t.Fatal(err)
		}
		if _, err := rt.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(500, cycle)
	if allocs != 0 {
		t.Errorf("steady-state launch+sync allocates %.1f objects/op, want 0", allocs)
	}
}
