package cudart

// Factorization tile kernels: the device-side POTRF/GETRF/TRSM/SYRK calls
// the task-graph plans launch. Timing comes from the per-routine kernel
// ground-truth models (memoized like the flat BLAS kinds); arithmetic runs
// on backed buffers through the reference CPU kernels, so a backed
// factorization replay produces real numerics tile by tile.

import (
	"errors"
	"fmt"

	"cocopelia/internal/blas"
	"cocopelia/internal/kernelmodel"
)

// Kernel-time memo tags of the factorization routines. The flat-BLAS tags
// (ktGemm..ktAxpy) always set bit 61 or 62, so keys with those bits clear
// form a disjoint family; the factorization routines put their sub-tag in
// the low bits instead (their dims occupy bits 20..59, dtype bit 60), which
// also keeps every key non-zero as kernelTime requires.
const (
	ktfPotrf int64 = 1
	ktfGetrf int64 = 2
	ktfTrsmL int64 = 3
	ktfTrsmR int64 = 4
	ktfSyrk  int64 = 5
)

// potrfTime returns the memoized Cholesky tile-kernel duration.
func (rt *Runtime) potrfTime(dt kernelmodel.Dtype, n int) float64 {
	if n >= ktDimLimit {
		return kernelmodel.PotrfTime(&rt.dev.Testbed().GPU, dt, n)
	}
	key := int64(dt)<<60 | int64(n)<<20 | ktfPotrf
	return rt.kernelTime(key, func() float64 {
		return kernelmodel.PotrfTime(&rt.dev.Testbed().GPU, dt, n)
	})
}

// getrfTime returns the memoized LU tile-kernel duration.
func (rt *Runtime) getrfTime(dt kernelmodel.Dtype, n int) float64 {
	if n >= ktDimLimit {
		return kernelmodel.GetrfTime(&rt.dev.Testbed().GPU, dt, n)
	}
	key := int64(dt)<<60 | int64(n)<<20 | ktfGetrf
	return rt.kernelTime(key, func() float64 {
		return kernelmodel.GetrfTime(&rt.dev.Testbed().GPU, dt, n)
	})
}

// trsmTime returns the memoized triangular-solve kernel duration; the side
// flag selects the sub-tag (the shape dims occupy bits 20..59).
func (rt *Runtime) trsmTime(dt kernelmodel.Dtype, side byte, m, n int) float64 {
	if m >= ktDimLimit || n >= ktDimLimit {
		return kernelmodel.TrsmTime(&rt.dev.Testbed().GPU, dt, side, m, n)
	}
	tag := ktfTrsmR
	if side == blas.Left {
		tag = ktfTrsmL
	}
	key := int64(dt)<<60 | int64(m)<<40 | int64(n)<<20 | tag
	return rt.kernelTime(key, func() float64 {
		return kernelmodel.TrsmTime(&rt.dev.Testbed().GPU, dt, side, m, n)
	})
}

// syrkTime returns the memoized rank-k-update kernel duration.
func (rt *Runtime) syrkTime(dt kernelmodel.Dtype, n, k int) float64 {
	if n >= ktDimLimit || k >= ktDimLimit {
		return kernelmodel.SyrkTime(&rt.dev.Testbed().GPU, dt, n, k)
	}
	key := int64(dt)<<60 | int64(n)<<40 | int64(k)<<20 | ktfSyrk
	return rt.kernelTime(key, func() float64 {
		return kernelmodel.SyrkTime(&rt.dev.Testbed().GPU, dt, n, k)
	})
}

// kernelName picks the dtype-prefixed kernel name ("dpotrf"/"spotrf", ...).
func kernelName(dt kernelmodel.Dtype, d, s string) string {
	if dt == kernelmodel.F32 {
		return s
	}
	return d
}

// PotrfAsync enqueues the in-place Cholesky factorization of the n x n
// tile at A[offA] (referenced triangle per uplo). The payload panics on a
// non-positive-definite tile, mirroring the other payloads' treatment of
// impossible launches — callers own operand validity.
func (s *Stream) PotrfAsync(uplo byte, n int, a *DevBuffer, offA int64, lda int) (*Event, error) {
	dt := a.dt
	dur := s.rt.potrfTime(dt, n)
	var payload func()
	if a.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Potrf(uplo, n, a.f64[offA:], lda)
			} else {
				err = blas.Potrf(uplo, n, a.f32[offA:], lda)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: potrf payload: %v", err))
			}
		}
	}
	o := s.allocKernelOp(kernelName(dt, "dpotrf", "spotrf"), dur, payload)
	return s.enqueue(o), nil
}

// GetrfAsync enqueues the in-place unpivoted LU factorization of the
// n x n tile at A[offA].
func (s *Stream) GetrfAsync(n int, a *DevBuffer, offA int64, lda int) (*Event, error) {
	dt := a.dt
	dur := s.rt.getrfTime(dt, n)
	var payload func()
	if a.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Getrf(n, a.f64[offA:], lda)
			} else {
				err = blas.Getrf(n, a.f32[offA:], lda)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: getrf payload: %v", err))
			}
		}
	}
	o := s.allocKernelOp(kernelName(dt, "dgetrf", "sgetrf"), dur, payload)
	return s.enqueue(o), nil
}

// TrsmAsync enqueues the triangular tile solve op(A)*X = alpha*B (side L)
// or X*op(A) = alpha*B (side R), overwriting the m x n tile B.
func (s *Stream) TrsmAsync(side, uplo, transA, diag byte, m, n int, alpha float64,
	a *DevBuffer, offA int64, lda int, b *DevBuffer, offB int64, ldb int) (*Event, error) {

	dt := b.dt
	if a.dt != dt {
		return nil, errors.New("cudart: trsm operand dtype mismatch")
	}
	dur := s.rt.trsmTime(dt, side, m, n)
	var payload func()
	if b.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Trsm(side, uplo, transA, diag, m, n, alpha,
					a.f64[offA:], lda, b.f64[offB:], ldb)
			} else {
				err = blas.Trsm(side, uplo, transA, diag, m, n, float32(alpha),
					a.f32[offA:], lda, b.f32[offB:], ldb)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: trsm payload: %v", err))
			}
		}
	}
	o := s.allocKernelOp(kernelName(dt, "dtrsm", "strsm"), dur, payload)
	return s.enqueue(o), nil
}

// SyrkAsync enqueues the symmetric rank-k tile update
// C = alpha*A*A^T + beta*C (trans 'N') or alpha*A^T*A + beta*C ('T') for
// the n x n tile C. The uplo flag rides along for the timing model's sake
// only — the CPU payload writes the full tile (the framework has no packed
// triangular storage), which is harmless because factorization plans never
// read the unreferenced triangle.
func (s *Stream) SyrkAsync(uplo, trans byte, n, k int, alpha float64,
	a *DevBuffer, offA int64, lda int, beta float64, c *DevBuffer, offC int64, ldc int) (*Event, error) {

	_ = uplo
	dt := c.dt
	if a.dt != dt {
		return nil, errors.New("cudart: syrk operand dtype mismatch")
	}
	dur := s.rt.syrkTime(dt, n, k)
	var payload func()
	if c.Backed() {
		payload = func() {
			var err error
			if dt == kernelmodel.F64 {
				err = blas.Syrk(trans, n, k, alpha, a.f64[offA:], lda, beta, c.f64[offC:], ldc)
			} else {
				err = blas.Syrk(trans, n, k, float32(alpha), a.f32[offA:], lda, float32(beta), c.f32[offC:], ldc)
			}
			if err != nil {
				panic(fmt.Sprintf("cudart: syrk payload: %v", err))
			}
		}
	}
	o := s.allocKernelOp(kernelName(dt, "dsyrk", "ssyrk"), dur, payload)
	return s.enqueue(o), nil
}
